#!/usr/bin/env python3
"""anyk_lint: project-specific invariants no generic tool knows.

The any-k engine promises zero global heap allocations on the enumeration
hot path (ROADMAP PR-3), flat open-addressing indexes instead of node-based
hash maps (PR-3), locale-independent parsing (PR-8), and — since the
static-analysis PR — a single annotated synchronization vocabulary
(src/util/sync.h). This linter encodes those house rules as cheap, line-based
checks over comment- and string-stripped source, so CI catches a regression
before a benchmark or a TSan interleaving ever could.

Rules (see docs/STATIC_ANALYSIS.md for the rationale of each):

  heap-hot-path        In enumeration hot-path files (src/anyk/, src/dp/):
                       no non-placement `new`, no make_unique/make_shared,
                       no node-based std containers (map/set/list/deque and
                       their unordered/multi variants). Placement new into an
                       arena is the blessed idiom and is allowed.
  unordered-map        `std::unordered_map` only inside the allowlist dirs
                       (src/query/, src/join/, src/workload/ — parse- and
                       reference-layer code); anywhere else needs a justified
                       suppression (the server's cold control-plane maps).
  locale-parse         No locale-dependent float parsing or locale mutation:
                       std::stod/stof/stold, atof, strtod/strtof, setlocale.
                       Use std::from_chars (see src/storage/csv.cc).
  iostream-header      No `#include <iostream>` in library headers — it
                       injects a static iostream initializer into every TU.
  raw-mutex            `std::mutex` / `std::condition_variable` / std lock
                       RAII types appear only in src/util/sync.h; everything
                       else uses the thread-safety-annotated Mutex/MutexLock/
                       CondVar so Clang TSA sees every lock site.

Suppressions:
  // anyk-lint: allow(<rule>): <justification>        one finding — covers
      its own line, any directly attached comment block, and the next code
      line.
  // anyk-lint: allow-file(<rule>): <justification>   whole file (put it in
      the file's header comment; for files that are prepare-time by design).

Usage:
  scripts/anyk_lint.py --root .              # lint src/ and cli/
  scripts/anyk_lint.py --root . --self-test  # prove every rule fires, then lint
  scripts/anyk_lint.py --list-rules

Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage/internal.
Stdlib only; no third-party imports.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Rule table
# ---------------------------------------------------------------------------

# Prefix-matched: whole directories, plus individual files that feed the
# enumeration hot path from elsewhere (the sharding storage layer: ShardHash
# runs per row in the partition pass, and ShardedDatabase's staging loops are
# the same batch-bind kernels the enumerators drain through).
HOT_PATH_DIRS = ("src/anyk/", "src/dp/",
                 "src/storage/shard_hash.h", "src/storage/sharded_database.h")
UNORDERED_MAP_ALLOWED_DIRS = ("src/query/", "src/join/", "src/workload/")
SYNC_HEADER = "src/util/sync.h"

_HEAP_NEW = re.compile(r"\bnew\b(?!\s*\()")  # `new (addr) T` = placement, ok
_HEAP_MAKE = re.compile(r"\bstd::make_(?:unique|shared)\s*<")
_HEAP_CONTAINER = re.compile(
    r"\bstd::(?:unordered_)?(?:multi)?(?:map|set)\s*<|\bstd::(?:list|deque)\s*<"
)
_UNORDERED_MAP = re.compile(r"\bstd::unordered_map\s*<")
_LOCALE = re.compile(
    r"\bstd::sto(?:d|f|ld)\s*\(|\batof\s*\(|\bstrto(?:d|f|ld)\s*\(|\bsetlocale\s*\("
)
_IOSTREAM = re.compile(r'#\s*include\s*<iostream>')
_RAW_MUTEX = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|unique_lock|lock_guard|scoped_lock)\b"
)


@dataclass
class Rule:
    rule_id: str
    description: str

    def applies_to(self, relpath: str) -> bool:
        raise NotImplementedError

    def check_line(self, relpath: str, code: str) -> str | None:
        """Return a message if the stripped code line violates the rule."""
        raise NotImplementedError


class HeapHotPath(Rule):
    def __init__(self) -> None:
        super().__init__(
            "heap-hot-path",
            "no non-placement new / make_unique / make_shared / node-based "
            "std containers in enumeration hot-path files (src/anyk/, src/dp/)",
        )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(HOT_PATH_DIRS)

    def check_line(self, relpath: str, code: str) -> str | None:
        if code.lstrip().startswith("#"):
            return None  # preprocessor lines (#include <new>) never allocate
        if _HEAP_NEW.search(code):
            return ("non-placement `new` in a hot-path file; enumeration "
                    "state belongs in the per-query Arena")
        if _HEAP_MAKE.search(code):
            return ("make_unique/make_shared in a hot-path file; if this is "
                    "prepare-time setup, add a justified suppression")
        if _HEAP_CONTAINER.search(code):
            return ("node-based std container in a hot-path file; use "
                    "FlatKeyIndex/CSR or an ArenaVector")
        return None


class UnorderedMap(Rule):
    def __init__(self) -> None:
        super().__init__(
            "unordered-map",
            "std::unordered_map only in src/query/, src/join/, src/workload/ "
            "(PR-3 flat hot-path policy); elsewhere requires a suppression",
        )

    def applies_to(self, relpath: str) -> bool:
        if not relpath.startswith("src/"):
            return False
        if relpath.startswith(UNORDERED_MAP_ALLOWED_DIRS):
            return False
        # Hot-path dirs are already covered (more strictly) by heap-hot-path;
        # skip them so one bad line doesn't need two suppressions.
        return not relpath.startswith(HOT_PATH_DIRS)

    def check_line(self, relpath: str, code: str) -> str | None:
        if _UNORDERED_MAP.search(code):
            return ("std::unordered_map outside the allowlist dirs; use "
                    "FlatKeyIndex, or justify a cold-path exception")
        return None


class LocaleParse(Rule):
    def __init__(self) -> None:
        super().__init__(
            "locale-parse",
            "no locale-dependent parsing (stod/atof/strtod/setlocale); "
            "std::from_chars is locale-independent",
        )

    def applies_to(self, relpath: str) -> bool:
        return True

    def check_line(self, relpath: str, code: str) -> str | None:
        if _LOCALE.search(code):
            return ("locale-dependent parse or locale mutation; use "
                    "std::from_chars (see src/storage/csv.cc)")
        return None


class IostreamHeader(Rule):
    def __init__(self) -> None:
        super().__init__(
            "iostream-header",
            "no #include <iostream> in library headers (src/**/*.h)",
        )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/") and relpath.endswith(".h")

    def check_line(self, relpath: str, code: str) -> str | None:
        if _IOSTREAM.search(code):
            return ("<iostream> in a library header adds a static "
                    "initializer to every includer; use <ostream> or move "
                    "the printing into a .cc")
        return None


class RawMutex(Rule):
    def __init__(self) -> None:
        super().__init__(
            "raw-mutex",
            "std::mutex/condition_variable and std lock RAII only in "
            "src/util/sync.h; use the annotated Mutex/MutexLock/CondVar",
        )

    def applies_to(self, relpath: str) -> bool:
        return relpath != SYNC_HEADER

    def check_line(self, relpath: str, code: str) -> str | None:
        if _RAW_MUTEX.search(code):
            return ("raw std synchronization primitive outside "
                    "src/util/sync.h defeats Clang Thread Safety Analysis; "
                    "use anyk::Mutex / MutexLock / CondVar")
        return None


RULES: list[Rule] = [
    HeapHotPath(),
    UnorderedMap(),
    LocaleParse(),
    IostreamHeader(),
    RawMutex(),
]

# ---------------------------------------------------------------------------
# Source model: strip comments and literals, collect suppressions
# ---------------------------------------------------------------------------

_ALLOW = re.compile(r"anyk-lint:\s*allow\(([a-z0-9-]+)\)")
_ALLOW_FILE = re.compile(r"anyk-lint:\s*allow-file\(([a-z0-9-]+)\)")


def strip_code(lines: list[str]) -> list[str]:
    """Return per-line code with comments and string/char literals blanked.

    A tiny state machine, not a real lexer: tracks // and /* */ comments and
    "..." / '...' literals with backslash escapes. Raw strings are treated as
    ordinary strings, which errs toward blanking too much — fine for linting.
    """
    out: list[str] = []
    in_block = False
    for line in lines:
        buf: list[str] = []
        i, n = 0, len(line)
        while i < n:
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if c == "/" and nxt == "/":
                break  # rest of line is comment
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                buf.append(quote + quote)  # keep delimiters, drop contents
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


@dataclass
class Finding:
    relpath: str
    line: int  # 1-based
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.relpath}:{self.line}: [{self.rule_id}] {self.message}"


@dataclass
class FileReport:
    findings: list[Finding] = field(default_factory=list)
    unused_suppressions: list[tuple[int, str]] = field(default_factory=list)


def lint_text(relpath: str, text: str) -> FileReport:
    lines = text.splitlines()
    code = strip_code(lines)
    report = FileReport()

    file_allows: set[str] = set()
    for line in lines:
        for m in _ALLOW_FILE.finditer(line):
            file_allows.add(m.group(1))

    # Line suppressions: an allow(...) covers its own line and stays pending
    # through any directly attached comment/blank lines plus the next code
    # line (so a multi-line justification comment above a declaration works).
    pending: dict[str, int] = {}  # rule_id -> line where declared
    used: set[int] = set()
    declared: list[tuple[int, str]] = []

    for idx, raw in enumerate(lines):
        lineno = idx + 1
        for m in _ALLOW.finditer(raw):
            pending[m.group(1)] = lineno
            declared.append((lineno, m.group(1)))

        stripped = code[idx].strip()
        is_code = bool(stripped)
        for rule in RULES:
            if not rule.applies_to(relpath):
                continue
            message = rule.check_line(relpath, code[idx]) if is_code else None
            if message is None:
                continue
            if rule.rule_id in file_allows:
                continue
            if rule.rule_id in pending:
                used.add(pending[rule.rule_id])
                continue
            report.findings.append(Finding(relpath, lineno, rule.rule_id, message))
        if is_code:
            pending.clear()  # consumed by this code line

    for lineno, rule_id in declared:
        if lineno not in used:
            report.unused_suppressions.append((lineno, rule_id))
    return report


# ---------------------------------------------------------------------------
# Tree walk
# ---------------------------------------------------------------------------

LINT_DIRS = ("src", "cli")
EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")


def collect_files(root: str) -> list[str]:
    files: list[str] = []
    for top in LINT_DIRS:
        base = os.path.join(root, top)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    files.append(os.path.relpath(full, root))
    return sorted(files)


def lint_tree(root: str, verbose: bool) -> int:
    findings: list[Finding] = []
    stale: list[str] = []
    files = collect_files(root)
    for relpath in files:
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            report = lint_text(relpath.replace(os.sep, "/"), f.read())
        findings.extend(report.findings)
        for lineno, rule_id in report.unused_suppressions:
            stale.append(f"{relpath}:{lineno}: suppression allow({rule_id}) "
                         "matches nothing; delete it")
    for f_ in findings:
        print(f_.render())
    for s in stale:
        print(s)
    status = "FAILED" if (findings or stale) else "OK"
    print(f"anyk_lint: {len(files)} files, {len(findings)} finding(s), "
          f"{len(stale)} stale suppression(s): {status}")
    if verbose and not findings:
        for relpath in files:
            print(f"  clean: {relpath}")
    return 1 if (findings or stale) else 0


# ---------------------------------------------------------------------------
# Self-test: every rule must fire on a seeded violation and stay quiet on the
# suppressed/blessed variant. This runs in-memory — no temp files.
# ---------------------------------------------------------------------------

SELF_TEST_CASES = [
    # (name, relpath, source, expected rule ids)
    ("hot-path new",
     "src/anyk/bad.h", "int* p = new int[8];\n", {"heap-hot-path"}),
    ("hot-path make_unique",
     "src/dp/bad.h", "auto g = std::make_unique<StageGraph<D>>();\n",
     {"heap-hot-path"}),
    ("hot-path node container",
     "src/anyk/bad.h", "std::unordered_set<int> seen;\n", {"heap-hot-path"}),
    ("placement new is the arena idiom",
     "src/anyk/ok.h", "auto* cd = new (arena->Allocate(8, 8)) ConnData();\n",
     set()),
    ("#include <new> is not an allocation",
     "src/anyk/ok.h", "#include <new>\n", set()),
    ("prose 'new' in a comment does not fire",
     "src/anyk/ok.h", "// one new subspace per remaining stage\nint x;\n",
     set()),
    ("suppressed make_unique",
     "src/dp/ok.h",
     "// anyk-lint: allow(heap-hot-path): prepare-time construction\n"
     "auto g = std::make_unique<StageGraph<D>>();\n",
     set()),
    ("file-level suppression",
     "src/anyk/ok.h",
     "// anyk-lint: allow-file(heap-hot-path): prepare-time by design\n"
     "auto a = std::make_unique<A>();\nauto b = std::make_unique<B>();\n",
     set()),
    ("stale suppression is itself a finding",
     "src/anyk/stale.h",
     "// anyk-lint: allow(heap-hot-path): nothing here anymore\nint x;\n",
     {"<stale>"}),
    ("unordered_map outside allowlist",
     "src/storage/bad.h", "std::unordered_map<int, int> m;\n",
     {"unordered-map"}),
    ("unordered_map inside allowlist",
     "src/query/ok.cc", "std::unordered_map<int, int> m;\n", set()),
    ("stod is locale-dependent",
     "src/storage/bad.cc", "double w = std::stod(cell);\n", {"locale-parse"}),
    ("atof in cli",
     "cli/bad.cc", "double q = atof(argv[1]);\n", {"locale-parse"}),
    ("from_chars is fine",
     "src/storage/ok.cc",
     "auto r = std::from_chars(p, end, value);\n", set()),
    ("stod in a comment/string does not fire",
     "src/storage/ok.cc",
     "// std::stod honors the locale, so we avoid it\n"
     "const char* msg = \"std::stod(x)\";\n",
     set()),
    ("iostream in a library header",
     "src/util/bad.h", "#include <iostream>\n", {"iostream-header"}),
    ("iostream in a .cc is fine",
     "cli/ok.cc", "#include <iostream>\n", set()),
    ("raw std::mutex outside sync.h",
     "src/server/bad.h", "std::mutex mu_;\n", {"raw-mutex"}),
    ("raw unique_lock outside sync.h",
     "src/server/bad.cc",
     "std::unique_lock<std::mutex> lock(mu_);\n", {"raw-mutex"}),
    ("sync.h itself may use std::mutex",
     "src/util/sync.h", "std::mutex mu_;\n", set()),
    ("sharding storage files are hot-path",
     "src/storage/shard_hash.h", "int* p = new int[8];\n",
     {"heap-hot-path"}),
    ("sharded database staging is hot-path",
     "src/storage/sharded_database.h", "std::unordered_set<int> seen;\n",
     {"heap-hot-path"}),
    ("other storage files stay cold-path",
     "src/storage/columnar.h", "auto s = std::make_unique<Segment>();\n",
     set()),
    ("multi-line justification comment still suppresses",
     "src/server/ok.h",
     "// anyk-lint: allow(unordered-map): cold control plane, bounded by\n"
     "// the session gauge; never on the enumeration hot path.\n"
     "std::unordered_map<std::string, int> map_;\n",
     set()),
]


def run_self_test() -> int:
    failures = 0
    for name, relpath, source, expected in SELF_TEST_CASES:
        report = lint_text(relpath, source)
        got = {f.rule_id for f in report.findings}
        if report.unused_suppressions:
            got.add("<stale>")
        if got != expected:
            failures += 1
            print(f"self-test FAILED: {name}: expected {sorted(expected)}, "
                  f"got {sorted(got)}")
    n = len(SELF_TEST_CASES)
    print(f"anyk_lint self-test: {n - failures}/{n} cases passed")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/ and cli/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a seeded violation "
                             "before linting the tree")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id}: {rule.description}")
        return 0

    if args.self_test and run_self_test() != 0:
        return 1
    if not os.path.isdir(os.path.join(args.root, "src")):
        print(f"anyk_lint: no src/ under --root {args.root!r}", file=sys.stderr)
        return 2
    return lint_tree(args.root, args.verbose)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
