#!/usr/bin/env python3
"""Command-line client for anykd, the any-k serving daemon.

Speaks the daemon's plain-text HTTP protocol (docs/SERVER.md). Two modes:

  query  -- run one SQL query and page through the whole ranked answer
            stream via resumable cursors, printing RESULT lines to stdout:

              scripts/anyk_client.py query --port 8080 \
                  --sql "SELECT * FROM R1, R2 WHERE R1.A2 = R2.A1 \
                         ORDER BY WEIGHT ASC LIMIT 500" --page-k 100

  bench  -- closed-loop latency probe: N client threads each issue
            query/next/close round trips against one cached query and the
            aggregate p50/p99 per-request latency is reported. With
            --max-p99 the exit code turns this into a CI smoke gate:

              scripts/anyk_client.py bench --port 8080 \
                  --sql "..." --threads 4 --requests 50 --max-p99 0.5

Standard library only (urllib); no external dependencies.
"""

import argparse
import json
import statistics
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request


def _get(port, path, params, timeout):
    """One GET against the daemon. Returns (status, body-text)."""
    url = "http://127.0.0.1:%d%s?%s" % (
        port, path, urllib.parse.urlencode(params))
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8", "replace")
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode("utf-8", "replace")


def _post(port, path, timeout):
    url = "http://127.0.0.1:%d%s" % (port, path)
    req = urllib.request.Request(url, data=b"", method="POST")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8", "replace")
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode("utf-8", "replace")


def _parse_page(body):
    """Split a text-format page into (result_lines, cursor_or_None, done)."""
    results, cursor, done = [], None, False
    for line in body.splitlines():
        if line.startswith("RESULT,"):
            results.append(line)
        elif line.startswith("CURSOR,"):
            cursor = line[len("CURSOR,"):]
        elif line.startswith("DONE,"):
            done = True
    return results, cursor, done


def drain_query(port, sql, page_k, algorithm, timeout, out=sys.stdout):
    """Page through one query to completion; returns all RESULT lines."""
    status, body = _get(port, "/v1/query",
                        {"sql": sql, "k": page_k, "algorithm": algorithm},
                        timeout)
    if status != 200:
        sys.stderr.write("anyk_client: query failed (%d): %s\n"
                         % (status, body.strip()))
        sys.exit(1)
    all_results, cursor, done = _parse_page(body)
    for line in all_results:
        out.write(line + "\n")
    while cursor and not done:
        status, body = _get(port, "/v1/next",
                            {"cursor": cursor, "k": page_k}, timeout)
        if status != 200:
            sys.stderr.write("anyk_client: next failed (%d): %s\n"
                             % (status, body.strip()))
            sys.exit(1)
        page, next_cursor, done = _parse_page(body)
        for line in page:
            out.write(line + "\n")
        all_results.extend(page)
        cursor = next_cursor or cursor
    return all_results


def bench_worker(port, sql, page_k, algorithm, requests, timeout,
                 latencies, errors):
    for _ in range(requests):
        t0 = time.monotonic()
        status, body = _get(port, "/v1/query",
                            {"sql": sql, "k": page_k,
                             "algorithm": algorithm}, timeout)
        latencies.append(time.monotonic() - t0)
        if status != 200:
            errors.append("query: %d %s" % (status, body.strip()))
            continue
        _, cursor, done = _parse_page(body)
        if cursor and not done:
            t0 = time.monotonic()
            status, body = _get(port, "/v1/next",
                                {"cursor": cursor, "k": page_k}, timeout)
            latencies.append(time.monotonic() - t0)
            if status != 200:
                errors.append("next: %d %s" % (status, body.strip()))
            _get(port, "/v1/close", {"cursor": cursor}, timeout)


def percentile(samples, p):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(p * (len(ordered) - 1) + 0.5))
    return ordered[idx]


def run_bench(args):
    # Warm the prepared-query cache so the measured loop exercises the
    # cache-hit serving path, not one giant preparation outlier.
    status, body = _get(args.port, "/v1/query",
                        {"sql": args.sql, "k": 1,
                         "algorithm": args.algorithm}, args.timeout)
    if status != 200:
        sys.stderr.write("anyk_client: warmup failed (%d): %s\n"
                         % (status, body.strip()))
        return 1
    _, cursor, done = _parse_page(body)
    if cursor and not done:
        _get(args.port, "/v1/close", {"cursor": cursor}, args.timeout)

    per_thread = [[] for _ in range(args.threads)]
    errors = []
    t0 = time.monotonic()
    workers = [
        threading.Thread(
            target=bench_worker,
            args=(args.port, args.sql, args.page_k, args.algorithm,
                  args.requests, args.timeout, per_thread[i], errors))
        for i in range(args.threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    wall = time.monotonic() - t0

    samples = [s for lat in per_thread for s in lat]
    report = {
        "threads": args.threads,
        "requests": len(samples),
        "errors": len(errors),
        "wall_seconds": round(wall, 6),
        "requests_per_sec": round(len(samples) / wall, 1) if wall else 0,
        "p50_seconds": round(percentile(samples, 0.50), 6),
        "p99_seconds": round(percentile(samples, 0.99), 6),
        "mean_seconds": round(statistics.fmean(samples), 6)
        if samples else 0.0,
    }
    print(json.dumps(report, indent=2))
    for e in errors[:5]:
        sys.stderr.write("anyk_client: error: %s\n" % e)
    if errors:
        return 1
    if args.max_p99 is not None and report["p99_seconds"] > args.max_p99:
        sys.stderr.write(
            "anyk_client: p99 %.6fs exceeds --max-p99 %.6fs\n"
            % (report["p99_seconds"], args.max_p99))
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", choices=["query", "bench"])
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--sql", required=True,
                        help="paper-dialect SQL (docs/SQL.md)")
    parser.add_argument("--page-k", type=int, default=100,
                        help="answers per page (server caps via "
                             "--max-page-k; 0 is rejected)")
    parser.add_argument("--algorithm", default="lazy",
                        help="recursive|take2|lazy|eager|all|batch")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request socket timeout in seconds")
    parser.add_argument("--threads", type=int, default=4,
                        help="bench: concurrent client threads")
    parser.add_argument("--requests", type=int, default=50,
                        help="bench: query round trips per thread")
    parser.add_argument("--max-p99", type=float, default=None,
                        help="bench: exit 1 when p99 latency exceeds this "
                             "many seconds")
    args = parser.parse_args()

    if args.mode == "query":
        drain_query(args.port, args.sql, args.page_k, args.algorithm,
                    args.timeout)
        return 0
    return run_bench(args)


if __name__ == "__main__":
    sys.exit(main())
