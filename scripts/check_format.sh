#!/usr/bin/env bash
# Formatting gate for changed files: clang-format --dry-run over every C/C++
# file that differs from a base ref.
#
# Usage: scripts/check_format.sh [BASE_REF]
#   BASE_REF defaults to origin/main when that ref exists, else HEAD~1.
#   Pass --all to check the whole tree instead of a diff.
#
# Exit codes: 0 formatted, 1 needs formatting, 3 clang-format unavailable
# (callers treat 3 as a skip). The CI static-analysis job currently runs
# this as a non-blocking warning — the tree predates .clang-format and the
# one-time reformat is deliberately kept out of the static-analysis PR so
# `git blame` stays useful across it; docs/STATIC_ANALYSIS.md tracks the
# flip to blocking.

set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

FMT=""
for cand in clang-format clang-format-19 clang-format-18 clang-format-17 \
            clang-format-16 clang-format-15 clang-format-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    FMT="$cand"
    break
  fi
done
if [ -z "$FMT" ]; then
  echo "check_format: no clang-format binary on PATH; skipping" >&2
  exit 3
fi

if [ "${1:-}" = "--all" ]; then
  mapfile -t FILES < <(git ls-files 'src/**' 'cli/**' 'tests/**' 'bench/**' \
    | grep -E '\.(h|hpp|cc|cpp)$')
else
  BASE="${1:-}"
  if [ -z "$BASE" ]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      BASE=origin/main
    else
      BASE=HEAD~1
    fi
  fi
  mapfile -t FILES < <(git diff --name-only --diff-filter=ACMR "$BASE" -- \
    'src' 'cli' 'tests' 'bench' | grep -E '\.(h|hpp|cc|cpp)$' || true)
fi

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "check_format: no C++ files to check"
  exit 0
fi

echo "check_format: $FMT --dry-run over ${#FILES[@]} file(s)"
STATUS=0
for f in "${FILES[@]}"; do
  [ -f "$f" ] || continue
  "$FMT" --dry-run -Werror "$f" 2>/dev/null || {
    echo "needs formatting: $f"
    STATUS=1
  }
done

if [ "$STATUS" -ne 0 ]; then
  echo "check_format: run '$FMT -i <file>' on the files above" >&2
fi
exit "$STATUS"
