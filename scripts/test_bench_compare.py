#!/usr/bin/env python3
"""Regression tests for scripts/bench_compare.py.

Crafts pairs of BENCH_*.json reports and checks the gate's verdicts —
in particular the sub-timer-resolution baseline path: a zero baseline TTL
must never map to ratio = inf (which would fail the gate for any measurable
current time), must be judged by the absolute-slack path alone, and must not
crash --calibrate's median when every baseline is zero. Registered in ctest
(tier1) so the gate's own behavior is under the same regression protection
as the code it gates.

Usage: test_bench_compare.py [path/to/bench_compare.py]
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.abspath(
    sys.argv[1] if len(sys.argv) > 1 else
    os.path.join(os.path.dirname(__file__), "bench_compare.py"))

FAILURES = []


def record(name, seconds, k=100, algorithm="Lazy", threads=1,
           answers_per_sec=0.0, dataset="synthetic"):
    return {
        "figure": "figX", "query": "path4", "dataset": dataset,
        "algorithm": algorithm, "n": 1000, "k": k, "seconds": seconds,
        "allocs": 0, "peak_rss_kb": 0, "threads": threads,
        "answers_per_sec": answers_per_sec,
    }


def write_report(directory, records, schema_version=3):
    path = os.path.join(directory, "BENCH_bench_test.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"schema_version": schema_version, "bench": "bench_test",
                   "smoke": True, "records": records, "paper_notes": []}, f)


def run_compare(baseline_records, current_records, extra_args=()):
    """Run the gate; current_records is one rep (list of records) or many
    (list of lists) — each rep becomes its own --current directory, the
    shape the bench-smoke CMake target produces (rep1/, rep2/, ...)."""
    reps = (current_records
            if current_records and isinstance(current_records[0], list)
            else [current_records])
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "baseline")
        os.mkdir(base_dir)
        write_report(base_dir, baseline_records)
        current_args = []
        for i, rep_records in enumerate(reps):
            rep_dir = os.path.join(tmp, f"rep{i + 1}")
            os.mkdir(rep_dir)
            write_report(rep_dir, rep_records)
            current_args += ["--current", rep_dir]
        proc = subprocess.run(
            [sys.executable, SCRIPT, "--baseline", base_dir,
             *current_args, *extra_args],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


def check(name, condition, detail=""):
    if condition:
        print(f"ok: {name}")
    else:
        print(f"FAIL: {name} {detail}")
        FAILURES.append(name)


def main():
    # 1. Zero (sub-resolution) baseline + small measurable current time:
    #    must PASS with --min-seconds 0. The old code judged the zero
    #    baseline by the vacuous relative test plus bare abs-slack, so any
    #    current time beyond 0.1s failed; 0.12s is measurable timer noise,
    #    not a provable regression against a baseline that only says
    #    "faster than one timer tick".
    rc, out = run_compare([record("figX", 0.0)], [record("figX", 0.12)],
                          ["--min-seconds", "0"])
    check("zero baseline, modest current time passes", rc == 0, out)
    check("no inf ratio in output", "inf" not in out, out)

    # 2. Zero baseline + current time far beyond the absolute noise floor:
    #    still a regression (the absolute-slack path must keep teeth).
    rc, out = run_compare([record("figX", 0.0)], [record("figX", 5.0)],
                          ["--min-seconds", "0"])
    check("zero baseline, huge current time fails", rc == 1, out)
    check("sub-resolution verdict labeled n/a", "n/a" in out, out)

    # 3. --calibrate with every baseline sub-resolution: median over zero
    #    measurable ratios must not crash (StatisticsError in the old code).
    rc, out = run_compare([record("figX", 0.0)], [record("figX", 0.01)],
                          ["--min-seconds", "0", "--calibrate"])
    check("all-zero baseline under --calibrate does not crash",
          rc in (0, 1) and "Traceback" not in out, out)
    check("all-zero baseline under --calibrate passes", rc == 0, out)

    # 4. Default --min-seconds still skips sub-resolution baselines
    #    entirely (no behavior change for the stock CI invocation).
    rc, out = run_compare([record("figX", 0.0)], [record("figX", 5.0)])
    check("default min-seconds skips sub-resolution series", rc == 0, out)

    # 5. The ordinary relative gate still works on measurable baselines.
    rc, out = run_compare([record("figX", 1.0)], [record("figX", 2.0)])
    check("measurable 2x regression fails", rc == 1, out)
    rc, out = run_compare([record("figX", 1.0)], [record("figX", 1.05)])
    check("measurable 5% slack passes", rc == 0, out)

    # 6. TT(k) series in the bench_topk style: one series per k, the budget
    #    encoded in the dataset column ("k=10"). Each must be gated
    #    independently — a regression in one k must fail even when every
    #    other k improved — and a dropped k-series must trip the gate.
    topk_base = [record("figX", 1.0, k=10, dataset="k=10"),
                 record("figX", 1.0, k=100, dataset="k=100")]
    rc, out = run_compare(topk_base,
                          [record("figX", 0.5, k=10, dataset="k=10"),
                           record("figX", 0.9, k=100, dataset="k=100")])
    check("independent TT(k) series pass when all within threshold",
          rc == 0, out)
    rc, out = run_compare(topk_base,
                          [record("figX", 0.5, k=10, dataset="k=10"),
                           record("figX", 2.0, k=100, dataset="k=100")])
    check("regression in one TT(k) series fails despite others improving",
          rc == 1, out)
    check("the regressed series is the k=100 one", "k=100" in out, out)
    rc, out = run_compare(topk_base,
                          [record("figX", 0.5, k=10, dataset="k=10")])
    check("missing TT(k) series fails the gate", rc == 1, out)

    # 7. Concurrency records (threads != 1) are invisible to the gate: a
    #    "regressed" concurrent series must not fail, and a concurrent
    #    baseline series must not count as missing from the current run.
    rc, out = run_compare(
        [record("figX", 1.0), record("figX", 1.0, threads=4)],
        [record("figX", 1.0), record("figX", 99.0, threads=4)])
    check("threads!=1 series ignored by the gate", rc == 0, out)

    # 8. Planner regret in the bench_plan style: each (shape, k) reports
    #    "auto" next to "oracle-best"/"oracle-worst". The series are keyed
    #    by algorithm, so an auto pick that degrades from best-of-6 to
    #    worst-of-6 must fail the gate even though the oracle rows (the
    #    strategies themselves) are unchanged.
    def plan_rows(auto_s):
        return [record("plan", auto_s, k=1, algorithm="auto",
                       dataset="k=1"),
                record("plan", 1.0, k=1, algorithm="oracle-best",
                       dataset="k=1"),
                record("plan", 8.0, k=1, algorithm="oracle-worst",
                       dataset="k=1")]
    rc, out = run_compare(plan_rows(1.0), plan_rows(1.05))
    check("planner regret: auto tracking oracle-best passes", rc == 0, out)
    rc, out = run_compare(plan_rows(1.0), plan_rows(8.0))
    check("planner regret: auto at worst-of-6 fails the gate", rc == 1, out)
    check("the regressed series is the auto one", "auto" in out, out)

    # 9. TTF series in the bench_ttf style: the Engine prepare+TTF row and
    #    the paired layout-replica rows (Prefill-columnar vs Prefill-rowref)
    #    are independent series keyed by algorithm. Losing the columnar
    #    advantage (Prefill-columnar regressing to rowref's time) must fail
    #    even though Prefill-rowref itself is unchanged.
    def ttf_rows(engine_s, col_s, row_s):
        return [record("ttf", engine_s, k=1, algorithm="Engine",
                       dataset="prepare+first"),
                record("ttf", col_s, k=1, algorithm="Prefill-columnar",
                       dataset="prefill"),
                record("ttf", row_s, k=1, algorithm="Prefill-rowref",
                       dataset="prefill")]
    rc, out = run_compare(ttf_rows(2.0, 1.0, 2.0), ttf_rows(2.1, 1.05, 2.0))
    check("ttf: steady columnar advantage passes", rc == 0, out)
    rc, out = run_compare(ttf_rows(2.0, 1.0, 2.0), ttf_rows(2.0, 2.0, 2.0))
    check("ttf: columnar prefill regressing to rowref time fails",
          rc == 1, out)
    check("the regressed series is Prefill-columnar",
          "Prefill-columnar" in out, out)

    # 10. Repeated --current (min of N reps): one noisy rep must not fail
    #     the gate when another rep measured the true (baseline) time — the
    #     minimum across reps is what gets judged. A regression present in
    #     EVERY rep must still fail.
    rc, out = run_compare([record("figX", 1.0)],
                          [[record("figX", 2.0)], [record("figX", 1.0)]])
    check("min-of-reps: one noisy rep passes", rc == 0, out)
    check("min-of-reps announced", "min over 2 repetition" in out, out)
    rc, out = run_compare([record("figX", 1.0)],
                          [[record("figX", 2.0)], [record("figX", 2.1)]])
    check("min-of-reps: regression in every rep still fails", rc == 1, out)
    # A series measured by only one rep is still gated (min over the reps
    # that have it), and a series missing from ALL reps trips the gate.
    rc, out = run_compare(
        [record("figX", 1.0), record("figX", 1.0, k=10, dataset="k=10")],
        [[record("figX", 1.0)],
         [record("figX", 1.0), record("figX", 0.9, k=10, dataset="k=10")]])
    check("min-of-reps: series in a single rep is gated", rc == 0, out)
    rc, out = run_compare(
        [record("figX", 1.0), record("figX", 1.0, k=10, dataset="k=10")],
        [[record("figX", 1.0)], [record("figX", 1.0)]])
    check("min-of-reps: series missing from all reps fails", rc == 1, out)

    # 11. Shard scaling in the bench_shard style: per-S prepare and drain
    #     rows are independent series keyed by algorithm ("prepare(S=4)",
    #     "Lazy(S=4)", ...). The sharded prepare regressing must fail even
    #     when the S=1 anchor is unchanged, and min-of-reps applies to the
    #     shard rows like any other series.
    def shard_rows(prep_s1, prep_s4, drain_s4):
        return [record("shard", prep_s1, k=1, algorithm="prepare(S=1)",
                       dataset="prepare"),
                record("shard", prep_s4, k=1, algorithm="prepare(S=4)",
                       dataset="prepare"),
                record("shard", drain_s4, k=100, algorithm="Lazy(S=4)",
                       dataset="ranked-union")]
    rc, out = run_compare(shard_rows(2.0, 1.0, 1.0),
                          shard_rows(2.0, 1.05, 1.0))
    check("shard scaling: steady per-S series pass", rc == 0, out)
    rc, out = run_compare(shard_rows(2.0, 1.0, 1.0),
                          shard_rows(2.0, 2.0, 1.0))
    check("shard scaling: S=4 prepare regression fails", rc == 1, out)
    check("the regressed series is prepare(S=4)", "prepare(S=4)" in out, out)
    rc, out = run_compare(shard_rows(2.0, 1.0, 1.0),
                          [shard_rows(2.0, 2.0, 1.0),
                           shard_rows(2.0, 1.0, 2.5)])
    check("shard scaling: min-of-reps covers per-S series", rc == 0, out)

    if FAILURES:
        print(f"\n{len(FAILURES)} bench_compare regression checks failed")
        return 1
    print("\nall bench_compare regression checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
