#!/usr/bin/env python3
"""Compare BENCH_*.json benchmark reports against a checked-in baseline.

The benchmark harness (bench/harness.{h,cc}) writes one schema-versioned
BENCH_<bench>.json per bench executable when run with --json-dir=DIR (the
`bench-smoke` CMake target does this at --smoke scale). This script fails
(exit 1) when the TTL of any measurement series regresses by more than
--threshold relative to the baseline.

A series is identified by (figure, query, dataset, algorithm, n); its TTL is
the `seconds` of the record with the largest k (the harness always emits the
final cumulative checkpoint). Series whose baseline TTL is below
--min-seconds are skipped: micro-times are timer noise, not signal. A
regression must additionally exceed --abs-slack in absolute seconds, so
sub-tenth-of-a-second jitter on shared CI runners does not flake the gate
while any order-of-magnitude regression still trips it.

--calibrate rescales every baseline TTL by the median current/baseline
ratio across all compared series before judging. A uniformly slower (or
faster) machine than the one that produced the baseline then cancels out,
and only series that regressed *relative to the rest of the suite* fail —
this is what CI uses, since the checked-in baseline comes from a different
machine. Without --calibrate, times are compared absolutely (right for
same-machine before/after runs).

--current may be repeated, one directory per benchmark repetition (the
bench-smoke CMake target runs every bench ANYK_BENCH_SMOKE_REPS times into
rep1/, rep2/, ...). Each series' TTL is then the MINIMUM across the
repetitions that measured it: on noisy shared runners the minimum is the
best estimate of the true cost (outside interference only ever adds time),
so min-of-N flakes far less than any single run.

Usage:
  scripts/bench_compare.py --baseline bench/baselines --current build/bench-json
  scripts/bench_compare.py --baseline bench/baselines \
      --current build/bench-json/rep1 --current build/bench-json/rep2
"""

import argparse
import json
import os
import statistics
import sys

# v1: timing columns only; v2 adds per-record allocs / peak_rss_kb (ignored
# here — the gate judges TTL only, so old baselines keep working); v3 adds
# threads / answers_per_sec (concurrency series; the gate skips every record
# with threads != 1 — concurrent throughput is scheduler-dependent and is
# judged by eye from the uploaded artifacts, not by this gate).
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3)

# Below this many seconds a baseline TTL is considered sub-timer-resolution:
# the measurement carries no relative signal (the true time may be anywhere
# below the timer tick), so such series are judged by the absolute-slack
# path alone instead of a current/baseline ratio (a zero baseline would map
# any measurable current time to ratio = inf and fail the gate spuriously).
TIMER_RESOLUTION_SECONDS = 1e-6

# What a sub-resolution baseline could truly have been: anything up to the
# timer-noise floor. Sub-resolution series are judged as "regressed" only
# when the current TTL exceeds this floor plus --abs-slack. Deliberately not
# lowered by --min-seconds: passing --min-seconds 0 widens which series get
# *compared*, it cannot sharpen what a zero baseline is able to prove.
SUB_RESOLUTION_FLOOR_SECONDS = 0.05


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    version = report.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"{path}: schema_version {version} not in supported "
            f"{SUPPORTED_SCHEMA_VERSIONS}")
    return report


def ttl_by_series(report):
    """Map (figure, query, dataset, algorithm, n) -> (k, seconds) at max k.

    Concurrency records (schema v3, threads != 1) are excluded: the gate
    only judges serial TTL.
    """
    series = {}
    for rec in report.get("records", []):
        if rec.get("threads", 1) != 1:
            continue
        key = (rec["figure"], rec["query"], rec["dataset"], rec["algorithm"],
               rec["n"])
        k, seconds = rec["k"], rec["seconds"]
        if key not in series or k > series[key][0]:
            series[key] = (k, seconds)
    return series


def fmt_key(key):
    figure, query, dataset, algorithm, n = key
    return f"{figure}/{query}/{dataset}/{algorithm}@n={n}"


def merged_current_series(current_dirs, fname):
    """Per-series (k, seconds) for `fname`, min seconds across rep dirs.

    A series' TTL is the minimum over every repetition that measured it
    (reps that miss the file entirely contribute nothing). The k recorded
    alongside is the one from the winning rep.
    """
    merged = {}
    for d in current_dirs:
        path = os.path.join(d, fname)
        if not os.path.exists(path):
            continue
        for key, (k, seconds) in ttl_by_series(load_report(path)).items():
            if key not in merged or seconds < merged[key][1]:
                merged[key] = (k, seconds)
    return merged


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="directory with baseline BENCH_*.json files")
    parser.add_argument("--current", required=True, action="append",
                        help="directory with freshly produced BENCH_*.json; "
                             "repeat once per benchmark repetition — each "
                             "series' TTL is the minimum across reps")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated relative TTL regression "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore series whose baseline TTL is below this "
                             "(timer noise; default 0.05s)")
    parser.add_argument("--abs-slack", type=float, default=0.1,
                        help="a regression must also be at least this many "
                             "seconds slower (scheduler noise; default 0.1s)")
    parser.add_argument("--calibrate", action="store_true",
                        help="rescale the baseline by the median "
                             "current/baseline ratio first (cross-machine "
                             "comparison; see above)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every compared series")
    args = parser.parse_args()

    current_files = sorted({
        f for d in args.current for f in os.listdir(d)
        if f.startswith("BENCH_") and f.endswith(".json")})
    if not current_files:
        print(f"error: no BENCH_*.json files in {', '.join(args.current)}",
              file=sys.stderr)
        return 2

    # Every baseline file must have a current counterpart, otherwise a bench
    # that silently stopped emitting JSON would switch the gate off for
    # itself (delete the stale baseline file if the bench was removed).
    baseline_files = sorted(
        f for f in os.listdir(args.baseline)
        if f.startswith("BENCH_") and f.endswith(".json"))
    missing_files = [f for f in baseline_files if f not in current_files]
    if missing_files:
        for f in missing_files:
            print(f"error: baseline {f} has no report in "
                  f"{', '.join(args.current)}", file=sys.stderr)
        return 1

    if len(args.current) > 1:
        print(f"current TTLs are the min over {len(args.current)} "
              f"repetition directories")

    # Pass 1: pair every current series with its baseline.
    rows = []  # (fname, key, base_k, base_ttl, cur_k, cur_ttl)
    skipped_small = missing_series = 0
    for fname in current_files:
        base_path = os.path.join(args.baseline, fname)
        if not os.path.exists(base_path):
            print(f"note: no baseline for {fname} (new bench?) — skipping")
            continue
        current = merged_current_series(args.current, fname)
        baseline = ttl_by_series(load_report(base_path))

        for key, (base_k, base_ttl) in sorted(baseline.items()):
            if key not in current:
                missing_series += 1
                print(f"error: {fname}: baseline series {fmt_key(key)} "
                      f"missing from current run — regenerate the baseline "
                      f"if the smoke sizes changed")
                continue
            cur_k, cur_ttl = current[key]
            if base_ttl < args.min_seconds:
                skipped_small += 1
                continue
            rows.append((fname, key, base_k, base_ttl, cur_k, cur_ttl))

    # Pass 2 (--calibrate): cancel uniform machine-speed differences.
    # Sub-resolution baselines contribute no meaningful ratio; without any
    # measurable series the scale stays 1.0 (median of an empty list would
    # raise StatisticsError).
    scale = 1.0
    if args.calibrate and rows:
        ratios = [cur_ttl / base_ttl
                  for _, _, _, base_ttl, _, cur_ttl in rows
                  if base_ttl > TIMER_RESOLUTION_SECONDS]
        if ratios:
            scale = statistics.median(ratios)
            print(f"calibration: median current/baseline ratio = "
                  f"{scale:.3f}; baseline rescaled accordingly")
        else:
            print("calibration: no series with a measurable baseline TTL; "
                  "scale left at 1.0")

    # Pass 3: judge.
    regressions = []
    improvements = []
    compared = 0
    for fname, key, base_k, base_ttl, cur_k, cur_ttl in rows:
        compared += 1
        base_scaled = base_ttl * scale
        if base_scaled <= TIMER_RESOLUTION_SECONDS:
            # Sub-resolution baseline: no ratio exists (the true baseline is
            # anywhere below one timer tick, so current/baseline would be
            # inf and any measurable current time would trip the relative
            # gate). Judge by the absolute-slack path only: a regression
            # must exceed everything the baseline could have been (the
            # timer-noise floor) by at least --abs-slack.
            floor = max(args.min_seconds, SUB_RESOLUTION_FLOOR_SECONDS)
            line = (f"{fname}: {fmt_key(key)}: TTL {base_scaled:.4f}s -> "
                    f"{cur_ttl:.4f}s (n/a — sub-resolution baseline, "
                    f"k={base_k}->{cur_k})")
            if cur_ttl > floor + args.abs_slack:
                regressions.append(line)
            if args.verbose:
                print("  " + line)
            continue
        ratio = cur_ttl / base_scaled
        line = (f"{fname}: {fmt_key(key)}: TTL {base_scaled:.4f}s -> "
                f"{cur_ttl:.4f}s ({ratio:.2f}x, k={base_k}->{cur_k})")
        if (cur_ttl > base_scaled * (1.0 + args.threshold)
                and cur_ttl > base_scaled + args.abs_slack):
            regressions.append(line)
        elif cur_ttl < base_scaled * (1.0 - args.threshold):
            improvements.append(line)
        if args.verbose:
            print("  " + line)

    print(f"\ncompared {compared} series "
          f"({skipped_small} below --min-seconds, "
          f"{missing_series} missing from current)")
    if improvements:
        print(f"\n{len(improvements)} series improved by >"
              f"{args.threshold:.0%}:")
        for line in improvements:
            print("  " + line)
    if regressions:
        print(f"\nFAIL: {len(regressions)} series regressed by >"
              f"{args.threshold:.0%}:")
        for line in regressions:
            print("  " + line)
        return 1
    if missing_series:
        # Same rationale as missing files: a series that silently drops out
        # of the comparison is the gate turning itself off.
        print(f"\nFAIL: {missing_series} baseline series not covered by the "
              f"current run")
        return 1
    print("\nPASS: no TTL regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
