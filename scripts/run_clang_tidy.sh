#!/usr/bin/env bash
# Run clang-tidy over every translation unit in compile_commands.json.
#
# Usage: scripts/run_clang_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#   BUILD_DIR defaults to ./build and must contain compile_commands.json
#   (configure with `cmake -B build -S .`; CMAKE_EXPORT_COMPILE_COMMANDS is
#   always on for this project).
#
# Checks come from the repo-root .clang-tidy. Any diagnostic fails the run
# (--warnings-as-errors='*'), which is what the CI static-analysis job and
# the optional `clang_tidy_test` ctest rely on. Exits 3 when no clang-tidy
# binary exists so callers can distinguish "unavailable" from "findings".

set -u -o pipefail

BUILD_DIR="${1:-build}"
shift || true
[ "${1:-}" = "--" ] && shift

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
DB="$BUILD_DIR/compile_commands.json"

if [ ! -f "$DB" ]; then
  echo "run_clang_tidy: $DB not found; configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

TIDY=""
for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
            clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    TIDY="$cand"
    break
  fi
done
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: no clang-tidy binary on PATH; skipping" >&2
  exit 3
fi

# Project sources only — keep third-party/test-framework TUs (gtest etc.)
# out of the run.
mapfile -t FILES < <(
  python3 - "$DB" "$ROOT" <<'EOF'
import json, os, sys
db, root = sys.argv[1], sys.argv[2]
seen = set()
for entry in json.load(open(db)):
    path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    rel = os.path.relpath(path, root)
    if rel.startswith(("src/", "cli/", "tests/", "bench/")):
        seen.add(path)
print("\n".join(sorted(seen)))
EOF
)

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no project sources in $DB" >&2
  exit 2
fi

echo "run_clang_tidy: $TIDY over ${#FILES[@]} translation units"
STATUS=0
for f in "${FILES[@]}"; do
  "$TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*' "$@" "$f" \
    || STATUS=1
done

if [ "$STATUS" -eq 0 ]; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: findings above" >&2
fi
exit "$STATUS"
