// User-supplied hypertree decompositions (paper Section 5.3).
//
// The framework is "orthogonal to the decomposition algorithm used": any
// decomposition of a cyclic CQ into a tree (or union of trees) of bags adds
// ranked enumeration "for free". This module materializes such a
// decomposition: each bag covers a set of atoms (its subquery is evaluated
// with the worst-case-optimal GenericJoin), *pins* a subset of them for
// weight accounting — every atom must be pinned in exactly one bag per tree
// (the paper's schema-level lineage tracking) — and the bags form a rooted
// tree joined on their shared variables.
//
// Bag rows are deduplicated to (bag values, pinned witness rows): covered-
// but-unpinned atoms contribute existence, not multiplicity, so each full
// witness of the query is produced exactly once per tree.

#ifndef ANYK_QUERY_BAG_DECOMPOSITION_H_
#define ANYK_QUERY_BAG_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "query/cq.h"
#include "query/join_tree.h"
#include "storage/database.h"

namespace anyk {

struct BagSpec {
  std::vector<uint32_t> cover_atoms;   // atoms joined into this bag
  std::vector<uint32_t> pinned_atoms;  // subset charged for weights/witnesses
  int parent = -1;                     // bag tree structure
};

/// Materialize one join-tree instance from a bag decomposition.
/// Requirements (checked): every atom covered by >= 1 bag; every atom pinned
/// in exactly one bag; pinned atoms are covered by their bag; the bag tree
/// satisfies the running-intersection property over the bags' variables.
TDPInstance BuildBagInstance(const Database& db, const ConjunctiveQuery& q,
                             const std::vector<BagSpec>& bags);

}  // namespace anyk

#endif  // ANYK_QUERY_BAG_DECOMPOSITION_H_
