#include "query/join_tree.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace anyk {

void FinalizeTopology(TDPInstance* inst) {
  auto& nodes = inst->nodes;
  int root = -1;
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].children.clear();
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].parent < 0) {
      ANYK_CHECK_EQ(root, -1) << "multiple roots in join tree";
      root = static_cast<int>(i);
    } else {
      nodes[nodes[i].parent].children.push_back(static_cast<int>(i));
    }
  }
  ANYK_CHECK_GE(root, 0) << "join tree has no root";

  // Planner stage-order hint: visit children in ascending priority (stable,
  // so equal priorities keep index order — identical to the legacy order
  // when the hint is absent or uniform).
  if (inst->child_priority.size() == nodes.size()) {
    for (size_t i = 0; i < nodes.size(); ++i) {
      std::stable_sort(nodes[i].children.begin(), nodes[i].children.end(),
                       [&](int a, int b) {
                         return inst->child_priority[a] <
                                inst->child_priority[b];
                       });
    }
  }

  // Iterative preorder DFS.
  inst->order.clear();
  inst->order.reserve(nodes.size());
  std::vector<int> stack = {root};
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    inst->order.push_back(static_cast<uint32_t>(u));
    // Push children in reverse so they are visited in index order.
    for (auto it = nodes[u].children.rbegin(); it != nodes[u].children.rend();
         ++it) {
      stack.push_back(*it);
    }
  }
  ANYK_CHECK_EQ(inst->order.size(), nodes.size())
      << "join tree is not connected";
}

void ComputeJoinKeys(TDPInstance* inst) {
  for (auto& node : inst->nodes) {
    node.key_cols.clear();
    node.parent_key_cols.clear();
    if (node.parent < 0) continue;
    const auto& pvars = inst->nodes[node.parent].vars;
    for (size_t c = 0; c < node.vars.size(); ++c) {
      auto it = std::find(pvars.begin(), pvars.end(), node.vars[c]);
      if (it != pvars.end()) {
        node.key_cols.push_back(static_cast<uint32_t>(c));
        node.parent_key_cols.push_back(
            static_cast<uint32_t>(it - pvars.begin()));
      }
    }
  }
}

namespace {

// Build the node for a single atom. If the atom repeats a variable, the
// table is filtered (rows must match on repeated columns) and projected onto
// the distinct variables.
TDPNode MakeAtomNode(const Database& db, const ConjunctiveQuery& q,
                     size_t atom_idx) {
  const Relation& rel = db.Get(q.atom(atom_idx).relation);
  const auto& var_ids = q.AtomVarIds(atom_idx);
  ANYK_CHECK_EQ(rel.arity(), var_ids.size())
      << "atom " << q.atom(atom_idx).relation << " arity mismatch";

  TDPNode node;
  node.pinned_atoms = {static_cast<uint32_t>(atom_idx)};

  // Distinct variables in first-occurrence order.
  std::vector<uint32_t> distinct_cols;
  bool repeated = false;
  for (size_t c = 0; c < var_ids.size(); ++c) {
    bool seen = false;
    for (uint32_t d : distinct_cols) {
      if (var_ids[d] == var_ids[c]) seen = true;
    }
    if (seen) {
      repeated = true;
    } else {
      distinct_cols.push_back(static_cast<uint32_t>(c));
    }
  }
  for (uint32_t c : distinct_cols) node.vars.push_back(var_ids[c]);

  if (!repeated) {
    node.table = &rel;
    const size_t rows = rel.NumRows();
    node.pin_weights.resize(rows);
    node.pin_rows.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      node.pin_weights[r] = rel.Weight(r);
      node.pin_rows[r] = static_cast<uint32_t>(r);
    }
    return node;
  }

  // Filter rows where repeated variables disagree; project onto distinct.
  auto owned = std::make_shared<Relation>(rel.name() + "#dedup",
                                          distinct_cols.size());
  std::vector<Value> buf(distinct_cols.size());
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    bool ok = true;
    for (size_t c = 0; c < var_ids.size() && ok; ++c) {
      for (size_t d = c + 1; d < var_ids.size() && ok; ++d) {
        if (var_ids[c] == var_ids[d] && rel.At(r, c) != rel.At(r, d)) {
          ok = false;
        }
      }
    }
    if (!ok) continue;
    for (size_t i = 0; i < distinct_cols.size(); ++i) {
      buf[i] = rel.At(r, distinct_cols[i]);
    }
    owned->AddRow(buf, rel.Weight(r));
    node.pin_weights.push_back(rel.Weight(r));
    node.pin_rows.push_back(static_cast<uint32_t>(r));
  }
  node.table = owned.get();
  node.owned = std::move(owned);
  return node;
}

}  // namespace

TDPInstance BuildInstanceFromTopology(const Database& db,
                                      const ConjunctiveQuery& q,
                                      const JoinTreeTopology& topo) {
  ANYK_CHECK_EQ(topo.parent.size(), q.NumAtoms());
  TDPInstance inst;
  inst.num_vars = q.NumVars();
  inst.num_atoms = q.NumAtoms();
  inst.child_priority = topo.child_priority;
  inst.nodes.reserve(q.NumAtoms());
  for (size_t i = 0; i < q.NumAtoms(); ++i) {
    TDPNode node = MakeAtomNode(db, q, i);
    node.parent = topo.parent[i];
    inst.nodes.push_back(std::move(node));
  }
  FinalizeTopology(&inst);
  ComputeJoinKeys(&inst);
  return inst;
}

// If the join tree is a path (every node has undirected degree <= 2),
// re-root it at an endpoint so the serialized DP is *serial*: chains keep
// every stage at a single child slot, which is both what the paper's
// Section 3 formulation does for path queries and what lets ANYK-REC reuse
// suffix rankings without the Cartesian-combination machinery.
JoinTreeTopology RerootChains(const JoinTreeTopology& topo) {
  const size_t n = topo.parent.size();
  if (n <= 1) return topo;
  std::vector<std::vector<int>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    if (topo.parent[i] >= 0) {
      adj[i].push_back(topo.parent[i]);
      adj[topo.parent[i]].push_back(static_cast<int>(i));
    }
  }
  int endpoint = -1;
  for (size_t i = 0; i < n; ++i) {
    if (adj[i].size() > 2) return topo;  // genuinely branching: keep as is
    if (adj[i].size() <= 1) endpoint = static_cast<int>(i);
  }
  ANYK_CHECK_GE(endpoint, 0);
  JoinTreeTopology chain;
  chain.parent.assign(n, -1);
  chain.root = endpoint;
  std::vector<bool> seen(n, false);
  seen[endpoint] = true;
  std::vector<int> stack = {endpoint};
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        chain.parent[v] = u;
        stack.push_back(v);
      }
    }
  }
  return chain;
}

JoinTreeTopology NormalizeTopology(const JoinTreeTopology& topo,
                                   const ConjunctiveQuery& q) {
  // Tree links whose endpoints share no variables are Cartesian links: the
  // child subtree can legally attach anywhere. GYO may hang several such
  // subtrees off one node (a star); we re-chain them — each unit attaches
  // under the *deepest* node of the previous one — so that pure products
  // serialize as the paper's serial DP (Example 6) instead of a shallow
  // tree that forces the product-combination machinery.
  const size_t n = topo.parent.size();
  if (n <= 1) return topo;
  auto shares_var = [&](size_t a, size_t b) {
    for (uint32_t v : q.AtomVarIds(a)) {
      const auto& bv = q.AtomVarIds(b);
      if (std::find(bv.begin(), bv.end(), v) != bv.end()) return true;
    }
    return false;
  };
  JoinTreeTopology cut = topo;
  std::vector<int> unit_roots;
  for (size_t i = 0; i < n; ++i) {
    if (cut.parent[i] >= 0 &&
        !shares_var(i, static_cast<size_t>(cut.parent[i]))) {
      cut.parent[i] = -1;  // sever the Cartesian link
    }
    if (cut.parent[i] < 0) unit_roots.push_back(static_cast<int>(i));
  }
  if (unit_roots.size() <= 1) return topo;  // no Cartesian links

  // Depth-first depth computation per unit to find its deepest node.
  std::vector<std::vector<int>> children(n);
  for (size_t i = 0; i < n; ++i) {
    if (cut.parent[i] >= 0) children[cut.parent[i]].push_back(static_cast<int>(i));
  }
  auto deepest = [&](int root) {
    int best = root, best_depth = 0;
    std::vector<std::pair<int, int>> stack = {{root, 0}};
    while (!stack.empty()) {
      auto [u, d] = stack.back();
      stack.pop_back();
      if (d > best_depth) {
        best = u;
        best_depth = d;
      }
      for (int c : children[u]) stack.push_back({c, d + 1});
    }
    return best;
  };
  for (size_t k = 1; k < unit_roots.size(); ++k) {
    cut.parent[unit_roots[k]] = deepest(unit_roots[k - 1]);
    // Rebuild child lists incrementally for subsequent depth queries.
    children[cut.parent[unit_roots[k]]].push_back(unit_roots[k]);
  }
  cut.root = unit_roots[0];
  return cut;
}

TDPInstance BuildAcyclicInstance(const Database& db,
                                 const ConjunctiveQuery& q) {
  GyoResult gyo = GyoReduce(Hypergraph::FromQuery(q));
  ANYK_CHECK(gyo.acyclic) << "query is not acyclic: " << q.ToString();
  return BuildInstanceFromTopology(
      db, q, RerootChains(NormalizeTopology(gyo.tree, q)));
}

}  // namespace anyk
