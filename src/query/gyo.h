// GYO reduction (Graham / Yu-Ozsoyoglu): decides alpha-acyclicity of a query
// hypergraph in polynomial time and, when acyclic, produces a join tree
// (paper Section 2.1).

#ifndef ANYK_QUERY_GYO_H_
#define ANYK_QUERY_GYO_H_

#include <cstddef>
#include <vector>

#include "query/hypergraph.h"

namespace anyk {

/// Join-tree topology over atom (edge) indices.
struct JoinTreeTopology {
  std::vector<int> parent;  // parent[i] = parent atom index, -1 for the root
  int root = -1;
  // Optional stage-order hint from the planner: when sized like `parent`,
  // FinalizeTopology visits each node's children in ascending priority
  // (stable) instead of index order. Empty = legacy index order.
  std::vector<double> child_priority;

  std::vector<std::vector<int>> Children() const {
    std::vector<std::vector<int>> ch(parent.size());
    for (size_t i = 0; i < parent.size(); ++i) {
      if (parent[i] >= 0) ch[parent[i]].push_back(static_cast<int>(i));
    }
    return ch;
  }
};

struct GyoResult {
  bool acyclic = false;
  JoinTreeTopology tree;  // meaningful only if acyclic
};

/// Run the GYO reduction: repeatedly (a) delete vertices occurring in a
/// single edge ("ear vertices"), (b) delete edges contained in another edge,
/// recording the container as tree parent. Acyclic iff one edge remains.
GyoResult GyoReduce(const Hypergraph& h);

/// Convenience: is the query (alpha-)acyclic?
bool IsAcyclic(const ConjunctiveQuery& q);

/// Is the (possibly non-full) query free-connex acyclic? (Acyclic, and the
/// hypergraph extended with a head edge over the free variables is acyclic
/// too — Section 8.1.)
bool IsFreeConnexAcyclic(const ConjunctiveQuery& q);

}  // namespace anyk

#endif  // ANYK_QUERY_GYO_H_
