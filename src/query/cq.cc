#include "query/cq.h"

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace anyk {

size_t ConjunctiveQuery::AddAtom(const std::string& relation,
                                 const std::vector<std::string>& vars) {
  // Zero-arity atoms are allowed: a nullary relation acts as a propositional
  // fact with multiplicity (cross product with its rows; false when empty).
  atoms_.push_back(Atom{relation, vars});
  std::vector<uint32_t> ids;
  ids.reserve(vars.size());
  for (const auto& v : vars) ids.push_back(InternVar(v));
  atom_var_ids_.push_back(std::move(ids));
  return atoms_.size() - 1;
}

void ConjunctiveQuery::SetFreeVars(const std::vector<std::string>& names) {
  free_vars_.clear();
  for (const auto& name : names) {
    int64_t id = FindVar(name);
    ANYK_CHECK(id >= 0) << "free variable " << name << " not used in any atom";
    free_vars_.push_back(static_cast<uint32_t>(id));
  }
  if (free_vars_.size() == NumVars()) free_vars_.clear();  // full after all
}

int64_t ConjunctiveQuery::FindVar(const std::string& name) const {
  auto it = var_ids_.find(name);
  return it == var_ids_.end() ? -1 : static_cast<int64_t>(it->second);
}

uint32_t ConjunctiveQuery::InternVar(const std::string& name) {
  auto [it, inserted] =
      var_ids_.try_emplace(name, static_cast<uint32_t>(var_names_.size()));
  if (inserted) var_names_.push_back(name);
  return it->second;
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream out;
  out << "Q(";
  if (IsFull()) {
    for (size_t i = 0; i < var_names_.size(); ++i) {
      if (i) out << ",";
      out << var_names_[i];
    }
  } else {
    for (size_t i = 0; i < free_vars_.size(); ++i) {
      if (i) out << ",";
      out << var_names_[free_vars_[i]];
    }
  }
  out << ") :- ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i) out << ", ";
    out << atoms_[i].relation << "(";
    for (size_t j = 0; j < atoms_[i].vars.size(); ++j) {
      if (j) out << ",";
      out << atoms_[i].vars[j];
    }
    out << ")";
  }
  return out.str();
}

namespace {
std::string RelName(const std::string& prefix, size_t i, bool single) {
  return single ? prefix : prefix + std::to_string(i + 1);
}
std::string MakeVarName(size_t i) { return "x" + std::to_string(i + 1); }
}  // namespace

ConjunctiveQuery ConjunctiveQuery::Path(size_t l, const std::string& prefix,
                                        bool single_relation) {
  ANYK_CHECK_GE(l, 1u);
  ConjunctiveQuery q;
  for (size_t i = 0; i < l; ++i) {
    q.AddAtom(RelName(prefix, i, single_relation), {MakeVarName(i), MakeVarName(i + 1)});
  }
  return q;
}

ConjunctiveQuery ConjunctiveQuery::Star(size_t l, const std::string& prefix,
                                        bool single_relation) {
  ANYK_CHECK_GE(l, 1u);
  ConjunctiveQuery q;
  for (size_t i = 0; i < l; ++i) {
    q.AddAtom(RelName(prefix, i, single_relation), {MakeVarName(0), MakeVarName(i + 1)});
  }
  return q;
}

ConjunctiveQuery ConjunctiveQuery::Cycle(size_t l, const std::string& prefix,
                                         bool single_relation) {
  ANYK_CHECK_GE(l, 2u);
  ConjunctiveQuery q;
  for (size_t i = 0; i < l; ++i) {
    q.AddAtom(RelName(prefix, i, single_relation),
              {MakeVarName(i), MakeVarName((i + 1) % l)});
  }
  return q;
}

ConjunctiveQuery ConjunctiveQuery::Product(size_t l, const std::string& prefix,
                                           bool single_relation) {
  ANYK_CHECK_GE(l, 1u);
  ConjunctiveQuery q;
  for (size_t i = 0; i < l; ++i) {
    q.AddAtom(RelName(prefix, i, single_relation),
              {"a" + std::to_string(i + 1), "b" + std::to_string(i + 1)});
  }
  return q;
}

namespace {

// Minimal recursive-descent tokenizer for "Head(a,b) :- R(a,c), S(c,b)".
struct Parser {
  const std::string& text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  void Expect(char c) {
    ANYK_CHECK(Consume(c)) << "parse error: expected '" << c << "' at offset "
                           << pos << " in: " << text;
  }

  std::string Identifier() {
    SkipSpace();
    size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_' || text[pos] == '*')) {
      ++pos;
    }
    ANYK_CHECK_GT(pos, start) << "parse error: identifier expected at offset "
                              << pos << " in: " << text;
    return text.substr(start, pos - start);
  }

  // Name(v1, v2, ...)
  std::pair<std::string, std::vector<std::string>> AtomExpr() {
    std::string name = Identifier();
    Expect('(');
    std::vector<std::string> vars;
    if (!Consume(')')) {
      vars.push_back(Identifier());
      while (Consume(',')) vars.push_back(Identifier());
      Expect(')');
    }
    return {name, vars};
  }
};

}  // namespace

ConjunctiveQuery ConjunctiveQuery::Parse(const std::string& text) {
  Parser p{text};
  auto [head_name, head_vars] = p.AtomExpr();
  (void)head_name;
  p.SkipSpace();
  ANYK_CHECK(p.Consume(':')) << "parse error: expected ':-' in: " << text;
  p.Expect('-');
  ConjunctiveQuery q;
  auto [rel, vars] = p.AtomExpr();
  q.AddAtom(rel, vars);
  while (p.Consume(',')) {
    auto [rel2, vars2] = p.AtomExpr();
    q.AddAtom(rel2, vars2);
  }
  p.SkipSpace();
  ANYK_CHECK_EQ(p.pos, text.size()) << "trailing input in: " << text;
  bool full = head_vars.size() == 1 && head_vars[0] == "*";
  if (!full) q.SetFreeVars(head_vars);
  return q;
}

}  // namespace anyk
