// Minimal SQL front-end for the query dialect the paper uses in its
// examples (Example 1, Section 8.1):
//
//   SELECT *                       -- or a list of columns
//   FROM R1, R2 [, Edge e1, Edge e2 ...]        -- aliases enable self-joins
//   WHERE R1.A2 = R2.A1 [AND ...]               -- conjunctive equi-joins
//   ORDER BY WEIGHT [ASC|DESC]                  -- sum of tuple weights
//   LIMIT k                                     -- optional
//
// Columns are addressed positionally as A1..A<arity>. The statement compiles
// to a ConjunctiveQuery: every (atom, column) slot gets a variable, WHERE
// equalities merge variables (union-find), and a non-* SELECT list becomes
// the free variables. Execution uses the tropical (ASC) or arctic (DESC)
// dioid; projections follow the paper's all-weight-projection semantics
// (Section 8.1, option 1) — use MinWeightProjection for option 2.

#ifndef ANYK_QUERY_SQL_H_
#define ANYK_QUERY_SQL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "query/cq.h"
#include "storage/database.h"
#include "storage/value.h"

namespace anyk {

struct SqlStatement {
  ConjunctiveQuery query;
  bool ascending = true;  // ORDER BY WEIGHT ASC (lightest first)
  // 0 = no LIMIT clause (unlimited) — the same "0 means unbounded" sentinel
  // as EnumOptions::k_budget. An explicit `LIMIT 0` is rejected at parse
  // time so the sentinel can never be spelled by accident.
  size_t limit = 0;
  // Variable ids of the SELECT list (empty for SELECT *).
  std::vector<uint32_t> select_vars;
};

/// Parse the SQL dialect above; CHECK-fails on syntax errors with a
/// `SQL:<byte offset>:` prefix locating the offending token. With a
/// database, relation arities are taken from it (otherwise every table
/// defaults to the largest referenced column, at least binary).
SqlStatement ParseSql(const std::string& sql, const Database* db = nullptr);

/// Canonical form of a statement, for use as a cache key: keywords
/// uppercased, whitespace collapsed to single spaces, the implicit ASC made
/// explicit, the trailing semicolon dropped, column names canonicalized
/// (a3 -> A3), each WHERE equality ordered smaller-side-first and the
/// conjunct list sorted — so case/whitespace/conjunct-order variants of the
/// same query map to one key. FROM order is preserved: it determines the
/// SELECT * column order, so reordering it would change results. The
/// normalized text re-parses to an equivalent statement (sql_test pins
/// this); CHECK-fails like ParseSql on syntax errors.
std::string NormalizeSql(const std::string& sql);

struct SqlResult {
  double weight;
  std::vector<Value> values;  // SELECT-list order (all variables for *)
};

/// Parse and execute: ranked enumeration honoring ORDER BY/LIMIT, with
/// all-weight-projection semantics for column lists.
std::vector<SqlResult> ExecuteSql(const Database& db, const std::string& sql);

}  // namespace anyk

#endif  // ANYK_QUERY_SQL_H_
