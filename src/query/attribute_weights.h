// Attribute weights (paper Section 6.1, Example 16): weights on individual
// attribute values are folded into the framework by adding a unary relation
// over the variable's active domain, carrying the per-value weight, plus a
// corresponding atom to the query.

#ifndef ANYK_QUERY_ATTRIBUTE_WEIGHTS_H_
#define ANYK_QUERY_ATTRIBUTE_WEIGHTS_H_

#include <functional>
#include <string>

#include "query/cq.h"
#include "storage/database.h"

namespace anyk {

/// Attach weight_fn(value) to every binding of variable `var`: creates the
/// unary relation "W_<var>" over the variable's active domain and appends
/// the atom W_<var>(var) to the query. Returns the new relation's name.
std::string AddAttributeWeight(Database* db, ConjunctiveQuery* q,
                               const std::string& var,
                               const std::function<double(Value)>& weight_fn);

}  // namespace anyk

#endif  // ANYK_QUERY_ATTRIBUTE_WEIGHTS_H_
