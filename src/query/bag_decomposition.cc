#include "query/bag_decomposition.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dp/projection_tree.h"
#include "join/generic_join.h"
#include "storage/group_index.h"
#include "util/logging.h"

namespace anyk {

TDPInstance BuildBagInstance(const Database& db, const ConjunctiveQuery& q,
                             const std::vector<BagSpec>& bags) {
  const size_t na = q.NumAtoms();
  // Validate the pinning partition.
  std::vector<int> pin_bag(na, -1);
  std::vector<bool> covered(na, false);
  for (size_t b = 0; b < bags.size(); ++b) {
    for (uint32_t a : bags[b].cover_atoms) {
      ANYK_CHECK_LT(a, na);
      covered[a] = true;
    }
    for (uint32_t a : bags[b].pinned_atoms) {
      ANYK_CHECK_EQ(pin_bag[a], -1)
          << "atom " << a << " pinned by two bags (weights counted twice)";
      pin_bag[a] = static_cast<int>(b);
      ANYK_CHECK(std::find(bags[b].cover_atoms.begin(),
                           bags[b].cover_atoms.end(),
                           a) != bags[b].cover_atoms.end())
          << "bag pins atom " << a << " it does not cover";
    }
  }
  for (size_t a = 0; a < na; ++a) {
    ANYK_CHECK(covered[a]) << "atom " << a << " not covered by any bag";
    ANYK_CHECK_GE(pin_bag[a], 0) << "atom " << a << " not pinned";
  }

  TDPInstance inst;
  inst.num_vars = q.NumVars();
  inst.num_atoms = na;

  for (const BagSpec& bag : bags) {
    // Subquery over the covered atoms; variables in first-appearance order.
    ConjunctiveQuery sub;
    std::vector<uint32_t> sub_to_full_var;  // sub var id -> full var id
    std::unordered_map<uint32_t, uint32_t> full_to_sub;
    for (uint32_t a : bag.cover_atoms) {
      std::vector<std::string> names;
      for (uint32_t v : q.AtomVarIds(a)) {
        names.push_back(q.VarName(v));
        if (full_to_sub.emplace(v, sub_to_full_var.size()).second) {
          sub_to_full_var.push_back(v);
        }
      }
      sub.AddAtom(q.atom(a).relation, names);
    }

    JoinResultSet join = GenericJoin(db, sub);

    // Positions of pinned atoms within the bag's cover list.
    std::vector<uint32_t> pin_pos;
    for (uint32_t a : bag.pinned_atoms) {
      for (size_t i = 0; i < bag.cover_atoms.size(); ++i) {
        if (bag.cover_atoms[i] == a) pin_pos.push_back(static_cast<uint32_t>(i));
      }
    }

    auto table = std::make_shared<Relation>("bag", sub_to_full_var.size());
    TDPNode node;
    node.vars = sub_to_full_var;
    node.parent = bag.parent;
    node.pinned_atoms = bag.pinned_atoms;

    // Deduplicate to (values, pinned witness): unpinned covered atoms only
    // attest existence.
    std::unordered_set<Key, KeyHash> seen;
    std::vector<Value> values(sub_to_full_var.size());
    for (size_t i = 0; i < join.size(); ++i) {
      const uint32_t* wit = join.witness(i);
      // Bag values from any witness (all agree on the assignment): read them
      // off the sub-atoms' rows.
      for (size_t ai = 0; ai < bag.cover_atoms.size(); ++ai) {
        const Relation& rel = db.Get(q.atom(bag.cover_atoms[ai]).relation);
        const auto& svars = sub.AtomVarIds(ai);
        for (size_t c = 0; c < svars.size(); ++c) {
          values[svars[c]] = rel.At(wit[ai], c);
        }
      }
      Key dedup(values.begin(), values.end());
      for (uint32_t p : pin_pos) {
        dedup.push_back(static_cast<Value>(wit[p]));
      }
      if (!seen.insert(std::move(dedup)).second) continue;

      double total = 0;
      for (size_t pi = 0; pi < pin_pos.size(); ++pi) {
        const uint32_t a = bag.pinned_atoms[pi];
        const uint32_t row = wit[pin_pos[pi]];
        node.pin_weights.push_back(db.Get(q.atom(a).relation).Weight(row));
        node.pin_rows.push_back(row);
        total += node.pin_weights.back();
      }
      table->AddRow(values, total);
    }
    node.table = table.get();
    node.owned = std::move(table);
    inst.nodes.push_back(std::move(node));
  }

  FinalizeTopology(&inst);
  ComputeJoinKeys(&inst);
  ANYK_CHECK(HasRunningIntersection(inst))
      << "bag tree violates the running-intersection property";
  return inst;
}

}  // namespace anyk
