#include "query/cycle_decomposition.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "storage/group_index.h"
#include "util/logging.h"

namespace anyk {

CycleShape DetectSimpleCycle(const ConjunctiveQuery& q) {
  CycleShape shape;
  const size_t l = q.NumAtoms();
  if (l < 3 || q.NumVars() != l) return shape;
  // Every atom binary with distinct variables; every variable exactly once
  // in first and once in second position.
  std::vector<int> atom_of_first(q.NumVars(), -1);
  for (size_t i = 0; i < l; ++i) {
    const auto& vars = q.AtomVarIds(i);
    if (vars.size() != 2 || vars[0] == vars[1]) return shape;
    if (atom_of_first[vars[0]] != -1) return shape;
    atom_of_first[vars[0]] = static_cast<int>(i);
  }
  // Walk the cycle starting from atom 0.
  shape.atom_order.reserve(l);
  shape.var_order.reserve(l);
  uint32_t atom = 0;
  for (size_t step = 0; step < l; ++step) {
    shape.atom_order.push_back(atom);
    shape.var_order.push_back(q.AtomVarIds(atom)[0]);
    const uint32_t next_var = q.AtomVarIds(atom)[1];
    const int next_atom = atom_of_first[next_var];
    if (next_atom < 0) return shape;
    atom = static_cast<uint32_t>(next_atom);
  }
  if (atom != 0) return shape;  // did not close after exactly l steps
  // All atoms must have been visited exactly once.
  std::vector<bool> seen(l, false);
  for (uint32_t a : shape.atom_order) {
    if (seen[a]) return shape;
    seen[a] = true;
  }
  shape.is_cycle = true;
  return shape;
}

namespace {

enum class Part { kFull, kLight, kHeavy };

// A partition-filtered copy of a relation, remembering original row ids.
struct FilteredRel {
  Relation rel{"", 2};
  std::vector<uint32_t> orig_rows;
};

using CountMap = std::unordered_map<Value, uint32_t>;

CountMap CountFirstAttr(const Relation& rel) {
  CountMap counts;
  counts.reserve(rel.NumRows());
  for (size_t r = 0; r < rel.NumRows(); ++r) ++counts[rel.At(r, 0)];
  return counts;
}

FilteredRel Filter(const Relation& rel, Part part, const CountMap& counts,
                   double threshold) {
  FilteredRel out;
  out.rel = Relation(rel.name(), 2);
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    const bool heavy = counts.at(rel.At(r, 0)) >= threshold;
    if (part == Part::kFull || (part == Part::kHeavy) == heavy) {
      out.rel.AddRow(rel.Row(r), rel.Weight(r));
      out.orig_rows.push_back(static_cast<uint32_t>(r));
    }
  }
  return out;
}

// Bag under construction: schema + rows + pins to original (atom, row).
class BagBuilder {
 public:
  BagBuilder(std::vector<uint32_t> vars, std::vector<uint32_t> pinned_atoms)
      : vars_(std::move(vars)), pinned_atoms_(std::move(pinned_atoms)) {
    table_ = std::make_shared<Relation>("bag", vars_.size());
  }

  // `values` over the bag schema; `pin_weights` / `pin_rows` aligned with
  // the pinned atoms.
  void AddRow(std::span<const Value> values,
              std::span<const double> pin_weights,
              std::span<const uint32_t> pin_rows) {
    double total = 0;
    for (double w : pin_weights) total += w;
    table_->AddRow(values, total);
    pin_weights_.insert(pin_weights_.end(), pin_weights.begin(),
                        pin_weights.end());
    pin_rows_.insert(pin_rows_.end(), pin_rows.begin(), pin_rows.end());
  }

  TDPNode Finish(int parent) && {
    TDPNode node;
    node.vars = std::move(vars_);
    node.parent = parent;
    node.pinned_atoms = std::move(pinned_atoms_);
    node.pin_weights = std::move(pin_weights_);
    node.pin_rows = std::move(pin_rows_);
    node.table = table_.get();
    node.owned = std::move(table_);
    return node;
  }

 private:
  std::vector<uint32_t> vars_;
  std::vector<uint32_t> pinned_atoms_;
  std::shared_ptr<Relation> table_;
  std::vector<double> pin_weights_;
  std::vector<uint32_t> pin_rows_;
};

}  // namespace

std::vector<TDPInstance> DecomposeCycle(const Database& db,
                                        const ConjunctiveQuery& q,
                                        const CycleDecompositionOptions& opts) {
  const CycleShape shape = DetectSimpleCycle(q);
  ANYK_CHECK(shape.is_cycle) << "not a simple cycle: " << q.ToString();
  const size_t l = q.NumAtoms();
  ANYK_CHECK_GE(l, 4u) << "cycle decomposition requires length >= 4 "
                          "(triangles gain nothing over the batch join)";

  // Cycle-position accessors: atom p joins x_p with x_{p+1 mod l}.
  auto rel_at = [&](size_t p) -> const Relation& {
    return db.Get(q.atom(shape.atom_order[p % l]).relation);
  };
  auto orig_atom = [&](size_t p) { return shape.atom_order[p % l]; };
  auto var_at = [&](size_t p) { return shape.var_order[p % l]; };

  size_t n = 0;
  for (size_t p = 0; p < l; ++p) n = std::max(n, rel_at(p).NumRows());
  const double threshold = opts.threshold_override > 0
                               ? opts.threshold_override
                               : std::pow(static_cast<double>(n), 2.0 / l);

  std::vector<CountMap> counts(l);
  for (size_t p = 0; p < l; ++p) counts[p] = CountFirstAttr(rel_at(p));

  // Partition part of cycle-atom p within the tree broken at heavy atom h:
  // atoms before h light, h heavy, after h unrestricted.
  auto part_for = [&](size_t p, size_t h) {
    if (p == h) return Part::kHeavy;
    return p < h ? Part::kLight : Part::kFull;
  };

  std::vector<TDPInstance> result;
  result.reserve(l + 1);

  // ---- Heavy trees T_h, h = 0..l-1 (paper's T_1..T_l) ----
  for (size_t h = 0; h < l; ++h) {
    std::vector<FilteredRel> filtered(l);
    for (size_t p = 0; p < l; ++p) {
      filtered[p] = Filter(rel_at((h + p) % l), part_for((h + p) % l, h),
                           counts[(h + p) % l], threshold);
    }
    // filtered[j] is the relation of cycle atom h+j.
    std::unordered_set<Value> heavy_vals;
    for (size_t r = 0; r < filtered[0].rel.NumRows(); ++r) {
      heavy_vals.insert(filtered[0].rel.At(r, 0));
    }

    TDPInstance inst;
    inst.num_vars = q.NumVars();
    inst.num_atoms = q.NumAtoms();
    const size_t bags = l - 2;

    // Bag 0: atoms h and h+1 joined on x_{h+1}.
    {
      BagBuilder bag({var_at(h), var_at(h + 1), var_at(h + 2)},
                     {orig_atom(h), orig_atom(h + 1)});
      const GroupIndex idx(filtered[1].rel, std::array<uint32_t, 1>{0});
      for (size_t r = 0; r < filtered[0].rel.NumRows(); ++r) {
        const Value a = filtered[0].rel.At(r, 0);
        const Value b = filtered[0].rel.At(r, 1);
        for (uint32_t r2 : idx.Lookup({b})) {
          const Value c = filtered[1].rel.At(r2, 1);
          bag.AddRow(std::array<Value, 3>{a, b, c},
                     std::array<double, 2>{filtered[0].rel.Weight(r),
                                           filtered[1].rel.Weight(r2)},
                     std::array<uint32_t, 2>{filtered[0].orig_rows[r],
                                             filtered[1].orig_rows[r2]});
        }
      }
      inst.nodes.push_back(std::move(bag).Finish(-1));
    }

    // Middle bags j = 1..l-4: heavy values x hanging relation h+j+1.
    for (size_t j = 1; j + 1 < bags; ++j) {
      const size_t c = j + 1;  // cycle offset of the covered atom
      BagBuilder bag({var_at(h), var_at(h + c), var_at(h + c + 1)},
                     {orig_atom(h + c)});
      for (Value a : heavy_vals) {
        for (size_t r = 0; r < filtered[c].rel.NumRows(); ++r) {
          bag.AddRow(std::array<Value, 3>{a, filtered[c].rel.At(r, 0),
                                          filtered[c].rel.At(r, 1)},
                     std::array<double, 1>{filtered[c].rel.Weight(r)},
                     std::array<uint32_t, 1>{filtered[c].orig_rows[r]});
        }
      }
      inst.nodes.push_back(std::move(bag).Finish(static_cast<int>(j) - 1));
    }

    // Last bag: atoms h+l-2 and h+l-1 joined on x_{h+l-1}, closing at x_h.
    {
      BagBuilder bag({var_at(h), var_at(h + l - 2), var_at(h + l - 1)},
                     {orig_atom(h + l - 2), orig_atom(h + l - 1)});
      const GroupIndex idx(filtered[l - 2].rel, std::array<uint32_t, 1>{1});
      for (size_t r3 = 0; r3 < filtered[l - 1].rel.NumRows(); ++r3) {
        const Value a = filtered[l - 1].rel.At(r3, 1);  // x_h value
        if (heavy_vals.find(a) == heavy_vals.end()) continue;
        const Value b = filtered[l - 1].rel.At(r3, 0);  // x_{h+l-1} value
        for (uint32_t r2 : idx.Lookup({b})) {
          bag.AddRow(
              std::array<Value, 3>{a, filtered[l - 2].rel.At(r2, 0), b},
              std::array<double, 2>{filtered[l - 2].rel.Weight(r2),
                                    filtered[l - 1].rel.Weight(r3)},
              std::array<uint32_t, 2>{filtered[l - 2].orig_rows[r2],
                                      filtered[l - 1].orig_rows[r3]});
        }
      }
      inst.nodes.push_back(std::move(bag).Finish(static_cast<int>(bags) - 2));
    }

    FinalizeTopology(&inst);
    ComputeJoinKeys(&inst);
    result.push_back(std::move(inst));
  }

  // ---- All-light tree T_{l+1}: two chain-join bags ----
  {
    std::vector<FilteredRel> light(l);
    for (size_t p = 0; p < l; ++p) {
      light[p] = Filter(rel_at(p), Part::kLight, counts[p], threshold);
    }
    const size_t m = (l + 1) / 2;  // split point: atoms [0,m) and [m,l)

    TDPInstance inst;
    inst.num_vars = q.NumVars();
    inst.num_atoms = q.NumAtoms();

    // Chain-join atoms [from, to) into one bag over x_from..x_to.
    auto chain_bag = [&](size_t from, size_t to, int parent) {
      std::vector<uint32_t> vars;
      std::vector<uint32_t> atoms;
      for (size_t p = from; p <= to; ++p) vars.push_back(var_at(p));
      for (size_t p = from; p < to; ++p) atoms.push_back(orig_atom(p));
      BagBuilder bag(std::move(vars), std::move(atoms));

      const size_t width = to - from;
      std::vector<GroupIndex> idx(width);
      for (size_t p = from + 1; p < to; ++p) {
        idx[p - from].Build(light[p].rel, std::array<uint32_t, 1>{0});
      }
      // Backtracking extension.
      std::vector<Value> values(width + 1);
      std::vector<double> wts(width);
      std::vector<uint32_t> rows(width);
      std::vector<std::span<const uint32_t>> matches(width);
      std::vector<size_t> cursor(width);

      for (size_t r0 = 0; r0 < light[from].rel.NumRows(); ++r0) {
        values[0] = light[from].rel.At(r0, 0);
        values[1] = light[from].rel.At(r0, 1);
        wts[0] = light[from].rel.Weight(r0);
        rows[0] = light[from].orig_rows[r0];
        size_t d = 1;
        if (width == 1) {
          bag.AddRow(values, wts, rows);
          continue;
        }
        matches[1] = idx[1].Lookup({values[1]});
        cursor[1] = 0;
        while (d >= 1) {
          if (d == 0) break;
          if (cursor[d] >= matches[d].size()) {
            --d;
            if (d >= 1) ++cursor[d];
            continue;
          }
          const uint32_t r = matches[d][cursor[d]];
          const auto& rel = light[from + d].rel;
          values[d + 1] = rel.At(r, 1);
          wts[d] = rel.Weight(r);
          rows[d] = light[from + d].orig_rows[r];
          if (d + 1 == width) {
            bag.AddRow(values, wts, rows);
            ++cursor[d];
          } else {
            ++d;
            matches[d] = idx[d].Lookup({values[d]});
            cursor[d] = 0;
          }
        }
      }
      inst.nodes.push_back(std::move(bag).Finish(parent));
    };

    chain_bag(0, m, -1);
    chain_bag(m, l, 0);

    FinalizeTopology(&inst);
    ComputeJoinKeys(&inst);
    result.push_back(std::move(inst));
  }

  return result;
}

}  // namespace anyk
