#include "query/sql.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "anyk/ranked_query.h"
#include "dioid/max_plus.h"
#include "dioid/tropical.h"
#include "util/logging.h"

namespace anyk {

namespace {

struct Token {
  std::string text;   // original spelling (keywords match case-insensitively)
  std::string upper;
  size_t offset = 0;  // byte offset into the statement, for diagnostics
};

std::vector<Token> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](std::string t, size_t offset) {
    Token tok;
    tok.text = std::move(t);
    tok.upper = tok.text;
    for (char& c : tok.upper) c = static_cast<char>(std::toupper(c));
    tok.offset = offset;
    tokens.push_back(std::move(tok));
  };
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_')) {
        ++i;
      }
      push(sql.substr(start, i - start), start);
    } else if (c == '.' || c == ',' || c == '=' || c == '*' || c == ';') {
      push(std::string(1, c), i);
      ++i;
    } else {
      ANYK_CHECK(false) << "SQL:" << i << ": unexpected character '" << c
                        << "'";
    }
  }
  return tokens;
}

struct Cursor {
  const std::vector<Token>& toks;
  size_t end_offset = 0;  // statement length, for end-of-input diagnostics
  size_t pos = 0;

  bool AtEnd() const { return pos >= toks.size(); }
  size_t Offset() const { return AtEnd() ? end_offset : toks[pos].offset; }
  const Token& Peek() const {
    ANYK_CHECK(!AtEnd()) << "SQL:" << end_offset
                         << ": unexpected end of statement";
    return toks[pos];
  }
  Token Take() {
    Token t = Peek();
    ++pos;
    return t;
  }
  bool TryKeyword(const std::string& kw) {
    if (!AtEnd() && toks[pos].upper == kw) {
      ++pos;
      return true;
    }
    return false;
  }
  void Expect(const std::string& kw) {
    ANYK_CHECK(TryKeyword(kw))
        << "SQL:" << Offset() << ": expected " << kw << " near '"
        << (AtEnd() ? "<end>" : Peek().text) << "'";
  }
};

struct ColumnRef {
  std::string table;  // alias
  size_t column;      // zero-based
};

// Canonical rendering: alias spelled as written, column always `A<n>`.
std::string RenderColumnRef(const ColumnRef& ref) {
  return ref.table + ".A" + std::to_string(ref.column + 1);
}

size_t ParseColumnNumber(const std::string& col, size_t offset) {
  ANYK_CHECK(col.size() >= 2 && (col[0] == 'A' || col[0] == 'a'))
      << "SQL:" << offset << ": columns are addressed as A1..An, got '" << col
      << "'";
  const long idx = std::strtol(col.c_str() + 1, nullptr, 10);
  ANYK_CHECK_GE(idx, 1) << "SQL:" << offset << ": bad column '" << col << "'";
  return static_cast<size_t>(idx - 1);
}

// alias.A<k>
ColumnRef ParseColumnRef(Cursor* cur) {
  ColumnRef ref;
  ref.table = cur->Take().text;
  cur->Expect(".");
  const Token col = cur->Take();
  ref.column = ParseColumnNumber(col.text, col.offset);
  return ref;
}

/// The statement at the syntax level: what was written, before any
/// variable/arity resolution. ParseSql lowers this to a ConjunctiveQuery;
/// NormalizeSql renders it back out canonically.
struct ParsedSyntax {
  bool select_all = false;
  std::vector<ColumnRef> select_refs;
  std::vector<std::pair<std::string, std::string>> tables;  // (relation, alias)
  std::unordered_map<std::string, size_t> alias_idx;
  std::vector<std::pair<ColumnRef, ColumnRef>> equalities;
  bool ascending = true;
  size_t limit = 0;  // 0 = no LIMIT clause
};

ParsedSyntax ParseSyntax(const std::string& sql) {
  const std::vector<Token> toks = Tokenize(sql);
  Cursor cur{toks, sql.size()};
  ParsedSyntax syn;
  cur.Expect("SELECT");

  // SELECT list (alias existence checked after FROM).
  std::vector<std::pair<Token, Token>> select_raw;  // (table, column) tokens
  if (cur.TryKeyword("*")) {
    syn.select_all = true;
  } else {
    do {
      Token tbl = cur.Take();
      cur.Expect(".");
      select_raw.emplace_back(std::move(tbl), cur.Take());
    } while (cur.TryKeyword(","));
  }

  cur.Expect("FROM");
  do {
    const Token rel = cur.Take();
    std::string alias = rel.text;
    if (!cur.AtEnd() && cur.Peek().upper != "WHERE" &&
        cur.Peek().upper != "ORDER" && cur.Peek().upper != "LIMIT" &&
        cur.Peek().upper != "," && cur.Peek().upper != ";") {
      alias = cur.Take().text;
    }
    ANYK_CHECK(syn.alias_idx.emplace(alias, syn.tables.size()).second)
        << "SQL:" << rel.offset << ": duplicate table alias '" << alias << "'";
    syn.tables.emplace_back(rel.text, alias);
  } while (cur.TryKeyword(","));
  ANYK_CHECK(!syn.tables.empty())
      << "SQL:" << cur.Offset() << ": empty FROM clause";

  auto check_alias = [&](const std::string& alias, size_t offset) {
    ANYK_CHECK(syn.alias_idx.count(alias) > 0)
        << "SQL:" << offset << ": unknown table alias '" << alias << "'";
  };
  for (const auto& [tbl, col] : select_raw) {
    check_alias(tbl.text, tbl.offset);
    syn.select_refs.push_back(
        {tbl.text, ParseColumnNumber(col.text, col.offset)});
  }

  if (cur.TryKeyword("WHERE")) {
    do {
      const size_t lhs_offset = cur.Offset();
      ColumnRef lhs = ParseColumnRef(&cur);
      check_alias(lhs.table, lhs_offset);
      cur.Expect("=");
      const size_t rhs_offset = cur.Offset();
      ColumnRef rhs = ParseColumnRef(&cur);
      check_alias(rhs.table, rhs_offset);
      syn.equalities.emplace_back(std::move(lhs), std::move(rhs));
    } while (cur.TryKeyword("AND"));
  }

  if (cur.TryKeyword("ORDER")) {
    cur.Expect("BY");
    cur.Expect("WEIGHT");
    if (cur.TryKeyword("DESC")) {
      syn.ascending = false;
    } else {
      cur.TryKeyword("ASC");
    }
  }
  if (cur.TryKeyword("LIMIT")) {
    const Token k = cur.Take();
    ANYK_CHECK(!k.text.empty() &&
               std::all_of(k.text.begin(), k.text.end(), [](unsigned char c) {
                 return std::isdigit(c);
               }))
        << "SQL:" << k.offset << ": LIMIT expects a positive integer, got '"
        << k.text << "'";
    syn.limit = static_cast<size_t>(std::stoull(k.text));
    // LIMIT 0 would silently mean "unlimited" downstream (the k_budget
    // sentinel); reject it so "no answers" can never be misread as "all".
    ANYK_CHECK(syn.limit > 0)
        << "SQL:" << k.offset
        << ": LIMIT 0 is not a query; omit LIMIT to enumerate everything";
  }
  cur.TryKeyword(";");
  ANYK_CHECK(cur.AtEnd()) << "SQL:" << cur.Offset()
                          << ": trailing input near '" << cur.Peek().text
                          << "'";
  return syn;
}

// Union-find over (table, column) slots.
struct Slots {
  std::vector<int> parent;
  int Find(int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void Union(int a, int b) { parent[Find(a)] = Find(b); }
};

}  // namespace

SqlStatement ParseSql(const std::string& sql, const Database* db) {
  const ParsedSyntax syn = ParseSyntax(sql);

  // Build the CQ: one variable slot per (table, column); equalities merge
  // slots. First find how many columns each table needs.
  std::vector<size_t> max_col(syn.tables.size(), 0);
  auto touch = [&](const ColumnRef& ref) {
    const size_t t = syn.alias_idx.at(ref.table);
    max_col[t] = std::max(max_col[t], ref.column + 1);
    return t;
  };
  for (const auto& [lhs, rhs] : syn.equalities) {
    touch(lhs);
    touch(rhs);
  }
  for (const ColumnRef& ref : syn.select_refs) touch(ref);
  // With a database the true arities are known; otherwise default tables to
  // binary unless more columns were referenced.
  for (size_t t = 0; t < syn.tables.size(); ++t) {
    if (db != nullptr) {
      const size_t arity = db->Get(syn.tables[t].first).arity();
      ANYK_CHECK_LE(max_col[t], arity)
          << "SQL: column out of range for " << syn.tables[t].first;
      max_col[t] = arity;
    } else {
      max_col[t] = std::max<size_t>(max_col[t], 2);
    }
  }

  // Slot ids: prefix sums.
  std::vector<size_t> slot_base(syn.tables.size() + 1, 0);
  for (size_t t = 0; t < syn.tables.size(); ++t) {
    slot_base[t + 1] = slot_base[t] + max_col[t];
  }
  Slots slots;
  slots.parent.resize(slot_base.back());
  std::iota(slots.parent.begin(), slots.parent.end(), 0);
  auto slot_of = [&](const ColumnRef& ref) {
    const size_t t = syn.alias_idx.at(ref.table);
    ANYK_CHECK_LT(ref.column, max_col[t]) << "SQL: column out of range";
    return static_cast<int>(slot_base[t] + ref.column);
  };
  for (const auto& [lhs, rhs] : syn.equalities) {
    slots.Union(slot_of(lhs), slot_of(rhs));
  }

  // Variable name per slot class.
  std::unordered_map<int, std::string> class_name;
  auto var_name = [&](int slot) {
    const int root = slots.Find(slot);
    auto [it, inserted] =
        class_name.emplace(root, "v" + std::to_string(class_name.size()));
    return it->second;
  };
  SqlStatement stmt;
  stmt.ascending = syn.ascending;
  stmt.limit = syn.limit;
  for (size_t t = 0; t < syn.tables.size(); ++t) {
    std::vector<std::string> vars;
    for (size_t c = 0; c < max_col[t]; ++c) {
      vars.push_back(var_name(static_cast<int>(slot_base[t] + c)));
    }
    stmt.query.AddAtom(syn.tables[t].first, vars);
  }

  if (!syn.select_all) {
    for (const ColumnRef& ref : syn.select_refs) {
      const std::string name = var_name(slot_of(ref));
      stmt.select_vars.push_back(
          static_cast<uint32_t>(stmt.query.FindVar(name)));
    }
    // Note: we do NOT call SetFreeVars — SQL projection uses all-weight
    // semantics (enumerate the full query, project each result), so the CQ
    // stays full and select_vars drives the projection at output time.
  }
  return stmt;
}

std::string NormalizeSql(const std::string& sql) {
  ParsedSyntax syn = ParseSyntax(sql);
  std::string out = "SELECT ";
  if (syn.select_all) {
    out += "*";
  } else {
    for (size_t i = 0; i < syn.select_refs.size(); ++i) {
      if (i > 0) out += ", ";
      out += RenderColumnRef(syn.select_refs[i]);
    }
  }
  out += " FROM ";
  for (size_t t = 0; t < syn.tables.size(); ++t) {
    if (t > 0) out += ", ";
    out += syn.tables[t].first;
    if (syn.tables[t].second != syn.tables[t].first) {
      out += " " + syn.tables[t].second;
    }
  }
  if (!syn.equalities.empty()) {
    // Equality is symmetric and AND commutes, so both the side order within
    // a conjunct and the conjunct order are canonicalized. (Union-find makes
    // the resulting variable classes — and the variable ids, which follow
    // table/column order — independent of either order.)
    std::vector<std::pair<std::string, std::string>> conjuncts;
    conjuncts.reserve(syn.equalities.size());
    for (const auto& [lhs, rhs] : syn.equalities) {
      std::string a = RenderColumnRef(lhs);
      std::string b = RenderColumnRef(rhs);
      if (b < a) std::swap(a, b);
      conjuncts.emplace_back(std::move(a), std::move(b));
    }
    std::sort(conjuncts.begin(), conjuncts.end());
    out += " WHERE ";
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (i > 0) out += " AND ";
      out += conjuncts[i].first + " = " + conjuncts[i].second;
    }
  }
  // Always explicit, so "ORDER BY WEIGHT ASC", "ORDER BY WEIGHT" and no
  // ORDER BY at all (ascending is the default) share one spelling.
  out += syn.ascending ? " ORDER BY WEIGHT ASC" : " ORDER BY WEIGHT DESC";
  if (syn.limit > 0) out += " LIMIT " + std::to_string(syn.limit);
  return out;
}

namespace {

template <typename D>
std::vector<SqlResult> Run(const Database& db, const SqlStatement& stmt) {
  typename RankedQuery<D>::Options opts;
  opts.algorithm = Algorithm::kLazy;
  opts.enum_opts.with_witness = false;
  opts.enum_opts.k_budget = stmt.limit;
  RankedQuery<D> rq(db, stmt.query, opts);
  std::vector<SqlResult> out;
  while (stmt.limit == 0 || out.size() < stmt.limit) {
    auto row = rq.Next();
    if (!row) break;
    SqlResult res;
    res.weight = row->weight;
    if (stmt.select_vars.empty()) {
      res.values = row->assignment;
    } else {
      for (uint32_t v : stmt.select_vars) {
        res.values.push_back(row->assignment[v]);
      }
    }
    out.push_back(std::move(res));
  }
  return out;
}

}  // namespace

std::vector<SqlResult> ExecuteSql(const Database& db, const std::string& sql) {
  SqlStatement stmt = ParseSql(sql, &db);
  // Validate arities against the database.
  for (size_t a = 0; a < stmt.query.NumAtoms(); ++a) {
    const Relation& rel = db.Get(stmt.query.atom(a).relation);
    ANYK_CHECK_EQ(rel.arity(), stmt.query.AtomVarIds(a).size())
        << "SQL: relation " << rel.name() << " has arity " << rel.arity();
  }
  return stmt.ascending ? Run<TropicalDioid>(db, stmt)
                        : Run<MaxPlusDioid>(db, stmt);
}

}  // namespace anyk
