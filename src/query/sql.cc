#include "query/sql.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "anyk/ranked_query.h"
#include "dioid/max_plus.h"
#include "dioid/tropical.h"
#include "util/logging.h"

namespace anyk {

namespace {

struct Token {
  std::string text;   // uppercased for keywords, original for identifiers
  std::string upper;
};

std::vector<Token> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](std::string t) {
    Token tok;
    tok.text = t;
    tok.upper = t;
    for (char& c : tok.upper) c = static_cast<char>(std::toupper(c));
    tokens.push_back(std::move(tok));
  };
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_')) {
        ++i;
      }
      push(sql.substr(start, i - start));
    } else if (c == '.' || c == ',' || c == '=' || c == '*' || c == ';') {
      push(std::string(1, c));
      ++i;
    } else {
      ANYK_CHECK(false) << "SQL: unexpected character '" << c << "'";
    }
  }
  return tokens;
}

struct Cursor {
  const std::vector<Token>& toks;
  size_t pos = 0;

  bool AtEnd() const { return pos >= toks.size(); }
  const Token& Peek() const {
    ANYK_CHECK(!AtEnd()) << "SQL: unexpected end of statement";
    return toks[pos];
  }
  Token Take() {
    Token t = Peek();
    ++pos;
    return t;
  }
  bool TryKeyword(const std::string& kw) {
    if (!AtEnd() && toks[pos].upper == kw) {
      ++pos;
      return true;
    }
    return false;
  }
  void Expect(const std::string& kw) {
    ANYK_CHECK(TryKeyword(kw)) << "SQL: expected " << kw << " near '"
                               << (AtEnd() ? "<end>" : Peek().text) << "'";
  }
};

struct ColumnRef {
  std::string table;  // alias
  size_t column;      // zero-based
};

// alias.A<k>
ColumnRef ParseColumnRef(Cursor* cur) {
  ColumnRef ref;
  ref.table = cur->Take().text;
  cur->Expect(".");
  const std::string col = cur->Take().text;
  ANYK_CHECK(col.size() >= 2 && (col[0] == 'A' || col[0] == 'a'))
      << "SQL: columns are addressed as A1..An, got '" << col << "'";
  const long idx = std::strtol(col.c_str() + 1, nullptr, 10);
  ANYK_CHECK_GE(idx, 1) << "SQL: bad column '" << col << "'";
  ref.column = static_cast<size_t>(idx - 1);
  return ref;
}

// Union-find over (table, column) slots.
struct Slots {
  std::vector<int> parent;
  int Find(int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void Union(int a, int b) { parent[Find(a)] = Find(b); }
};

}  // namespace

SqlStatement ParseSql(const std::string& sql, const Database* db) {
  const std::vector<Token> toks = Tokenize(sql);
  Cursor cur{toks};
  cur.Expect("SELECT");

  // SELECT list (resolved after FROM).
  bool select_all = false;
  std::vector<std::pair<std::string, std::string>> select_raw;  // (tbl, col)
  if (cur.TryKeyword("*")) {
    select_all = true;
  } else {
    do {
      const std::string tbl = cur.Take().text;
      cur.Expect(".");
      select_raw.emplace_back(tbl, cur.Take().text);
    } while (cur.TryKeyword(","));
  }

  cur.Expect("FROM");
  std::vector<std::pair<std::string, std::string>> tables;  // (relation, alias)
  std::unordered_map<std::string, size_t> alias_idx;
  do {
    const std::string rel = cur.Take().text;
    std::string alias = rel;
    if (!cur.AtEnd() && cur.Peek().upper != "WHERE" &&
        cur.Peek().upper != "ORDER" && cur.Peek().upper != "LIMIT" &&
        cur.Peek().upper != "," && cur.Peek().upper != ";") {
      alias = cur.Take().text;
    }
    ANYK_CHECK(alias_idx.emplace(alias, tables.size()).second)
        << "SQL: duplicate table alias '" << alias << "'";
    tables.emplace_back(rel, alias);
  } while (cur.TryKeyword(","));
  ANYK_CHECK(!tables.empty()) << "SQL: empty FROM clause";

  // Equality conditions.
  std::vector<std::pair<ColumnRef, ColumnRef>> equalities;
  if (cur.TryKeyword("WHERE")) {
    do {
      ColumnRef lhs = ParseColumnRef(&cur);
      cur.Expect("=");
      ColumnRef rhs = ParseColumnRef(&cur);
      equalities.emplace_back(lhs, rhs);
    } while (cur.TryKeyword("AND"));
  }

  SqlStatement stmt;
  if (cur.TryKeyword("ORDER")) {
    cur.Expect("BY");
    cur.Expect("WEIGHT");
    if (cur.TryKeyword("DESC")) {
      stmt.ascending = false;
    } else {
      cur.TryKeyword("ASC");
    }
  }
  if (cur.TryKeyword("LIMIT")) {
    stmt.limit = static_cast<size_t>(std::stoull(cur.Take().text));
  }
  cur.TryKeyword(";");
  ANYK_CHECK(cur.AtEnd()) << "SQL: trailing input near '" << cur.Peek().text
                          << "'";

  // Build the CQ: one variable slot per (table, column); equalities merge
  // slots. First find how many columns each table needs.
  std::vector<size_t> max_col(tables.size(), 0);
  auto touch = [&](const ColumnRef& ref) {
    auto it = alias_idx.find(ref.table);
    ANYK_CHECK(it != alias_idx.end())
        << "SQL: unknown table alias '" << ref.table << "'";
    max_col[it->second] = std::max(max_col[it->second], ref.column + 1);
    return it->second;
  };
  for (const auto& [lhs, rhs] : equalities) {
    touch(lhs);
    touch(rhs);
  }
  for (const auto& [tbl, col] : select_raw) {
    ColumnRef ref;
    ref.table = tbl;
    ANYK_CHECK(col.size() >= 2) << "SQL: bad column '" << col << "'";
    ref.column = static_cast<size_t>(std::strtol(col.c_str() + 1, nullptr, 10) - 1);
    touch(ref);
  }
  // With a database the true arities are known; otherwise default tables to
  // binary unless more columns were referenced.
  for (size_t t = 0; t < tables.size(); ++t) {
    if (db != nullptr) {
      const size_t arity = db->Get(tables[t].first).arity();
      ANYK_CHECK_LE(max_col[t], arity)
          << "SQL: column out of range for " << tables[t].first;
      max_col[t] = arity;
    } else {
      max_col[t] = std::max<size_t>(max_col[t], 2);
    }
  }

  // Slot ids: prefix sums.
  std::vector<size_t> slot_base(tables.size() + 1, 0);
  for (size_t t = 0; t < tables.size(); ++t) {
    slot_base[t + 1] = slot_base[t] + max_col[t];
  }
  Slots slots;
  slots.parent.resize(slot_base.back());
  std::iota(slots.parent.begin(), slots.parent.end(), 0);
  auto slot_of = [&](const ColumnRef& ref) {
    const size_t t = alias_idx.at(ref.table);
    ANYK_CHECK_LT(ref.column, max_col[t]) << "SQL: column out of range";
    return static_cast<int>(slot_base[t] + ref.column);
  };
  for (const auto& [lhs, rhs] : equalities) {
    slots.Union(slot_of(lhs), slot_of(rhs));
  }

  // Variable name per slot class.
  std::unordered_map<int, std::string> class_name;
  auto var_name = [&](int slot) {
    const int root = slots.Find(slot);
    auto [it, inserted] =
        class_name.emplace(root, "v" + std::to_string(class_name.size()));
    return it->second;
  };
  for (size_t t = 0; t < tables.size(); ++t) {
    std::vector<std::string> vars;
    for (size_t c = 0; c < max_col[t]; ++c) {
      vars.push_back(var_name(static_cast<int>(slot_base[t] + c)));
    }
    stmt.query.AddAtom(tables[t].first, vars);
  }

  if (!select_all) {
    std::vector<std::string> head;
    for (const auto& [tbl, col] : select_raw) {
      ColumnRef ref;
      ref.table = tbl;
      ref.column = static_cast<size_t>(
          std::strtol(col.c_str() + 1, nullptr, 10) - 1);
      head.push_back(var_name(slot_of(ref)));
      stmt.select_vars.push_back(static_cast<uint32_t>(
          stmt.query.FindVar(head.back())));
    }
    // Note: we do NOT call SetFreeVars — SQL projection uses all-weight
    // semantics (enumerate the full query, project each result), so the CQ
    // stays full and select_vars drives the projection at output time.
  }
  return stmt;
}

namespace {

template <typename D>
std::vector<SqlResult> Run(const Database& db, const SqlStatement& stmt) {
  typename RankedQuery<D>::Options opts;
  opts.algorithm = Algorithm::kLazy;
  opts.enum_opts.with_witness = false;
  RankedQuery<D> rq(db, stmt.query, opts);
  std::vector<SqlResult> out;
  while (stmt.limit == 0 || out.size() < stmt.limit) {
    auto row = rq.Next();
    if (!row) break;
    SqlResult res;
    res.weight = row->weight;
    if (stmt.select_vars.empty()) {
      res.values = row->assignment;
    } else {
      for (uint32_t v : stmt.select_vars) {
        res.values.push_back(row->assignment[v]);
      }
    }
    out.push_back(std::move(res));
  }
  return out;
}

}  // namespace

std::vector<SqlResult> ExecuteSql(const Database& db, const std::string& sql) {
  SqlStatement stmt = ParseSql(sql, &db);
  // Validate arities against the database.
  for (size_t a = 0; a < stmt.query.NumAtoms(); ++a) {
    const Relation& rel = db.Get(stmt.query.atom(a).relation);
    ANYK_CHECK_EQ(rel.arity(), stmt.query.AtomVarIds(a).size())
        << "SQL: relation " << rel.name() << " has arity " << rel.arity();
  }
  return stmt.ascending ? Run<TropicalDioid>(db, stmt)
                        : Run<MaxPlusDioid>(db, stmt);
}

}  // namespace anyk
