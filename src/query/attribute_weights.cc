#include "query/attribute_weights.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>

#include "util/logging.h"

namespace anyk {

std::string AddAttributeWeight(Database* db, ConjunctiveQuery* q,
                               const std::string& var,
                               const std::function<double(Value)>& weight_fn) {
  const int64_t var_id = q->FindVar(var);
  ANYK_CHECK_GE(var_id, 0) << "unknown variable " << var;

  // Active domain of the variable across all atoms binding it.
  std::unordered_set<Value> domain;
  for (size_t a = 0; a < q->NumAtoms(); ++a) {
    const auto& vars = q->AtomVarIds(a);
    const Relation& rel = db->Get(q->atom(a).relation);
    for (size_t c = 0; c < vars.size(); ++c) {
      if (vars[c] != static_cast<uint32_t>(var_id)) continue;
      for (size_t r = 0; r < rel.NumRows(); ++r) domain.insert(rel.At(r, c));
    }
  }

  const std::string name = "W_" + var;
  Relation& w = db->AddRelation(name, 1);
  w.Reserve(domain.size());
  for (Value v : domain) {
    w.AddRow(std::span<const Value>(&v, 1), weight_fn(v));
  }
  q->AddAtom(name, {var});
  return name;
}

}  // namespace anyk
