#include "query/hypergraph.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace anyk {

void Hypergraph::AddEdge(std::vector<uint32_t> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (uint32_t v : nodes) {
    num_nodes = std::max<size_t>(num_nodes, v + 1);
  }
  edges.push_back(std::move(nodes));
}

Hypergraph Hypergraph::FromQuery(const ConjunctiveQuery& q) {
  Hypergraph h;
  h.num_nodes = q.NumVars();
  for (size_t i = 0; i < q.NumAtoms(); ++i) {
    std::vector<uint32_t> e = q.AtomVarIds(i);
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
    h.edges.push_back(std::move(e));
  }
  return h;
}

Hypergraph Hypergraph::FromQueryWithHeadEdge(const ConjunctiveQuery& q) {
  Hypergraph h = FromQuery(q);
  std::vector<uint32_t> head = q.FreeVarIds();
  if (head.empty()) {
    // Full query: the head covers all variables.
    head.resize(q.NumVars());
    for (size_t i = 0; i < head.size(); ++i) head[i] = static_cast<uint32_t>(i);
  }
  h.AddEdge(std::move(head));
  return h;
}

}  // namespace anyk
