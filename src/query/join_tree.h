// Materialized join-tree instances: the input to the T-DP stage-graph
// builder (paper Section 5.1).
//
// A TDPInstance is a rooted tree of nodes ("bags"). Each node carries
//  * a schema (variable ids) and a table of rows over that schema,
//  * the equi-join key with its parent (column positions on both sides),
//  * weight *pins*: which original atoms contribute their tuple weight at
//    this node, with the per-row contributing weight and original row id
//    (Section 5.3: "track the lineage for bags at the schema level ... so
//    that relation weights are only accounted for once").
//
// For a plain acyclic CQ every node is one atom and pins exactly itself; for
// cyclic queries the cycle decomposition materializes multi-atom bags.

#ifndef ANYK_QUERY_JOIN_TREE_H_
#define ANYK_QUERY_JOIN_TREE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "query/cq.h"
#include "query/gyo.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace anyk {

/// One bag of a join-tree instance.
struct TDPNode {
  std::vector<uint32_t> vars;  // variable ids, in table column order
  const Relation* table = nullptr;
  std::shared_ptr<Relation> owned;  // set when the table is materialized

  int parent = -1;
  std::vector<int> children;
  std::vector<uint32_t> key_cols;         // join columns in this node
  std::vector<uint32_t> parent_key_cols;  // matching columns in the parent

  // Weight pins: pinned_atoms.size() == P original atoms are charged here.
  // For row r and pin p, pin_weights[r*P+p] is the contributed weight and
  // pin_rows[r*P+p] the original row id in that atom's relation.
  std::vector<uint32_t> pinned_atoms;
  std::vector<double> pin_weights;
  std::vector<uint32_t> pin_rows;

  size_t NumRows() const { return table->NumRows(); }
  size_t NumPins() const { return pinned_atoms.size(); }
};

/// A fully materialized T-DP input: one join tree with per-node tables.
struct TDPInstance {
  size_t num_vars = 0;   // variables of the original query
  size_t num_atoms = 0;  // atoms of the original query (the paper's l)
  std::vector<TDPNode> nodes;
  std::vector<uint32_t> order;  // preorder serialization; order[0] = root
  // Planner stage-order hint (JoinTreeTopology::child_priority): when sized
  // like `nodes`, FinalizeTopology visits children ascending by priority.
  std::vector<double> child_priority;

  const TDPNode& Root() const { return nodes[order[0]]; }
};

/// Compute the preorder serialization (parents before children) and the
/// children lists from the parent pointers already set on `nodes`.
void FinalizeTopology(TDPInstance* inst);

/// Derive the join key columns between every node and its parent (shared
/// variables, paper's running-intersection property guarantees correctness).
void ComputeJoinKeys(TDPInstance* inst);

/// Build an instance for an acyclic full CQ: GYO join tree, one node per
/// atom, each atom pinning its own relation's weights. Atoms with repeated
/// variables (e.g. R(x,x)) are filtered and deduplicated into an owned table.
TDPInstance BuildAcyclicInstance(const Database& db, const ConjunctiveQuery& q);

/// If the join tree is a path (undirected degrees <= 2), re-root it at an
/// endpoint so the DP serialization is *serial* (single child slot per
/// stage), matching the paper's Section 3 treatment of path queries.
JoinTreeTopology RerootChains(const JoinTreeTopology& topo);

/// Re-chain Cartesian links (tree edges whose endpoints share no variables,
/// which may legally attach anywhere): pure products then serialize as the
/// paper's serial DP instead of a degenerate star.
JoinTreeTopology NormalizeTopology(const JoinTreeTopology& topo,
                                   const ConjunctiveQuery& q);

/// Same, but with a caller-provided join-tree topology over the atoms.
TDPInstance BuildInstanceFromTopology(const Database& db,
                                      const ConjunctiveQuery& q,
                                      const JoinTreeTopology& topo);

}  // namespace anyk

#endif  // ANYK_QUERY_JOIN_TREE_H_
