// Simple-cycle decomposition (paper Section 5.3.1, Fig. 8).
//
// An l-cycle query QCl (l >= 4) is decomposed into l+1 database partitions,
// each with its own join tree of materialized bags:
//   * T_i (one per atom i): tuples of R_1..R_{i-1} restricted to *light*,
//     R_i to *heavy*, the rest unrestricted. The cycle is "broken" at the
//     heavy attribute A_i, which joins every bag of a path-shaped tree.
//   * T_{l+1}: all relations light; two chain-join bags split the cycle in
//     half.
// A tuple is heavy iff its first attribute's value occurs at least n^{2/l}
// times in that column. Every output tuple is produced by exactly one
// partition, all bags materialize in O(n^{2 - 2/l}), and ranked enumeration
// over the union of the l+1 trees (UT-DP) yields TTF matching the best
// known Boolean bound for simple cycles — e.g. O(n^{1.5}) for 4-cycles.

#ifndef ANYK_QUERY_CYCLE_DECOMPOSITION_H_
#define ANYK_QUERY_CYCLE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "query/cq.h"
#include "query/join_tree.h"
#include "storage/database.h"

namespace anyk {

/// Canonical form of a simple-cycle query.
struct CycleShape {
  bool is_cycle = false;
  // atom_order[p] = original atom index of the p-th cycle edge
  // (x_p, x_{p+1 mod l}); var_order[p] = original variable id of x_p.
  std::vector<uint32_t> atom_order;
  std::vector<uint32_t> var_order;
};

/// Detect whether `q` is a simple cycle: binary atoms R(x_p, x_{p+1}) whose
/// variables each occur exactly once in first and once in second position,
/// closing a single cycle covering all atoms.
CycleShape DetectSimpleCycle(const ConjunctiveQuery& q);

struct CycleDecompositionOptions {
  // Override the heavy threshold (default 0 = use n^{2/l}).
  double threshold_override = 0.0;
};

/// Decompose an l-cycle (l >= 4) into l+1 materialized join-tree instances.
/// Pins reference the original atoms/rows, so witnesses, weights and
/// tie-breaking behave exactly as for the undecomposed query.
std::vector<TDPInstance> DecomposeCycle(
    const Database& db, const ConjunctiveQuery& q,
    const CycleDecompositionOptions& opts = {});

}  // namespace anyk

#endif  // ANYK_QUERY_CYCLE_DECOMPOSITION_H_
