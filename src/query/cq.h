// Conjunctive-query model (paper Section 2.1).
//
// A full CQ  Q(x) :- g1(x1), ..., gl(xl)  is a list of atoms, each naming a
// physical relation and binding its columns to variables. Different atoms may
// reference the same relation (self-joins). Non-full queries additionally
// designate a subset of free (head) variables.

#ifndef ANYK_QUERY_CQ_H_
#define ANYK_QUERY_CQ_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace anyk {

/// One atom g_i(x_i): a relation name plus variable names per column.
struct Atom {
  std::string relation;
  std::vector<std::string> vars;
};

/// A conjunctive query over named variables.
///
/// Variables are interned to dense ids in first-appearance order; the same
/// name in different atoms encodes an equi-join.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  /// Append an atom; returns its index.
  size_t AddAtom(const std::string& relation,
                 const std::vector<std::string>& vars);

  /// Declare the free (head) variables; by default the query is full.
  void SetFreeVars(const std::vector<std::string>& names);

  size_t NumAtoms() const { return atoms_.size(); }
  size_t NumVars() const { return var_names_.size(); }
  const Atom& atom(size_t i) const { return atoms_[i]; }

  /// Dense variable ids of atom i's columns.
  const std::vector<uint32_t>& AtomVarIds(size_t i) const {
    return atom_var_ids_[i];
  }

  const std::string& VarName(uint32_t id) const { return var_names_[id]; }
  /// Id for an existing variable name; -1 if unknown.
  int64_t FindVar(const std::string& name) const;

  bool IsFull() const { return free_vars_.empty(); }
  /// Free variable ids (empty means full query: all variables are free).
  const std::vector<uint32_t>& FreeVarIds() const { return free_vars_; }

  /// Human-readable Datalog-style rendering.
  std::string ToString() const;

  // ---- Factory helpers for the paper's query families (Example 2). ----

  /// QPl: R1(x1,x2), R2(x2,x3), ..., Rl(xl, xl+1). `relation_prefix` names
  /// the relations R1..Rl; pass the same name l times for a self-join over a
  /// single edge table by setting `single_relation`.
  static ConjunctiveQuery Path(size_t l, const std::string& relation_prefix = "R",
                               bool single_relation = false);

  /// Star: R1(x1,x2), R2(x1,x3), ..., Rl(x1, xl+1) — joined on the center x1.
  static ConjunctiveQuery Star(size_t l, const std::string& relation_prefix = "R",
                               bool single_relation = false);

  /// QCl: R1(x1,x2), ..., Rl(xl, x1).
  static ConjunctiveQuery Cycle(size_t l, const std::string& relation_prefix = "R",
                                bool single_relation = false);

  /// Cartesian product: R1(a1,b1), ..., Rl(al,bl) with no shared variables
  /// (the running example of Section 3 and the instances of Theorem 11).
  static ConjunctiveQuery Product(size_t l, const std::string& relation_prefix = "R",
                                  bool single_relation = false);

  /// Parse Datalog-ish notation: "Q(x,y) :- R(x,z), S(z,y)". The head's
  /// variable list becomes the free variables (a head equal to all variables
  /// or the shorthand "Q(*)" keeps the query full).
  static ConjunctiveQuery Parse(const std::string& text);

 private:
  uint32_t InternVar(const std::string& name);

  std::vector<Atom> atoms_;
  std::vector<std::vector<uint32_t>> atom_var_ids_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, uint32_t> var_ids_;
  std::vector<uint32_t> free_vars_;
};

}  // namespace anyk

#endif  // ANYK_QUERY_CQ_H_
