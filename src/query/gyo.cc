#include "query/gyo.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace anyk {

namespace {

bool IsSubset(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  // Both sorted.
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

GyoResult GyoReduce(const Hypergraph& h) {
  const size_t m = h.edges.size();
  GyoResult result;
  result.tree.parent.assign(m, -1);
  if (m == 0) {
    result.acyclic = true;
    return result;
  }

  std::vector<std::vector<uint32_t>> edges = h.edges;  // reduced copies
  std::vector<bool> alive(m, true);
  size_t alive_count = m;

  bool progress = true;
  while (progress && alive_count > 1) {
    progress = false;

    // (a) Remove ear vertices: variables occurring in exactly one live edge.
    std::vector<uint32_t> occurrences(h.num_nodes, 0);
    for (size_t i = 0; i < m; ++i) {
      if (!alive[i]) continue;
      for (uint32_t v : edges[i]) ++occurrences[v];
    }
    for (size_t i = 0; i < m; ++i) {
      if (!alive[i]) continue;
      auto& e = edges[i];
      size_t before = e.size();
      e.erase(std::remove_if(e.begin(), e.end(),
                             [&](uint32_t v) { return occurrences[v] == 1; }),
              e.end());
      if (e.size() != before) progress = true;
    }

    // (b) Remove edges contained in another live edge; the container becomes
    // the tree parent of the removed edge (the "ear" attaches to a witness).
    // Among multiple witnesses we prefer the *smallest* one and remove one
    // edge at a time: any witness keeps GYO sound, but small witnesses give
    // tighter join trees (e.g. the paper's Fig. 15b attaches R4' = π(R4)
    // under R2, not under the wide head edge).
    while (alive_count > 1) {
      int best_e = -1, best_f = -1;
      for (size_t i = 0; i < m; ++i) {
        if (!alive[i]) continue;
        for (size_t j = 0; j < m; ++j) {
          if (i == j || !alive[j]) continue;
          if (!IsSubset(edges[i], edges[j])) continue;
          if (best_f < 0 ||
              edges[j].size() < edges[best_f].size() ||
              (edges[j].size() == edges[best_f].size() &&
               static_cast<int>(j) < best_f)) {
            best_e = static_cast<int>(i);
            best_f = static_cast<int>(j);
          }
        }
      }
      if (best_e < 0) break;
      alive[best_e] = false;
      --alive_count;
      result.tree.parent[best_e] = best_f;
      progress = true;
    }
  }

  result.acyclic = (alive_count == 1);
  if (result.acyclic) {
    for (size_t i = 0; i < m; ++i) {
      if (alive[i]) result.tree.root = static_cast<int>(i);
    }
    ANYK_CHECK_GE(result.tree.root, 0);
  }
  return result;
}

bool IsAcyclic(const ConjunctiveQuery& q) {
  return GyoReduce(Hypergraph::FromQuery(q)).acyclic;
}

bool IsFreeConnexAcyclic(const ConjunctiveQuery& q) {
  if (!GyoReduce(Hypergraph::FromQuery(q)).acyclic) return false;
  return GyoReduce(Hypergraph::FromQueryWithHeadEdge(q)).acyclic;
}

}  // namespace anyk
