// Query hypergraph: variables as nodes, atoms as hyperedges (Section 2.1).

#ifndef ANYK_QUERY_HYPERGRAPH_H_
#define ANYK_QUERY_HYPERGRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "query/cq.h"

namespace anyk {

/// Plain hypergraph over dense node ids.
struct Hypergraph {
  size_t num_nodes = 0;
  std::vector<std::vector<uint32_t>> edges;  // each sorted, deduplicated

  /// Hypergraph of a CQ: one edge per atom over its variable ids.
  static Hypergraph FromQuery(const ConjunctiveQuery& q);

  /// Hypergraph of a CQ plus one extra "head" edge over the free variables
  /// (used for the free-connex test, Section 8.1).
  static Hypergraph FromQueryWithHeadEdge(const ConjunctiveQuery& q);

  void AddEdge(std::vector<uint32_t> nodes);
};

}  // namespace anyk

#endif  // ANYK_QUERY_HYPERGRAPH_H_
