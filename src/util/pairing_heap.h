// Pairing heap with O(1) insert/meld, O(log n) amortized pop-min, and
// decrease-key that does O(1) worst-case work per call (amortized o(log n),
// but not O(1): Fredman 1999 shows an Omega(log log n) lower bound).
//
// The complexity analysis of ANYK-PART (paper Section 7, "Implementation
// details") assumes constant-time inserts for the candidate priority queue.
// The paper notes that such structures "are well-known to perform poorly in
// practice" and falls back to bulk-inserting binary heaps; we implement the
// pairing heap as well so the trade-off can be measured (bench_ablation_pq).
//
// Handles: Push returns a stable handle usable with DecreaseKey until that
// element is popped. Popping frees the slot for recycling, so a handle must
// not be used after its element left the heap. Melding another heap into this
// one invalidates the other heap's handles.

#ifndef ANYK_UTIL_PAIRING_HEAP_H_
#define ANYK_UTIL_PAIRING_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace anyk {

/// Min-ordered pairing heap; nodes live in a node arena so memory is
/// contiguous and freed slots are recycled through a free list. `Alloc` (any
/// std allocator over T; rebound internally) selects where that node arena
/// lives — pass an ArenaAllocator to keep the candidate PQ on a per-query
/// arena.
template <typename T, typename Less = std::less<T>,
          typename Alloc = std::allocator<T>>
class PairingHeap {
 public:
  using Handle = uint32_t;
  static constexpr Handle kNull = UINT32_MAX;

  explicit PairingHeap(Less less = Less(), Alloc alloc = Alloc())
      : less_(less),
        nodes_(NodeAlloc(alloc)),
        scratch_(HandleAlloc(alloc)) {}

  bool Empty() const { return root_ == kNull; }
  size_t Size() const { return size_; }

  /// Pre-size the node arena (no-op if already large enough).
  void Reserve(size_t n) { nodes_.reserve(n); }

  const T& Min() const {
    ANYK_DCHECK(root_ != kNull);
    return nodes_[root_].value;
  }

  /// Value currently stored at `h`. `h` must be live (pushed, not yet popped).
  const T& At(Handle h) const { return nodes_[h].value; }

  /// O(1). The returned handle stays valid until the element is popped.
  Handle Push(T value) {
    Handle id = Allocate(std::move(value));
    root_ = (root_ == kNull) ? id : MeldRoots(root_, id);
    ++size_;
    return id;
  }

  T PopMin() {
    ANYK_DCHECK(root_ != kNull);
    Handle old_root = root_;
    T result = std::move(nodes_[old_root].value);
    root_ = MergePairs(nodes_[old_root].child);
    if (root_ != kNull) nodes_[root_].prev = kNull;
    Free(old_root);
    --size_;
    return result;
  }

  /// Lower the key stored at `h` to `value` (must not compare greater than
  /// the current key). O(1) worst-case work per call (cut the subtree, meld
  /// with the root); amortized cost is o(log n) but not O(1).
  void DecreaseKey(Handle h, T value) {
    ANYK_DCHECK(!less_(nodes_[h].value, value));
    nodes_[h].value = std::move(value);
    if (h == root_) return;
    Cut(h);
    root_ = MeldRoots(root_, h);
  }

  /// Move all of `other`'s elements into this heap; `other` becomes empty and
  /// all its handles are invalidated. O(|other|) for the arena splice.
  void Meld(PairingHeap&& other) {
    ANYK_DCHECK(&other != this);
    if (&other == this) return;
    if (other.root_ == kNull) {
      other.Clear();
      return;
    }
    if (root_ == kNull && nodes_.empty()) {
      // Adopt the arena wholesale but keep this heap's comparator.
      nodes_ = std::move(other.nodes_);
      root_ = other.root_;
      free_ = other.free_;
      size_ = other.size_;
      other.Clear();
      return;
    }
    const Handle offset = static_cast<Handle>(nodes_.size());
    for (Node& n : other.nodes_) {
      if (n.child != kNull) n.child += offset;
      if (n.sibling != kNull) n.sibling += offset;
      if (n.prev != kNull) n.prev += offset;
      nodes_.push_back(std::move(n));
    }
    // Splice other's free list (already offset above via .sibling) onto ours.
    if (other.free_ != kNull) {
      Handle tail = other.free_ + offset;
      while (nodes_[tail].sibling != kNull) tail = nodes_[tail].sibling;
      nodes_[tail].sibling = free_;
      free_ = other.free_ + offset;
    }
    root_ = (root_ == kNull) ? other.root_ + offset
                             : MeldRoots(root_, other.root_ + offset);
    size_ += other.size_;
    other.Clear();
  }

  void Clear() {
    nodes_.clear();
    scratch_.clear();
    root_ = kNull;
    free_ = kNull;
    size_ = 0;
  }

 private:
  struct Node {
    T value;
    Handle child = kNull;
    Handle sibling = kNull;
    // Back link for Cut(): parent if this is a first child, else the left
    // sibling; kNull at the root.
    Handle prev = kNull;
  };
  using NodeAlloc =
      typename std::allocator_traits<Alloc>::template rebind_alloc<Node>;
  using HandleAlloc =
      typename std::allocator_traits<Alloc>::template rebind_alloc<Handle>;

  Handle Allocate(T value) {
    if (free_ != kNull) {
      Handle id = free_;
      free_ = nodes_[id].sibling;
      nodes_[id].value = std::move(value);
      nodes_[id].child = kNull;
      nodes_[id].sibling = kNull;
      nodes_[id].prev = kNull;
      return id;
    }
    nodes_.push_back(Node{std::move(value), kNull, kNull, kNull});
    return static_cast<Handle>(nodes_.size() - 1);
  }

  void Free(Handle id) {
    nodes_[id].sibling = free_;
    free_ = id;
  }

  /// Meld two tree roots; the loser becomes the winner's first child.
  Handle MeldRoots(Handle a, Handle b) {
    if (less_(nodes_[b].value, nodes_[a].value)) std::swap(a, b);
    nodes_[b].sibling = nodes_[a].child;
    if (nodes_[a].child != kNull) nodes_[nodes_[a].child].prev = b;
    nodes_[a].child = b;
    nodes_[b].prev = a;
    return a;
  }

  /// Detach the subtree rooted at `h` from its parent/sibling chain.
  void Cut(Handle h) {
    const Handle p = nodes_[h].prev;
    ANYK_DCHECK(p != kNull);
    const Handle s = nodes_[h].sibling;
    if (nodes_[p].child == h) {
      nodes_[p].child = s;
    } else {
      nodes_[p].sibling = s;
    }
    if (s != kNull) nodes_[s].prev = p;
    nodes_[h].sibling = kNull;
    nodes_[h].prev = kNull;
  }

  // Two-pass pairing: left-to-right pairwise melds, then right-to-left fold.
  Handle MergePairs(Handle first) {
    if (first == kNull) return kNull;
    scratch_.clear();
    while (first != kNull) {
      Handle a = first;
      Handle b = nodes_[a].sibling;
      if (b == kNull) {
        nodes_[a].sibling = kNull;
        nodes_[a].prev = kNull;
        scratch_.push_back(a);
        break;
      }
      first = nodes_[b].sibling;
      nodes_[a].sibling = kNull;
      nodes_[a].prev = kNull;
      nodes_[b].sibling = kNull;
      nodes_[b].prev = kNull;
      scratch_.push_back(MeldRoots(a, b));
    }
    Handle result = scratch_.back();
    for (size_t i = scratch_.size() - 1; i-- > 0;) {
      result = MeldRoots(scratch_[i], result);
    }
    return result;
  }

  Less less_;
  std::vector<Node, NodeAlloc> nodes_;
  std::vector<Handle, HandleAlloc> scratch_;
  Handle root_ = kNull;
  Handle free_ = kNull;
  size_t size_ = 0;
};

}  // namespace anyk

#endif  // ANYK_UTIL_PAIRING_HEAP_H_
