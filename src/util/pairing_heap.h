// Pairing heap with O(1) insert/meld and O(log n) amortized pop-min.
//
// The complexity analysis of ANYK-PART (paper Section 7, "Implementation
// details") assumes constant-time inserts for the candidate priority queue.
// The paper notes that such structures "are well-known to perform poorly in
// practice" and falls back to bulk-inserting binary heaps; we implement the
// pairing heap as well so the trade-off can be measured (bench_ablation_pq).

#ifndef ANYK_UTIL_PAIRING_HEAP_H_
#define ANYK_UTIL_PAIRING_HEAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace anyk {

/// Min-ordered pairing heap; nodes live in an arena so memory is contiguous
/// and freed slots are recycled through a free list.
template <typename T, typename Less = std::less<T>>
class PairingHeap {
 public:
  explicit PairingHeap(Less less = Less()) : less_(less) {}

  bool Empty() const { return root_ == kNull; }
  size_t Size() const { return size_; }

  const T& Min() const {
    ANYK_DCHECK(root_ != kNull);
    return nodes_[root_].value;
  }

  void Push(T value) {
    uint32_t id = Allocate(std::move(value));
    root_ = (root_ == kNull) ? id : Meld(root_, id);
    ++size_;
  }

  T PopMin() {
    ANYK_DCHECK(root_ != kNull);
    uint32_t old_root = root_;
    T result = std::move(nodes_[old_root].value);
    root_ = MergePairs(nodes_[old_root].child);
    Free(old_root);
    --size_;
    return result;
  }

 private:
  static constexpr uint32_t kNull = UINT32_MAX;

  struct Node {
    T value;
    uint32_t child = kNull;
    uint32_t sibling = kNull;
  };

  uint32_t Allocate(T value) {
    if (free_ != kNull) {
      uint32_t id = free_;
      free_ = nodes_[id].sibling;
      nodes_[id].value = std::move(value);
      nodes_[id].child = kNull;
      nodes_[id].sibling = kNull;
      return id;
    }
    nodes_.push_back(Node{std::move(value)});
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  void Free(uint32_t id) {
    nodes_[id].sibling = free_;
    free_ = id;
  }

  uint32_t Meld(uint32_t a, uint32_t b) {
    if (less_(nodes_[b].value, nodes_[a].value)) std::swap(a, b);
    nodes_[b].sibling = nodes_[a].child;
    nodes_[a].child = b;
    return a;
  }

  // Two-pass pairing: left-to-right pairwise melds, then right-to-left fold.
  uint32_t MergePairs(uint32_t first) {
    if (first == kNull) return kNull;
    scratch_.clear();
    while (first != kNull) {
      uint32_t a = first;
      uint32_t b = nodes_[a].sibling;
      if (b == kNull) {
        nodes_[a].sibling = kNull;
        scratch_.push_back(a);
        break;
      }
      first = nodes_[b].sibling;
      nodes_[a].sibling = kNull;
      nodes_[b].sibling = kNull;
      scratch_.push_back(Meld(a, b));
    }
    uint32_t result = scratch_.back();
    for (size_t i = scratch_.size() - 1; i-- > 0;) {
      result = Meld(scratch_[i], result);
    }
    return result;
  }

  Less less_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> scratch_;
  uint32_t root_ = kNull;
  uint32_t free_ = kNull;
  size_t size_ = 0;
};

}  // namespace anyk

#endif  // ANYK_UTIL_PAIRING_HEAP_H_
