// Wall-clock timer used by the benchmark harness (TTF / TT(k) / TTL).

#ifndef ANYK_UTIL_TIMER_H_
#define ANYK_UTIL_TIMER_H_

#include <chrono>

namespace anyk {

/// Monotonic stopwatch with sub-microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace anyk

#endif  // ANYK_UTIL_TIMER_H_
