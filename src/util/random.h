// Deterministic, fast pseudo-random number generation for workload
// generators and property tests.
//
// We use xoshiro256** (public domain, Blackman & Vigna). A seeded custom
// generator keeps all experiments reproducible bit-for-bit across platforms,
// which std::default_random_engine does not guarantee.

#ifndef ANYK_UTIL_RANDOM_H_
#define ANYK_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace anyk {

/// Seeded xoshiro256** PRNG with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Raw 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Below(uint64_t bound) {
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Below(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace anyk

#endif  // ANYK_UTIL_RANDOM_H_
