// Fixed-size worker pool for the *preprocessing* phase.
//
// The enumeration phase owns no threads of its own: a PreparedQuery is
// immutable after construction and every EnumerationSession is confined to
// the thread that drains it (see docs/ARCHITECTURE.md, "Threading model").
// What does profit from parallelism is preprocessing — per-stage index and
// CSR builds inside BuildStageGraph, the per-partition DP over the l+1
// cycle-decomposition instances, and per-relation CSV loading in the CLI —
// all of which are independent chunks of CPU-bound work with a join point.
// ParallelFor is that shape; the pool exists so repeated preprocessing calls
// reuse the same workers instead of spawning threads per query.
//
// A null/1-thread pool degrades to inline execution, so call sites can
// unconditionally route through ParallelFor and let the configuration decide
// whether anything actually runs concurrently (tests and single-threaded
// embedders pay nothing).
//
// Locking (compile-checked via src/util/sync.h annotations): the pool's mu_
// guards the task queue and the stop flag; ParallelFor's per-call Shared
// block has its own mutex guarding the exit count and the first exception.
// Both are leaf locks — tasks always run with no lock held.

#ifndef ANYK_UTIL_THREAD_POOL_H_
#define ANYK_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/sync.h"

namespace anyk {

/// Fixed-size FIFO thread pool. Submitted tasks must not submit further
/// tasks and wait for them (no work stealing; nested waits would deadlock) —
/// preprocessing fan-out is one level deep, so this never comes up.
class ThreadPool {
 public:
  /// `threads` = number of workers; 0 and 1 both mean "no workers" (every
  /// ParallelFor runs inline on the calling thread).
  explicit ThreadPool(size_t threads) {
    if (threads <= 1) return;
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (0 = inline execution).
  size_t NumThreads() const { return workers_.size(); }

  /// Enqueue one task. The caller is responsible for joining (ParallelFor
  /// does this; prefer it).
  void Submit(std::function<void()> task) ANYK_EXCLUDES(mu_) {
    ANYK_DCHECK(!workers_.empty());
    {
      MutexLock lock(&mu_);
      queue_.push_back(std::move(task));
    }
    cv_.NotifyOne();
  }

 private:
  void WorkerLoop() ANYK_EXCLUDES(mu_) {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        while (!stop_ && queue_.empty()) cv_.Wait(mu_);
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.erase(queue_.begin());
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::vector<std::function<void()>> queue_ ANYK_GUARDED_BY(mu_);
  bool stop_ ANYK_GUARDED_BY(mu_) = false;
};

/// Run body(i) for i in [0, n), blocking until all iterations finished.
/// With a null pool (or one without workers) everything runs inline — the
/// common single-threaded path costs one branch and no synchronization.
/// Iterations are claimed one at a time from an atomic cursor (coarse
/// chunks would serialize the skewed per-stage/per-partition work sizes
/// preprocessing produces). The first exception thrown by any iteration is
/// rethrown on the calling thread once every worker is done.
inline void ParallelFor(ThreadPool* pool, size_t n,
                        const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->NumThreads() == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  struct Shared {
    std::atomic<size_t> next{0};
    Mutex mu;
    CondVar cv;
    size_t exited ANYK_GUARDED_BY(mu) = 0;  // helpers done with the run loop
    std::exception_ptr error ANYK_GUARDED_BY(mu);
  };
  Shared shared;
  auto loop = [&shared, n, &body] {
    while (true) {
      const size_t i = shared.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        MutexLock lock(&shared.mu);
        if (!shared.error) shared.error = std::current_exception();
      }
    }
  };
  // The calling thread participates, so a ParallelFor is never slower than
  // the inline loop even when all workers are busy elsewhere. Completion is
  // judged by helper-task *exits*, not iteration counts: once every helper
  // has returned (and the caller's own loop drained the cursor), no thread
  // can touch `shared` again, so unwinding it is safe. The notify happens
  // under the mutex for the same reason — the waiter cannot wake and destroy
  // `shared` before the notifying helper has released the lock.
  const size_t helpers = std::min(pool->NumThreads(), n - 1);
  for (size_t t = 0; t < helpers; ++t) {
    pool->Submit([&shared, loop] {
      loop();
      MutexLock lock(&shared.mu);
      ++shared.exited;
      shared.cv.NotifyAll();
    });
  }
  loop();
  MutexLock lock(&shared.mu);
  while (shared.exited != helpers) shared.cv.Wait(shared.mu);
  if (shared.error) std::rethrow_exception(shared.error);
}

}  // namespace anyk

#endif  // ANYK_UTIL_THREAD_POOL_H_
