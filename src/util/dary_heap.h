// Flat d-ary min-heaps for the enumeration hot path, plus a budget-aware
// bounded wrapper for Lawler-style candidate queues.
//
// Why d-ary (default arity 4) instead of the classic binary layout of
// util/binary_heap.h: the any-k candidate/suffix heaps are pop-and-push
// workloads over small structs whose comparison key (the dioid weight) is
// cached inline as the first member. A wider node halves the tree depth, so
// a sift-up — the common operation when candidates arrive in near-sorted
// order — touches half the cache lines, and the extra child comparisons of a
// sift-down stay within one or two lines because the children are
// contiguous. bench_topk measures the effect on TT(k).
//
// BoundedHeap adds the top-k budget logic ("Optimal Join Algorithms Meet
// Top-k", Tziavelis et al. 2020): when the caller knows it will emit at most
// k answers, and every pop of the queue emits exactly one answer whose
// successors are never better than it (the Lawler/ANYK-PART invariant), any
// candidate provably worse than the running k-th-best bound can be discarded
// and the heap stays O(k) instead of growing with the number of generated
// candidates. Tie handling is deliberately conservative: a candidate is only
// discarded when it is *strictly* worse than the bound, so equal-weight tie
// groups survive intact and bounded runs byte-match unbounded prefixes under
// cancellative (tie-broken) dioids and canonicalize identically elsewhere
// (see tests/differential_test.cc, BoundedKSweep).
//
// Both heaps take an allocator template parameter so the hot path can point
// them at a per-query Arena (util/arena.h) and enumerate with zero global
// heap allocations; compaction is in-place (nth_element + partition), so the
// bounded heap keeps that property.

#ifndef ANYK_UTIL_DARY_HEAP_H_
#define ANYK_UTIL_DARY_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace anyk {

/// Sift a[hole] down in a d-ary min-heap of size n.
template <size_t Arity, typename Container, typename Less>
void DArySiftDown(Container& a, size_t hole, Less& less) {
  using T = typename Container::value_type;
  const size_t n = a.size();
  T value = std::move(a[hole]);
  while (true) {
    const size_t first = Arity * hole + 1;
    if (first >= n) break;
    const size_t last = std::min(first + Arity, n);
    size_t best = first;
    for (size_t c = first + 1; c < last; ++c) {
      if (less(a[c], a[best])) best = c;
    }
    if (!less(a[best], value)) break;
    a[hole] = std::move(a[best]);
    hole = best;
  }
  a[hole] = std::move(value);
}

/// Sift a[hole] up in a d-ary min-heap.
template <size_t Arity, typename Container, typename Less>
void DArySiftUp(Container& a, size_t hole, Less& less) {
  using T = typename Container::value_type;
  T value = std::move(a[hole]);
  while (hole > 0) {
    const size_t parent = (hole - 1) / Arity;
    if (!less(value, a[parent])) break;
    a[hole] = std::move(a[parent]);
    hole = parent;
  }
  a[hole] = std::move(value);
}

/// Establish the d-ary min-heap property in O(|v|) (Floyd's method).
template <size_t Arity, typename Container, typename Less>
void DAryHeapify(Container* v, Less& less) {
  const size_t n = v->size();
  if (n < 2) return;
  for (size_t i = (n - 2) / Arity + 1; i-- > 0;) {
    DArySiftDown<Arity>(*v, i, less);
  }
}

/// Flat d-ary min-heap. API mirrors BinaryHeap so the two are drop-in
/// interchangeable behind the any-k enumerators' PQ template parameter.
template <typename T, typename Less = std::less<T>,
          typename Alloc = std::allocator<T>, size_t Arity = 4>
class DAryHeap {
  static_assert(Arity >= 2, "a heap node needs at least two children");

 public:
  using Container = std::vector<T, Alloc>;

  explicit DAryHeap(Less less = Less(), Alloc alloc = Alloc())
      : less_(less), data_(alloc) {}

  /// Take ownership of `entries` and bulk-heapify them in O(n) — the cheap
  /// way to seed an initial candidate/frontier set (vs n sift-up pushes).
  void BuildFrom(Container entries) {
    data_ = std::move(entries);
    DAryHeapify<Arity>(&data_, less_);
  }
  /// BinaryHeap-compatible alias of BuildFrom.
  void Assign(Container entries) { BuildFrom(std::move(entries)); }

  void Reserve(size_t n) { data_.reserve(n); }
  bool Empty() const { return data_.empty(); }
  size_t Size() const { return data_.size(); }

  const T& Min() const {
    ANYK_DCHECK(!data_.empty());
    return data_[0];
  }

  /// Read-only access to the flat array (tests; static navigation).
  const T& Slot(size_t i) const { return data_[i]; }

  void Push(T value) {
    data_.push_back(std::move(value));
    DArySiftUp<Arity>(data_, data_.size() - 1, less_);
  }

  /// Insert a batch. When the batch rivals the current size the whole array
  /// is re-heapified in O(n) instead of b * O(log n) sift-ups.
  void PushBulk(const std::vector<T>& values) {
    if (values.size() > data_.size() / 2) {
      data_.insert(data_.end(), values.begin(), values.end());
      DAryHeapify<Arity>(&data_, less_);
      return;
    }
    for (const T& v : values) Push(v);
  }

  T PopMin() {
    ANYK_DCHECK(!data_.empty());
    T top = std::move(data_[0]);
    T last = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) {
      data_[0] = std::move(last);
      DArySiftDown<Arity>(data_, 0, less_);
    }
    return top;
  }

  /// Pop the minimum and insert `value` in one sift (a "replace-top").
  T ReplaceMin(T value) {
    ANYK_DCHECK(!data_.empty());
    T top = std::move(data_[0]);
    data_[0] = std::move(value);
    DArySiftDown<Arity>(data_, 0, less_);
    return top;
  }

  void Clear() { data_.clear(); }

 private:
  Less less_;
  Container data_;
};

/// Operation counters of a BoundedHeap (invariants_test asserts the O(k)
/// size bound through these).
struct BoundedHeapStats {
  size_t pruned_pushes = 0;  // discarded as provably outside the budget
  size_t compactions = 0;    // in-place shrinks back to O(k)
  size_t max_size = 0;       // high-water mark of the heap array
};

/// Budget-aware min-heap for candidate queues where *every pop emits exactly
/// one answer* and successors pushed afterwards are never better than the
/// popped element (the ANYK-PART invariant: deviations only make a solution
/// heavier under D::Less).
///
/// With a budget of k answers, once the heap has ever held r = k - emitted
/// candidates no worse than some value B, every answer still to be emitted
/// within the budget is <= B — so candidates strictly worse than B can never
/// be emitted and are discarded at push time; periodic in-place compaction
/// (nth_element to the r-th smallest, keeping the whole boundary tie group)
/// re-tightens B and keeps the array O(k). Without a budget (SetBudget never
/// called, or called with 0) the heap behaves exactly like DAryHeap.
///
/// Tie handling: discarding requires D::Less(B, x) *strictly*, so elements
/// equal to the bound always survive — bounded runs preserve the exact
/// emission order of unbounded runs under total orders (tie-break dioids)
/// and keep tie groups complete under the non-cancellative ones.
template <typename T, typename Less = std::less<T>,
          typename Alloc = std::allocator<T>, size_t Arity = 4>
class BoundedHeap {
 public:
  using Container = std::vector<T, Alloc>;
  // Below this size compaction is not worth the nth_element pass.
  static constexpr size_t kMinCompactSize = 64;

  explicit BoundedHeap(Less less = Less(), Alloc alloc = Alloc())
      : less_(less), data_(alloc) {}

  /// Declare that at most `remaining` more answers will be popped. 0 leaves
  /// the heap unbounded. Each PopMin decrements the budget (pop == emit).
  void SetBudget(size_t remaining) {
    bounded_ = remaining > 0;
    remaining_ = remaining;
  }
  bool bounded() const { return bounded_; }
  size_t remaining_budget() const { return remaining_; }
  const BoundedHeapStats& stats() const { return stats_; }

  void BuildFrom(Container entries) {
    data_ = std::move(entries);
    DAryHeapify<Arity>(&data_, less_);
    NoteSize();
    MaybeCompact();
  }
  void Assign(Container entries) { BuildFrom(std::move(entries)); }

  void Reserve(size_t n) { data_.reserve(n); }
  bool Empty() const { return data_.empty(); }
  size_t Size() const { return data_.size(); }

  const T& Min() const {
    ANYK_DCHECK(!data_.empty());
    return data_[0];
  }
  const T& Slot(size_t i) const { return data_[i]; }

  void Push(T value) {
    if (bounded_) {
      if (remaining_ == 0 ||
          (have_bound_ && less_(bound_, value))) {  // provably outside budget
        ++stats_.pruned_pushes;
        return;
      }
    }
    data_.push_back(std::move(value));
    DArySiftUp<Arity>(data_, data_.size() - 1, less_);
    NoteSize();
    MaybeCompact();
  }

  void PushBulk(const std::vector<T>& values) {
    for (const T& v : values) Push(v);
  }

  T PopMin() {
    ANYK_DCHECK(!data_.empty());
    T top = std::move(data_[0]);
    T last = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) {
      data_[0] = std::move(last);
      DArySiftDown<Arity>(data_, 0, less_);
    }
    if (bounded_ && remaining_ > 0) --remaining_;
    return top;
  }

  T ReplaceMin(T value) {
    // Not a pop-emission: used for in-place refills only.
    ANYK_DCHECK(!data_.empty());
    T top = std::move(data_[0]);
    data_[0] = std::move(value);
    DArySiftDown<Arity>(data_, 0, less_);
    return top;
  }

  void Clear() {
    data_.clear();
    have_bound_ = false;
  }

 private:
  void NoteSize() { stats_.max_size = std::max(stats_.max_size, data_.size()); }

  void MaybeCompact() {
    if (!bounded_) return;
    // A budget at or above the array size has nothing to prune; checking it
    // first also keeps 2 * remaining_ below from overflowing on a huge
    // caller budget.
    if (remaining_ >= data_.size()) return;
    if (data_.size() <= std::max(2 * remaining_, kMinCompactSize)) return;
    // Doubling watermark: when a compaction cannot shrink the array (a huge
    // tie group straddles the budget boundary), don't retry until the array
    // has doubled since — keeps compaction amortized O(1) per push even on
    // all-ties inputs.
    if (data_.size() < 2 * compact_watermark_) return;
    Compact();
    compact_watermark_ = data_.size();
  }

  /// In-place shrink to the remaining budget (plus the boundary tie group)
  /// and tighten the discard bound. O(size); amortized O(1) per push because
  /// it only fires once the array has doubled past the budget.
  void Compact() {
    ++stats_.compactions;
    const size_t r = remaining_;
    if (r == 0) {
      data_.clear();
      return;
    }
    if (data_.size() <= r) return;
    auto nth = data_.begin() + static_cast<ptrdiff_t>(r - 1);
    std::nth_element(data_.begin(), nth, data_.end(), less_);
    const T boundary = *nth;  // r-th smallest = the new bound
    // Keep every element <= boundary (ties at the bound survive).
    auto keep_end = std::partition(
        data_.begin() + static_cast<ptrdiff_t>(r), data_.end(),
        [&](const T& x) { return !less_(boundary, x); });
    data_.erase(keep_end, data_.end());
    bound_ = boundary;
    have_bound_ = true;
    DAryHeapify<Arity>(&data_, less_);
  }

  Less less_;
  Container data_;
  bool bounded_ = false;
  size_t remaining_ = 0;
  size_t compact_watermark_ = 0;  // array size right after the last Compact
  bool have_bound_ = false;
  T bound_{};  // valid iff have_bound_
  BoundedHeapStats stats_;
};

/// Aliases matching the enumerators' `template <class, class, class>` PQ
/// parameter (arity fixed at 4, the sweet spot measured by bench_topk).
template <typename T, typename Less, typename Alloc>
using QuadHeap = DAryHeap<T, Less, Alloc, 4>;
template <typename T, typename Less, typename Alloc>
using BoundedQuadHeap = BoundedHeap<T, Less, Alloc, 4>;

/// Arity variants the cost-based planner can pick instead of the default 4
/// (EnumOptions::heap_arity, dispatched in MakeEnumerator): binary heaps
/// win on tiny candidate sets (shallow sift-up dominates), arity 8 trades
/// more comparisons per level for fewer cache-missing levels on deep
/// drains. See docs/PLANNER.md, "Heap arity".
template <typename T, typename Less, typename Alloc>
using BoundedBinaryHeap = BoundedHeap<T, Less, Alloc, 2>;
template <typename T, typename Less, typename Alloc>
using BoundedOctHeap = BoundedHeap<T, Less, Alloc, 8>;

}  // namespace anyk

#endif  // ANYK_UTIL_DARY_HEAP_H_
