// Geometric k-checkpoints (1, 2, 5, 10, 20, 50, ...) shared by the CLI's
// TT(k) reporting and the benchmark harness. The 1-2-5 decade pattern matches
// the paper's figure axes.

#ifndef ANYK_UTIL_CHECKPOINTS_H_
#define ANYK_UTIL_CHECKPOINTS_H_

#include <cstddef>
#include <vector>

namespace anyk {

/// Checkpoints 1, 2, 5, 10, 20, 50, ... up to (and never past) max_k.
///
/// Contract (util_test pins all of it): the list is strictly increasing —
/// no duplicates, so checkpoint-aligned drains never stall on a zero-size
/// batch and a TT(k) timestamp is stamped at most once per k. max_k == 0
/// yields the empty list (no answers will be pulled, so there is nothing to
/// stamp; callers that want "unbounded" pass SIZE_MAX, not 0 — same sentinel
/// convention as EnumOptions::k_budget). max_k == 1 yields {1}, so a
/// budgeted single-answer session still gets its TT(1) row. The arithmetic
/// is overflow-safe all the way to SIZE_MAX: candidates are divided against,
/// never multiplied into, before the bounds check.
inline std::vector<size_t> GeometricCheckpoints(size_t max_k) {
  std::vector<size_t> cps;
  if (max_k == 0) return cps;
  for (size_t decade = 1;; decade *= 10) {
    for (size_t mult : {size_t{1}, size_t{2}, size_t{5}}) {
      // Within a decade the multipliers increase, so the first candidate
      // past max_k ends the whole list.
      if (mult > max_k / decade) return cps;
      cps.push_back(decade * mult);
    }
    if (decade > max_k / 10) return cps;  // next decade would overflow/exceed
  }
}

}  // namespace anyk

#endif  // ANYK_UTIL_CHECKPOINTS_H_
