// Geometric k-checkpoints (1, 2, 5, 10, 20, 50, ...) shared by the CLI's
// TT(k) reporting and the benchmark harness. The 1-2-5 decade pattern matches
// the paper's figure axes.

#ifndef ANYK_UTIL_CHECKPOINTS_H_
#define ANYK_UTIL_CHECKPOINTS_H_

#include <cstddef>
#include <vector>

namespace anyk {

/// Checkpoints 1, 2, 5, 10, 20, 50, ... up to max_k.
inline std::vector<size_t> GeometricCheckpoints(size_t max_k) {
  std::vector<size_t> cps;
  size_t decade = 1;
  while (decade <= max_k && decade < (size_t{1} << 62)) {
    for (size_t mult : {1, 2, 5}) {
      const size_t k = decade * mult;
      if (k <= max_k) cps.push_back(k);
    }
    if (decade > max_k / 10) break;
    decade *= 10;
  }
  return cps;
}

}  // namespace anyk

#endif  // ANYK_UTIL_CHECKPOINTS_H_
