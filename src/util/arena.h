// Per-query bump ("arena") allocation for the enumeration hot path.
//
// The paper's TT(k) bounds charge O(1) per candidate/suffix, which the seed
// implementation undercut with scattered general-purpose `new` calls (per
// connector, per combination, per candidate-heap growth). An Arena turns all
// of those into pointer bumps inside a few large blocks: a query owns one
// arena, preprocessing reserves it, and enumeration never touches the global
// allocator (verified by invariants_test via util/alloc_stats.h).
//
// Design notes:
//  * Blocks are geometric (doubling, capped) so a query that outgrows its
//    reservation performs O(log total) global allocations, not O(k).
//  * Individual deallocation is a no-op; memory is reclaimed when the arena
//    dies with its query. `std::vector` growth through ArenaAllocator
//    therefore retires old buffers inside the arena (bounded by the usual
//    2x geometric-growth waste), which is the standard arena trade-off.
//  * ArenaAllocator is a C++17 allocator so existing std containers (and
//    BinaryHeap / PairingHeap storage) can be pointed at an arena without
//    changing container logic.

#ifndef ANYK_UTIL_ARENA_H_
#define ANYK_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace anyk {

/// Chunked bump allocator. Not thread-safe; one arena per query pipeline.
class Arena {
 public:
  static constexpr size_t kDefaultFirstBlockBytes = size_t{1} << 16;  // 64 KiB
  static constexpr size_t kMaxBlockBytes = size_t{1} << 24;           // 16 MiB

  explicit Arena(size_t first_block_bytes = kDefaultFirstBlockBytes)
      : next_block_bytes_(first_block_bytes < kMinBlockBytes
                              ? kMinBlockBytes
                              : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    ANYK_DCHECK((align & (align - 1)) == 0);
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      AddBlock(bytes + align);
      p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Ensure at least `bytes` are available without touching the global
  /// allocator again. Called by preprocessing so enumeration stays new-free.
  void Reserve(size_t bytes) {
    if (bytes == 0) return;
    const size_t free_now = static_cast<size_t>(limit_ - cursor_);
    if (free_now >= bytes) return;
    AddBlock(bytes);
  }

  /// Bytes handed out so far (excludes alignment padding and block slack).
  size_t BytesUsed() const { return bytes_used_; }
  /// Bytes obtained from the global allocator.
  size_t BytesReserved() const { return bytes_reserved_; }
  size_t NumBlocks() const { return blocks_.size(); }

 private:
  static constexpr size_t kMinBlockBytes = 256;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t bytes = 0;
  };

  void AddBlock(size_t min_bytes) {
    size_t bytes = next_block_bytes_;
    while (bytes < min_bytes) bytes *= 2;
    Block block{std::unique_ptr<char[]>(new char[bytes]), bytes};
    cursor_ = reinterpret_cast<uintptr_t>(block.data.get());
    limit_ = cursor_ + bytes;
    bytes_reserved_ += bytes;
    blocks_.push_back(std::move(block));
    if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ *= 2;
  }

  std::vector<Block> blocks_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t next_block_bytes_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

/// std-compatible allocator over an Arena. Deallocation is a no-op. A
/// default-constructed (arena-less) allocator CHECK-fails on first use: it
/// exists so containers can be declared before their arena is chosen and
/// re-seated by assignment (the allocator propagates on copy/move/swap).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    ANYK_CHECK(arena_ != nullptr)
        << "ArenaAllocator used before being seated on an arena";
    return arena_->AllocateArray<T>(n);
  }
  void deallocate(T*, size_t) {}  // arena memory dies with the arena

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_ = nullptr;
};

/// Vector whose storage lives in an arena.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// Convenience: an empty ArenaVector seated on `arena`.
template <typename T>
ArenaVector<T> MakeArenaVector(Arena* arena) {
  return ArenaVector<T>(ArenaAllocator<T>(arena));
}

}  // namespace anyk

#endif  // ANYK_UTIL_ARENA_H_
