// Array-backed binary min-heaps.
//
// Three use cases in the any-k algorithms, all covered here:
//  * dynamic heaps for candidate sets (push / pop_min / bulk construction),
//  * O(size) heapification of choice sets (Lazy / Take2 preprocessing),
//  * *static* heaps whose array layout is addressed directly: Take2 reads the
//    two children of a slot (2i+1, 2i+2) without ever popping.

#ifndef ANYK_UTIL_BINARY_HEAP_H_
#define ANYK_UTIL_BINARY_HEAP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace anyk {

/// Establish the min-heap property on `v` in O(|v|) using Floyd's method.
/// Works on any random-access container (plain or arena-backed vectors).
template <typename Container, typename Less>
void Heapify(Container* v, Less less) {
  using T = typename Container::value_type;
  auto& a = *v;
  const size_t n = a.size();
  if (n < 2) return;
  for (size_t i = n / 2; i-- > 0;) {
    size_t hole = i;
    T value = std::move(a[hole]);
    while (true) {
      size_t child = 2 * hole + 1;
      if (child >= n) break;
      if (child + 1 < n && less(a[child + 1], a[child])) ++child;
      if (!less(a[child], value)) break;
      a[hole] = std::move(a[child]);
      hole = child;
    }
    a[hole] = std::move(value);
  }
}

/// Binary min-heap over entries of type T ordered by Less.
///
/// Exposes the underlying array (`Slot`) so callers can use the heap as a
/// static partial order (Take2-style child navigation). The storage
/// allocator is a template parameter so the any-k hot path can point heaps
/// at a per-query arena (util/arena.h) and enumerate without global
/// allocations.
template <typename T, typename Less = std::less<T>,
          typename Alloc = std::allocator<T>>
class BinaryHeap {
 public:
  using Container = std::vector<T, Alloc>;

  explicit BinaryHeap(Less less = Less(), Alloc alloc = Alloc())
      : less_(less), data_(alloc) {}

  /// Take ownership of `entries` and heapify them in O(n).
  void Assign(Container entries) {
    data_ = std::move(entries);
    Heapify(&data_, less_);
  }

  /// Pre-size the backing array (no-op if already large enough).
  void Reserve(size_t n) { data_.reserve(n); }

  bool Empty() const { return data_.empty(); }
  size_t Size() const { return data_.size(); }

  const T& Min() const {
    ANYK_DCHECK(!data_.empty());
    return data_[0];
  }

  /// Read-only access to the heap array (static-heap navigation).
  const T& Slot(size_t i) const { return data_[i]; }

  void Push(T value) {
    data_.push_back(std::move(value));
    SiftUp(data_.size() - 1);
  }

  /// Insert a batch of entries; O(b log n) worst case, but cheaper in
  /// practice because sift-ups on fresh leaves terminate early.
  void PushBulk(const std::vector<T>& values) {
    for (const T& v : values) Push(v);
  }

  T PopMin() {
    ANYK_DCHECK(!data_.empty());
    T top = std::move(data_[0]);
    T last = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) {
      data_[0] = std::move(last);
      SiftDown(0);
    }
    return top;
  }

  /// Pop the minimum and insert `value` in one sift (a "replace-top").
  T ReplaceMin(T value) {
    ANYK_DCHECK(!data_.empty());
    T top = std::move(data_[0]);
    data_[0] = std::move(value);
    SiftDown(0);
    return top;
  }

  void Clear() { data_.clear(); }

 private:
  void SiftUp(size_t hole) {
    T value = std::move(data_[hole]);
    while (hole > 0) {
      size_t parent = (hole - 1) / 2;
      if (!less_(value, data_[parent])) break;
      data_[hole] = std::move(data_[parent]);
      hole = parent;
    }
    data_[hole] = std::move(value);
  }

  void SiftDown(size_t hole) {
    const size_t n = data_.size();
    T value = std::move(data_[hole]);
    while (true) {
      size_t child = 2 * hole + 1;
      if (child >= n) break;
      if (child + 1 < n && less_(data_[child + 1], data_[child])) ++child;
      if (!less_(data_[child], value)) break;
      data_[hole] = std::move(data_[child]);
      hole = child;
    }
    data_[hole] = std::move(value);
  }

  Less less_;
  Container data_;
};

}  // namespace anyk

#endif  // ANYK_UTIL_BINARY_HEAP_H_
