#include "util/alloc_stats.h"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

// Counting replacements for the global allocation functions. All forms
// funnel through CountedAlloc/CountedFree so paired counters stay exact.
// Alignment-extended forms matter: std::vector<__m256-like types> and the
// arena's block storage may use them.

namespace {

// Concurrency contract: lock-free by necessity — operator new/delete run on
// every thread, including inside the allocator paths a mutex would recurse
// into. All three counters are independent monotonic tallies updated with
// relaxed atomics; CurrentAllocCounts() reads are likewise relaxed, so a
// snapshot taken while other threads allocate is approximate per counter
// (exact whenever the caller quiesces allocation first, which is what
// invariants_test's zero-alloc assertions do).
std::atomic<uint64_t> g_news{0};
std::atomic<uint64_t> g_deletes{0};
std::atomic<uint64_t> g_bytes{0};

void* CountedAlloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* CountedAllocAligned(std::size_t size, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded)) {
    return p;
  }
  throw std::bad_alloc();
}

void CountedFree(void* p) noexcept {
  if (p == nullptr) return;
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}

namespace anyk {

AllocCounts CurrentAllocCounts() {
  return {g_news.load(std::memory_order_relaxed),
          g_deletes.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

size_t PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<size_t>(ru.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<size_t>(ru.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace anyk
