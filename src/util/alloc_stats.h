// Process-wide heap-allocation counters.
//
// util/alloc_stats.cc replaces the global operator new/delete with counting
// wrappers (one relaxed atomic increment per call — negligible next to the
// allocation itself). Any binary that references a symbol from this header
// pulls the replacement in; binaries that never ask for counts link the
// default allocator unchanged.
//
// Used by:
//  * invariants_test — proves the enumeration phase performs zero heap
//    allocations after preprocessing (everything runs off per-query arenas),
//  * the bench Reporter — the `allocs` column of BENCH_*.json,
//  * the CLI — allocation/peak-RSS lines of the timing report.

#ifndef ANYK_UTIL_ALLOC_STATS_H_
#define ANYK_UTIL_ALLOC_STATS_H_

#include <cstddef>
#include <cstdint>

namespace anyk {

struct AllocCounts {
  uint64_t news = 0;     // operator new / new[] calls
  uint64_t deletes = 0;  // operator delete / delete[] calls
  uint64_t bytes = 0;    // total bytes requested through operator new
};

/// Snapshot of the process-wide counters (monotonic since process start).
AllocCounts CurrentAllocCounts();

/// Allocation activity between two snapshots.
inline AllocCounts AllocDelta(const AllocCounts& before,
                              const AllocCounts& after) {
  return {after.news - before.news, after.deletes - before.deletes,
          after.bytes - before.bytes};
}

/// Peak resident set size of this process in KiB (0 if unavailable).
size_t PeakRssKb();

}  // namespace anyk

#endif  // ANYK_UTIL_ALLOC_STATS_H_
