// Thread-safety-annotated synchronization primitives.
//
// Wrappers over std::mutex / std::condition_variable carrying Clang Thread
// Safety Analysis attributes (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html),
// so the lock discipline of the serving stack is checked at *compile time* on
// every path — not just the interleavings the test suites happen to execute
// under TSan. Clang builds compile with -Wthread-safety -Werror=thread-safety
// (see CMakeLists.txt); under GCC every macro expands to nothing and the
// wrappers cost exactly a std::mutex / std::condition_variable.
//
// House rules (enforced by scripts/anyk_lint.py, rule `raw-mutex`):
//  * `std::mutex` / `std::condition_variable` / `std::unique_lock` /
//    `std::lock_guard` may appear only in this header. Everything else uses
//    Mutex / MutexLock / CondVar.
//  * Every field a Mutex protects carries ANYK_GUARDED_BY(mu); every private
//    helper that expects the lock held carries ANYK_REQUIRES(mu).
//  * Condition waits are explicit loops (`while (!pred) cv.Wait(mu);`), not
//    predicate lambdas: the analysis checks guarded reads in the loop body,
//    whereas a lambda predicate would need its own annotations.
//
// Lock-ordering hierarchy (see docs/STATIC_ANALYSIS.md for the diagram).
// Locks are leaf-only unless listed; "A -> B" means A may be held while
// acquiring B, never the reverse:
//
//   LruCache::mu_   and  Slot::mu      — never nested: GetOrCreate releases
//                                        the cache mutex before waiting on a
//                                        slot, and Finish takes them strictly
//                                        one after the other.
//   Cursor::mu      ->  CursorManager::mu_ — a page request locks its cursor,
//                                        and Close (manager mutex) runs only
//                                        after the cursor lock is released;
//                                        SweepExpired probes Cursor::mu with
//                                        TryLock while holding the manager
//                                        mutex, which cannot deadlock because
//                                        it never blocks.
//   ThreadPool::mu_                    — leaf; tasks run outside the lock.
//   AnykServer::Impl::queue_mu         — leaf; connections are served outside.
//   RateLimiter::mu_ / SessionGauge::mu_ — leaf, O(1) critical sections.

#ifndef ANYK_UTIL_SYNC_H_
#define ANYK_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Annotation macros. Clang-only; GCC (and clang without TSA, e.g. -fsyntax-
// only consumers) get empty expansions.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define ANYK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ANYK_THREAD_ANNOTATION(x)
#endif

#define ANYK_CAPABILITY(x) ANYK_THREAD_ANNOTATION(capability(x))
#define ANYK_SCOPED_CAPABILITY ANYK_THREAD_ANNOTATION(scoped_lockable)
#define ANYK_GUARDED_BY(x) ANYK_THREAD_ANNOTATION(guarded_by(x))
#define ANYK_PT_GUARDED_BY(x) ANYK_THREAD_ANNOTATION(pt_guarded_by(x))
#define ANYK_ACQUIRED_BEFORE(...) \
  ANYK_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ANYK_ACQUIRED_AFTER(...) \
  ANYK_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define ANYK_REQUIRES(...) \
  ANYK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ANYK_ACQUIRE(...) \
  ANYK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ANYK_RELEASE(...) \
  ANYK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ANYK_TRY_ACQUIRE(...) \
  ANYK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ANYK_EXCLUDES(...) ANYK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ANYK_ASSERT_CAPABILITY(x) \
  ANYK_THREAD_ANNOTATION(assert_capability(x))
#define ANYK_RETURN_CAPABILITY(x) ANYK_THREAD_ANNOTATION(lock_returned(x))
#define ANYK_NO_THREAD_SAFETY_ANALYSIS \
  ANYK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace anyk {

class CondVar;

/// Annotated exclusive mutex. Prefer MutexLock over manual Lock/Unlock;
/// TryLock is for non-blocking probes (adopt the success with
/// MutexLock(mu, AdoptLock()) so an exception cannot leak the lock).
class ANYK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ANYK_ACQUIRE() { mu_.lock(); }
  void Unlock() ANYK_RELEASE() { mu_.unlock(); }
  bool TryLock() ANYK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Tag for MutexLock: the calling thread already holds the mutex (a
/// successful Mutex::TryLock) and hands ownership to the scope.
struct AdoptLock {};

/// RAII scope for a Mutex. The destructor releases the lock unless Unlock()
/// already did — early release is legal exactly once, for the
/// "finish-read-state, then call something that takes another lock" pattern.
class ANYK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ANYK_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(Mutex* mu, AdoptLock) ANYK_REQUIRES(mu) : mu_(mu) {}

  ~MutexLock() ANYK_RELEASE() {
    if (held_) mu_->Unlock();
  }

  /// Release before scope end (at most once).
  void Unlock() ANYK_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
  bool held_ = true;
};

/// Condition variable paired with Mutex. Waits require the mutex held and
/// reacquire it before returning; write waits as explicit loops so the
/// analysis sees every guarded read:
///
///   MutexLock lock(&mu_);
///   while (!condition) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, block, and reacquire before returning. Spurious
  /// wakeups happen; always re-check the condition.
  void Wait(Mutex& mu) ANYK_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  /// Wait with a deadline; returns false on timeout (mutex reacquired
  /// either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      ANYK_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace anyk

#endif  // ANYK_UTIL_SYNC_H_
