// Lightweight assertion / logging macros used across the library.
//
// We deliberately avoid a heavyweight logging dependency: the library is a
// research reproduction and only needs fail-fast invariant checks (always on,
// including release builds, because enumeration-order bugs are silent
// otherwise) and a debug-only variant for hot loops.

#ifndef ANYK_UTIL_LOGGING_H_
#define ANYK_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace anyk {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

// Stream collector so CHECK(x) << "context " << v; works.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, expr_, out_.str()); }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream out_;
};

}  // namespace internal
}  // namespace anyk

#define ANYK_CHECK(cond)                                             \
  if (cond) {                                                        \
  } else                                                             \
    ::anyk::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define ANYK_CHECK_EQ(a, b) ANYK_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define ANYK_CHECK_NE(a, b) ANYK_CHECK((a) != (b))
#define ANYK_CHECK_LT(a, b) ANYK_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define ANYK_CHECK_LE(a, b) ANYK_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define ANYK_CHECK_GT(a, b) ANYK_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define ANYK_CHECK_GE(a, b) ANYK_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define ANYK_DCHECK(cond) \
  if (true) {             \
  } else                  \
    ::anyk::internal::CheckMessage(__FILE__, __LINE__, #cond)
#else
#define ANYK_DCHECK(cond) ANYK_CHECK(cond)
#endif

#endif  // ANYK_UTIL_LOGGING_H_
