// Lightweight assertion / logging macros used across the library.
//
// We deliberately avoid a heavyweight logging dependency: the library is a
// research reproduction and only needs fail-fast invariant checks (always on,
// including release builds, because enumeration-order bugs are silent
// otherwise) and a debug-only variant for hot loops.

#ifndef ANYK_UTIL_LOGGING_H_
#define ANYK_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace anyk {

/// Thrown by ThrowingCheckHandler instead of aborting the process. Lets
/// embedders (the `anyk` CLI) turn invariant violations and malformed-input
/// checks into clean error messages and exit codes.
class CheckError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace internal {

/// Invoked on CHECK failure instead of the default print-and-abort. Must not
/// return (throw or exit); if it does return, the default abort still runs.
using CheckFailureHandler = void (*)(const char* file, int line,
                                     const char* expr, const std::string& msg);

inline CheckFailureHandler& CheckHandlerSlot() {
  static CheckFailureHandler handler = nullptr;
  return handler;
}

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const std::string& msg) {
  if (CheckFailureHandler handler = CheckHandlerSlot()) {
    handler(file, line, expr, msg);
  }
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

// Stream collector so CHECK(x) << "context " << v; works.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  // noexcept(false): the installed handler may throw (see CheckError).
  [[noreturn]] ~CheckMessage() noexcept(false) {
    CheckFailed(file_, line_, expr_, out_.str());
  }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream out_;
};

}  // namespace internal

/// Install `handler` to run on CHECK failure instead of print-and-abort;
/// returns the previous handler (nullptr = default). The handler must not
/// return. Not thread-safe; install once at startup.
inline internal::CheckFailureHandler SetCheckFailureHandler(
    internal::CheckFailureHandler handler) {
  internal::CheckFailureHandler previous = internal::CheckHandlerSlot();
  internal::CheckHandlerSlot() = handler;
  return previous;
}

/// Ready-made handler that throws CheckError. The message keeps just the
/// streamed context when there is one (that is the user-facing part, e.g.
/// "SQL: expected FROM"); bare CHECKs fall back to the expression + location.
[[noreturn]] inline void ThrowingCheckHandler(const char* file, int line,
                                              const char* expr,
                                              const std::string& msg) {
  if (!msg.empty()) throw CheckError(msg);
  std::ostringstream out;
  out << "CHECK(" << expr << ") failed at " << file << ":" << line;
  throw CheckError(out.str());
}

}  // namespace anyk

#define ANYK_CHECK(cond)                                             \
  if (cond) {                                                        \
  } else                                                             \
    ::anyk::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define ANYK_CHECK_EQ(a, b) ANYK_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define ANYK_CHECK_NE(a, b) ANYK_CHECK((a) != (b))
#define ANYK_CHECK_LT(a, b) ANYK_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define ANYK_CHECK_LE(a, b) ANYK_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define ANYK_CHECK_GT(a, b) ANYK_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define ANYK_CHECK_GE(a, b) ANYK_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define ANYK_DCHECK(cond) \
  if (true) {             \
  } else                  \
    ::anyk::internal::CheckMessage(__FILE__, __LINE__, #cond)
#else
#define ANYK_DCHECK(cond) ANYK_CHECK(cond)
#endif

#endif  // ANYK_UTIL_LOGGING_H_
