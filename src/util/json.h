// Minimal streaming JSON writer.
//
// Shared by the CLI (`--format=json` reports) and the benchmark harness
// (schema-versioned BENCH_<figure>.json files). Emits pretty-printed,
// deterministic output; keys are written in call order. No DOM, no parsing —
// downstream consumers (scripts/bench_compare.py, jq) parse with real JSON
// libraries.

#ifndef ANYK_UTIL_JSON_H_
#define ANYK_UTIL_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/logging.h"

namespace anyk {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent_width = 2)
      : out_(out), indent_width_(indent_width) {}

  JsonWriter& BeginObject() {
    ValuePrefix();
    out_ << '{';
    stack_.push_back({/*array=*/false, /*items=*/0});
    return *this;
  }
  JsonWriter& EndObject() { return End(/*array=*/false, '}'); }

  JsonWriter& BeginArray() {
    ValuePrefix();
    out_ << '[';
    stack_.push_back({/*array=*/true, /*items=*/0});
    return *this;
  }
  JsonWriter& EndArray() { return End(/*array=*/true, ']'); }

  JsonWriter& Key(std::string_view k) {
    ANYK_CHECK(!stack_.empty() && !stack_.back().array && !have_key_)
        << "JsonWriter: Key() outside an object";
    if (stack_.back().items++ > 0) out_ << ',';
    Newline(stack_.size());
    WriteEscaped(k);
    out_ << ": ";
    have_key_ = true;
    return *this;
  }

  JsonWriter& String(std::string_view v) {
    ValuePrefix();
    WriteEscaped(v);
    return *this;
  }
  JsonWriter& Int(int64_t v) {
    ValuePrefix();
    out_ << v;
    return *this;
  }
  JsonWriter& UInt(uint64_t v) {
    ValuePrefix();
    out_ << v;
    return *this;
  }
  /// Non-finite doubles have no JSON representation; they serialize as null.
  JsonWriter& Double(double v) {
    ValuePrefix();
    if (!std::isfinite(v)) {
      out_ << "null";
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out_ << buf;
    return *this;
  }
  JsonWriter& Bool(bool v) {
    ValuePrefix();
    out_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& Null() {
    ValuePrefix();
    out_ << "null";
    return *this;
  }

  // Key/value conveniences for object members.
  JsonWriter& KV(std::string_view k, std::string_view v) {
    return Key(k).String(v);
  }
  JsonWriter& KV(std::string_view k, const char* v) {
    return Key(k).String(v);
  }
  JsonWriter& KV(std::string_view k, int64_t v) { return Key(k).Int(v); }
  JsonWriter& KV(std::string_view k, uint64_t v) { return Key(k).UInt(v); }
  JsonWriter& KV(std::string_view k, double v) { return Key(k).Double(v); }
  JsonWriter& KV(std::string_view k, bool v) { return Key(k).Bool(v); }

  /// Call once after the outermost End*(): final newline, flush.
  void Finish() {
    ANYK_CHECK(stack_.empty()) << "JsonWriter: Finish() with open scopes";
    out_ << '\n';
    out_.flush();
  }

 private:
  struct Scope {
    bool array;
    size_t items;
  };

  void ValuePrefix() {
    if (stack_.empty()) return;  // top-level value
    if (stack_.back().array) {
      if (stack_.back().items++ > 0) out_ << ',';
      Newline(stack_.size());
    } else {
      ANYK_CHECK(have_key_) << "JsonWriter: object value without Key()";
      have_key_ = false;
    }
  }

  JsonWriter& End(bool array, char close) {
    ANYK_CHECK(!stack_.empty() && stack_.back().array == array && !have_key_)
        << "JsonWriter: mismatched End";
    const size_t items = stack_.back().items;
    stack_.pop_back();
    if (items > 0) Newline(stack_.size() + 1, /*close=*/true);
    out_ << close;
    return *this;
  }

  void Newline(size_t depth, bool close = false) {
    out_ << '\n';
    const size_t level = close ? depth - 1 : depth;
    for (size_t i = 0; i < level * indent_width_; ++i) out_ << ' ';
  }

  void WriteEscaped(std::string_view s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\b': out_ << "\\b"; break;
        case '\f': out_ << "\\f"; break;
        case '\n': out_ << "\\n"; break;
        case '\r': out_ << "\\r"; break;
        case '\t': out_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  size_t indent_width_;
  std::vector<Scope> stack_;
  bool have_key_ = false;
};

}  // namespace anyk

#endif  // ANYK_UTIL_JSON_H_
