// Theta-joins (paper Section 2.1: "Our approach can be applied to any join
// query, including those with theta-join conditions"; optimality guarantees
// are only claimed for equi-joins).
//
// For a path query R1 θ1 R2 θ2 ... θ_{l-1} Rl with arbitrary join
// predicates θ_i(left row, right row), the Fig. 3 connector sharing is
// unavailable: every state gets its *private* connector listing the child
// states its predicate admits. The stage graph therefore has O(n²) edges in
// the worst case — the price of generality — but all any-k algorithms run
// on it unchanged, and delays keep their guarantees relative to the larger
// preprocessing.

#ifndef ANYK_DP_THETA_H_
#define ANYK_DP_THETA_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "dp/stage_graph.h"
#include "query/join_tree.h"
#include "storage/database.h"
#include "util/logging.h"

namespace anyk {

/// Join predicate between a row of stage i and a row of stage i+1.
using ThetaPredicate =
    std::function<bool(std::span<const Value>, std::span<const Value>)>;

/// Holds the chain instance together with its theta stage graph (the graph
/// points into the instance).
template <SelectiveDioid D>
struct ThetaPathProblem {
  std::unique_ptr<TDPInstance> instance;
  std::unique_ptr<StageGraph<D>> graph;
};

/// Build the DP for relations[0] θ[0] relations[1] θ[1] ... — a serial
/// chain; variables are synthetic (stage i contributes its own columns).
template <SelectiveDioid D>
ThetaPathProblem<D> BuildThetaPathGraph(
    const std::vector<const Relation*>& relations,
    const std::vector<ThetaPredicate>& thetas) {
  using V = typename D::Value;
  const size_t L = relations.size();
  ANYK_CHECK_GE(L, 1u);
  ANYK_CHECK_EQ(thetas.size(), L - 1);

  ThetaPathProblem<D> out;
  // anyk-lint: allow(heap-hot-path): problem setup before any enumeration
  out.instance = std::make_unique<TDPInstance>();
  TDPInstance& inst = *out.instance;
  inst.num_atoms = L;
  // Synthetic disjoint variables: stage i's columns are vars base..base+a.
  uint32_t var_base = 0;
  for (size_t i = 0; i < L; ++i) {
    TDPNode node;
    node.table = relations[i];
    for (size_t c = 0; c < relations[i]->arity(); ++c) {
      node.vars.push_back(var_base++);
    }
    node.parent = (i == 0) ? -1 : static_cast<int>(i - 1);
    node.pinned_atoms = {static_cast<uint32_t>(i)};
    const size_t rows = relations[i]->NumRows();
    node.pin_weights.resize(rows);
    node.pin_rows.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      node.pin_weights[r] = relations[i]->Weight(r);
      node.pin_rows[r] = static_cast<uint32_t>(r);
    }
    inst.nodes.push_back(std::move(node));
  }
  inst.num_vars = var_base;
  FinalizeTopology(&inst);
  // No key columns: connectors are assigned explicitly below.

  // anyk-lint: allow(heap-hot-path): problem setup before any enumeration
  out.graph = std::make_unique<StageGraph<D>>();
  StageGraph<D>& g = *out.graph;
  g.instance = &inst;
  g.stages.resize(L);
  g.child_stage.assign(L, {});
  g.conn_of_key.resize(L);
  for (size_t k = 0; k < L; ++k) {
    auto& st = g.stages[k];
    st.node_idx = static_cast<uint32_t>(k);
    st.col_segs.resize(relations[k]->arity());
    for (size_t c = 0; c < relations[k]->arity(); ++c) {
      st.col_segs[c] =
          relations[k]->NumRows() ? relations[k]->ColumnData(c) : nullptr;
    }
    st.parent_stage = (k == 0) ? -1 : static_cast<int>(k - 1);
    st.parent_slot = 0;
    st.num_slots = (k + 1 < L) ? 1 : 0;
    st.conn_begin = {0};
    if (k + 1 < L) g.child_stage[k].push_back(static_cast<uint32_t>(k + 1));
  }

  // Bottom-up, last stage first. Each surviving parent state gets a private
  // connector over the surviving child states its predicate admits.
  for (size_t k = L; k-- > 0;) {
    auto& st = g.stages[k];
    const Relation& rel = *relations[k];
    const size_t rows = rel.NumRows();
    if (k + 1 == L) {
      // Leaf stage: every row survives with pi1 = 1̄.
      for (size_t r = 0; r < rows; ++r) {
        st.row_of_state.push_back(static_cast<uint32_t>(r));
        st.weight.push_back(LiftWeight<D>(rel.Weight(r), k, L,
                                          static_cast<uint32_t>(r)));
        st.pi1.push_back(D::One());
      }
    } else {
      auto& child = g.stages[k + 1];
      // Predicates take row spans; storage is columnar, so materialize each
      // candidate pair into flat buffers (left once per r, right per state).
      const Relation& child_rel = *relations[k + 1];
      std::vector<Value> left_buf(rel.arity());
      std::vector<Value> right_buf(child_rel.arity());
      for (size_t r = 0; r < rows; ++r) {
        rel.Row(r).CopyInto(left_buf.data());
        // Private connector: matching surviving child states.
        const uint32_t begin = static_cast<uint32_t>(child.members.size());
        uint32_t best_pos = begin;
        for (uint32_t cs = 0; cs < child.NumStates(); ++cs) {
          child_rel.Row(child.row_of_state[cs]).CopyInto(right_buf.data());
          if (!thetas[k](left_buf, right_buf)) {
            continue;
          }
          const V val = D::Combine(child.weight[cs], child.pi1[cs]);
          if (child.members.size() > begin &&
              D::Less(val, child.member_val[best_pos])) {
            best_pos = static_cast<uint32_t>(child.members.size());
          }
          child.members.push_back(cs);
          child.member_val.push_back(val);
        }
        if (child.members.size() == begin) continue;  // dangling: prune
        const uint32_t conn = static_cast<uint32_t>(child.conn_begin.size() - 1);
        child.conn_best.push_back(best_pos);
        child.conn_begin.push_back(static_cast<uint32_t>(child.members.size()));
        st.row_of_state.push_back(static_cast<uint32_t>(r));
        st.weight.push_back(LiftWeight<D>(rel.Weight(r), k, L,
                                          static_cast<uint32_t>(r)));
        st.pi1.push_back(child.member_val[best_pos]);
        st.conn_of_state.push_back(conn);
      }
    }
  }
  // Root connector: all surviving root states.
  {
    auto& st = g.stages[0];
    const uint32_t ns = static_cast<uint32_t>(st.NumStates());
    // Shift any existing connectors? Stage 0 has none yet (its connectors
    // were never created because it has no parent); build the root group.
    st.conn_begin = {0, ns};
    for (uint32_t s = 0; s < ns; ++s) {
      st.members.push_back(s);
      st.member_val.push_back(D::Combine(st.weight[s], st.pi1[s]));
    }
    uint32_t best = 0;
    for (uint32_t p = 1; p < ns; ++p) {
      if (D::Less(st.member_val[p], st.member_val[best])) best = p;
    }
    st.conn_best = ns > 0 ? std::vector<uint32_t>{best}
                          : std::vector<uint32_t>{};
    if (ns == 0) st.conn_begin = {0};
  }
  uint32_t base = 0;
  for (auto& st : g.stages) {
    st.conn_global_base = base;
    base += static_cast<uint32_t>(st.NumConns());
  }
  g.total_connectors = base;
  return out;
}

}  // namespace anyk

#endif  // ANYK_DP_THETA_H_
