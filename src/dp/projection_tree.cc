#include "dp/projection_tree.h"

// anyk-lint: allow-file(heap-hot-path): plan construction — validates the
// running-intersection property and materializes projected relations once
// per Prepare(); nothing here runs during enumeration, so node-based sets
// and shared_ptr ownership are fine (and the dedup sets are query-sized).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "query/gyo.h"
#include "storage/group_index.h"
#include "storage/value.h"
#include "util/logging.h"

namespace anyk {

bool HasRunningIntersection(const TDPInstance& inst) {
  // For every variable: nodes containing it must form a connected subtree.
  std::unordered_set<uint32_t> vars;
  for (const auto& n : inst.nodes) vars.insert(n.vars.begin(), n.vars.end());
  for (uint32_t w : vars) {
    std::vector<int> with;  // node indices containing w
    for (size_t i = 0; i < inst.nodes.size(); ++i) {
      if (std::find(inst.nodes[i].vars.begin(), inst.nodes[i].vars.end(), w) !=
          inst.nodes[i].vars.end()) {
        with.push_back(static_cast<int>(i));
      }
    }
    if (with.size() <= 1) continue;
    // BFS within the induced subgraph.
    std::unordered_set<int> member(with.begin(), with.end());
    std::unordered_set<int> seen = {with[0]};
    std::vector<int> stack = {with[0]};
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      std::vector<int> nbrs;
      if (inst.nodes[u].parent >= 0) nbrs.push_back(inst.nodes[u].parent);
      for (int c : inst.nodes[u].children) nbrs.push_back(c);
      for (int v : nbrs) {
        if (member.count(v) && !seen.count(v)) {
          seen.insert(v);
          stack.push_back(v);
        }
      }
    }
    if (seen.size() != with.size()) return false;
  }
  return true;
}

namespace {

// Re-root the (undirected view of the) topology at `root`.
std::vector<int> Reroot(const JoinTreeTopology& topo, int root) {
  const size_t n = topo.parent.size();
  std::vector<std::vector<int>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    if (topo.parent[i] >= 0) {
      adj[i].push_back(topo.parent[i]);
      adj[topo.parent[i]].push_back(static_cast<int>(i));
    }
  }
  std::vector<int> parent(n, -2);  // -2 = unvisited
  parent[root] = -1;
  std::vector<int> stack = {root};
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    for (int v : adj[u]) {
      if (parent[v] == -2) {
        parent[v] = u;
        stack.push_back(v);
      }
    }
  }
  for (int p : parent) ANYK_CHECK_NE(p, -2) << "join tree disconnected";
  return parent;
}

std::vector<uint32_t> SortedVars(const ConjunctiveQuery& q, size_t atom) {
  std::vector<uint32_t> v = q.AtomVarIds(atom);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

LayeredInstance BuildLayeredInstance(const Database& db,
                                     const ConjunctiveQuery& q) {
  ANYK_CHECK(!q.IsFull()) << "projection requested for a full query";
  ANYK_CHECK(IsFreeConnexAcyclic(q))
      << "not free-connex acyclic: " << q.ToString()
      << " (no constant/log-delay projection enumeration exists unless "
         "sparseBMM-style hypotheses fail, Corollary 22)";

  const size_t na = q.NumAtoms();
  const std::vector<uint32_t>& y = q.FreeVarIds();
  std::unordered_set<uint32_t> yset(y.begin(), y.end());

  // Join tree of the extended query, re-rooted at the virtual head edge
  // (index na).
  GyoResult gyo = GyoReduce(Hypergraph::FromQueryWithHeadEdge(q));
  ANYK_CHECK(gyo.acyclic);
  std::vector<int> parent = Reroot(gyo.tree, static_cast<int>(na));

  std::vector<int> head_children;
  for (size_t i = 0; i < na; ++i) {
    if (parent[i] == static_cast<int>(na)) {
      head_children.push_back(static_cast<int>(i));
    }
  }
  ANYK_CHECK(!head_children.empty());

  // Free variables per atom.
  std::vector<std::vector<uint32_t>> free_of(na);
  for (size_t i = 0; i < na; ++i) {
    for (uint32_t v : SortedVars(q, i)) {
      if (yset.count(v)) free_of[i].push_back(v);
    }
  }

  // Try each head child as the primary root; accept the first arrangement
  // whose layered tree satisfies running intersection.
  for (int primary : head_children) {
    // Atom-level tree: primary is the root, other head children re-attach
    // under it.
    std::vector<int> tparent(na);
    for (size_t i = 0; i < na; ++i) {
      tparent[i] = (parent[i] == static_cast<int>(na))
                       ? ((static_cast<int>(i) == primary) ? -1 : primary)
                       : parent[i];
    }

    // Node plan: U node per atom with free vars (the atom itself when all
    // its variables are free), lower node per atom with existential vars.
    std::vector<int> unode(na, -1), lnode(na, -1);
    LayeredInstance out;
    out.free_vars = y;
    TDPInstance& inst = out.full;
    inst.num_vars = q.NumVars();
    inst.num_atoms = na;

    // Pass 1: U layer — a weightless *distinct* projection of every atom
    // with free variables (the paper's auxiliary R' atoms). Keeping the
    // weights on the lower layer makes duplicate input rows and every
    // selective dioid's ⊕ fold out correctly through the branch minima.
    for (size_t i = 0; i < na; ++i) {
      if (free_of[i].empty()) continue;
      const Relation& rel = db.Get(q.atom(i).relation);
      const auto& vars = q.AtomVarIds(i);
      std::vector<uint32_t> cols;
      for (uint32_t fv : free_of[i]) {
        for (size_t c = 0; c < vars.size(); ++c) {
          if (vars[c] == fv) {
            cols.push_back(static_cast<uint32_t>(c));
            break;
          }
        }
      }
      auto owned =
          std::make_shared<Relation>(rel.name() + "#proj", cols.size());
      std::unordered_set<Key, KeyHash> seen;
      for (size_t r = 0; r < rel.NumRows(); ++r) {
        Key key = rel.ProjectRow(r, cols);
        if (seen.insert(key).second) owned->AddRow(key, 0.0);
      }
      TDPNode node;
      node.vars = free_of[i];
      node.table = owned.get();
      node.owned = std::move(owned);
      unode[i] = static_cast<int>(inst.nodes.size());
      inst.nodes.push_back(std::move(node));
    }

    // Pass 2: lower layer — every original atom with its weights.
    for (size_t i = 0; i < na; ++i) {
      const Relation& rel = db.Get(q.atom(i).relation);
      TDPNode node;
      node.vars = q.AtomVarIds(i);
      node.table = &rel;
      node.pinned_atoms = {static_cast<uint32_t>(i)};
      node.pin_weights.resize(rel.NumRows());
      node.pin_rows.resize(rel.NumRows());
      for (size_t r = 0; r < rel.NumRows(); ++r) {
        node.pin_weights[r] = rel.Weight(r);
        node.pin_rows[r] = static_cast<uint32_t>(r);
      }
      lnode[i] = static_cast<int>(inst.nodes.size());
      inst.nodes.push_back(std::move(node));
    }

    // Pass 3: parents.
    auto nearest_free_ancestor = [&](size_t i) -> int {
      int p = tparent[i];
      while (p >= 0 && free_of[p].empty()) p = tparent[p];
      return p;  // -1 if none
    };
    bool ok = true;
    for (size_t i = 0; i < na && ok; ++i) {
      // U node parent: U node of the nearest free-bearing ancestor.
      if (unode[i] >= 0) {
        const int anc = nearest_free_ancestor(i);
        inst.nodes[unode[i]].parent = (anc < 0) ? -1 : unode[anc];
        if (static_cast<int>(i) == primary) {
          inst.nodes[unode[i]].parent = -1;
        }
      }
      // Lower node parent.
      if (lnode[i] >= 0) {
        const int p = tparent[i];
        int lparent;
        if (p < 0) {
          // Primary atom's lower node hangs under its own U node (or is the
          // root if the primary has no free vars — rejected below).
          lparent = unode[i];
        } else {
          // Shared existential variables with the tree parent force us to
          // stay in the lower layer; otherwise attach under our own U node.
          bool shared_existential = false;
          for (uint32_t v : SortedVars(q, i)) {
            if (yset.count(v)) continue;
            const auto pv = SortedVars(q, p);
            if (std::binary_search(pv.begin(), pv.end(), v)) {
              shared_existential = true;
            }
          }
          if (shared_existential || unode[i] < 0) {
            lparent = (lnode[p] >= 0) ? lnode[p] : unode[p];
          } else {
            lparent = unode[i];
          }
        }
        if (lparent < 0) {
          ok = false;
          break;
        }
        inst.nodes[lnode[i]].parent = lparent;
      }
    }
    if (!ok) continue;

    // Exactly one root, and it must be a U node.
    int root = -1;
    for (size_t i = 0; i < inst.nodes.size(); ++i) {
      if (inst.nodes[i].parent < 0) {
        if (root >= 0) {
          ok = false;
          break;
        }
        root = static_cast<int>(i);
      }
    }
    if (!ok || root < 0 || unode[primary] != root) continue;

    FinalizeTopology(&inst);
    ComputeJoinKeys(&inst);
    if (!HasRunningIntersection(inst)) continue;

    // Record the U layer and the pruned (lower-layer) children per U node.
    std::vector<bool> is_u(inst.nodes.size(), false);
    for (size_t i = 0; i < na; ++i) {
      if (unode[i] >= 0) is_u[unode[i]] = true;
    }
    out.u_nodes.clear();
    for (uint32_t idx : inst.order) {
      if (is_u[idx]) out.u_nodes.push_back(idx);
    }
    out.pruned_children.assign(inst.nodes.size(), {});
    for (size_t i = 0; i < inst.nodes.size(); ++i) {
      if (is_u[i]) continue;
      const int p = inst.nodes[i].parent;
      if (p >= 0 && is_u[p]) {
        out.pruned_children[p].push_back(static_cast<uint32_t>(i));
      }
    }
    // All U-node parents must themselves be U nodes (connex subset).
    bool connex = true;
    for (uint32_t u : out.u_nodes) {
      const int p = inst.nodes[u].parent;
      if (p >= 0 && !is_u[p]) connex = false;
    }
    if (!connex) continue;
    return out;
  }

  ANYK_CHECK(false) << "free-connex query " << q.ToString()
                    << " requires a join-tree rearrangement outside the "
                       "supported class";
  __builtin_unreachable();
}

}  // namespace anyk
