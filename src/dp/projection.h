// Ranked enumeration under min-weight-projection semantics for free-connex
// acyclic queries (paper Section 8.1, Theorem 20).
//
// Pipeline:
//  1. build the layered join tree (projection_tree.h): U layer over free
//     variables, original atoms with existential variables hanging below;
//  2. run the bottom-up phase on the *full* layered T-DP — this computes
//     π1 for every state, in particular the best completion of every
//     lower-layer branch per join key;
//  3. build the *pruned* T-DP over the U layer only, folding each pruned
//     branch's minimum into the retained states' weights via the
//     StateWeightHook (the paper's artificial-terminal weight rewrite);
//  4. run any any-k algorithm on the pruned graph.
//
// TTF is O(n) and delay O(log k) (Theorem 20); each emitted assignment binds
// exactly the free variables and carries the minimum weight over all full
// answers projecting to it.

#ifndef ANYK_DP_PROJECTION_H_
#define ANYK_DP_PROJECTION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "anyk/factory.h"
#include "dp/projection_tree.h"
#include "dp/stage_graph.h"

namespace anyk {

template <SelectiveDioid D>
class MinWeightProjection : public Enumerator<D> {
  using V = typename D::Value;

 public:
  MinWeightProjection(const Database& db, const ConjunctiveQuery& q,
                      Algorithm algo = Algorithm::kTake2,
                      EnumOptions opts = {})
      : layered_(BuildLayeredInstance(db, q)) {
    // anyk-lint: allow(heap-hot-path): constructor-time graph build (TTF)
    full_graph_ = std::make_unique<StageGraph<D>>(
        BuildStageGraph<D>(layered_.full));

    // Stage index of each layered node in the full graph.
    std::vector<uint32_t> stage_of_node(layered_.full.nodes.size());
    for (uint32_t k = 0; k < full_graph_->stages.size(); ++k) {
      stage_of_node[full_graph_->stages[k].node_idx] = k;
    }

    // Pruned instance over the U layer.
    pruned_.num_vars = layered_.full.num_vars;
    pruned_.num_atoms = layered_.full.num_atoms;
    std::vector<int> pruned_idx(layered_.full.nodes.size(), -1);
    for (uint32_t u : layered_.u_nodes) {
      pruned_idx[u] = static_cast<int>(pruned_.nodes.size());
      layered_to_pruned_node_.push_back(u);
      const TDPNode& src = layered_.full.nodes[u];
      TDPNode copy;
      copy.vars = src.vars;
      copy.table = src.table;
      copy.owned = src.owned;
      copy.pinned_atoms = src.pinned_atoms;
      copy.pin_weights = src.pin_weights;
      copy.pin_rows = src.pin_rows;
      pruned_.nodes.push_back(std::move(copy));
    }
    for (size_t i = 0; i < pruned_.nodes.size(); ++i) {
      const int lp = layered_.full.nodes[layered_to_pruned_node_[i]].parent;
      pruned_.nodes[i].parent = (lp < 0) ? -1 : pruned_idx[lp];
      ANYK_CHECK(lp < 0 || pruned_idx[lp] >= 0) << "U layer not connex";
    }
    FinalizeTopology(&pruned_);
    ComputeJoinKeys(&pruned_);

    // Weight hook: fold the best completion of every pruned branch.
    hook_ = [this, stage_of_node](uint32_t node_idx,
                                  uint32_t row) -> std::optional<V> {
      const uint32_t layered_idx = layered_to_pruned_node_[node_idx];
      const TDPNode& unode = layered_.full.nodes[layered_idx];
      V extra = D::One();
      for (uint32_t c : layered_.pruned_children[layered_idx]) {
        const TDPNode& cnode = layered_.full.nodes[c];
        Key key;
        key.reserve(cnode.parent_key_cols.size());
        for (uint32_t pc : cnode.parent_key_cols) {
          key.push_back(unode.table->At(row, pc));
        }
        const uint32_t cstage = stage_of_node[c];
        const int64_t conn = full_graph_->conn_of_key[cstage].Find(key);
        if (conn < 0) return std::nullopt;  // no completion: prune
        extra = D::Combine(extra, full_graph_->stages[cstage].ConnBestVal(
                                      static_cast<uint32_t>(conn)));
      }
      return extra;
    };
    // anyk-lint: allow(heap-hot-path): constructor-time graph build (TTF)
    pruned_graph_ = std::make_unique<StageGraph<D>>(BuildStageGraph<D>(
        pruned_, layered_.full.num_atoms, &hook_));
    enumerator_ = MakeEnumerator<D>(pruned_graph_.get(), algo, opts);
  }

  /// Next free-variable assignment in rank order; weight is the minimum over
  /// all full answers projecting to it. Witnesses are only meaningful for
  /// atoms fully contained in the free part.
  std::optional<ResultRow<D>> Next() override { return enumerator_->Next(); }
  bool NextInto(ResultRow<D>* row) override {
    return enumerator_->NextInto(row);
  }

  const std::vector<uint32_t>& free_vars() const { return layered_.free_vars; }

 private:
  LayeredInstance layered_;
  std::unique_ptr<StageGraph<D>> full_graph_;
  TDPInstance pruned_;
  std::vector<uint32_t> layered_to_pruned_node_;
  StateWeightHook<D> hook_;
  std::unique_ptr<StageGraph<D>> pruned_graph_;
  std::unique_ptr<Enumerator<D>> enumerator_;
};

}  // namespace anyk

#endif  // ANYK_DP_PROJECTION_H_
