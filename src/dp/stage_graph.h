// The multi-stage DP state graph (paper Sections 3 and 5.1).
//
// Stages correspond to join-tree nodes, serialized in preorder; states are
// surviving tuples. The equi-join transformation of Fig. 3 is realized by
// *connectors*: a connector groups the states of a stage by their join-key
// with the parent stage, so that all parent states with that key share one
// choice set. This keeps the edge representation at O(l*n) and lets the
// any-k algorithms share per-connector data structures across states — the
// source of Recursive's suffix reuse.
//
// Building the graph runs the DP bottom-up phase (Eq. 2 / Eq. 7):
//   pi1(s) = combine over child slots of best(connector(s, slot)),
// pruning dangling states on the way (the semi-join reduction of
// Yannakakis), and finishes with the root connector whose best entry is the
// weight of the top-1 solution.

#ifndef ANYK_DP_STAGE_GRAPH_H_
#define ANYK_DP_STAGE_GRAPH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"  // ResultRow, bound by BindStateBatch
#include "dioid/dioid.h"
#include "dioid/lift.h"
#include "query/join_tree.h"
#include "storage/flat_index.h"
#include "storage/group_index.h"
#include "storage/kernels.h"
#include "storage/value.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace anyk {

/// DP state graph for one T-DP instance, specialized to a selective dioid.
template <SelectiveDioid D>
struct StageGraph {
  using V = typename D::Value;
  static constexpr uint32_t kNoState = UINT32_MAX;
  static constexpr uint32_t kNoMember = UINT32_MAX;

  struct Stage {
    uint32_t node_idx = 0;    // join-tree node backing this stage
    int parent_stage = -1;    // serialized index of the parent stage
    uint32_t parent_slot = 0; // which child slot of the parent we occupy
    uint32_t num_slots = 0;   // number of child stages of this stage

    // Flat per-column segment pointers of the node's table (col_segs[c] ==
    // table->ColumnData(c)), cached at build time: the per-answer BindState
    // on the NextInto drain path reads one Value per column, and going
    // through Relation each time costs two extra dependent loads per read.
    std::vector<const Value*> col_segs;

    // --- states (surviving rows) ---
    std::vector<uint32_t> row_of_state;  // original row in the node table
    std::vector<V> weight;               // lifted tuple weight w(s)
    std::vector<V> pi1;                  // optimal completion below s
    // state s, child slot j -> connector id in the child stage
    // (flattened: conn_of_state[s * num_slots + j])
    std::vector<uint32_t> conn_of_state;

    // --- connectors (this stage's states grouped by parent join key) ---
    std::vector<uint32_t> conn_begin;  // connector c spans members
                                       // [conn_begin[c], conn_begin[c+1])
    std::vector<uint32_t> members;     // state ids, grouped by connector
    std::vector<V> member_val;         // weight[s] (+) pi1[s], aligned
    std::vector<uint32_t> conn_best;   // member *position* of the minimum
    // Member position of the *second*-best member (kNoMember for singleton
    // connectors). Precomputed here — shared by every session — so the
    // budget-aware ANYK-PART fast path can push a deviation-from-top in
    // O(1) without initializing any per-session successor structure.
    std::vector<uint32_t> conn_second;
    uint32_t conn_global_base = 0;     // first global connector id

    // --- build-time statistics (planner inputs, src/plan/stats.h) ---
    // Exact number of subtree solutions rooted at each connector: the DP
    //   count(s)    = prod over child slots of conn_count(connector),
    //   conn_count(c) = sum over members s of count(s),
    // piggybacked on the state loop and the CSR scatter — no extra pass.
    // Doubles saturate to +inf on astronomically large outputs, which is
    // all the cost model needs. conn_count[kRootConn] of the root stage is
    // the query's total output size.
    std::vector<double> conn_count;
    uint32_t max_fanout = 0;  // largest connector (members per choice set)

    size_t NumStates() const { return row_of_state.size(); }
    size_t NumConns() const { return conn_begin.size() - 1; }
    uint32_t ConnSize(uint32_t c) const {
      return conn_begin[c + 1] - conn_begin[c];
    }
    const V& ConnBestVal(uint32_t c) const { return member_val[conn_best[c]]; }
  };

  const TDPInstance* instance = nullptr;
  std::vector<Stage> stages;      // serialized preorder; stages[0] is root
  uint32_t total_connectors = 0;  // across all stages
  // Child stages of stage i, by slot: child_stage[i][j].
  std::vector<std::vector<uint32_t>> child_stage;
  // Per stage: parent join key -> local connector id, as a flat
  // open-addressing index whose dense key ids ARE the connector ids (kept
  // after the build; the projection machinery of Section 8.1 uses it to read
  // branch minima).
  std::vector<FlatKeyIndex> conn_of_key;

  bool Empty() const { return stages[0].NumConns() == 0; }

  /// Exact output cardinality of this graph (0 when empty; +inf when the
  /// counting DP saturated).
  double OutputCount() const {
    return Empty() ? 0.0 : stages[0].conn_count[kRootConn];
  }

  /// Weight of the top-1 solution (D::Zero() if the output is empty).
  V TopWeight() const {
    if (Empty()) return D::Zero();
    return stages[0].ConnBestVal(0);
  }

  /// Global connector id of (stage, local connector).
  uint32_t GlobalConn(uint32_t stage, uint32_t conn) const {
    return stages[stage].conn_global_base + conn;
  }

  /// The root connector holds all root-stage states under the empty key.
  static constexpr uint32_t kRootConn = 0;
};

/// Optional per-state weight adjustment: returns an extra dioid value
/// combined into the state's weight, or nullopt to prune the state. Used by
/// min-weight-projection (Section 8.1) to fold the best completion of a
/// pruned branch into the retained states (Theorem 20).
template <SelectiveDioid D>
using StateWeightHook =
    std::function<std::optional<typename D::Value>(uint32_t node_idx,
                                                   uint32_t row)>;

/// Build the stage graph for `inst`, running the bottom-up phase.
///
/// `num_atoms_override` sets the paper's l used for weight lifting (defaults
/// to the instance's atom count; unions of trees pass the original query's).
///
/// `pool` parallelizes the per-stage work (state DP + FlatKeyIndex interning
/// + CSR connector scatter) across sibling subtrees: stages are processed in
/// bottom-up *waves* by height, and all stages of one wave build
/// concurrently — each touches only its own Stage / FlatKeyIndex slot and
/// reads its (already finished) children. A chain degenerates to serial
/// waves; stars and bushy trees fan out. With a pool, `hook` (if any) must
/// be thread-safe; the built graph itself is immutable afterwards either
/// way.
template <SelectiveDioid D>
StageGraph<D> BuildStageGraph(const TDPInstance& inst,
                              size_t num_atoms_override = 0,
                              const StateWeightHook<D>* hook = nullptr,
                              ThreadPool* pool = nullptr,
                              KernelKind kernels = KernelKind::kAuto) {
  using V = typename D::Value;
  const GatherKernels& kx = GetGatherKernels(kernels);
  const DioidKernels<D>& dk = GetDioidKernels<D>(kernels);
  const size_t num_atoms =
      num_atoms_override == 0 ? inst.num_atoms : num_atoms_override;
  const size_t L = inst.nodes.size();

  StageGraph<D> g;
  g.instance = &inst;
  g.stages.resize(L);
  g.child_stage.assign(L, {});

  // Map join-tree node index -> serialized stage index.
  std::vector<uint32_t> stage_of_node(L);
  for (size_t k = 0; k < L; ++k) stage_of_node[inst.order[k]] = k;

  for (size_t k = 0; k < L; ++k) {
    auto& st = g.stages[k];
    st.node_idx = inst.order[k];
    const TDPNode& nd = inst.nodes[st.node_idx];
    st.col_segs.resize(nd.vars.size());
    for (size_t c = 0; c < nd.vars.size(); ++c) {
      st.col_segs[c] = nd.table->NumRows() ? nd.table->ColumnData(c) : nullptr;
    }
    if (nd.parent >= 0) {
      st.parent_stage = static_cast<int>(stage_of_node[nd.parent]);
    }
  }
  for (size_t k = 0; k < L; ++k) {
    if (g.stages[k].parent_stage >= 0) {
      auto& parent = g.stages[g.stages[k].parent_stage];
      g.stages[k].parent_slot = parent.num_slots++;
      g.child_stage[g.stages[k].parent_stage].push_back(
          static_cast<uint32_t>(k));
    }
  }

  // Per-stage key -> connector id index, alive while parents are processed.
  std::vector<FlatKeyIndex> conn_of_key(L);

  // One stage's full build: state DP + pruning, key interning, CSR connector
  // scatter, per-connector minima. Writes only stages[kk] / conn_of_key[kk]
  // and reads its children's finished stages, so all stages of one
  // bottom-up wave can run concurrently.
  auto build_stage = [&](size_t kk) {
    auto& st = g.stages[kk];
    const TDPNode& nd = inst.nodes[st.node_idx];
    const size_t rows = nd.NumRows();
    const size_t pins = nd.NumPins();
    const size_t slots = st.num_slots;

    st.row_of_state.reserve(rows);
    st.weight.reserve(rows);
    st.pi1.reserve(rows);
    st.conn_of_state.reserve(rows * slots);

    // Scratch buffers are per stage invocation (no cross-thread sharing).
    std::vector<uint32_t> row_conns(slots);
    std::vector<double> state_count;  // subtree solutions per surviving state
    state_count.reserve(rows);

    // Pre-fill one row-major key matrix per child slot, column-strided: each
    // parent key column is one sequential read of its contiguous segment
    // (spread kernel) instead of a per-row random At() walk. The DP loop
    // below then probes with a plain span into the matrix.
    std::vector<std::vector<Value>> slot_keys(slots);
    std::vector<size_t> slot_width(slots);
    for (size_t j = 0; j < slots; ++j) {
      const uint32_t cs = g.child_stage[kk][j];
      const TDPNode& cnd = inst.nodes[g.stages[cs].node_idx];
      const size_t width = cnd.parent_key_cols.size();
      slot_width[j] = width;
      slot_keys[j].resize(rows * width);
      for (size_t c = 0; c < width; ++c) {
        kx.spread_to_stride(nd.table->ColumnData(cnd.parent_key_cols[c]),
                            rows, slot_keys[j].data() + c, width);
      }
    }

    for (size_t r = 0; r < rows; ++r) {
      // Resolve one connector per child slot; prune if any child has no
      // matching key (dangling tuple). The solution-count DP rides along:
      // a state's count is the product of its child connectors' counts.
      bool alive = true;
      V pi1 = D::One();
      double cnt = 1.0;
      for (size_t j = 0; j < slots && alive; ++j) {
        const uint32_t cs = g.child_stage[kk][j];
        const int64_t conn = conn_of_key[cs].Find(std::span<const Value>(
            slot_keys[j].data() + r * slot_width[j], slot_width[j]));
        if (conn < 0) {
          alive = false;
        } else {
          row_conns[j] = static_cast<uint32_t>(conn);
          pi1 = D::Combine(pi1, g.stages[cs].ConnBestVal(
                                    static_cast<uint32_t>(conn)));
          cnt *= g.stages[cs].conn_count[static_cast<uint32_t>(conn)];
        }
      }
      if (!alive) continue;

      V w = D::One();
      for (size_t p = 0; p < pins; ++p) {
        w = D::Combine(
            w, LiftWeight<D>(nd.pin_weights[r * pins + p], nd.pinned_atoms[p],
                             num_atoms, nd.pin_rows[r * pins + p]));
      }
      if (hook != nullptr) {
        std::optional<V> extra = (*hook)(st.node_idx, static_cast<uint32_t>(r));
        if (!extra.has_value()) continue;  // hook prunes the state
        w = D::Combine(w, *extra);
      }
      st.row_of_state.push_back(static_cast<uint32_t>(r));
      st.weight.push_back(w);
      st.pi1.push_back(pi1);
      state_count.push_back(cnt);
      for (size_t j = 0; j < slots; ++j) st.conn_of_state.push_back(row_conns[j]);
    }

    // Group surviving states into connectors by the parent join key (root
    // stage: single connector under the empty key). Connector ids are the
    // dense interned-key ids, i.e. first-appearance order; the members are
    // laid out CSR-style in one counting scatter, with no per-group vectors.
    const size_t ns = st.NumStates();
    std::vector<uint32_t> conn_of_state_local(ns);
    if (st.parent_stage < 0) {
      conn_of_key[kk].Init(0, ns > 0 ? 1 : 0);
      if (ns > 0) {
        conn_of_key[kk].Intern({});
        for (size_t s = 0; s < ns; ++s) conn_of_state_local[s] = 0;
      }
    } else {
      // Gather each key column's surviving values straight from its segment
      // (row ids are the surviving rows) into a row-major key matrix, then
      // intern row-wise.
      const size_t width = nd.key_cols.size();
      conn_of_key[kk].Init(width, ns);
      std::vector<Value> key_rows(ns * width);
      for (size_t c = 0; c < width; ++c) {
        kx.gather_to_stride(nd.table->ColumnData(nd.key_cols[c]),
                            st.row_of_state.data(), ns, key_rows.data() + c,
                            width);
      }
      for (size_t s = 0; s < ns; ++s) {
        conn_of_state_local[s] = conn_of_key[kk].Intern(
            std::span<const Value>(key_rows.data() + s * width, width));
      }
    }

    const size_t conns = conn_of_key[kk].NumKeys();
    st.conn_begin.assign(conns + 1, 0);
    for (size_t s = 0; s < ns; ++s) ++st.conn_begin[conn_of_state_local[s] + 1];
    for (size_t c = 0; c < conns; ++c) st.conn_begin[c + 1] += st.conn_begin[c];
    st.members.resize(ns);
    st.member_val.resize(ns, D::Zero());
    // member_val is weight ⊗ pi1 per state; batch the ⊗ over the two flat
    // arrays (dioid kernel) before the scatter permutes it into CSR order.
    std::vector<V> comb(ns);
    dk.combine(st.weight.data(), st.pi1.data(), ns, comb.data());
    std::vector<uint32_t> cursor(st.conn_begin.begin(), st.conn_begin.end() - 1);
    st.conn_count.assign(conns, 0.0);
    for (size_t s = 0; s < ns; ++s) {
      const uint32_t pos = cursor[conn_of_state_local[s]]++;
      st.members[pos] = static_cast<uint32_t>(s);
      st.member_val[pos] = comb[s];
      st.conn_count[conn_of_state_local[s]] += state_count[s];
    }
    st.conn_best.resize(conns);
    st.conn_second.resize(conns);
    for (size_t c = 0; c < conns; ++c) {
      st.max_fanout = std::max(st.max_fanout, st.ConnSize(static_cast<uint32_t>(c)));
      uint32_t best_pos = st.conn_begin[c];
      uint32_t second_pos = StageGraph<D>::kNoMember;
      for (uint32_t p = best_pos + 1; p < st.conn_begin[c + 1]; ++p) {
        if (D::Less(st.member_val[p], st.member_val[best_pos])) {
          second_pos = best_pos;
          best_pos = p;
        } else if (second_pos == StageGraph<D>::kNoMember ||
                   D::Less(st.member_val[p], st.member_val[second_pos])) {
          second_pos = p;
        }
      }
      st.conn_best[c] = best_pos;
      st.conn_second[c] = second_pos;
    }
  };

  // Bottom-up waves: height h = longest downward path below the stage. All
  // stages of a wave only depend on strictly smaller heights, so each wave
  // is an independent ParallelFor (a no-op fan-out without a pool —
  // reverse-preorder already guarantees children come first serially).
  std::vector<uint32_t> height(L, 0);
  uint32_t max_height = 0;
  for (size_t kk = L; kk-- > 0;) {
    for (uint32_t cs : g.child_stage[kk]) {
      height[kk] = std::max(height[kk], height[cs] + 1);
    }
    max_height = std::max(max_height, height[kk]);
  }
  std::vector<std::vector<size_t>> waves(max_height + 1);
  for (size_t kk = 0; kk < L; ++kk) waves[height[kk]].push_back(kk);
  for (const std::vector<size_t>& wave : waves) {
    ParallelFor(pool, wave.size(),
                [&](size_t i) { build_stage(wave[i]); });
  }

  // Assign global connector ids and keep the key maps.
  uint32_t base = 0;
  for (auto& st : g.stages) {
    st.conn_global_base = base;
    base += static_cast<uint32_t>(st.NumConns());
  }
  g.total_connectors = base;
  g.conn_of_key = std::move(conn_of_key);
  return g;
}

/// Write the variable bindings of `state` in `stage` into `assignment`
/// (indexed by variable id) and the original rows into `witness` (indexed by
/// atom; pass nullptr to skip).
template <SelectiveDioid D>
void BindState(const StageGraph<D>& g, uint32_t stage, uint32_t state,
               std::vector<Value>* assignment,
               std::vector<uint32_t>* witness) {
  const auto& st = g.stages[stage];
  const TDPNode& nd = g.instance->nodes[st.node_idx];
  const uint32_t row = st.row_of_state[state];
  const Value* const* segs = st.col_segs.data();
  const uint32_t* vars = nd.vars.data();
  Value* out = assignment->data();
  for (size_t c = 0; c < nd.vars.size(); ++c) {
    out[vars[c]] = segs[c][row];
  }
  if (witness != nullptr) {
    const size_t pins = nd.NumPins();
    for (size_t p = 0; p < pins; ++p) {
      (*witness)[nd.pinned_atoms[p]] = nd.pin_rows[row * pins + p];
    }
  }
}

/// Batched BindState: bind `count` answers' states of one stage in a single
/// stage-wise pass. `states_base[i * stride + offset]` is answer i's state
/// id at this stage (the enumerators stash answers as L-strided state
/// matrices). Per variable column the values are gathered from the column
/// segment into `val_scratch` (one sequential write, one random read — the
/// bind-kernel layer's core move) and then scattered into each answer's
/// ResultRow; witnesses go the same way through the strided pin_rows gather.
///
/// Scratch is caller-owned so the enumerators can keep it in their arena
/// (zero-global-alloc enumeration): `id_scratch` holds at least 2 * count
/// uint32s, `val_scratch` at least count Values.
template <SelectiveDioid D>
void BindStateBatch(const StageGraph<D>& g, uint32_t stage,
                    const uint32_t* states_base, size_t stride, size_t offset,
                    size_t count, ResultRow<D>* rows, bool with_witness,
                    const GatherKernels& kx, uint32_t* id_scratch,
                    Value* val_scratch) {
  if (count == 0) return;
  const auto& st = g.stages[stage];
  const TDPNode& nd = g.instance->nodes[st.node_idx];
  uint32_t* state_ids = id_scratch;
  uint32_t* row_ids = id_scratch + count;
  kx.copy_strided_u32(states_base, stride, offset, count, state_ids);
  kx.gather_u32(st.row_of_state.data(), state_ids, count, row_ids);
  for (size_t c = 0; c < nd.vars.size(); ++c) {
    const uint32_t var = nd.vars[c];
    kx.gather(nd.table->ColumnData(c), row_ids, count, val_scratch);
    for (size_t b = 0; b < count; ++b) {
      rows[b].assignment[var] = val_scratch[b];
    }
  }
  if (with_witness) {
    const size_t pins = nd.NumPins();
    for (size_t p = 0; p < pins; ++p) {
      const uint32_t atom = nd.pinned_atoms[p];
      // state_ids is dead past this point; reuse it as the witness scratch.
      kx.gather_u32_strided(nd.pin_rows.data(), pins, p, row_ids, count,
                            state_ids);
      for (size_t b = 0; b < count; ++b) {
        rows[b].witness[atom] = state_ids[b];
      }
    }
  }
}

}  // namespace anyk

#endif  // ANYK_DP_STAGE_GRAPH_H_
