// Layered join trees for free-connex projections (paper Section 8.1).
//
// For a free-connex acyclic query Q(y), we build a join tree whose *upper
// layer* U consists of nodes over free variables only (original atoms whose
// variables are all free, plus distinct-projection auxiliaries π_{vars∩y}
// for mixed atoms — the paper's R'3 = π_{Y1,Y4}(R3) construction), while the
// original atoms with existential variables hang below. Running intersection
// is verified explicitly; pruning the lower layer and folding its branch
// minima into the U states (Theorem 20) then yields ranked enumeration under
// min-weight-projection semantics with O(n) TTF and O(log k) delay.

#ifndef ANYK_DP_PROJECTION_TREE_H_
#define ANYK_DP_PROJECTION_TREE_H_

#include <cstdint>
#include <vector>

#include "query/cq.h"
#include "query/join_tree.h"
#include "storage/database.h"

namespace anyk {

struct LayeredInstance {
  // The full layered tree: U nodes first, then the lower layer.
  TDPInstance full;
  // Indices (into full.nodes) of the U layer; u_nodes[0] is the root.
  std::vector<uint32_t> u_nodes;
  // For each U node, the full-layer children that get pruned.
  std::vector<std::vector<uint32_t>> pruned_children;
  // Free variable ids of the query.
  std::vector<uint32_t> free_vars;
};

/// Build the layered instance. CHECK-fails if the query is not free-connex
/// acyclic, or if it needs a join-tree rearrangement outside the supported
/// class (the resulting tree is always verified for running intersection).
LayeredInstance BuildLayeredInstance(const Database& db,
                                     const ConjunctiveQuery& q);

/// Verify the running-intersection property of an instance's tree: for every
/// variable, the nodes containing it form a connected subtree.
bool HasRunningIntersection(const TDPInstance& inst);

}  // namespace anyk

#endif  // ANYK_DP_PROJECTION_TREE_H_
