// The Yannakakis algorithm for acyclic full CQs: full semi-join reduction
// (bottom-up + top-down) followed by dangling-free enumeration, O(n + |out|)
// in data complexity. This is the unranked engine behind the paper's Batch
// baseline; implemented independently of the DP pipeline so the two
// cross-check each other.

#ifndef ANYK_JOIN_YANNAKAKIS_H_
#define ANYK_JOIN_YANNAKAKIS_H_

#include "join/generic_join.h"
#include "query/cq.h"
#include "storage/database.h"

namespace anyk {

/// Full output (witness granularity) of an acyclic CQ. CHECK-fails on cyclic
/// queries.
JoinResultSet YannakakisJoin(const Database& db, const ConjunctiveQuery& q);

}  // namespace anyk

#endif  // ANYK_JOIN_YANNAKAKIS_H_
