// Independent oracle join used by the test suite: straightforward
// tuple-at-a-time backtracking over the atoms with hash indexes on the
// already-bound variables. Deliberately implemented differently from both
// the DP pipeline and GenericJoin so the three can cross-check each other.

#ifndef ANYK_JOIN_BRUTE_FORCE_H_
#define ANYK_JOIN_BRUTE_FORCE_H_

#include "join/generic_join.h"
#include "query/cq.h"
#include "storage/database.h"

namespace anyk {

/// All witnesses of the full CQ (projections ignored), in no particular
/// order.
JoinResultSet BruteForceJoin(const Database& db, const ConjunctiveQuery& q);

}  // namespace anyk

#endif  // ANYK_JOIN_BRUTE_FORCE_H_
