#include "join/generic_join.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/value.h"
#include "util/logging.h"

namespace anyk {

namespace {

// Per-atom access structures over distinct values.
struct AtomIndex {
  uint32_t var[2] = {0, 0};  // distinct variable ids (var[1] unused if unary)
  bool unary = false;

  std::vector<Value> distinct[2];  // sorted distinct values per column
  // adjacency: value in column c -> sorted distinct values in the other one
  std::unordered_map<Value, std::vector<Value>> adj[2];
  // bound tuple -> matching row ids (key has 1 or 2 values)
  std::unordered_map<Key, std::vector<uint32_t>, KeyHash> rows;
};

void SortDedup(std::vector<Value>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

AtomIndex BuildAtomIndex(const Relation& rel,
                         const std::vector<uint32_t>& var_ids) {
  AtomIndex idx;
  // Distinct variables in first-occurrence order; positions of each.
  std::vector<uint32_t> cols_of_var[2];
  size_t num_distinct = 0;
  for (size_t c = 0; c < var_ids.size(); ++c) {
    bool found = false;
    for (size_t d = 0; d < num_distinct; ++d) {
      if (idx.var[d] == var_ids[c]) {
        cols_of_var[d].push_back(static_cast<uint32_t>(c));
        found = true;
      }
    }
    if (!found) {
      ANYK_CHECK_LT(num_distinct, 2u)
          << "GenericJoin supports atoms with at most two distinct variables";
      idx.var[num_distinct] = var_ids[c];
      cols_of_var[num_distinct].push_back(static_cast<uint32_t>(c));
      ++num_distinct;
    }
  }
  idx.unary = (num_distinct == 1);

  for (size_t r = 0; r < rel.NumRows(); ++r) {
    // Repeated-variable columns must agree.
    Value v[2];
    bool ok = true;
    for (size_t d = 0; d < num_distinct; ++d) {
      v[d] = rel.At(r, cols_of_var[d][0]);
      for (uint32_t c : cols_of_var[d]) {
        if (rel.At(r, c) != v[d]) ok = false;
      }
    }
    if (!ok) continue;
    if (idx.unary) {
      idx.distinct[0].push_back(v[0]);
      idx.rows[Key{v[0]}].push_back(static_cast<uint32_t>(r));
    } else {
      idx.distinct[0].push_back(v[0]);
      idx.distinct[1].push_back(v[1]);
      idx.adj[0][v[0]].push_back(v[1]);
      idx.adj[1][v[1]].push_back(v[0]);
      idx.rows[Key{v[0], v[1]}].push_back(static_cast<uint32_t>(r));
    }
  }
  SortDedup(&idx.distinct[0]);
  SortDedup(&idx.distinct[1]);
  for (int c = 0; c < 2; ++c) {
    for (auto& [_, nbrs] : idx.adj[c]) SortDedup(&nbrs);
  }
  return idx;
}

struct Joiner {
  const Database& db;
  const ConjunctiveQuery& q;
  std::vector<uint32_t> var_order;
  std::vector<AtomIndex> atoms;
  std::vector<Value> binding;
  std::vector<bool> bound;
  JoinResultSet out;

  static const std::vector<Value> kEmpty;

  // Constraint list for variable v in `atom` under the current binding;
  // nullptr means the atom does not constrain v beyond its distinct values.
  const std::vector<Value>* Constraint(const AtomIndex& a, uint32_t v) const {
    if (a.unary) return &a.distinct[0];
    const int c = (a.var[0] == v) ? 0 : 1;
    const uint32_t other = a.var[1 - c];
    if (bound[other]) {
      auto it = a.adj[1 - c].find(binding[other]);
      return it == a.adj[1 - c].end() ? &kEmpty : &it->second;
    }
    return &a.distinct[c];
  }

  void Recurse(size_t depth) {
    if (depth == var_order.size()) {
      Emit();
      return;
    }
    const uint32_t v = var_order[depth];
    // Gather constraint lists of atoms containing v.
    std::vector<const std::vector<Value>*> lists;
    for (const auto& a : atoms) {
      if (a.var[0] == v || (!a.unary && a.var[1] == v)) {
        lists.push_back(Constraint(a, v));
      }
    }
    ANYK_CHECK(!lists.empty()) << "variable " << v << " not covered";
    // Iterate the smallest list, probing the others (worst-case optimal).
    size_t smallest = 0;
    for (size_t i = 1; i < lists.size(); ++i) {
      if (lists[i]->size() < lists[smallest]->size()) smallest = i;
    }
    bound[v] = true;
    for (Value val : *lists[smallest]) {
      bool ok = true;
      for (size_t i = 0; i < lists.size() && ok; ++i) {
        if (i == smallest) continue;
        ok = std::binary_search(lists[i]->begin(), lists[i]->end(), val);
      }
      if (!ok) continue;
      binding[v] = val;
      Recurse(depth + 1);
    }
    bound[v] = false;
  }

  // All variables bound: emit every witness combination (cross product of
  // the matching row lists per atom — handles duplicate input rows).
  void Emit() {
    const size_t na = atoms.size();
    std::vector<const std::vector<uint32_t>*> rows(na);
    for (size_t i = 0; i < na; ++i) {
      Key key;
      key.push_back(binding[atoms[i].var[0]]);
      if (!atoms[i].unary) key.push_back(binding[atoms[i].var[1]]);
      auto it = atoms[i].rows.find(key);
      if (it == atoms[i].rows.end()) return;  // defensive; cannot happen
      rows[i] = &it->second;
    }
    std::vector<size_t> cursor(na, 0);
    while (true) {
      for (size_t i = 0; i < na; ++i) {
        out.witnesses.push_back((*rows[i])[cursor[i]]);
      }
      size_t i = na;
      while (i-- > 0) {
        if (++cursor[i] < rows[i]->size()) break;
        cursor[i] = 0;
        if (i == 0) return;
      }
    }
  }
};

const std::vector<Value> Joiner::kEmpty;

}  // namespace

JoinResultSet GenericJoin(const Database& db, const ConjunctiveQuery& q,
                          std::vector<uint32_t> var_order) {
  Joiner joiner{db, q, {}, {}, {}, {}, {}};
  if (var_order.empty()) {
    for (uint32_t v = 0; v < q.NumVars(); ++v) joiner.var_order.push_back(v);
  } else {
    ANYK_CHECK_EQ(var_order.size(), q.NumVars());
    joiner.var_order = std::move(var_order);
  }
  joiner.atoms.reserve(q.NumAtoms());
  for (size_t i = 0; i < q.NumAtoms(); ++i) {
    joiner.atoms.push_back(
        BuildAtomIndex(db.Get(q.atom(i).relation), q.AtomVarIds(i)));
  }
  joiner.binding.assign(q.NumVars(), 0);
  joiner.bound.assign(q.NumVars(), false);
  joiner.out.num_atoms = q.NumAtoms();
  joiner.Recurse(0);
  return joiner.out;
}

}  // namespace anyk
