#include "join/reference_executor.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/group_index.h"
#include "util/logging.h"

namespace anyk {

BatchOutput ReferenceHashJoin(const Database& db, const ConjunctiveQuery& q,
                              bool sort) {
  const size_t nv = q.NumVars();
  BatchOutput out;
  out.num_vars = nv;

  // Intermediate: flat assignments over all query variables (unbound = 0)
  // plus a bound-mask per variable shared by all rows of the stage.
  std::vector<Value> inter;        // rows * nv
  std::vector<double> weights;
  std::vector<bool> bound(nv, false);
  size_t rows = 0;

  for (size_t a = 0; a < q.NumAtoms(); ++a) {
    const Relation& rel = db.Get(q.atom(a).relation);
    const auto& vars = q.AtomVarIds(a);
    // Join columns: atom columns whose variable is already bound.
    std::vector<uint32_t> join_cols;
    for (size_t c = 0; c < vars.size(); ++c) {
      if (bound[vars[c]]) join_cols.push_back(static_cast<uint32_t>(c));
    }
    GroupIndex idx(rel, std::span<const uint32_t>(join_cols));

    std::vector<Value> next;
    std::vector<double> next_weights;

    auto extend = [&](const Value* base, double base_w) {
      Key key;
      key.reserve(join_cols.size());
      for (uint32_t c : join_cols) key.push_back(base[vars[c]]);
      for (uint32_t r : idx.Lookup(key)) {
        // Verify within-atom repeated variables.
        bool ok = true;
        for (size_t c = 0; c < vars.size() && ok; ++c) {
          for (size_t d = c + 1; d < vars.size() && ok; ++d) {
            if (vars[c] == vars[d] && rel.At(r, c) != rel.At(r, d)) ok = false;
          }
        }
        if (!ok) continue;
        const size_t at = next.size();
        next.insert(next.end(), base, base + nv);
        for (size_t c = 0; c < vars.size(); ++c) {
          next[at + vars[c]] = rel.At(r, c);
        }
        next_weights.push_back(base_w + rel.Weight(r));
      }
    };

    if (a == 0) {
      std::vector<Value> empty(nv, 0);
      extend(empty.data(), 0.0);
    } else {
      for (size_t i = 0; i < rows; ++i) {
        extend(inter.data() + i * nv, weights[i]);
      }
    }
    inter = std::move(next);
    weights = std::move(next_weights);
    rows = weights.size();
    for (uint32_t v : vars) bound[v] = true;
    if (rows == 0) break;
  }

  out.assignments = std::move(inter);
  out.weights = std::move(weights);
  out.order.resize(out.weights.size());
  std::iota(out.order.begin(), out.order.end(), 0u);
  if (sort) {
    std::sort(out.order.begin(), out.order.end(), [&](uint32_t x, uint32_t y) {
      return out.weights[x] < out.weights[y];
    });
  }
  return out;
}

}  // namespace anyk
