#include "join/brute_force.h"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "storage/group_index.h"
#include "util/logging.h"

namespace anyk {

namespace {

// Role of each column of an atom during backtracking.
enum class ColRole {
  kKeyed,   // variable bound by an earlier atom: part of the lookup key
  kFresh,   // first occurrence overall: binds the variable
  kRepeat,  // repeats a kFresh column of the same atom: verified per row
};

struct AtomPlan {
  const Relation* rel = nullptr;
  std::vector<ColRole> roles;
  std::vector<uint32_t> key_cols;  // columns with role kKeyed
  GroupIndex index;                // grouped by key_cols
};

}  // namespace

JoinResultSet BruteForceJoin(const Database& db, const ConjunctiveQuery& q) {
  const size_t na = q.NumAtoms();
  std::vector<AtomPlan> plan(na);
  std::vector<bool> bound(q.NumVars(), false);
  for (size_t i = 0; i < na; ++i) {
    plan[i].rel = &db.Get(q.atom(i).relation);
    const auto& vars = q.AtomVarIds(i);
    ANYK_CHECK_EQ(plan[i].rel->arity(), vars.size());
    std::vector<bool> seen_here(q.NumVars(), false);
    for (size_t c = 0; c < vars.size(); ++c) {
      if (bound[vars[c]]) {
        plan[i].roles.push_back(ColRole::kKeyed);
        plan[i].key_cols.push_back(static_cast<uint32_t>(c));
      } else if (seen_here[vars[c]]) {
        plan[i].roles.push_back(ColRole::kRepeat);
      } else {
        plan[i].roles.push_back(ColRole::kFresh);
        seen_here[vars[c]] = true;
      }
    }
    for (uint32_t v : vars) bound[v] = true;
    plan[i].index.Build(*plan[i].rel,
                        std::span<const uint32_t>(plan[i].key_cols));
  }

  JoinResultSet out;
  out.num_atoms = na;
  std::vector<Value> binding(q.NumVars(), 0);
  std::vector<uint32_t> witness(na, 0);

  auto recurse = [&](auto&& self, size_t i) -> void {
    if (i == na) {
      out.witnesses.insert(out.witnesses.end(), witness.begin(),
                           witness.end());
      return;
    }
    const AtomPlan& ap = plan[i];
    const auto& vars = q.AtomVarIds(i);
    Key key;
    key.reserve(ap.key_cols.size());
    for (uint32_t c : ap.key_cols) key.push_back(binding[vars[c]]);
    for (uint32_t r : ap.index.Lookup(key)) {
      bool ok = true;
      for (size_t c = 0; c < vars.size(); ++c) {
        const Value v = ap.rel->At(r, c);
        switch (ap.roles[c]) {
          case ColRole::kKeyed:
            break;  // consistent by key construction
          case ColRole::kFresh:
            binding[vars[c]] = v;
            break;
          case ColRole::kRepeat:
            if (binding[vars[c]] != v) ok = false;
            break;
        }
        if (!ok) break;
      }
      if (ok) {
        witness[i] = r;
        self(self, i + 1);
      }
    }
  };
  recurse(recurse, 0);
  return out;
}

}  // namespace anyk
