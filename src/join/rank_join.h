// HRJN-style Rank-Join baseline (paper Section 9.1.3).
//
// Classic top-k join operator in the spirit of Ilyas et al.'s Rank-Join /
// HRJN: inputs are consumed in weight order, every new tuple is joined
// against all previously seen tuples of the other input, and joined results
// wait in an output buffer until their weight is no larger than the
// corridor threshold T = max(wL_top + wR_first, wL_first + wR_top). Multiway
// path queries are evaluated as a left-deep cascade of binary operators.
//
// The paper shows (database I2, Fig. 19) that this class of algorithms can
// consume Θ(n^{l-1}) input combinations before emitting the top-1 result,
// whereas the any-k algorithms need O(n * l).

#ifndef ANYK_JOIN_RANK_JOIN_H_
#define ANYK_JOIN_RANK_JOIN_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "query/cq.h"
#include "storage/database.h"
#include "storage/value.h"

namespace anyk {

/// A (partial) join result flowing through the operator tree.
struct RankJoinTuple {
  double weight = 0;
  std::vector<Value> values;  // concatenated variable bindings, path order
};

struct RankJoinStats {
  size_t input_tuples_pulled = 0;   // base-relation accesses
  size_t join_combinations = 0;     // probe pairs considered
  size_t buffered_peak = 0;         // max output-buffer size over all ops
};

/// Top-k evaluator for *path* CQs under sum-of-weights ranking.
class RankJoin {
 public:
  /// `q` must be a path query QPl: R1(x1,x2), ..., Rl(xl, xl+1).
  RankJoin(const Database& db, const ConjunctiveQuery& q);
  ~RankJoin();

  /// Next result in increasing weight order; values are the bindings of
  /// x1..x_{l+1}.
  std::optional<RankJoinTuple> Next();

  const RankJoinStats& stats() const;

 private:
  class Operator;
  class Scan;
  class Hrjn;
  std::unique_ptr<Operator> root_;
  std::shared_ptr<RankJoinStats> stats_;
};

}  // namespace anyk

#endif  // ANYK_JOIN_RANK_JOIN_H_
