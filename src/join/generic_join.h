// Worst-case optimal multiway join in the NPRR / Generic-Join family
// (paper Section 9.1.1 uses NPRR as the batch baseline for cyclic queries).
//
// Attribute-at-a-time backtracking: for the next variable in a global order,
// the candidate values are the intersection of the constraint lists of all
// atoms containing it, iterated from the smallest list (the key to
// worst-case optimality). Supports atoms with one or two distinct variables
// (all of the paper's queries are binary); results are *witnesses* — one row
// id per atom — so duplicate input rows and weights are handled exactly.

#ifndef ANYK_JOIN_GENERIC_JOIN_H_
#define ANYK_JOIN_GENERIC_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "query/cq.h"
#include "storage/database.h"

namespace anyk {

/// Flat set of join results at witness granularity.
struct JoinResultSet {
  size_t num_atoms = 0;
  std::vector<uint32_t> witnesses;  // size() * num_atoms row ids

  size_t size() const { return num_atoms == 0 ? 0 : witnesses.size() / num_atoms; }
  const uint32_t* witness(size_t i) const {
    return witnesses.data() + i * num_atoms;
  }
};

/// Evaluate the full CQ `q` (ignoring any projection). `var_order` optionally
/// fixes the variable elimination order (default: variable id order).
JoinResultSet GenericJoin(const Database& db, const ConjunctiveQuery& q,
                          std::vector<uint32_t> var_order = {});

}  // namespace anyk

#endif  // ANYK_JOIN_GENERIC_JOIN_H_
