#include "join/yannakakis.h"

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "query/gyo.h"
#include "query/join_tree.h"
#include "storage/group_index.h"
#include "util/logging.h"

namespace anyk {

namespace {

// Key of `row` of `node` on its join columns with the parent.
Key ParentKey(const TDPNode& node, size_t row) {
  Key key;
  key.reserve(node.key_cols.size());
  for (uint32_t c : node.key_cols) key.push_back(node.table->At(row, c));
  return key;
}

}  // namespace

JoinResultSet YannakakisJoin(const Database& db, const ConjunctiveQuery& q) {
  // Join tree via GYO; reuse the instance machinery for schemas/keys but do
  // classic row-set semi-joins rather than DP.
  TDPInstance inst = BuildAcyclicInstance(db, q);
  const size_t L = inst.nodes.size();

  std::vector<std::vector<char>> alive(L);
  for (size_t i = 0; i < L; ++i) alive[i].assign(inst.nodes[i].NumRows(), 1);

  // Bottom-up semi-joins: a parent row survives only if every child has a
  // surviving row with a matching key.
  for (size_t kk = L; kk-- > 0;) {
    const uint32_t u = inst.order[kk];
    const TDPNode& node = inst.nodes[u];
    if (node.parent < 0) continue;
    std::unordered_set<Key, KeyHash> keys;
    for (size_t r = 0; r < node.NumRows(); ++r) {
      if (alive[u][r]) keys.insert(ParentKey(node, r));
    }
    const TDPNode& parent = inst.nodes[node.parent];
    auto& palive = alive[node.parent];
    for (size_t r = 0; r < parent.NumRows(); ++r) {
      if (!palive[r]) continue;
      Key key;
      key.reserve(node.parent_key_cols.size());
      for (uint32_t c : node.parent_key_cols) {
        key.push_back(parent.table->At(r, c));
      }
      if (keys.find(key) == keys.end()) palive[r] = 0;
    }
  }

  // Top-down semi-joins: a child row survives only if some surviving parent
  // row matches.
  for (size_t kk = 0; kk < L; ++kk) {
    const uint32_t u = inst.order[kk];
    const TDPNode& node = inst.nodes[u];
    if (node.parent < 0) continue;
    const TDPNode& parent = inst.nodes[node.parent];
    std::unordered_set<Key, KeyHash> keys;
    for (size_t r = 0; r < parent.NumRows(); ++r) {
      if (!alive[node.parent][r]) continue;
      Key key;
      key.reserve(node.parent_key_cols.size());
      for (uint32_t c : node.parent_key_cols) {
        key.push_back(parent.table->At(r, c));
      }
      keys.insert(std::move(key));
    }
    for (size_t r = 0; r < node.NumRows(); ++r) {
      if (alive[u][r] && keys.find(ParentKey(node, r)) == keys.end()) {
        alive[u][r] = 0;
      }
    }
  }

  // Build per-node surviving-row indexes grouped by parent key.
  std::vector<Relation> reduced(L);
  std::vector<std::vector<uint32_t>> reduced_rows(L);  // -> node row ids
  std::vector<GroupIndex> index(L);
  for (size_t u = 0; u < L; ++u) {
    const TDPNode& node = inst.nodes[u];
    reduced[u] = Relation("red", node.vars.size());
    for (size_t r = 0; r < node.NumRows(); ++r) {
      if (!alive[u][r]) continue;
      reduced[u].AddRow(node.table->Row(r), 0.0);
      reduced_rows[u].push_back(static_cast<uint32_t>(r));
    }
    index[u].Build(reduced[u], std::span<const uint32_t>(node.key_cols));
  }

  // Enumerate by backtracking in preorder; after full reduction no branch
  // dead-ends, so this is O(|out|) modulo constants.
  JoinResultSet out;
  out.num_atoms = q.NumAtoms();
  std::vector<uint32_t> chosen(L, 0);  // reduced-row id per serialized stage

  auto recurse = [&](auto&& self, size_t kk) -> void {
    if (kk == L) {
      std::vector<uint32_t> witness(q.NumAtoms(), 0);
      for (size_t j = 0; j < L; ++j) {
        const uint32_t u = inst.order[j];
        const TDPNode& node = inst.nodes[u];
        const uint32_t row = reduced_rows[u][chosen[j]];
        const size_t pins = node.NumPins();
        for (size_t p = 0; p < pins; ++p) {
          witness[node.pinned_atoms[p]] = node.pin_rows[row * pins + p];
        }
      }
      out.witnesses.insert(out.witnesses.end(), witness.begin(),
                           witness.end());
      return;
    }
    const uint32_t u = inst.order[kk];
    const TDPNode& node = inst.nodes[u];
    if (node.parent < 0) {
      for (size_t r = 0; r < reduced[u].NumRows(); ++r) {
        chosen[kk] = static_cast<uint32_t>(r);
        self(self, kk + 1);
      }
      return;
    }
    // Parent's serialized position: find it (L is tiny).
    size_t pk = 0;
    while (inst.order[pk] != static_cast<uint32_t>(node.parent)) ++pk;
    const TDPNode& parent = inst.nodes[node.parent];
    const uint32_t prow = reduced_rows[node.parent][chosen[pk]];
    Key key;
    key.reserve(node.parent_key_cols.size());
    for (uint32_t c : node.parent_key_cols) {
      key.push_back(parent.table->At(prow, c));
    }
    for (uint32_t r : index[u].Lookup(key)) {
      chosen[kk] = r;
      self(self, kk + 1);
    }
  };
  recurse(recurse, 0);
  return out;
}

}  // namespace anyk
