#include "join/rank_join.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/relation.h"
#include "util/binary_heap.h"
#include "util/logging.h"

namespace anyk {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

class RankJoin::Operator {
 public:
  virtual ~Operator() = default;
  virtual std::optional<RankJoinTuple> Next() = 0;
};

/// Sorted access to a base relation (ascending tuple weight).
class RankJoin::Scan : public RankJoin::Operator {
 public:
  Scan(const Relation& rel, std::shared_ptr<RankJoinStats> stats)
      : rel_(rel), stats_(std::move(stats)) {
    order_.resize(rel.NumRows());
    std::iota(order_.begin(), order_.end(), 0u);
    std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
      return rel.Weight(a) < rel.Weight(b);
    });
  }

  std::optional<RankJoinTuple> Next() override {
    if (pos_ >= order_.size()) return std::nullopt;
    const uint32_t r = order_[pos_++];
    ++stats_->input_tuples_pulled;
    RankJoinTuple t;
    t.weight = rel_.Weight(r);
    t.values.resize(rel_.arity());
    rel_.Row(r).CopyInto(t.values.data());
    return t;
  }

 private:
  const Relation& rel_;
  std::shared_ptr<RankJoinStats> stats_;
  std::vector<uint32_t> order_;
  size_t pos_ = 0;
};

/// Binary HRJN: joins the last value of the left input with the first value
/// of the right input; emits in ascending total weight.
class RankJoin::Hrjn : public RankJoin::Operator {
 public:
  Hrjn(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
       std::shared_ptr<RankJoinStats> stats)
      : left_(std::move(left)),
        right_(std::move(right)),
        stats_(std::move(stats)) {}

  std::optional<RankJoinTuple> Next() override {
    while (true) {
      const double bound = FutureBound();
      if (!buffer_.Empty() && buffer_.Min().weight <= bound) {
        return buffer_.PopMin();
      }
      if (left_done_ && right_done_) {
        if (!buffer_.Empty()) return buffer_.PopMin();
        return std::nullopt;
      }
      Pull();
    }
  }

 private:
  struct ByWeight {
    bool operator()(const RankJoinTuple& a, const RankJoinTuple& b) const {
      return a.weight < b.weight;
    }
  };

  // Lower bound on the weight of any result not yet in the buffer: it must
  // involve a not-yet-pulled tuple on at least one side.
  double FutureBound() const {
    const double future_l = left_done_ ? kInf : last_l_;
    const double future_r = right_done_ ? kInf : last_r_;
    const double any_l = std::min(first_l_, future_l);
    const double any_r = std::min(first_r_, future_r);
    return std::min(future_l + any_r, any_l + future_r);
  }

  void Pull() {
    const bool from_left =
        right_done_ || (!left_done_ && pull_left_next_);
    pull_left_next_ = !pull_left_next_;
    if (from_left) {
      auto t = left_->Next();
      if (!t) {
        left_done_ = true;
        return;
      }
      if (first_l_ == kInf) first_l_ = t->weight;
      last_l_ = t->weight;
      const Value key = t->values.back();
      for (const RankJoinTuple& r : seen_r_[key]) Join(*t, r);
      seen_l_[key].push_back(std::move(*t));
    } else {
      auto t = right_->Next();
      if (!t) {
        right_done_ = true;
        return;
      }
      if (first_r_ == kInf) first_r_ = t->weight;
      last_r_ = t->weight;
      const Value key = t->values.front();
      for (const RankJoinTuple& l : seen_l_[key]) Join(l, *t);
      seen_r_[key].push_back(std::move(*t));
    }
  }

  void Join(const RankJoinTuple& l, const RankJoinTuple& r) {
    ++stats_->join_combinations;
    RankJoinTuple out;
    out.weight = l.weight + r.weight;
    out.values = l.values;
    out.values.insert(out.values.end(), r.values.begin() + 1, r.values.end());
    buffer_.Push(std::move(out));
    stats_->buffered_peak = std::max(stats_->buffered_peak, buffer_.Size());
  }

  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  std::shared_ptr<RankJoinStats> stats_;
  std::unordered_map<Value, std::vector<RankJoinTuple>> seen_l_, seen_r_;
  BinaryHeap<RankJoinTuple, ByWeight> buffer_;
  bool left_done_ = false, right_done_ = false;
  bool pull_left_next_ = true;
  double first_l_ = kInf, first_r_ = kInf;
  double last_l_ = -kInf, last_r_ = -kInf;
};

RankJoin::RankJoin(const Database& db, const ConjunctiveQuery& q)
    : stats_(std::make_shared<RankJoinStats>()) {
  const size_t l = q.NumAtoms();
  ANYK_CHECK_GE(l, 1u);
  for (size_t i = 0; i < l; ++i) {
    ANYK_CHECK_EQ(q.AtomVarIds(i).size(), 2u) << "RankJoin needs binary atoms";
    if (i + 1 < l) {
      ANYK_CHECK_EQ(q.AtomVarIds(i)[1], q.AtomVarIds(i + 1)[0])
          << "RankJoin expects a path query";
    }
  }
  root_ = std::make_unique<Scan>(db.Get(q.atom(0).relation), stats_);
  for (size_t i = 1; i < l; ++i) {
    root_ = std::make_unique<Hrjn>(
        std::move(root_),
        std::make_unique<Scan>(db.Get(q.atom(i).relation), stats_), stats_);
  }
}

RankJoin::~RankJoin() = default;

std::optional<RankJoinTuple> RankJoin::Next() { return root_->Next(); }

const RankJoinStats& RankJoin::stats() const { return *stats_; }

}  // namespace anyk
