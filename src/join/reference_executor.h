// Reference batch executor: a deliberately conventional left-deep
// tuple-at-a-time hash-join pipeline with full intermediate materialization,
// followed by a sort on the result weight.
//
// This stands in for the PostgreSQL comparison of the paper's Fig. 14 (no
// RDBMS is available offline): it plays the role of "a competent generic
// executor evaluating ORDER BY <sum of weights> LIMIT k the batch way", so
// that our Batch implementation can be validated as a fair baseline.

#ifndef ANYK_JOIN_REFERENCE_EXECUTOR_H_
#define ANYK_JOIN_REFERENCE_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "query/cq.h"
#include "storage/database.h"
#include "storage/value.h"

namespace anyk {

/// Fully materialized, optionally sorted output.
struct BatchOutput {
  size_t num_vars = 0;
  std::vector<Value> assignments;  // size() * num_vars bindings
  std::vector<double> weights;     // summed tuple weights
  std::vector<uint32_t> order;     // permutation (ascending weight if sorted)

  size_t size() const { return weights.size(); }
  const Value* row(size_t i) const {
    return assignments.data() + static_cast<size_t>(order[i]) * num_vars;
  }
  double weight(size_t i) const { return weights[order[i]]; }
};

/// Evaluate the full CQ with binary hash joins in atom order, materializing
/// every intermediate result, then sort by total weight (if `sort`).
BatchOutput ReferenceHashJoin(const Database& db, const ConjunctiveQuery& q,
                              bool sort = true);

}  // namespace anyk

#endif  // ANYK_JOIN_REFERENCE_EXECUTOR_H_
