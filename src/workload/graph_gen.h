// Power-law graph generation: stand-ins for the paper's real datasets
// (Fig. 9). Bitcoin OTC carries trust weights in [-10, 10]; Twitter is
// weighted by the sum of endpoint PageRanks. We match node/edge counts and
// degree skew with a Zipf-endpoint model.

#ifndef ANYK_WORKLOAD_GRAPH_GEN_H_
#define ANYK_WORKLOAD_GRAPH_GEN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/database.h"
#include "util/random.h"

namespace anyk {

struct GraphStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t max_degree = 0;   // max total (in+out) degree
  double avg_degree = 0.0;
};

/// Directed multigraph-free edge list with endpoints drawn from a Zipf(skew)
/// distribution over node ids (self-loops and duplicate edges rejected).
std::vector<std::pair<uint32_t, uint32_t>> MakePowerLawEdges(
    size_t num_nodes, size_t num_edges, double skew, uint64_t seed);

GraphStats ComputeGraphStats(size_t num_nodes,
                             const std::vector<std::pair<uint32_t, uint32_t>>& edges);

/// Bitcoin-OTC stand-in: power-law graph with integer trust weights in
/// [-10, 10] (shifted by +10 so all weights are non-negative, preserving the
/// ranking). Registers relations R1..Rl, all aliases of one edge table.
Database MakeBitcoinStandIn(size_t num_nodes, size_t num_edges, size_t l,
                            uint64_t seed, GraphStats* stats = nullptr);

/// Twitter stand-in: power-law graph, edge weight = (PageRank(u) +
/// PageRank(v)) * 10^6, rounded to integers for exact arithmetic.
Database MakeTwitterStandIn(size_t num_nodes, size_t num_edges, size_t l,
                            uint64_t seed, GraphStats* stats = nullptr);

}  // namespace anyk

#endif  // ANYK_WORKLOAD_GRAPH_GEN_H_
