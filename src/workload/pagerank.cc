#include "workload/pagerank.h"

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace anyk {

std::vector<double> PageRank(
    size_t num_nodes, const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    const PageRankOptions& opts) {
  std::vector<double> rank(num_nodes, num_nodes ? 1.0 / num_nodes : 0.0);
  std::vector<double> next(num_nodes, 0.0);
  std::vector<uint32_t> out_degree(num_nodes, 0);
  for (const auto& [u, _] : edges) ++out_degree[u];

  for (size_t it = 0; it < opts.iterations; ++it) {
    double dangling = 0.0;
    for (size_t v = 0; v < num_nodes; ++v) {
      next[v] = 0.0;
      if (out_degree[v] == 0) dangling += rank[v];
    }
    for (const auto& [u, v] : edges) {
      next[v] += rank[u] / out_degree[u];
    }
    const double base =
        (1.0 - opts.damping) / num_nodes + opts.damping * dangling / num_nodes;
    for (size_t v = 0; v < num_nodes; ++v) {
      next[v] = base + opts.damping * next[v];
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace anyk
