// Synthetic workload generators matching the paper's experimental setup
// (Section 7): uniform data for path/star queries, the worst-case cycle
// construction of NPRR, and Cartesian-product instances for the TTL /
// worst-case analyses (Fig. 6, Theorem 11, Proposition 13).
//
// Weights are uniform *integers* in [0, 10000] (the paper draws uniform
// reals from the same range); integral weights make every sum exact in
// doubles, so enumeration order is bit-reproducible and comparable against
// oracles.

#ifndef ANYK_WORKLOAD_GENERATORS_H_
#define ANYK_WORKLOAD_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "storage/database.h"
#include "util/random.h"

namespace anyk {

struct GeneratorOptions {
  int64_t weight_min = 0;
  int64_t weight_max = 10000;
  // Average join fan-out for uniform data; the domain is n / fanout values
  // (the paper samples from N_{n/10}, i.e. fanout 10).
  double fanout = 10.0;
};

/// Fill `name` with n uniform binary tuples over `domain` values.
void AddUniformBinaryRelation(Database* db, const std::string& name, size_t n,
                              size_t domain, Rng* rng,
                              const GeneratorOptions& opts = {});

/// Database for an l-path query (relations R1..Rl, n tuples each, values
/// uniform over n/fanout so that tuples join with ~fanout partners).
Database MakePathDatabase(size_t n, size_t l, uint64_t seed,
                          const GeneratorOptions& opts = {});

/// Database for an l-star query (same distribution; the star center is the
/// first column of every relation).
Database MakeStarDatabase(size_t n, size_t l, uint64_t seed,
                          const GeneratorOptions& opts = {});

/// Worst-case l-cycle instance [NPRR]: each relation holds n/2 tuples (0, i)
/// and n/2 tuples (i, 0), i in 1..n/2, yielding Θ((n/2)^{l/2}) output.
Database MakeWorstCaseCycleDatabase(size_t n, size_t l, uint64_t seed,
                                    const GeneratorOptions& opts = {});

/// Cartesian product of l relations (single shared join value), uniform
/// weights — the setting of Theorem 11 (Recursive's TTL beats Batch).
Database MakeCartesianDatabase(size_t n, size_t l, uint64_t seed,
                               const GeneratorOptions& opts = {});

/// Fig. 6 / Proposition 13 worst case for Recursive: a Cartesian product
/// where tuple j of relation i weighs j * 10^{l-1-i}, so each of the first n
/// results uses a different tuple of the last relation.
Database MakeRecursiveWorstCaseDatabase(size_t n, size_t l);

}  // namespace anyk

#endif  // ANYK_WORKLOAD_GENERATORS_H_
