#include "workload/paper_instances.h"

#include <cstddef>
#include <cstdint>

#include "util/random.h"

namespace anyk {

Database MakeI1Database(size_t n, uint64_t seed) {
  Rng rng(seed);
  auto w = [&] { return static_cast<double>(rng.Uniform(0, 10000)); };
  Database db;
  Relation& r1 = db.AddRelation("R1", 2);  // R(A, B)
  Relation& r2 = db.AddRelation("R2", 2);  // S(B, C)
  Relation& r3 = db.AddRelation("R3", 2);  // T(C, D)
  Relation& r4 = db.AddRelation("R4", 2);  // W(D, A)
  const Value N = static_cast<Value>(n);
  for (Value i = 1; i <= N; ++i) {
    r1.Add({i, 0}, w());
    r1.Add({0, i}, w());
    r2.Add({0, i}, w());
    r2.Add({i, 0}, w());
    r3.Add({i, 0}, w());
    r3.Add({0, i}, w());
    r4.Add({0, i}, w());
    r4.Add({i, 0}, w());
  }
  return db;
}

Database MakeI2Database(size_t n) {
  Database db;
  Relation& r1 = db.AddRelation("R1", 2);  // R(A, B)
  Relation& r2 = db.AddRelation("R2", 2);  // S(B, C)
  Relation& r3 = db.AddRelation("R3", 2);  // T(C, D')
  const Value N = static_cast<Value>(n);
  // r_0, s_0 are the lightest tuples of R1, R2; t_0 is the heaviest of R3 by
  // a wide margin. Under max-plus ranking the top result is (r_0, s_0, t_0),
  // but all (n-1)^2 heavier R1xR2 combinations join with each other.
  r1.Add({0, 0}, 1.0);
  r2.Add({0, 0}, 10.0);
  r3.Add({0, 0}, 100.0 * static_cast<double>(n));
  for (Value i = 1; i < N; ++i) {
    r1.Add({i, 1}, static_cast<double>(i + 1));
    r2.Add({1, i}, 10.0 * static_cast<double>(i + 1));
    r3.Add({i, 0}, 1.0);
  }
  return db;
}

Database MakeFactorizedBadDatabase(size_t n, uint64_t seed) {
  Rng rng(seed);
  (void)rng;
  Database db;
  Relation& r1 = db.AddRelation("R1", 2);  // R(A, B): (i, 1)
  Relation& r2 = db.AddRelation("R2", 2);  // S(B, C): (1, i)
  const Value N = static_cast<Value>(n);
  for (Value i = 1; i <= N; ++i) {
    r1.Add({i, 1}, static_cast<double>(i));
    r2.Add({1, i}, static_cast<double>(i));
  }
  return db;
}

}  // namespace anyk
