#include "workload/graph_gen.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "workload/pagerank.h"

namespace anyk {

namespace {

// Sample node ids from a Zipf(skew) distribution via the cumulative table.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double skew) : cdf_(n) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  uint32_t Sample(Rng* rng) const {
    const double u = rng->UniformDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint32_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

Database EdgesToDatabase(
    const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    const std::vector<double>& weights, size_t l) {
  Database db;
  for (size_t i = 0; i < l; ++i) {
    Relation& rel = db.AddRelation("R" + std::to_string(i + 1), 2);
    rel.Reserve(edges.size());
    for (size_t e = 0; e < edges.size(); ++e) {
      rel.Add({static_cast<Value>(edges[e].first),
               static_cast<Value>(edges[e].second)},
              weights[e]);
    }
  }
  return db;
}

}  // namespace

std::vector<std::pair<uint32_t, uint32_t>> MakePowerLawEdges(
    size_t num_nodes, size_t num_edges, double skew, uint64_t seed) {
  ANYK_CHECK_GE(num_nodes, 2u);
  Rng rng(seed);
  ZipfSampler sampler(num_nodes, skew);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  size_t attempts = 0;
  const size_t max_attempts = num_edges * 50 + 1000;
  while (edges.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    // Skewed target (popular accounts attract edges), uniform-ish source
    // with mild skew.
    uint32_t u = sampler.Sample(&rng);
    uint32_t v = sampler.Sample(&rng);
    if (rng.Bernoulli(0.5)) u = static_cast<uint32_t>(rng.Below(num_nodes));
    if (u == v) continue;
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    edges.emplace_back(u, v);
  }
  return edges;
}

GraphStats ComputeGraphStats(
    size_t num_nodes,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  GraphStats stats;
  stats.nodes = num_nodes;
  stats.edges = edges.size();
  std::vector<size_t> degree(num_nodes, 0);
  for (const auto& [u, v] : edges) {
    ++degree[u];
    ++degree[v];
  }
  for (size_t d : degree) stats.max_degree = std::max(stats.max_degree, d);
  stats.avg_degree =
      num_nodes == 0 ? 0.0 : static_cast<double>(2 * edges.size()) / num_nodes;
  return stats;
}

Database MakeBitcoinStandIn(size_t num_nodes, size_t num_edges, size_t l,
                            uint64_t seed, GraphStats* stats) {
  auto edges = MakePowerLawEdges(num_nodes, num_edges, 0.9, seed);
  if (stats != nullptr) *stats = ComputeGraphStats(num_nodes, edges);
  Rng rng(seed ^ 0xB17C01F1ULL);
  std::vector<double> weights(edges.size());
  for (double& w : weights) {
    // Trust score in [-10, 10], shifted to [0, 20] (rank-preserving).
    w = static_cast<double>(rng.Uniform(-10, 10) + 10);
  }
  return EdgesToDatabase(edges, weights, l);
}

Database MakeTwitterStandIn(size_t num_nodes, size_t num_edges, size_t l,
                            uint64_t seed, GraphStats* stats) {
  auto edges = MakePowerLawEdges(num_nodes, num_edges, 1.1, seed);
  if (stats != nullptr) *stats = ComputeGraphStats(num_nodes, edges);
  const std::vector<double> pr = PageRank(num_nodes, edges);
  std::vector<double> weights(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    weights[e] =
        std::round((pr[edges[e].first] + pr[edges[e].second]) * 1e6);
  }
  return EdgesToDatabase(edges, weights, l);
}

}  // namespace anyk
