#include "workload/generators.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/logging.h"

namespace anyk {

namespace {
double RandomWeight(Rng* rng, const GeneratorOptions& opts) {
  return static_cast<double>(rng->Uniform(opts.weight_min, opts.weight_max));
}
std::string RelName(size_t i) { return "R" + std::to_string(i + 1); }
}  // namespace

void AddUniformBinaryRelation(Database* db, const std::string& name, size_t n,
                              size_t domain, Rng* rng,
                              const GeneratorOptions& opts) {
  Relation& rel = db->AddRelation(name, 2);
  rel.Reserve(n);
  for (size_t r = 0; r < n; ++r) {
    rel.Add({static_cast<Value>(rng->Below(domain)),
             static_cast<Value>(rng->Below(domain))},
            RandomWeight(rng, opts));
  }
}

Database MakePathDatabase(size_t n, size_t l, uint64_t seed,
                          const GeneratorOptions& opts) {
  Rng rng(seed);
  const size_t domain =
      std::max<size_t>(1, static_cast<size_t>(std::llround(n / opts.fanout)));
  Database db;
  for (size_t i = 0; i < l; ++i) {
    AddUniformBinaryRelation(&db, RelName(i), n, domain, &rng, opts);
  }
  return db;
}

Database MakeStarDatabase(size_t n, size_t l, uint64_t seed,
                          const GeneratorOptions& opts) {
  // Identical distribution; the star shape comes from the query.
  return MakePathDatabase(n, l, seed, opts);
}

Database MakeWorstCaseCycleDatabase(size_t n, size_t l, uint64_t seed,
                                    const GeneratorOptions& opts) {
  Rng rng(seed);
  Database db;
  const size_t half = std::max<size_t>(1, n / 2);
  for (size_t i = 0; i < l; ++i) {
    Relation& rel = db.AddRelation(RelName(i), 2);
    rel.Reserve(2 * half);
    for (size_t v = 1; v <= half; ++v) {
      rel.Add({0, static_cast<Value>(v)}, RandomWeight(&rng, opts));
      rel.Add({static_cast<Value>(v), 0}, RandomWeight(&rng, opts));
    }
  }
  return db;
}

Database MakeCartesianDatabase(size_t n, size_t l, uint64_t seed,
                               const GeneratorOptions& opts) {
  Rng rng(seed);
  Database db;
  for (size_t i = 0; i < l; ++i) {
    Relation& rel = db.AddRelation(RelName(i), 2);
    rel.Reserve(n);
    for (size_t r = 0; r < n; ++r) {
      // First column joins (single value 0), second column is a payload
      // that makes tuples distinct.
      rel.Add({0, static_cast<Value>(r)}, RandomWeight(&rng, opts));
    }
  }
  return db;
}

Database MakeRecursiveWorstCaseDatabase(size_t n, size_t l) {
  // Tuple j of relation i weighs j * (n+1)^{l-1-i}: earlier stages dominate
  // strictly, so the k-th result (k <= n) differs from the (k-1)-st only in
  // the last relation — no suffix ranking is ever reused. Weights stay
  // integral; keep (n+1)^l below 2^53 for exact double arithmetic.
  Database db;
  const double base = static_cast<double>(n + 1);
  ANYK_CHECK_LT(std::pow(base, static_cast<double>(l)), 9.0e15)
      << "weights would lose integer exactness";
  for (size_t i = 0; i < l; ++i) {
    Relation& rel = db.AddRelation(RelName(i), 2);
    rel.Reserve(n);
    const double scale = std::pow(base, static_cast<double>(l - 1 - i));
    for (size_t r = 0; r < n; ++r) {
      rel.Add({0, static_cast<Value>(r)},
              static_cast<double>(r + 1) * scale);
    }
  }
  return db;
}

}  // namespace anyk
