// Concrete database families from the paper's analytical sections:
//   * I1 (Fig. 16): 4-cycle input on which NPRR needs Θ(n^2) for the top-1
//     result while the any-k algorithms need O(n) (Section 9.1.1).
//   * I2 (Fig. 19): 3-path input on which Rank-Join / J* inspect
//     Θ(n^{l-1}) combinations before the top-1 result (Section 9.1.3).
//   * FactorizedBad (Fig. 18): 2-path instance where a factorized
//     representation restructured for the lexicographic order A -> C -> B
//     blows up to Θ(n^2) (Section 9.1.2).

#ifndef ANYK_WORKLOAD_PAPER_INSTANCES_H_
#define ANYK_WORKLOAD_PAPER_INSTANCES_H_

#include <cstddef>
#include <cstdint>

#include "storage/database.h"

namespace anyk {

/// Fig. 16: relations R1..R4 (named for the 4-cycle query QC4).
/// R(A,B) = {(a_i, b_0)} ∪ {(a_0, b_j)}, and rotations; every relation has
/// 2n tuples. Node ids: a_i = i, b_i = 1000000 + i, etc. — distinct ranges
/// per attribute. Weights are uniform integers.
Database MakeI1Database(size_t n, uint64_t seed);

/// Fig. 19: R(A,B), S(B,C), T(C) as binary/unary-coded relations R1,R2,R3
/// for a 3-path query; the top result combines the *lightest* tuples of
/// R1, R2 with the *heaviest* tuple of R3.
Database MakeI2Database(size_t n);

/// Fig. 18: R1 = {(i, 0) : i in 1..n}, R2 = {(0, i) : i in 1..n} for the
/// 2-path query; all n^2 results share the single B value.
Database MakeFactorizedBadDatabase(size_t n, uint64_t seed);

}  // namespace anyk

#endif  // ANYK_WORKLOAD_PAPER_INSTANCES_H_
