// PageRank over an edge list — used to weight the Twitter stand-in graphs
// exactly the way the paper does ("edge weight is set to the sum of the
// PageRanks of both endpoints").

#ifndef ANYK_WORKLOAD_PAGERANK_H_
#define ANYK_WORKLOAD_PAGERANK_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace anyk {

struct PageRankOptions {
  double damping = 0.85;
  std::size_t iterations = 30;
};

/// PageRank scores for nodes 0..num_nodes-1 of the directed edge list.
/// Dangling mass is redistributed uniformly; scores sum to 1.
std::vector<double> PageRank(std::size_t num_nodes,
                             const std::vector<std::pair<uint32_t, uint32_t>>& edges,
                             const PageRankOptions& opts = {});

}  // namespace anyk

#endif  // ANYK_WORKLOAD_PAGERANK_H_
