#include "server/http.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace anyk {
namespace server {
namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 1024 * 1024;

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

void ParseQueryString(const std::string& qs,
                      std::map<std::string, std::string>* params) {
  size_t pos = 0;
  while (pos < qs.size()) {
    size_t amp = qs.find('&', pos);
    if (amp == std::string::npos) amp = qs.size();
    const std::string pair = qs.substr(pos, amp - pos);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        (*params)[UrlDecode(pair)] = "";
      } else {
        (*params)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    pos = amp + 1;
  }
}

}  // namespace

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = HexVal(s[i + 1]), lo = HexVal(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 410: return "Gone";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpConnection::HttpConnection(int fd) : fd_(fd) {}

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

bool HttpConnection::Poll(int timeout_ms) {
  if (buf_pos_ < buf_.size()) return true;
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  return rc > 0;
}

bool HttpConnection::FillBuffer() {
  if (buf_pos_ > 0) {
    buf_.erase(0, buf_pos_);
    buf_pos_ = 0;
  }
  char chunk[4096];
  ssize_t n;
  do {
    n = ::recv(fd_, chunk, sizeof(chunk), 0);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return false;  // EOF or error
  buf_.append(chunk, static_cast<size_t>(n));
  return true;
}

bool HttpConnection::ReadLine(std::string* line) {
  for (;;) {
    const size_t nl = buf_.find('\n', buf_pos_);
    if (nl != std::string::npos) {
      size_t end = nl;
      if (end > buf_pos_ && buf_[end - 1] == '\r') --end;
      line->assign(buf_, buf_pos_, end - buf_pos_);
      buf_pos_ = nl + 1;
      return true;
    }
    if (buf_.size() - buf_pos_ > kMaxHeaderBytes) return false;
    if (!FillBuffer()) return false;
  }
}

bool HttpConnection::ReadExact(size_t n, std::string* out) {
  while (buf_.size() - buf_pos_ < n) {
    if (!FillBuffer()) return false;
  }
  out->assign(buf_, buf_pos_, n);
  buf_pos_ += n;
  return true;
}

std::optional<HttpRequest> HttpConnection::ReadRequest() {
  std::string line;
  if (!ReadLine(&line)) return std::nullopt;
  // Request line: METHOD SP target SP HTTP/1.x
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    HttpResponse bad;
    bad.status = 400;
    bad.body = "ERROR,400,malformed request line\n";
    bad.close_connection = true;
    WriteResponse(bad);
    return std::nullopt;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  req.keep_alive = version != "HTTP/1.0";

  const size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    req.path = UrlDecode(target);
  } else {
    req.path = UrlDecode(target.substr(0, qmark));
    ParseQueryString(target.substr(qmark + 1), &req.params);
  }

  // Headers until the blank line.
  size_t header_bytes = 0;
  for (;;) {
    if (!ReadLine(&line)) return std::nullopt;
    if (line.empty()) break;
    header_bytes += line.size();
    if (header_bytes > kMaxHeaderBytes) return std::nullopt;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    req.headers[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }

  auto conn = req.headers.find("connection");
  if (conn != req.headers.end()) {
    const std::string v = ToLower(conn->second);
    if (v == "close") req.keep_alive = false;
    if (v == "keep-alive") req.keep_alive = true;
  }

  auto clen = req.headers.find("content-length");
  if (clen != req.headers.end()) {
    char* endp = nullptr;
    const unsigned long long n = std::strtoull(clen->second.c_str(), &endp, 10);
    if (endp == clen->second.c_str() || *endp != '\0' || n > kMaxBodyBytes) {
      HttpResponse bad;
      bad.status = 400;
      bad.body = "ERROR,400,bad content-length\n";
      bad.close_connection = true;
      WriteResponse(bad);
      return std::nullopt;
    }
    if (!ReadExact(static_cast<size_t>(n), &req.body)) return std::nullopt;
    // A POST body in form encoding carries parameters too (curl -d idiom).
    auto ctype = req.headers.find("content-type");
    if (ctype == req.headers.end() ||
        ctype->second.find("application/x-www-form-urlencoded") !=
            std::string::npos) {
      ParseQueryString(req.body, &req.params);
    }
  }
  return req;
}

bool HttpConnection::WriteAll(const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w;
    do {
      w = ::send(fd_, data + sent, n - sent, 0);
    } while (w < 0 && errno == EINTR);
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

bool HttpConnection::WriteResponse(const HttpResponse& resp) {
  char head[256];
  const int head_len = std::snprintf(
      head, sizeof(head),
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: %s\r\n\r\n",
      resp.status, StatusReason(resp.status), resp.content_type.c_str(),
      resp.body.size(), resp.close_connection ? "close" : "keep-alive");
  if (head_len <= 0) return false;
  // One send() for header + body: two small writes on a Nagle-enabled
  // socket serialize against the peer's delayed ACK (~40ms per response).
  std::string wire;
  wire.reserve(static_cast<size_t>(head_len) + resp.body.size());
  wire.append(head, static_cast<size_t>(head_len));
  wire.append(resp.body);
  return WriteAll(wire.data(), wire.size());
}

}  // namespace server
}  // namespace anyk
