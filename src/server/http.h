// Minimal HTTP/1.1 support for anykd: a buffered socket reader, request
// parsing (request line, headers, Content-Length bodies, URL decoding of
// query parameters) and response writing. Line-oriented and deliberately
// small — no chunked encoding, no TLS, no pipelining beyond sequential
// keep-alive — because the wire format is a handful of GET/POST endpoints
// streaming text or JSON pages (docs/SERVER.md).
//
// Threading: one HttpConnection is confined to the worker thread that
// services it; nothing here is shared.

#ifndef ANYK_SERVER_HTTP_H_
#define ANYK_SERVER_HTTP_H_

#include <cstddef>
#include <map>
#include <optional>
#include <string>

namespace anyk {
namespace server {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // decoded path without the query string
  std::map<std::string, std::string> params;   // decoded query parameters
  std::map<std::string, std::string> headers;  // keys lowercased
  std::string body;
  bool keep_alive = true;

  /// Decoded query parameter, or `fallback` when absent. Returns by value:
  /// callers routinely pass a temporary fallback and bind the result to a
  /// local, which a reference return would leave dangling.
  std::string Param(const std::string& key, const std::string& fallback) const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
  bool HasParam(const std::string& key) const {
    return params.count(key) > 0;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  bool close_connection = false;
};

/// Percent-decode a URL component ('+' becomes a space). Malformed escapes
/// are passed through verbatim rather than rejected.
std::string UrlDecode(const std::string& s);

/// Reason phrase for the status codes the server uses.
const char* StatusReason(int status);

/// Buffered reader/writer over one accepted connection. Reads are bounded
/// (64 KiB per request line/header block, 1 MiB bodies) so a misbehaving
/// client cannot balloon memory.
class HttpConnection {
 public:
  /// Takes ownership of `fd` (closed on destruction).
  explicit HttpConnection(int fd);
  ~HttpConnection();
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// Wait up to `timeout_ms` for request bytes. Returns true when readable,
  /// false on timeout (caller typically re-checks a stop flag and tries
  /// again) — buffered leftover bytes count as readable.
  bool Poll(int timeout_ms);

  /// Parse the next request. nullopt on clean EOF or a malformed/oversized
  /// request (after best-effort writing a 400); the connection is then dead.
  std::optional<HttpRequest> ReadRequest();

  /// Serialize and send a response. False on write error (connection dead).
  bool WriteResponse(const HttpResponse& resp);

 private:
  bool ReadLine(std::string* line);
  bool ReadExact(size_t n, std::string* out);
  bool FillBuffer();
  bool WriteAll(const char* data, size_t n);

  int fd_;
  std::string buf_;   // bytes received but not yet consumed
  size_t buf_pos_ = 0;
};

}  // namespace server
}  // namespace anyk

#endif  // ANYK_SERVER_HTTP_H_
