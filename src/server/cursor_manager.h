// Resumable cursors: the server-side registry mapping cursor ids to live
// enumeration streams.
//
// A cursor owns the per-stream mutable state (the CursorStream and its
// session arenas), *pins* the cache entry it streams from (a shared_ptr —
// LRU eviction can drop the entry from the cache without invalidating open
// cursors) and holds one SessionTicket of the admission gauge. Each cursor
// has its own mutex: a request pages from a cursor under try_lock, so two
// concurrent requests on the same cursor never interleave — the loser gets
// 409 instead of blocking a worker thread.
//
// Cursors idle longer than the TTL are reclaimed by SweepExpired(), which
// the server calls on every request; a reclaimed or unknown id answers 410.

#ifndef ANYK_SERVER_CURSOR_MANAGER_H_
#define ANYK_SERVER_CURSOR_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/query_handle.h"
#include "server/rate_limiter.h"

namespace anyk {
namespace server {

struct Cursor {
  std::mutex mu;  // held for the duration of one page request
  std::unique_ptr<CursorStream> stream;
  std::shared_ptr<void> pin;  // keeps the cache entry alive past eviction
  SessionTicket ticket;
  std::string algorithm;  // for /statz and re-open diagnostics
  // Atomic, not mu-guarded: requests refresh it under mu, but SweepExpired
  // reads it from other workers without taking mu (taking every cursor's
  // mutex per sweep would serialize sweeps against paging).
  std::atomic<std::chrono::steady_clock::rep> last_used_ns{0};

  void Touch() {
    last_used_ns.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
  }
  double IdleSeconds(std::chrono::steady_clock::time_point now) const {
    const std::chrono::steady_clock::duration idle =
        now.time_since_epoch() -
        std::chrono::steady_clock::duration(
            last_used_ns.load(std::memory_order_relaxed));
    return std::chrono::duration<double>(idle).count();
  }
};

struct CursorStats {
  size_t live = 0;
  size_t opened = 0;
  size_t closed = 0;
  size_t expired = 0;
};

class CursorManager {
 public:
  /// ttl_seconds == 0 disables expiry.
  explicit CursorManager(double ttl_seconds) : ttl_seconds_(ttl_seconds) {}

  /// Register a stream and return its id ("c1", "c2", ...).
  std::string Open(std::unique_ptr<CursorStream> stream,
                   std::shared_ptr<void> pin, SessionTicket ticket,
                   std::string algorithm) {
    auto cursor = std::make_shared<Cursor>();
    cursor->stream = std::move(stream);
    cursor->pin = std::move(pin);
    cursor->ticket = std::move(ticket);
    cursor->algorithm = std::move(algorithm);
    cursor->Touch();
    std::unique_lock<std::mutex> lock(mu_);
    const std::string id = "c" + std::to_string(++next_id_);
    map_.emplace(id, std::move(cursor));
    ++stats_.opened;
    return id;
  }

  /// nullptr when the id is unknown (never existed, closed, or expired).
  std::shared_ptr<Cursor> Find(const std::string& id) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : it->second;
  }

  /// Drop the id; the Cursor object dies once the last in-flight request
  /// releases its shared_ptr. False when the id is unknown.
  bool Close(const std::string& id) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool found = map_.erase(id) > 0;
    if (found) ++stats_.closed;
    return found;
  }

  /// Reclaim cursors idle past the TTL. Only cursors with no in-flight
  /// request are taken (sole shared_ptr owner and an uncontended mutex);
  /// busy ones are retried on a later sweep.
  size_t SweepExpired() {
    if (ttl_seconds_ <= 0) return 0;
    const auto now = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    std::vector<std::string> victims;
    for (const auto& [id, cursor] : map_) {
      if (cursor.use_count() != 1) continue;  // a request holds it
      if (cursor->IdleSeconds(now) <= ttl_seconds_) continue;
      if (!cursor->mu.try_lock()) continue;
      cursor->mu.unlock();
      victims.push_back(id);
    }
    for (const std::string& id : victims) map_.erase(id);
    stats_.expired += victims.size();
    return victims.size();
  }

  CursorStats stats() const {
    std::unique_lock<std::mutex> lock(mu_);
    CursorStats s = stats_;
    s.live = map_.size();
    return s;
  }

 private:
  const double ttl_seconds_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Cursor>> map_;
  uint64_t next_id_ = 0;
  CursorStats stats_;
};

}  // namespace server
}  // namespace anyk

#endif  // ANYK_SERVER_CURSOR_MANAGER_H_
