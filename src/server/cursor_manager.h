// Resumable cursors: the server-side registry mapping cursor ids to live
// enumeration streams.
//
// A cursor owns the per-stream mutable state (the CursorStream and its
// session arenas), *pins* the cache entry it streams from (a shared_ptr —
// LRU eviction can drop the entry from the cache without invalidating open
// cursors) and holds one SessionTicket of the admission gauge. Each cursor
// has its own mutex: a request pages from a cursor under TryLock, so two
// concurrent requests on the same cursor never interleave — the loser gets
// 409 instead of blocking a worker thread.
//
// Cursors idle longer than the TTL are reclaimed by SweepExpired(), which
// the server calls on every request; a reclaimed or unknown id answers 410.
//
// Locking (compile-checked via src/util/sync.h annotations): Cursor::mu
// guards the stream; the manager's mu_ guards the id map and stats. A page
// request holds Cursor::mu and only takes the manager mutex (Close) after
// releasing it; SweepExpired holds the manager mutex and *probes* Cursor::mu
// with TryLock, which never blocks, so the reversed order cannot deadlock.

#ifndef ANYK_SERVER_CURSOR_MANAGER_H_
#define ANYK_SERVER_CURSOR_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/query_handle.h"
#include "server/rate_limiter.h"
#include "util/sync.h"

namespace anyk {
namespace server {

struct Cursor {
  /// `pin`, `ticket` and `algorithm` are immutable after construction (set
  /// before the cursor is published into the manager's map), so only the
  /// stream needs the mutex.
  Cursor(std::unique_ptr<CursorStream> stream_in, std::shared_ptr<void> pin_in,
         SessionTicket ticket_in, std::string algorithm_in)
      : stream(std::move(stream_in)),
        pin(std::move(pin_in)),
        ticket(std::move(ticket_in)),
        algorithm(std::move(algorithm_in)) {
    Touch();
  }

  Mutex mu;  // held for the duration of one page request
  std::unique_ptr<CursorStream> stream ANYK_GUARDED_BY(mu);
  const std::shared_ptr<void> pin;  // keeps the cache entry alive past eviction
  const SessionTicket ticket;
  const std::string algorithm;  // for /statz and re-open diagnostics
  // Atomic, not mu-guarded: requests refresh it under mu, but SweepExpired
  // reads it from other workers without taking mu (taking every cursor's
  // mutex per sweep would serialize sweeps against paging).
  std::atomic<std::chrono::steady_clock::rep> last_used_ns{0};

  void Touch() {
    last_used_ns.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
  }
  double IdleSeconds(std::chrono::steady_clock::time_point now) const {
    const std::chrono::steady_clock::duration idle =
        now.time_since_epoch() -
        std::chrono::steady_clock::duration(
            last_used_ns.load(std::memory_order_relaxed));
    return std::chrono::duration<double>(idle).count();
  }
};

struct CursorStats {
  size_t live = 0;
  size_t opened = 0;
  size_t closed = 0;
  size_t expired = 0;
};

class CursorManager {
 public:
  /// ttl_seconds == 0 disables expiry.
  explicit CursorManager(double ttl_seconds) : ttl_seconds_(ttl_seconds) {}

  /// Register a stream and return its id ("c1", "c2", ...).
  std::string Open(std::unique_ptr<CursorStream> stream,
                   std::shared_ptr<void> pin, SessionTicket ticket,
                   std::string algorithm) ANYK_EXCLUDES(mu_) {
    auto cursor = std::make_shared<Cursor>(std::move(stream), std::move(pin),
                                           std::move(ticket),
                                           std::move(algorithm));
    MutexLock lock(&mu_);
    const std::string id = "c" + std::to_string(++next_id_);
    map_.emplace(id, std::move(cursor));
    ++stats_.opened;
    return id;
  }

  /// nullptr when the id is unknown (never existed, closed, or expired).
  std::shared_ptr<Cursor> Find(const std::string& id) ANYK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : it->second;
  }

  /// Drop the id; the Cursor object dies once the last in-flight request
  /// releases its shared_ptr. False when the id is unknown.
  bool Close(const std::string& id) ANYK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    const bool found = map_.erase(id) > 0;
    if (found) ++stats_.closed;
    return found;
  }

  /// Reclaim cursors idle past the TTL. Only cursors with no in-flight
  /// request are taken (sole shared_ptr owner and an uncontended mutex);
  /// busy ones are retried on a later sweep.
  size_t SweepExpired() ANYK_EXCLUDES(mu_) {
    if (ttl_seconds_ <= 0) return 0;
    const auto now = std::chrono::steady_clock::now();
    MutexLock lock(&mu_);
    std::vector<std::string> victims;
    for (const auto& kv : map_) {
      const std::shared_ptr<Cursor>& cursor = kv.second;
      if (cursor.use_count() != 1) continue;  // a request holds it
      if (cursor->IdleSeconds(now) <= ttl_seconds_) continue;
      if (!cursor->mu.TryLock()) continue;
      cursor->mu.Unlock();
      victims.push_back(kv.first);
    }
    for (const std::string& id : victims) map_.erase(id);
    stats_.expired += victims.size();
    return victims.size();
  }

  CursorStats stats() const ANYK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    CursorStats s = stats_;
    s.live = map_.size();
    return s;
  }

 private:
  const double ttl_seconds_;
  mutable Mutex mu_;
  // anyk-lint: allow(unordered-map): cold control plane — bounded by
  // the session gauge (max_sessions open cursors), touched once per page
  // request (decision recorded in docs/STATIC_ANALYSIS.md).
  std::unordered_map<std::string, std::shared_ptr<Cursor>> map_
      ANYK_GUARDED_BY(mu_);
  uint64_t next_id_ ANYK_GUARDED_BY(mu_) = 0;
  CursorStats stats_ ANYK_GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace anyk

#endif  // ANYK_SERVER_CURSOR_MANAGER_H_
