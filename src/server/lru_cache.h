// Single-flight LRU cache for prepared queries.
//
// The server keys entries by (normalized SQL, dioid, database epoch); the
// cache itself is agnostic — keys are strings, values are produced by a
// caller-supplied factory. "Single-flight" means that when N sessions ask
// for the same missing key concurrently, exactly one runs the (expensive)
// factory while the other N-1 block on a condition variable and then share
// the result; a failed preparation is not cached, so the next request
// retries. Eviction is strict LRU over *ready* entries; entries still being
// prepared are never evicted. Callers hold results via shared_ptr, so an
// entry evicted while a cursor still streams from it stays alive until that
// cursor closes (docs/SERVER.md, "Cache keying").
//
// Thread-safe; every public method may be called from any worker thread.

#ifndef ANYK_SERVER_LRU_CACHE_H_
#define ANYK_SERVER_LRU_CACHE_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/logging.h"

namespace anyk {
namespace server {

struct CacheStats {
  size_t hits = 0;        // entry was ready, no wait
  size_t misses = 0;      // this request ran the factory
  size_t coalesced = 0;   // waited on another request's in-flight preparation
  size_t evictions = 0;
  size_t size = 0;        // current number of ready entries
};

template <typename V>
class LruCache {
 public:
  /// `capacity` is the maximum number of *ready* entries kept; must be >= 1.
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    ANYK_CHECK_GT(capacity, 0u) << "LruCache capacity must be >= 1";
  }

  enum class Outcome { kHit, kMiss, kCoalesced };

  /// Get the value for `key`, running `factory` (outside the lock) to build
  /// it on a miss. Returns nullptr only when the factory threw — the
  /// exception is rethrown to the thread that ran the factory, while
  /// coalesced waiters get nullptr and should surface "preparation failed".
  std::shared_ptr<V> GetOrCreate(const std::string& key,
                                 const std::function<std::shared_ptr<V>()>& factory,
                                 Outcome* outcome = nullptr) {
    std::shared_ptr<Slot> slot;
    bool owner = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        slot = it->second;
        if (slot->ready) {
          ++stats_.hits;
          if (outcome != nullptr) *outcome = Outcome::kHit;
          Touch(key);
          return slot->value;
        }
        ++stats_.coalesced;
        if (outcome != nullptr) *outcome = Outcome::kCoalesced;
      } else {
        slot = std::make_shared<Slot>();
        map_.emplace(key, slot);
        ++stats_.misses;
        if (outcome != nullptr) *outcome = Outcome::kMiss;
        owner = true;
      }
    }

    if (!owner) {
      std::unique_lock<std::mutex> lock(slot->mu);
      slot->cv.wait(lock, [&] { return slot->done; });
      return slot->value;  // nullptr if the owner's factory failed
    }

    std::shared_ptr<V> value;
    try {
      value = factory();
    } catch (...) {
      Finish(key, slot, nullptr);
      throw;
    }
    Finish(key, slot, value);
    return value;
  }

  /// Drop every entry (ready or not — in-flight preparations finish but are
  /// not re-inserted). Used by /v1/flush.
  void Clear() {
    std::unique_lock<std::mutex> lock(mu_);
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second->ready) {
        ++stats_.evictions;
        it = map_.erase(it);
      } else {
        it->second->orphaned = true;
        ++it;
      }
    }
    lru_.clear();
    stats_.size = 0;
  }

  CacheStats stats() const {
    std::unique_lock<std::mutex> lock(mu_);
    return stats_;
  }

  /// Visit every *ready* entry (key + value) under the cache lock, in LRU ->
  /// MRU order. `fn` must be cheap and must not call back into the cache.
  /// Used by /statz to list the prepared queries and their plans.
  void ForEachReady(
      const std::function<void(const std::string& key,
                               const std::shared_ptr<V>& value)>& fn) const {
    std::unique_lock<std::mutex> lock(mu_);
    for (const std::string& key : lru_) {
      auto it = map_.find(key);
      if (it != map_.end() && it->second->ready) fn(key, it->second->value);
    }
  }

 private:
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;      // factory finished (successfully or not)
    bool ready = false;     // value is valid; guarded by the cache mutex
    bool orphaned = false;  // Clear() ran mid-preparation; don't insert
    std::shared_ptr<V> value;
  };

  // Move `key` to the MRU end. Caller holds mu_.
  void Touch(const std::string& key) {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (*it == key) {
        lru_.erase(it);
        break;
      }
    }
    lru_.push_back(key);
  }

  void Finish(const std::string& key, const std::shared_ptr<Slot>& slot,
              std::shared_ptr<V> value) {
    // Publish the value BEFORE marking the slot ready: the hit path returns
    // `slot->value` as soon as it sees `ready` under mu_, so ordering these
    // the other way round hands a brief null to any request landing between
    // the two critical sections (seen as a spurious 500 under load).
    {
      std::unique_lock<std::mutex> lock(slot->mu);
      slot->value = value;
      slot->done = true;
    }
    slot->cv.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (value != nullptr && !slot->orphaned) {
        slot->ready = true;
        lru_.push_back(key);
        stats_.size = CountReady();
        while (stats_.size > capacity_) EvictOldest();
      } else {
        map_.erase(key);
      }
    }
  }

  size_t CountReady() const {
    size_t n = 0;
    for (const auto& kv : map_) {
      if (kv.second->ready) ++n;
    }
    return n;
  }

  // Caller holds mu_ and guarantees at least one ready entry exists.
  void EvictOldest() {
    ANYK_CHECK(!lru_.empty());
    const std::string victim = lru_.front();
    lru_.pop_front();
    map_.erase(victim);
    ++stats_.evictions;
    --stats_.size;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> map_;
  std::list<std::string> lru_;  // front = LRU, back = MRU; ready keys only
  CacheStats stats_;
};

}  // namespace server
}  // namespace anyk

#endif  // ANYK_SERVER_LRU_CACHE_H_
