// Single-flight LRU cache for prepared queries.
//
// The server keys entries by (normalized SQL, dioid, database epoch); the
// cache itself is agnostic — keys are strings, values are produced by a
// caller-supplied factory. "Single-flight" means that when N sessions ask
// for the same missing key concurrently, exactly one runs the (expensive)
// factory while the other N-1 block on a condition variable and then share
// the result; a failed preparation is not cached, so the next request
// retries. Eviction is strict LRU over *ready* entries; entries still being
// prepared are never evicted. Callers hold results via shared_ptr, so an
// entry evicted while a cursor still streams from it stays alive until that
// cursor closes (docs/SERVER.md, "Cache keying").
//
// Thread-safe; every public method may be called from any worker thread.
//
// Locking (compile-checked via src/util/sync.h annotations): the cache-wide
// mu_ guards the key map, the LRU list and the stats; each in-flight Slot has
// its own mutex guarding the completion flag and the value handed to
// coalesced waiters. The two are NEVER nested — GetOrCreate releases mu_
// before waiting on a slot, and Finish takes slot->mu and mu_ strictly one
// after the other — so no ordering constraint exists between them.

#ifndef ANYK_SERVER_LRU_CACHE_H_
#define ANYK_SERVER_LRU_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/logging.h"
#include "util/sync.h"

namespace anyk {
namespace server {

struct CacheStats {
  size_t hits = 0;        // entry was ready, no wait
  size_t misses = 0;      // this request ran the factory
  size_t coalesced = 0;   // waited on another request's in-flight preparation
  size_t evictions = 0;
  size_t size = 0;        // current number of ready entries
};

template <typename V>
class LruCache {
 public:
  /// `capacity` is the maximum number of *ready* entries kept; must be >= 1.
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    ANYK_CHECK_GT(capacity, 0u) << "LruCache capacity must be >= 1";
  }

  enum class Outcome { kHit, kMiss, kCoalesced };

  /// Get the value for `key`, running `factory` (outside the lock) to build
  /// it on a miss. Returns nullptr only when the factory threw — the
  /// exception is rethrown to the thread that ran the factory, while
  /// coalesced waiters get nullptr and should surface "preparation failed".
  std::shared_ptr<V> GetOrCreate(const std::string& key,
                                 const std::function<std::shared_ptr<V>()>& factory,
                                 Outcome* outcome = nullptr)
      ANYK_EXCLUDES(mu_) {
    std::shared_ptr<Slot> slot;
    bool owner = false;
    {
      MutexLock lock(&mu_);
      auto it = map_.find(key);
      if (it != map_.end() && it->second.ready) {
        ++stats_.hits;
        if (outcome != nullptr) *outcome = Outcome::kHit;
        Touch(key);
        return it->second.value;
      }
      if (it != map_.end()) {
        slot = it->second.slot;
        ++stats_.coalesced;
        if (outcome != nullptr) *outcome = Outcome::kCoalesced;
      } else {
        slot = std::make_shared<Slot>();
        Entry entry;
        entry.slot = slot;
        map_.emplace(key, std::move(entry));
        ++stats_.misses;
        if (outcome != nullptr) *outcome = Outcome::kMiss;
        owner = true;
      }
    }

    if (!owner) {
      MutexLock lock(&slot->mu);
      while (!slot->done) slot->cv.Wait(slot->mu);
      return slot->value;  // nullptr if the owner's factory failed
    }

    std::shared_ptr<V> value;
    try {
      value = factory();
    } catch (...) {
      Finish(key, slot, nullptr);
      throw;
    }
    Finish(key, slot, value);
    return value;
  }

  /// Drop every entry (ready or not — an in-flight preparation finishes,
  /// notifies its waiters, but is not inserted: Finish no longer finds its
  /// slot in the map). Used by /v1/flush.
  void Clear() ANYK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second.ready) ++stats_.evictions;
      it = map_.erase(it);
    }
    lru_.clear();
    stats_.size = 0;
  }

  CacheStats stats() const ANYK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

  /// Visit every *ready* entry (key + value) under the cache lock, in LRU ->
  /// MRU order. `fn` must be cheap and must not call back into the cache.
  /// Used by /statz to list the prepared queries and their plans.
  void ForEachReady(
      const std::function<void(const std::string& key,
                               const std::shared_ptr<V>& value)>& fn) const
      ANYK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    for (const std::string& key : lru_) {
      auto it = map_.find(key);
      if (it != map_.end() && it->second.ready) fn(key, it->second.value);
    }
  }

 private:
  // One in-flight preparation. Waiters hold the shared_ptr, block on cv and
  // read `value` once `done` — all under the slot's own mutex, independent of
  // the cache-wide one.
  struct Slot {
    Mutex mu;
    CondVar cv;
    bool done ANYK_GUARDED_BY(mu) = false;   // factory finished (ok or not)
    std::shared_ptr<V> value ANYK_GUARDED_BY(mu);  // null iff factory threw
  };

  // Cache-side per-key state; the containing map is guarded by mu_, so every
  // field here is too. `slot` is non-null while a preparation is in flight;
  // `ready`/`value` are set once it succeeds.
  struct Entry {
    std::shared_ptr<Slot> slot;
    bool ready = false;
    std::shared_ptr<V> value;
  };

  // Move `key` to the MRU end.
  void Touch(const std::string& key) ANYK_REQUIRES(mu_) {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (*it == key) {
        lru_.erase(it);
        break;
      }
    }
    lru_.push_back(key);
  }

  // Publish the factory result: waiters first (slot mutex), then the cache
  // entry (cache mutex). A Clear() that ran mid-preparation erased the
  // entry — or a post-Clear request re-created it with a fresh slot — and in
  // both cases this preparation is orphaned: waiters still get the value,
  // but the map is left alone.
  void Finish(const std::string& key, const std::shared_ptr<Slot>& slot,
              std::shared_ptr<V> value) ANYK_EXCLUDES(mu_) {
    {
      MutexLock lock(&slot->mu);
      slot->value = value;
      slot->done = true;
    }
    slot->cv.NotifyAll();
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it == map_.end() || it->second.slot != slot) return;  // orphaned
    if (value == nullptr) {
      map_.erase(it);  // failed preparations are not cached
      return;
    }
    it->second.ready = true;
    it->second.value = std::move(value);
    it->second.slot.reset();  // waiter machinery no longer needed
    lru_.push_back(key);
    stats_.size = CountReady();
    while (stats_.size > capacity_) EvictOldest();
  }

  size_t CountReady() const ANYK_REQUIRES(mu_) {
    size_t n = 0;
    for (const auto& kv : map_) {
      if (kv.second.ready) ++n;
    }
    return n;
  }

  // Caller guarantees at least one ready entry exists.
  void EvictOldest() ANYK_REQUIRES(mu_) {
    ANYK_CHECK(!lru_.empty());
    const std::string victim = lru_.front();
    lru_.pop_front();
    map_.erase(victim);
    ++stats_.evictions;
    --stats_.size;
  }

  const size_t capacity_;
  mutable Mutex mu_;
  // anyk-lint: allow(unordered-map): cold control plane — at most
  // `capacity` + in-flight entries, touched once per request, never on the
  // enumeration hot path (decision recorded in docs/STATIC_ANALYSIS.md).
  std::unordered_map<std::string, Entry> map_ ANYK_GUARDED_BY(mu_);
  std::list<std::string> lru_ ANYK_GUARDED_BY(mu_);  // front = LRU; ready only
  CacheStats stats_ ANYK_GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace anyk

#endif  // ANYK_SERVER_LRU_CACHE_H_
