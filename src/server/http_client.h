// Tiny blocking HTTP/1.1 client for tests and benchmarks talking to anykd.
// One connection, sequential request/response, keep-alive; just enough to
// drive the server's line-oriented protocol from C++ without a dependency.
// Header-only; not part of the server's own request path.

#ifndef ANYK_SERVER_HTTP_CLIENT_H_
#define ANYK_SERVER_HTTP_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/logging.h"

namespace anyk {
namespace server {

struct ClientResponse {
  int status = 0;
  std::string body;
};

class HttpClient {
 public:
  /// Connects to 127.0.0.1:port; CHECK-fails if the server is not there.
  explicit HttpClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ANYK_CHECK_GE(fd_, 0) << "socket() failed";
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ANYK_CHECK_EQ(
        ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
        0)
        << "cannot connect to 127.0.0.1:" << port;
    // Requests are tiny; let them leave immediately instead of pooling
    // behind Nagle waiting for the previous response's ACK.
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~HttpClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// GET `target` (path + query string, already percent-encoded where
  /// needed) and read the full response.
  ClientResponse Get(const std::string& target) {
    return RoundTrip("GET", target, "");
  }
  ClientResponse Post(const std::string& target, const std::string& body) {
    return RoundTrip("POST", target, body);
  }

  /// Percent-encode one query-parameter value.
  static std::string Encode(const std::string& s) {
    static const char* hex = "0123456789ABCDEF";
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      const unsigned char u = static_cast<unsigned char>(c);
      const bool plain = (u >= 'a' && u <= 'z') || (u >= 'A' && u <= 'Z') ||
                         (u >= '0' && u <= '9') || u == '-' || u == '_' ||
                         u == '.' || u == '~';
      if (plain) {
        out.push_back(c);
      } else {
        out.push_back('%');
        out.push_back(hex[u >> 4]);
        out.push_back(hex[u & 15]);
      }
    }
    return out;
  }

 private:
  ClientResponse RoundTrip(const char* method, const std::string& target,
                           const std::string& body) {
    std::string req = std::string(method) + " " + target + " HTTP/1.1\r\n" +
                      "Host: localhost\r\n";
    if (!body.empty() || std::strcmp(method, "POST") == 0) {
      req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    req += "\r\n" + body;
    WriteAll(req.data(), req.size());

    // Status line.
    ClientResponse resp;
    const std::string status_line = ReadLine();
    const size_t sp = status_line.find(' ');
    ANYK_CHECK(sp != std::string::npos) << "bad status line: " << status_line;
    resp.status = std::atoi(status_line.c_str() + sp + 1);

    // Headers; we rely on Content-Length (the server always sends it).
    size_t content_length = 0;
    for (;;) {
      const std::string line = ReadLine();
      if (line.empty()) break;
      if (line.size() > 15 &&
          strncasecmp(line.c_str(), "content-length:", 15) == 0) {
        content_length =
            static_cast<size_t>(std::strtoull(line.c_str() + 15, nullptr, 10));
      }
    }
    resp.body = ReadExact(content_length);
    return resp;
  }

  void WriteAll(const char* data, size_t n) {
    size_t sent = 0;
    while (sent < n) {
      ssize_t w;
      do {
        w = ::send(fd_, data + sent, n - sent, 0);
      } while (w < 0 && errno == EINTR);
      ANYK_CHECK_GT(w, 0) << "send() failed";
      sent += static_cast<size_t>(w);
    }
  }

  void Fill() {
    char chunk[4096];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    ANYK_CHECK_GT(n, 0) << "connection closed mid-response";
    buf_.append(chunk, static_cast<size_t>(n));
  }

  std::string ReadLine() {
    for (;;) {
      const size_t nl = buf_.find('\n', pos_);
      if (nl != std::string::npos) {
        size_t end = nl;
        if (end > pos_ && buf_[end - 1] == '\r') --end;
        std::string line = buf_.substr(pos_, end - pos_);
        pos_ = nl + 1;
        Compact();
        return line;
      }
      Fill();
    }
  }

  std::string ReadExact(size_t n) {
    while (buf_.size() - pos_ < n) Fill();
    std::string out = buf_.substr(pos_, n);
    pos_ += n;
    Compact();
    return out;
  }

  void Compact() {
    if (pos_ > 4096) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
  }

  int fd_ = -1;
  std::string buf_;
  size_t pos_ = 0;
};

}  // namespace server
}  // namespace anyk

#endif  // ANYK_SERVER_HTTP_CLIENT_H_
