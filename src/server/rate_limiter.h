// Admission control for anykd: a token-bucket rate limiter (requests per
// second with a burst allowance) plus a bounded concurrent-session gauge.
// Both answer in O(1) under one mutex; over-limit requests are rejected with
// 429 rather than queued, so a slow client can never occupy a worker thread
// while waiting for capacity (docs/SERVER.md, "Admission control").

#ifndef ANYK_SERVER_RATE_LIMITER_H_
#define ANYK_SERVER_RATE_LIMITER_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <mutex>

namespace anyk {
namespace server {

/// Token bucket: `qps` tokens are added per second up to `burst`; each
/// request takes one. qps == 0 disables limiting (always admits).
class RateLimiter {
 public:
  RateLimiter(double qps, double burst)
      : qps_(qps), burst_(burst), tokens_(burst),
        last_(Clock::now()) {}

  bool Admit() {
    if (qps_ <= 0) return true;
    std::unique_lock<std::mutex> lock(mu_);
    const auto now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(burst_, tokens_ + elapsed * qps_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

 private:
  using Clock = std::chrono::steady_clock;
  const double qps_;
  const double burst_;
  double tokens_;
  Clock::time_point last_;
  std::mutex mu_;
};

/// Bounded gauge of live enumeration sessions. TryAcquire/Release pairs are
/// wrapped in SessionTicket so an exception path can't leak a slot.
class SessionGauge {
 public:
  explicit SessionGauge(size_t max_sessions) : max_(max_sessions) {}

  bool TryAcquire() {
    std::unique_lock<std::mutex> lock(mu_);
    if (live_ >= max_) return false;
    ++live_;
    peak_ = std::max(peak_, live_);
    return true;
  }

  void Release() {
    std::unique_lock<std::mutex> lock(mu_);
    if (live_ > 0) --live_;
  }

  size_t live() const {
    std::unique_lock<std::mutex> lock(mu_);
    return live_;
  }
  size_t peak() const {
    std::unique_lock<std::mutex> lock(mu_);
    return peak_;
  }
  size_t max() const { return max_; }

 private:
  const size_t max_;
  mutable std::mutex mu_;
  size_t live_ = 0;
  size_t peak_ = 0;
};

/// Move-only RAII slot of a SessionGauge; releases on destruction. A
/// default-constructed ticket holds nothing.
class SessionTicket {
 public:
  SessionTicket() = default;
  explicit SessionTicket(SessionGauge* gauge) : gauge_(gauge) {}
  ~SessionTicket() {
    if (gauge_ != nullptr) gauge_->Release();
  }
  SessionTicket(SessionTicket&& other) noexcept : gauge_(other.gauge_) {
    other.gauge_ = nullptr;
  }
  SessionTicket& operator=(SessionTicket&& other) noexcept {
    if (this != &other) {
      if (gauge_ != nullptr) gauge_->Release();
      gauge_ = other.gauge_;
      other.gauge_ = nullptr;
    }
    return *this;
  }
  SessionTicket(const SessionTicket&) = delete;
  SessionTicket& operator=(const SessionTicket&) = delete;

 private:
  SessionGauge* gauge_ = nullptr;
};

}  // namespace server
}  // namespace anyk

#endif  // ANYK_SERVER_RATE_LIMITER_H_
