// Admission control for anykd: a token-bucket rate limiter (requests per
// second with a burst allowance) plus a bounded concurrent-session gauge.
// Both answer in O(1) under one mutex; over-limit requests are rejected with
// 429 rather than queued, so a slow client can never occupy a worker thread
// while waiting for capacity (docs/SERVER.md, "Admission control").
//
// Both mutexes are leaves of the lock hierarchy (src/util/sync.h): no other
// lock is ever acquired while one of them is held.

#ifndef ANYK_SERVER_RATE_LIMITER_H_
#define ANYK_SERVER_RATE_LIMITER_H_

#include <algorithm>
#include <chrono>
#include <cstddef>

#include "util/sync.h"

namespace anyk {
namespace server {

/// Token bucket: `qps` tokens are added per second up to `burst`; each
/// request takes one. qps == 0 disables limiting (always admits).
class RateLimiter {
 public:
  using Clock = std::chrono::steady_clock;

  RateLimiter(double qps, double burst) : RateLimiter(qps, burst, Clock::now()) {}

  /// `start` anchors the first refill computation; tests pass a fixed
  /// time_point so AdmitAt sequences are fully deterministic.
  RateLimiter(double qps, double burst, Clock::time_point start)
      : qps_(qps), burst_(burst), tokens_(burst), last_(start) {}

  bool Admit() { return AdmitAt(Clock::now()); }

  /// Deterministic-time seam for tests: refill as if the wall clock read
  /// `now`. `now` values must be non-decreasing across calls and never
  /// precede the constructor's `start` (Admit guarantees this via the
  /// monotonic clock).
  bool AdmitAt(Clock::time_point now) ANYK_EXCLUDES(mu_) {
    if (qps_ <= 0) return true;
    MutexLock lock(&mu_);
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(burst_, tokens_ + elapsed * qps_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

 private:
  const double qps_;
  const double burst_;
  mutable Mutex mu_;
  double tokens_ ANYK_GUARDED_BY(mu_);
  Clock::time_point last_ ANYK_GUARDED_BY(mu_);
};

/// Bounded gauge of live enumeration sessions. TryAcquire/Release pairs are
/// wrapped in SessionTicket so an exception path can't leak a slot.
class SessionGauge {
 public:
  explicit SessionGauge(size_t max_sessions) : max_(max_sessions) {}

  bool TryAcquire() ANYK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (live_ >= max_) return false;
    ++live_;
    peak_ = std::max(peak_, live_);
    return true;
  }

  void Release() ANYK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (live_ > 0) --live_;
  }

  size_t live() const ANYK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return live_;
  }
  size_t peak() const ANYK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return peak_;
  }
  size_t max() const { return max_; }

 private:
  const size_t max_;
  mutable Mutex mu_;
  size_t live_ ANYK_GUARDED_BY(mu_) = 0;
  size_t peak_ ANYK_GUARDED_BY(mu_) = 0;
};

/// Move-only RAII slot of a SessionGauge; releases on destruction. A
/// default-constructed ticket holds nothing.
class SessionTicket {
 public:
  SessionTicket() = default;
  explicit SessionTicket(SessionGauge* gauge) : gauge_(gauge) {}
  ~SessionTicket() {
    if (gauge_ != nullptr) gauge_->Release();
  }
  SessionTicket(SessionTicket&& other) noexcept : gauge_(other.gauge_) {
    other.gauge_ = nullptr;
  }
  SessionTicket& operator=(SessionTicket&& other) noexcept {
    if (this != &other) {
      if (gauge_ != nullptr) gauge_->Release();
      gauge_ = other.gauge_;
      other.gauge_ = nullptr;
    }
    return *this;
  }
  SessionTicket(const SessionTicket&) = delete;
  SessionTicket& operator=(const SessionTicket&) = delete;

 private:
  SessionGauge* gauge_ = nullptr;
};

}  // namespace server
}  // namespace anyk

#endif  // ANYK_SERVER_RATE_LIMITER_H_
