#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <cstdio>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "query/sql.h"
#include "server/cursor_manager.h"
#include "server/http.h"
#include "server/lru_cache.h"
#include "server/query_handle.h"
#include "server/rate_limiter.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/sync.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace anyk {
namespace server {
namespace {

// A prepared query as cached + shared by all sessions. Immutable once the
// single-flight factory returns it. The plan decision for `algorithm=auto`
// is made once, inside the handle's preparation, and rides along here so
// /statz can list it without touching the templated stack.
struct CacheEntry {
  std::unique_ptr<QueryHandle> handle;
  double prepare_seconds = 0;
};

using QueryCache = LruCache<CacheEntry>;

std::optional<Algorithm> AlgorithmFromName(std::string name) {
  for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (name == "recursive" || name == "rec") return Algorithm::kRecursive;
  if (name == "take2") return Algorithm::kTake2;
  if (name == "lazy") return Algorithm::kLazy;
  if (name == "eager") return Algorithm::kEager;
  if (name == "all") return Algorithm::kAll;
  if (name == "batch") return Algorithm::kBatch;
  if (name == "auto") return Algorithm::kAuto;
  return std::nullopt;
}

bool ParsePositiveSize(const std::string& s, size_t* out) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (*end != '\0' || errno == ERANGE) return false;
  *out = static_cast<size_t>(v);
  return true;
}

const char* CacheOutcomeName(QueryCache::Outcome o) {
  switch (o) {
    case QueryCache::Outcome::kHit: return "hit";
    case QueryCache::Outcome::kMiss: return "miss";
    case QueryCache::Outcome::kCoalesced: return "coalesced";
  }
  return "?";
}

HttpResponse TextError(int status, const std::string& message) {
  HttpResponse resp;
  resp.status = status;
  resp.body = "ERROR," + std::to_string(status) + "," + message + "\n";
  return resp;
}

// Renders one page of answers in either wire format. Text pages are the
// exact RESULT rows of the CLI (`RESULT,<rank>,<weight %.6g>,<values...>`),
// which is what makes the server byte-comparable to a serial drain.
class PageWriter {
 public:
  PageWriter(bool json, const char* cache, const char* plan)
      : json_(json) {
    if (json_) {
      writer_.emplace(body_stream_);
      writer_->BeginObject();
      if (cache != nullptr) writer_->KV("cache", cache);
      if (plan != nullptr) writer_->KV("plan", plan);
      writer_->Key("results").BeginArray();
    } else {
      if (cache != nullptr) {
        body_stream_ << "CACHE," << cache << "\n";
      }
      if (plan != nullptr) {
        body_stream_ << "PLAN," << plan << "\n";
      }
    }
  }

  RowFn Sink() {
    return [this](size_t rank, double weight, const std::vector<Value>& values) {
      if (json_) {
        writer_->BeginObject();
        writer_->KV("k", static_cast<uint64_t>(rank));
        writer_->KV("weight", weight);
        writer_->Key("values").BeginArray();
        for (Value v : values) writer_->Int(v);
        writer_->EndArray();
        writer_->EndObject();
        return;
      }
      char weight_buf[32];
      std::snprintf(weight_buf, sizeof(weight_buf), "%.6g", weight);
      body_stream_ << "RESULT," << rank << "," << weight_buf;
      for (Value v : values) body_stream_ << "," << v;
      body_stream_ << "\n";
    };
  }

  /// Close the page: either a cursor to resume from or a DONE marker with
  /// the cursor's total answer count.
  HttpResponse Finish(const std::string& cursor, size_t produced_total) {
    HttpResponse resp;
    if (json_) {
      writer_->EndArray();
      writer_->KV("done", cursor.empty());
      if (!cursor.empty()) writer_->KV("cursor", cursor);
      writer_->KV("produced", static_cast<uint64_t>(produced_total));
      writer_->EndObject();
      writer_->Finish();
      resp.content_type = "application/json";
    } else if (cursor.empty()) {
      body_stream_ << "DONE," << produced_total << "\n";
    } else {
      body_stream_ << "CURSOR," << cursor << "\n";
    }
    resp.body = body_stream_.str();
    return resp;
  }

 private:
  bool json_;
  std::ostringstream body_stream_;
  std::optional<JsonWriter> writer_;
};

}  // namespace

struct AnykServer::Impl {
  Impl(Database db_in, ServerOptions opts_in)
      : db(std::move(db_in)),
        opts(opts_in),
        prepare_pool(opts_in.prepare_threads),
        cache(opts_in.cache_capacity),
        limiter(opts_in.qps, opts_in.burst),
        gauge(opts_in.max_sessions),
        cursors(opts_in.cursor_ttl_seconds) {}

  const Database db;
  const ServerOptions opts;
  ThreadPool prepare_pool;
  QueryCache cache;
  RateLimiter limiter;
  SessionGauge gauge;
  CursorManager cursors;
  std::atomic<uint64_t> epoch{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> rejected{0};

  std::atomic<bool> stop{false};
  // Lifecycle state below is confined to the thread that drives Start/Stop
  // (the daemon's main thread); worker threads only read `stop` (atomic).
  bool started = false;
  int listen_fd = -1;
  int port = 0;
  std::thread accept_thread;
  std::vector<std::thread> workers;
  // queue_mu is a leaf lock: connections are served with no lock held.
  Mutex queue_mu;
  CondVar queue_cv;
  std::deque<int> conn_queue ANYK_GUARDED_BY(queue_mu);

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  HttpResponse Handle(const HttpRequest& req);
  HttpResponse HandleQuery(const HttpRequest& req);
  HttpResponse HandleNext(const HttpRequest& req);
  HttpResponse HandleClose(const HttpRequest& req);
  HttpResponse HandleFlush();
  HttpResponse HandleStatz();

  /// Parse-and-bound a `k=` page size; nullopt (with `*err` filled) when
  /// out of range. Absent -> the server default.
  std::optional<size_t> PageK(const HttpRequest& req, HttpResponse* err) {
    if (!req.HasParam("k")) return opts.default_page_k;
    const std::string v = req.Param("k", "");
    size_t k = 0;
    if (!ParsePositiveSize(v, &k) || k == 0) {
      // k=0 must not fall through: EnumOptions::k_budget treats 0 as the
      // "unbounded" sentinel, so an accepted 0 would mean "everything".
      *err = TextError(400, "k must be a positive integer (a page cannot be "
                            "empty; omit k for the default page size)");
      return std::nullopt;
    }
    if (k > opts.max_page_k) {
      *err = TextError(400, "k exceeds the per-request cap of " +
                                std::to_string(opts.max_page_k));
      return std::nullopt;
    }
    return k;
  }
};

void AnykServer::Impl::AcceptLoop() {
  while (!stop.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 100) <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    // Request/response pages are small; without TCP_NODELAY every response
    // can stall ~40ms behind the client's delayed ACK.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      MutexLock lock(&queue_mu);
      conn_queue.push_back(fd);
    }
    queue_cv.NotifyOne();
  }
}

void AnykServer::Impl::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(&queue_mu);
      while (!stop.load(std::memory_order_relaxed) && conn_queue.empty()) {
        queue_cv.Wait(queue_mu);
      }
      if (conn_queue.empty()) return;  // stop requested, queue drained
      fd = conn_queue.front();
      conn_queue.pop_front();
    }
    ServeConnection(fd);
  }
}

void AnykServer::Impl::ServeConnection(int fd) {
  HttpConnection conn(fd);
  // Keep-alive loop: serve requests until the client closes, asks to close,
  // or idles for ~30s (a stuck client must not pin a worker forever).
  int idle_polls = 0;
  while (!stop.load(std::memory_order_relaxed) && idle_polls < 300) {
    if (!conn.Poll(100)) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    std::optional<HttpRequest> req = conn.ReadRequest();
    if (!req.has_value()) return;
    requests.fetch_add(1, std::memory_order_relaxed);
    cursors.SweepExpired();
    HttpResponse resp;
    try {
      resp = Handle(*req);
    } catch (const std::exception& e) {
      // ANYK_CHECK failures (bad SQL, unknown dioid, missing relation...)
      // arrive here via the throwing handler — they are client errors.
      resp = TextError(400, e.what());
    }
    if (resp.status >= 400) rejected.fetch_add(1, std::memory_order_relaxed);
    resp.close_connection = resp.close_connection || !req->keep_alive;
    if (!conn.WriteResponse(resp)) return;
    if (resp.close_connection) return;
  }
}

HttpResponse AnykServer::Impl::Handle(const HttpRequest& req) {
  if (req.path == "/healthz") {
    HttpResponse resp;
    resp.body = "ok\n";
    return resp;
  }
  if (req.path == "/statz") return HandleStatz();
  if (req.path == "/v1/query") return HandleQuery(req);
  if (req.path == "/v1/next") return HandleNext(req);
  if (req.path == "/v1/close") return HandleClose(req);
  if (req.path == "/v1/flush") {
    if (req.method != "POST") {
      return TextError(405, "flush requires POST");
    }
    return HandleFlush();
  }
  return TextError(404, "no such endpoint");
}

HttpResponse AnykServer::Impl::HandleQuery(const HttpRequest& req) {
  const std::string sql = req.Param("sql", "");
  if (sql.empty()) return TextError(400, "missing sql parameter");

  HttpResponse err;
  const std::optional<size_t> page_k = PageK(req, &err);
  if (!page_k.has_value()) return err;

  // Default: the cost-based planner. The decision was made at prepare time
  // and cached inside the entry, so `auto` adds nothing per request.
  const std::string algo_name = req.Param("algorithm", "auto");
  const std::optional<Algorithm> algo = AlgorithmFromName(algo_name);
  if (!algo.has_value()) {
    return TextError(400, "unknown algorithm '" + algo_name +
                              "' (expected recursive|take2|lazy|eager|all|"
                              "batch|auto)");
  }
  const bool json = req.Param("format", "text") == "json";

  // Admission: cheap checks before any preparation work.
  if (!limiter.Admit()) {
    return TextError(429, "rate limited; retry later");
  }
  if (!gauge.TryAcquire()) {
    return TextError(429, "session limit reached (" +
                              std::to_string(gauge.max()) +
                              "); close or drain cursors first");
  }
  SessionTicket ticket(&gauge);

  // Normalization both validates the SQL (throws -> 400 above) and produces
  // the cache key, so equivalent spellings share one prepared query.
  const std::string normalized = NormalizeSql(sql);
  std::string dioid = req.Param("dioid", "");
  if (dioid.empty()) {
    // Same default rule as the CLI: lightest-first queries rank by min-sum,
    // heaviest-first by max-sum. NormalizeSql always renders the direction.
    dioid = normalized.find(" ORDER BY WEIGHT DESC") != std::string::npos
                ? "max-sum"
                : "min-sum";
  }
  const std::string key =
      QueryCacheKey(dioid, opts.planner_version,
                    epoch.load(std::memory_order_relaxed), opts.shards,
                    normalized);

  QueryCache::Outcome outcome = QueryCache::Outcome::kMiss;
  std::shared_ptr<CacheEntry> entry = cache.GetOrCreate(
      key,
      [&]() -> std::shared_ptr<CacheEntry> {
        auto e = std::make_shared<CacheEntry>();
        Timer timer;
        const SqlStatement stmt = ParseSql(normalized, &db);
        e->handle =
            MakeQueryHandle(db, stmt, dioid, &prepare_pool, opts.shards);
        e->prepare_seconds = timer.Seconds();
        return e;
      },
      &outcome);
  if (entry == nullptr) {
    // Coalesced onto a preparation that failed; the owner got the error.
    return TextError(500, "query preparation failed; retry");
  }

  std::unique_ptr<CursorStream> stream = entry->handle->Open(*algo);
  PageWriter page(json, CacheOutcomeName(outcome), entry->handle->plan_name());
  stream->FetchPage(*page_k, page.Sink());
  std::string cursor_id;
  const size_t produced = stream->produced();
  if (!stream->done()) {
    cursor_id = cursors.Open(std::move(stream), entry, std::move(ticket),
                             algo_name);
  }
  return page.Finish(cursor_id, produced);
}

HttpResponse AnykServer::Impl::HandleNext(const HttpRequest& req) {
  const std::string id = req.Param("cursor", "");
  if (id.empty()) return TextError(400, "missing cursor parameter");
  HttpResponse err;
  const std::optional<size_t> page_k = PageK(req, &err);
  if (!page_k.has_value()) return err;
  const bool json = req.Param("format", "text") == "json";

  std::shared_ptr<Cursor> cursor = cursors.Find(id);
  if (cursor == nullptr) {
    return TextError(410, "unknown or expired cursor '" + id + "'");
  }
  if (!cursor->mu.TryLock()) {
    return TextError(409, "cursor '" + id + "' is busy in another request");
  }

  PageWriter page(json, nullptr, nullptr);
  size_t produced = 0;
  bool done = false;
  {
    // Adopt the TryLock success so an exception inside FetchPage (surfaced
    // as a 400 by ServeConnection) cannot leave the cursor locked forever.
    MutexLock lock(&cursor->mu, AdoptLock());
    cursor->stream->FetchPage(*page_k, page.Sink());
    cursor->Touch();
    produced = cursor->stream->produced();
    done = cursor->stream->done();
  }
  // Cursor lock released before taking the manager lock (see the lock order
  // note in cursor_manager.h).
  if (done) cursors.Close(id);
  return page.Finish(done ? "" : id, produced);
}

HttpResponse AnykServer::Impl::HandleClose(const HttpRequest& req) {
  const std::string id = req.Param("cursor", "");
  if (id.empty()) return TextError(400, "missing cursor parameter");
  if (!cursors.Close(id)) {
    return TextError(410, "unknown or expired cursor '" + id + "'");
  }
  HttpResponse resp;
  resp.body = "CLOSED," + id + "\n";
  return resp;
}

HttpResponse AnykServer::Impl::HandleFlush() {
  const uint64_t e = epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  cache.Clear();
  HttpResponse resp;
  resp.body = "FLUSHED," + std::to_string(e) + "\n";
  return resp;
}

HttpResponse AnykServer::Impl::HandleStatz() {
  const CacheStats cs = cache.stats();
  const CursorStats curs = cursors.stats();
  std::ostringstream body;
  JsonWriter w(body);
  w.BeginObject();
  w.KV("epoch", epoch.load(std::memory_order_relaxed));
  w.KV("requests", requests.load(std::memory_order_relaxed));
  w.KV("rejected", rejected.load(std::memory_order_relaxed));
  w.Key("cache").BeginObject();
  w.KV("hits", static_cast<uint64_t>(cs.hits));
  w.KV("misses", static_cast<uint64_t>(cs.misses));
  w.KV("coalesced", static_cast<uint64_t>(cs.coalesced));
  w.KV("evictions", static_cast<uint64_t>(cs.evictions));
  w.KV("size", static_cast<uint64_t>(cs.size));
  w.KV("capacity", static_cast<uint64_t>(opts.cache_capacity));
  w.EndObject();
  w.Key("sessions").BeginObject();
  w.KV("live", static_cast<uint64_t>(gauge.live()));
  w.KV("peak", static_cast<uint64_t>(gauge.peak()));
  w.KV("max", static_cast<uint64_t>(gauge.max()));
  w.EndObject();
  w.Key("cursors").BeginObject();
  w.KV("live", static_cast<uint64_t>(curs.live));
  w.KV("opened", static_cast<uint64_t>(curs.opened));
  w.KV("closed", static_cast<uint64_t>(curs.closed));
  w.KV("expired", static_cast<uint64_t>(curs.expired));
  w.EndObject();
  // The planner decisions currently cached: one entry per ready prepared
  // query, LRU -> MRU, each with the algorithm `auto` resolves to.
  w.Key("planner").BeginObject();
  w.KV("version", static_cast<int64_t>(opts.planner_version));
  w.KV("shards", static_cast<uint64_t>(opts.shards));
  w.Key("prepared").BeginArray();
  cache.ForEachReady(
      [&](const std::string&, const std::shared_ptr<CacheEntry>& e) {
        w.BeginObject();
        w.KV("plan", e->handle->plan_name());
        w.KV("algorithm", AlgorithmName(e->handle->decision().algorithm));
        w.KV("summary", e->handle->decision().Summary());
        w.KV("prepare_seconds", e->prepare_seconds);
        w.EndObject();
      });
  w.EndArray();
  w.EndObject();
  w.EndObject();
  w.Finish();
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = body.str();
  return resp;
}

AnykServer::AnykServer(Database db, ServerOptions opts)
    : impl_(std::make_unique<Impl>(std::move(db), opts)) {}

AnykServer::~AnykServer() { Stop(); }

void AnykServer::Start() {
  ANYK_CHECK(!impl_->started) << "AnykServer::Start called twice";
  SetCheckFailureHandler(&ThrowingCheckHandler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ANYK_CHECK_GE(fd, 0) << "socket() failed";
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(impl_->opts.port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ANYK_CHECK(false) << "cannot bind 127.0.0.1:" << impl_->opts.port;
  }
  ANYK_CHECK_EQ(::listen(fd, 128), 0) << "listen() failed";
  socklen_t len = sizeof(addr);
  ANYK_CHECK_EQ(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                              &len), 0)
      << "getsockname() failed";
  impl_->listen_fd = fd;
  impl_->port = ntohs(addr.sin_port);

  impl_->started = true;
  impl_->accept_thread = std::thread([this] { impl_->AcceptLoop(); });
  const size_t workers = impl_->opts.workers == 0 ? 1 : impl_->opts.workers;
  impl_->workers.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

void AnykServer::Stop() {
  if (!impl_->started) return;
  if (!impl_->stop.exchange(true)) {
    impl_->queue_cv.NotifyAll();
    impl_->accept_thread.join();
    for (std::thread& w : impl_->workers) w.join();
    impl_->workers.clear();
    // Connections still queued but never served: close them outright. All
    // threads are joined, but the lock keeps the annotation contract honest
    // (and is free — nobody contends it anymore).
    {
      MutexLock lock(&impl_->queue_mu);
      for (int fd : impl_->conn_queue) ::close(fd);
      impl_->conn_queue.clear();
    }
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
}

int AnykServer::bound_port() const { return impl_->port; }

}  // namespace server
}  // namespace anyk
