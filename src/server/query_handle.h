// Type erasure between the HTTP layer and the templated any-k stack.
//
// A QueryHandle wraps one ShardedPreparedQuery<D> (for whichever of the
// four dioids the request asked for) together with its parsed statement; it
// is the value stored in the server's LRU cache and shared read-only by
// every session. With ServerOptions::shards == 1 that is a true passthrough
// around a single PreparedQuery<D>; with S > 1 the handle owns S per-shard
// pipelines over hash-partitioned data and every cursor merges their ranked
// streams (src/anyk/sharded_query.h). Open() starts a CursorStream — an
// EnumerationSession plus the projection / rank bookkeeping — which is the
// per-cursor mutable state and stays confined to one request at a time (the
// cursor mutex in cursor_manager.h enforces that).

#ifndef ANYK_SERVER_QUERY_HANDLE_H_
#define ANYK_SERVER_QUERY_HANDLE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "anyk/factory.h"
#include "anyk/prepared_query.h"
#include "anyk/sharded_query.h"
#include "dioid/max_plus.h"
#include "dioid/max_times.h"
#include "dioid/min_max.h"
#include "dioid/tropical.h"
#include "plan/planner.h"
#include "query/sql.h"
#include "storage/database.h"
#include "storage/value.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace anyk {
namespace server {

/// Called once per answer of a page, in rank order. `rank` is 1-based and
/// global across the cursor's pages; `values` follow the SELECT list.
using RowFn =
    std::function<void(size_t rank, double weight, const std::vector<Value>&)>;

/// One ranked answer stream, paged. Not thread-safe — the owning cursor
/// serializes access.
class CursorStream {
 public:
  virtual ~CursorStream() = default;

  /// Pull up to `n` answers, invoking `fn` for each. Returns how many were
  /// produced; after the stream is exhausted (done() true) it returns 0.
  virtual size_t FetchPage(size_t n, const RowFn& fn) = 0;

  virtual bool done() const = 0;
  virtual size_t produced() const = 0;
};

/// A prepared query behind a dioid-erased interface. Immutable after
/// construction; Open() may be called concurrently from any thread.
class QueryHandle {
 public:
  virtual ~QueryHandle() = default;
  virtual std::unique_ptr<CursorStream> Open(Algorithm algo) const = 0;
  virtual const char* plan_name() const = 0;
  /// The SQL LIMIT, 0 when absent — it bounds the whole cursor stream and is
  /// passed to each session as its EnumOptions::k_budget.
  virtual size_t limit() const = 0;
  /// The prepare-time planner decision: what `algorithm=auto` resolves to
  /// for every session of this handle (exposed via /statz).
  virtual const plan::PlanDecision& decision() const = 0;
};

namespace internal {

inline const char* PlanName(QueryPlan plan) {
  switch (plan) {
    case QueryPlan::kAcyclicTree: return "acyclic-tree";
    case QueryPlan::kCycleUnion: return "cycle-union";
    case QueryPlan::kGenericJoinBatch: return "generic-join-batch";
  }
  return "?";
}

template <SelectiveDioid D>
class TypedStream : public CursorStream {
 public:
  TypedStream(const ShardedPreparedQuery<D>* pq, Algorithm algo,
              size_t k_budget, const std::vector<uint32_t>* select_vars)
      : select_vars_(select_vars),
        session_(pq->NewSession(algo, BudgetedOptions(pq, k_budget))) {}

  size_t FetchPage(size_t n, const RowFn& fn) override {
    if (done_ || n == 0) return 0;
    batch_.resize(n);
    const size_t got = session_.NextBatch(batch_.data(), n);
    if (got < n) done_ = true;
    for (size_t b = 0; b < got; ++b) {
      const ResultRow<D>& row = batch_[b];
      const std::vector<Value>* values = &row.assignment;
      if (!select_vars_->empty()) {
        projected_.clear();
        for (uint32_t v : *select_vars_) projected_.push_back(row.assignment[v]);
        values = &projected_;
      }
      fn(++rank_, static_cast<double>(row.weight), *values);
    }
    return got;
  }

  bool done() const override { return done_; }
  size_t produced() const override { return rank_; }

 private:
  static EnumOptions BudgetedOptions(const ShardedPreparedQuery<D>* pq,
                                     size_t k_budget) {
    EnumOptions opts = pq->default_enum_options();
    opts.k_budget = k_budget;
    return opts;
  }

  const std::vector<uint32_t>* select_vars_;  // owned by the TypedHandle
  EnumerationSession<D> session_;
  std::vector<ResultRow<D>> batch_;
  std::vector<Value> projected_;
  size_t rank_ = 0;
  bool done_ = false;
};

template <SelectiveDioid D>
class TypedHandle : public QueryHandle {
 public:
  TypedHandle(const Database& db, SqlStatement stmt, ThreadPool* pool,
              size_t shards)
      : stmt_(std::move(stmt)) {
    typename ShardedPreparedQuery<D>::Options sopts;
    typename PreparedQuery<D>::Options& qopts = sopts.prepare;
    qopts.enum_opts.with_witness = false;
    // The planner budget is the SQL LIMIT of the statement (0 = unbounded):
    // the strategy for `algorithm=auto` is decided once here, at prepare
    // time — across all shards, via the merged-statistics decision — and
    // shared by every session of this handle.
    qopts.enum_opts.k_budget = stmt_.limit;
    qopts.pool = pool;
    qopts.auto_plan = true;
    sopts.shards = shards;
    // Cursors stay on the serial merge: a paged server session may sit idle
    // between requests, and parking S worker threads per open cursor would
    // let max_sessions cursors pin S * max_sessions threads.
    sopts.parallel_drain = false;
    pq_ = std::make_unique<ShardedPreparedQuery<D>>(db, stmt_.query, sopts);
  }

  std::unique_ptr<CursorStream> Open(Algorithm algo) const override {
    return std::make_unique<TypedStream<D>>(pq_.get(), algo, stmt_.limit,
                                            &stmt_.select_vars);
  }
  const char* plan_name() const override { return PlanName(pq_->plan()); }
  size_t limit() const override { return stmt_.limit; }
  const plan::PlanDecision& decision() const override {
    return pq_->decision();
  }

 private:
  SqlStatement stmt_;
  std::unique_ptr<ShardedPreparedQuery<D>> pq_;
};

}  // namespace internal

/// Prepare `stmt` under the named dioid (min-sum | max-sum | min-max |
/// max-times), partitioned into `shards` per-shard pipelines (1 =
/// unsharded). `pool` parallelizes preprocessing only and is not retained.
inline std::unique_ptr<QueryHandle> MakeQueryHandle(const Database& db,
                                                    const SqlStatement& stmt,
                                                    const std::string& dioid,
                                                    ThreadPool* pool,
                                                    size_t shards = 1) {
  if (dioid == "min-sum") {
    return std::make_unique<internal::TypedHandle<TropicalDioid>>(db, stmt,
                                                                  pool, shards);
  }
  if (dioid == "max-sum") {
    return std::make_unique<internal::TypedHandle<MaxPlusDioid>>(db, stmt,
                                                                 pool, shards);
  }
  if (dioid == "min-max") {
    return std::make_unique<internal::TypedHandle<MinMaxDioid>>(db, stmt,
                                                                pool, shards);
  }
  if (dioid == "max-times") {
    return std::make_unique<internal::TypedHandle<MaxTimesDioid>>(db, stmt,
                                                                  pool,
                                                                  shards);
  }
  ANYK_CHECK(false) << "unknown dioid '" << dioid
                    << "' (expected min-sum|max-sum|min-max|max-times)";
  return nullptr;
}

}  // namespace server
}  // namespace anyk

#endif  // ANYK_SERVER_QUERY_HANDLE_H_
