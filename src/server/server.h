// anykd — the any-k serving daemon.
//
// AnykServer owns one immutable Database and serves ranked enumeration over
// it via a line-oriented HTTP/1.1 protocol (docs/SERVER.md):
//
//   GET /healthz                      liveness probe
//   GET /statz                        JSON stats (cache, sessions, cursors)
//   GET|POST /v1/query?sql=..&k=..&algorithm=..&dioid=..&format=text|json
//       prepare (LRU-cached, single-flight) + stream the first page; when
//       more answers remain the response ends with a resumable cursor id
//   GET /v1/next?cursor=ID&k=N        next page of an open cursor
//   GET /v1/close?cursor=ID           drop a cursor early
//   POST /v1/flush                    bump the database epoch + clear cache
//
// Prepared queries are cached by (dioid, planner version, epoch,
// NormalizeSql(sql)) and shared by all sessions; every page request drains
// the cursor's own EnumerationSession, so concurrent clients never share
// mutable state (tests/server_test.cc byte-matches concurrent paged drains
// against serial RankedQuery drains, also under TSan). The planner version
// component means a cost-model change can never revive a plan decision
// cached under the old model (see docs/PLANNER.md).

#ifndef ANYK_SERVER_SERVER_H_
#define ANYK_SERVER_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "plan/cost_model.h"
#include "storage/database.h"

namespace anyk {
namespace server {

/// The prepared-query cache key. Exposed so tests can assert its exact
/// composition — in particular that two planner versions can never share an
/// entry. Components are joined with \x1f (US), which NormalizeSql can never
/// emit, so no component can masquerade as another. `shards` is a component
/// because the partitioned per-shard pipelines of a --shards S server differ
/// physically from the unsharded ones (same answers, different prepared
/// state) — a restart with a different shard count must never revive them.
inline std::string QueryCacheKey(const std::string& dioid, int planner_version,
                                 uint64_t epoch, size_t shards,
                                 const std::string& normalized_sql) {
  return dioid + "\x1f" + std::to_string(planner_version) + "\x1f" +
         std::to_string(epoch) + "\x1f" + std::to_string(shards) + "\x1f" +
         normalized_sql;
}

struct ServerOptions {
  int port = 0;               // 0 = pick an ephemeral port (see bound_port())
  size_t workers = 4;         // connection-serving threads
  size_t prepare_threads = 1; // preprocessing parallelism per preparation
  size_t cache_capacity = 16; // prepared queries kept (LRU beyond this)
  size_t max_sessions = 64;   // open cursors + in-flight first pages
  size_t max_page_k = 10000;  // largest accepted k= page size
  size_t default_page_k = 100;
  double cursor_ttl_seconds = 300;  // idle cursors reclaimed after this
  double qps = 0;                   // token-bucket rate limit (0 = off)
  double burst = 100;               // token-bucket burst allowance
  // Cache-key component: bumping the cost model (plan::kPlannerVersion)
  // invalidates every cached plan decision. Overridable so tests can force
  // a key mismatch without recompiling.
  int planner_version = plan::kPlannerVersion;
  // Intra-query data shards (--shards): every prepared query hash-partitions
  // its relations into S per-shard pipelines whose sessions merge through a
  // ranked union (src/anyk/sharded_query.h). Also a cache-key component.
  // 1 = unsharded passthrough.
  size_t shards = 1;
};

class AnykServer {
 public:
  /// Takes a copy of the database; it never changes while serving (use
  /// /v1/flush + restart-with-new-data for updates — the epoch exists so a
  /// future mutable path invalidates cache keys, see docs/SERVER.md).
  AnykServer(Database db, ServerOptions opts);
  ~AnykServer();
  AnykServer(const AnykServer&) = delete;
  AnykServer& operator=(const AnykServer&) = delete;

  /// Bind, listen and start the accept + worker threads. CHECK-fails if the
  /// port cannot be bound. Also installs the throwing check-failure handler
  /// (process-global) so bad requests surface as 400s instead of aborts.
  void Start();

  /// Stop accepting, drain the worker threads, close the listener.
  /// Idempotent; also called by the destructor.
  void Stop();

  /// The actual listening port (== options.port unless that was 0).
  int bound_port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace server
}  // namespace anyk

#endif  // ANYK_SERVER_SERVER_H_
