#include "storage/kernels.h"

#include <cstdlib>

namespace anyk {

namespace {

KernelKind ComputeDefaultKind() {
  if (const char* env = std::getenv("ANYK_KERNELS")) {
    KernelKind k;
    if (ParseKernelKind(env, &k) && k != KernelKind::kAuto) return k;
  }
  return KernelKind::kUnrolled;
}

}  // namespace

KernelKind DefaultKernelKind() {
  static const KernelKind kDefault = ComputeDefaultKind();
  return kDefault;
}

KernelKind ResolveKernelKind(KernelKind kind) {
  return kind == KernelKind::kAuto ? DefaultKernelKind() : kind;
}

bool ParseKernelKind(std::string_view name, KernelKind* out) {
  if (name == "scalar") {
    *out = KernelKind::kScalar;
    return true;
  }
  if (name == "unrolled") {
    *out = KernelKind::kUnrolled;
    return true;
  }
  if (name == "auto") {
    *out = KernelKind::kAuto;
    return true;
  }
  return false;
}

const char* KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kUnrolled:
      return "unrolled";
    case KernelKind::kAuto:
      return "auto";
  }
  return "?";
}

const GatherKernels& GetGatherKernels(KernelKind kind) {
  using namespace kernel_impl;
  static const GatherKernels kTable[2] = {
      {"scalar", &GatherScalar, &GatherToStrideScalar, &GatherU32Scalar,
       &GatherU32StridedScalar, &CopyStridedU32Scalar, &SpreadToStrideScalar},
      {"unrolled", &GatherUnrolled, &GatherToStrideUnrolled,
       &GatherU32Unrolled, &GatherU32StridedUnrolled, &CopyStridedU32Unrolled,
       &SpreadToStrideUnrolled},
  };
  return kTable[static_cast<size_t>(ResolveKernelKind(kind))];
}

}  // namespace anyk
