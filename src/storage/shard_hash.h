// Pinned partition hash for intra-query data sharding.
//
// ShardHash decides which shard a tuple lands in (storage/sharded_database.h)
// and therefore which shard serves which part of a ranked answer stream. The
// assignment leaks into user-visible artifacts — per-shard witnesses, the
// server's cache keys (which embed the shard count), checked-in bench
// baselines — so the algorithm is PINNED: it must produce the same value for
// the same key on every platform, build and release, forever. shard_test's
// known-hash vector enforces this; changing any constant below is a breaking
// change that invalidates persisted cache keys and requires bumping the
// server cache epoch.
//
// It is deliberately a *separate* function from KeyHash (storage/value.h):
// KeyHash feeds in-process hash tables and may be tuned freely; ShardHash
// may not. The mixer is murmur3's fmix64 (distinct constants from KeyHash's
// splitmix64 finalizer, so accidental unification shows up in tests), chained
// with a length-seeded accumulator.
//
// Shard selection uses the multiply-shift range reduction ("fastrange")
// instead of modulo: no division on the per-tuple partition path, and the
// high hash bits — the best-mixed ones — pick the shard.

#ifndef ANYK_STORAGE_SHARD_HASH_H_
#define ANYK_STORAGE_SHARD_HASH_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "storage/value.h"

namespace anyk {

/// Pinned 64-bit hash of a partition key (usually a single join-variable
/// value; composite keys hash all components order-sensitively).
inline uint64_t ShardHash(std::span<const Value> key) {
  // Pinned constants — see the header comment before touching these.
  uint64_t h = 0x8C2E4A15D3F7B961ULL ^ (key.size() * 0xA24BAED4963EE407ULL);
  for (Value v : key) {
    uint64_t x = static_cast<uint64_t>(v);
    x ^= x >> 33;  // murmur3 fmix64
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    h = (h ^ x) * 0x2545F4914F6CDD1DULL;
    h ^= h >> 29;
  }
  return h;
}

/// Single-value convenience overload (the common one-join-variable case).
inline uint64_t ShardHash(Value v) {
  return ShardHash(std::span<const Value>(&v, 1));
}

/// Map a hash to [0, num_shards) via multiply-shift range reduction.
/// `num_shards` must be >= 1; with 1 shard everything maps to shard 0.
inline uint32_t ShardOf(uint64_t hash, size_t num_shards) {
  return static_cast<uint32_t>(
      (static_cast<unsigned __int128>(hash) * num_shards) >> 64);
}

}  // namespace anyk

#endif  // ANYK_STORAGE_SHARD_HASH_H_
