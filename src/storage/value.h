// Basic value and key types for the storage layer.
//
// All attribute values are dictionary-encoded 64-bit integers (the paper's
// model charges O(1) per data element; real systems would sit a dictionary in
// front). Composite join keys are short runs of values with a mixing hash.

#ifndef ANYK_STORAGE_VALUE_H_
#define ANYK_STORAGE_VALUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace anyk {

/// A single attribute value (dictionary-encoded).
using Value = int64_t;

/// A materialized composite key (projection of a row onto key columns).
using Key = std::vector<Value>;

/// 64-bit mixer (splitmix64 finalizer) — good avalanche for hash combining.
inline uint64_t MixHash(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Hash functor for composite keys.
struct KeyHash {
  size_t operator()(const Key& k) const {
    uint64_t h = 0x2545F4914F6CDD1DULL ^ (k.size() * 0x9E3779B97F4A7C15ULL);
    for (Value v : k) {
      h = MixHash(h ^ static_cast<uint64_t>(v));
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace anyk

#endif  // ANYK_STORAGE_VALUE_H_
