// Row-major reference table: the pre-columnar storage layout, kept as a
// *reference reader* only.
//
// PR-8 converted Relation to structure-of-arrays column segments; everything
// in src/ now reads columnar. To still be able to byte-match results against
// a genuinely row-oriented pipeline — and to measure what the conversion
// bought (bench_ttf's "rowref" series) — this header preserves the old
// layout: one interleaved values_ array (row r occupies
// values_[r*arity .. r*arity+arity)) plus the weight array, with the old
// span-returning Row(). Tests (tests/columnar_test.cc) drive a reference
// ranked join over it as the oracle; nothing in the library proper links
// against this.

#ifndef ANYK_STORAGE_ROW_REFERENCE_H_
#define ANYK_STORAGE_ROW_REFERENCE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "storage/relation.h"
#include "storage/value.h"
#include "util/logging.h"

namespace anyk {

/// Interleaved row-major table (the seed repo's Relation layout).
class RowMajorTable {
 public:
  RowMajorTable() = default;
  explicit RowMajorTable(size_t arity) : arity_(arity) {}

  /// Snapshot a columnar relation into row-major bytes.
  explicit RowMajorTable(const Relation& rel) : arity_(rel.arity()) {
    const size_t rows = rel.NumRows();
    values_.resize(rows * arity_);
    weights_.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < arity_; ++c) values_[r * arity_ + c] = rel.At(r, c);
      weights_[r] = rel.Weight(r);
    }
  }

  size_t arity() const { return arity_; }
  size_t NumRows() const { return weights_.size(); }

  void AddRow(std::span<const Value> row, double weight) {
    ANYK_DCHECK(row.size() == arity_);
    values_.insert(values_.end(), row.begin(), row.end());
    weights_.push_back(weight);
  }

  /// The old span-returning row accessor: contiguous interleaved bytes.
  std::span<const Value> Row(size_t r) const {
    return {values_.data() + r * arity_, arity_};
  }
  Value At(size_t r, size_t c) const { return values_[r * arity_ + c]; }
  double Weight(size_t r) const { return weights_[r]; }

  void Reserve(size_t rows) {
    values_.reserve(rows * arity_);
    weights_.reserve(rows);
  }

 private:
  size_t arity_ = 0;
  std::vector<Value> values_;   // rows * arity_, interleaved
  std::vector<double> weights_;
};

}  // namespace anyk

#endif  // ANYK_STORAGE_ROW_REFERENCE_H_
