#include "storage/csv.h"

#include <charconv>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/logging.h"

namespace anyk {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, delim)) fields.push_back(field);
  return fields;
}

int64_t ParseInt(const std::string& s, const std::string& path) {
  int64_t v = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  auto [ptr, ec] = std::from_chars(begin, end, v);
  ANYK_CHECK(ec == std::errc()) << "bad integer '" << s << "' in " << path;
  return v;
}

double ParseDouble(const std::string& s, const std::string& path) {
  try {
    return std::stod(s);
  } catch (...) {
    ANYK_CHECK(false) << "bad weight '" << s << "' in " << path;
    return 0;
  }
}

}  // namespace

Relation& LoadRelationCsv(Database* db, const std::string& name,
                          const std::string& path, const CsvOptions& opts) {
  std::ifstream in(path);
  ANYK_CHECK(in.good()) << "cannot open " << path;
  std::string line;
  if (opts.has_header) std::getline(in, line);

  size_t arity = 0;
  Relation* rel = nullptr;
  std::vector<Value> row;
  size_t loaded = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    auto fields = SplitLine(line, opts.delimiter);
    if (rel == nullptr) {
      const size_t cols = fields.size();
      ANYK_CHECK(opts.weight_column < static_cast<int>(cols))
          << "weight column out of range in " << path;
      arity = cols - (opts.weight_column >= 0 ? 1 : 0);
      ANYK_CHECK_GE(arity, 1u) << "no value columns in " << path;
      rel = &db->AddRelation(name, arity);
    }
    row.clear();
    double weight = 0;
    for (size_t c = 0; c < fields.size(); ++c) {
      if (static_cast<int>(c) == opts.weight_column) {
        weight = ParseDouble(fields[c], path);
      } else {
        row.push_back(ParseInt(fields[c], path));
      }
    }
    ANYK_CHECK_EQ(row.size(), arity) << "ragged row in " << path;
    rel->AddRow(row, weight);
    if (opts.limit > 0 && ++loaded >= opts.limit) break;
  }
  ANYK_CHECK(rel != nullptr) << "empty CSV " << path;
  return *rel;
}

void SaveRelationCsv(const Relation& rel, const std::string& path,
                     char delimiter) {
  std::ofstream out(path);
  ANYK_CHECK(out.good()) << "cannot write " << path;
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    for (size_t c = 0; c < rel.arity(); ++c) {
      out << rel.At(r, c) << delimiter;
    }
    out << rel.Weight(r) << "\n";
  }
}

}  // namespace anyk
