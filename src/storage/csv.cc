#include "storage/csv.h"

#include <charconv>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/logging.h"

namespace anyk {

namespace {

// Manual split: istringstream+getline would drop a trailing empty field
// ("1,2," must be three fields so the ragged-row check can fire).
std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t end = line.find(delim, start);
    if (end == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, end - start));
    start = end + 1;
  }
}

// "path:line" prefix for loader diagnostics.
std::string At(const std::string& path, size_t line) {
  return path + ":" + std::to_string(line);
}

int64_t ParseInt(const std::string& s, const std::string& path, size_t line) {
  int64_t v = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  auto [ptr, ec] = std::from_chars(begin, end, v);
  while (ptr < end && (*ptr == ' ' || *ptr == '\t')) ++ptr;
  ANYK_CHECK(ec == std::errc() && ptr == end)
      << At(path, line) << ": bad integer '" << s << "'";
  return v;
}

double ParseDouble(const std::string& s, const std::string& path, size_t line) {
  try {
    size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    while (consumed < s.size() &&
           (s[consumed] == ' ' || s[consumed] == '\t')) {
      ++consumed;
    }
    ANYK_CHECK(consumed == s.size())
        << At(path, line) << ": bad weight '" << s << "'";
    return v;
  } catch (const CheckError&) {
    throw;
  } catch (...) {
    ANYK_CHECK(false) << At(path, line) << ": bad weight '" << s << "'";
    return 0;
  }
}

}  // namespace

Relation& LoadRelationCsv(Database* db, const std::string& name,
                          const std::string& path, const CsvOptions& opts) {
  // An explicit weight_column and weight_last are mutually exclusive: with
  // weight_last the column is recomputed from the first data row's width,
  // silently overriding a weight_column that may well be valid for the
  // data. Reject the ambiguity instead of guessing which one was meant.
  ANYK_CHECK(!(opts.weight_last && opts.weight_column >= 0))
      << path << ": CsvOptions sets both weight_column ("
      << opts.weight_column
      << ") and weight_last; pick one";
  std::ifstream in(path);
  ANYK_CHECK(in.good()) << "cannot open " << path;
  std::string line;
  size_t lineno = 0;
  if (opts.has_header && std::getline(in, line)) ++lineno;

  size_t arity = 0;
  int weight_column = opts.weight_column;
  Relation* rel = nullptr;
  std::vector<Value> row;
  size_t loaded = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = SplitLine(line, opts.delimiter);
    if (rel == nullptr) {
      const size_t cols = fields.size();
      if (opts.weight_last) weight_column = static_cast<int>(cols) - 1;
      ANYK_CHECK(weight_column < static_cast<int>(cols))
          << At(path, lineno) << ": weight column " << weight_column
          << " out of range (row has " << cols << " columns)";
      arity = cols - (weight_column >= 0 ? 1 : 0);
      ANYK_CHECK(arity >= 1)
          << At(path, lineno) << ": no value columns";
      rel = &db->AddRelation(name, arity);
    }
    const size_t expected_cols = arity + (weight_column >= 0 ? 1 : 0);
    ANYK_CHECK(fields.size() == expected_cols)
        << At(path, lineno) << ": ragged row (expected " << expected_cols
        << " columns, got " << fields.size() << ")";
    row.clear();
    double weight = 0;
    for (size_t c = 0; c < fields.size(); ++c) {
      if (static_cast<int>(c) == weight_column) {
        weight = ParseDouble(fields[c], path, lineno);
      } else {
        row.push_back(ParseInt(fields[c], path, lineno));
      }
    }
    rel->AddRow(row, weight);
    if (opts.limit > 0 && ++loaded >= opts.limit) break;
  }
  // Header-only files land here too: the header was consumed above, so
  // "empty" would mislead — the file exists and may even be non-empty, it
  // just has no data rows to infer the arity (and load anything) from.
  ANYK_CHECK(rel != nullptr) << "no data rows in " << path;
  return *rel;
}

void SaveRelationCsv(const Relation& rel, const std::string& path,
                     char delimiter) {
  std::ofstream out(path);
  ANYK_CHECK(out.good()) << "cannot write " << path;
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    for (size_t c = 0; c < rel.arity(); ++c) {
      out << rel.At(r, c) << delimiter;
    }
    out << rel.Weight(r) << "\n";
  }
}

}  // namespace anyk
