#include "storage/csv.h"

#include <charconv>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/logging.h"

namespace anyk {

namespace {

// Manual split: istringstream+getline would drop a trailing empty field
// ("1,2," must be three fields so the ragged-row check can fire).
std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t end = line.find(delim, start);
    if (end == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, end - start));
    start = end + 1;
  }
}

// "path:line" prefix for loader diagnostics.
std::string At(const std::string& path, size_t line) {
  return path + ":" + std::to_string(line);
}

int64_t ParseInt(const std::string& s, const std::string& path, size_t line) {
  int64_t v = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  auto [ptr, ec] = std::from_chars(begin, end, v);
  while (ptr < end && (*ptr == ' ' || *ptr == '\t')) ++ptr;
  ANYK_CHECK(ec == std::errc() && ptr == end)
      << At(path, line) << ": bad integer '" << s << "'";
  return v;
}

// std::from_chars, not std::stod: stod honors the process locale, so under
// a comma-decimal locale (de_DE style) it silently truncates "3.5" to 3.
// from_chars always parses the C locale ("." radix) regardless of any
// setlocale() the embedding process performed.
double ParseDouble(const std::string& s, const std::string& path, size_t line) {
  double v = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  // from_chars rejects an explicit leading '+' (stod accepted it, and CSVs
  // in the wild carry it); skip it when a digit or '.' follows.
  if (begin + 1 < end && *begin == '+' &&
      ((begin[1] >= '0' && begin[1] <= '9') || begin[1] == '.')) {
    ++begin;
  }
  auto [ptr, ec] = std::from_chars(begin, end, v);
  while (ptr < end && (*ptr == ' ' || *ptr == '\t')) ++ptr;
  ANYK_CHECK(ec == std::errc() && ptr == end)
      << At(path, line) << ": bad weight '" << s << "'";
  // NaN is incomparable and ±∞ absorbs ⊗, so either breaks the total order
  // a selective dioid needs (Section 2.2); reject at the boundary.
  ANYK_CHECK(std::isfinite(v))
      << At(path, line) << ": non-finite weight '" << s << "'";
  return v;
}

}  // namespace

Relation& LoadRelationCsv(Database* db, const std::string& name,
                          const std::string& path, const CsvOptions& opts) {
  // An explicit weight_column and weight_last are mutually exclusive: with
  // weight_last the column is recomputed from the first data row's width,
  // silently overriding a weight_column that may well be valid for the
  // data. Reject the ambiguity instead of guessing which one was meant.
  ANYK_CHECK(!(opts.weight_last && opts.weight_column >= 0))
      << path << ": CsvOptions sets both weight_column ("
      << opts.weight_column
      << ") and weight_last; pick one";
  std::ifstream in(path);
  ANYK_CHECK(in.good()) << "cannot open " << path;
  std::string line;
  size_t lineno = 0;
  if (opts.has_header && std::getline(in, line)) ++lineno;

  size_t arity = 0;
  int weight_column = opts.weight_column;
  Relation* rel = nullptr;
  // Parsed rows are staged column-major into fixed-size shards and appended
  // with one contiguous insert per column segment (AppendColumnChunk)
  // instead of a per-row push into every column.
  constexpr size_t kShardRows = 4096;
  std::vector<std::vector<Value>> shard_cols;
  std::vector<double> shard_weights;
  std::vector<const Value*> shard_ptrs;
  const auto flush_shard = [&] {
    if (shard_weights.empty()) return;
    shard_ptrs.clear();
    for (const auto& col : shard_cols) shard_ptrs.push_back(col.data());
    rel->AppendColumnChunk(shard_ptrs, shard_weights);
    for (auto& col : shard_cols) col.clear();
    shard_weights.clear();
  };
  size_t loaded = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = SplitLine(line, opts.delimiter);
    if (rel == nullptr) {
      const size_t cols = fields.size();
      if (opts.weight_last) weight_column = static_cast<int>(cols) - 1;
      ANYK_CHECK(weight_column < static_cast<int>(cols))
          << At(path, lineno) << ": weight column " << weight_column
          << " out of range (row has " << cols << " columns)";
      arity = cols - (weight_column >= 0 ? 1 : 0);
      ANYK_CHECK(arity >= 1)
          << At(path, lineno) << ": no value columns";
      rel = &db->AddRelation(name, arity);
      shard_cols.resize(arity);
      for (auto& col : shard_cols) col.reserve(kShardRows);
      shard_weights.reserve(kShardRows);
    }
    const size_t expected_cols = arity + (weight_column >= 0 ? 1 : 0);
    ANYK_CHECK(fields.size() == expected_cols)
        << At(path, lineno) << ": ragged row (expected " << expected_cols
        << " columns, got " << fields.size() << ")";
    double weight = 0;
    size_t out_c = 0;
    for (size_t c = 0; c < fields.size(); ++c) {
      if (static_cast<int>(c) == weight_column) {
        weight = ParseDouble(fields[c], path, lineno);
      } else {
        shard_cols[out_c++].push_back(ParseInt(fields[c], path, lineno));
      }
    }
    shard_weights.push_back(weight);
    if (shard_weights.size() >= kShardRows) flush_shard();
    if (opts.limit > 0 && ++loaded >= opts.limit) break;
  }
  if (rel != nullptr) flush_shard();
  // Header-only files land here too: the header was consumed above, so
  // "empty" would mislead — the file exists and may even be non-empty, it
  // just has no data rows to infer the arity (and load anything) from.
  ANYK_CHECK(rel != nullptr) << "no data rows in " << path;
  return *rel;
}

void SaveRelationCsv(const Relation& rel, const std::string& path,
                     char delimiter) {
  std::ofstream out(path);
  ANYK_CHECK(out.good()) << "cannot write " << path;
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    for (size_t c = 0; c < rel.arity(); ++c) {
      out << rel.At(r, c) << delimiter;
    }
    out << rel.Weight(r) << "\n";
  }
}

}  // namespace anyk
