// Vectorized bind kernels over columnar segments (docs/ARCHITECTURE.md,
// "Memory layout").
//
// The enumeration hot path moves batches of values between three flat
// representations: column segments (storage/relation.h), dense row-id lists
// (GroupIndex / StageGraph CSR arrays) and ResultRow slots. Each move is one
// of a handful of primitive loops — gather, strided gather, strided copy,
// column spread — plus the dioid-specific elementwise ⊗ accumulations. This
// header packages those loops as a small *kernel registry*: a table of
// function pointers per implementation flavor, selected ONCE at prepare
// time (EnumOptions::kernels → the enumerator constructors and
// BuildStageGraph pin a `const GatherKernels*`), so the per-batch code calls
// straight through a pointer with no per-element dispatch.
//
// Two flavors are registered (the registry shape follows Themis's CPU
// backend table, src/acceleration/cpu_backend*.cpp — one struct of hooks
// per backend, looked up by enum):
//   * kScalar   — plain loops; the baseline and the fallback for tests.
//   * kUnrolled — 4x manually unrolled bodies; breaks the loop-carried
//     bookkeeping dependence so the OoO core keeps 4 loads in flight, and
//     gives the auto-vectorizer straight-line gather bodies to work with.
// Both flavors are exact — fuzz_test cross-checks them against naive loops
// on adversarial (skewed, all-ties, hash-colliding) column data, and the
// differential corpus byte-matches results across flavors.
//
// All kernels are allocation-free: callers own every buffer (arena scratch
// in the enumerators, stack/members in the builders), preserving the
// zero-global-alloc enumeration invariant (invariants_test).

#ifndef ANYK_STORAGE_KERNELS_H_
#define ANYK_STORAGE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "dioid/dioid.h"
#include "storage/value.h"

namespace anyk {

/// Kernel implementation flavor. kAuto defers to DefaultKernelKind() (the
/// build's preferred flavor, overridable via the ANYK_KERNELS environment
/// variable — "scalar" or "unrolled").
enum class KernelKind : uint8_t { kScalar = 0, kUnrolled = 1, kAuto = 255 };

/// Value-movement kernels, independent of the dioid.
struct GatherKernels {
  const char* name;

  // out[i] = col[ids[i]]                       (column gather by row id)
  void (*gather)(const Value* col, const uint32_t* ids, size_t n, Value* out);

  // out_base[i * out_stride] = col[ids[i]]     (gather into a strided
  // destination, e.g. one column of a row-major key scratch matrix)
  void (*gather_to_stride)(const Value* col, const uint32_t* ids, size_t n,
                           Value* out_base, size_t out_stride);

  // out[i] = col[ids[i]]                       (row-id indirection)
  void (*gather_u32)(const uint32_t* col, const uint32_t* ids, size_t n,
                     uint32_t* out);

  // out[i] = base[ids[i] * stride + offset]    (strided source gather, e.g.
  // the pin_rows / pin_weights arrays laid out row-major by pin)
  void (*gather_u32_strided)(const uint32_t* base, size_t stride,
                             size_t offset, const uint32_t* ids, size_t n,
                             uint32_t* out);

  // out[i] = base[i * stride + offset]         (strided sequential copy,
  // e.g. one stage's column of the batch state matrix)
  void (*copy_strided_u32)(const uint32_t* base, size_t stride, size_t offset,
                           size_t n, uint32_t* out);

  // out_base[i * out_stride] = col[i]          (spread one dense column into
  // a row-major scratch matrix; the column-strided key-build primitive)
  void (*spread_to_stride)(const Value* col, size_t n, Value* out_base,
                           size_t out_stride);
};

/// Dioid-specific elementwise kernels (⊗ accumulation over flat arrays).
template <SelectiveDioid D>
struct DioidKernels {
  using V = typename D::Value;
  const char* name;

  // out[i] = a[i] ⊗ b[i]                       (e.g. member_val = w ⊗ π1)
  void (*combine)(const V* a, const V* b, size_t n, V* out);

  // acc[i] = acc[i] ⊗ vals[ids[i]]             (batched weight accumulation)
  void (*combine_gather)(const V* vals, const uint32_t* ids, size_t n,
                         V* acc);
};

namespace kernel_impl {

// ---- scalar flavor ----

inline void GatherScalar(const Value* col, const uint32_t* ids, size_t n,
                         Value* out) {
  for (size_t i = 0; i < n; ++i) out[i] = col[ids[i]];
}

inline void GatherToStrideScalar(const Value* col, const uint32_t* ids,
                                 size_t n, Value* out_base,
                                 size_t out_stride) {
  for (size_t i = 0; i < n; ++i) out_base[i * out_stride] = col[ids[i]];
}

inline void GatherU32Scalar(const uint32_t* col, const uint32_t* ids,
                            size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = col[ids[i]];
}

inline void GatherU32StridedScalar(const uint32_t* base, size_t stride,
                                   size_t offset, const uint32_t* ids,
                                   size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = base[ids[i] * stride + offset];
}

inline void CopyStridedU32Scalar(const uint32_t* base, size_t stride,
                                 size_t offset, size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = base[i * stride + offset];
}

inline void SpreadToStrideScalar(const Value* col, size_t n, Value* out_base,
                                 size_t out_stride) {
  for (size_t i = 0; i < n; ++i) out_base[i * out_stride] = col[i];
}

// ---- 4x-unrolled flavor ----

inline void GatherUnrolled(const Value* col, const uint32_t* ids, size_t n,
                           Value* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const Value v0 = col[ids[i + 0]];
    const Value v1 = col[ids[i + 1]];
    const Value v2 = col[ids[i + 2]];
    const Value v3 = col[ids[i + 3]];
    out[i + 0] = v0;
    out[i + 1] = v1;
    out[i + 2] = v2;
    out[i + 3] = v3;
  }
  for (; i < n; ++i) out[i] = col[ids[i]];
}

inline void GatherToStrideUnrolled(const Value* col, const uint32_t* ids,
                                   size_t n, Value* out_base,
                                   size_t out_stride) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const Value v0 = col[ids[i + 0]];
    const Value v1 = col[ids[i + 1]];
    const Value v2 = col[ids[i + 2]];
    const Value v3 = col[ids[i + 3]];
    out_base[(i + 0) * out_stride] = v0;
    out_base[(i + 1) * out_stride] = v1;
    out_base[(i + 2) * out_stride] = v2;
    out_base[(i + 3) * out_stride] = v3;
  }
  for (; i < n; ++i) out_base[i * out_stride] = col[ids[i]];
}

inline void GatherU32Unrolled(const uint32_t* col, const uint32_t* ids,
                              size_t n, uint32_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32_t v0 = col[ids[i + 0]];
    const uint32_t v1 = col[ids[i + 1]];
    const uint32_t v2 = col[ids[i + 2]];
    const uint32_t v3 = col[ids[i + 3]];
    out[i + 0] = v0;
    out[i + 1] = v1;
    out[i + 2] = v2;
    out[i + 3] = v3;
  }
  for (; i < n; ++i) out[i] = col[ids[i]];
}

inline void GatherU32StridedUnrolled(const uint32_t* base, size_t stride,
                                     size_t offset, const uint32_t* ids,
                                     size_t n, uint32_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32_t v0 = base[ids[i + 0] * stride + offset];
    const uint32_t v1 = base[ids[i + 1] * stride + offset];
    const uint32_t v2 = base[ids[i + 2] * stride + offset];
    const uint32_t v3 = base[ids[i + 3] * stride + offset];
    out[i + 0] = v0;
    out[i + 1] = v1;
    out[i + 2] = v2;
    out[i + 3] = v3;
  }
  for (; i < n; ++i) out[i] = base[ids[i] * stride + offset];
}

inline void CopyStridedU32Unrolled(const uint32_t* base, size_t stride,
                                   size_t offset, size_t n, uint32_t* out) {
  size_t i = 0;
  const uint32_t* p = base + offset;
  for (; i + 4 <= n; i += 4) {
    const uint32_t v0 = p[(i + 0) * stride];
    const uint32_t v1 = p[(i + 1) * stride];
    const uint32_t v2 = p[(i + 2) * stride];
    const uint32_t v3 = p[(i + 3) * stride];
    out[i + 0] = v0;
    out[i + 1] = v1;
    out[i + 2] = v2;
    out[i + 3] = v3;
  }
  for (; i < n; ++i) out[i] = p[i * stride];
}

inline void SpreadToStrideUnrolled(const Value* col, size_t n,
                                   Value* out_base, size_t out_stride) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    out_base[(i + 0) * out_stride] = col[i + 0];
    out_base[(i + 1) * out_stride] = col[i + 1];
    out_base[(i + 2) * out_stride] = col[i + 2];
    out_base[(i + 3) * out_stride] = col[i + 3];
  }
  for (; i < n; ++i) out_base[i * out_stride] = col[i];
}

template <SelectiveDioid D>
void CombineScalar(const typename D::Value* a, const typename D::Value* b,
                   size_t n, typename D::Value* out) {
  for (size_t i = 0; i < n; ++i) out[i] = D::Combine(a[i], b[i]);
}

template <SelectiveDioid D>
void CombineGatherScalar(const typename D::Value* vals, const uint32_t* ids,
                         size_t n, typename D::Value* acc) {
  for (size_t i = 0; i < n; ++i) acc[i] = D::Combine(acc[i], vals[ids[i]]);
}

template <SelectiveDioid D>
void CombineUnrolled(const typename D::Value* a, const typename D::Value* b,
                     size_t n, typename D::Value* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    out[i + 0] = D::Combine(a[i + 0], b[i + 0]);
    out[i + 1] = D::Combine(a[i + 1], b[i + 1]);
    out[i + 2] = D::Combine(a[i + 2], b[i + 2]);
    out[i + 3] = D::Combine(a[i + 3], b[i + 3]);
  }
  for (; i < n; ++i) out[i] = D::Combine(a[i], b[i]);
}

template <SelectiveDioid D>
void CombineGatherUnrolled(const typename D::Value* vals, const uint32_t* ids,
                           size_t n, typename D::Value* acc) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[i + 0] = D::Combine(acc[i + 0], vals[ids[i + 0]]);
    acc[i + 1] = D::Combine(acc[i + 1], vals[ids[i + 1]]);
    acc[i + 2] = D::Combine(acc[i + 2], vals[ids[i + 2]]);
    acc[i + 3] = D::Combine(acc[i + 3], vals[ids[i + 3]]);
  }
  for (; i < n; ++i) acc[i] = D::Combine(acc[i], vals[ids[i]]);
}

}  // namespace kernel_impl

/// The build's preferred flavor: kUnrolled, unless the ANYK_KERNELS
/// environment variable says "scalar" (an escape hatch for debugging and
/// for A/B runs without recompiling; bench_ttf sets it per series).
KernelKind DefaultKernelKind();

/// Resolve kAuto to the default; identity otherwise.
KernelKind ResolveKernelKind(KernelKind kind);

/// Parse "scalar" / "unrolled" / "auto"; returns false (leaving *out
/// untouched) on anything else.
bool ParseKernelKind(std::string_view name, KernelKind* out);

const char* KernelKindName(KernelKind kind);

/// The registry row for `kind` (kAuto resolves through DefaultKernelKind).
/// The returned reference has static storage duration — prepare-time code
/// keeps the pointer for the query's lifetime.
const GatherKernels& GetGatherKernels(KernelKind kind);

/// Dioid-kernel registry row for `kind`; same lifetime contract. One static
/// table per dioid instantiation.
template <SelectiveDioid D>
const DioidKernels<D>& GetDioidKernels(KernelKind kind) {
  static const DioidKernels<D> kTable[2] = {
      {"scalar", &kernel_impl::CombineScalar<D>,
       &kernel_impl::CombineGatherScalar<D>},
      {"unrolled", &kernel_impl::CombineUnrolled<D>,
       &kernel_impl::CombineGatherUnrolled<D>},
  };
  return kTable[static_cast<size_t>(ResolveKernelKind(kind))];
}

}  // namespace anyk

#endif  // ANYK_STORAGE_KERNELS_H_
