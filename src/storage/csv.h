// CSV import/export for relations.
//
// Values are 64-bit integers (dictionary-encode strings upstream); one
// column may be designated as the tuple weight. This is the practical entry
// point for loading edge lists like the paper's Bitcoin OTC snapshot
// (source,target,rating,...).

#ifndef ANYK_STORAGE_CSV_H_
#define ANYK_STORAGE_CSV_H_

#include <cstddef>
#include <string>

#include "storage/database.h"

namespace anyk {

struct CsvOptions {
  char delimiter = ',';
  bool has_header = false;
  // Index of the weight column (zero-based), or -1 for weightless tuples
  // (weight 0).
  int weight_column = -1;
  // Use the last column of every row as the weight. Resolved once the first
  // data row determines the column count. Mutually exclusive with an
  // explicit weight_column (>= 0): the loader rejects the combination
  // rather than silently preferring one.
  bool weight_last = false;
  // Maximum rows to load (0 = all).
  size_t limit = 0;
};

/// Load `path` into a new relation `name`; arity is the number of non-weight
/// columns of the first row. CHECK-fails on malformed input; messages carry
/// `path:line` so CLI users can locate the offending row.
Relation& LoadRelationCsv(Database* db, const std::string& name,
                          const std::string& path, const CsvOptions& opts = {});

/// Write a relation as CSV with the weight as the last column.
void SaveRelationCsv(const Relation& rel, const std::string& path,
                     char delimiter = ',');

}  // namespace anyk

#endif  // ANYK_STORAGE_CSV_H_
