// Open-addressing flat key index: the linear-time, constant-lookup structure
// the paper assumes for tuple access (Section 2.3), without per-node heap
// cells or pointer chasing.
//
// FlatKeyIndex interns fixed-width composite keys (projections of rows onto
// key columns; attribute values are already dictionary-encoded int64s, see
// storage/value.h) into dense ids 0..NumKeys()-1 in first-appearance order.
// Storage is two flat arrays:
//   * key_pool_ — the distinct keys back to back (width values each),
//   * slots_    — a power-of-two open-addressing table of key ids probed
//                 linearly, so a lookup touches one cache line in the common
//                 case and never follows a pointer.
//
// Both GroupIndex and the stage-graph connector maps are built on this; the
// dense ids double as group/connector ids, which is what makes the
// "connector" indirection of Fig. 3 an array offset instead of a hash-map
// node.

#ifndef ANYK_STORAGE_FLAT_INDEX_H_
#define ANYK_STORAGE_FLAT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "storage/value.h"
#include "util/logging.h"

namespace anyk {

class FlatKeyIndex {
 public:
  static constexpr uint32_t kEmptySlot = UINT32_MAX;

  FlatKeyIndex() = default;

  /// Prepare for keys of `width` values, expecting about `expected_keys`
  /// distinct keys (the table grows by doubling if exceeded).
  /// `expected_keys = 0` is valid and yields the minimum 4-slot table —
  /// relations and connector stages can legitimately be empty.
  void Init(size_t width, size_t expected_keys) {
    width_ = width;
    key_pool_.clear();
    key_pool_.reserve(width * expected_keys);
    num_keys_ = 0;
    const size_t cap = TableCapacity(expected_keys);
    slots_.assign(cap, kEmptySlot);
    mask_ = cap - 1;
  }

  size_t width() const { return width_; }
  size_t NumKeys() const { return num_keys_; }

  /// Dense id of `key`, interning it if new. Amortized O(width). Init()
  /// must have been called first (the table never self-initializes).
  uint32_t Intern(std::span<const Value> key) {
    ANYK_DCHECK(key.size() == width_);
    ANYK_CHECK(!slots_.empty()) << "FlatKeyIndex::Intern before Init";
    // Probe first, grow only on an actual insert: the table always holds at
    // most 75% load (Grow runs before the insert that would exceed it), so
    // this scan is guaranteed an empty slot and re-interning an existing
    // key exactly at the load-factor boundary cannot trigger a spurious
    // doubling.
    size_t slot = Hash(key.data()) & mask_;
    while (true) {
      const uint32_t id = slots_[slot];
      if (id == kEmptySlot) break;
      if (Equal(id, key.data())) return id;
      slot = (slot + 1) & mask_;
    }
    if (num_keys_ + 1 > (mask_ + 1) - (mask_ + 1) / 4) {
      Grow();
      slot = Hash(key.data()) & mask_;
      while (slots_[slot] != kEmptySlot) slot = (slot + 1) & mask_;
    }
    slots_[slot] = static_cast<uint32_t>(num_keys_);
    key_pool_.insert(key_pool_.end(), key.begin(), key.end());
    return static_cast<uint32_t>(num_keys_++);
  }

  /// Dense id of `key`, or -1 if it was never interned. O(width) expected.
  int64_t Find(std::span<const Value> key) const {
    ANYK_DCHECK(key.size() == width_);
    if (num_keys_ == 0) return -1;
    size_t slot = Hash(key.data()) & mask_;
    while (true) {
      const uint32_t id = slots_[slot];
      if (id == kEmptySlot) return -1;
      if (Equal(id, key.data())) return static_cast<int64_t>(id);
      slot = (slot + 1) & mask_;
    }
  }

  /// The interned key with dense id `id`.
  std::span<const Value> KeyAt(uint32_t id) const {
    return {key_pool_.data() + static_cast<size_t>(id) * width_, width_};
  }

  /// Heap footprint in bytes (for explain/bench accounting).
  size_t MemoryBytes() const {
    return key_pool_.capacity() * sizeof(Value) +
           slots_.capacity() * sizeof(uint32_t);
  }

 private:
  // Sized for load factor <= 0.75; zero-width keys still get one slot.
  static size_t TableCapacity(size_t keys) {
    size_t cap = 4;
    while (cap - cap / 4 < keys + 1) cap *= 2;
    return cap;
  }

  uint64_t Hash(const Value* key) const {
    uint64_t h = 0x2545F4914F6CDD1DULL ^ (width_ * 0x9E3779B97F4A7C15ULL);
    for (size_t i = 0; i < width_; ++i) {
      h = MixHash(h ^ static_cast<uint64_t>(key[i]));
    }
    return h;
  }

  bool Equal(uint32_t id, const Value* key) const {
    const Value* stored = key_pool_.data() + static_cast<size_t>(id) * width_;
    for (size_t i = 0; i < width_; ++i) {
      if (stored[i] != key[i]) return false;
    }
    return true;
  }

  void Grow() {
    const size_t cap = (mask_ + 1) * 2;
    slots_.assign(cap, kEmptySlot);
    mask_ = cap - 1;
    for (uint32_t id = 0; id < num_keys_; ++id) {
      size_t slot = Hash(key_pool_.data() + static_cast<size_t>(id) * width_) &
                    mask_;
      while (slots_[slot] != kEmptySlot) slot = (slot + 1) & mask_;
      slots_[slot] = id;
    }
  }

  size_t width_ = 0;
  size_t num_keys_ = 0;
  size_t mask_ = 0;
  std::vector<Value> key_pool_;   // num_keys_ * width_ values
  std::vector<uint32_t> slots_;   // open-addressing table of key ids
};

}  // namespace anyk

#endif  // ANYK_STORAGE_FLAT_INDEX_H_
