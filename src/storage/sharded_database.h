// ShardedDatabase: hash-partition a database's relations on a query's join
// keys into S independent shards (ROADMAP Open item 3, in-process stage).
//
// Partitioning scheme — chosen for *correctness under ranked union*, not
// just balance. One join variable v (the "partition variable") is selected
// per (query, S): every answer binds v to exactly one value, so routing all
// rows that can participate in an answer with v = val into shard
// ShardOf(ShardHash(val), S) makes the S per-shard answer streams a DISJOINT
// cover of the full answer set. Concretely, per physical relation:
//
//  * PARTITIONED — every atom referencing the relation contains v, and all
//    of them bind v at the same column c: rows are routed by ShardHash of
//    column c. (First occurrence of v within an atom decides c; a repeated
//    variable like R(v,v) only ever matches rows whose columns agree, so any
//    occurrence routes identically for rows that can match.)
//  * BROADCAST — some referencing atom lacks v, or two atoms disagree on
//    the column (self-joins like R(v,y), R(y,v)): the relation is fully
//    replicated into every shard. Its rows join against partitioned rows,
//    which carry the shard assignment.
//
// The partition variable is the one maximizing the number of partitioned
// input rows (tie-break: more covering atoms, then lowest variable id — the
// choice is deterministic, which keeps witnesses and bench numbers stable
// for a fixed (query, S)). If no variable partitions anything (e.g. a pure
// self-join chain over one physical relation where every column choice
// conflicts), the plan DEGENERATES: shard 0 receives the whole database and
// shards 1..S-1 stay empty — still disjoint, no speedup, never wrong.
//
// Shard construction reuses the CSV loader's staging idiom: rows are staged
// column-major per shard and flushed through Relation::AppendColumnChunk in
// kStageRows blocks, so the partition pass is one sequential sweep per
// source column with bulk segment inserts on the shard side. Relations are
// partitioned in parallel waves on the caller's ThreadPool (each (relation,
// shard) target is a distinct Relation object; the catalog maps are
// pre-created serially before the fan-out).
//
// Only relations referenced by the query are sharded — the shards are
// query-scoped execution artifacts (ShardedPreparedQuery owns one), not a
// general-purpose copy of the catalog.

#ifndef ANYK_STORAGE_SHARDED_DATABASE_H_
#define ANYK_STORAGE_SHARDED_DATABASE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "query/cq.h"
#include "storage/database.h"
#include "storage/relation.h"
#include "storage/shard_hash.h"
#include "storage/value.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace anyk {

/// How one physical relation is distributed across the shards.
struct ShardRule {
  std::string relation;
  /// Column whose value routes the row (>= 0), or -1 for broadcast.
  int partition_col = -1;
  bool partitioned() const { return partition_col >= 0; }
};

class ShardedDatabase {
 public:
  /// Partition `db`'s query-referenced relations into `num_shards` shards.
  /// `pool` (optional) parallelizes the per-relation partition passes; it is
  /// only used during construction.
  ShardedDatabase(const Database& db, const ConjunctiveQuery& q,
                  size_t num_shards, ThreadPool* pool = nullptr)
      : shards_(num_shards == 0 ? 1 : num_shards) {
    ChoosePlan(db, q);
    // Pre-create every relation in every shard serially (Database's catalog
    // map is not safe to mutate concurrently), then fill the distinct
    // Relation objects in parallel.
    std::vector<std::vector<Relation*>> targets(rules_.size());
    for (size_t i = 0; i < rules_.size(); ++i) {
      const Relation& src = db.Get(rules_[i].relation);
      targets[i].reserve(shards_.size());
      for (Database& shard : shards_) {
        targets[i].push_back(&shard.AddRelation(src.name(), src.arity()));
      }
    }
    ParallelFor(pool, rules_.size(), [&](size_t i) {
      Distribute(db.Get(rules_[i].relation), rules_[i], targets[i]);
    });
  }

  size_t NumShards() const { return shards_.size(); }
  const Database& shard(size_t s) const { return shards_[s]; }

  /// The chosen partition variable (dense id), or -1 when the plan is
  /// degenerate (everything lives in shard 0).
  int partition_var() const { return partition_var_; }
  bool degenerate() const { return partition_var_ < 0; }

  /// Per-relation distribution rules, in first-reference query order.
  const std::vector<ShardRule>& rules() const { return rules_; }

  bool IsPartitioned(const std::string& relation) const {
    for (const ShardRule& r : rules_) {
      if (r.relation == relation) return r.partitioned();
    }
    return false;
  }

 private:
  /// Rows staged column-major per shard before a bulk AppendColumnChunk —
  /// the same block size the CSV loader flushes at.
  static constexpr size_t kStageRows = 4096;

  /// Pick the partition variable and derive the per-relation rules.
  void ChoosePlan(const Database& db, const ConjunctiveQuery& q) {
    // Unique physical relations in first-reference order, with the atoms
    // referencing each (self-joins reference one relation repeatedly).
    std::vector<std::string> names;
    std::vector<std::vector<size_t>> ref_atoms;
    for (size_t a = 0; a < q.NumAtoms(); ++a) {
      const std::string& rel = q.atom(a).relation;
      size_t idx = names.size();
      for (size_t i = 0; i < names.size(); ++i) {
        if (names[i] == rel) { idx = i; break; }
      }
      if (idx == names.size()) {
        names.push_back(rel);
        ref_atoms.emplace_back();
      }
      ref_atoms[idx].push_back(a);
    }

    size_t best_rows = 0;
    size_t best_atoms = 0;
    std::vector<int> best_cols;  // per unique relation; -1 = broadcast
    for (uint32_t v = 0; v < q.NumVars(); ++v) {
      std::vector<int> cols(names.size(), -1);
      size_t rows = 0;
      size_t atoms = 0;
      for (size_t i = 0; i < names.size(); ++i) {
        int col = -1;
        bool ok = true;
        for (size_t a : ref_atoms[i]) {
          const std::vector<uint32_t>& vars = q.AtomVarIds(a);
          int c = -1;
          for (size_t j = 0; j < vars.size(); ++j) {
            if (vars[j] == v) { c = static_cast<int>(j); break; }
          }
          if (c < 0 || (col >= 0 && c != col)) { ok = false; break; }
          col = c;
        }
        if (ok && col >= 0) {
          cols[i] = col;
          rows += db.Get(names[i]).NumRows();
          atoms += ref_atoms[i].size();
        }
      }
      const bool better =
          partition_var_ < 0 ? rows > 0
                             : (rows > best_rows ||
                                (rows == best_rows && atoms > best_atoms));
      if (better) {
        partition_var_ = static_cast<int>(v);
        best_rows = rows;
        best_atoms = atoms;
        best_cols = std::move(cols);
      }
    }

    rules_.reserve(names.size());
    for (size_t i = 0; i < names.size(); ++i) {
      ShardRule rule;
      rule.relation = names[i];
      rule.partition_col = partition_var_ < 0 ? -1 : best_cols[i];
      rules_.push_back(std::move(rule));
    }
  }

  /// Copy `src` into the per-shard targets according to `rule`.
  void Distribute(const Relation& src, const ShardRule& rule,
                  const std::vector<Relation*>& dst) const {
    const size_t arity = src.arity();
    const size_t rows = src.NumRows();
    if (!rule.partitioned()) {
      // Broadcast (or, degenerate plan, shard 0 only): one bulk chunk per
      // replica — whole column segments, no staging.
      std::vector<const Value*> ptrs(arity);
      for (size_t c = 0; c < arity; ++c) ptrs[c] = src.ColumnData(c);
      const size_t replicas = degenerate() ? 1 : dst.size();
      for (size_t s = 0; s < replicas; ++s) {
        dst[s]->Reserve(rows);
        dst[s]->AppendColumnChunk(ptrs, src.Weights());
      }
      return;
    }

    const Value* route =
        src.ColumnData(static_cast<size_t>(rule.partition_col));
    std::vector<const Value*> cols(arity);
    for (size_t c = 0; c < arity; ++c) cols[c] = src.ColumnData(c);
    std::span<const double> weights = src.Weights();

    struct Stage {
      std::vector<std::vector<Value>> cols;
      std::vector<double> weights;
      std::vector<const Value*> ptrs;
    };
    std::vector<Stage> stages(dst.size());
    for (Stage& st : stages) {
      st.cols.resize(arity);
      st.ptrs.resize(arity);
    }
    auto flush = [&](size_t s) {
      Stage& st = stages[s];
      if (st.weights.empty()) return;
      for (size_t c = 0; c < arity; ++c) st.ptrs[c] = st.cols[c].data();
      dst[s]->AppendColumnChunk(st.ptrs, st.weights);
      for (size_t c = 0; c < arity; ++c) st.cols[c].clear();
      st.weights.clear();
    };
    for (size_t r = 0; r < rows; ++r) {
      const size_t s = ShardOf(ShardHash(route[r]), dst.size());
      Stage& st = stages[s];
      for (size_t c = 0; c < arity; ++c) st.cols[c].push_back(cols[c][r]);
      st.weights.push_back(weights[r]);
      if (st.weights.size() >= kStageRows) flush(s);
    }
    for (size_t s = 0; s < dst.size(); ++s) flush(s);
  }

  std::vector<Database> shards_;
  std::vector<ShardRule> rules_;
  int partition_var_ = -1;
};

}  // namespace anyk

#endif  // ANYK_STORAGE_SHARDED_DATABASE_H_
