// Hash-grouping of relation rows by a composite key.
//
// This is the "data structure that can be built in linear time to support
// tuple lookups in constant time" assumed by the paper (Section 2.3). It maps
// each distinct key (projection of a row onto the key columns) to the dense
// list of matching row ids. Groups are the physical realization of the
// connector nodes of the equi-join graph transformation (Fig. 3).
//
// Layout: one FlatKeyIndex interning keys to dense group ids plus a CSR pair
// (group_begin_, rows_) holding all row ids grouped and back to back. Built
// in two linear passes (intern + counting scatter); no per-group heap
// allocations, lookups probe one open-addressing table and then read a
// contiguous span.

#ifndef ANYK_STORAGE_GROUP_INDEX_H_
#define ANYK_STORAGE_GROUP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "storage/flat_index.h"
#include "storage/kernels.h"
#include "storage/relation.h"
#include "storage/value.h"

namespace anyk {

/// Groups row ids of a relation by the projection onto `key_cols`.
class GroupIndex {
 public:
  GroupIndex() = default;

  /// Build in expected O(rows) time.
  GroupIndex(const Relation& rel, std::span<const uint32_t> key_cols,
             KernelKind kernels = KernelKind::kAuto) {
    Build(rel, key_cols, kernels);
  }

  void Build(const Relation& rel, std::span<const uint32_t> key_cols,
             KernelKind kernels = KernelKind::kAuto) {
    const GatherKernels& kx = GetGatherKernels(kernels);
    key_cols_.assign(key_cols.begin(), key_cols.end());
    const size_t rows = rel.NumRows();
    const size_t width = key_cols_.size();
    keys_.Init(width, rows);

    // Pass 1a: spread each key column segment into a row-major scratch
    // matrix. One sequential read per column segment (the columnar layout's
    // whole point) instead of striding over every row's interleaved values.
    std::vector<Value> key_rows(rows * width);
    for (size_t c = 0; c < width; ++c) {
      kx.spread_to_stride(rel.ColumnData(key_cols_[c]), rows,
                          key_rows.data() + c, width);
    }

    // Pass 1b: intern every row's key; remember the group per row.
    std::vector<uint32_t> group_of_row(rows);
    for (size_t r = 0; r < rows; ++r) {
      group_of_row[r] = keys_.Intern(
          std::span<const Value>(key_rows.data() + r * width, width));
    }

    // Pass 2: counting scatter into CSR form (stable: rows of a group keep
    // their relation order).
    const size_t groups = keys_.NumKeys();
    group_begin_.assign(groups + 1, 0);
    for (size_t r = 0; r < rows; ++r) ++group_begin_[group_of_row[r] + 1];
    for (size_t g = 0; g < groups; ++g) group_begin_[g + 1] += group_begin_[g];
    rows_.resize(rows);
    std::vector<uint32_t> cursor(group_begin_.begin(), group_begin_.end() - 1);
    for (size_t r = 0; r < rows; ++r) {
      rows_[cursor[group_of_row[r]]++] = static_cast<uint32_t>(r);
    }
  }

  size_t NumGroups() const { return keys_.NumKeys(); }

  /// Group id for `key`, or -1 if the key does not occur.
  int64_t Find(std::span<const Value> key) const { return keys_.Find(key); }
  int64_t Find(const Key& key) const {
    return keys_.Find(std::span<const Value>(key));
  }

  /// Rows in group `g`.
  std::span<const uint32_t> Rows(size_t g) const {
    return {rows_.data() + group_begin_[g],
            group_begin_[g + 1] - group_begin_[g]};
  }

  /// Rows matching `key` (empty if absent).
  std::span<const uint32_t> Lookup(std::span<const Value> key) const {
    const int64_t g = keys_.Find(key);
    if (g < 0) return {};
    return Rows(static_cast<size_t>(g));
  }
  std::span<const uint32_t> Lookup(const Key& key) const {
    return Lookup(std::span<const Value>(key));
  }

  /// The interned key of group `g` (keys are in first-appearance order).
  std::span<const Value> KeyOf(size_t g) const {
    return keys_.KeyAt(static_cast<uint32_t>(g));
  }

  /// Heap footprint in bytes (for explain/bench accounting).
  size_t MemoryBytes() const {
    return keys_.MemoryBytes() + group_begin_.capacity() * sizeof(uint32_t) +
           rows_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<uint32_t> key_cols_;
  FlatKeyIndex keys_;
  std::vector<uint32_t> group_begin_;  // group g spans rows_[begin[g], begin[g+1])
  std::vector<uint32_t> rows_;         // row ids grouped by key
};

}  // namespace anyk

#endif  // ANYK_STORAGE_GROUP_INDEX_H_
