// Hash-grouping of relation rows by a composite key.
//
// This is the "data structure that can be built in linear time to support
// tuple lookups in constant time" assumed by the paper (Section 2.3). It maps
// each distinct key (projection of a row onto the key columns) to the dense
// list of matching row ids. Groups are the physical realization of the
// connector nodes of the equi-join graph transformation (Fig. 3).

#ifndef ANYK_STORAGE_GROUP_INDEX_H_
#define ANYK_STORAGE_GROUP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/relation.h"
#include "storage/value.h"

namespace anyk {

/// Groups row ids of a relation by the projection onto `key_cols`.
class GroupIndex {
 public:
  GroupIndex() = default;

  /// Build in expected O(rows) time.
  GroupIndex(const Relation& rel, std::span<const uint32_t> key_cols) {
    Build(rel, key_cols);
  }

  void Build(const Relation& rel, std::span<const uint32_t> key_cols) {
    key_cols_.assign(key_cols.begin(), key_cols.end());
    group_of_key_.clear();
    groups_.clear();
    const size_t rows = rel.NumRows();
    group_of_key_.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      Key key = rel.ProjectRow(r, key_cols_);
      auto [it, inserted] =
          group_of_key_.try_emplace(std::move(key), groups_.size());
      if (inserted) groups_.emplace_back();
      groups_[it->second].push_back(static_cast<uint32_t>(r));
    }
  }

  size_t NumGroups() const { return groups_.size(); }

  /// Group id for `key`, or -1 if the key does not occur.
  int64_t Find(const Key& key) const {
    auto it = group_of_key_.find(key);
    return it == group_of_key_.end() ? -1 : static_cast<int64_t>(it->second);
  }

  /// Rows in group `g`.
  const std::vector<uint32_t>& Rows(size_t g) const { return groups_[g]; }

  /// Rows matching `key` (empty if absent).
  std::span<const uint32_t> Lookup(const Key& key) const {
    int64_t g = Find(key);
    if (g < 0) return {};
    return groups_[static_cast<size_t>(g)];
  }

  /// Iterate all (key, rows) pairs.
  const std::unordered_map<Key, size_t, KeyHash>& KeyMap() const {
    return group_of_key_;
  }

 private:
  std::vector<uint32_t> key_cols_;
  std::unordered_map<Key, size_t, KeyHash> group_of_key_;
  std::vector<std::vector<uint32_t>> groups_;
};

}  // namespace anyk

#endif  // ANYK_STORAGE_GROUP_INDEX_H_
