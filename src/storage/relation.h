// In-memory relation: row-major flat value array plus a per-tuple weight.
//
// The weight column holds the input-tuple weight w(r) of the paper (Def. 4).
// Weights are stored as doubles; dioid-specific weight types are derived at
// DP-build time through a weight functor, so a single physical relation can
// be ranked under different selective dioids.

#ifndef ANYK_STORAGE_RELATION_H_
#define ANYK_STORAGE_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "storage/value.h"
#include "util/logging.h"

namespace anyk {

/// A named relation with fixed arity, dense row storage and tuple weights.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  // One weight per row, so this also counts rows of zero-arity relations
  // (values_.size() / arity_ would divide by zero and lose nullary facts).
  size_t NumRows() const { return weights_.size(); }

  /// Append a tuple; `row.size()` must equal the arity.
  void AddRow(std::span<const Value> row, double weight) {
    ANYK_DCHECK(row.size() == arity_);
    values_.insert(values_.end(), row.begin(), row.end());
    weights_.push_back(weight);
  }

  /// Convenience overload for literals: rel.Add({1, 2}, 3.5).
  void Add(std::initializer_list<Value> row, double weight) {
    AddRow(std::span<const Value>(row.begin(), row.size()), weight);
  }

  /// Read access to row `r` as a contiguous span of `arity` values.
  std::span<const Value> Row(size_t r) const {
    return {values_.data() + r * arity_, arity_};
  }

  Value At(size_t r, size_t c) const {
    ANYK_DCHECK(c < arity_);
    return values_[r * arity_ + c];
  }

  double Weight(size_t r) const { return weights_[r]; }
  void SetWeight(size_t r, double w) { weights_[r] = w; }

  /// Project row `r` onto the given columns (materializes a key).
  Key ProjectRow(size_t r, std::span<const uint32_t> cols) const {
    Key key;
    key.reserve(cols.size());
    for (uint32_t c : cols) key.push_back(At(r, c));
    return key;
  }

  void Reserve(size_t rows) {
    values_.reserve(rows * arity_);
    weights_.reserve(rows);
  }

  void Clear() {
    values_.clear();
    weights_.clear();
  }

 private:
  std::string name_;
  size_t arity_ = 0;
  std::vector<Value> values_;   // row-major, NumRows() * arity_ entries
  std::vector<double> weights_;  // one per row
};

}  // namespace anyk

#endif  // ANYK_STORAGE_RELATION_H_
