// In-memory relation: structure-of-arrays column segments plus a per-tuple
// weight array.
//
// Storage is columnar: each attribute lives in its own contiguous `Value`
// segment (cols_[c][r] is row r's value of column c) and the tuple weights
// sit in their own contiguous double array. The hot preprocessing passes —
// GroupIndex::Build, FlatKeyIndex interning, BuildStageGraph's CSR /
// counting-scatter passes — read whole column segments sequentially instead
// of striding over interleaved rows, and the NextBatch bind path gathers
// from a column segment per variable (storage/kernels.h). A row is a
// *virtual* object reassembled on demand through RowRef; code that truly
// needs row-major bytes (the test oracle, the TTF reference bench) uses
// storage/row_reference.h.
//
// The weight column holds the input-tuple weight w(r) of the paper (Def. 4).
// Weights are stored as doubles; dioid-specific weight types are derived at
// DP-build time through a weight functor, so a single physical relation can
// be ranked under different selective dioids.
//
// Per-column min/max counters are maintained on append (free: two compares
// per value) and feed the planner's column statistics (src/plan/stats.h).

#ifndef ANYK_STORAGE_RELATION_H_
#define ANYK_STORAGE_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "storage/value.h"
#include "util/logging.h"

namespace anyk {

/// Read-only view of one contiguous column segment. Well-defined for every
/// relation shape: a 0-row relation yields an empty view, and an arity-0
/// relation simply has no columns to view (Relation::Column checks the
/// index). Alias of std::span, so all span idioms apply.
using ColumnView = std::span<const Value>;

/// Cheap per-column statistics maintained on append. `min > max` (the
/// initial state) means the column has no rows yet.
struct ColumnStats {
  Value min = std::numeric_limits<Value>::max();
  Value max = std::numeric_limits<Value>::min();
  bool empty() const { return min > max; }
  /// Size of the value range [min, max] (0 for an empty column): a free
  /// upper bound on the number of distinct values.
  double SpanSize() const {
    if (empty()) return 0.0;
    return static_cast<double>(max) - static_cast<double>(min) + 1.0;
  }
};

/// A named relation with fixed arity, columnar storage and tuple weights.
class Relation {
 public:
  /// Lightweight proxy of one logical row: gathers values across the column
  /// segments on access. Valid as long as the relation is neither mutated
  /// nor destroyed. Well-defined for arity-0 relations (size() == 0,
  /// begin() == end()) — nullary facts are legal CQ atoms.
  class RowRef {
   public:
    RowRef(const Relation* rel, size_t row) : rel_(rel), row_(row) {}

    size_t size() const { return rel_->arity(); }
    bool empty() const { return size() == 0; }
    Value operator[](size_t c) const { return rel_->At(row_, c); }

    /// Random-access iterator over the row's values (column index walk).
    class iterator {
     public:
      using iterator_category = std::random_access_iterator_tag;
      using value_type = Value;
      using difference_type = std::ptrdiff_t;
      using pointer = const Value*;
      using reference = Value;

      iterator() = default;
      iterator(const Relation* rel, size_t row, size_t col)
          : rel_(rel), row_(row), col_(col) {}
      Value operator*() const { return rel_->At(row_, col_); }
      iterator& operator++() { ++col_; return *this; }
      iterator operator++(int) { iterator t = *this; ++col_; return t; }
      iterator& operator--() { --col_; return *this; }
      iterator& operator+=(difference_type d) { col_ += d; return *this; }
      iterator operator+(difference_type d) const {
        return iterator(rel_, row_, col_ + d);
      }
      difference_type operator-(const iterator& o) const {
        return static_cast<difference_type>(col_) -
               static_cast<difference_type>(o.col_);
      }
      Value operator[](difference_type d) const {
        return rel_->At(row_, col_ + d);
      }
      bool operator==(const iterator& o) const { return col_ == o.col_; }
      bool operator!=(const iterator& o) const { return col_ != o.col_; }
      bool operator<(const iterator& o) const { return col_ < o.col_; }

     private:
      const Relation* rel_ = nullptr;
      size_t row_ = 0;
      size_t col_ = 0;
    };

    iterator begin() const { return iterator(rel_, row_, 0); }
    iterator end() const { return iterator(rel_, row_, size()); }

    /// Materialize into a caller buffer of at least size() values.
    void CopyInto(Value* out) const {
      for (size_t c = 0; c < size(); ++c) out[c] = (*this)[c];
    }
    Key ToKey() const {
      Key k;
      k.reserve(size());
      for (size_t c = 0; c < size(); ++c) k.push_back((*this)[c]);
      return k;
    }

   private:
    const Relation* rel_;
    size_t row_;
  };

  Relation() = default;
  Relation(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity), cols_(arity),
        col_stats_(arity) {}

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  // One weight per row, so this also counts rows of zero-arity relations
  // (a column segment would not exist to count nullary facts from).
  size_t NumRows() const { return weights_.size(); }

  /// Append a tuple; `row.size()` must equal the arity.
  void AddRow(std::span<const Value> row, double weight) {
    ANYK_DCHECK(row.size() == arity_);
    for (size_t c = 0; c < arity_; ++c) {
      cols_[c].push_back(row[c]);
      col_stats_[c].min = std::min(col_stats_[c].min, row[c]);
      col_stats_[c].max = std::max(col_stats_[c].max, row[c]);
    }
    weights_.push_back(weight);
  }

  /// Append a row read through another relation's RowRef (copying between
  /// relations without materializing an intermediate key).
  void AddRow(RowRef row, double weight) {
    ANYK_DCHECK(row.size() == arity_);
    for (size_t c = 0; c < arity_; ++c) {
      const Value v = row[c];
      cols_[c].push_back(v);
      col_stats_[c].min = std::min(col_stats_[c].min, v);
      col_stats_[c].max = std::max(col_stats_[c].max, v);
    }
    weights_.push_back(weight);
  }

  /// Convenience overload for literals: rel.Add({1, 2}, 3.5).
  void Add(std::initializer_list<Value> row, double weight) {
    AddRow(std::span<const Value>(row.begin(), row.size()), weight);
  }

  /// Bulk append of `rows` tuples staged column-major: `col_data[c]` points
  /// at `rows` contiguous values of column c. This is the CSV loader's
  /// per-shard append path — one memcpy-shaped insert per column segment
  /// instead of `rows * arity` single-element pushes.
  void AppendColumnChunk(std::span<const Value* const> col_data,
                         std::span<const double> row_weights) {
    const size_t rows = row_weights.size();
    weights_.insert(weights_.end(), row_weights.begin(), row_weights.end());
    // A zero-row chunk (empty shard flush) may legally pass no column
    // pointers at all; col_data must not be touched then. Zero-arity
    // relations take the weights as facts and are done.
    if (rows == 0 || arity_ == 0) return;
    ANYK_DCHECK(col_data.size() == arity_);
    for (size_t c = 0; c < arity_; ++c) {
      cols_[c].insert(cols_[c].end(), col_data[c], col_data[c] + rows);
      for (size_t r = 0; r < rows; ++r) {
        col_stats_[c].min = std::min(col_stats_[c].min, col_data[c][r]);
        col_stats_[c].max = std::max(col_stats_[c].max, col_data[c][r]);
      }
    }
  }

  /// Read access to row `r` as a gathering proxy (see RowRef).
  RowRef Row(size_t r) const { return RowRef(this, r); }

  Value At(size_t r, size_t c) const {
    ANYK_DCHECK(c < arity_);
    return cols_[c][r];
  }

  /// The contiguous segment of column `c` (empty view for 0-row relations).
  ColumnView Column(size_t c) const {
    ANYK_DCHECK(c < arity_);
    return ColumnView(cols_[c]);
  }

  /// Raw segment pointer of column `c` for the gather kernels
  /// (storage/kernels.h). Null only when the column has no rows; kernels
  /// must not be called with n > 0 in that case.
  const Value* ColumnData(size_t c) const {
    ANYK_DCHECK(c < arity_);
    return cols_[c].data();
  }

  /// Append-maintained min/max of column `c` (see ColumnStats).
  const ColumnStats& ColumnStatsOf(size_t c) const {
    ANYK_DCHECK(c < arity_);
    return col_stats_[c];
  }

  double Weight(size_t r) const { return weights_[r]; }
  void SetWeight(size_t r, double w) { weights_[r] = w; }
  /// The contiguous weight segment (one double per row).
  std::span<const double> Weights() const { return weights_; }

  /// Project row `r` onto the given columns (materializes a key).
  Key ProjectRow(size_t r, std::span<const uint32_t> cols) const {
    Key key;
    key.reserve(cols.size());
    for (uint32_t c : cols) key.push_back(At(r, c));
    return key;
  }

  void Reserve(size_t rows) {
    for (auto& col : cols_) col.reserve(rows);
    weights_.reserve(rows);
  }

  void Clear() {
    for (auto& col : cols_) col.clear();
    col_stats_.assign(arity_, ColumnStats{});
    weights_.clear();
  }

 private:
  std::string name_;
  size_t arity_ = 0;
  std::vector<std::vector<Value>> cols_;  // arity_ segments, NumRows() each
  std::vector<ColumnStats> col_stats_;    // per-column min/max, append-time
  std::vector<double> weights_;           // one per row
};

}  // namespace anyk

#endif  // ANYK_STORAGE_RELATION_H_
