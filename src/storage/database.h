// A database is a named collection of relations.

#ifndef ANYK_STORAGE_DATABASE_H_
#define ANYK_STORAGE_DATABASE_H_

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/relation.h"
#include "util/logging.h"

namespace anyk {

/// Owning container mapping relation names to relations.
///
/// Several query atoms may reference the same physical relation (self-joins);
/// lookup is by name, so that sharing is free.
class Database {
 public:
  /// Create (or replace) a relation and return a reference to it.
  Relation& AddRelation(const std::string& name, size_t arity) {
    auto [it, _] = relations_.insert_or_assign(name, Relation(name, arity));
    return it->second;
  }

  /// Move an existing relation into the database under its own name.
  Relation& AddRelation(Relation rel) {
    std::string name = rel.name();
    auto [it, _] = relations_.insert_or_assign(name, std::move(rel));
    return it->second;
  }

  bool Has(const std::string& name) const { return relations_.count(name) > 0; }

  const Relation& Get(const std::string& name) const {
    auto it = relations_.find(name);
    ANYK_CHECK(it != relations_.end()) << "unknown relation: " << name;
    return it->second;
  }

  Relation& GetMutable(const std::string& name) {
    auto it = relations_.find(name);
    ANYK_CHECK(it != relations_.end()) << "unknown relation: " << name;
    return it->second;
  }

  /// Largest relation cardinality (the paper's n).
  size_t MaxCardinality() const {
    size_t n = 0;
    for (const auto& [_, rel] : relations_) n = std::max(n, rel.NumRows());
    return n;
  }

  size_t NumRelations() const { return relations_.size(); }

 private:
  // anyk-lint: allow(unordered-map): catalog lookup by relation name —
  // a handful of entries, hit once per query during planning, never during
  // enumeration (hot-path joins go through FlatKeyIndex).
  std::unordered_map<std::string, Relation> relations_;
};

}  // namespace anyk

#endif  // ANYK_STORAGE_DATABASE_H_
