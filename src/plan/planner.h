// The planning layer: turns load/build statistics into the three choices
// `--algorithm auto` needs (docs/PLANNER.md):
//   (a) join-tree root/orientation        — PlanTopology, before the build,
//   (b) TDP stage order (child order)     — PlanTopology, before the build,
//   (c) strategy + candidate-heap arity   — DecideStrategy, after the build.
//
// (a)/(b) only see relation cardinalities (the build hasn't run yet); the
// shape follows Themis's chooseOrderForAndQuery: order by ascending
// cardinality estimate with a stable tie-break. (c) sees the full graph
// statistics including exact output counts and goes through the cost model.
//
// The decision is made ONCE, at prepare time, against the prepare-time
// k_budget; every session opened with Algorithm::kAuto reuses it
// (concurrency_test pins that sessions never re-plan).

#ifndef ANYK_PLAN_PLANNER_H_
#define ANYK_PLAN_PLANNER_H_

#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "anyk/factory.h"
#include "dp/stage_graph.h"
#include "plan/cost_model.h"
#include "plan/stats.h"
#include "query/cq.h"
#include "query/gyo.h"
#include "query/join_tree.h"
#include "storage/database.h"

namespace anyk {
namespace plan {

/// The cached outcome of planning one query: what NewSession(kAuto) runs,
/// what EXPLAIN and the server's /statz expose.
struct PlanDecision {
  Algorithm algorithm = Algorithm::kLazy;
  size_t heap_arity = 4;
  int planner_version = kPlannerVersion;
  bool auto_topology = false;  // (a)/(b) were planner-chosen
  GraphStats stats;
  double est_cost = 0;
  double est_batch = 0;
  std::string reason;

  /// One-line rendering for EXPLAIN / /statz / logs.
  std::string Summary() const {
    std::ostringstream out;
    out << "v" << planner_version << " algorithm=" << AlgorithmName(algorithm)
        << " heap_arity=" << heap_arity << " out=" << stats.output_count
        << " max_fanout=" << stats.max_fanout << " reason=" << reason;
    return out.str();
  }
};

/// Choose root/orientation and child (stage) order for an acyclic query,
/// starting from the GYO tree after Cartesian-link normalization.
///
/// Chains are re-rooted like RerootChains — serial DP, the paper's path
/// formulation — but at the *endpoint whose relation is smallest*, so the
/// root stage (whose states seed every candidate) is the cheapest one.
/// Branching trees keep their root and instead order each node's children
/// by ascending relation cardinality (JoinTreeTopology::child_priority),
/// the Themis ascending-estimate discipline.
inline JoinTreeTopology PlanTopology(const Database& db,
                                     const ConjunctiveQuery& q,
                                     const JoinTreeTopology& topo) {
  const size_t n = topo.parent.size();
  if (n <= 1) return topo;
  std::vector<std::vector<int>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    if (topo.parent[i] >= 0) {
      adj[i].push_back(topo.parent[i]);
      adj[topo.parent[i]].push_back(static_cast<int>(i));
    }
  }
  bool chain = true;
  for (size_t i = 0; i < n && chain; ++i) chain = adj[i].size() <= 2;

  if (chain) {
    // Both endpoints; root at the one with the smaller relation (stable
    // tie-break on atom index keeps the choice deterministic).
    int best = -1;
    size_t best_rows = 0;
    for (size_t i = 0; i < n; ++i) {
      if (adj[i].size() > 1) continue;
      const size_t rows = AtomCardinality(db, q, i);
      if (best < 0 || rows < best_rows) {
        best = static_cast<int>(i);
        best_rows = rows;
      }
    }
    JoinTreeTopology out;
    out.parent.assign(n, -1);
    out.root = best;
    std::vector<bool> seen(n, false);
    seen[best] = true;
    std::vector<int> stack = {best};
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int v : adj[u]) {
        if (!seen[v]) {
          seen[v] = true;
          out.parent[v] = u;
          stack.push_back(v);
        }
      }
    }
    return out;
  }

  // Branching tree: keep the orientation, order sibling subtrees smallest
  // relation first so cheap stages come earlier in the serialization.
  JoinTreeTopology out = topo;
  out.child_priority.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.child_priority[i] = static_cast<double>(AtomCardinality(db, q, i));
  }
  return out;
}

/// Decide strategy + heap arity for built tree/union graphs. `k_budget` is
/// the prepare-time budget (EnumOptions sentinel: 0 = unbounded).
///
/// The non-owning overload exists for cross-shard planning: the sharded
/// layer (anyk/sharded_query.h) concatenates the graph lists of S per-shard
/// PreparedQueries it does not own and decides ONCE over the merged
/// statistics, so every shard session runs the same strategy.
template <SelectiveDioid D>
PlanDecision DecideStrategy(const std::vector<const StageGraph<D>*>& graphs,
                            size_t k_budget) {
  PlanInput in;
  in.k_budget = k_budget;
  in.has_inverse = D::kHasInverse;
  in.num_parts = graphs.size();
  for (size_t i = 0; i < graphs.size(); ++i) {
    const GraphStats part = CollectGraphStats(*graphs[i]);
    if (i == 0) {
      in.stats = part;
    } else {
      MergeGraphStats(&in.stats, part);
    }
  }
  const StrategyChoice choice = ChooseStrategy(in);
  PlanDecision d;
  d.algorithm = choice.algorithm;
  d.heap_arity = choice.heap_arity;
  d.stats = in.stats;
  d.est_cost = choice.est_cost;
  d.est_batch = choice.est_batch;
  d.reason = choice.reason;
  return d;
}

template <SelectiveDioid D>
PlanDecision DecideStrategy(
    const std::vector<std::unique_ptr<StageGraph<D>>>& graphs,
    size_t k_budget) {
  std::vector<const StageGraph<D>*> ptrs;
  ptrs.reserve(graphs.size());
  for (const auto& g : graphs) ptrs.push_back(g.get());
  return DecideStrategy<D>(ptrs, k_budget);
}

/// Decision for the generic-join fallback, where the output is already
/// materialized and sorted: every session is a cursor, "Batch" by
/// construction.
inline PlanDecision BatchOnlyDecision(double output_count) {
  PlanDecision d;
  d.algorithm = Algorithm::kBatch;
  d.stats.output_count = output_count;
  d.reason = "generic-join fallback materializes + sorts at prepare time";
  return d;
}

}  // namespace plan
}  // namespace anyk

#endif  // ANYK_PLAN_PLANNER_H_
