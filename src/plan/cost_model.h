// Strategy cost model: estimated TT(k) of every ranked-enumeration
// strategy from the graph statistics, the dioid, and the k budget.
//
// The units are abstract "elementary operations"; the constants below are
// coarse calibration weights, not microarchitectural truth. What the model
// must get right — and what planner_test verifies against a drain-them-all
// oracle over the differential corpus — are the *crossovers* the paper and
// "Optimal Join Algorithms Meet Top-k" characterize:
//   * Batch wins late: when k approaches |out|, one DFS materialization
//     plus one (partial) sort beats per-answer priority-queue machinery.
//   * Any-k wins early: for k << |out| it touches O(k * l) states instead
//     of all |out| answers.
//   * Among the any-k strategies the constants differ by successor
//     discipline: Lazy pays one incremental-heap pop per answer, Eager
//     pre-sorts whole choice sets (great when fanout is tiny), All floods
//     the candidate heap with every sibling (fanout-proportional), Take2
//     pushes two heap-children per pop, and Recursive amortizes suffix
//     rankings across shared connectors (serial chains only).
//
// docs/PLANNER.md derives each formula.

#ifndef ANYK_PLAN_COST_MODEL_H_
#define ANYK_PLAN_COST_MODEL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "anyk/factory.h"
#include "plan/stats.h"

namespace anyk {
namespace plan {

/// Version of the cost model + statistics schema. Bumped whenever a change
/// can alter a planning decision; the anykd prepared-query cache folds it
/// into its keys so a binary upgrade can never serve a plan chosen by an
/// older model from a warm cache (see docs/SERVER.md, "Cache keying").
inline constexpr int kPlannerVersion = 1;

/// Inputs to one strategy decision.
struct PlanInput {
  GraphStats stats;
  size_t k_budget = 0;       // 0 = unbounded (EnumOptions sentinel)
  bool has_inverse = true;   // dioid's (W, o*) is a group (D::kHasInverse)
  size_t num_parts = 1;      // union plans: graphs drained concurrently
};

/// Estimated cost per strategy, in abstract operation units.
struct StrategyCosts {
  double batch = 0;
  double lazy = 0;
  double eager = 0;
  double take2 = 0;
  double all = 0;
  double recursive = 0;
};

/// The answers actually requested: the budget capped by the output size.
inline double EffectiveK(const PlanInput& in) {
  const double out = in.stats.output_count;
  if (in.k_budget == 0) return out;
  return std::min(static_cast<double>(in.k_budget), out);
}

inline StrategyCosts EstimateCosts(const PlanInput& in) {
  const GraphStats& st = in.stats;
  const double out = std::max(st.output_count, 0.0);
  const double k = std::max(EffectiveK(in), 1.0);
  const double l = static_cast<double>(std::max<size_t>(st.stages, 1));
  const double fan = std::max(st.avg_fanout, 1.0);
  const double conns = static_cast<double>(st.connectors);
  const double log_k = std::log2(k + 2.0);
  const double log_fan = std::log2(fan + 2.0);
  // Non-invertible dioids (min-max, max-times) re-accumulate candidate
  // weights along the deviation frontier instead of subtracting the old
  // branch out — a constant-factor tax on every ANYK-PART successor.
  const double part_tax = in.has_inverse ? 1.0 : 1.3;

  StrategyCosts c;
  // One DFS over all answers (l states each) plus a partial sort of the
  // top k out of |out|.
  c.batch = out * (2.0 * l + log_k);
  // Per answer: one candidate pop (log k), l successor pushes, l binds;
  // plus lazily initializing one incremental heap per touched connector.
  const double touched = std::min(k * l, conns);
  c.lazy = part_tax * k * (log_k + 2.5 * l) + 2.0 * touched;
  // Eager pre-sorts every touched choice set up front; successors are then
  // plain array steps (cheapest per answer, expensive on wide fanout).
  c.eager = part_tax * k * (log_k + 1.5 * l) + touched * fan * log_fan;
  // Take2 pushes two heap-children per pop: slightly heavier per answer
  // than Lazy, but no per-connector structure at all.
  c.take2 = part_tax * k * (2.0 * log_k + 2.0 * l);
  // All inserts every sibling of each popped candidate.
  c.all = part_tax * k * (fan * log_k + 2.0 * l);
  // Recursive shares suffix rankings across connectors: near-linear per
  // answer on serial chains, but the Cartesian combination for bushy trees
  // multiplies the per-stage work.
  const double shape_tax = st.serial() ? 1.0 : 2.5;
  c.recursive = shape_tax * (1.5 * k * l + static_cast<double>(st.states) *
                                               log_fan * 0.5);
  // Union plans run one enumerator per part; their per-answer structures
  // don't share work, which mostly cancels out of the comparison — but the
  // batch variant sorts each part once, which it would do anyway.
  (void)in.num_parts;
  return c;
}

/// One strategy pick with the evidence that produced it.
struct StrategyChoice {
  Algorithm algorithm = Algorithm::kLazy;
  size_t heap_arity = 4;   // candidate-heap arity for the PART strategies
  double est_cost = 0;     // estimated cost of the chosen strategy
  double est_batch = 0;    // batch estimate, for the crossover diagnostics
  const char* reason = "";
};

inline StrategyChoice ChooseStrategy(const PlanInput& in) {
  StrategyChoice pick;
  const double out = in.stats.output_count;
  if (out <= 0.0) {
    pick.algorithm = Algorithm::kLazy;
    pick.reason = "empty output: any strategy terminates immediately";
    return pick;
  }
  const StrategyCosts c = EstimateCosts(in);
  pick.est_batch = c.batch;
  // Deterministic preference order breaks exact cost ties.
  struct Entry { Algorithm a; double cost; const char* why; };
  const Entry entries[] = {
      {Algorithm::kLazy, c.lazy, "lazy incremental heaps"},
      {Algorithm::kTake2, c.take2, "take2 heap-children successors"},
      {Algorithm::kEager, c.eager, "eager pre-sorted choice sets"},
      {Algorithm::kRecursive, c.recursive, "recursive suffix reuse"},
      {Algorithm::kAll, c.all, "all-sibling insertion"},
      {Algorithm::kBatch, c.batch, "batch materialize + sort"},
  };
  pick.algorithm = entries[0].a;
  pick.est_cost = entries[0].cost;
  pick.reason = entries[0].why;
  for (const Entry& e : entries) {
    if (e.cost < pick.est_cost) {
      pick.algorithm = e.a;
      pick.est_cost = e.cost;
      pick.reason = e.why;
    }
  }
  // Candidate-heap arity for the PART strategies: tiny budgets fit a
  // shallow binary heap; unbounded deep drains favor wider nodes (fewer
  // cache-missing levels). Batch/Recursive ignore the knob.
  const double k = EffectiveK(in);
  if (k <= 64.0) {
    pick.heap_arity = 2;
  } else if (k >= 65536.0) {
    pick.heap_arity = 8;
  } else {
    pick.heap_arity = 4;
  }
  return pick;
}

}  // namespace plan
}  // namespace anyk

#endif  // ANYK_PLAN_COST_MODEL_H_
