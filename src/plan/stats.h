// Statistics for the cost-based planner (docs/PLANNER.md).
//
// Everything here is read off structures that already exist after load and
// BuildStageGraph: relation cardinalities come straight from the storage
// layer, and the per-stage counters (states, distinct join keys, fanout,
// exact output counts) were piggybacked on the CSR connector build — no
// extra pass over the data. CollectGraphStats is a scalar reduction over
// O(stages) precomputed fields and performs zero heap allocations, so it is
// safe to call on the serving path (invariants_test pins this).

#ifndef ANYK_PLAN_STATS_H_
#define ANYK_PLAN_STATS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "dp/stage_graph.h"
#include "query/cq.h"
#include "storage/database.h"

namespace anyk {
namespace plan {

/// Scalar summary of one stage graph, the strategy cost model's input.
struct GraphStats {
  size_t stages = 0;
  size_t states = 0;       // surviving tuples across stages
  size_t connectors = 0;   // shared choice sets
  size_t input_rows = 0;   // bag rows before bottom-up pruning
  uint32_t max_fanout = 0; // largest choice set
  uint32_t max_slots = 0;  // widest stage (0/1 = serial chain DP)
  double avg_fanout = 1.0; // states / connectors
  double output_count = 0; // exact answers (+inf if the count DP saturated)

  /// Serial DP: every stage has at most one child slot, the shape where
  /// ANYK-REC's suffix-ranking reuse applies without Cartesian combination.
  bool serial() const { return max_slots <= 1; }
};

/// Reduce one built stage graph to its planner stats. Pure scalar pass over
/// per-stage counters the build already computed: zero allocations.
template <SelectiveDioid D>
GraphStats CollectGraphStats(const StageGraph<D>& g) {
  GraphStats s;
  s.stages = g.stages.size();
  s.connectors = g.total_connectors;
  s.output_count = g.OutputCount();
  for (const auto& st : g.stages) {
    s.states += st.NumStates();
    s.max_fanout = std::max(s.max_fanout, st.max_fanout);
    s.max_slots = std::max(s.max_slots, st.num_slots);
  }
  for (const auto& node : g.instance->nodes) s.input_rows += node.NumRows();
  s.avg_fanout = s.connectors > 0
                     ? static_cast<double>(s.states) /
                           static_cast<double>(s.connectors)
                     : 1.0;
  return s;
}

/// Accumulate `b` into `a` across the parts of a union plan: sizes add,
/// shape bounds take the max, outputs add (the cycle decomposition's parts
/// are disjoint; for overlapping decompositions this is an upper bound,
/// which is the safe direction for the Batch-vs-any-k crossover).
inline void MergeGraphStats(GraphStats* a, const GraphStats& b) {
  a->stages = std::max(a->stages, b.stages);
  a->states += b.states;
  a->connectors += b.connectors;
  a->input_rows += b.input_rows;
  a->max_fanout = std::max(a->max_fanout, b.max_fanout);
  a->max_slots = std::max(a->max_slots, b.max_slots);
  a->output_count += b.output_count;
  a->avg_fanout = a->connectors > 0
                      ? static_cast<double>(a->states) /
                            static_cast<double>(a->connectors)
                      : 1.0;
}

/// Cardinality of the relation behind one query atom — the "index probe"
/// of Themis's chooseOrderForAndQuery, free here because relations are
/// in-memory.
inline size_t AtomCardinality(const Database& db, const ConjunctiveQuery& q,
                              size_t atom) {
  return db.Get(q.atom(atom).relation).NumRows();
}

/// Distinct-value upper bound for one column of a relation, off the
/// append-maintained per-column min/max counters (ColumnStats — free: the
/// columnar storage layer updates them on every AddRow/AppendColumnChunk).
/// min(|range|, rows): a column can't have more distinct values than rows,
/// nor more than its value range holds. This is the classic V(R, a) input
/// of selectivity estimation, costing zero passes over the data.
inline double ColumnDistinctBound(const Relation& rel, size_t col) {
  const ColumnStats& cs = rel.ColumnStatsOf(col);
  if (cs.empty()) return 0.0;
  return std::min(cs.SpanSize(), static_cast<double>(rel.NumRows()));
}

/// Equi-join key selectivity estimate for an atom's column under uniform
/// assumptions: rows / distinct (the expected matching-group size). Returns
/// 1.0 for empty columns so multiplying estimators stay well-defined.
inline double ColumnAvgGroupSize(const Relation& rel, size_t col) {
  const double d = ColumnDistinctBound(rel, col);
  if (d <= 0.0) return 1.0;
  return static_cast<double>(rel.NumRows()) / d;
}

}  // namespace plan
}  // namespace anyk

#endif  // ANYK_PLAN_STATS_H_
