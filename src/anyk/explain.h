// Plan inspection: sizes and shape of the DP structures behind a ranked
// query plus the cost-based planner's decision, for the CLI's EXPLAIN
// output, debugging, and the size-bound tests of the decompositions.

#ifndef ANYK_ANYK_EXPLAIN_H_
#define ANYK_ANYK_EXPLAIN_H_

#include <cstddef>
#include <sstream>
#include <string>

#include "anyk/ranked_query.h"
#include "dp/stage_graph.h"
#include "plan/planner.h"

namespace anyk {

struct GraphStatsSummary {
  size_t stages = 0;
  size_t states = 0;      // surviving tuples across stages
  size_t connectors = 0;  // shared choice sets
  size_t input_rows = 0;  // rows before bottom-up pruning
};

template <SelectiveDioid D>
GraphStatsSummary SummarizeGraph(const StageGraph<D>& g) {
  GraphStatsSummary s;
  s.stages = g.stages.size();
  s.connectors = g.total_connectors;
  for (const auto& st : g.stages) s.states += st.NumStates();
  for (const auto& node : g.instance->nodes) s.input_rows += node.NumRows();
  return s;
}

template <SelectiveDioid D>
std::string Explain(const PreparedQuery<D>& pq) {
  std::ostringstream out;
  switch (pq.plan()) {
    case QueryPlan::kAcyclicTree:
      out << "plan: acyclic join tree (GYO), 1 T-DP problem\n";
      break;
    case QueryPlan::kCycleUnion:
      out << "plan: simple-cycle decomposition, UT-DP union of "
          << pq.NumTrees() << " trees\n";
      break;
    case QueryPlan::kGenericJoinBatch:
      out << "plan: worst-case-optimal generic join + sort (batch fallback)\n";
      break;
  }
  for (size_t t = 0; t < pq.graphs().size(); ++t) {
    GraphStatsSummary s = SummarizeGraph(*pq.graphs()[t]);
    out << "  tree " << t << ": " << s.stages << " stages, " << s.input_rows
        << " bag rows, " << s.states << " surviving states, " << s.connectors
        << " connectors\n";
  }
  const plan::PlanDecision& d = pq.decision();
  out << "planner: " << d.Summary() << "\n";
  out << "  topology: " << (d.auto_topology ? "planner-chosen (auto)"
                                            : "construction order")
      << ", stats: output=" << d.stats.output_count << " states="
      << d.stats.states << " connectors=" << d.stats.connectors
      << " avg_fanout=" << d.stats.avg_fanout << " max_fanout="
      << d.stats.max_fanout << (d.stats.serial() ? " (serial chain)" : "")
      << "\n";
  return out.str();
}

template <SelectiveDioid D>
std::string Explain(const RankedQuery<D>& rq) {
  return Explain(rq.prepared());
}

}  // namespace anyk

#endif  // ANYK_ANYK_EXPLAIN_H_
