// Convenience wrappers for the common "give me the top k" use case.
//
// Both overloads take the budget-aware fast path: the k is passed down as
// EnumOptions::k_budget (bounded candidate heaps, final-answer shortcuts,
// batch partial sort — see docs/ARCHITECTURE.md, "Top-k fast path") and the
// drain goes through NextBatch into pre-sized rows, so no ResultRow is ever
// copied on its way into the returned vector.

#ifndef ANYK_ANYK_TOPK_H_
#define ANYK_ANYK_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "anyk/ranked_query.h"

namespace anyk {

namespace internal {
/// Chunked NextBatch drain of up to k answers into a fresh vector. Rows are
/// written in place (no per-answer copy); chunking keeps the buffer
/// proportional to the actual output when k overshoots it.
template <SelectiveDioid D>
std::vector<ResultRow<D>> DrainTopK(Enumerator<D>* e, size_t k) {
  constexpr size_t kChunk = 1024;
  std::vector<ResultRow<D>> out;
  size_t produced = 0;
  while (produced < k) {
    const size_t chunk = std::min(k - produced, kChunk);
    out.resize(produced + chunk);
    const size_t got = e->NextBatch(out.data() + produced, chunk);
    produced += got;
    if (got < chunk) break;
  }
  out.resize(produced);
  return out;
}
}  // namespace internal

/// The k lightest answers of a full CQ (fewer if the output is smaller).
/// k == 0 returns an empty vector: the drain pulls nothing, so the
/// EnumOptions::k_budget "0 = unbounded" sentinel (which this k is forwarded
/// into) never turns a zero request into a full enumeration — api_test pins
/// this.
template <SelectiveDioid D = TropicalDioid>
std::vector<ResultRow<D>> TopK(const Database& db, const ConjunctiveQuery& q,
                               size_t k,
                               typename RankedQuery<D>::Options opts = {}) {
  opts.enum_opts.k_budget = k;
  RankedQuery<D> rq(db, q, opts);
  return internal::DrainTopK<D>(rq.enumerator(), k);
}

/// The k lightest answers through a fresh session of an already prepared
/// query — the serving-path variant: prepare once, call this from as many
/// threads as you like (each call owns its session; the prepared query is
/// only read).
template <SelectiveDioid D>
std::vector<ResultRow<D>> TopK(const PreparedQuery<D>& pq, Algorithm algo,
                               size_t k) {
  EnumOptions opts = pq.default_enum_options();
  opts.k_budget = k;
  EnumerationSession<D> session = pq.NewSession(algo, opts);
  return internal::DrainTopK<D>(session.enumerator(), k);
}

/// Count the full output by draining an unranked batch enumeration.
template <SelectiveDioid D = TropicalDioid>
size_t CountOutput(const Database& db, const ConjunctiveQuery& q) {
  typename RankedQuery<D>::Options opts;
  opts.algorithm = Algorithm::kBatchNoSort;
  opts.enum_opts.with_witness = false;
  RankedQuery<D> rq(db, q, opts);
  size_t n = 0;
  while (rq.Next()) ++n;
  return n;
}

}  // namespace anyk

#endif  // ANYK_ANYK_TOPK_H_
