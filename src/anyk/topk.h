// Convenience wrappers for the common "give me the top k" use case.

#ifndef ANYK_ANYK_TOPK_H_
#define ANYK_ANYK_TOPK_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "anyk/ranked_query.h"

namespace anyk {

/// The k lightest answers of a full CQ (fewer if the output is smaller).
template <SelectiveDioid D = TropicalDioid>
std::vector<ResultRow<D>> TopK(const Database& db, const ConjunctiveQuery& q,
                               size_t k,
                               typename RankedQuery<D>::Options opts = {}) {
  RankedQuery<D> rq(db, q, opts);
  std::vector<ResultRow<D>> out;
  out.reserve(k);
  while (out.size() < k) {
    auto row = rq.Next();
    if (!row) break;
    out.push_back(std::move(*row));
  }
  return out;
}

/// The k lightest answers through a fresh session of an already prepared
/// query — the serving-path variant: prepare once, call this from as many
/// threads as you like (each call owns its session; the prepared query is
/// only read).
template <SelectiveDioid D>
std::vector<ResultRow<D>> TopK(const PreparedQuery<D>& pq, Algorithm algo,
                               size_t k) {
  EnumerationSession<D> session = pq.NewSession(algo);
  std::vector<ResultRow<D>> out;
  out.reserve(k);
  ResultRow<D> row;
  while (out.size() < k && session.NextInto(&row)) {
    out.push_back(row);
  }
  return out;
}

/// Count the full output by draining an unranked batch enumeration.
template <SelectiveDioid D = TropicalDioid>
size_t CountOutput(const Database& db, const ConjunctiveQuery& q) {
  typename RankedQuery<D>::Options opts;
  opts.algorithm = Algorithm::kBatchNoSort;
  opts.enum_opts.with_witness = false;
  RankedQuery<D> rq(db, q, opts);
  size_t n = 0;
  while (rq.Next()) ++n;
  return n;
}

}  // namespace anyk

#endif  // ANYK_ANYK_TOPK_H_
