// High-level entry point: ranked enumeration of a full CQ over a database
// (Theorem 15). Plans:
//   * acyclic CQ           -> GYO join tree -> one T-DP problem,
//   * simple cycle (l>=4)  -> heavy/light decomposition -> UT-DP union,
//   * other cyclic CQs     -> worst-case-optimal generic join, then sort
//                             (batch fallback; no any-k guarantees).
//
// RankedQuery is the single-session convenience wrapper around the
// PreparedQuery / EnumerationSession split (prepared_query.h): it prepares
// once and opens one session. Code that serves the same query to several
// concurrent consumers should hold a PreparedQuery directly and call
// NewSession per thread.

#ifndef ANYK_ANYK_RANKED_QUERY_H_
#define ANYK_ANYK_RANKED_QUERY_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "anyk/factory.h"
#include "anyk/prepared_query.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "util/thread_pool.h"

namespace anyk {

template <SelectiveDioid D = TropicalDioid>
class RankedQuery {
 public:
  struct Options {
    Algorithm algorithm = Algorithm::kLazy;
    EnumOptions enum_opts;
    // Filter consecutive duplicates at the union level (only meaningful for
    // overlapping decompositions; the simple-cycle one is disjoint).
    bool dedup_union = false;
    CycleDecompositionOptions cycle_opts;
    // Preprocessing parallelism (not owned; null = serial).
    ThreadPool* pool = nullptr;
  };

  RankedQuery(const Database& db, const ConjunctiveQuery& q,
              Options opts = {})
      : prepared_(db, q,
                  typename PreparedQuery<D>::Options{
                      opts.enum_opts, opts.dedup_union, opts.cycle_opts,
                      opts.pool,
                      /*auto_plan=*/opts.algorithm == Algorithm::kAuto}),
        session_(prepared_.NewSession(opts.algorithm, opts.enum_opts)) {}

  /// Next answer in rank order, or nullopt when exhausted.
  std::optional<ResultRow<D>> Next() { return session_.Next(); }

  QueryPlan plan() const { return prepared_.plan(); }
  size_t NumTrees() const { return prepared_.NumTrees(); }
  /// The cached planner decision (what Algorithm::kAuto resolved to).
  const plan::PlanDecision& decision() const { return prepared_.decision(); }
  Enumerator<D>* enumerator() { return session_.enumerator(); }
  const std::vector<std::unique_ptr<StageGraph<D>>>& graphs() const {
    return prepared_.graphs();
  }

  /// The shared immutable half (e.g. to open further concurrent sessions).
  const PreparedQuery<D>& prepared() const { return prepared_; }

 private:
  PreparedQuery<D> prepared_;
  EnumerationSession<D> session_;
};

}  // namespace anyk

#endif  // ANYK_ANYK_RANKED_QUERY_H_
