// High-level entry point: ranked enumeration of a full CQ over a database
// (Theorem 15). Plans:
//   * acyclic CQ           -> GYO join tree -> one T-DP problem,
//   * simple cycle (l>=4)  -> heavy/light decomposition -> UT-DP union,
//   * other cyclic CQs     -> worst-case-optimal generic join, then sort
//                             (batch fallback; no any-k guarantees).

#ifndef ANYK_ANYK_RANKED_QUERY_H_
#define ANYK_ANYK_RANKED_QUERY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "anyk/factory.h"
#include "anyk/union_anyk.h"
#include "dioid/lift.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "join/generic_join.h"
#include "query/cycle_decomposition.h"
#include "query/gyo.h"
#include "query/join_tree.h"
#include "util/logging.h"

namespace anyk {

/// Pre-sorted in-memory enumerator (used by the generic-join fallback).
template <SelectiveDioid D>
class VectorEnumerator : public Enumerator<D> {
 public:
  explicit VectorEnumerator(std::vector<ResultRow<D>> rows)
      : rows_(std::move(rows)) {}
  std::optional<ResultRow<D>> Next() override {
    if (cursor_ >= rows_.size()) return std::nullopt;
    return rows_[cursor_++];
  }

 private:
  std::vector<ResultRow<D>> rows_;
  size_t cursor_ = 0;
};

enum class QueryPlan { kAcyclicTree, kCycleUnion, kGenericJoinBatch };

template <SelectiveDioid D = TropicalDioid>
class RankedQuery {
 public:
  struct Options {
    Algorithm algorithm = Algorithm::kLazy;
    EnumOptions enum_opts;
    // Filter consecutive duplicates at the union level (only meaningful for
    // overlapping decompositions; the simple-cycle one is disjoint).
    bool dedup_union = false;
    CycleDecompositionOptions cycle_opts;
  };

  RankedQuery(const Database& db, const ConjunctiveQuery& q,
              Options opts = {})
      : query_(q), opts_(opts) {
    ANYK_CHECK(q.IsFull())
        << "RankedQuery handles full CQs; see dp/projection.h for "
           "free-connex projections";
    GyoResult gyo = GyoReduce(Hypergraph::FromQuery(q));
    if (gyo.acyclic) {
      plan_ = QueryPlan::kAcyclicTree;
      instances_.push_back(
          BuildInstanceFromTopology(
              db, q, RerootChains(NormalizeTopology(gyo.tree, q))));
      graphs_.push_back(std::make_unique<StageGraph<D>>(
          BuildStageGraph<D>(instances_.back())));
      enumerator_ = MakeEnumerator<D>(graphs_.back().get(), opts_.algorithm,
                                      opts_.enum_opts);
      return;
    }
    CycleShape shape = DetectSimpleCycle(q);
    if (shape.is_cycle && q.NumAtoms() >= 4) {
      plan_ = QueryPlan::kCycleUnion;
      instances_ = DecomposeCycle(db, q, opts_.cycle_opts);
      std::vector<std::unique_ptr<Enumerator<D>>> parts;
      for (auto& inst : instances_) {
        graphs_.push_back(
            std::make_unique<StageGraph<D>>(BuildStageGraph<D>(inst)));
        parts.push_back(MakeEnumerator<D>(graphs_.back().get(),
                                          opts_.algorithm, opts_.enum_opts));
      }
      enumerator_ = std::make_unique<UnionEnumerator<D>>(std::move(parts),
                                                         opts_.dedup_union);
      return;
    }
    // General cyclic query: batch fallback via worst-case optimal join.
    plan_ = QueryPlan::kGenericJoinBatch;
    enumerator_ = GenericJoinFallback(db, q);
  }

  /// Next answer in rank order, or nullopt when exhausted.
  std::optional<ResultRow<D>> Next() { return enumerator_->Next(); }

  QueryPlan plan() const { return plan_; }
  size_t NumTrees() const { return instances_.size(); }
  Enumerator<D>* enumerator() { return enumerator_.get(); }
  const std::vector<std::unique_ptr<StageGraph<D>>>& graphs() const {
    return graphs_;
  }

 private:
  std::unique_ptr<Enumerator<D>> GenericJoinFallback(
      const Database& db, const ConjunctiveQuery& q) {
    JoinResultSet join = GenericJoin(db, q);
    const size_t na = q.NumAtoms();
    std::vector<ResultRow<D>> rows;
    rows.reserve(join.size());
    for (size_t i = 0; i < join.size(); ++i) {
      ResultRow<D> row;
      row.weight = D::One();
      row.assignment.assign(q.NumVars(), 0);
      if (opts_.enum_opts.with_witness) row.witness.assign(na, kNoRow);
      for (size_t a = 0; a < na; ++a) {
        const uint32_t r = join.witness(i)[a];
        const Relation& rel = db.Get(q.atom(a).relation);
        row.weight = D::Combine(row.weight,
                                LiftWeight<D>(rel.Weight(r), a, na, r));
        const auto& vars = q.AtomVarIds(a);
        for (size_t c = 0; c < vars.size(); ++c) {
          row.assignment[vars[c]] = rel.At(r, c);
        }
        if (opts_.enum_opts.with_witness) row.witness[a] = r;
      }
      rows.push_back(std::move(row));
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const ResultRow<D>& a, const ResultRow<D>& b) {
                       return D::Less(a.weight, b.weight);
                     });
    return std::make_unique<VectorEnumerator<D>>(std::move(rows));
  }

  ConjunctiveQuery query_;
  Options opts_;
  QueryPlan plan_;
  std::vector<TDPInstance> instances_;
  std::vector<std::unique_ptr<StageGraph<D>>> graphs_;
  std::unique_ptr<Enumerator<D>> enumerator_;
};

}  // namespace anyk

#endif  // ANYK_ANYK_RANKED_QUERY_H_
