// Common interface of all ranked-enumeration ("any-k") algorithms.

#ifndef ANYK_ANYK_ENUMERATOR_H_
#define ANYK_ANYK_ENUMERATOR_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "dioid/dioid.h"
#include "storage/kernels.h"
#include "storage/value.h"

namespace anyk {

inline constexpr uint32_t kNoRow = UINT32_MAX;

/// One query answer: its dioid weight, the variable assignment (indexed by
/// the query's variable ids) and, optionally, the witness — the original row
/// id per atom (Section 2.1: "we often represent an output tuple as a vector
/// of those input tuples that joined to produce it").
template <SelectiveDioid D>
struct ResultRow {
  typename D::Value weight;
  std::vector<Value> assignment;
  std::vector<uint32_t> witness;  // empty if witnesses were not requested
};

struct EnumOptions {
  bool with_witness = true;
  // Top-k budget: the maximum number of answers this enumerator will be
  // asked for. 0 is a SENTINEL meaning "unbounded / anytime enumeration",
  // NOT "zero answers" — there is no way to request an empty enumeration
  // through this knob. User-facing boundaries must therefore reject a
  // literal 0 before it reaches this field (the CLI rejects `--k 0`, the
  // server rejects `k=0`, and the SQL parser rejects `LIMIT 0`); api_test
  // pins the sentinel semantics. When set, enumerators
  // take the budget-aware fast path: ANYK-PART bounds its candidate heap to
  // O(k) via BoundedHeap and skips successor generation for the final
  // answer, Batch partial-sorts only the top k, and every enumerator
  // reports exhaustion once the budget is spent — NextInto returns false
  // after k answers even if more exist. The first k answers are exactly the
  // first k of an unbounded run (byte-identical under tie-break dioids,
  // identical modulo canonicalized tie groups under the non-cancellative
  // ones); differential_test's BoundedKSweep enforces this.
  size_t k_budget = 0;
  // Candidate-heap arity for the ANYK-PART strategies: 2, 4 (default) or 8,
  // dispatched to the matching BoundedHeap instantiation in MakeEnumerator.
  // Other values fall back to 4. Normally left alone; `--algorithm auto`
  // sets it from the cost model (docs/PLANNER.md, "Heap arity"). Ignored by
  // Recursive and the batch variants.
  size_t heap_arity = 4;
  // Bytes to pre-reserve in the enumerator's per-query arena at construction
  // (i.e. during preprocessing). With a large enough reservation the whole
  // enumeration phase performs zero global heap allocations — candidates,
  // prefixes, lazily initialized connector structures and suffix rankings
  // all live in the arena (see docs/ARCHITECTURE.md, "Memory layout").
  // 0 keeps the default first-block size; the arena still grows
  // geometrically on demand either way.
  size_t arena_reserve_bytes = 0;
  // First arena block size in bytes (0 = Arena default). Small values force
  // frequent block chaining — used by fuzz tests to stress arena
  // boundaries; production code should leave this alone.
  size_t arena_block_bytes = 0;
  // Bind-kernel flavor for the batched NextBatch paths (and, through
  // PreparedQuery, the stage-graph build): resolved ONCE at prepare /
  // construction time via GetGatherKernels, never per batch. kAuto defers
  // to DefaultKernelKind() (ANYK_KERNELS env override; see
  // storage/kernels.h). Both flavors produce byte-identical output — this
  // knob trades debuggability against throughput only.
  KernelKind kernels = KernelKind::kAuto;
};

/// Pull-based enumerator: answers come out in non-decreasing rank order
/// until exhausted.
///
/// Threading contract (docs/ARCHITECTURE.md, "Threading model"): an
/// enumerator owns all of its mutable state and only *reads* the stage
/// graph it was built over, so any number of enumerators may drain the
/// same shared graph concurrently — but a single enumerator must stay
/// confined to one thread at a time.
///
/// Two pull styles:
///  * Next() — convenience API returning a fresh ResultRow (allocates the
///    row's vectors on every call).
///  * NextInto(&row) — hot-path API writing into a caller-owned row whose
///    buffers are reused across calls; after a warm-up call the per-result
///    cost contains no heap allocation. The harness and CLI drain through
///    this; the default implementation falls back to Next() for wrapper
///    enumerators (union, projection, ...) that don't override it.
template <SelectiveDioid D>
class Enumerator {
 public:
  virtual ~Enumerator() = default;
  virtual std::optional<ResultRow<D>> Next() = 0;

  /// Write the next answer into `*row`; false when exhausted.
  virtual bool NextInto(ResultRow<D>* row) {
    std::optional<ResultRow<D>> r = Next();
    if (!r.has_value()) return false;
    *row = std::move(*r);
    return true;
  }

  /// Batched pull: write up to `n` answers into `rows[0..n)` (caller-owned,
  /// buffers reused across calls like NextInto) and return how many were
  /// written.
  ///
  /// PARTIAL-FILL CONTRACT (pinned; invariants_test::NextBatchContract
  /// sweeps every strategy and wrapper against it):
  ///  1. A return of exactly `n` promises nothing about remaining output —
  ///     keep calling.
  ///  2. A short count (< n, including 0) means EXHAUSTED: the output — or
  ///     the enumerator's `k_budget` — ran out. There are no other legal
  ///     short returns: an override may not return early because a buffer
  ///     filled, a shard ended, or an internal batch boundary was hit.
  ///     Callers (DrainTopK, the CLI writers, the server cursor loop)
  ///     rely on this to stop on the first short batch without a
  ///     confirming extra call.
  ///  3. After a short return, every further call returns 0 — exhaustion
  ///     is sticky.
  ///  4. rows[0..returned) are fully bound; rows beyond the returned count
  ///     are scratch with unspecified contents.
  ///  5. Interleaving NextBatch with Next()/NextInto() is legal; the
  ///     answer stream stays the same regardless of pull granularity.
  ///
  /// This base fallback inherits the contract from NextInto (its only
  /// short-stop is NextInto returning false, i.e. exhaustion — clause 2
  /// holds by construction). ANYK-PART and the batch enumerator override it
  /// to bind variables stage-wise across the whole batch via the gather
  /// kernels (storage/kernels.h); enumerators with no such cross-answer
  /// structure keep this NextInto loop.
  virtual size_t NextBatch(ResultRow<D>* rows, size_t n) {
    size_t produced = 0;
    while (produced < n && NextInto(&rows[produced])) ++produced;
    return produced;
  }
};

}  // namespace anyk

#endif  // ANYK_ANYK_ENUMERATOR_H_
