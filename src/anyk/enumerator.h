// Common interface of all ranked-enumeration ("any-k") algorithms.

#ifndef ANYK_ANYK_ENUMERATOR_H_
#define ANYK_ANYK_ENUMERATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "dioid/dioid.h"
#include "storage/value.h"

namespace anyk {

inline constexpr uint32_t kNoRow = UINT32_MAX;

/// One query answer: its dioid weight, the variable assignment (indexed by
/// the query's variable ids) and, optionally, the witness — the original row
/// id per atom (Section 2.1: "we often represent an output tuple as a vector
/// of those input tuples that joined to produce it").
template <SelectiveDioid D>
struct ResultRow {
  typename D::Value weight;
  std::vector<Value> assignment;
  std::vector<uint32_t> witness;  // empty if witnesses were not requested
};

struct EnumOptions {
  bool with_witness = true;
};

/// Pull-based enumerator: Next() returns answers in non-decreasing rank
/// order until exhausted.
template <SelectiveDioid D>
class Enumerator {
 public:
  virtual ~Enumerator() = default;
  virtual std::optional<ResultRow<D>> Next() = 0;
};

}  // namespace anyk

#endif  // ANYK_ANYK_ENUMERATOR_H_
