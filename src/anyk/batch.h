// Batch baseline (paper Section 4.3): produce the *full* unranked output by
// DFS over the (semi-join-reduced) stage graph — this is exactly the
// Yannakakis algorithm for acyclic queries, O(n + |out|) — and then sort it
// by weight. TTF equals TTL, MEM is O(|out| * l).
//
// The unsorted variant ("Batch(No sort)" in the paper's plots) is available
// through `BatchOptions::sort = false`.

#ifndef ANYK_ANYK_BATCH_H_
#define ANYK_ANYK_BATCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <optional>
#include <vector>

#include "anyk/enumerator.h"
#include "dp/stage_graph.h"
#include "util/logging.h"

namespace anyk {

struct BatchOptions {
  bool sort = true;
  EnumOptions enum_opts;
};

template <SelectiveDioid D>
class BatchEnumerator : public Enumerator<D> {
  using V = typename D::Value;

 public:
  explicit BatchEnumerator(const StageGraph<D>* g, BatchOptions opts = {})
      : g_(g), opts_(opts),
        kx_(&GetGatherKernels(opts.enum_opts.kernels)) {}

  bool NextInto(ResultRow<D>* row) override {
    if (!materialized_) Materialize();
    if (cursor_ >= order_.size()) return false;
    const size_t L = g_->stages.size();
    const uint32_t idx = order_[cursor_++];
    PrepareRow(weights_[idx], row);
    for (uint32_t j = 0; j < L; ++j) {
      BindState(*g_, j, solutions_[static_cast<size_t>(idx) * L + j],
                &row->assignment,
                opts_.enum_opts.with_witness ? &row->witness : nullptr);
    }
    return true;
  }

  /// Batched pull, bound stage-wise through the gather kernels: the batch's
  /// rank window of `order_` becomes a dense state matrix (one strided
  /// gather per stage out of the materialized solutions), then each stage
  /// binds its whole column of the batch in one BindStateBatch pass. Short
  /// return ⇒ the rank order is exhausted (contract in anyk/enumerator.h);
  /// the only possible short count is the tail min() below. Scratch buffers
  /// are plain members reused across calls (no allocation after warm-up;
  /// the batch variant's enumeration phase is already post-materialize).
  size_t NextBatch(ResultRow<D>* rows, size_t n) override {
    if (!materialized_) Materialize();
    const size_t L = g_->stages.size();
    const size_t produced = std::min(n, order_.size() - cursor_);
    for (size_t b = 0; b < produced; ++b) {
      PrepareRow(weights_[order_[cursor_ + b]], &rows[b]);
    }
    // Flatten the batch's states in rank order: batch_states_[b * L + j] =
    // answer b's state at stage j (one contiguous L-copy per answer out of
    // the materialized solutions).
    batch_states_.resize(produced * L);
    batch_ids_.resize(2 * produced);
    batch_vals_.resize(produced);
    const uint32_t* order_win = order_.data() + cursor_;
    for (size_t b = 0; b < produced; ++b) {
      std::copy_n(solutions_.data() + static_cast<size_t>(order_win[b]) * L,
                  L, batch_states_.data() + b * L);
    }
    for (uint32_t j = 0; j < L; ++j) {
      BindStateBatch(*g_, j, batch_states_.data(), L, j, produced, rows,
                     opts_.enum_opts.with_witness, *kx_, batch_ids_.data(),
                     batch_vals_.data());
    }
    cursor_ += produced;
    return produced;
  }

  std::optional<ResultRow<D>> Next() override {
    ResultRow<D> row;
    if (!NextInto(&row)) return std::nullopt;
    return row;
  }

  /// Number of output tuples (forces materialization).
  size_t OutputSize() {
    if (!materialized_) Materialize();
    return weights_.size();
  }

  static const char* Name() { return "Batch"; }

 private:
  void Materialize() {
    materialized_ = true;
    if (g_->Empty()) return;
    const size_t L = g_->stages.size();
    std::vector<uint32_t> states(L);
    std::vector<V> partial(L + 1);
    partial[0] = D::One();

    // DFS over the stage graph in serialization order: at stage j iterate
    // the members of the connector selected by the parent state.
    std::vector<uint32_t> pos(L);    // current member position per stage
    std::vector<uint32_t> end(L);    // member range end per stage
    int j = 0;
    SetRange(0, states, &pos, &end);
    while (j >= 0) {
      if (pos[j] >= end[j]) {
        --j;
        if (j >= 0) ++pos[j];
        continue;
      }
      const auto& st = g_->stages[j];
      states[j] = st.members[pos[j]];
      partial[j + 1] = D::Combine(partial[j], st.weight[states[j]]);
      if (static_cast<size_t>(j) + 1 == L) {
        for (uint32_t s : states) solutions_.push_back(s);
        weights_.push_back(partial[L]);
        ++pos[j];
      } else {
        ++j;
        SetRange(j, states, &pos, &end);
      }
    }

    order_.resize(weights_.size());
    std::iota(order_.begin(), order_.end(), 0u);
    const size_t k = opts_.enum_opts.k_budget;
    if (opts_.sort) {
      auto less = [&](uint32_t a, uint32_t b) {
        return D::Less(weights_[a], weights_[b]);
      };
      if (k != 0 && k < order_.size()) {
        // Budget-aware: only the top k ranks will ever be pulled, so select
        // and sort just those — O(|out| + k log k) instead of
        // O(|out| log |out|).
        std::partial_sort(order_.begin(),
                          order_.begin() + static_cast<ptrdiff_t>(k),
                          order_.end(), less);
        order_.resize(k);
      } else {
        std::sort(order_.begin(), order_.end(), less);
      }
    } else if (k != 0 && k < order_.size()) {
      order_.resize(k);  // unranked budget: any k tuples
    }
  }

  /// Size the row's reusable buffers and set the weight. `resize` + fill
  /// (never a fresh `assign` onto a moved-from vector) so the buffers keep
  /// their capacity across calls and the batch algorithm shares the
  /// zero-global-alloc enumeration property of the any-k hot path
  /// (invariants_test::BatchEnumerationIsAllocationFreeAfterMaterialize).
  void PrepareRow(const V& weight, ResultRow<D>* row) {
    row->weight = weight;
    row->assignment.resize(g_->instance->num_vars);
    std::fill(row->assignment.begin(), row->assignment.end(), 0);
    if (opts_.enum_opts.with_witness) {
      row->witness.resize(g_->instance->num_atoms);
      std::fill(row->witness.begin(), row->witness.end(), kNoRow);
    } else {
      row->witness.clear();
    }
  }

  void SetRange(int j, const std::vector<uint32_t>& states,
                std::vector<uint32_t>* pos, std::vector<uint32_t>* end) {
    const auto& st = g_->stages[j];
    uint32_t conn;
    if (j == 0) {
      conn = StageGraph<D>::kRootConn;
    } else {
      const auto& par = g_->stages[st.parent_stage];
      conn = par.conn_of_state[states[st.parent_stage] * par.num_slots +
                               st.parent_slot];
    }
    (*pos)[j] = st.conn_begin[conn];
    (*end)[j] = st.conn_begin[conn + 1];
  }

  const StageGraph<D>* g_;
  BatchOptions opts_;
  const GatherKernels* kx_;  // bound once at construction
  bool materialized_ = false;
  std::vector<uint32_t> solutions_;  // |out| * L state ids
  std::vector<V> weights_;
  std::vector<uint32_t> order_;
  size_t cursor_ = 0;
  // NextBatch scratch, reused across calls (capacity sticks after warm-up).
  std::vector<uint32_t> batch_states_;
  std::vector<uint32_t> batch_ids_;
  std::vector<Value> batch_vals_;
};

}  // namespace anyk

#endif  // ANYK_ANYK_BATCH_H_
