// ANYK-PART (paper Algorithm 1): ranked enumeration by repeated partitioning
// of the solution space (Lawler procedure), specialized to T-DP.
//
// A candidate is the best solution of one Lawler subspace: a prefix over the
// serialized stages σ1..σ_{r-1}, a deviating choice at stage σr, and the
// weight of its optimal completion. Popping the lightest candidate from the
// global priority queue Cand yields the next result; expanding it creates
// one new subspace per remaining stage (successors of the taken choices).
//
// Prefixes are persistent (parent-pointer pool), so creating a candidate is
// O(1) and MEM(k) = O(l*n + k*l).
//
// Candidate weights: expanding a solution with top choices provably keeps
// its total weight unchanged, so only deviations need arithmetic. With a
// dioid inverse (tropical), a deviation's total is
//     total ⊘ member_val[current] ⊗ member_val[deviation]      (O(1));
// without one we recompute from the assigned prefix and the *frontier* of
// pending connectors (Section 6.2's O(l) fallback).
//
// Memory: the candidate PQ, the prefix pool, the successor scratch buffer
// and every lazily built strategy structure draw from one per-query Arena,
// so after construction (preprocessing) the enumeration loop performs no
// global heap allocation (invariants_test verifies this with the counting
// allocator of util/alloc_stats.h).
//
// Threading: the enumerator never writes through g_ — all mutable state
// (arena, strategy, heaps, prefix pool, frontier) is member-owned, so
// multiple AnyKPartEnumerators over one shared StageGraph are safe; each
// individual enumerator is single-threaded (see PreparedQuery /
// EnumerationSession in anyk/prepared_query.h).

#ifndef ANYK_ANYK_ANYK_PART_H_
#define ANYK_ANYK_ANYK_PART_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "anyk/strategies.h"
#include "dp/stage_graph.h"
#include "util/arena.h"
#include "util/binary_heap.h"
#include "util/dary_heap.h"
#include "util/logging.h"

namespace anyk {

struct AnyKPartStats {
  size_t pops = 0;
  size_t pushes = 0;  // attempted pushes (includes budget-pruned ones)
  size_t max_cand_size = 0;
  size_t prefix_nodes = 0;
};

/// Algorithm 1, parameterized by successor strategy and candidate PQ (any
/// heap template over (entry, comparator, allocator)). The default PQ is the
/// budget-aware BoundedQuadHeap: without EnumOptions::k_budget it is a plain
/// flat 4-ary heap; with a budget it keeps the candidate set O(k) (see
/// util/dary_heap.h). Budget hooks are `if constexpr`-guarded, so plain
/// BinaryHeap / PairingHeap instantiations (bench_ablation_pq) still work.
template <SelectiveDioid D, template <class> class Strategy,
          template <class, class, class> class PQT = BoundedQuadHeap>
class AnyKPartEnumerator : public Enumerator<D> {
  using V = typename D::Value;
  static constexpr uint32_t kNoPrefix = UINT32_MAX;
  // True when the strategy's choice handles are ranks (0 = best member,
  // 1 = second best, ...) — the contract behind the budget fast path that
  // creates deviation candidates from the graph's precomputed
  // conn_best/conn_second without touching the strategy.
  static constexpr bool kRankHandles = [] {
    if constexpr (requires { Strategy<D>::kRankHandles; }) {
      return Strategy<D>::kRankHandles;
    } else {
      return false;
    }
  }();

 public:
  explicit AnyKPartEnumerator(const StageGraph<D>* g, EnumOptions opts = {})
      : g_(g),
        opts_(opts),
        arena_(opts.arena_block_bytes == 0 ? Arena::kDefaultFirstBlockBytes
                                           : opts.arena_block_bytes),
        strategy_(g, &arena_),
        cand_(CandLess{}, ArenaAllocator<Candidate>(&arena_)),
        prefix_pool_(ArenaAllocator<PrefixNode>(&arena_)),
        succ_buf_(ArenaAllocator<uint32_t>(&arena_)),
        frontier_(ArenaAllocator<std::pair<uint32_t, uint32_t>>(&arena_)),
        batch_states_(ArenaAllocator<uint32_t>(&arena_)),
        batch_weights_(ArenaAllocator<V>(&arena_)),
        batch_ids_(ArenaAllocator<uint32_t>(&arena_)),
        batch_vals_(ArenaAllocator<Value>(&arena_)),
        kx_(&GetGatherKernels(opts.kernels)) {
    arena_.Reserve(opts_.arena_reserve_bytes);
    if constexpr (requires { cand_.SetBudget(size_t{0}); }) {
      cand_.SetBudget(opts_.k_budget);
    }
    // Budget-capable strategies (Lazy's top-two scan init) learn k here,
    // before the root connector is touched below.
    if constexpr (requires { strategy_.SetBudget(size_t{0}); }) {
      strategy_.SetBudget(opts_.k_budget);
    }
    const size_t L = g_->stages.size();
    states_.assign(L, 0);
    frontier_.reserve(L + 1);
    if (!g_->Empty()) {
      if (kRankHandles && opts_.k_budget != 0) {
        // Fast path: the DP already knows the root optimum; the root
        // connector's successor structure is built on first pop instead.
        Push(Candidate{g_->stages[0].ConnBestVal(StageGraph<D>::kRootConn),
                       kNoPrefix, 0, StageGraph<D>::kRootConn, 0});
      } else {
        const uint32_t top = strategy_.Top(0, StageGraph<D>::kRootConn);
        const uint32_t pos =
            strategy_.MemberPos(0, StageGraph<D>::kRootConn, top);
        Push(Candidate{g_->stages[0].member_val[pos], kNoPrefix, 0,
                       StageGraph<D>::kRootConn, top});
      }
    }
  }

  bool NextInto(ResultRow<D>* row) override {
    if (!Advance()) return false;
    Assemble(cur_total_, row);
    return true;
  }

  /// Batched pull: pop up to `n` answers first (stashing each answer's stage
  /// states and weight in arena scratch), then bind variables stage-wise
  /// across the whole batch via the gather kernels — per stage, one strided
  /// extraction of the batch's state column, one row-id gather, and one
  /// column-segment gather per variable (BindStateBatch), instead of
  /// re-touching all L stages tuple-at-a-time per answer. Short return ⇒
  /// exhausted (the only early exit is Advance() == false); see the
  /// contract in anyk/enumerator.h.
  size_t NextBatch(ResultRow<D>* rows, size_t n) override {
    const size_t L = g_->stages.size();
    batch_states_.clear();
    batch_weights_.clear();
    size_t produced = 0;
    while (produced < n && Advance()) {
      batch_states_.insert(batch_states_.end(), states_.begin(),
                           states_.end());
      batch_weights_.push_back(cur_total_);
      ++produced;
    }
    for (size_t b = 0; b < produced; ++b) {
      PrepareRow(batch_weights_[b], &rows[b]);
    }
    batch_ids_.resize(2 * produced);
    batch_vals_.resize(produced);
    for (uint32_t j = 0; j < L; ++j) {
      BindStateBatch(*g_, j, batch_states_.data(), L, j, produced, rows,
                     opts_.with_witness, *kx_, batch_ids_.data(),
                     batch_vals_.data());
    }
    return produced;
  }

  std::optional<ResultRow<D>> Next() override {
    ResultRow<D> row;
    if (!NextInto(&row)) return std::nullopt;
    return row;
  }

  const AnyKPartStats& stats() const { return stats_; }
  const StrategyStats& strategy_stats() const { return strategy_.stats(); }
  /// Candidate-heap budget counters (zeros when the PQ is not a
  /// BoundedHeap, e.g. the bench_ablation_pq instantiations).
  BoundedHeapStats bounded_heap_stats() const {
    if constexpr (requires { cand_.stats(); }) {
      return cand_.stats();
    } else {
      return BoundedHeapStats{};
    }
  }
  size_t CandSize() const { return cand_.Size(); }
  const Arena& arena() const { return arena_; }
  static const char* Name() { return Strategy<D>::kName; }

 private:
  struct Candidate {
    V total;            // weight of the subspace's best full solution
    uint32_t prefix;    // assigned states σ1..σ_{r-1} (prefix-pool id)
    uint32_t dev_stage; // r
    uint32_t conn;      // connector at stage r (local id)
    uint32_t choice;    // strategy-specific choice handle
  };
  struct CandLess {
    bool operator()(const Candidate& a, const Candidate& b) const {
      return D::Less(a.total, b.total);
    }
  };
  struct PrefixNode {
    uint32_t parent;
    uint32_t state;
  };

  /// Pop the next-lightest candidate and expand it: reconstruct its prefix
  /// into states_, assign the remaining stages with top choices, and spawn
  /// the successor subspaces. On return states_ holds the full solution and
  /// cur_total_ its weight; false when the output — or the k-budget — is
  /// exhausted. When the budget says this is the final answer, successor
  /// generation (and the no-inverse frontier bookkeeping that only feeds
  /// it) is skipped entirely: nothing after this answer will be emitted.
  bool Advance() {
    if (opts_.k_budget != 0 && emitted_ >= opts_.k_budget) return false;
    if (cand_.Empty()) return false;
    const size_t L = g_->stages.size();
    Candidate c = cand_.PopMin();
    ++stats_.pops;
    ++emitted_;
    skip_generation_ = opts_.k_budget != 0 && emitted_ >= opts_.k_budget;

    // Reconstruct the assigned prefix σ1..σ_{r-1}.
    states_.assign(L, 0);
    {
      uint32_t p = c.prefix;
      uint32_t idx = c.dev_stage;
      while (p != kNoPrefix) {
        states_[--idx] = prefix_pool_[p].state;
        p = prefix_pool_[p].parent;
      }
      ANYK_DCHECK(idx == 0);
    }

    if constexpr (!D::kHasInverse) {
      if (!skip_generation_) RebuildFrontier(c.dev_stage);
    }

    // The budget fast path (rank-handle strategies only) creates deviation
    // candidates straight from the graph's conn_best/conn_second, so the
    // popped candidate's connector may not have a successor structure yet —
    // build it now, once, since Successors/MemberPos below need it.
    const bool fast = kRankHandles && opts_.k_budget != 0;
    if (fast && !skip_generation_) strategy_.Top(c.dev_stage, c.conn);

    // Deviations of the popped candidate within its own subspace (the first
    // iteration of Algorithm 1's for-loop, r = dev_stage).
    if (!skip_generation_) {
      GenerateCandidates(c.dev_stage, c.conn, c.choice, c.total, c.prefix);
    }

    // Assign the deviating choice and expand stage by stage with top
    // choices, spawning one subspace per stage. For the final budgeted
    // answer the strategy is bypassed below the deviation: the DP already
    // knows each connector's best member (conn_best), so no successor
    // structure is initialized for connectors only this answer touches.
    uint32_t prefix = c.prefix;
    CommitStage(c.dev_stage, DevMemberPos(c.dev_stage, c.conn, c.choice),
                &prefix);
    for (uint32_t j = c.dev_stage + 1; j < L; ++j) {
      const auto& stj = g_->stages[j];
      const auto& par = g_->stages[stj.parent_stage];
      const uint32_t conn =
          par.conn_of_state[states_[stj.parent_stage] * par.num_slots +
                            stj.parent_slot];
      if (skip_generation_) {
        CommitStage(j, stj.conn_best[conn], &prefix);
        continue;
      }
      if (fast) {
        // O(1) deviation-from-top via the precomputed second-best member:
        // no per-session successor structure is touched here — the
        // connector is only initialized if this candidate is later popped.
        const uint32_t second = stj.conn_second[conn];
        if (second != StageGraph<D>::kNoMember) {
          V base;
          if constexpr (D::kHasInverse) {
            base = D::Subtract(c.total, stj.member_val[stj.conn_best[conn]]);
          } else {
            base = FrontierBase(j);
          }
          Push(Candidate{D::Combine(base, stj.member_val[second]), prefix, j,
                         conn, /*choice=rank*/ 1});
        }
        CommitStage(j, stj.conn_best[conn], &prefix);
        continue;
      }
      const uint32_t top = strategy_.Top(j, conn);
      GenerateCandidates(j, conn, top, c.total, prefix);
      AssignStage(j, conn, top, &prefix);
    }

    cur_total_ = c.total;
    return true;
  }

  void Push(Candidate cand) {
    cand_.Push(std::move(cand));
    ++stats_.pushes;
    stats_.max_cand_size = std::max(stats_.max_cand_size, cand_.Size());
  }

  /// Member position behind a popped candidate's choice handle. With a
  /// rank-handle strategy under a budget, ranks 0/1 of an untouched
  /// connector resolve through the graph's precomputed best/second-best —
  /// the only ranks a fast-path candidate can carry — without forcing the
  /// successor structure into existence.
  uint32_t DevMemberPos(uint32_t stage, uint32_t conn, uint32_t choice) {
    if constexpr (kRankHandles) {
      if (opts_.k_budget != 0 && choice <= 1 &&
          !strategy_.Initialized(stage, conn)) {
        const auto& st = g_->stages[stage];
        return choice == 0 ? st.conn_best[conn] : st.conn_second[conn];
      }
    }
    return strategy_.MemberPos(stage, conn, choice);
  }

  /// Record the chosen state for `stage` (by absolute member position) and
  /// append it to the prefix.
  void CommitStage(uint32_t stage, uint32_t pos, uint32_t* prefix) {
    const auto& st = g_->stages[stage];
    const uint32_t state = st.members[pos];
    states_[stage] = state;
    // The prefix pool and frontier only feed candidate generation, which the
    // final budgeted answer skips — states_ alone drives assembly.
    if (skip_generation_) return;
    prefix_pool_.push_back(PrefixNode{*prefix, state});
    *prefix = static_cast<uint32_t>(prefix_pool_.size() - 1);
    stats_.prefix_nodes = prefix_pool_.size();
    if constexpr (!D::kHasInverse) {
      // Frontier maintenance: this stage's connector is now resolved; the
      // chosen state's child connectors become pending.
      RemoveFromFrontier(stage);
      assigned_weight_ = D::Combine(assigned_weight_, st.weight[state]);
      for (uint32_t slot = 0; slot < st.num_slots; ++slot) {
        frontier_.push_back(
            {g_->child_stage[stage][slot],
             st.conn_of_state[state * st.num_slots + slot]});
      }
    }
  }

  /// Record the chosen state for `stage` via the strategy's choice handle.
  void AssignStage(uint32_t stage, uint32_t conn, uint32_t choice,
                   uint32_t* prefix) {
    CommitStage(stage, strategy_.MemberPos(stage, conn, choice), prefix);
  }

  /// Push one candidate per successor of `cur_choice` at (stage, conn).
  void GenerateCandidates(uint32_t stage, uint32_t conn, uint32_t cur_choice,
                          const V& solution_total, uint32_t prefix) {
    succ_buf_.clear();
    strategy_.Successors(stage, conn, cur_choice, &succ_buf_);
    if (succ_buf_.empty()) return;
    const auto& st = g_->stages[stage];
    V base;
    if constexpr (D::kHasInverse) {
      const uint32_t cur_pos = strategy_.MemberPos(stage, conn, cur_choice);
      base = D::Subtract(solution_total, st.member_val[cur_pos]);
    } else {
      (void)solution_total;
      base = FrontierBase(stage);
    }
    for (uint32_t h : succ_buf_) {
      const uint32_t pos = strategy_.MemberPos(stage, conn, h);
      Push(Candidate{D::Combine(base, st.member_val[pos]), prefix, stage, conn,
                     h});
    }
  }

  // ---- no-inverse fallback: explicit frontier of pending connectors ----

  void RebuildFrontier(uint32_t dev_stage) {
    frontier_.clear();
    assigned_weight_ = D::One();
    for (uint32_t i = 0; i < dev_stage; ++i) {
      assigned_weight_ = D::Combine(assigned_weight_, g_->stages[i].weight[states_[i]]);
    }
    // Pending = stages whose parent is assigned but that are not assigned
    // themselves; stage 0's connector is the root connector.
    const size_t L = g_->stages.size();
    if (dev_stage == 0) {
      frontier_.push_back({0, StageGraph<D>::kRootConn});
      return;
    }
    for (uint32_t j = dev_stage; j < L; ++j) {
      const auto& stj = g_->stages[j];
      if (stj.parent_stage >= 0 &&
          static_cast<uint32_t>(stj.parent_stage) < dev_stage) {
        const auto& par = g_->stages[stj.parent_stage];
        frontier_.push_back(
            {j, par.conn_of_state[states_[stj.parent_stage] * par.num_slots +
                                  stj.parent_slot]});
      }
    }
  }

  void RemoveFromFrontier(uint32_t stage) {
    for (size_t i = 0; i < frontier_.size(); ++i) {
      if (frontier_[i].first == stage) {
        frontier_[i] = frontier_.back();
        frontier_.pop_back();
        return;
      }
    }
    ANYK_CHECK(false) << "stage " << stage << " not pending";
  }

  /// assigned ⊗ best completions of every pending connector except the one
  /// at `dev_stage` (which the caller replaces with an explicit choice).
  V FrontierBase(uint32_t dev_stage) const {
    V base = assigned_weight_;
    for (const auto& [stg, conn] : frontier_) {
      if (stg == dev_stage) continue;
      base = D::Combine(base, g_->stages[stg].ConnBestVal(conn));
    }
    return base;
  }

  /// Size the row's reusable buffers and set the weight (no binding yet).
  void PrepareRow(const V& total, ResultRow<D>* row) {
    row->weight = total;
    row->assignment.assign(g_->instance->num_vars, 0);
    if (opts_.with_witness) {
      row->witness.assign(g_->instance->num_atoms, kNoRow);
    } else {
      row->witness.clear();
    }
  }

  void Assemble(const V& total, ResultRow<D>* row) {
    PrepareRow(total, row);
    for (uint32_t j = 0; j < g_->stages.size(); ++j) {
      BindState(*g_, j, states_[j], &row->assignment,
                opts_.with_witness ? &row->witness : nullptr);
    }
  }

  const StageGraph<D>* g_;
  EnumOptions opts_;
  // The arena must precede every member that draws from it.
  Arena arena_;
  Strategy<D> strategy_;
  PQT<Candidate, CandLess, ArenaAllocator<Candidate>> cand_;
  ArenaVector<PrefixNode> prefix_pool_;  // persistent prefix parent-pointers
  std::vector<uint32_t> states_;         // sized L at construction
  ArenaVector<uint32_t> succ_buf_;
  ArenaVector<std::pair<uint32_t, uint32_t>> frontier_;  // (stage, conn)
  ArenaVector<uint32_t> batch_states_;  // NextBatch scratch: L states per row
  ArenaVector<V> batch_weights_;
  ArenaVector<uint32_t> batch_ids_;  // BindStateBatch id scratch (2 per row)
  ArenaVector<Value> batch_vals_;    // BindStateBatch value scratch
  const GatherKernels* kx_;          // bound once at construction
  V assigned_weight_ = D::One();
  V cur_total_{};            // weight of the answer Advance() just produced
  size_t emitted_ = 0;       // answers popped so far (budget accounting)
  bool skip_generation_ = false;  // true while expanding the final answer
  AnyKPartStats stats_;
};

}  // namespace anyk

#endif  // ANYK_ANYK_ANYK_PART_H_
