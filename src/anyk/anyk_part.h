// ANYK-PART (paper Algorithm 1): ranked enumeration by repeated partitioning
// of the solution space (Lawler procedure), specialized to T-DP.
//
// A candidate is the best solution of one Lawler subspace: a prefix over the
// serialized stages σ1..σ_{r-1}, a deviating choice at stage σr, and the
// weight of its optimal completion. Popping the lightest candidate from the
// global priority queue Cand yields the next result; expanding it creates
// one new subspace per remaining stage (successors of the taken choices).
//
// Prefixes are persistent (parent-pointer pool), so creating a candidate is
// O(1) and MEM(k) = O(l*n + k*l).
//
// Candidate weights: expanding a solution with top choices provably keeps
// its total weight unchanged, so only deviations need arithmetic. With a
// dioid inverse (tropical), a deviation's total is
//     total ⊘ member_val[current] ⊗ member_val[deviation]      (O(1));
// without one we recompute from the assigned prefix and the *frontier* of
// pending connectors (Section 6.2's O(l) fallback).
//
// Memory: the candidate PQ, the prefix pool, the successor scratch buffer
// and every lazily built strategy structure draw from one per-query Arena,
// so after construction (preprocessing) the enumeration loop performs no
// global heap allocation (invariants_test verifies this with the counting
// allocator of util/alloc_stats.h).
//
// Threading: the enumerator never writes through g_ — all mutable state
// (arena, strategy, heaps, prefix pool, frontier) is member-owned, so
// multiple AnyKPartEnumerators over one shared StageGraph are safe; each
// individual enumerator is single-threaded (see PreparedQuery /
// EnumerationSession in anyk/prepared_query.h).

#ifndef ANYK_ANYK_ANYK_PART_H_
#define ANYK_ANYK_ANYK_PART_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "anyk/strategies.h"
#include "dp/stage_graph.h"
#include "util/arena.h"
#include "util/binary_heap.h"
#include "util/logging.h"

namespace anyk {

struct AnyKPartStats {
  size_t pops = 0;
  size_t pushes = 0;
  size_t max_cand_size = 0;
  size_t prefix_nodes = 0;
};

/// Algorithm 1, parameterized by successor strategy and candidate PQ (any
/// heap template over (entry, comparator, allocator)).
template <SelectiveDioid D, template <class> class Strategy,
          template <class, class, class> class PQT = BinaryHeap>
class AnyKPartEnumerator : public Enumerator<D> {
  using V = typename D::Value;
  static constexpr uint32_t kNoPrefix = UINT32_MAX;

 public:
  explicit AnyKPartEnumerator(const StageGraph<D>* g, EnumOptions opts = {})
      : g_(g),
        opts_(opts),
        arena_(opts.arena_block_bytes == 0 ? Arena::kDefaultFirstBlockBytes
                                           : opts.arena_block_bytes),
        strategy_(g, &arena_),
        cand_(CandLess{}, ArenaAllocator<Candidate>(&arena_)),
        prefix_pool_(ArenaAllocator<PrefixNode>(&arena_)),
        succ_buf_(ArenaAllocator<uint32_t>(&arena_)),
        frontier_(ArenaAllocator<std::pair<uint32_t, uint32_t>>(&arena_)) {
    arena_.Reserve(opts_.arena_reserve_bytes);
    const size_t L = g_->stages.size();
    states_.assign(L, 0);
    frontier_.reserve(L + 1);
    if (!g_->Empty()) {
      const uint32_t top = strategy_.Top(0, StageGraph<D>::kRootConn);
      const uint32_t pos =
          strategy_.MemberPos(0, StageGraph<D>::kRootConn, top);
      Push(Candidate{g_->stages[0].member_val[pos], kNoPrefix, 0,
                     StageGraph<D>::kRootConn, top});
    }
  }

  bool NextInto(ResultRow<D>* row) override {
    if (cand_.Empty()) return false;
    const size_t L = g_->stages.size();
    Candidate c = cand_.PopMin();
    ++stats_.pops;

    // Reconstruct the assigned prefix σ1..σ_{r-1}.
    states_.assign(L, 0);
    {
      uint32_t p = c.prefix;
      uint32_t idx = c.dev_stage;
      while (p != kNoPrefix) {
        states_[--idx] = prefix_pool_[p].state;
        p = prefix_pool_[p].parent;
      }
      ANYK_DCHECK(idx == 0);
    }

    if constexpr (!D::kHasInverse) RebuildFrontier(c.dev_stage);

    // Deviations of the popped candidate within its own subspace (the first
    // iteration of Algorithm 1's for-loop, r = dev_stage).
    GenerateCandidates(c.dev_stage, c.conn, c.choice, c.total, c.prefix);

    // Assign the deviating choice and expand stage by stage with top
    // choices, spawning one subspace per stage.
    uint32_t prefix = c.prefix;
    AssignStage(c.dev_stage, c.conn, c.choice, &prefix);
    for (uint32_t j = c.dev_stage + 1; j < L; ++j) {
      const auto& stj = g_->stages[j];
      const auto& par = g_->stages[stj.parent_stage];
      const uint32_t conn =
          par.conn_of_state[states_[stj.parent_stage] * par.num_slots +
                            stj.parent_slot];
      const uint32_t top = strategy_.Top(j, conn);
      GenerateCandidates(j, conn, top, c.total, prefix);
      AssignStage(j, conn, top, &prefix);
    }

    Assemble(c.total, row);
    return true;
  }

  std::optional<ResultRow<D>> Next() override {
    ResultRow<D> row;
    if (!NextInto(&row)) return std::nullopt;
    return row;
  }

  const AnyKPartStats& stats() const { return stats_; }
  const StrategyStats& strategy_stats() const { return strategy_.stats(); }
  size_t CandSize() const { return cand_.Size(); }
  const Arena& arena() const { return arena_; }
  static const char* Name() { return Strategy<D>::kName; }

 private:
  struct Candidate {
    V total;            // weight of the subspace's best full solution
    uint32_t prefix;    // assigned states σ1..σ_{r-1} (prefix-pool id)
    uint32_t dev_stage; // r
    uint32_t conn;      // connector at stage r (local id)
    uint32_t choice;    // strategy-specific choice handle
  };
  struct CandLess {
    bool operator()(const Candidate& a, const Candidate& b) const {
      return D::Less(a.total, b.total);
    }
  };
  struct PrefixNode {
    uint32_t parent;
    uint32_t state;
  };

  void Push(Candidate cand) {
    cand_.Push(std::move(cand));
    ++stats_.pushes;
    stats_.max_cand_size = std::max(stats_.max_cand_size, cand_.Size());
  }

  /// Record the chosen state for `stage` and append it to the prefix.
  void AssignStage(uint32_t stage, uint32_t conn, uint32_t choice,
                   uint32_t* prefix) {
    const auto& st = g_->stages[stage];
    const uint32_t pos = strategy_.MemberPos(stage, conn, choice);
    const uint32_t state = st.members[pos];
    states_[stage] = state;
    prefix_pool_.push_back(PrefixNode{*prefix, state});
    *prefix = static_cast<uint32_t>(prefix_pool_.size() - 1);
    stats_.prefix_nodes = prefix_pool_.size();
    if constexpr (!D::kHasInverse) {
      // Frontier maintenance: this stage's connector is now resolved; the
      // chosen state's child connectors become pending.
      RemoveFromFrontier(stage);
      assigned_weight_ = D::Combine(assigned_weight_, st.weight[state]);
      for (uint32_t slot = 0; slot < st.num_slots; ++slot) {
        frontier_.push_back(
            {g_->child_stage[stage][slot],
             st.conn_of_state[state * st.num_slots + slot]});
      }
    }
  }

  /// Push one candidate per successor of `cur_choice` at (stage, conn).
  void GenerateCandidates(uint32_t stage, uint32_t conn, uint32_t cur_choice,
                          const V& solution_total, uint32_t prefix) {
    succ_buf_.clear();
    strategy_.Successors(stage, conn, cur_choice, &succ_buf_);
    if (succ_buf_.empty()) return;
    const auto& st = g_->stages[stage];
    V base;
    if constexpr (D::kHasInverse) {
      const uint32_t cur_pos = strategy_.MemberPos(stage, conn, cur_choice);
      base = D::Subtract(solution_total, st.member_val[cur_pos]);
    } else {
      (void)solution_total;
      base = FrontierBase(stage);
    }
    for (uint32_t h : succ_buf_) {
      const uint32_t pos = strategy_.MemberPos(stage, conn, h);
      Push(Candidate{D::Combine(base, st.member_val[pos]), prefix, stage, conn,
                     h});
    }
  }

  // ---- no-inverse fallback: explicit frontier of pending connectors ----

  void RebuildFrontier(uint32_t dev_stage) {
    frontier_.clear();
    assigned_weight_ = D::One();
    for (uint32_t i = 0; i < dev_stage; ++i) {
      assigned_weight_ = D::Combine(assigned_weight_, g_->stages[i].weight[states_[i]]);
    }
    // Pending = stages whose parent is assigned but that are not assigned
    // themselves; stage 0's connector is the root connector.
    const size_t L = g_->stages.size();
    if (dev_stage == 0) {
      frontier_.push_back({0, StageGraph<D>::kRootConn});
      return;
    }
    for (uint32_t j = dev_stage; j < L; ++j) {
      const auto& stj = g_->stages[j];
      if (stj.parent_stage >= 0 &&
          static_cast<uint32_t>(stj.parent_stage) < dev_stage) {
        const auto& par = g_->stages[stj.parent_stage];
        frontier_.push_back(
            {j, par.conn_of_state[states_[stj.parent_stage] * par.num_slots +
                                  stj.parent_slot]});
      }
    }
  }

  void RemoveFromFrontier(uint32_t stage) {
    for (size_t i = 0; i < frontier_.size(); ++i) {
      if (frontier_[i].first == stage) {
        frontier_[i] = frontier_.back();
        frontier_.pop_back();
        return;
      }
    }
    ANYK_CHECK(false) << "stage " << stage << " not pending";
  }

  /// assigned ⊗ best completions of every pending connector except the one
  /// at `dev_stage` (which the caller replaces with an explicit choice).
  V FrontierBase(uint32_t dev_stage) const {
    V base = assigned_weight_;
    for (const auto& [stg, conn] : frontier_) {
      if (stg == dev_stage) continue;
      base = D::Combine(base, g_->stages[stg].ConnBestVal(conn));
    }
    return base;
  }

  void Assemble(const V& total, ResultRow<D>* row) {
    row->weight = total;
    row->assignment.assign(g_->instance->num_vars, 0);
    if (opts_.with_witness) {
      row->witness.assign(g_->instance->num_atoms, kNoRow);
    } else {
      row->witness.clear();
    }
    for (uint32_t j = 0; j < g_->stages.size(); ++j) {
      BindState(*g_, j, states_[j], &row->assignment,
                opts_.with_witness ? &row->witness : nullptr);
    }
  }

  const StageGraph<D>* g_;
  EnumOptions opts_;
  // The arena must precede every member that draws from it.
  Arena arena_;
  Strategy<D> strategy_;
  PQT<Candidate, CandLess, ArenaAllocator<Candidate>> cand_;
  ArenaVector<PrefixNode> prefix_pool_;  // persistent prefix parent-pointers
  std::vector<uint32_t> states_;         // sized L at construction
  ArenaVector<uint32_t> succ_buf_;
  ArenaVector<std::pair<uint32_t, uint32_t>> frontier_;  // (stage, conn)
  V assigned_weight_ = D::One();
  AnyKPartStats stats_;
};

}  // namespace anyk

#endif  // ANYK_ANYK_ANYK_PART_H_
