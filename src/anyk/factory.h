// Algorithm registry: constructs any of the six ranked-enumeration
// algorithms of the paper's experimental study (Section 7) over a stage
// graph.

#ifndef ANYK_ANYK_FACTORY_H_
#define ANYK_ANYK_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "anyk/anyk_part.h"
#include "anyk/anyk_rec.h"
#include "anyk/batch.h"
#include "anyk/enumerator.h"
#include "util/logging.h"

namespace anyk {

enum class Algorithm {
  kRecursive,  // ANYK-REC (REA)
  kTake2,      // ANYK-PART, heap-children successors (this paper)
  kLazy,       // ANYK-PART, incrementally drained heap (Chang et al.)
  kEager,      // ANYK-PART, pre-sorted choice sets
  kAll,        // ANYK-PART, insert all siblings (Yang et al.)
  kBatch,      // full result via Yannakakis-style DFS + sort
  kBatchNoSort // full result, unranked (reference only)
};

inline const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kRecursive: return "Recursive";
    case Algorithm::kTake2: return "Take2";
    case Algorithm::kLazy: return "Lazy";
    case Algorithm::kEager: return "Eager";
    case Algorithm::kAll: return "All";
    case Algorithm::kBatch: return "Batch";
    case Algorithm::kBatchNoSort: return "BatchNoSort";
  }
  return "?";
}

/// The five any-k algorithms (no batch variants).
inline std::vector<Algorithm> AllAnyKAlgorithms() {
  return {Algorithm::kRecursive, Algorithm::kTake2, Algorithm::kLazy,
          Algorithm::kEager, Algorithm::kAll};
}

/// All ranked algorithms including Batch.
inline std::vector<Algorithm> AllRankedAlgorithms() {
  auto v = AllAnyKAlgorithms();
  v.push_back(Algorithm::kBatch);
  return v;
}

/// Construct an enumerator over `g`. Only reads the graph, so concurrent
/// calls against one shared (immutable) StageGraph are safe — this is what
/// PreparedQuery::NewSession relies on.
template <SelectiveDioid D>
std::unique_ptr<Enumerator<D>> MakeEnumerator(const StageGraph<D>* g,
                                              Algorithm algo,
                                              EnumOptions opts = {}) {
  switch (algo) {
    case Algorithm::kRecursive:
      return std::make_unique<RecursiveEnumerator<D>>(g, opts);
    case Algorithm::kTake2:
      return std::make_unique<AnyKPartEnumerator<D, Take2Strategy>>(g, opts);
    case Algorithm::kLazy:
      return std::make_unique<AnyKPartEnumerator<D, LazyStrategy>>(g, opts);
    case Algorithm::kEager:
      return std::make_unique<AnyKPartEnumerator<D, EagerStrategy>>(g, opts);
    case Algorithm::kAll:
      return std::make_unique<AnyKPartEnumerator<D, AllStrategy>>(g, opts);
    case Algorithm::kBatch:
      return std::make_unique<BatchEnumerator<D>>(g,
                                                  BatchOptions{true, opts});
    case Algorithm::kBatchNoSort:
      return std::make_unique<BatchEnumerator<D>>(g,
                                                  BatchOptions{false, opts});
  }
  ANYK_CHECK(false) << "unknown algorithm";
  return nullptr;
}

}  // namespace anyk

#endif  // ANYK_ANYK_FACTORY_H_
