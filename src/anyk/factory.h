// Algorithm registry: constructs any of the six ranked-enumeration
// algorithms of the paper's experimental study (Section 7) over a stage
// graph, plus the `kAuto` marker resolved by the cost-based planner.
//
// anyk-lint: allow-file(heap-hot-path): every allocation here is the
// one-time construction of an enumerator at session-open, charged to TTF —
// never per-result work (invariants_test pins the zero-alloc guarantee).

#ifndef ANYK_ANYK_FACTORY_H_
#define ANYK_ANYK_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "anyk/anyk_part.h"
#include "anyk/anyk_rec.h"
#include "anyk/batch.h"
#include "anyk/enumerator.h"
#include "util/dary_heap.h"
#include "util/logging.h"

namespace anyk {

enum class Algorithm {
  kRecursive,  // ANYK-REC (REA)
  kTake2,      // ANYK-PART, heap-children successors (this paper)
  kLazy,       // ANYK-PART, incrementally drained heap (Chang et al.)
  kEager,      // ANYK-PART, pre-sorted choice sets
  kAll,        // ANYK-PART, insert all siblings (Yang et al.)
  kBatch,      // full result via Yannakakis-style DFS + sort
  kBatchNoSort,// full result, unranked (reference only)
  kAuto        // cost-based planner picks one of the above (docs/PLANNER.md);
               // resolved at prepare time by PreparedQuery, never passed to
               // MakeEnumerator directly
};

inline const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kRecursive: return "Recursive";
    case Algorithm::kTake2: return "Take2";
    case Algorithm::kLazy: return "Lazy";
    case Algorithm::kEager: return "Eager";
    case Algorithm::kAll: return "All";
    case Algorithm::kBatch: return "Batch";
    case Algorithm::kBatchNoSort: return "BatchNoSort";
    case Algorithm::kAuto: return "Auto";
  }
  return "?";
}

/// The five any-k algorithms (no batch variants, no auto).
inline std::vector<Algorithm> AllAnyKAlgorithms() {
  return {Algorithm::kRecursive, Algorithm::kTake2, Algorithm::kLazy,
          Algorithm::kEager, Algorithm::kAll};
}

/// All ranked algorithms including Batch (still no auto: these lists feed
/// differential oracles, and auto resolves to a member of this set).
inline std::vector<Algorithm> AllRankedAlgorithms() {
  auto v = AllAnyKAlgorithms();
  v.push_back(Algorithm::kBatch);
  return v;
}

namespace internal {

/// One ANYK-PART strategy at the candidate-heap arity requested in
/// EnumOptions::heap_arity (2 / 4 / 8; anything else = the default 4).
template <SelectiveDioid D, template <class> class Strategy>
std::unique_ptr<Enumerator<D>> MakePartEnumerator(const StageGraph<D>* g,
                                                  const EnumOptions& opts) {
  switch (opts.heap_arity) {
    case 2:
      return std::make_unique<
          AnyKPartEnumerator<D, Strategy, BoundedBinaryHeap>>(g, opts);
    case 8:
      return std::make_unique<AnyKPartEnumerator<D, Strategy, BoundedOctHeap>>(
          g, opts);
    default:
      return std::make_unique<AnyKPartEnumerator<D, Strategy>>(g, opts);
  }
}

}  // namespace internal

/// Construct an enumerator over `g`. Only reads the graph, so concurrent
/// calls against one shared (immutable) StageGraph are safe — this is what
/// PreparedQuery::NewSession relies on.
template <SelectiveDioid D>
std::unique_ptr<Enumerator<D>> MakeEnumerator(const StageGraph<D>* g,
                                              Algorithm algo,
                                              EnumOptions opts = {}) {
  switch (algo) {
    case Algorithm::kRecursive:
      return std::make_unique<RecursiveEnumerator<D>>(g, opts);
    case Algorithm::kTake2:
      return internal::MakePartEnumerator<D, Take2Strategy>(g, opts);
    case Algorithm::kLazy:
      return internal::MakePartEnumerator<D, LazyStrategy>(g, opts);
    case Algorithm::kEager:
      return internal::MakePartEnumerator<D, EagerStrategy>(g, opts);
    case Algorithm::kAll:
      return internal::MakePartEnumerator<D, AllStrategy>(g, opts);
    case Algorithm::kBatch:
      return std::make_unique<BatchEnumerator<D>>(g,
                                                  BatchOptions{true, opts});
    case Algorithm::kBatchNoSort:
      return std::make_unique<BatchEnumerator<D>>(g,
                                                  BatchOptions{false, opts});
    case Algorithm::kAuto:
      ANYK_CHECK(false) << "Algorithm::kAuto must be resolved by "
                           "PreparedQuery::NewSession before reaching "
                           "MakeEnumerator";
      return nullptr;
  }
  ANYK_CHECK(false) << "unknown algorithm";
  return nullptr;
}

}  // namespace anyk

#endif  // ANYK_ANYK_FACTORY_H_
