// ANYK-REC (paper Algorithm 2, "Recursive" / REA): ranked enumeration via
// the generalized principle of optimality — if the k-th solution through a
// state takes that state's j-th best suffix, the next one through it takes
// the (j+1)-st.
//
// Suffix rankings are maintained *per connector* (Fig. 3 sharing: all parent
// states with the same join key reuse one ranking — the reason Recursive can
// beat Batch on time-to-last, Theorem 11). A connector's ranking is a
// materialized list Π1, Π2, ... plus a heap of (member, next-rank)
// candidates; a `next` call pops the heap and recursively advances the
// popped member's own suffix ranking one step, i.e. O(l) priority-queue
// operations per result (delay O(l log n)).
//
// Tree case (Section 5.1): a state with λ ≥ 2 child slots ranks the
// Cartesian product of its branch rankings. We enumerate that product with
// the classic frontier scheme — a combination's successors advance one
// branch at a time, only at or after the last-advanced branch — which is
// duplicate-free and accesses each branch ranking in sorted order (the
// paper's "run ANYK-PART over the product space" construction).
//
// Memory: product-state rankings are addressed by a flat per-stage offset
// table (only stages with λ ≥ 2 slots get one) instead of a hash map, and
// every ranking list, heap and combination rank-vector draws from the
// per-query Arena — after construction the enumeration loop performs no
// global heap allocation.
//
// Threading: suffix rankings are memoization *per enumerator*, not per
// graph — conn_rank_/state_rank_ are members, the shared StageGraph is
// read-only. Concurrent RecursiveEnumerators over one graph each build
// their own rankings (paying the memoization once per session, the price
// of lock-free sharing; see docs/ARCHITECTURE.md, "Threading model").

#ifndef ANYK_ANYK_ANYK_REC_H_
#define ANYK_ANYK_ANYK_REC_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "dp/stage_graph.h"
#include "util/arena.h"
#include "util/dary_heap.h"
#include "util/logging.h"

namespace anyk {

struct AnyKRecStats {
  size_t heap_pushes = 0;
  size_t heap_pops = 0;
  size_t conns_initialized = 0;
  size_t combos_created = 0;
};

template <SelectiveDioid D>
class RecursiveEnumerator : public Enumerator<D> {
  using V = typename D::Value;
  static constexpr uint32_t kNoBase = UINT32_MAX;

 public:
  explicit RecursiveEnumerator(const StageGraph<D>* g, EnumOptions opts = {})
      : g_(g),
        opts_(opts),
        arena_(opts.arena_block_bytes == 0 ? Arena::kDefaultFirstBlockBytes
                                           : opts.arena_block_bytes),
        conn_rank_(g->total_connectors) {
    arena_.Reserve(opts_.arena_reserve_bytes);
    // Flat offset table for product-state rankings: stages with >= 2 child
    // slots get a dense block of StateRank slots, one per state.
    state_rank_base_.assign(g_->stages.size(), kNoBase);
    uint32_t base = 0;
    for (size_t s = 0; s < g_->stages.size(); ++s) {
      if (g_->stages[s].num_slots >= 2) {
        state_rank_base_[s] = base;
        base += static_cast<uint32_t>(g_->stages[s].NumStates());
      }
    }
    state_rank_.resize(base);
  }

  bool NextInto(ResultRow<D>* row) override {
    if (g_->Empty()) return false;
    // Budget: rank k_budget is the last one ever materialized; past it the
    // session is exhausted by definition.
    if (opts_.k_budget != 0 && k_ >= opts_.k_budget) return false;
    ++k_;
    if (!EnsureConnRank(0, StageGraph<D>::kRootConn, k_)) return false;
    const ConnEntry e = RankedEntry(0, StageGraph<D>::kRootConn, k_);

    row->weight = e.val;
    row->assignment.assign(g_->instance->num_vars, 0);
    if (opts_.with_witness) {
      row->witness.assign(g_->instance->num_atoms, kNoRow);
    } else {
      row->witness.clear();
    }
    AssembleState(0, g_->stages[0].members[e.member_pos], e.rank, row);
    return true;
  }

  std::optional<ResultRow<D>> Next() override {
    ResultRow<D> row;
    if (!NextInto(&row)) return std::nullopt;
    return row;
  }

  const AnyKRecStats& stats() const { return stats_; }
  const Arena& arena() const { return arena_; }
  static const char* Name() { return "Recursive"; }

 private:
  // One materialized suffix: the member (position in Stage::members) whose
  // own suffix ranking contributes at `rank`, and the resulting value
  // (member weight ⊗ member's rank-th completion).
  struct ConnEntry {
    V val;
    uint32_t member_pos;
    uint32_t rank;
  };
  struct EntryLess {
    bool operator()(const ConnEntry& a, const ConnEntry& b) const {
      return D::Less(a.val, b.val);
    }
  };
  using EntryHeap =
      DAryHeap<ConnEntry, EntryLess, ArenaAllocator<ConnEntry>, 4>;
  struct ConnRank {
    bool init = false;
    ArenaVector<ConnEntry> ranked;  // Π1, Π2, ... of this connector
    EntryHeap heap;
  };

  // Cartesian-product ranking for states with λ ≥ 2 child slots.
  struct Combo {
    V val;
    ArenaVector<uint32_t> ranks;  // per-slot rank into the branch ranking
    uint32_t last_advanced = 0;
  };
  struct ComboLess {
    bool operator()(const Combo& a, const Combo& b) const {
      return D::Less(a.val, b.val);
    }
  };
  using ComboHeap = DAryHeap<Combo, ComboLess, ArenaAllocator<Combo>, 4>;
  struct StateRank {
    bool init = false;
    ArenaVector<Combo> ranked;
    ComboHeap heap;
    bool exhausted = false;
  };

  const ConnEntry& RankedEntry(uint32_t stage, uint32_t conn, uint32_t k) {
    return conn_rank_[g_->GlobalConn(stage, conn)].ranked[k - 1];
  }

  /// Materialize Πk of the connector; false if fewer than k suffixes exist.
  ///
  /// Lazy peek-then-pop scheme (Algorithm 2, lines 24-34): rank j is the
  /// heap *peek* after j-1 pops. Advancing pops the previously peeked entry
  /// and replaces it with the next-heavier suffix through the same member,
  /// which recursively advances exactly one rank per stage — O(l) priority-
  /// queue operations per result.
  bool EnsureConnRank(uint32_t stage, uint32_t conn, uint32_t k) {
    ConnRank& cr = conn_rank_[g_->GlobalConn(stage, conn)];
    const auto& st = g_->stages[stage];
    if (!cr.init) {
      cr.init = true;
      ++stats_.conns_initialized;
      cr.ranked = MakeArenaVector<ConnEntry>(&arena_);
      cr.heap = EntryHeap(EntryLess{}, ArenaAllocator<ConnEntry>(&arena_));
      typename EntryHeap::Container initial(
          ArenaAllocator<ConnEntry>{&arena_});
      initial.reserve(st.ConnSize(conn));
      for (uint32_t p = st.conn_begin[conn]; p < st.conn_begin[conn + 1]; ++p) {
        initial.push_back(ConnEntry{st.member_val[p], p, 1});
      }
      stats_.heap_pushes += initial.size();
      cr.heap.BuildFrom(std::move(initial));  // O(n) bulk heapify
    }
    while (cr.ranked.size() < k) {
      if (!cr.ranked.empty()) {
        // Advance: pop the entry peeked as the last rank (still the top) and
        // push the next suffix through the same member, if any.
        if (cr.heap.Empty()) return false;
        ConnEntry e = cr.heap.PopMin();
        ++stats_.heap_pops;
        const uint32_t state = st.members[e.member_pos];
        V below;
        if (EnsureStateRank(stage, state, e.rank + 1, &below)) {
          cr.heap.Push(ConnEntry{D::Combine(st.weight[state], below),
                                 e.member_pos, e.rank + 1});
          ++stats_.heap_pushes;
        }
      }
      if (cr.heap.Empty()) return false;
      cr.ranked.push_back(cr.heap.Min());  // peek defines the next rank
    }
    return true;
  }

  /// Rank-j completion *below* `state` (excluding its own weight); true and
  /// sets *out_val if it exists.
  bool EnsureStateRank(uint32_t stage, uint32_t state, uint32_t j, V* out_val) {
    const auto& st = g_->stages[stage];
    const uint32_t slots = st.num_slots;
    if (slots == 0) {
      if (j != 1) return false;
      *out_val = D::One();
      return true;
    }
    if (slots == 1) {
      // Single branch: delegate to the child connector's ranking (shared by
      // all states that point at the same connector).
      const uint32_t cs = g_->child_stage[stage][0];
      const uint32_t conn = st.conn_of_state[state];
      if (!EnsureConnRank(cs, conn, j)) return false;
      *out_val = RankedEntry(cs, conn, j).val;
      return true;
    }
    // λ ≥ 2: rank the product of branch rankings (peek-then-pop, like the
    // connector case).
    StateRank& sr = StateRankOf(stage, state);
    if (!sr.init) {
      sr.init = true;
      sr.ranked = MakeArenaVector<Combo>(&arena_);
      sr.heap = ComboHeap(ComboLess{}, ArenaAllocator<Combo>(&arena_));
      // Initial combination (1, ..., 1) with value π1(state).
      Combo c;
      c.val = st.pi1[state];
      c.ranks = MakeArenaVector<uint32_t>(&arena_);
      c.ranks.assign(slots, 1);
      c.last_advanced = 0;
      sr.heap.Push(std::move(c));
      ++stats_.heap_pushes;
      ++stats_.combos_created;
    }
    while (sr.ranked.size() < j) {
      if (!sr.ranked.empty()) {
        if (sr.heap.Empty()) return false;
        Combo c = sr.heap.PopMin();
        ++stats_.heap_pops;
        // Successors: advance one branch, at or after the last advanced one
        // (the classic duplicate-free product-space expansion).
        for (uint32_t b = c.last_advanced; b < slots; ++b) {
          const uint32_t cs = g_->child_stage[stage][b];
          const uint32_t conn = st.conn_of_state[state * slots + b];
          if (!EnsureConnRank(cs, conn, c.ranks[b] + 1)) continue;
          Combo nc;
          nc.ranks = c.ranks;  // copy adopts the arena allocator
          nc.ranks[b] += 1;
          nc.last_advanced = b;
          if constexpr (D::kHasInverse) {
            nc.val = D::Combine(
                D::Subtract(c.val, RankedEntry(cs, conn, c.ranks[b]).val),
                RankedEntry(cs, conn, c.ranks[b] + 1).val);
          } else {
            nc.val = D::One();
            for (uint32_t b2 = 0; b2 < slots; ++b2) {
              const uint32_t cs2 = g_->child_stage[stage][b2];
              const uint32_t conn2 = st.conn_of_state[state * slots + b2];
              const bool ok = EnsureConnRank(cs2, conn2, nc.ranks[b2]);
              ANYK_CHECK(ok);
              nc.val =
                  D::Combine(nc.val, RankedEntry(cs2, conn2, nc.ranks[b2]).val);
            }
          }
          sr.heap.Push(std::move(nc));
          ++stats_.heap_pushes;
          ++stats_.combos_created;
        }
      }
      if (sr.heap.Empty()) {
        sr.exhausted = true;
        return false;
      }
      sr.ranked.push_back(sr.heap.Min());
    }
    *out_val = sr.ranked[j - 1].val;
    return true;
  }

  /// Write `state`'s bindings and recurse into the children realizing its
  /// rank-j completion (everything is already materialized).
  void AssembleState(uint32_t stage, uint32_t state, uint32_t j,
                     ResultRow<D>* row) {
    BindState(*g_, stage, state, &row->assignment,
              opts_.with_witness ? &row->witness : nullptr);
    const auto& st = g_->stages[stage];
    const uint32_t slots = st.num_slots;
    if (slots == 0) return;
    if (slots == 1) {
      const uint32_t cs = g_->child_stage[stage][0];
      const uint32_t conn = st.conn_of_state[state];
      const bool ok = EnsureConnRank(cs, conn, j);  // cheap if materialized
      ANYK_CHECK(ok);
      const ConnEntry e = RankedEntry(cs, conn, j);
      AssembleState(cs, g_->stages[cs].members[e.member_pos], e.rank, row);
      return;
    }
    V dummy;
    const bool have = EnsureStateRank(stage, state, j, &dummy);
    ANYK_CHECK(have);
    const Combo& c = StateRankOf(stage, state).ranked[j - 1];
    for (uint32_t b = 0; b < slots; ++b) {
      const uint32_t cs = g_->child_stage[stage][b];
      const uint32_t conn = st.conn_of_state[state * slots + b];
      const bool ok = EnsureConnRank(cs, conn, c.ranks[b]);
      ANYK_CHECK(ok);
      const ConnEntry e = RankedEntry(cs, conn, c.ranks[b]);
      AssembleState(cs, g_->stages[cs].members[e.member_pos], e.rank, row);
    }
  }

  StateRank& StateRankOf(uint32_t stage, uint32_t state) {
    ANYK_DCHECK(state_rank_base_[stage] != kNoBase);
    return state_rank_[state_rank_base_[stage] + state];
  }

  const StageGraph<D>* g_;
  EnumOptions opts_;
  // The arena must precede every member that draws from it.
  Arena arena_;
  std::vector<ConnRank> conn_rank_;
  std::vector<uint32_t> state_rank_base_;  // per stage; kNoBase if < 2 slots
  std::vector<StateRank> state_rank_;      // flat, only λ >= 2 stages
  uint32_t k_ = 0;
  AnyKRecStats stats_;
};

}  // namespace anyk

#endif  // ANYK_ANYK_ANYK_REC_H_
