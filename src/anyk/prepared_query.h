// PreparedQuery / EnumerationSession: the concurrent-serving split.
//
// Preprocessing (plan choice, decomposition, bag materialization, bottom-up
// DP — everything Theorem 15 charges to TTF) produces a PreparedQuery that
// is *immutable after construction*: relations, join-tree instances, stage
// graphs with their FlatKeyIndex connector maps, and — for the generic-join
// fallback — the fully sorted output. N threads may then each open an
// EnumerationSession against the same const PreparedQuery and enumerate
// concurrently with zero shared mutable state: every piece of
// enumeration-phase state (candidate PQ, prefix pool, lazily built strategy
// structures, suffix rankings, union slots, batch materialization) lives in
// the session's own enumerator and arena (see anyk_part.h / anyk_rec.h /
// strategies.h — all of it was moved into per-enumerator arenas in the flat
// memory layout work, which is exactly what makes this split sound; the
// concurrency_test suite and the TSan CI job enforce it).
//
// anyk-lint: allow-file(heap-hot-path): all allocations here are Prepare()
// or OpenSession() time — the enumeration loop itself allocates only from
// the session arena (invariants_test pins the zero-alloc guarantee).
//
// Construction itself can be parallelized by passing a ThreadPool: the
// per-partition DP over the cycle-decomposition union instances builds one
// stage graph per worker, and within each instance BuildStageGraph runs its
// per-stage index/CSR builds in bottom-up waves.
//
// RankedQuery (ranked_query.h) remains the single-session convenience
// wrapper: PreparedQuery + one default session.

#ifndef ANYK_ANYK_PREPARED_QUERY_H_
#define ANYK_ANYK_PREPARED_QUERY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "anyk/factory.h"
#include "anyk/union_anyk.h"
#include "dioid/lift.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "join/generic_join.h"
#include "plan/planner.h"
#include "query/cycle_decomposition.h"
#include "query/gyo.h"
#include "query/join_tree.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace anyk {

enum class QueryPlan { kAcyclicTree, kCycleUnion, kGenericJoinBatch };

/// Cursor over a shared, pre-sorted result vector (the generic-join batch
/// fallback). The rows are owned by the PreparedQuery and never change;
/// each session only advances its own cursor.
template <SelectiveDioid D>
class SharedVectorEnumerator : public Enumerator<D> {
 public:
  explicit SharedVectorEnumerator(
      std::shared_ptr<const std::vector<ResultRow<D>>> rows,
      size_t k_budget = 0)
      : rows_(std::move(rows)),
        end_(k_budget == 0 ? rows_->size()
                           : std::min(k_budget, rows_->size())) {}
  std::optional<ResultRow<D>> Next() override {
    if (cursor_ >= end_) return std::nullopt;
    return (*rows_)[cursor_++];
  }
  bool NextInto(ResultRow<D>* row) override {
    if (cursor_ >= end_) return false;
    *row = (*rows_)[cursor_++];
    return true;
  }
  size_t NextBatch(ResultRow<D>* rows, size_t n) override {
    const size_t produced = std::min(n, end_ - cursor_);
    for (size_t b = 0; b < produced; ++b) rows[b] = (*rows_)[cursor_ + b];
    cursor_ += produced;
    return produced;
  }

 private:
  std::shared_ptr<const std::vector<ResultRow<D>>> rows_;
  size_t end_;  // k-budget cap (rows_->size() when unbounded)
  size_t cursor_ = 0;
};

/// One enumeration stream over a PreparedQuery. Owns all mutable state of
/// the drain (enumerators, arenas, heaps, cursors); confined to one thread
/// at a time, but any number of sessions run concurrently against the same
/// prepared query. Movable; create via PreparedQuery::NewSession.
template <SelectiveDioid D>
class EnumerationSession {
 public:
  /// Next answer in rank order, or nullopt when exhausted.
  std::optional<ResultRow<D>> Next() { return enumerator_->Next(); }

  /// Hot-path pull into a caller-owned, reused row buffer.
  bool NextInto(ResultRow<D>* row) { return enumerator_->NextInto(row); }

  /// Batched hot-path pull (see Enumerator::NextBatch): up to `n` answers
  /// into caller-owned rows; a short count means exhausted.
  size_t NextBatch(ResultRow<D>* rows, size_t n) {
    return enumerator_->NextBatch(rows, n);
  }

  Enumerator<D>* enumerator() { return enumerator_.get(); }

 private:
  template <SelectiveDioid>
  friend class PreparedQuery;
  template <SelectiveDioid>
  friend class ShardedPreparedQuery;  // anyk/sharded_query.h

  explicit EnumerationSession(std::unique_ptr<Enumerator<D>> e)
      : enumerator_(std::move(e)) {}

  std::unique_ptr<Enumerator<D>> enumerator_;
};

template <SelectiveDioid D = TropicalDioid>
class PreparedQuery {
 public:
  struct Options {
    // Session defaults (NewSession overloads can override per session). The
    // generic-join fallback materializes witnesses according to this value
    // at prepare time, so it applies to every session of that plan.
    EnumOptions enum_opts;
    // Filter consecutive duplicates at the union level (only meaningful for
    // overlapping decompositions; the simple-cycle one is disjoint).
    bool dedup_union = false;
    CycleDecompositionOptions cycle_opts;
    // Preprocessing parallelism (not owned; may be null = serial). Only
    // used during construction — the PreparedQuery keeps no reference.
    ThreadPool* pool = nullptr;
    // Cost-based planning (docs/PLANNER.md): when true, the prepare phase
    // also chooses the join-tree root/orientation and stage order from
    // relation cardinalities (plan::PlanTopology) instead of the fixed
    // construction order. The strategy + heap-arity decision is computed
    // either way (the statistics are free) and cached in decision();
    // NewSession(Algorithm::kAuto) applies it.
    bool auto_plan = false;
  };

  PreparedQuery(const Database& db, const ConjunctiveQuery& q,
                Options opts = {})
      : query_(q), opts_(opts) {
    ThreadPool* pool = opts.pool;
    opts_.pool = nullptr;  // construction-only; never dereferenced again
    ANYK_CHECK(q.IsFull())
        << "PreparedQuery handles full CQs; see dp/projection.h for "
           "free-connex projections";
    GyoResult gyo = GyoReduce(Hypergraph::FromQuery(q));
    if (gyo.acyclic) {
      plan_ = QueryPlan::kAcyclicTree;
      // Orientation + stage order: the planner's cardinality-driven choice
      // under auto_plan, the fixed chain re-rooting otherwise.
      const JoinTreeTopology normalized = NormalizeTopology(gyo.tree, q);
      instances_.push_back(BuildInstanceFromTopology(
          db, q,
          opts_.auto_plan ? plan::PlanTopology(db, q, normalized)
                          : RerootChains(normalized)));
      graphs_.push_back(std::make_unique<StageGraph<D>>(BuildStageGraph<D>(
          instances_.back(), /*num_atoms_override=*/0, /*hook=*/nullptr,
          pool, opts_.enum_opts.kernels)));
      DecideStrategy();
      return;
    }
    CycleShape shape = DetectSimpleCycle(q);
    if (shape.is_cycle && q.NumAtoms() >= 4) {
      plan_ = QueryPlan::kCycleUnion;
      instances_ = DecomposeCycle(db, q, opts_.cycle_opts);
      // Per-partition DP: the l+1 union instances are independent, so each
      // worker runs one full bottom-up build (the instances are left
      // untouched afterwards, which is what NewSession relies on).
      graphs_.resize(instances_.size());
      ParallelFor(pool, instances_.size(), [&](size_t i) {
        graphs_[i] = std::make_unique<StageGraph<D>>(BuildStageGraph<D>(
            instances_[i], /*num_atoms_override=*/0, /*hook=*/nullptr,
            /*pool=*/nullptr, opts_.enum_opts.kernels));
      });
      DecideStrategy();
      return;
    }
    // General cyclic query: batch fallback via worst-case optimal join,
    // sorted once here and shared read-only by every session.
    plan_ = QueryPlan::kGenericJoinBatch;
    batch_rows_ = GenericJoinFallback(db, q);
    decision_ = plan::BatchOnlyDecision(
        static_cast<double>(batch_rows_->size()));
    decision_.auto_topology = opts_.auto_plan;
  }

  /// Open an independent enumeration stream. Thread-safe on a const
  /// PreparedQuery: sessions only read the stage graphs and allocate their
  /// own arenas, so any number may be created and drained concurrently.
  ///
  /// Algorithm::kAuto resolves to the prepare-time decision() — strategy
  /// AND candidate-heap arity — here, without recomputing anything: the
  /// plan is chosen once per PreparedQuery, never per session.
  EnumerationSession<D> NewSession(Algorithm algo,
                                   const EnumOptions& enum_opts) const {
    EnumOptions opts = enum_opts;
    if (algo == Algorithm::kAuto) {
      algo = decision_.algorithm;
      opts.heap_arity = decision_.heap_arity;
    }
    return NewResolvedSession(algo, opts);
  }
  EnumerationSession<D> NewSession(Algorithm algo) const {
    return NewSession(algo, opts_.enum_opts);
  }

  /// Build a session's enumerator directly, without the EnumerationSession
  /// wrapper. The sharded layer (anyk/sharded_query.h) unions one of these
  /// per shard into a single merged session; the same kAuto resolution as
  /// NewSession applies. Thread-safe on a const PreparedQuery.
  std::unique_ptr<Enumerator<D>> NewSessionEnumerator(
      Algorithm algo, const EnumOptions& enum_opts) const {
    EnumOptions opts = enum_opts;
    if (algo == Algorithm::kAuto) {
      algo = decision_.algorithm;
      opts.heap_arity = decision_.heap_arity;
    }
    return MakeResolvedEnumerator(algo, opts);
  }

  QueryPlan plan() const { return plan_; }
  size_t NumTrees() const { return instances_.size(); }
  const ConjunctiveQuery& query() const { return query_; }
  /// The cached planner decision (docs/PLANNER.md): what kAuto sessions
  /// run, what EXPLAIN and the server's /statz expose. Always populated —
  /// with auto_plan=false the topology part is skipped but the strategy
  /// pick is still computed from the (free) build statistics.
  const plan::PlanDecision& decision() const { return decision_; }
  /// Session defaults from the prepare-time options (e.g. for callers that
  /// want to tweak one knob — TopK sets k_budget on a copy of these).
  const EnumOptions& default_enum_options() const { return opts_.enum_opts; }
  const std::vector<std::unique_ptr<StageGraph<D>>>& graphs() const {
    return graphs_;
  }

 private:
  EnumerationSession<D> NewResolvedSession(Algorithm algo,
                                           const EnumOptions& enum_opts) const {
    return EnumerationSession<D>(MakeResolvedEnumerator(algo, enum_opts));
  }

  std::unique_ptr<Enumerator<D>> MakeResolvedEnumerator(
      Algorithm algo, const EnumOptions& enum_opts) const {
    switch (plan_) {
      case QueryPlan::kAcyclicTree:
        return MakeEnumerator<D>(graphs_[0].get(), algo, enum_opts);
      case QueryPlan::kCycleUnion: {
        // Each part keeps the full k budget: a single partition may supply
        // the entire top-k. With dedup (overlapping decompositions) a part
        // can additionally be popped for answers that other parts already
        // emitted, so there the parts run unbounded — only the union-level
        // budget applies.
        EnumOptions part_opts = enum_opts;
        if (opts_.dedup_union) part_opts.k_budget = 0;
        std::vector<std::unique_ptr<Enumerator<D>>> parts;
        parts.reserve(graphs_.size());
        for (const auto& g : graphs_) {
          parts.push_back(MakeEnumerator<D>(g.get(), algo, part_opts));
        }
        return std::make_unique<UnionEnumerator<D>>(
            std::move(parts), opts_.dedup_union, enum_opts.k_budget);
      }
      case QueryPlan::kGenericJoinBatch:
        return std::make_unique<SharedVectorEnumerator<D>>(
            batch_rows_, enum_opts.k_budget);
    }
    ANYK_CHECK(false) << "unknown plan";
    return nullptr;
  }

  /// Strategy + heap-arity decision over the built graphs, made once at
  /// prepare time against the prepare-time k_budget.
  void DecideStrategy() {
    decision_ = plan::DecideStrategy<D>(graphs_, opts_.enum_opts.k_budget);
    decision_.auto_topology = opts_.auto_plan;
  }

  std::shared_ptr<const std::vector<ResultRow<D>>> GenericJoinFallback(
      const Database& db, const ConjunctiveQuery& q) const {
    JoinResultSet join = GenericJoin(db, q);
    const size_t na = q.NumAtoms();
    std::vector<ResultRow<D>> rows;
    rows.reserve(join.size());
    for (size_t i = 0; i < join.size(); ++i) {
      ResultRow<D> row;
      row.weight = D::One();
      row.assignment.assign(q.NumVars(), 0);
      if (opts_.enum_opts.with_witness) row.witness.assign(na, kNoRow);
      for (size_t a = 0; a < na; ++a) {
        const uint32_t r = join.witness(i)[a];
        const Relation& rel = db.Get(q.atom(a).relation);
        row.weight = D::Combine(row.weight,
                                LiftWeight<D>(rel.Weight(r), a, na, r));
        const auto& vars = q.AtomVarIds(a);
        for (size_t c = 0; c < vars.size(); ++c) {
          row.assignment[vars[c]] = rel.At(r, c);
        }
        if (opts_.enum_opts.with_witness) row.witness[a] = r;
      }
      rows.push_back(std::move(row));
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const ResultRow<D>& a, const ResultRow<D>& b) {
                       return D::Less(a.weight, b.weight);
                     });
    return std::make_shared<const std::vector<ResultRow<D>>>(std::move(rows));
  }

  ConjunctiveQuery query_;
  Options opts_;
  QueryPlan plan_;
  plan::PlanDecision decision_;
  // const after construction: sessions hold pointers into these, which stay
  // stable because the vectors are never touched again (and their elements
  // live on the heap, so moving the PreparedQuery itself is also safe).
  std::vector<TDPInstance> instances_;
  std::vector<std::unique_ptr<StageGraph<D>>> graphs_;
  std::shared_ptr<const std::vector<ResultRow<D>>> batch_rows_;
};

}  // namespace anyk

#endif  // ANYK_ANYK_PREPARED_QUERY_H_
