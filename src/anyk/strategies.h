// Successor strategies for ANYK-PART (paper Section 4.1.3).
//
// Algorithm 1 is parameterized by how the choice set of a connector is
// organized and how Succ(state, choice) finds (a superset of) the next-best
// choice:
//   * Eager  — sort the whole choice set; Succ is the next rank.        O(n log n) init
//   * Lazy   — binary heap, incrementally drained into a sorted list.   O(n) init
//   * All    — no order at all; Succ(top) returns every other choice.   O(1) init
//   * Take2  — binary heap used as a *static* partial order; Succ(slot)
//              returns the slot's two heap children.                    O(n) init
//
// A "choice handle" is a uint32 whose meaning is strategy-specific (rank,
// heap slot, or absolute member position). All strategies initialize a
// connector's data structure lazily on first touch (the paper applies this
// optimization to all algorithms in Section 7).
//
// Memory: every per-connector structure lives in the enumerator's per-query
// arena. Because initialization is lazy it happens *during* enumeration, so
// routing it through the arena (reserved in preprocessing) is what keeps the
// enumeration phase free of global heap allocations.
//
// Threading: lazily initialized connector structures belong to the strategy
// instance, and a strategy instance belongs to exactly one enumerator
// (session) — the StageGraph is only ever read. That containment is what
// lets N sessions share one prepared graph without locks; do not cache
// anything strategy-mutable in the graph (concurrency_test + the TSan CI
// job enforce this).

#ifndef ANYK_ANYK_STRATEGIES_H_
#define ANYK_ANYK_STRATEGIES_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "dp/stage_graph.h"
#include "util/arena.h"
#include "util/binary_heap.h"
#include "util/logging.h"

namespace anyk {

/// Counters shared by all strategies (used by invariant tests).
struct StrategyStats {
  size_t conns_initialized = 0;
  size_t init_work = 0;  // total members touched during initialization
  size_t succ_calls = 0;
  size_t succ_returned = 0;
};

/// Eager Sort: pre-sorts each choice set on first access.
template <SelectiveDioid D>
class EagerStrategy {
 public:
  static constexpr const char* kName = "Eager";

  EagerStrategy(const StageGraph<D>* g, Arena* arena)
      : g_(g), arena_(arena), conns_(g->total_connectors) {}

  /// Handle of the best choice of the connector.
  uint32_t Top(uint32_t stage, uint32_t conn) {
    Init(stage, conn);
    return 0;  // rank 0
  }

  /// Absolute member position (into Stage::members) of a choice handle.
  uint32_t MemberPos(uint32_t stage, uint32_t conn, uint32_t choice) {
    return conns_[g_->GlobalConn(stage, conn)].sorted[choice];
  }

  /// Append the successor handles of `choice` to `out`.
  template <typename Out>
  void Successors(uint32_t stage, uint32_t conn, uint32_t choice, Out* out) {
    ++stats_.succ_calls;
    const auto& cd = conns_[g_->GlobalConn(stage, conn)];
    if (choice + 1 < cd.sorted.size()) {
      out->push_back(choice + 1);
      ++stats_.succ_returned;
    }
  }

  const StrategyStats& stats() const { return stats_; }

 private:
  struct ConnData {
    bool init = false;
    ArenaVector<uint32_t> sorted;  // member positions, ascending by value
  };

  void Init(uint32_t stage, uint32_t conn) {
    ConnData& cd = conns_[g_->GlobalConn(stage, conn)];
    if (cd.init) return;
    cd.init = true;
    const auto& st = g_->stages[stage];
    cd.sorted = MakeArenaVector<uint32_t>(arena_);
    cd.sorted.resize(st.ConnSize(conn));
    for (uint32_t i = 0; i < cd.sorted.size(); ++i) {
      cd.sorted[i] = st.conn_begin[conn] + i;
    }
    std::sort(cd.sorted.begin(), cd.sorted.end(), [&](uint32_t a, uint32_t b) {
      return D::Less(st.member_val[a], st.member_val[b]);
    });
    ++stats_.conns_initialized;
    stats_.init_work += cd.sorted.size();
  }

  const StageGraph<D>* g_;
  Arena* arena_;
  std::vector<ConnData> conns_;
  StrategyStats stats_;
};

/// Lazy Sort (Chang et al.): heapify on first access, then migrate choices
/// from the heap into a sorted list as successors are requested.
template <SelectiveDioid D>
class LazyStrategy {
 public:
  static constexpr const char* kName = "Lazy";

  LazyStrategy(const StageGraph<D>* g, Arena* arena)
      : g_(g), arena_(arena), conns_(g->total_connectors) {}

  uint32_t Top(uint32_t stage, uint32_t conn) {
    Init(stage, conn);
    return 0;
  }

  uint32_t MemberPos(uint32_t stage, uint32_t conn, uint32_t choice) {
    const auto& cd = conns_[g_->GlobalConn(stage, conn)];
    ANYK_DCHECK(choice < cd.sorted.size());
    return cd.sorted[choice];
  }

  template <typename Out>
  void Successors(uint32_t stage, uint32_t conn, uint32_t choice, Out* out) {
    ++stats_.succ_calls;
    ConnData& cd = conns_[g_->GlobalConn(stage, conn)];
    // Materialize rank choice+1 if the heap still holds it.
    if (choice + 1 >= cd.sorted.size() && !cd.heap.Empty()) {
      cd.sorted.push_back(cd.heap.PopMin());
    }
    if (choice + 1 < cd.sorted.size()) {
      out->push_back(choice + 1);
      ++stats_.succ_returned;
    }
  }

  const StrategyStats& stats() const { return stats_; }

 private:
  struct Cmp {
    const StageGraph<D>* g;
    uint32_t stage;
    bool operator()(uint32_t a, uint32_t b) const {
      return D::Less(g->stages[stage].member_val[a],
                     g->stages[stage].member_val[b]);
    }
  };
  using ConnHeap = BinaryHeap<uint32_t, Cmp, ArenaAllocator<uint32_t>>;

  struct ConnData {
    bool init = false;
    ArenaVector<uint32_t> sorted;  // drained prefix, ascending
    ConnHeap heap{Cmp{nullptr, 0}};
  };

  void Init(uint32_t stage, uint32_t conn) {
    ConnData& cd = conns_[g_->GlobalConn(stage, conn)];
    if (cd.init) return;
    cd.init = true;
    const auto& st = g_->stages[stage];
    typename ConnHeap::Container all(ArenaAllocator<uint32_t>{arena_});
    all.resize(st.ConnSize(conn));
    for (uint32_t i = 0; i < all.size(); ++i) all[i] = st.conn_begin[conn] + i;
    cd.heap = ConnHeap(Cmp{g_, stage}, ArenaAllocator<uint32_t>(arena_));
    cd.heap.Assign(std::move(all));
    // The paper pops the top two up front: nearly all successor requests in
    // one repeat-loop iteration ask for the second-best choice.
    cd.sorted = MakeArenaVector<uint32_t>(arena_);
    cd.sorted.push_back(cd.heap.PopMin());
    if (!cd.heap.Empty()) cd.sorted.push_back(cd.heap.PopMin());
    ++stats_.conns_initialized;
    stats_.init_work += st.ConnSize(conn);
  }

  const StageGraph<D>* g_;
  Arena* arena_;
  std::vector<ConnData> conns_;
  StrategyStats stats_;
};

/// All (Yang et al.): no per-connector structure; deviating from the top
/// choice inserts every other choice at once.
template <SelectiveDioid D>
class AllStrategy {
 public:
  static constexpr const char* kName = "All";

  AllStrategy(const StageGraph<D>* g, Arena* /*arena*/) : g_(g) {}

  // Choice handles are absolute member positions.
  uint32_t Top(uint32_t stage, uint32_t conn) {
    return g_->stages[stage].conn_best[conn];
  }

  uint32_t MemberPos(uint32_t /*stage*/, uint32_t /*conn*/, uint32_t choice) {
    return choice;
  }

  template <typename Out>
  void Successors(uint32_t stage, uint32_t conn, uint32_t choice, Out* out) {
    ++stats_.succ_calls;
    const auto& st = g_->stages[stage];
    if (choice != st.conn_best[conn]) return;  // siblings already inserted
    for (uint32_t p = st.conn_begin[conn]; p < st.conn_begin[conn + 1]; ++p) {
      if (p == choice) continue;
      out->push_back(p);
      ++stats_.succ_returned;
    }
  }

  const StrategyStats& stats() const { return stats_; }

 private:
  const StageGraph<D>* g_;
  StrategyStats stats_;
};

/// Take2 (this paper): heapify once; the heap is never popped but used as a
/// static partial order — the successors of a slot are its two children.
template <SelectiveDioid D>
class Take2Strategy {
 public:
  static constexpr const char* kName = "Take2";

  Take2Strategy(const StageGraph<D>* g, Arena* arena)
      : g_(g), arena_(arena), conns_(g->total_connectors) {}

  uint32_t Top(uint32_t stage, uint32_t conn) {
    Init(stage, conn);
    return 0;  // heap slot 0
  }

  uint32_t MemberPos(uint32_t stage, uint32_t conn, uint32_t choice) {
    return conns_[g_->GlobalConn(stage, conn)].heap[choice];
  }

  template <typename Out>
  void Successors(uint32_t stage, uint32_t conn, uint32_t choice, Out* out) {
    ++stats_.succ_calls;
    const auto& cd = conns_[g_->GlobalConn(stage, conn)];
    for (uint32_t child = 2 * choice + 1;
         child <= 2 * choice + 2 && child < cd.heap.size(); ++child) {
      out->push_back(child);
      ++stats_.succ_returned;
    }
  }

  const StrategyStats& stats() const { return stats_; }

 private:
  struct ConnData {
    bool init = false;
    ArenaVector<uint32_t> heap;  // member positions in heap order
  };

  void Init(uint32_t stage, uint32_t conn) {
    ConnData& cd = conns_[g_->GlobalConn(stage, conn)];
    if (cd.init) return;
    cd.init = true;
    const auto& st = g_->stages[stage];
    cd.heap = MakeArenaVector<uint32_t>(arena_);
    cd.heap.resize(st.ConnSize(conn));
    for (uint32_t i = 0; i < cd.heap.size(); ++i) {
      cd.heap[i] = st.conn_begin[conn] + i;
    }
    Heapify(&cd.heap, [&](uint32_t a, uint32_t b) {
      return D::Less(st.member_val[a], st.member_val[b]);
    });
    ++stats_.conns_initialized;
    stats_.init_work += cd.heap.size();
  }

  const StageGraph<D>* g_;
  Arena* arena_;
  std::vector<ConnData> conns_;
  StrategyStats stats_;
};

}  // namespace anyk

#endif  // ANYK_ANYK_STRATEGIES_H_
