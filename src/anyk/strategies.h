// Successor strategies for ANYK-PART (paper Section 4.1.3).
//
// Algorithm 1 is parameterized by how the choice set of a connector is
// organized and how Succ(state, choice) finds (a superset of) the next-best
// choice:
//   * Eager  — sort the whole choice set; Succ is the next rank.        O(n log n) init
//   * Lazy   — binary heap, incrementally drained into a sorted list.   O(n) init
//   * All    — no order at all; Succ(top) returns every other choice.   O(1) init
//   * Take2  — binary heap used as a *static* partial order; Succ(slot)
//              returns the slot's two heap children.                    O(n) init
//
// A "choice handle" is a uint32 whose meaning is strategy-specific (rank,
// heap slot, or absolute member position). All strategies initialize a
// connector's data structure lazily on first touch (the paper applies this
// optimization to all algorithms in Section 7).
//
// Memory: every per-connector structure lives in the enumerator's per-query
// arena. Because initialization is lazy it happens *during* enumeration, so
// routing it through the arena (reserved in preprocessing) is what keeps the
// enumeration phase free of global heap allocations.
//
// Threading: lazily initialized connector structures belong to the strategy
// instance, and a strategy instance belongs to exactly one enumerator
// (session) — the StageGraph is only ever read. That containment is what
// lets N sessions share one prepared graph without locks; do not cache
// anything strategy-mutable in the graph (concurrency_test + the TSan CI
// job enforce this).

#ifndef ANYK_ANYK_STRATEGIES_H_
#define ANYK_ANYK_STRATEGIES_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "dp/stage_graph.h"
#include "util/arena.h"
#include "util/binary_heap.h"
#include "util/dary_heap.h"
#include "util/logging.h"

namespace anyk {

/// Counters shared by all strategies (used by invariant tests).
struct StrategyStats {
  size_t conns_initialized = 0;
  size_t init_work = 0;  // total members touched during initialization
  size_t succ_calls = 0;
  size_t succ_returned = 0;
};

/// Eager Sort: pre-sorts each choice set on first access.
template <SelectiveDioid D>
class EagerStrategy {
 public:
  static constexpr const char* kName = "Eager";

  EagerStrategy(const StageGraph<D>* g, Arena* arena)
      : g_(g), arena_(arena), conns_(g->total_connectors) {}

  /// Handle of the best choice of the connector.
  uint32_t Top(uint32_t stage, uint32_t conn) {
    Init(stage, conn);
    return 0;  // rank 0
  }

  /// Absolute member position (into Stage::members) of a choice handle.
  uint32_t MemberPos(uint32_t stage, uint32_t conn, uint32_t choice) {
    return conns_[g_->GlobalConn(stage, conn)].sorted[choice];
  }

  /// Append the successor handles of `choice` to `out`.
  template <typename Out>
  void Successors(uint32_t stage, uint32_t conn, uint32_t choice, Out* out) {
    ++stats_.succ_calls;
    const auto& cd = conns_[g_->GlobalConn(stage, conn)];
    if (choice + 1 < cd.sorted.size()) {
      out->push_back(choice + 1);
      ++stats_.succ_returned;
    }
  }

  const StrategyStats& stats() const { return stats_; }

 private:
  struct ConnData {
    bool init = false;
    ArenaVector<uint32_t> sorted;  // member positions, ascending by value
  };

  void Init(uint32_t stage, uint32_t conn) {
    ConnData& cd = conns_[g_->GlobalConn(stage, conn)];
    if (cd.init) return;
    cd.init = true;
    const auto& st = g_->stages[stage];
    cd.sorted = MakeArenaVector<uint32_t>(arena_);
    cd.sorted.resize(st.ConnSize(conn));
    for (uint32_t i = 0; i < cd.sorted.size(); ++i) {
      cd.sorted[i] = st.conn_begin[conn] + i;
    }
    std::sort(cd.sorted.begin(), cd.sorted.end(), [&](uint32_t a, uint32_t b) {
      return D::Less(st.member_val[a], st.member_val[b]);
    });
    ++stats_.conns_initialized;
    stats_.init_work += cd.sorted.size();
  }

  const StageGraph<D>* g_;
  Arena* arena_;
  std::vector<ConnData> conns_;
  StrategyStats stats_;
};

/// Lazy Sort (Chang et al.): heapify on first access, then migrate choices
/// from the heap into a sorted list as successors are requested.
///
/// Budget-aware fast path (SetBudget): when the enumerator knows it will
/// emit at most k answers, most connectors only ever serve their best and
/// second-best members — the deviation candidates die in the bounded
/// candidate queue without being popped. Initialization then does a linear
/// top-two scan (no heap, no arena container) and defers the O(n) heapify
/// until some deviation-of-a-deviation actually asks for rank 3+. Without a
/// budget the classic heapify-up-front behavior is kept: an unbounded drain
/// eventually requests deep ranks from every connector, so the upfront
/// build amortizes.
template <SelectiveDioid D>
class LazyStrategy {
 public:
  static constexpr const char* kName = "Lazy";
  // Choice handles are ranks into the connector's sorted order: 0 = best
  // member, 1 = second best, ... — the contract behind the enumerator's
  // O(1) deviation-from-top fast path (it pushes rank-1 candidates straight
  // from the stage graph's precomputed conn_second without touching this
  // strategy, and only initializes a connector when one of its deviation
  // candidates is actually popped).
  static constexpr bool kRankHandles = true;

  /// The per-connector table holds one *pointer* per connector (zeroed in
  /// one memset-sized sweep at session construction); the ConnData itself
  /// is placement-new'd into the session arena on first touch. Serving
  /// sessions that only skim a few connectors — the budgeted top-k shape —
  /// therefore pay O(touched) construction, not O(total_connectors).
  LazyStrategy(const StageGraph<D>* g, Arena* arena)
      : g_(g), arena_(arena), conns_(g->total_connectors, nullptr) {}

  /// Declare the enumeration budget (0 = unbounded); see the class comment.
  void SetBudget(size_t k_budget) { budget_ = k_budget; }

  /// Whether the connector's successor structure has been built.
  bool Initialized(uint32_t stage, uint32_t conn) const {
    return conns_[g_->GlobalConn(stage, conn)] != nullptr;
  }

  uint32_t Top(uint32_t stage, uint32_t conn) {
    // Inlineable guard; the construction itself stays out of line (Top runs
    // once per expansion stage per answer, almost always on a warm conn).
    ConnData*& cd = conns_[g_->GlobalConn(stage, conn)];
    if (cd == nullptr) [[unlikely]] cd = Init(stage, conn);
    return 0;
  }

  uint32_t MemberPos(uint32_t stage, uint32_t conn, uint32_t choice) {
    const auto& cd = *conns_[g_->GlobalConn(stage, conn)];
    ANYK_DCHECK(choice < cd.sorted.size());
    return cd.sorted[choice];
  }

  template <typename Out>
  void Successors(uint32_t stage, uint32_t conn, uint32_t choice, Out* out) {
    ++stats_.succ_calls;
    ConnData& cd = *conns_[g_->GlobalConn(stage, conn)];
    // Materialize rank choice+1 if it is not sorted yet (building the
    // deferred heap first if the top-two scan skipped it).
    if (choice + 1 >= cd.sorted.size()) [[unlikely]] {
      if (!cd.heaped) BuildDeferredHeap(stage, conn, &cd);
      if (!cd.heap.Empty()) cd.sorted.push_back(cd.heap.PopMin());
    }
    if (choice + 1 < cd.sorted.size()) {
      out->push_back(choice + 1);
      ++stats_.succ_returned;
    }
  }

  const StrategyStats& stats() const { return stats_; }

 private:
  struct Cmp {
    const StageGraph<D>* g;
    uint32_t stage;
    bool operator()(uint32_t a, uint32_t b) const {
      return D::Less(g->stages[stage].member_val[a],
                     g->stages[stage].member_val[b]);
    }
  };
  using ConnHeap = DAryHeap<uint32_t, Cmp, ArenaAllocator<uint32_t>, 4>;

  struct ConnData {
    bool heaped = false;           // heap built (holds the unsorted rest)
    ArenaVector<uint32_t> sorted;  // drained prefix, ascending
    ConnHeap heap{Cmp{nullptr, 0}};
  };

  ConnData* Init(uint32_t stage, uint32_t conn) {
    // Arena-allocated; never destroyed (ArenaAllocator deallocation is a
    // no-op anyway) — the memory dies with the session arena.
    ConnData& cd = *new (arena_->Allocate(sizeof(ConnData), alignof(ConnData)))
        ConnData();
    const auto& st = g_->stages[stage];
    const uint32_t begin = st.conn_begin[conn];
    const uint32_t end = st.conn_begin[conn + 1];
    cd.sorted = MakeArenaVector<uint32_t>(arena_);
    const uint32_t size = end - begin;
    if (budget_ != 0 && size <= kScanThreshold) {
      // Small connector under a budget: top-two scan, no heap, no arena
      // container. Deviation candidates from it usually die unpopped in the
      // bounded candidate queue, so the heap over the rest is built only if
      // rank 3+ is ever requested (BuildDeferredHeap).
      uint32_t best = begin;
      uint32_t second = kNoPos;
      for (uint32_t p = begin + 1; p < end; ++p) {
        if (D::Less(st.member_val[p], st.member_val[best])) {
          second = best;
          best = p;
        } else if (second == kNoPos ||
                   D::Less(st.member_val[p], st.member_val[second])) {
          second = p;
        }
      }
      cd.sorted.push_back(best);
      if (second != kNoPos) cd.sorted.push_back(second);
      ++stats_.conns_initialized;
      stats_.init_work += size;
      return &cd;
    }
    typename ConnHeap::Container all(ArenaAllocator<uint32_t>{arena_});
    // Selection only pays when the kept set is a small fraction of the
    // connector — otherwise most members enter the scan's max-heap and a
    // plain heapify is cheaper. (Division, not multiplication: a huge --k
    // must degrade to the plain unbounded-style build, not overflow.)
    if (budget_ != 0 && budget_ < size / 4) {
      // A budgeted run pops at most k candidates in total, so no connector
      // can ever be asked for more than k+2 of its ranks. Selection scan:
      // one pass holding the k+2 best in a small max-heap — O(n)
      // comparisons with a rarely-taken branch (most members never beat
      // the running k-th best), and every later pop pays an O(log k) heap
      // instead of O(log n).
      const size_t keep = budget_ + 2;
      Cmp less{g_, stage};
      auto greater = [&less](uint32_t a, uint32_t b) { return less(b, a); };
      all.reserve(keep);
      for (uint32_t p = begin; p < end; ++p) {
        if (all.size() < keep) {
          all.push_back(p);
          if (all.size() == keep) DAryHeapify<4>(&all, greater);
        } else if (less(p, all[0])) {
          all[0] = p;
          DArySiftDown<4>(all, 0, greater);
        }
      }
    } else {
      all.resize(size);
      for (uint32_t i = 0; i < all.size(); ++i) all[i] = begin + i;
    }
    cd.heap = ConnHeap(Cmp{g_, stage}, ArenaAllocator<uint32_t>(arena_));
    cd.heap.BuildFrom(std::move(all));  // O(n) bulk heapify
    cd.heaped = true;
    // The paper pops the top two up front: nearly all successor requests
    // in one repeat-loop iteration ask for the second-best choice.
    cd.sorted.push_back(cd.heap.PopMin());
    if (!cd.heap.Empty()) cd.sorted.push_back(cd.heap.PopMin());
    ++stats_.conns_initialized;
    stats_.init_work += st.ConnSize(conn);
    return &cd;
  }

  /// Heapify everything the top-two scan left unsorted (first rank-3+
  /// request on a budget-initialized connector).
  void BuildDeferredHeap(uint32_t stage, uint32_t conn, ConnData* cd) {
    cd->heaped = true;
    const auto& st = g_->stages[stage];
    const uint32_t begin = st.conn_begin[conn];
    const uint32_t end = st.conn_begin[conn + 1];
    if (end - begin <= cd->sorted.size()) return;  // nothing left
    typename ConnHeap::Container rest(ArenaAllocator<uint32_t>{arena_});
    rest.reserve(end - begin - cd->sorted.size());
    for (uint32_t p = begin; p < end; ++p) {
      if (p != cd->sorted[0] && (cd->sorted.size() < 2 || p != cd->sorted[1])) {
        rest.push_back(p);
      }
    }
    cd->heap = ConnHeap(Cmp{g_, stage}, ArenaAllocator<uint32_t>(arena_));
    cd->heap.BuildFrom(std::move(rest));
  }

  static constexpr uint32_t kNoPos = UINT32_MAX;
  // Connectors up to this size take the top-two scan under a budget; larger
  // ones keep a (budget-capped) heap, whose build loop beats a branchy
  // linear scan at scale.
  static constexpr uint32_t kScanThreshold = 64;

  const StageGraph<D>* g_;
  Arena* arena_;
  std::vector<ConnData*> conns_;  // null until first touch; arena-backed
  size_t budget_ = 0;             // 0 = unbounded
  StrategyStats stats_;
};

/// All (Yang et al.): no per-connector structure; deviating from the top
/// choice inserts every other choice at once.
template <SelectiveDioid D>
class AllStrategy {
 public:
  static constexpr const char* kName = "All";

  AllStrategy(const StageGraph<D>* g, Arena* /*arena*/) : g_(g) {}

  // Choice handles are absolute member positions.
  uint32_t Top(uint32_t stage, uint32_t conn) {
    return g_->stages[stage].conn_best[conn];
  }

  uint32_t MemberPos(uint32_t /*stage*/, uint32_t /*conn*/, uint32_t choice) {
    return choice;
  }

  template <typename Out>
  void Successors(uint32_t stage, uint32_t conn, uint32_t choice, Out* out) {
    ++stats_.succ_calls;
    const auto& st = g_->stages[stage];
    if (choice != st.conn_best[conn]) return;  // siblings already inserted
    for (uint32_t p = st.conn_begin[conn]; p < st.conn_begin[conn + 1]; ++p) {
      if (p == choice) continue;
      out->push_back(p);
      ++stats_.succ_returned;
    }
  }

  const StrategyStats& stats() const { return stats_; }

 private:
  const StageGraph<D>* g_;
  StrategyStats stats_;
};

/// Take2 (this paper): heapify once; the heap is never popped but used as a
/// static partial order — the successors of a slot are its two children.
template <SelectiveDioid D>
class Take2Strategy {
 public:
  static constexpr const char* kName = "Take2";

  Take2Strategy(const StageGraph<D>* g, Arena* arena)
      : g_(g), arena_(arena), conns_(g->total_connectors) {}

  uint32_t Top(uint32_t stage, uint32_t conn) {
    Init(stage, conn);
    return 0;  // heap slot 0
  }

  uint32_t MemberPos(uint32_t stage, uint32_t conn, uint32_t choice) {
    return conns_[g_->GlobalConn(stage, conn)].heap[choice];
  }

  template <typename Out>
  void Successors(uint32_t stage, uint32_t conn, uint32_t choice, Out* out) {
    ++stats_.succ_calls;
    const auto& cd = conns_[g_->GlobalConn(stage, conn)];
    for (uint32_t child = 2 * choice + 1;
         child <= 2 * choice + 2 && child < cd.heap.size(); ++child) {
      out->push_back(child);
      ++stats_.succ_returned;
    }
  }

  const StrategyStats& stats() const { return stats_; }

 private:
  struct ConnData {
    bool init = false;
    ArenaVector<uint32_t> heap;  // member positions in heap order
  };

  void Init(uint32_t stage, uint32_t conn) {
    ConnData& cd = conns_[g_->GlobalConn(stage, conn)];
    if (cd.init) return;
    cd.init = true;
    const auto& st = g_->stages[stage];
    cd.heap = MakeArenaVector<uint32_t>(arena_);
    cd.heap.resize(st.ConnSize(conn));
    for (uint32_t i = 0; i < cd.heap.size(); ++i) {
      cd.heap[i] = st.conn_begin[conn] + i;
    }
    Heapify(&cd.heap, [&](uint32_t a, uint32_t b) {
      return D::Less(st.member_val[a], st.member_val[b]);
    });
    ++stats_.conns_initialized;
    stats_.init_work += cd.heap.size();
  }

  const StageGraph<D>* g_;
  Arena* arena_;
  std::vector<ConnData> conns_;
  StrategyStats stats_;
};

}  // namespace anyk

#endif  // ANYK_ANYK_STRATEGIES_H_
