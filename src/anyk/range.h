// Range adapter: iterate an enumerator with a range-for loop.
//
//   RankedQuery<TropicalDioid> rq(db, q);
//   for (const ResultRow<TropicalDioid>& row : Results(&rq)) { ... }

#ifndef ANYK_ANYK_RANGE_H_
#define ANYK_ANYK_RANGE_H_

#include <iterator>
#include <optional>

#include "anyk/enumerator.h"
#include "anyk/ranked_query.h"

namespace anyk {

template <SelectiveDioid D>
class EnumeratorRange {
 public:
  explicit EnumeratorRange(Enumerator<D>* e) : e_(e) {}

  class Iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = ResultRow<D>;
    using difference_type = std::ptrdiff_t;
    using pointer = const ResultRow<D>*;
    using reference = const ResultRow<D>&;

    Iterator() = default;  // end sentinel
    explicit Iterator(Enumerator<D>* e) : e_(e) { Advance(); }

    reference operator*() const { return *current_; }
    pointer operator->() const { return &*current_; }

    Iterator& operator++() {
      Advance();
      return *this;
    }
    void operator++(int) { Advance(); }

    bool operator==(const Iterator& other) const {
      return AtEnd() == other.AtEnd();
    }
    bool operator!=(const Iterator& other) const { return !(*this == other); }

   private:
    bool AtEnd() const { return e_ == nullptr || !current_.has_value(); }
    void Advance() { current_ = e_->Next(); }

    Enumerator<D>* e_ = nullptr;
    std::optional<ResultRow<D>> current_;
  };

  Iterator begin() { return Iterator(e_); }
  Iterator end() { return Iterator(); }

 private:
  Enumerator<D>* e_;
};

template <SelectiveDioid D>
EnumeratorRange<D> Results(Enumerator<D>* e) {
  return EnumeratorRange<D>(e);
}

template <SelectiveDioid D>
EnumeratorRange<D> Results(RankedQuery<D>* rq) {
  return EnumeratorRange<D>(rq->enumerator());
}

}  // namespace anyk

#endif  // ANYK_ANYK_RANGE_H_
