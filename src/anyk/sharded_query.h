// ShardedPreparedQuery: S independent PreparedQueries over hash-partitioned
// data, merged per session through a k-budgeted ranked union (ROADMAP Open
// item 3 — "shard the data, not just the sessions").
//
// Prepare: a ShardedDatabase splits the query's relations on one partition
// variable (storage/sharded_database.h has the correctness argument: the S
// per-shard answer streams are a disjoint cover of the full answer set),
// then S PreparedQueries build in parallel waves on the caller's ThreadPool
// — the fan-out is one level deep (each per-shard build runs serially), per
// the pool's no-nested-waits contract.
//
// Plan: the strategy decision is made ONCE across shards — the per-shard
// stage-graph statistics merge through plan::MergeGraphStats (inside
// DecideStrategy's non-owning overload), so Algorithm::kAuto resolves to a
// single (algorithm, heap arity) pair that every shard session runs. A
// shard-local decision could disagree between shards and make the merged
// stream's cost profile incoherent; /statz and EXPLAIN show the global one.
//
// Enumerate: NewSession opens one per-shard enumerator per shard — each
// with the caller's FULL k budget, since a single shard may supply the
// entire top-k — and merges them with UnionEnumerator (dedup off: the
// streams are disjoint) under the union-level k budget. With
// Options::parallel_drain the merge instead runs through
// ParallelUnionEnumerator (shard_drain.h): same output bytes, but each
// shard session drains on its own worker thread so NextBatch pulls overlap
// across shards. Either way the zero-global-alloc invariant holds per shard
// session (their arenas are per-enumerator, unchanged).
//
// S == 1 is a true passthrough: no ShardedDatabase, no union — the single
// PreparedQuery is built on the original database, so output, witnesses and
// timings are byte-identical to the unsharded path by construction.
//
// Witness caveat: with S > 1, witness row ids refer to rows of the SHARD's
// relations (partitioning renumbers rows), and tie-breaking among
// equal-weight answers follows those shard-local ids. The answer *set* and
// its weight order are exact; within an equal-weight group the order may
// differ from the unsharded drain (differential_test's shard sweep compares
// canonically for precisely this reason).
//
// anyk-lint: allow-file(heap-hot-path): all allocations here are prepare or
// session-open time; the merged drain recycles rows by swap (union_anyk.h /
// shard_drain.h) and the per-shard enumerators keep their arena discipline.

#ifndef ANYK_ANYK_SHARDED_QUERY_H_
#define ANYK_ANYK_SHARDED_QUERY_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "anyk/factory.h"
#include "anyk/prepared_query.h"
#include "anyk/shard_drain.h"
#include "anyk/union_anyk.h"
#include "dioid/tropical.h"
#include "plan/planner.h"
#include "query/cq.h"
#include "storage/database.h"
#include "storage/sharded_database.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace anyk {

template <SelectiveDioid D = TropicalDioid>
class ShardedPreparedQuery {
 public:
  struct Options {
    /// Per-shard prepare options. `prepare.pool` drives BOTH the partition
    /// pass and the parallel per-shard build waves; with S > 1 the
    /// individual shard builds run serially inside the waves.
    typename PreparedQuery<D>::Options prepare;
    size_t shards = 1;
    /// Merge through ParallelUnionEnumerator: one worker thread per shard
    /// session. Same output bytes as the serial union; sessions cost S
    /// threads each while open.
    bool parallel_drain = false;
  };

  ShardedPreparedQuery(const Database& db, const ConjunctiveQuery& q,
                       Options opts = {})
      : opts_(opts) {
    ThreadPool* pool = opts.prepare.pool;
    opts_.prepare.pool = nullptr;  // construction-only; never kept
    if (opts_.shards == 0) opts_.shards = 1;
    const size_t s_count = opts_.shards;
    if (s_count == 1) {
      // Passthrough: the one "shard" is the original database, built with
      // full inner parallelism.
      typename PreparedQuery<D>::Options single = opts_.prepare;
      single.pool = pool;
      shards_.push_back(std::make_unique<PreparedQuery<D>>(db, q, single));
      decision_ = shards_[0]->decision();
      return;
    }
    sharded_db_ = std::make_unique<ShardedDatabase>(db, q, s_count, pool);
    shards_.resize(s_count);
    ParallelFor(pool, s_count, [&](size_t s) {
      shards_[s] = std::make_unique<PreparedQuery<D>>(
          sharded_db_->shard(s), q, opts_.prepare);
    });
    DecideGlobal();
  }

  /// Open one merged enumeration stream across all shards. Thread-safe on a
  /// const ShardedPreparedQuery, exactly like PreparedQuery::NewSession;
  /// Algorithm::kAuto resolves to the cross-shard decision().
  EnumerationSession<D> NewSession(Algorithm algo,
                                   const EnumOptions& enum_opts) const {
    EnumOptions opts = enum_opts;
    if (algo == Algorithm::kAuto) {
      algo = decision_.algorithm;
      opts.heap_arity = decision_.heap_arity;
    }
    if (shards_.size() == 1) return shards_[0]->NewSession(algo, opts);
    // Every shard keeps the caller's full k budget (any one shard may hold
    // the whole top-k); only the union enforces the emitted-answer cap.
    // The streams are disjoint by the partition-variable argument, so the
    // union never dedups.
    std::vector<std::unique_ptr<Enumerator<D>>> parts;
    parts.reserve(shards_.size());
    for (const auto& shard : shards_) {
      parts.push_back(shard->NewSessionEnumerator(algo, opts));
    }
    if (opts_.parallel_drain) {
      return EnumerationSession<D>(
          std::make_unique<ParallelUnionEnumerator<D>>(std::move(parts),
                                                       opts.k_budget));
    }
    return EnumerationSession<D>(std::make_unique<UnionEnumerator<D>>(
        std::move(parts), /*dedup=*/false, opts.k_budget));
  }
  EnumerationSession<D> NewSession(Algorithm algo) const {
    return NewSession(algo, opts_.prepare.enum_opts);
  }

  size_t NumShards() const { return shards_.size(); }
  const PreparedQuery<D>& shard(size_t s) const { return *shards_[s]; }
  QueryPlan plan() const { return shards_[0]->plan(); }
  const ConjunctiveQuery& query() const { return shards_[0]->query(); }
  /// The cross-shard planner decision (merged statistics; what kAuto runs).
  const plan::PlanDecision& decision() const { return decision_; }
  const EnumOptions& default_enum_options() const {
    return opts_.prepare.enum_opts;
  }
  /// The partitioned data, or null for the S == 1 passthrough.
  const ShardedDatabase* sharded_db() const { return sharded_db_.get(); }

 private:
  /// One strategy decision over ALL shards' graphs: per-shard stats merge
  /// via MergeGraphStats inside DecideStrategy, so the pick reflects the
  /// whole data set, not whichever shard happened to be first.
  void DecideGlobal() {
    if (plan() == QueryPlan::kGenericJoinBatch) {
      double total_out = 0;
      for (const auto& shard : shards_) {
        total_out += shard->decision().stats.output_count;
      }
      decision_ = plan::BatchOnlyDecision(total_out);
    } else {
      std::vector<const StageGraph<D>*> all_graphs;
      for (const auto& shard : shards_) {
        for (const auto& g : shard->graphs()) all_graphs.push_back(g.get());
      }
      decision_ = plan::DecideStrategy<D>(all_graphs,
                                          opts_.prepare.enum_opts.k_budget);
    }
    decision_.auto_topology = opts_.prepare.auto_plan;
  }

  Options opts_;
  std::unique_ptr<ShardedDatabase> sharded_db_;  // null for S == 1
  // const after construction; sessions hold pointers into the shard
  // PreparedQueries, which live on the heap and never move.
  std::vector<std::unique_ptr<PreparedQuery<D>>> shards_;
  plan::PlanDecision decision_;
};

}  // namespace anyk

#endif  // ANYK_ANYK_SHARDED_QUERY_H_
