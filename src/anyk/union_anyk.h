// UT-DP: ranked enumeration over a union of T-DP problems (paper
// Section 5.2). A top-level priority queue holds the last-pulled pending
// result of every sub-enumerator; popping the minimum emits it and refills
// from the same sub-problem.
//
// With overlapping decompositions (e.g. PANDA-style), the same output can be
// produced by several trees. Under a tie-breaking dioid (Section 6.3) no two
// *distinct* outputs compare equal, so duplicates arrive consecutively and
// `dedup = true` filters them with delay linear in the number of trees —
// constant in data complexity.

#ifndef ANYK_ANYK_UNION_ANYK_H_
#define ANYK_ANYK_UNION_ANYK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "util/binary_heap.h"

namespace anyk {

template <SelectiveDioid D>
class UnionEnumerator : public Enumerator<D> {
  using V = typename D::Value;

 public:
  explicit UnionEnumerator(std::vector<std::unique_ptr<Enumerator<D>>> parts,
                           bool dedup = false)
      : parts_(std::move(parts)), dedup_(dedup) {
    for (size_t i = 0; i < parts_.size(); ++i) {
      Refill(static_cast<uint32_t>(i));
    }
  }

  std::optional<ResultRow<D>> Next() override {
    while (!heap_.Empty()) {
      Pending p = heap_.PopMin();
      const uint32_t source = p.source;
      ResultRow<D> row = std::move(p.row);
      Refill(source);
      if (dedup_ && have_last_ && DioidEq<D>(row.weight, last_weight_) &&
          row.assignment == last_assignment_) {
        ++duplicates_filtered_;
        continue;  // duplicate of the previously emitted result
      }
      have_last_ = true;
      last_weight_ = row.weight;
      last_assignment_ = row.assignment;
      return row;
    }
    return std::nullopt;
  }

  size_t duplicates_filtered() const { return duplicates_filtered_; }

 private:
  struct Pending {
    ResultRow<D> row;
    uint32_t source;
  };
  struct PendingLess {
    bool operator()(const Pending& a, const Pending& b) const {
      return D::Less(a.row.weight, b.row.weight);
    }
  };

  void Refill(uint32_t source) {
    if (auto next = parts_[source]->Next()) {
      heap_.Push(Pending{std::move(*next), source});
    }
  }

  std::vector<std::unique_ptr<Enumerator<D>>> parts_;
  bool dedup_;
  BinaryHeap<Pending, PendingLess> heap_;
  bool have_last_ = false;
  V last_weight_{};
  std::vector<Value> last_assignment_;
  size_t duplicates_filtered_ = 0;
};

}  // namespace anyk

#endif  // ANYK_ANYK_UNION_ANYK_H_
