// UT-DP: ranked enumeration over a union of T-DP problems (paper
// Section 5.2). A top-level priority queue holds the last-pulled pending
// result of every sub-enumerator; popping the minimum emits it and refills
// from the same sub-problem.
//
// With overlapping decompositions (e.g. PANDA-style), the same output can be
// produced by several trees. Under a tie-breaking dioid (Section 6.3) no two
// *distinct* outputs compare equal, so duplicates arrive consecutively and
// `dedup = true` filters them with delay linear in the number of trees —
// constant in data complexity.
//
// Memory: each source has at most one pending result at a time, so pending
// rows live in a per-source slot pool and the heap holds only (weight,
// source) pairs. Rows move between the pool and the caller's buffer by
// swap, so steady-state union enumeration performs no heap allocation of
// its own (the sources' NextInto already reuse the slot's buffers).
//
// Threading: the union owns its sub-enumerators, slots and heap outright;
// one UnionEnumerator per session (PreparedQuery::NewSession builds the
// whole part list fresh), sessions share only the underlying stage graphs.

#ifndef ANYK_ANYK_UNION_ANYK_H_
#define ANYK_ANYK_UNION_ANYK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "util/binary_heap.h"

namespace anyk {

template <SelectiveDioid D>
class UnionEnumerator : public Enumerator<D> {
  using V = typename D::Value;

 public:
  explicit UnionEnumerator(std::vector<std::unique_ptr<Enumerator<D>>> parts,
                           bool dedup = false)
      : parts_(std::move(parts)), slots_(parts_.size()), dedup_(dedup) {
    for (size_t i = 0; i < parts_.size(); ++i) {
      Refill(static_cast<uint32_t>(i));
    }
  }

  bool NextInto(ResultRow<D>* row) override {
    while (!heap_.Empty()) {
      const uint32_t source = heap_.PopMin().source;
      std::swap(*row, slots_[source]);  // hand out the pending row's buffers
      Refill(source);
      if (dedup_ && have_last_ && DioidEq<D>(row->weight, last_weight_) &&
          row->assignment == last_assignment_) {
        ++duplicates_filtered_;
        continue;  // duplicate of the previously emitted result
      }
      have_last_ = true;
      last_weight_ = row->weight;
      last_assignment_ = row->assignment;
      return true;
    }
    return false;
  }

  std::optional<ResultRow<D>> Next() override {
    ResultRow<D> row;
    if (!NextInto(&row)) return std::nullopt;
    return row;
  }

  size_t duplicates_filtered() const { return duplicates_filtered_; }

 private:
  struct Pending {
    V weight;
    uint32_t source;
  };
  struct PendingLess {
    bool operator()(const Pending& a, const Pending& b) const {
      return D::Less(a.weight, b.weight);
    }
  };

  void Refill(uint32_t source) {
    if (parts_[source]->NextInto(&slots_[source])) {
      heap_.Push(Pending{slots_[source].weight, source});
    }
  }

  std::vector<std::unique_ptr<Enumerator<D>>> parts_;
  std::vector<ResultRow<D>> slots_;  // one pending row per source
  bool dedup_;
  BinaryHeap<Pending, PendingLess> heap_;
  bool have_last_ = false;
  V last_weight_{};
  std::vector<Value> last_assignment_;
  size_t duplicates_filtered_ = 0;
};

}  // namespace anyk

#endif  // ANYK_ANYK_UNION_ANYK_H_
