// UT-DP: ranked enumeration over a union of T-DP problems (paper
// Section 5.2). A top-level priority queue holds the last-pulled pending
// result of every sub-enumerator; popping the minimum emits it and refills
// from the same sub-problem.
//
// With overlapping decompositions (e.g. PANDA-style), the same output can be
// produced by several trees. Under a tie-breaking dioid (Section 6.3) no two
// *distinct* outputs compare equal, so duplicates arrive consecutively and
// `dedup = true` filters them with delay linear in the number of trees —
// constant in data complexity.
//
// Memory: each source has at most one pending result at a time, so pending
// rows live in a per-source slot pool and the heap holds only (weight,
// source) pairs. Rows move between the pool and the caller's buffer by
// swap, so steady-state union enumeration performs no heap allocation of
// its own (the sources' NextInto already reuse the slot's buffers).
//
// Threading: the union owns its sub-enumerators, slots and heap outright;
// one UnionEnumerator per session (PreparedQuery::NewSession builds the
// whole part list fresh), sessions share only the underlying stage graphs.

#ifndef ANYK_ANYK_UNION_ANYK_H_
#define ANYK_ANYK_UNION_ANYK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "util/dary_heap.h"

namespace anyk {

template <SelectiveDioid D>
class UnionEnumerator : public Enumerator<D> {
  using V = typename D::Value;

 public:
  /// `k_budget` caps the number of answers *emitted by the union* (0 = all);
  /// after the k-th answer NextInto reports exhaustion without pulling the
  /// sources again. Each source's own budget travels in its EnumOptions
  /// (PreparedQuery::NewSession gives every part the full k: any single
  /// partition may supply the entire top-k).
  explicit UnionEnumerator(std::vector<std::unique_ptr<Enumerator<D>>> parts,
                           bool dedup = false, size_t k_budget = 0)
      : parts_(std::move(parts)),
        slots_(parts_.size()),
        dedup_(dedup),
        k_budget_(k_budget) {
    // Bulk-heapify the initial pending set (one entry per non-empty source)
    // instead of |parts| individual pushes.
    std::vector<Pending> initial;
    initial.reserve(parts_.size());
    for (size_t i = 0; i < parts_.size(); ++i) {
      const uint32_t source = static_cast<uint32_t>(i);
      if (parts_[source]->NextInto(&slots_[source])) {
        initial.push_back(Pending{slots_[source].weight, source});
      }
    }
    heap_.BuildFrom(std::move(initial));
  }

  bool NextInto(ResultRow<D>* row) override {
    if (k_budget_ != 0 && emitted_ >= k_budget_) return false;
    while (!heap_.Empty()) {
      const uint32_t source = heap_.PopMin().source;
      std::swap(*row, slots_[source]);  // hand out the pending row's buffers
      Refill(source);
      if (dedup_ && have_last_ && DioidEq<D>(row->weight, last_weight_) &&
          row->assignment == last_assignment_) {
        ++duplicates_filtered_;
        continue;  // duplicate of the previously emitted result
      }
      have_last_ = true;
      last_weight_ = row->weight;
      last_assignment_ = row->assignment;
      ++emitted_;
      return true;
    }
    return false;
  }

  std::optional<ResultRow<D>> Next() override {
    ResultRow<D> row;
    if (!NextInto(&row)) return std::nullopt;
    return row;
  }

  size_t duplicates_filtered() const { return duplicates_filtered_; }

 private:
  struct Pending {
    V weight;
    uint32_t source;
  };
  struct PendingLess {
    bool operator()(const Pending& a, const Pending& b) const {
      return D::Less(a.weight, b.weight);
    }
  };

  void Refill(uint32_t source) {
    if (parts_[source]->NextInto(&slots_[source])) {
      heap_.Push(Pending{slots_[source].weight, source});
    }
  }

  std::vector<std::unique_ptr<Enumerator<D>>> parts_;
  std::vector<ResultRow<D>> slots_;  // one pending row per source
  bool dedup_;
  size_t k_budget_;
  size_t emitted_ = 0;
  DAryHeap<Pending, PendingLess> heap_;
  bool have_last_ = false;
  V last_weight_{};
  std::vector<Value> last_assignment_;
  size_t duplicates_filtered_ = 0;
};

}  // namespace anyk

#endif  // ANYK_ANYK_UNION_ANYK_H_
