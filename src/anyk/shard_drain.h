// ParallelUnionEnumerator: a ranked union whose sources are drained by
// dedicated worker threads (one per shard) while the caller merges.
//
// The serial UnionEnumerator (union_anyk.h) pulls a source only when the
// merge heap pops it, so the caller's thread pays every shard's per-answer
// cost sequentially. Here each source runs ahead on its own worker, filling
// a bounded SPSC ring in rank order; the merging thread pops the global
// minimum exactly like the serial union (same heap, same source order, same
// refill-after-pop discipline), so the output stream is byte-identical to
// the serial merge — only the production of per-shard answers overlaps.
// ShardedPreparedQuery (sharded_query.h) builds one of these per session
// when parallel drain is requested; sharded streams are disjoint by
// construction, so there is no dedup mode.
//
// Memory: the ring slots and the merge slots are allocated once at session
// open; afterwards rows circulate by std::swap between the producer's ring,
// the merge slot, and the caller's buffer, so the steady-state drain
// performs no heap allocation of its own (the per-shard enumerators keep
// their zero-alloc guarantee on their own threads).
//
// Locking: each Feed has its own leaf Mutex guarding only that ring's
// head/count/flags; the merger locks at most one Feed at a time and workers
// only ever lock their own. No lock is held while a source's NextInto runs.
//
// anyk-lint: allow-file(heap-hot-path): every allocation here happens at
// session open (rings, threads, heap) — the drain loop itself only swaps
// pre-allocated rows.

#ifndef ANYK_ANYK_SHARD_DRAIN_H_
#define ANYK_ANYK_SHARD_DRAIN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "anyk/enumerator.h"
#include "util/dary_heap.h"
#include "util/sync.h"

namespace anyk {

template <SelectiveDioid D>
class ParallelUnionEnumerator : public Enumerator<D> {
  using V = typename D::Value;

 public:
  /// Takes ownership of the per-shard sources. `k_budget` caps the answers
  /// emitted by the union (0 = all); every source should carry its own full
  /// k budget in its EnumOptions (any single shard may supply the whole
  /// top-k). Workers start immediately.
  explicit ParallelUnionEnumerator(
      std::vector<std::unique_ptr<Enumerator<D>>> parts, size_t k_budget = 0)
      : parts_(std::move(parts)), slots_(parts_.size()), k_budget_(k_budget) {
    feeds_.reserve(parts_.size());
    for (size_t i = 0; i < parts_.size(); ++i) {
      feeds_.push_back(std::make_unique<Feed>());
    }
    workers_.reserve(parts_.size());
    for (size_t i = 0; i < parts_.size(); ++i) {
      workers_.emplace_back([this, i] { Produce(i); });
    }
    // Initial pending set: the first (minimum) answer of every non-empty
    // shard, in source order — the same heapify the serial union performs.
    std::vector<Pending> initial;
    initial.reserve(parts_.size());
    for (size_t i = 0; i < parts_.size(); ++i) {
      const uint32_t source = static_cast<uint32_t>(i);
      if (Pull(source, &slots_[source])) {
        initial.push_back(Pending{slots_[source].weight, source});
      }
    }
    heap_.BuildFrom(std::move(initial));
  }

  ~ParallelUnionEnumerator() override {
    for (auto& feed : feeds_) {
      MutexLock lock(&feed->mu);
      feed->stop = true;
      feed->cv.NotifyAll();
    }
    for (std::thread& w : workers_) w.join();
  }

  ParallelUnionEnumerator(const ParallelUnionEnumerator&) = delete;
  ParallelUnionEnumerator& operator=(const ParallelUnionEnumerator&) = delete;

  bool NextInto(ResultRow<D>* row) override {
    if (k_budget_ != 0 && emitted_ >= k_budget_) return false;
    if (heap_.Empty()) return false;
    const uint32_t source = heap_.PopMin().source;
    std::swap(*row, slots_[source]);  // hand out the pending row's buffers
    if (Pull(source, &slots_[source])) {
      heap_.Push(Pending{slots_[source].weight, source});
    }
    ++emitted_;
    return true;
  }

  std::optional<ResultRow<D>> Next() override {
    ResultRow<D> row;
    if (!NextInto(&row)) return std::nullopt;
    return row;
  }

 private:
  struct Pending {
    V weight;
    uint32_t source;
  };
  struct PendingLess {
    bool operator()(const Pending& a, const Pending& b) const {
      return D::Less(a.weight, b.weight);
    }
  };

  /// Bounded SPSC ring between one shard worker and the merger. The filled
  /// region is [head, head + count); the producer writes slot head + count,
  /// publishes by ++count, and the consumer takes slot head by swap — row
  /// buffers never leave the ring, they rotate through it.
  struct Feed {
    static constexpr size_t kCapacity = 64;
    Feed() : ring(kCapacity) {}
    Mutex mu;
    CondVar cv;
    std::vector<ResultRow<D>> ring;
    size_t head ANYK_GUARDED_BY(mu) = 0;
    size_t count ANYK_GUARDED_BY(mu) = 0;
    bool done ANYK_GUARDED_BY(mu) = false;  // producer exhausted its source
    bool stop ANYK_GUARDED_BY(mu) = false;  // enumerator tearing down
  };

  /// Worker body for shard `i`: drain the source in rank order into the
  /// ring. The source's NextInto always runs with no lock held.
  void Produce(size_t i) {
    Feed& f = *feeds_[i];
    Enumerator<D>* source = parts_[i].get();
    while (true) {
      size_t slot;
      {
        MutexLock lock(&f.mu);
        while (f.count == Feed::kCapacity && !f.stop) f.cv.Wait(f.mu);
        if (f.stop) return;
        slot = (f.head + f.count) % Feed::kCapacity;
      }
      const bool got = source->NextInto(&f.ring[slot]);
      MutexLock lock(&f.mu);
      if (got) {
        ++f.count;
      } else {
        f.done = true;
      }
      f.cv.NotifyAll();
      if (!got) return;
    }
  }

  /// Merger-side pull of shard `source`'s next answer (blocking); false
  /// once the shard is exhausted.
  bool Pull(uint32_t source, ResultRow<D>* row) {
    Feed& f = *feeds_[source];
    MutexLock lock(&f.mu);
    while (f.count == 0 && !f.done) f.cv.Wait(f.mu);
    if (f.count == 0) return false;
    std::swap(*row, f.ring[f.head]);
    f.head = (f.head + 1) % Feed::kCapacity;
    --f.count;
    f.cv.NotifyAll();
    return true;
  }

  std::vector<std::unique_ptr<Enumerator<D>>> parts_;
  std::vector<std::unique_ptr<Feed>> feeds_;  // stable addresses for workers
  std::vector<std::thread> workers_;
  std::vector<ResultRow<D>> slots_;  // one pending row per source (merged)
  size_t k_budget_;
  size_t emitted_ = 0;
  DAryHeap<Pending, PendingLess> heap_;
};

}  // namespace anyk

#endif  // ANYK_ANYK_SHARD_DRAIN_H_
