// The Boolean semiring ({0,1}, ∨, ∧, 0, 1) with the *inverted* order 1 ≤ 0
// (paper Section 6.4): ranked enumeration degenerates to standard (unranked)
// query evaluation, and the any-k machinery enumerates all answers — all of
// which carry weight "true".

#ifndef ANYK_DIOID_BOOLEAN_H_
#define ANYK_DIOID_BOOLEAN_H_

#include <cstddef>
#include <cstdint>

namespace anyk {

struct BooleanDioid {
  using Value = uint8_t;  // 0 = false, 1 = true

  static Value One() { return 1; }
  static Value Zero() { return 0; }
  static Value Combine(Value a, Value b) { return a & b; }
  // Order inverted so that true (satisfied) ranks before false.
  static bool Less(Value a, Value b) { return a > b; }

  // Conjunction has no inverse (Example 17 of the paper).
  static constexpr bool kHasInverse = false;
  static Value Subtract(Value, Value);  // intentionally not defined

  static Value FromWeight(double /*w*/, size_t /*atom*/, size_t /*l*/) {
    return 1;  // every present tuple contributes "true"
  }
};

}  // namespace anyk

#endif  // ANYK_DIOID_BOOLEAN_H_
