// The arctic semiring (R ∪ {−∞}, max, +, −∞, 0): heaviest witnesses first
// ("longest paths", paper Section 6.4).

#ifndef ANYK_DIOID_MAX_PLUS_H_
#define ANYK_DIOID_MAX_PLUS_H_

#include <cstddef>
#include <limits>

namespace anyk {

struct MaxPlusDioid {
  using Value = double;

  static Value One() { return 0.0; }
  static Value Zero() { return -std::numeric_limits<double>::infinity(); }
  static Value Combine(Value a, Value b) { return a + b; }
  // ⊕ = max, so the induced order ranks larger values first.
  static bool Less(Value a, Value b) { return a > b; }

  static constexpr bool kHasInverse = true;
  static Value Subtract(Value total, Value part) { return total - part; }

  static Value FromWeight(double w, size_t /*atom*/, size_t /*l*/) { return w; }
};

}  // namespace anyk

#endif  // ANYK_DIOID_MAX_PLUS_H_
