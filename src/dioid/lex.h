// Lexicographic ordering as a selective dioid (paper Section 2.2,
// "Generality"): tuple weights are ℓ-dimensional vectors that are zero except
// at the position of the owning atom; ⊗ is element-wise addition and ⊕
// selects the lexicographically smaller vector. Enumeration order is then
// "first by the R1 component, ties by the R2 component, ...".

#ifndef ANYK_DIOID_LEX_H_
#define ANYK_DIOID_LEX_H_

#include <array>
#include <cstddef>
#include <limits>

#include "util/logging.h"

namespace anyk {

/// Lexicographic dioid over fixed-capacity weight vectors. `MaxAtoms` bounds
/// the query size ℓ; unused positions stay zero.
template <size_t MaxAtoms>
struct LexDioid {
  using Value = std::array<double, MaxAtoms>;

  static Value One() {
    Value v{};
    return v;  // all zeros
  }

  static Value Zero() {
    Value v;
    v.fill(std::numeric_limits<double>::infinity());
    return v;
  }

  static Value Combine(const Value& a, const Value& b) {
    Value out;
    for (size_t i = 0; i < MaxAtoms; ++i) out[i] = a[i] + b[i];
    return out;
  }

  static bool Less(const Value& a, const Value& b) {
    for (size_t i = 0; i < MaxAtoms; ++i) {
      if (a[i] != b[i]) return a[i] < b[i];
    }
    return false;
  }

  // Element-wise addition over reals is a group (γ = O(ℓ) per op, as the
  // paper notes for lexicographic orderings).
  static constexpr bool kHasInverse = true;
  static Value Subtract(const Value& total, const Value& part) {
    Value out;
    for (size_t i = 0; i < MaxAtoms; ++i) out[i] = total[i] - part[i];
    return out;
  }

  static Value FromWeight(double w, size_t atom, size_t l) {
    ANYK_CHECK_LE(l, MaxAtoms);
    Value v{};
    v[atom] = w;
    return v;
  }
};

}  // namespace anyk

#endif  // ANYK_DIOID_LEX_H_
