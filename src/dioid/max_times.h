// The Viterbi-style semiring ([0, ∞), max, ×, 0, 1) — paper Section 6.4:
// with tuple weights as multiplicities, the first result is the output tuple
// with the largest bag-semantics multiplicity.

#ifndef ANYK_DIOID_MAX_TIMES_H_
#define ANYK_DIOID_MAX_TIMES_H_

#include <cstddef>

namespace anyk {

struct MaxTimesDioid {
  using Value = double;  // non-negative

  static Value One() { return 1.0; }
  static Value Zero() { return 0.0; }
  static Value Combine(Value a, Value b) { return a * b; }
  static bool Less(Value a, Value b) { return a > b; }

  // Division by zero makes the inverse partial; stay on the monoid path.
  static constexpr bool kHasInverse = false;
  static Value Subtract(Value, Value);  // intentionally not defined

  static Value FromWeight(double w, size_t /*atom*/, size_t /*l*/) { return w; }
};

}  // namespace anyk

#endif  // ANYK_DIOID_MAX_TIMES_H_
