// Tie-breaking adapter (paper Section 6.3).
//
// Wraps a base selective dioid with a second dimension that captures a
// lexicographic order on *witnesses*: each input tuple contributes its row id
// at its atom's position, ⊗ merges the (disjoint-support) id vectors, and ⊕
// breaks base-weight ties by the id vector. The result is again a selective
// dioid, and under it no two distinct witnesses compare equal — so when a
// decomposition produces overlapping trees, duplicates of an output tuple
// arrive consecutively and can be filtered with constant (data-complexity)
// delay by the UT-DP union operator.

#ifndef ANYK_DIOID_TIEBREAK_H_
#define ANYK_DIOID_TIEBREAK_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "dioid/dioid.h"
#include "util/logging.h"

namespace anyk {

/// Tie-breaking dioid over base dioid `B`. `MaxAtoms` bounds query size.
template <typename B, size_t MaxAtoms>
struct TieBreakDioid {
  static constexpr int64_t kUnset = -1;
  using IdVec = std::array<int64_t, MaxAtoms>;

  struct Value {
    typename B::Value base;
    IdVec id;
  };

  static Value One() { return {B::One(), UnsetId()}; }
  static Value Zero() { return {B::Zero(), UnsetId()}; }

  static Value Combine(const Value& a, const Value& b) {
    Value out{B::Combine(a.base, b.base), UnsetId()};
    for (size_t i = 0; i < MaxAtoms; ++i) {
      // Supports are disjoint in every DP combination: a solution assembles
      // each atom's contribution exactly once.
      ANYK_DCHECK(a.id[i] == kUnset || b.id[i] == kUnset);
      out.id[i] = (a.id[i] != kUnset) ? a.id[i] : b.id[i];
    }
    return out;
  }

  static bool Less(const Value& a, const Value& b) {
    if (B::Less(a.base, b.base)) return true;
    if (B::Less(b.base, a.base)) return false;
    for (size_t i = 0; i < MaxAtoms; ++i) {
      if (a.id[i] != b.id[i]) return a.id[i] < b.id[i];
    }
    return false;
  }

  static constexpr bool kHasInverse = B::kHasInverse;

  /// Inverse of Combine under the disjoint-support invariant: removes the
  /// id positions contributed by `part`.
  static Value Subtract(const Value& total, const Value& part) {
    Value out{B::Subtract(total.base, part.base), total.id};
    for (size_t i = 0; i < MaxAtoms; ++i) {
      if (part.id[i] != kUnset) out.id[i] = kUnset;
    }
    return out;
  }

  static Value FromWeight(double w, size_t atom, size_t l) {
    return FromWeightRow(w, atom, l, 0);
  }

  static Value FromWeightRow(double w, size_t atom, size_t l, uint32_t row) {
    ANYK_CHECK_LE(l, MaxAtoms);
    Value v{B::FromWeight(w, atom, l), UnsetId()};
    v.id[atom] = static_cast<int64_t>(row);
    return v;
  }

 private:
  static IdVec UnsetId() {
    IdVec id;
    id.fill(kUnset);
    return id;
  }
};

}  // namespace anyk

#endif  // ANYK_DIOID_TIEBREAK_H_
