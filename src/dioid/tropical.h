// The tropical semiring (R ∪ {∞}, min, +, ∞, 0) — the paper's default
// ranking function: result weight is the sum of input-tuple weights, smaller
// is better.

#ifndef ANYK_DIOID_TROPICAL_H_
#define ANYK_DIOID_TROPICAL_H_

#include <cstddef>
#include <limits>

namespace anyk {

struct TropicalDioid {
  using Value = double;

  static Value One() { return 0.0; }
  static Value Zero() { return std::numeric_limits<double>::infinity(); }
  static Value Combine(Value a, Value b) { return a + b; }
  static bool Less(Value a, Value b) { return a < b; }

  // (R, +) is a group, enabling the O(1) T-DP candidate-weight update of
  // Section 6.2. With integral weights all sums are exact in doubles.
  static constexpr bool kHasInverse = true;
  static Value Subtract(Value total, Value part) { return total - part; }

  static Value FromWeight(double w, size_t /*atom*/, size_t /*l*/) { return w; }
};

/// The tropical semiring *without* using the additive inverse: semantically
/// identical to TropicalDioid, but the algorithms must take the monoid code
/// path of Section 6.2 (explicit frontier recomputation, O(l^2)-delay
/// candidate generation in T-DP). Exists to test and measure that path.
struct TropicalMonoidDioid {
  using Value = double;

  static Value One() { return 0.0; }
  static Value Zero() { return std::numeric_limits<double>::infinity(); }
  static Value Combine(Value a, Value b) { return a + b; }
  static bool Less(Value a, Value b) { return a < b; }

  static constexpr bool kHasInverse = false;
  static Value Subtract(Value, Value);  // intentionally not defined

  static Value FromWeight(double w, size_t /*atom*/, size_t /*l*/) { return w; }
};

}  // namespace anyk

#endif  // ANYK_DIOID_TROPICAL_H_
