// Selective dioids (paper Section 2.2).
//
// A selective dioid (W, ⊕, ⊗, 0̄, 1̄) is a semiring whose addition is
// selective (always returns one of its operands), which induces a total
// order on W: x ≤ y iff x ⊕ y = x. Result weights are aggregates of input
// tuple weights under ⊗, and ⊕ ranks them.
//
// Every dioid in this library is a stateless type exposing:
//
//   using Value   = ...;                    // element of W
//   static Value One();                     // 1̄ (identity of ⊗)
//   static Value Zero();                    // 0̄ (identity of ⊕, absorbing)
//   static Value Combine(a, b);             // ⊗
//   static bool  Less(a, b);                // strict order induced by ⊕
//   static constexpr bool kHasInverse;      // is (W, ⊗) a group?
//   static Value Subtract(total, part);     // only if kHasInverse
//   static Value FromWeight(w, atom, l);    // lift an input tuple weight
//
// FromWeight maps the double weight of a tuple of the atom at position
// `atom` (of `l` atoms) into W; most dioids ignore the position, the
// lexicographic dioid uses it (Section 2.2, "Generality").

#ifndef ANYK_DIOID_DIOID_H_
#define ANYK_DIOID_DIOID_H_

#include <concepts>
#include <cstddef>

namespace anyk {

/// Concept checked by all DP / any-k templates.
template <typename D>
concept SelectiveDioid = requires(typename D::Value a, typename D::Value b,
                                  double w, size_t atom, size_t l) {
  { D::One() } -> std::convertible_to<typename D::Value>;
  { D::Zero() } -> std::convertible_to<typename D::Value>;
  { D::Combine(a, b) } -> std::convertible_to<typename D::Value>;
  { D::Less(a, b) } -> std::convertible_to<bool>;
  { D::FromWeight(w, atom, l) } -> std::convertible_to<typename D::Value>;
  { D::kHasInverse } -> std::convertible_to<bool>;
};

/// ⊕ of a selective dioid: returns the operand selected by the order.
template <typename D>
typename D::Value DioidPlus(const typename D::Value& a,
                            const typename D::Value& b) {
  return D::Less(b, a) ? b : a;
}

/// x ≤ y in the induced total order (non-strict).
template <typename D>
bool DioidLeq(const typename D::Value& a, const typename D::Value& b) {
  return !D::Less(b, a);
}

/// Equality in the induced order (neither strictly precedes the other).
template <typename D>
bool DioidEq(const typename D::Value& a, const typename D::Value& b) {
  return !D::Less(a, b) && !D::Less(b, a);
}

}  // namespace anyk

#endif  // ANYK_DIOID_DIOID_H_
