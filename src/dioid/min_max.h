// The bottleneck semiring (R ∪ {±∞}, min, max, +∞, −∞): the weight of a
// result is its *largest* input-tuple weight, and results with the smallest
// bottleneck come first (widest-path / minimax ranking). A selective dioid —
// max distributes over min — so every any-k algorithm applies unchanged;
// max has no inverse, exercising the monoid code path (Section 6.2).

#ifndef ANYK_DIOID_MIN_MAX_H_
#define ANYK_DIOID_MIN_MAX_H_

#include <algorithm>
#include <cstddef>
#include <limits>

namespace anyk {

struct MinMaxDioid {
  using Value = double;

  static Value One() { return -std::numeric_limits<double>::infinity(); }
  static Value Zero() { return std::numeric_limits<double>::infinity(); }
  static Value Combine(Value a, Value b) { return std::max(a, b); }
  static bool Less(Value a, Value b) { return a < b; }

  static constexpr bool kHasInverse = false;
  static Value Subtract(Value, Value);  // intentionally not defined

  static Value FromWeight(double w, size_t /*atom*/, size_t /*l*/) { return w; }
};

}  // namespace anyk

#endif  // ANYK_DIOID_MIN_MAX_H_
