// Customization point for lifting an input tuple's weight into a dioid value.
//
// Most dioids only need (weight, atom position, query size). Tie-breaking
// dioids (Section 6.3) additionally embed the identity of the tuple, so the
// DP builders funnel every lift through LiftWeight, which forwards the row id
// to dioids that declare FromWeightRow.

#ifndef ANYK_DIOID_LIFT_H_
#define ANYK_DIOID_LIFT_H_

#include <cstddef>
#include <cstdint>

#include "dioid/dioid.h"

namespace anyk {

template <typename D>
concept HasRowLift = requires(double w, size_t atom, size_t l, uint32_t row) {
  { D::FromWeightRow(w, atom, l, row) } -> std::convertible_to<typename D::Value>;
};

/// Lift the weight of row `row` of the atom at position `atom` (of `l`).
template <SelectiveDioid D>
typename D::Value LiftWeight(double w, size_t atom, size_t l, uint32_t row) {
  if constexpr (HasRowLift<D>) {
    return D::FromWeightRow(w, atom, l, row);
  } else {
    (void)row;
    return D::FromWeight(w, atom, l);
  }
}

}  // namespace anyk

#endif  // ANYK_DIOID_LIFT_H_
