// Umbrella header: the library's public surface in one include.
//
//   #include "anyk_api.h"
//   using namespace anyk;
//   Database db; ...
//   RankedQuery<TropicalDioid> rq(db, ConjunctiveQuery::Parse("Q(*) :- ..."));
//   for (const auto& row : Results(&rq)) { ... }

#ifndef ANYK_ANYK_API_H_
#define ANYK_ANYK_API_H_

#include "anyk/enumerator.h"
#include "anyk/explain.h"
#include "anyk/factory.h"
#include "anyk/range.h"
#include "anyk/ranked_query.h"
#include "anyk/sharded_query.h"
#include "anyk/topk.h"
#include "dioid/boolean.h"
#include "dioid/lex.h"
#include "dioid/max_plus.h"
#include "dioid/max_times.h"
#include "dioid/min_max.h"
#include "dioid/tiebreak.h"
#include "dioid/tropical.h"
#include "dp/projection.h"
#include "query/attribute_weights.h"
#include "query/bag_decomposition.h"
#include "query/cq.h"
#include "query/cycle_decomposition.h"
#include "query/gyo.h"
#include "query/sql.h"
#include "storage/csv.h"
#include "storage/database.h"
#include "storage/shard_hash.h"
#include "storage/sharded_database.h"

#endif  // ANYK_ANYK_API_H_
