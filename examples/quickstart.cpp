// Quickstart: rank the answers of a 3-path join by total weight and print
// the top 5 — the smallest possible end-to-end use of the library.
//
// Build & run:  ./build/examples/quickstart

#include <cstddef>
#include <cstdio>

#include "anyk/ranked_query.h"
#include "query/cq.h"
#include "storage/database.h"

int main() {
  using namespace anyk;

  // A tiny weighted edge relation (think: road segments with travel times).
  Database db;
  Relation& edges = db.AddRelation("Edge", 2);
  edges.Add({1, 2}, 10.0);
  edges.Add({1, 3}, 2.0);
  edges.Add({2, 4}, 1.0);
  edges.Add({3, 4}, 5.0);
  edges.Add({4, 5}, 3.0);
  edges.Add({4, 6}, 1.0);
  edges.Add({3, 6}, 20.0);

  // Q(x1..x4) :- Edge(x1,x2), Edge(x2,x3), Edge(x3,x4): weighted 3-hop
  // paths, lightest first.
  ConjunctiveQuery q =
      ConjunctiveQuery::Path(3, "Edge", /*single_relation=*/true);

  RankedQuery<TropicalDioid>::Options opts;
  opts.algorithm = Algorithm::kTake2;  // optimal delay after linear TTF
  RankedQuery<TropicalDioid> ranked(db, q, opts);

  std::printf("top weighted 3-hop paths:\n");
  for (int k = 1; k <= 5; ++k) {
    auto row = ranked.Next();
    if (!row) break;
    std::printf("  #%d  weight=%5.1f  path = %lld", k, row->weight,
                static_cast<long long>(row->assignment[0]));
    for (size_t v = 1; v < row->assignment.size(); ++v) {
      std::printf(" -> %lld", static_cast<long long>(row->assignment[v]));
    }
    std::printf("\n");
  }
  return 0;
}
