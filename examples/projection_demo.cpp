// Projections with min-weight semantics (paper Section 8.1): "for each
// source airport, what is the cheapest 3-leg itinerary starting there?" —
// i.e. Q(x1) :- R1(x1,x2), R2(x2,x3), R3(x3,x4) ORDER BY MIN(total price),
// one row per x1. The query is free-connex, so ranked enumeration of the
// *grouped minima* runs with O(n) preprocessing and logarithmic delay,
// without materializing the full join.

#include <cstdio>

#include "dioid/tropical.h"
#include "dp/projection.h"
#include "query/cq.h"
#include "workload/generators.h"

int main() {
  using namespace anyk;

  Database db = MakePathDatabase(/*n=*/100000, /*l=*/3, /*seed=*/11);
  ConjunctiveQuery q =
      ConjunctiveQuery::Parse("Q(x1) :- R1(x1,x2), R2(x2,x3), R3(x3,x4)");
  std::printf("query: %s  (~1e11 full answers; we rank the grouped minima)\n",
              q.ToString().c_str());

  MinWeightProjection<TropicalDioid> proj(db, q, Algorithm::kTake2);
  std::printf("\ncheapest itinerary per source, best sources first:\n");
  for (int k = 1; k <= 8; ++k) {
    auto row = proj.Next();
    if (!row) break;
    std::printf("  #%d  source=%-6lld min_total=%.0f\n", k,
                static_cast<long long>(row->assignment[0]), row->weight);
  }

  // Non-free-connex heads are rejected up front with Corollary 22's bound.
  ConjunctiveQuery bad =
      ConjunctiveQuery::Parse("Q(x1,x3) :- R1(x1,x2), R2(x2,x3)");
  std::printf("\nQ(x1,x3) over a 2-path is NOT free-connex: %s\n",
              IsFreeConnexAcyclic(bad) ? "??" : "correctly classified");
  return 0;
}
