// Influence chains: rank 4-hop follower paths in a Twitter-like power-law
// graph by the sum of endpoint PageRanks (the paper's Twitter workload,
// Section 7). Demonstrates: graph stand-in generation, PageRank weighting,
// self-join path queries, any-k enumeration with early termination, and the
// TTF advantage over batch evaluation.

#include <cstddef>
#include <cstdio>

#include "anyk/ranked_query.h"
#include "dioid/max_plus.h"
#include "query/cq.h"
#include "util/timer.h"
#include "workload/graph_gen.h"

int main() {
  using namespace anyk;

  GraphStats stats;
  Database db = MakeTwitterStandIn(/*num_nodes=*/20000, /*num_edges=*/150000,
                                   /*l=*/4, /*seed=*/7, &stats);
  std::printf("graph: %zu nodes, %zu edges, max degree %zu, avg %.1f\n",
              stats.nodes, stats.edges, stats.max_degree, stats.avg_degree);

  // Q(x1..x5) :- R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x5):
  // 4-hop "influence chains", heaviest PageRank mass first.
  ConjunctiveQuery q = ConjunctiveQuery::Path(4);

  RankedQuery<MaxPlusDioid>::Options opts;
  opts.algorithm = Algorithm::kLazy;  // best time-to-first in the paper
  Timer timer;
  RankedQuery<MaxPlusDioid> ranked(db, q, opts);

  std::printf("\ntop influence chains (PageRank-weighted, ~1e9 results "
              "exist; we look at 5):\n");
  for (int k = 1; k <= 5; ++k) {
    auto row = ranked.Next();
    if (!row) break;
    if (k == 1) {
      std::printf("  time-to-first: %.1f ms (batch evaluation would "
                  "materialize everything first)\n",
                  timer.Millis());
    }
    std::printf("  #%d  mass=%-10.0f %lld", k, row->weight,
                static_cast<long long>(row->assignment[0]));
    for (size_t v = 1; v < row->assignment.size(); ++v) {
      std::printf(" -> %lld", static_cast<long long>(row->assignment[v]));
    }
    std::printf("\n");
  }

  // Any-k means k need not be known in advance: keep pulling until the
  // chains drop below 90% of the best chain's mass.
  Timer restart;
  RankedQuery<MaxPlusDioid> again(db, q, opts);
  const double best_mass = again.Next()->weight;
  size_t extra = 0;
  while (auto row = again.Next()) {
    if (row->weight < 0.9 * best_mass) break;
    ++extra;
  }
  std::printf("\n%zu further chains above the mass threshold "
              "(enumerated in %.1f ms total)\n",
              extra, timer.Millis());
  return 0;
}
