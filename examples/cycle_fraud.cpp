// Suspicious trust loops: find the lowest-trust 4-cycles in a Bitcoin-OTC-
// style who-trusts-whom network. Cyclic queries run through the heavy/light
// decomposition into a union of five join trees (paper Section 5.3) — the
// top-ranked cycle arrives in O(n^1.5) even though the full result can be
// Θ(n^2).

#include <cstdio>

#include "anyk/ranked_query.h"
#include "query/cq.h"
#include "util/timer.h"
#include "workload/graph_gen.h"

int main() {
  using namespace anyk;

  GraphStats stats;
  Database db = MakeBitcoinStandIn(/*num_nodes=*/5881, /*num_edges=*/35592,
                                   /*l=*/4, /*seed=*/42, &stats);
  std::printf("trust network: %zu accounts, %zu trust edges\n", stats.nodes,
              stats.edges);

  // QC4(x1..x4) :- R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x1).
  // Low total trust around a cycle of vouching accounts is a fraud signal.
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);

  RankedQuery<TropicalDioid>::Options opts;
  opts.algorithm = Algorithm::kTake2;
  Timer timer;
  RankedQuery<TropicalDioid> ranked(db, q, opts);
  std::printf("plan: union of %zu decomposition trees\n", ranked.NumTrees());

  std::printf("\nlowest-trust cycles:\n");
  for (int k = 1; k <= 8; ++k) {
    auto row = ranked.Next();
    if (!row) break;
    if (k == 1) std::printf("  time-to-first: %.1f ms\n", timer.Millis());
    std::printf("  #%d  trust=%-6.0f %lld -> %lld -> %lld -> %lld -> back\n",
                k, row->weight, static_cast<long long>(row->assignment[0]),
                static_cast<long long>(row->assignment[1]),
                static_cast<long long>(row->assignment[2]),
                static_cast<long long>(row->assignment[3]));
  }
  return 0;
}
