// SQL front-end demo: run ranked-enumeration SQL against a generated graph.
//
//   ./build/examples/sql_demo                          # canned queries
//   ./build/examples/sql_demo "SELECT * FROM E e1, E e2
//        WHERE e1.A2 = e2.A1 ORDER BY WEIGHT ASC LIMIT 3"
//
// The demo database has one binary relation E (a weighted power-law graph)
// plus aliases R1..R4 so the paper's queries paste in directly.

#include <cstddef>
#include <cstdio>
#include <string>
#include <utility>

#include "anyk_api.h"
#include "workload/graph_gen.h"

using namespace anyk;

namespace {

void Run(const Database& db, const std::string& sql) {
  std::printf("\nsql> %s\n", sql.c_str());
  SqlStatement stmt = ParseSql(sql, &db);
  std::printf("  -> %s\n", stmt.query.ToString().c_str());
  auto results = ExecuteSql(db, sql);
  for (size_t i = 0; i < results.size() && i < 5; ++i) {
    std::printf("  weight=%-8.0f (", results[i].weight);
    for (size_t c = 0; c < results[i].values.size(); ++c) {
      std::printf("%s%lld", c ? ", " : "",
                  static_cast<long long>(results[i].values[c]));
    }
    std::printf(")\n");
  }
  if (results.size() > 5) {
    std::printf("  ... %zu rows total\n", results.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  GraphStats stats;
  Database db = MakeBitcoinStandIn(2000, 12000, 4, 99, &stats);
  {
    // Also expose the edge table under the name "E" for self-join queries.
    const Relation& r1 = db.Get("R1");
    Relation e("E", 2);
    for (size_t r = 0; r < r1.NumRows(); ++r) e.AddRow(r1.Row(r), r1.Weight(r));
    db.AddRelation(std::move(e));
  }
  std::printf("demo graph: %zu nodes, %zu weighted edges (tables E, R1..R4)\n",
              stats.nodes, stats.edges);

  if (argc > 1) {
    Run(db, argv[1]);
    return 0;
  }

  Run(db, "SELECT * FROM E e1, E e2 WHERE e1.A2 = e2.A1 "
          "ORDER BY WEIGHT ASC LIMIT 5");
  Run(db, "SELECT R1.A1, R2.A2 FROM R1, R2 WHERE R1.A2 = R2.A1 "
          "ORDER BY WEIGHT DESC LIMIT 5");
  Run(db, "SELECT R1.A1, R2.A1, R3.A1, R4.A1 FROM R1, R2, R3, R4 "
          "WHERE R1.A2 = R2.A1 AND R2.A2 = R3.A1 AND R3.A2 = R4.A1 "
          "AND R4.A2 = R1.A1 ORDER BY WEIGHT ASC LIMIT 5");
  return 0;
}
