// One query, four ranking functions (paper Sections 2.2, 6.4): the same
// 2-path join enumerated under
//   * tropical (min, +)      — cheapest combination first,
//   * arctic   (max, +)      — heaviest first,
//   * (max, ×) over counts   — bag semantics: most frequent answer first,
//   * lexicographic          — order by the R1 tuple, ties by the R2 tuple.
// Selective dioids make these interchangeable type parameters.

#include <cstdio>

#include "anyk/factory.h"
#include "dioid/lex.h"
#include "dioid/max_plus.h"
#include "dioid/max_times.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "query/cq.h"
#include "query/join_tree.h"

using namespace anyk;

namespace {

template <SelectiveDioid D>
void Show(const char* title, const Database& db, const ConjunctiveQuery& q,
          int k) {
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<D> g = BuildStageGraph<D>(inst);
  auto e = MakeEnumerator<D>(&g, Algorithm::kTake2);
  std::printf("%s\n", title);
  for (int i = 0; i < k; ++i) {
    auto row = e->Next();
    if (!row) break;
    std::printf("  %lld-%lld-%lld\n",
                static_cast<long long>(row->assignment[0]),
                static_cast<long long>(row->assignment[1]),
                static_cast<long long>(row->assignment[2]));
  }
}

}  // namespace

int main() {
  // Orders with per-line quantities: Order(customer, item) weighted by
  // price; Stock(item, warehouse) weighted by distance; the weight column is
  // reinterpreted per dioid (as price+distance, or as multiplicities).
  Database db;
  Relation& orders = db.AddRelation("Order", 2);
  orders.Add({1, 100}, 5.0);
  orders.Add({1, 101}, 2.0);
  orders.Add({2, 100}, 8.0);
  orders.Add({2, 102}, 1.0);
  Relation& stock = db.AddRelation("Stock", 2);
  stock.Add({100, 7}, 3.0);
  stock.Add({100, 8}, 6.0);
  stock.Add({101, 7}, 4.0);
  stock.Add({102, 8}, 9.0);

  ConjunctiveQuery q =
      ConjunctiveQuery::Parse("Q(*) :- Order(c,i), Stock(i,w)");

  Show<TropicalDioid>("min-plus (cheapest price+distance first):", db, q, 3);
  Show<MaxPlusDioid>("max-plus (priciest first):", db, q, 3);
  Show<MaxTimesDioid>("max-times (largest multiplicity first, bag "
                      "semantics):", db, q, 3);
  Show<LexDioid<4>>("lexicographic (by Order tuple, ties by Stock tuple):",
                    db, q, 6);
  return 0;
}
