// SQL front-end tests: parsing to conjunctive queries, ORDER BY/LIMIT,
// self-join aliases, DESC ranking, projection with all-weight semantics
// (Section 8.1, option 1), and oracle agreement.

#include <cstddef>
#include <gtest/gtest.h>

#include "dioid/tropical.h"
#include "query/sql.h"
#include "test_util.h"
#include "workload/generators.h"

namespace anyk {
namespace {

TEST(SqlParseTest, PathQueryShape) {
  auto stmt = ParseSql(
      "SELECT * FROM R1, R2, R3 "
      "WHERE R1.A2 = R2.A1 AND R2.A2 = R3.A1 ORDER BY WEIGHT ASC LIMIT 10");
  EXPECT_EQ(stmt.query.NumAtoms(), 3u);
  EXPECT_EQ(stmt.query.NumVars(), 4u);  // path: x1..x4
  EXPECT_TRUE(stmt.ascending);
  EXPECT_EQ(stmt.limit, 10u);
  EXPECT_TRUE(stmt.query.IsFull());
  // Join structure: R1.A2 and R2.A1 are the same variable.
  EXPECT_EQ(stmt.query.AtomVarIds(0)[1], stmt.query.AtomVarIds(1)[0]);
  EXPECT_EQ(stmt.query.AtomVarIds(1)[1], stmt.query.AtomVarIds(2)[0]);
}

TEST(SqlParseTest, CycleWithDescAndAliases) {
  auto stmt = ParseSql(
      "SELECT * FROM E e1, E e2, E e3, E e4 "
      "WHERE e1.A2 = e2.A1 AND e2.A2 = e3.A1 AND e3.A2 = e4.A1 "
      "AND e4.A2 = e1.A1 ORDER BY WEIGHT DESC");
  EXPECT_EQ(stmt.query.NumAtoms(), 4u);
  EXPECT_EQ(stmt.query.NumVars(), 4u);  // closed cycle
  EXPECT_FALSE(stmt.ascending);
  EXPECT_EQ(stmt.limit, 0u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(stmt.query.atom(i).relation, "E");
  }
}

TEST(SqlParseTest, SelectListBecomesProjection) {
  auto stmt = ParseSql(
      "SELECT R1.A1, R2.A2 FROM R1, R2 WHERE R1.A2 = R2.A1");
  ASSERT_EQ(stmt.select_vars.size(), 2u);
  EXPECT_EQ(stmt.select_vars[0], stmt.query.AtomVarIds(0)[0]);
  EXPECT_EQ(stmt.select_vars[1], stmt.query.AtomVarIds(1)[1]);
}

TEST(SqlParseTest, RejectsBadSyntax) {
  EXPECT_DEATH({ ParseSql("SELECT FROM R1"); }, "SQL");
  EXPECT_DEATH({ ParseSql("SELECT * FROM"); }, "SQL");
  EXPECT_DEATH({ ParseSql("SELECT * FROM R1 WHERE R1.A1 = R9.A1"); },
               "unknown table alias");
  EXPECT_DEATH({ ParseSql("SELECT * FROM R1, R1"); }, "duplicate table");
}

TEST(SqlParseTest, RejectsTrailingGarbageWithOffset) {
  // A complete statement followed by junk must not parse. The error carries
  // the byte offset of the first unconsumed token so server clients can
  // point at the problem. Note `FROM R1 garbage` alone is legal (alias
  // syntax); only input after a complete statement is trailing.
  EXPECT_DEATH(
      { ParseSql("SELECT * FROM R1 ORDER BY WEIGHT ASC garbage"); },
      "SQL:37: trailing input");
  EXPECT_DEATH({ ParseSql("SELECT * FROM R1 LIMIT 3 x"); },
               "SQL:[0-9]+: trailing input");
  EXPECT_DEATH({ ParseSql("SELECT * FROM R1; SELECT * FROM R1"); },
               "SQL:[0-9]+: trailing input");
}

TEST(SqlParseTest, RejectsBadLimit) {
  EXPECT_DEATH({ ParseSql("SELECT * FROM R1 LIMIT ten"); },
               "LIMIT expects a positive integer");
  // LIMIT 0 must never reach the engine, where a 0 budget is the
  // "unbounded" sentinel (EnumOptions::k_budget) and would drain everything.
  EXPECT_DEATH({ ParseSql("SELECT * FROM R1 LIMIT 0"); },
               "LIMIT 0 is not a query");
}

TEST(SqlNormalizeTest, CanonicalizesSpellingVariants) {
  const std::string canonical = NormalizeSql(
      "SELECT * FROM R1, R2 WHERE R1.A2 = R2.A1 ORDER BY WEIGHT ASC");
  // Keyword case, whitespace, implicit ASC, lowercase columns, swapped
  // equality sides, and a trailing semicolon all normalize to the same
  // cache key. (Table aliases stay case-sensitive, like the parser.)
  EXPECT_EQ(NormalizeSql("select  *  from R1 ,R2 where R2.a1=R1.a2;"),
            canonical);
  EXPECT_EQ(NormalizeSql(
                "SELECT * FROM R1, R2 WHERE R2.A1 = R1.A2 ORDER BY WEIGHT"),
            canonical);
  // Conjunct order is sorted, so permuted WHERE clauses agree too.
  EXPECT_EQ(
      NormalizeSql("SELECT * FROM R1, R2, R3 "
                   "WHERE R2.A2 = R3.A1 AND R1.A2 = R2.A1"),
      NormalizeSql("SELECT * FROM R1, R2, R3 "
                   "WHERE R1.A2 = R2.A1 AND R2.A2 = R3.A1"));
}

TEST(SqlNormalizeTest, PreservesFromOrderAndReparses) {
  // FROM order determines the SELECT * column order, so it must survive
  // normalization (R2 before R1 here is semantically distinct output).
  const std::string n1 =
      NormalizeSql("SELECT * FROM R2, R1 WHERE R1.A2 = R2.A1");
  const std::string n2 =
      NormalizeSql("SELECT * FROM R1, R2 WHERE R1.A2 = R2.A1");
  EXPECT_NE(n1, n2);
  EXPECT_NE(n1.find("FROM R2, R1"), std::string::npos) << n1;
  // Normalization is idempotent and its output reparses to the same shape.
  EXPECT_EQ(NormalizeSql(n1), n1);
  auto stmt = ParseSql(n2);
  EXPECT_EQ(stmt.query.NumAtoms(), 2u);
  EXPECT_TRUE(stmt.ascending);
}

TEST(SqlExecuteTest, MatchesOracleAscending) {
  Database db = MakePathDatabase(40, 3, 501, {.fanout = 6.0});
  auto results = ExecuteSql(
      db,
      "SELECT * FROM R1, R2, R3 "
      "WHERE R1.A2 = R2.A1 AND R2.A2 = R3.A1 ORDER BY WEIGHT ASC");
  auto oracle =
      testing::Oracle<TropicalDioid>(db, ConjunctiveQuery::Path(3));
  ASSERT_EQ(results.size(), oracle.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].weight, oracle[i].weight) << i;
  }
}

TEST(SqlExecuteTest, DescendingIsReverseExtreme) {
  Database db = MakePathDatabase(30, 2, 502, {.fanout = 5.0});
  auto asc = ExecuteSql(
      db, "SELECT * FROM R1, R2 WHERE R1.A2 = R2.A1 ORDER BY WEIGHT ASC");
  auto desc = ExecuteSql(
      db, "SELECT * FROM R1, R2 WHERE R1.A2 = R2.A1 ORDER BY WEIGHT DESC");
  ASSERT_EQ(asc.size(), desc.size());
  ASSERT_FALSE(asc.empty());
  EXPECT_DOUBLE_EQ(asc.front().weight, desc.back().weight);
  EXPECT_DOUBLE_EQ(asc.back().weight, desc.front().weight);
}

TEST(SqlExecuteTest, LimitAndProjection) {
  Database db = MakePathDatabase(40, 2, 503, {.fanout = 6.0});
  auto results = ExecuteSql(
      db,
      "SELECT R1.A1, R2.A2 FROM R1, R2 WHERE R1.A2 = R2.A1 "
      "ORDER BY WEIGHT ASC LIMIT 7");
  ASSERT_LE(results.size(), 7u);
  for (const auto& r : results) {
    EXPECT_EQ(r.values.size(), 2u);  // projected columns only
  }
  // All-weight-projection semantics: duplicates of the projection may
  // appear; weights are the full query's, non-decreasing.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].weight, results[i - 1].weight);
  }
}

TEST(SqlExecuteTest, PaperExample1FourCycle) {
  // Example 1's SQL, modulo column naming: the 4-cycle with summed weights.
  Database db = MakeWorstCaseCycleDatabase(14, 4, 504);
  auto results = ExecuteSql(
      db,
      "SELECT R1.A1, R2.A1, R3.A1, R4.A1 FROM R1, R2, R3, R4 "
      "WHERE R1.A2 = R2.A1 AND R2.A2 = R3.A1 AND R3.A2 = R4.A1 "
      "AND R4.A2 = R1.A1 ORDER BY WEIGHT ASC LIMIT 5");
  auto oracle =
      testing::Oracle<TropicalDioid>(db, ConjunctiveQuery::Cycle(4));
  ASSERT_EQ(results.size(), std::min<size_t>(5, oracle.size()));
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].weight, oracle[i].weight);
  }
}

}  // namespace
}  // namespace anyk
