// UT-DP union tests (paper Sections 5.2, 6.3): merged rank order across
// trees, and consecutive-duplicate elimination under the tie-breaking dioid
// when trees overlap.

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "anyk/union_anyk.h"
#include "dioid/tiebreak.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "test_util.h"
#include "workload/generators.h"

namespace anyk {
namespace {

TEST(UnionTest, MergesDisjointTreesInOrder) {
  // Two databases for the same query shape; tag assignments so we can see
  // both contribute. Tree A has even weights, tree B odd weights.
  Database db_a, db_b;
  auto& a1 = db_a.AddRelation("R1", 2);
  auto& a2 = db_a.AddRelation("R2", 2);
  auto& b1 = db_b.AddRelation("R1", 2);
  auto& b2 = db_b.AddRelation("R2", 2);
  for (Value i = 0; i < 5; ++i) {
    a1.Add({i, 100}, static_cast<double>(2 * i));
    a2.Add({100, i}, 0.0);
    b1.Add({i + 10, 200}, static_cast<double>(2 * i + 1));
    b2.Add({200, i + 10}, 0.0);
  }
  auto q = ConjunctiveQuery::Path(2);
  TDPInstance ia = BuildAcyclicInstance(db_a, q);
  TDPInstance ib = BuildAcyclicInstance(db_b, q);
  auto ga = BuildStageGraph<TropicalDioid>(ia);
  auto gb = BuildStageGraph<TropicalDioid>(ib);
  std::vector<std::unique_ptr<Enumerator<TropicalDioid>>> parts;
  parts.push_back(MakeEnumerator<TropicalDioid>(&ga, Algorithm::kLazy));
  parts.push_back(MakeEnumerator<TropicalDioid>(&gb, Algorithm::kLazy));
  UnionEnumerator<TropicalDioid> u(std::move(parts));
  double prev = -1;
  size_t count = 0;
  while (auto r = u.Next()) {
    EXPECT_GE(r->weight, prev);
    prev = r->weight;
    ++count;
  }
  EXPECT_EQ(count, 50u);  // 25 per tree
}

TEST(UnionTest, DedupWithTieBreakRemovesOverlap) {
  using TB = TieBreakDioid<TropicalDioid, 8>;
  // Feed the SAME instance twice: every result is produced by both trees.
  // Under the tie-breaking dioid duplicates arrive consecutively, so dedup
  // keeps exactly one copy of each.
  GeneratorOptions gen;
  gen.weight_min = 0;
  gen.weight_max = 2;  // plenty of base-weight ties
  gen.fanout = 5.0;
  Database db = MakePathDatabase(30, 3, 91, gen);
  auto q = ConjunctiveQuery::Path(3);
  TDPInstance i1 = BuildAcyclicInstance(db, q);
  TDPInstance i2 = BuildAcyclicInstance(db, q);
  auto g1 = BuildStageGraph<TB>(i1);
  auto g2 = BuildStageGraph<TB>(i2);
  std::vector<std::unique_ptr<Enumerator<TB>>> parts;
  parts.push_back(MakeEnumerator<TB>(&g1, Algorithm::kTake2));
  parts.push_back(MakeEnumerator<TB>(&g2, Algorithm::kTake2));
  UnionEnumerator<TB> u(std::move(parts), /*dedup=*/true);

  auto oracle = testing::Oracle<TB>(db, q);
  size_t count = 0;
  typename TB::Value prev = TB::One();
  while (auto r = u.Next()) {
    if (count > 0) {
      EXPECT_FALSE(TB::Less(r->weight, prev)) << "order violated";
      EXPECT_FALSE(DioidEq<TB>(r->weight, prev))
          << "tie-break must make all emitted weights distinct";
    }
    prev = r->weight;
    ++count;
  }
  EXPECT_EQ(count, oracle.size());
  EXPECT_EQ(u.duplicates_filtered(), oracle.size());
}

TEST(UnionTest, WithoutDedupEmitsDuplicates) {
  Database db = MakePathDatabase(10, 2, 92, {.fanout = 3.0});
  auto q = ConjunctiveQuery::Path(2);
  TDPInstance i1 = BuildAcyclicInstance(db, q);
  TDPInstance i2 = BuildAcyclicInstance(db, q);
  auto g1 = BuildStageGraph<TropicalDioid>(i1);
  auto g2 = BuildStageGraph<TropicalDioid>(i2);
  const size_t out_size = [&] {
    auto e = MakeEnumerator<TropicalDioid>(&g1, Algorithm::kBatch);
    size_t n = 0;
    while (e->Next()) ++n;
    return n;
  }();
  std::vector<std::unique_ptr<Enumerator<TropicalDioid>>> parts;
  parts.push_back(MakeEnumerator<TropicalDioid>(&g1, Algorithm::kLazy));
  parts.push_back(MakeEnumerator<TropicalDioid>(&g2, Algorithm::kLazy));
  UnionEnumerator<TropicalDioid> u(std::move(parts), /*dedup=*/false);
  size_t count = 0;
  while (u.Next()) ++count;
  EXPECT_EQ(count, 2 * out_size);
}

TEST(UnionTest, EmptyPartsHandled) {
  std::vector<std::unique_ptr<Enumerator<TropicalDioid>>> parts;
  UnionEnumerator<TropicalDioid> empty(std::move(parts));
  EXPECT_FALSE(empty.Next().has_value());
}

}  // namespace
}  // namespace anyk
