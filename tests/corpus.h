// Seeded random query/instance corpus shared by the differential oracle
// (tests/differential_test.cc) and the planner oracle
// (tests/planner_test.cc): paths, stars, simple cycles, mixed-arity random
// trees, and duplicate-weight-heavy instances. Everything is driven by one
// seed, so a failure message's seed reproduces the exact case anywhere.

#ifndef ANYK_TESTS_CORPUS_H_
#define ANYK_TESTS_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "query/cq.h"
#include "storage/database.h"
#include "util/random.h"

namespace anyk {
namespace corpus {

struct GeneratedCase {
  Database db;
  ConjunctiveQuery q;
  std::string label;
};

inline void FillBinaryRelation(Rng* rng, Relation* rel, size_t rows,
                               int64_t domain, int64_t weight_max) {
  for (size_t r = 0; r < rows; ++r) {
    rel->Add({rng->Uniform(0, domain), rng->Uniform(0, domain)},
             static_cast<double>(rng->Uniform(0, weight_max)));
  }
}

inline GeneratedCase MakePathCase(uint64_t seed) {
  Rng rng(seed);
  const size_t l = 2 + rng.Below(4);              // 2..5 atoms
  const size_t rows = 8 + rng.Below(25);          // 8..32 rows
  const int64_t domain = 2 + rng.Uniform(0, 4);   // join selectivity knob
  const int64_t wmax = rng.Bernoulli(0.3) ? 2 : 50;  // 30%: heavy ties
  GeneratedCase c;
  c.label = "path" + std::to_string(l);
  for (size_t i = 1; i <= l; ++i) {
    auto& rel = c.db.AddRelation("R" + std::to_string(i), 2);
    FillBinaryRelation(&rng, &rel, rows, domain, wmax);
  }
  c.q = ConjunctiveQuery::Path(l);
  return c;
}

inline GeneratedCase MakeStarCase(uint64_t seed) {
  Rng rng(seed);
  const size_t leaves = 2 + rng.Below(4);         // 2..5 atoms around center
  const size_t rows = 8 + rng.Below(20);
  const int64_t domain = 2 + rng.Uniform(0, 3);
  const int64_t wmax = rng.Bernoulli(0.3) ? 3 : 40;
  GeneratedCase c;
  c.label = "star" + std::to_string(leaves);
  // Star: all atoms share the center variable x0: Si(x0, yi).
  for (size_t i = 1; i <= leaves; ++i) {
    auto& rel = c.db.AddRelation("S" + std::to_string(i), 2);
    FillBinaryRelation(&rng, &rel, rows, domain, wmax);
    c.q.AddAtom("S" + std::to_string(i), {"x0", "y" + std::to_string(i)});
  }
  return c;
}

inline GeneratedCase MakeCycleCase(uint64_t seed) {
  Rng rng(seed);
  const size_t l = 4 + rng.Below(3);              // 4..6 atoms
  const size_t rows = 8 + rng.Below(14);
  const int64_t domain = 2 + rng.Uniform(0, 2);
  const int64_t wmax = rng.Bernoulli(0.3) ? 2 : 30;
  GeneratedCase c;
  c.label = "cycle" + std::to_string(l);
  for (size_t i = 1; i <= l; ++i) {
    auto& rel = c.db.AddRelation("C" + std::to_string(i), 2);
    FillBinaryRelation(&rng, &rel, rows, domain, wmax);
  }
  c.q = ConjunctiveQuery::Cycle(l, "C");
  return c;
}

// Random tree-shaped CQ with mixed arities 2..4: atom i joins a random
// earlier atom on one shared variable and introduces 1-3 fresh variables.
inline GeneratedCase MakeTreeCase(uint64_t seed) {
  Rng rng(seed);
  const size_t atoms = 2 + rng.Below(4);          // 2..5 atoms
  const size_t rows = 6 + rng.Below(16);
  const int64_t domain = 2 + rng.Uniform(0, 3);
  const int64_t wmax = rng.Bernoulli(0.3) ? 2 : 60;
  GeneratedCase c;
  c.label = "tree" + std::to_string(atoms);
  std::vector<std::vector<std::string>> atom_vars(atoms);
  size_t fresh = 0;
  for (size_t i = 0; i < atoms; ++i) {
    std::vector<std::string> vars;
    if (i > 0) {
      const auto& pv = atom_vars[rng.Below(i)];
      vars.push_back(pv[rng.Below(pv.size())]);
    }
    const size_t extra = 1 + rng.Below(3);
    for (size_t e = 0; e < extra; ++e) {
      vars.push_back("v" + std::to_string(fresh++));
    }
    rng.Shuffle(&vars);
    atom_vars[i] = vars;
    auto& rel = c.db.AddRelation("T" + std::to_string(i), vars.size());
    std::vector<Value> buf(vars.size());
    for (size_t r = 0; r < rows; ++r) {
      for (auto& v : buf) v = rng.Uniform(0, domain);
      rel.AddRow(buf, static_cast<double>(rng.Uniform(0, wmax)));
    }
    c.q.AddAtom("T" + std::to_string(i), vars);
  }
  return c;
}

inline GeneratedCase MakeCase(uint64_t seed) {
  switch (seed % 5) {
    case 0: return MakePathCase(seed);
    case 1: return MakeStarCase(seed);
    case 2: return MakeTreeCase(seed);
    case 3: return MakeCycleCase(seed);
    default: {
      // Duplicate-weight stress: every weight equal — the ranking is
      // decided purely by the tie-breaking dimension.
      GeneratedCase c = MakePathCase(seed * 31 + 7);
      c.label += "-allties";
      for (size_t i = 1; i <= 5; ++i) {
        const std::string name = "R" + std::to_string(i);
        if (!c.db.Has(name)) break;
        Relation& rel = c.db.GetMutable(name);
        for (size_t r = 0; r < rel.NumRows(); ++r) rel.SetWeight(r, 1.0);
      }
      return c;
    }
  }
}

}  // namespace corpus
}  // namespace anyk

#endif  // ANYK_TESTS_CORPUS_H_
