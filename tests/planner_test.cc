// Planner oracle: the cost-based strategy choice behind `--algorithm auto`
// is judged against a best-of-6 oracle that actually drains every concrete
// strategy (Recursive / Take2 / Lazy / Eager / All / Batch) over the seeded
// 200-query differential corpus (tests/corpus.h), at k in {1, 100,
// unbounded}.
//
// Acceptance bar (ISSUE PR 7):
//  * the planned strategy's measured TT(k) is within 2x of the oracle
//    best on >= 90% of the corpus at each k,
//  * it is NEVER worse than 10x the oracle best,
//  * the planned run's answers equal the oracle run's answers exactly
//    (rank for rank under the tie-break dioid).
//
// Timing discipline: every strategy drains sessions of the SAME auto-planned
// PreparedQuery (so topology is held fixed and only the strategy choice is
// measured), each timed as the minimum over repetitions, and both sides of
// the ratio get a small epsilon floor — the corpus instances are tiny, so
// sub-epsilon drains are "free" and must not fail the bound on scheduler
// noise (this also keeps the suite meaningful under ASan/TSan, where
// absolute times inflate but ratios survive).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "anyk/prepared_query.h"
#include "dioid/tiebreak.h"
#include "dioid/tropical.h"
#include "util/timer.h"

#include "corpus.h"

namespace anyk {
namespace {

using corpus::GeneratedCase;
using corpus::MakeCase;

constexpr size_t kMaxAtoms = 8;
using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;

constexpr uint64_t kCorpusSize = 200;
constexpr double kEpsilonSeconds = 100e-6;  // noise floor per drain
constexpr int kReps = 2;

struct Flat {
  double base_weight;
  std::vector<int64_t> tie_ids;
  std::vector<Value> assignment;
  bool operator==(const Flat& o) const = default;
};

std::vector<Flat> Drain(const PreparedQuery<TB>& pq, Algorithm algo,
                        size_t cap) {
  EnumerationSession<TB> sess = pq.NewSession(algo);
  std::vector<Flat> out;
  ResultRow<TB> row;
  while (out.size() < cap && sess.NextInto(&row)) {
    Flat f;
    f.base_weight = row.weight.base;
    f.tie_ids.assign(row.weight.id.begin(), row.weight.id.end());
    f.assignment = row.assignment;
    out.push_back(std::move(f));
  }
  return out;
}

/// Wall-clock TT(k) of one strategy over the shared prepared query: session
/// construction + the full (budgeted) drain, min over kReps runs.
double TimeDrain(const PreparedQuery<TB>& pq, Algorithm algo, size_t cap) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    EnumerationSession<TB> sess = pq.NewSession(algo);
    ResultRow<TB> row;
    size_t produced = 0;
    while (produced < cap && sess.NextInto(&row)) ++produced;
    const double t = timer.Seconds();
    if (rep == 0 || t < best) best = t;
  }
  return best;
}

struct RegretStats {
  size_t cases = 0;
  size_t within2x = 0;
  double worst_ratio = 0;
  std::string worst_label;
};

/// One corpus case at one budget (void so ASSERT_* may fire). Per-case hard
/// assertions: exact result equality planned-vs-oracle, and the 10x
/// never-exceed bound.
void RunCase(uint64_t seed, size_t k_budget, RegretStats* agg) {
  // Generous cap for the unbounded sweep: corpus instances stay below it.
  const size_t cap = k_budget == 0 ? 100000 : k_budget;
  const GeneratedCase c = MakeCase(seed);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " " + c.label + " k=" +
               std::to_string(k_budget));
  typename PreparedQuery<TB>::Options qopts;
  qopts.enum_opts.k_budget = k_budget;
  qopts.auto_plan = true;
  const PreparedQuery<TB> pq(c.db, c.q, qopts);
  const plan::PlanDecision& d = pq.decision();

  // Exact equality: the planned run must emit precisely the oracle's
  // answers, rank for rank (tie-break dioid: the order is total).
  const std::vector<Flat> want = Drain(pq, Algorithm::kBatch, cap);
  const std::vector<Flat> got = Drain(pq, Algorithm::kAuto, cap);
  ASSERT_EQ(got.size(), want.size()) << "planned drain count diverges";
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "planned drain diverges at rank " << i;
  }

  // Best-of-6 oracle: actually drain every strategy.
  double best = 0;
  double planned = 0;
  bool have_best = false;
  for (Algorithm algo : AllRankedAlgorithms()) {
    const double t = TimeDrain(pq, algo, cap);
    if (!have_best || t < best) {
      best = t;
      have_best = true;
    }
    if (algo == d.algorithm) planned = t;
  }
  ASSERT_GT(planned + best, 0.0) << "no strategy was timed";

  const double ratio = (planned + kEpsilonSeconds) / (best + kEpsilonSeconds);
  ASSERT_LE(ratio, 10.0)
      << "planned " << AlgorithmName(d.algorithm) << " took " << planned
      << "s vs oracle best " << best << "s (" << d.Summary() << ")";
  ++agg->cases;
  if (ratio <= 2.0) ++agg->within2x;
  if (ratio > agg->worst_ratio) {
    agg->worst_ratio = ratio;
    agg->worst_label = c.label + "/" + AlgorithmName(d.algorithm);
  }
}

RegretStats RunCorpus(size_t k_budget) {
  RegretStats agg;
  for (uint64_t seed = 1; seed <= kCorpusSize; ++seed) {
    RunCase(seed, k_budget, &agg);
    if (::testing::Test::HasFatalFailure()) break;
  }
  return agg;
}

void ExpectRegretBar(const RegretStats& agg) {
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_EQ(agg.cases, kCorpusSize);
  EXPECT_GE(agg.within2x * 10, agg.cases * 9)
      << "planner within 2x of the best-of-6 oracle on only " << agg.within2x
      << "/" << agg.cases << " queries (worst " << agg.worst_ratio << "x at "
      << agg.worst_label << ")";
}

TEST(PlannerOracleTest, TopOne) { ExpectRegretBar(RunCorpus(1)); }

TEST(PlannerOracleTest, TopHundred) { ExpectRegretBar(RunCorpus(100)); }

TEST(PlannerOracleTest, Unbounded) { ExpectRegretBar(RunCorpus(0)); }

// ---------------------------------------------------------------------------
// Decision plumbing: the planner's pick is decided once at prepare time and
// is exactly what NewSession(kAuto) runs.
// ---------------------------------------------------------------------------

TEST(PlannerDecisionTest, DecisionIsStableAcrossSessions) {
  const GeneratedCase c = MakeCase(1);
  typename PreparedQuery<TB>::Options qopts;
  qopts.enum_opts.k_budget = 10;
  qopts.auto_plan = true;
  const PreparedQuery<TB> pq(c.db, c.q, qopts);
  const plan::PlanDecision d1 = pq.decision();
  (void)Drain(pq, Algorithm::kAuto, 10);
  (void)Drain(pq, Algorithm::kAuto, 10);
  const plan::PlanDecision& d2 = pq.decision();
  EXPECT_EQ(d1.algorithm, d2.algorithm);
  EXPECT_EQ(d1.heap_arity, d2.heap_arity);
  EXPECT_EQ(d1.Summary(), d2.Summary());
  EXPECT_TRUE(d2.auto_topology);
  EXPECT_EQ(d2.planner_version, plan::kPlannerVersion);
}

TEST(PlannerDecisionTest, NonAutoPreparationStillRecordsADecision) {
  // Without auto_plan the topology stays construction-order, but the
  // decision (what auto WOULD run) is still computed for EXPLAIN.
  const GeneratedCase c = MakeCase(2);
  typename PreparedQuery<TB>::Options qopts;
  qopts.enum_opts.k_budget = 10;
  const PreparedQuery<TB> pq(c.db, c.q, qopts);
  EXPECT_FALSE(pq.decision().auto_topology);
  EXPECT_FALSE(pq.decision().Summary().empty());
}

}  // namespace
}  // namespace anyk
