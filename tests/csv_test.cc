// CsvLoader tests: options (header, delimiter, weight column, row limit),
// save/load roundtrip, and — the part the CLI depends on for diagnosable
// failures — error messages that carry the file name and line number.

#include <cstddef>
#include <fstream>
#include <string>
#include <gtest/gtest.h>

#include "storage/csv.h"
#include "storage/database.h"
#include "util/logging.h"

namespace anyk {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(CsvTest, LoadsRowsAndExplicitWeightColumn) {
  const std::string path =
      WriteTemp("basic.csv", "1,7,2.5\n3,8,0.25\n\n4,9,1\n");
  Database db;
  CsvOptions opts;
  opts.weight_column = 2;
  const Relation& rel = LoadRelationCsv(&db, "R", path, opts);
  EXPECT_EQ(rel.arity(), 2u);
  ASSERT_EQ(rel.NumRows(), 3u);  // blank line skipped
  EXPECT_EQ(rel.At(0, 0), 1);
  EXPECT_EQ(rel.At(0, 1), 7);
  EXPECT_DOUBLE_EQ(rel.Weight(0), 2.5);
  EXPECT_DOUBLE_EQ(rel.Weight(1), 0.25);
}

TEST(CsvTest, WeightLastHeaderAndRowLimit) {
  const std::string path = WriteTemp(
      "header.csv", "src,dst,w\n1,2,10\n3,4,20\n5,6,30\n");
  Database db;
  CsvOptions opts;
  opts.has_header = true;
  opts.weight_last = true;
  opts.limit = 2;
  const Relation& rel = LoadRelationCsv(&db, "E", path, opts);
  EXPECT_EQ(rel.arity(), 2u);
  ASSERT_EQ(rel.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(rel.Weight(1), 20.0);
}

TEST(CsvTest, WeightlessRowsDefaultToZero) {
  const std::string path = WriteTemp("noweight.csv", "1,2\n3,4\n");
  Database db;
  const Relation& rel = LoadRelationCsv(&db, "R", path, CsvOptions{});
  EXPECT_EQ(rel.arity(), 2u);
  EXPECT_DOUBLE_EQ(rel.Weight(0), 0.0);
}

TEST(CsvTest, SaveLoadRoundtrip) {
  Database db;
  Relation& rel = db.AddRelation("R", 2);
  rel.Add({1, 2}, 0.5);
  rel.Add({3, 4}, 1.5);
  const std::string path = ::testing::TempDir() + "roundtrip.csv";
  SaveRelationCsv(rel, path);

  Database db2;
  CsvOptions opts;
  opts.weight_last = true;
  const Relation& back = LoadRelationCsv(&db2, "R", path, opts);
  ASSERT_EQ(back.NumRows(), 2u);
  EXPECT_EQ(back.At(1, 0), 3);
  EXPECT_EQ(back.At(1, 1), 4);
  EXPECT_DOUBLE_EQ(back.Weight(1), 1.5);
}

// ---- Error reporting: messages must carry file name and line number. ----

TEST(CsvTest, BadIntegerReportsFileAndLine) {
  const std::string path = WriteTemp("bad_int.csv", "1,2,1\n2,x,3\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "bad_int\\.csv:2: bad integer 'x'");
}

TEST(CsvTest, BadWeightReportsFileAndLine) {
  const std::string path = WriteTemp("bad_weight.csv", "1,2,1\n3,4,oops\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "bad_weight\\.csv:2: bad weight 'oops'");
}

TEST(CsvTest, RaggedRowReportsFileAndLine) {
  // Second row is short by one field; with weight-last this must not be
  // silently read as "two values, default weight".
  const std::string path = WriteTemp("ragged.csv", "1,2,1\n3,4\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "ragged\\.csv:2: ragged row \\(expected 3 columns, got 2\\)");
}

TEST(CsvTest, EmptyTrailingWeightFieldIsDiagnosed) {
  // "1,2," must parse as three fields (empty weight), not silently collapse
  // to a binary row with a value column promoted to the weight.
  const std::string path = WriteTemp("trailing.csv", "1,2,\n3,4,\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "trailing\\.csv:1: bad weight ''");
}

TEST(CsvTest, HeaderCountsTowardLineNumbers) {
  const std::string path =
      WriteTemp("hdr_lines.csv", "a,b,w\n1,2,1\nx,2,1\n");
  Database db;
  CsvOptions opts;
  opts.has_header = true;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "hdr_lines\\.csv:3: bad integer 'x'");
}

TEST(CsvTest, MissingFileReportsPath) {
  Database db;
  EXPECT_DEATH(
      LoadRelationCsv(&db, "R", "/nonexistent/missing.csv", CsvOptions{}),
      "cannot open /nonexistent/missing\\.csv");
}

TEST(CsvTest, HeaderOnlyFileSaysNoDataRows) {
  // A file holding only its header is not "empty"; the diagnosis must say
  // that no data rows were found (and where), not imply a zero-byte file.
  const std::string path = WriteTemp("header_only.csv", "src,dst,w\n");
  Database db;
  CsvOptions opts;
  opts.has_header = true;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "no data rows in .*header_only\\.csv");
}

TEST(CsvTest, TrulyEmptyFileAlsoSaysNoDataRows) {
  const std::string path = WriteTemp("zero_rows.csv", "");
  Database db;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, CsvOptions{}),
               "no data rows in .*zero_rows\\.csv");
}

TEST(CsvTest, WeightColumnPlusWeightLastIsRejected) {
  // weight_column = 2 is perfectly valid for these rows, but weight_last
  // would recompute (and here happen to agree with) it; the loader must
  // reject the ambiguous combination instead of silently picking one.
  const std::string path = WriteTemp("conflict.csv", "1,2,0.5\n3,4,1.5\n");
  Database db;
  CsvOptions opts;
  opts.weight_column = 2;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "conflict\\.csv: CsvOptions sets both weight_column \\(2\\) "
               "and weight_last");
}

// ---- The throwing check handler (what the CLI installs). ----

TEST(CsvTest, ThrowingHandlerTurnsCheckFailuresIntoExceptions) {
  auto prev = SetCheckFailureHandler(&ThrowingCheckHandler);
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  const std::string path = WriteTemp("throwing.csv", "1,2,1\n2,x,3\n");
  try {
    LoadRelationCsv(&db, "R", path, opts);
    SetCheckFailureHandler(prev);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    SetCheckFailureHandler(prev);
    EXPECT_NE(std::string(e.what()).find("throwing.csv:2"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace anyk
