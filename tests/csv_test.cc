// CsvLoader tests: options (header, delimiter, weight column, row limit),
// save/load roundtrip, and — the part the CLI depends on for diagnosable
// failures — error messages that carry the file name and line number.

#include <clocale>
#include <cstddef>
#include <fstream>
#include <string>
#include <gtest/gtest.h>

#include "storage/csv.h"
#include "storage/database.h"
#include "util/logging.h"

namespace anyk {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(CsvTest, LoadsRowsAndExplicitWeightColumn) {
  const std::string path =
      WriteTemp("basic.csv", "1,7,2.5\n3,8,0.25\n\n4,9,1\n");
  Database db;
  CsvOptions opts;
  opts.weight_column = 2;
  const Relation& rel = LoadRelationCsv(&db, "R", path, opts);
  EXPECT_EQ(rel.arity(), 2u);
  ASSERT_EQ(rel.NumRows(), 3u);  // blank line skipped
  EXPECT_EQ(rel.At(0, 0), 1);
  EXPECT_EQ(rel.At(0, 1), 7);
  EXPECT_DOUBLE_EQ(rel.Weight(0), 2.5);
  EXPECT_DOUBLE_EQ(rel.Weight(1), 0.25);
}

TEST(CsvTest, WeightLastHeaderAndRowLimit) {
  const std::string path = WriteTemp(
      "header.csv", "src,dst,w\n1,2,10\n3,4,20\n5,6,30\n");
  Database db;
  CsvOptions opts;
  opts.has_header = true;
  opts.weight_last = true;
  opts.limit = 2;
  const Relation& rel = LoadRelationCsv(&db, "E", path, opts);
  EXPECT_EQ(rel.arity(), 2u);
  ASSERT_EQ(rel.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(rel.Weight(1), 20.0);
}

TEST(CsvTest, WeightlessRowsDefaultToZero) {
  const std::string path = WriteTemp("noweight.csv", "1,2\n3,4\n");
  Database db;
  const Relation& rel = LoadRelationCsv(&db, "R", path, CsvOptions{});
  EXPECT_EQ(rel.arity(), 2u);
  EXPECT_DOUBLE_EQ(rel.Weight(0), 0.0);
}

TEST(CsvTest, SaveLoadRoundtrip) {
  Database db;
  Relation& rel = db.AddRelation("R", 2);
  rel.Add({1, 2}, 0.5);
  rel.Add({3, 4}, 1.5);
  const std::string path = ::testing::TempDir() + "roundtrip.csv";
  SaveRelationCsv(rel, path);

  Database db2;
  CsvOptions opts;
  opts.weight_last = true;
  const Relation& back = LoadRelationCsv(&db2, "R", path, opts);
  ASSERT_EQ(back.NumRows(), 2u);
  EXPECT_EQ(back.At(1, 0), 3);
  EXPECT_EQ(back.At(1, 1), 4);
  EXPECT_DOUBLE_EQ(back.Weight(1), 1.5);
}

// ---- Error reporting: messages must carry file name and line number. ----

TEST(CsvTest, BadIntegerReportsFileAndLine) {
  const std::string path = WriteTemp("bad_int.csv", "1,2,1\n2,x,3\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "bad_int\\.csv:2: bad integer 'x'");
}

TEST(CsvTest, BadWeightReportsFileAndLine) {
  const std::string path = WriteTemp("bad_weight.csv", "1,2,1\n3,4,oops\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "bad_weight\\.csv:2: bad weight 'oops'");
}

TEST(CsvTest, RaggedRowReportsFileAndLine) {
  // Second row is short by one field; with weight-last this must not be
  // silently read as "two values, default weight".
  const std::string path = WriteTemp("ragged.csv", "1,2,1\n3,4\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "ragged\\.csv:2: ragged row \\(expected 3 columns, got 2\\)");
}

TEST(CsvTest, EmptyTrailingWeightFieldIsDiagnosed) {
  // "1,2," must parse as three fields (empty weight), not silently collapse
  // to a binary row with a value column promoted to the weight.
  const std::string path = WriteTemp("trailing.csv", "1,2,\n3,4,\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "trailing\\.csv:1: bad weight ''");
}

TEST(CsvTest, HeaderCountsTowardLineNumbers) {
  const std::string path =
      WriteTemp("hdr_lines.csv", "a,b,w\n1,2,1\nx,2,1\n");
  Database db;
  CsvOptions opts;
  opts.has_header = true;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "hdr_lines\\.csv:3: bad integer 'x'");
}

TEST(CsvTest, MissingFileReportsPath) {
  Database db;
  EXPECT_DEATH(
      LoadRelationCsv(&db, "R", "/nonexistent/missing.csv", CsvOptions{}),
      "cannot open /nonexistent/missing\\.csv");
}

TEST(CsvTest, HeaderOnlyFileSaysNoDataRows) {
  // A file holding only its header is not "empty"; the diagnosis must say
  // that no data rows were found (and where), not imply a zero-byte file.
  const std::string path = WriteTemp("header_only.csv", "src,dst,w\n");
  Database db;
  CsvOptions opts;
  opts.has_header = true;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "no data rows in .*header_only\\.csv");
}

TEST(CsvTest, TrulyEmptyFileAlsoSaysNoDataRows) {
  const std::string path = WriteTemp("zero_rows.csv", "");
  Database db;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, CsvOptions{}),
               "no data rows in .*zero_rows\\.csv");
}

TEST(CsvTest, WeightColumnPlusWeightLastIsRejected) {
  // weight_column = 2 is perfectly valid for these rows, but weight_last
  // would recompute (and here happen to agree with) it; the loader must
  // reject the ambiguous combination instead of silently picking one.
  const std::string path = WriteTemp("conflict.csv", "1,2,0.5\n3,4,1.5\n");
  Database db;
  CsvOptions opts;
  opts.weight_column = 2;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "conflict\\.csv: CsvOptions sets both weight_column \\(2\\) "
               "and weight_last");
}

// ---- Weight parsing: locale independence and dioid-safe values. ----

TEST(CsvTest, WeightParsingIsLocaleIndependent) {
  // Under a comma-decimal locale, std::stod would have parsed "2.5" as 2
  // (stopping at the '.') or accepted "2,5"; the loader now uses
  // std::from_chars, which is locale-blind. Skip if the locale is absent
  // from the image.
  const char* prev = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (prev == nullptr) {
    GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  }
  const std::string path = WriteTemp("locale.csv", "1,2,2.5\n3,4,0.125\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  const Relation& rel = LoadRelationCsv(&db, "R", path, opts);
  std::setlocale(LC_NUMERIC, "C");
  ASSERT_EQ(rel.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(rel.Weight(0), 2.5);
  EXPECT_DOUBLE_EQ(rel.Weight(1), 0.125);
}

TEST(CsvTest, ScientificAndSignedWeightsParse) {
  const std::string path =
      WriteTemp("sci.csv", "1,2,1e-3\n3,4,-2.5E2\n5,6,+0.5\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  const Relation& rel = LoadRelationCsv(&db, "R", path, opts);
  ASSERT_EQ(rel.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(rel.Weight(0), 1e-3);
  EXPECT_DOUBLE_EQ(rel.Weight(1), -250.0);
  EXPECT_DOUBLE_EQ(rel.Weight(2), 0.5);
}

TEST(CsvTest, NanWeightIsRejectedWithFileAndLine) {
  // NaN breaks the dioids' total order (every comparison is false), so a
  // NaN weight must be a load-time diagnostic, not a silent heap poison.
  const std::string path = WriteTemp("nan.csv", "1,2,1\n3,4,nan\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "nan\\.csv:2: non-finite weight 'nan'");
}

TEST(CsvTest, InfiniteWeightIsRejectedWithFileAndLine) {
  // ±∞ collides with the dioids' Zero() sentinels.
  const std::string path = WriteTemp("inf.csv", "1,2,inf\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "inf\\.csv:1: non-finite weight 'inf'");
}

TEST(CsvTest, TrailingGarbageAfterWeightIsRejected) {
  // from_chars reports where parsing stopped; "1.5x" must not load as 1.5.
  const std::string path = WriteTemp("garbage.csv", "1,2,1.5x\n");
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  EXPECT_DEATH(LoadRelationCsv(&db, "R", path, opts),
               "garbage\\.csv:1: bad weight '1\\.5x'");
}

// ---- Columnar shard staging: loads larger than one shard stay exact. ----

TEST(CsvTest, MultiShardLoadMatchesRowByRowAppend) {
  // The loader stages rows column-major in 4096-row shards before flushing
  // via AppendColumnChunk; a file crossing several shard boundaries must
  // load byte-identically to row-at-a-time appends.
  constexpr size_t kRows = 10000;  // 2 full shards + a partial tail
  std::string content;
  content.reserve(kRows * 16);
  for (size_t i = 0; i < kRows; ++i) {
    content += std::to_string(i) + "," + std::to_string(i * 7 % 911) + "," +
               std::to_string(i % 13) + ".5\n";
  }
  const std::string path = WriteTemp("shards.csv", content);
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  const Relation& rel = LoadRelationCsv(&db, "R", path, opts);
  ASSERT_EQ(rel.NumRows(), kRows);
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_EQ(rel.At(i, 0), static_cast<Value>(i));
    ASSERT_EQ(rel.At(i, 1), static_cast<Value>(i * 7 % 911));
    ASSERT_DOUBLE_EQ(rel.Weight(i), static_cast<double>(i % 13) + 0.5);
  }
}

// ---- The throwing check handler (what the CLI installs). ----

TEST(CsvTest, ThrowingHandlerTurnsCheckFailuresIntoExceptions) {
  auto prev = SetCheckFailureHandler(&ThrowingCheckHandler);
  Database db;
  CsvOptions opts;
  opts.weight_last = true;
  const std::string path = WriteTemp("throwing.csv", "1,2,1\n2,x,3\n");
  try {
    LoadRelationCsv(&db, "R", path, opts);
    SetCheckFailureHandler(prev);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    SetCheckFailureHandler(prev);
    EXPECT_NE(std::string(e.what()).find("throwing.csv:2"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace anyk
