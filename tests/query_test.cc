// Query-layer tests: CQ construction/parsing, hypergraphs, GYO acyclicity,
// join-tree topologies and keys, storage primitives.

#include <array>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "query/cq.h"
#include "query/gyo.h"
#include "query/join_tree.h"
#include "storage/group_index.h"

namespace anyk {
namespace {

TEST(CqTest, FactoriesProduceExpectedShapes) {
  auto p = ConjunctiveQuery::Path(3);
  EXPECT_EQ(p.NumAtoms(), 3u);
  EXPECT_EQ(p.NumVars(), 4u);
  EXPECT_EQ(p.ToString(), "Q(x1,x2,x3,x4) :- R1(x1,x2), R2(x2,x3), R3(x3,x4)");

  auto s = ConjunctiveQuery::Star(3);
  EXPECT_EQ(s.NumVars(), 4u);
  EXPECT_EQ(s.AtomVarIds(0)[0], s.AtomVarIds(2)[0]);  // shared center

  auto c = ConjunctiveQuery::Cycle(4);
  EXPECT_EQ(c.NumVars(), 4u);
  EXPECT_EQ(c.AtomVarIds(3)[1], c.AtomVarIds(0)[0]);  // closes

  auto x = ConjunctiveQuery::Product(2);
  EXPECT_EQ(x.NumVars(), 4u);
}

TEST(CqTest, ParseRoundTrip) {
  auto q = ConjunctiveQuery::Parse("Q(x,y) :- R(x,z), S(z,y)");
  EXPECT_EQ(q.NumAtoms(), 2u);
  EXPECT_EQ(q.NumVars(), 3u);
  ASSERT_EQ(q.FreeVarIds().size(), 2u);
  EXPECT_EQ(q.VarName(q.FreeVarIds()[0]), "x");
  EXPECT_EQ(q.VarName(q.FreeVarIds()[1]), "y");

  auto full = ConjunctiveQuery::Parse("Q(*) :- R(a,b), S(b,c)");
  EXPECT_TRUE(full.IsFull());

  auto full2 = ConjunctiveQuery::Parse("Q(a,b,c) :- R(a,b), S(b,c)");
  EXPECT_TRUE(full2.IsFull());  // head covers all variables
}

TEST(GyoTest, PathsStarsAcyclic) {
  EXPECT_TRUE(IsAcyclic(ConjunctiveQuery::Path(2)));
  EXPECT_TRUE(IsAcyclic(ConjunctiveQuery::Path(6)));
  EXPECT_TRUE(IsAcyclic(ConjunctiveQuery::Star(5)));
  EXPECT_TRUE(IsAcyclic(ConjunctiveQuery::Product(3)));
}

TEST(GyoTest, CyclesCyclic) {
  EXPECT_FALSE(IsAcyclic(ConjunctiveQuery::Cycle(3)));
  EXPECT_FALSE(IsAcyclic(ConjunctiveQuery::Cycle(4)));
  EXPECT_FALSE(IsAcyclic(ConjunctiveQuery::Cycle(6)));
}

TEST(GyoTest, AlphaAcyclicityOfCoveredCycle) {
  // A triangle plus a big atom covering all three variables IS
  // alpha-acyclic (the classic example distinguishing alpha from gamma).
  ConjunctiveQuery q;
  q.AddAtom("R1", {"a", "b"});
  q.AddAtom("R2", {"b", "c"});
  q.AddAtom("R3", {"c", "a"});
  q.AddAtom("Big", {"a", "b", "c"});
  EXPECT_TRUE(IsAcyclic(q));
}

TEST(GyoTest, JoinTreeParentsAreValid) {
  auto q = ConjunctiveQuery::Path(5);
  auto gyo = GyoReduce(Hypergraph::FromQuery(q));
  ASSERT_TRUE(gyo.acyclic);
  // Exactly one root; every parent index in range; no cycles.
  int roots = 0;
  for (size_t i = 0; i < q.NumAtoms(); ++i) {
    if (gyo.tree.parent[i] < 0) {
      ++roots;
    } else {
      EXPECT_LT(gyo.tree.parent[i], static_cast<int>(q.NumAtoms()));
    }
  }
  EXPECT_EQ(roots, 1);
}

TEST(GyoTest, FreeConnexClassification) {
  // QP2 with head {x1}: free-connex.
  auto q1 = ConjunctiveQuery::Parse("Q(x1) :- R1(x1,x2), R2(x2,x3)");
  EXPECT_TRUE(IsFreeConnexAcyclic(q1));
  // QP2 with head {x1, x3}: acyclic but NOT free-connex (the classic
  // matrix-multiplication-hard projection).
  auto q2 = ConjunctiveQuery::Parse("Q(x1,x3) :- R1(x1,x2), R2(x2,x3)");
  EXPECT_FALSE(IsFreeConnexAcyclic(q2));
  // Example 19 of the paper is free-connex.
  auto q3 = ConjunctiveQuery::Parse(
      "Q(y1,y2,y3,y4) :- R1(y1,y2), R2(y2,y3), R3(z1,y1,y4), R4(z2,y3)");
  EXPECT_TRUE(IsFreeConnexAcyclic(q3));
}

TEST(JoinTreeTest, KeysAreSharedVariables) {
  auto q = ConjunctiveQuery::Path(3);
  Database db;
  for (int i = 1; i <= 3; ++i) {
    db.AddRelation("R" + std::to_string(i), 2).Add({1, 1}, 0.0);
  }
  TDPInstance inst = BuildAcyclicInstance(db, q);
  ASSERT_EQ(inst.nodes.size(), 3u);
  for (const auto& node : inst.nodes) {
    if (node.parent < 0) continue;
    ASSERT_EQ(node.key_cols.size(), node.parent_key_cols.size());
    for (size_t i = 0; i < node.key_cols.size(); ++i) {
      EXPECT_EQ(node.vars[node.key_cols[i]],
                inst.nodes[node.parent].vars[node.parent_key_cols[i]]);
    }
  }
  // Preorder starts at the root and visits parents before children.
  std::vector<bool> seen(inst.nodes.size(), false);
  for (uint32_t u : inst.order) {
    if (inst.nodes[u].parent >= 0) {
      EXPECT_TRUE(seen[inst.nodes[u].parent]);
    }
    seen[u] = true;
  }
}

TEST(StorageTest, RelationBasics) {
  Relation rel("R", 3);
  rel.Add({1, 2, 3}, 0.5);
  rel.Add({4, 5, 6}, 1.5);
  EXPECT_EQ(rel.NumRows(), 2u);
  EXPECT_EQ(rel.At(1, 2), 6);
  EXPECT_DOUBLE_EQ(rel.Weight(0), 0.5);
  auto row = rel.Row(1);
  EXPECT_EQ(std::vector<Value>(row.begin(), row.end()),
            (std::vector<Value>{4, 5, 6}));
}

TEST(StorageTest, GroupIndexGroupsByKey) {
  Relation rel("R", 2);
  rel.Add({1, 10}, 0);
  rel.Add({2, 20}, 0);
  rel.Add({1, 30}, 0);
  rel.Add({1, 10}, 0);  // duplicate row
  const uint32_t col0 = 0;
  GroupIndex idx(rel, std::span<const uint32_t>(&col0, 1));
  EXPECT_EQ(idx.NumGroups(), 2u);
  EXPECT_EQ(idx.Lookup({1}).size(), 3u);
  EXPECT_EQ(idx.Lookup({2}).size(), 1u);
  EXPECT_TRUE(idx.Lookup({99}).empty());
}

TEST(StorageTest, GroupIndexCompositeAndEmptyKey) {
  Relation rel("R", 2);
  rel.Add({1, 10}, 0);
  rel.Add({1, 20}, 0);
  rel.Add({2, 10}, 0);
  GroupIndex both(rel, std::array<uint32_t, 2>{0, 1});
  EXPECT_EQ(both.NumGroups(), 3u);
  GroupIndex none(rel, std::span<const uint32_t>{});
  EXPECT_EQ(none.NumGroups(), 1u);
  EXPECT_EQ(none.Lookup(Key{}).size(), 3u);
}

TEST(DatabaseTest, SelfJoinAliasing) {
  Database db;
  db.AddRelation("E", 2).Add({1, 2}, 1.0);
  EXPECT_TRUE(db.Has("E"));
  EXPECT_EQ(db.Get("E").NumRows(), 1u);
  EXPECT_EQ(db.MaxCardinality(), 1u);
}

}  // namespace
}  // namespace anyk
