// T-DP tests (paper Section 5.1): star queries, deeper branching join
// trees, Cartesian products, and the dioid sweep (tropical / max-plus /
// boolean / max-times / lexicographic / tie-breaking).

#include <cstddef>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "dioid/boolean.h"
#include "dioid/lex.h"
#include "dioid/max_plus.h"
#include "dioid/max_times.h"
#include "dioid/min_max.h"
#include "dioid/tiebreak.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "test_util.h"
#include "workload/generators.h"

namespace anyk {
namespace {

using testing::ExpectMatchesOracle;

std::string AlgoName(const ::testing::TestParamInfo<Algorithm>& info) {
  return AlgorithmName(info.param);
}

template <SelectiveDioid D>
void CheckQuery(const Database& db, const ConjunctiveQuery& q, Algorithm algo,
                size_t max_results = SIZE_MAX) {
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<D> g = BuildStageGraph<D>(inst);
  auto e = MakeEnumerator<D>(&g, algo);
  ExpectMatchesOracle<D>(e.get(), db, q, max_results);
}

class AnyKTreeTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AnyKTreeTest, Star3) {
  Database db = MakeStarDatabase(40, 3, 21, {.fanout = 8.0});
  CheckQuery<TropicalDioid>(db, ConjunctiveQuery::Star(3), GetParam());
}

TEST_P(AnyKTreeTest, Star4) {
  Database db = MakeStarDatabase(30, 4, 22, {.fanout = 6.0});
  CheckQuery<TropicalDioid>(db, ConjunctiveQuery::Star(4), GetParam());
}

TEST_P(AnyKTreeTest, Star6) {
  Database db = MakeStarDatabase(14, 6, 23, {.fanout = 4.0});
  CheckQuery<TropicalDioid>(db, ConjunctiveQuery::Star(6), GetParam());
}

// A genuinely branching tree: R1(a,b) with children R2(b,c) -> R3(c,d) and
// R4(b,e) -> { R5(e,f), R6(e,g) }.
ConjunctiveQuery BranchingQuery() {
  ConjunctiveQuery q;
  q.AddAtom("R1", {"a", "b"});
  q.AddAtom("R2", {"b", "c"});
  q.AddAtom("R3", {"c", "d"});
  q.AddAtom("R4", {"b", "e"});
  q.AddAtom("R5", {"e", "f"});
  q.AddAtom("R6", {"e", "g"});
  return q;
}

TEST_P(AnyKTreeTest, BranchingTree) {
  Database db = MakePathDatabase(25, 6, 24, {.fanout = 5.0});
  CheckQuery<TropicalDioid>(db, BranchingQuery(), GetParam());
}

TEST_P(AnyKTreeTest, BranchingTreeTies) {
  GeneratorOptions gen;
  gen.weight_min = 0;
  gen.weight_max = 2;
  gen.fanout = 4.0;
  Database db = MakePathDatabase(16, 6, 25, gen);
  CheckQuery<TropicalDioid>(db, BranchingQuery(), GetParam());
}

TEST_P(AnyKTreeTest, CartesianProduct) {
  Database db = MakeCartesianDatabase(8, 3, 26);
  CheckQuery<TropicalDioid>(db, ConjunctiveQuery::Product(3), GetParam());
}

TEST_P(AnyKTreeTest, CartesianProductTopK) {
  Database db = MakeCartesianDatabase(30, 3, 27);
  CheckQuery<TropicalDioid>(db, ConjunctiveQuery::Product(3), GetParam(), 200);
}

// Ternary relations: Q :- R1(a,b,c), R2(b,c,d), R3(c,e) — wider join keys.
TEST_P(AnyKTreeTest, TernaryAtoms) {
  Rng rng(28);
  Database db;
  auto& r1 = db.AddRelation("R1", 3);
  auto& r2 = db.AddRelation("R2", 3);
  auto& r3 = db.AddRelation("R3", 2);
  for (int i = 0; i < 60; ++i) {
    r1.Add({rng.Uniform(0, 5), rng.Uniform(0, 5), rng.Uniform(0, 5)},
           static_cast<double>(rng.Uniform(0, 100)));
    r2.Add({rng.Uniform(0, 5), rng.Uniform(0, 5), rng.Uniform(0, 5)},
           static_cast<double>(rng.Uniform(0, 100)));
    r3.Add({rng.Uniform(0, 5), rng.Uniform(0, 5)},
           static_cast<double>(rng.Uniform(0, 100)));
  }
  ConjunctiveQuery q;
  q.AddAtom("R1", {"a", "b", "c"});
  q.AddAtom("R2", {"b", "c", "d"});
  q.AddAtom("R3", {"c", "e"});
  CheckQuery<TropicalDioid>(db, q, GetParam());
}

// Repeated variable inside an atom: R1(a,a,b) filters to a==a' rows.
TEST_P(AnyKTreeTest, RepeatedVariableAtom) {
  Rng rng(29);
  Database db;
  auto& r1 = db.AddRelation("R1", 3);
  auto& r2 = db.AddRelation("R2", 2);
  for (int i = 0; i < 50; ++i) {
    r1.Add({rng.Uniform(0, 4), rng.Uniform(0, 4), rng.Uniform(0, 4)},
           static_cast<double>(rng.Uniform(0, 100)));
    r2.Add({rng.Uniform(0, 4), rng.Uniform(0, 4)},
           static_cast<double>(rng.Uniform(0, 100)));
  }
  ConjunctiveQuery q;
  q.AddAtom("R1", {"a", "a", "b"});
  q.AddAtom("R2", {"b", "c"});
  CheckQuery<TropicalDioid>(db, q, GetParam());
}

// ---- Dioid sweep on a fixed branching tree ----

TEST_P(AnyKTreeTest, MaxPlusDioid) {
  Database db = MakePathDatabase(20, 6, 30, {.fanout = 4.0});
  CheckQuery<MaxPlusDioid>(db, BranchingQuery(), GetParam());
}

TEST_P(AnyKTreeTest, BooleanDioid) {
  Database db = MakePathDatabase(15, 6, 31, {.fanout = 4.0});
  CheckQuery<BooleanDioid>(db, BranchingQuery(), GetParam());
}

TEST_P(AnyKTreeTest, MaxTimesDioid) {
  GeneratorOptions gen;
  gen.weight_min = 1;
  gen.weight_max = 15;  // products stay exactly representable
  gen.fanout = 4.0;
  Database db = MakePathDatabase(15, 4, 32, gen);
  ConjunctiveQuery q;
  q.AddAtom("R1", {"a", "b"});
  q.AddAtom("R2", {"b", "c"});
  q.AddAtom("R3", {"b", "d"});
  q.AddAtom("R4", {"d", "e"});
  CheckQuery<MaxTimesDioid>(db, q, GetParam());
}

TEST_P(AnyKTreeTest, MinMaxBottleneckDioid) {
  // Bottleneck ranking: smallest maximum tuple weight first.
  Database db = MakePathDatabase(25, 4, 39, {.fanout = 5.0});
  CheckQuery<MinMaxDioid>(db, ConjunctiveQuery::Path(4), GetParam());
}

TEST_P(AnyKTreeTest, LexicographicDioid) {
  Database db = MakePathDatabase(20, 4, 33, {.fanout = 5.0});
  CheckQuery<LexDioid<8>>(db, ConjunctiveQuery::Path(4), GetParam());
}

TEST_P(AnyKTreeTest, TropicalMonoidMatchesGroupPath) {
  // Same semantics as TropicalDioid, but forces the inverse-free code path
  // (frontier recomputation, Section 6.2) — results must be identical.
  Database db = MakePathDatabase(20, 6, 37, {.fanout = 4.0});
  CheckQuery<TropicalMonoidDioid>(db, BranchingQuery(), GetParam());
}

TEST_P(AnyKTreeTest, TropicalMonoidOnStar) {
  Database db = MakeStarDatabase(25, 4, 38, {.fanout = 5.0});
  CheckQuery<TropicalMonoidDioid>(db, ConjunctiveQuery::Star(4), GetParam());
}

TEST_P(AnyKTreeTest, TieBreakDioid) {
  GeneratorOptions gen;
  gen.weight_min = 0;
  gen.weight_max = 3;  // force many base-weight ties
  gen.fanout = 4.0;
  Database db = MakePathDatabase(18, 4, 34, gen);
  using TB = TieBreakDioid<TropicalDioid, 8>;
  CheckQuery<TB>(db, ConjunctiveQuery::Path(4), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Algos, AnyKTreeTest,
                         ::testing::ValuesIn(AllRankedAlgorithms()), AlgoName);

// The lexicographic dioid must order results like the per-atom weight
// sequence (Fig. 18 scenario, Section 9.1.2).
TEST(LexOrderTest, OrdersByAtomThenAtom) {
  Database db;
  auto& r1 = db.AddRelation("R1", 2);
  auto& r2 = db.AddRelation("R2", 2);
  for (Value i = 1; i <= 3; ++i) {
    r1.Add({i, 0}, static_cast<double>(i));
    r2.Add({0, i}, static_cast<double>(i));
  }
  ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<LexDioid<4>> g = BuildStageGraph<LexDioid<4>>(inst);
  auto e = MakeEnumerator<LexDioid<4>>(&g, Algorithm::kTake2);
  std::vector<std::pair<Value, Value>> order;
  while (auto r = e->Next()) {
    order.emplace_back(r->assignment[0], r->assignment[2]);
  }
  ASSERT_EQ(order.size(), 9u);
  // (A asc, then C asc): (1,1), (1,2), (1,3), (2,1), ...
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(order[i].first, static_cast<Value>(i / 3 + 1));
    EXPECT_EQ(order[i].second, static_cast<Value>(i % 3 + 1));
  }
}

}  // namespace
}  // namespace anyk
