// Golden-file tests for the `anyk` CLI binary: --help, ranked SQL queries
// over the checked-in CSVs in tests/data/, the JSON report schema, and the
// documented exit codes for malformed input (0 success, 1 runtime, 2 usage).
//
// The binary path and data directory come from CMake via ANYK_CLI_BIN /
// ANYK_TEST_DATA_DIR compile definitions.

#include <sys/wait.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>
#include <gtest/gtest.h>

namespace {

struct CliRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr combined
};

CliRun RunCli(const std::string& args) {
  const std::string cmd = std::string(ANYK_CLI_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  CliRun run;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    run.output.append(buf, n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string Data(const std::string& file) {
  return std::string(ANYK_TEST_DATA_DIR) + "/" + file;
}

std::vector<std::string> ResultLines(const std::string& output) {
  std::vector<std::string> lines;
  std::istringstream in(output);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("RESULT,", 0) == 0) lines.push_back(line);
  }
  return lines;
}

std::string TwoRelationArgs() {
  return "--relation R=" + Data("r.csv") + " --relation S=" + Data("s.csv");
}

// ---- Help / version ----

TEST(CliTest, HelpExitsZeroAndListsFlags) {
  CliRun run = RunCli("--help");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("Usage:"), std::string::npos);
  EXPECT_NE(run.output.find("--relation"), std::string::npos);
  EXPECT_NE(run.output.find("--algorithm"), std::string::npos);
  EXPECT_NE(run.output.find("--dioid"), std::string::npos);
  EXPECT_NE(run.output.find("Exit codes"), std::string::npos);
}

TEST(CliTest, VersionExitsZero) {
  CliRun run = RunCli("--version");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("anyk"), std::string::npos);
}

// ---- Ranked SQL end-to-end (golden) ----

TEST(CliTest, RankedJoinGoldenOutput) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --query \"SELECT * FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT ASC LIMIT 3\"");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  const std::vector<std::string> results = ResultLines(run.output);
  ASSERT_EQ(results.size(), 3u) << run.output;
  EXPECT_EQ(results[0], "RESULT,1,2,1,10,100");
  EXPECT_EQ(results[1], "RESULT,2,3,2,10,100");
  EXPECT_EQ(results[2], "RESULT,3,5,1,10,200");
  EXPECT_NE(run.output.find("# plan=acyclic-tree"), std::string::npos);
  EXPECT_NE(run.output.find("TIMING,ttf,1,"), std::string::npos);
  EXPECT_NE(run.output.find("TIMING,ttl,3,"), std::string::npos);
}

// `--k 0` used to silently mean "enumerate everything" because 0 is the
// internal EnumOptions::k_budget sentinel for unbounded; the flag now
// rejects it at the usage boundary so a zero request can never become a
// full drain. Omitting --k (or the SQL LIMIT) is the way to ask for all
// answers — the next test pins that still works.
TEST(CliTest, KZeroIsAUsageError) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --k 0 --query \"SELECT * FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT ASC LIMIT 3\"");
  ASSERT_EQ(run.exit_code, 2) << run.output;
  EXPECT_NE(run.output.find("--k expects a positive integer"),
            std::string::npos)
      << run.output;
  EXPECT_TRUE(ResultLines(run.output).empty());
}

TEST(CliTest, OmittingKEnumeratesEverything) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --query \"SELECT * FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT ASC\"");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(ResultLines(run.output).size(), 5u) << run.output;
  EXPECT_NE(run.output.find("exhausted=yes"), std::string::npos);
}

TEST(CliTest, DescRanksHeaviestFirst) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --query \"SELECT * FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT DESC LIMIT 1\"");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  const std::vector<std::string> results = ResultLines(run.output);
  ASSERT_EQ(results.size(), 1u);
  // Two answers tie at weight 6; only the weight is deterministic.
  EXPECT_EQ(results[0].substr(0, 10), "RESULT,1,6");
  EXPECT_NE(run.output.find("dioid=max-sum"), std::string::npos);
}

TEST(CliTest, ProjectionUsesSelectList) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --query \"SELECT S.A2 FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT ASC LIMIT 1\"");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  const std::vector<std::string> results = ResultLines(run.output);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], "RESULT,1,2,100");
}

TEST(CliTest, FourPathSelfJoinOverEdgeList) {
  CliRun run = RunCli(
      "--relation E=" + Data("edges.csv") +
      " --header --query \"SELECT * FROM E e1, E e2, E e3, E e4"
      " WHERE e1.A2 = e2.A1 AND e2.A2 = e3.A1 AND e3.A2 = e4.A1"
      " ORDER BY WEIGHT ASC LIMIT 5\" --algorithm take2");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  const std::vector<std::string> results = ResultLines(run.output);
  ASSERT_EQ(results.size(), 5u) << run.output;
  // Several 4-edge paths tie at the cheapest weight 4 (e.g. 1->2->3->4->5),
  // so only the weight sequence is deterministic: nondecreasing from 4.
  double prev = 0;
  std::vector<double> weights;
  for (const std::string& r : results) {
    // RESULT,<k>,<weight>,...
    const size_t w_begin = r.find(',', 7) + 1;
    const double w = std::stod(r.substr(w_begin));
    EXPECT_GE(w, prev) << r;
    prev = w;
    weights.push_back(w);
  }
  EXPECT_DOUBLE_EQ(weights[0], 4.0);  // cheapest 4-edge path costs 4
  EXPECT_NE(run.output.find("# plan=acyclic-tree"), std::string::npos);
}

TEST(CliTest, FourCycleUsesCycleUnionPlan) {
  CliRun run = RunCli(
      "--relation E=" + Data("edges.csv") +
      " --header --query \"SELECT * FROM E e1, E e2, E e3, E e4"
      " WHERE e1.A2 = e2.A1 AND e2.A2 = e3.A1 AND e3.A2 = e4.A1"
      " AND e4.A2 = e1.A1 ORDER BY WEIGHT ASC\"");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  // The fixture has exactly one 4-cycle (1->2->3->4->1, weight 5), seen
  // once per rotation of the variable assignment.
  const std::vector<std::string> results = ResultLines(run.output);
  ASSERT_EQ(results.size(), 4u) << run.output;
  for (size_t i = 0; i < results.size(); ++i) {
    // RESULT,<k>,<weight>,...: every rotation weighs 5.
    const std::string prefix = "RESULT," + std::to_string(i + 1) + ",5,";
    EXPECT_EQ(results[i].substr(0, prefix.size()), prefix) << results[i];
  }
  EXPECT_NE(run.output.find("# plan=cycle-union"), std::string::npos);
}

// ---- JSON report ----

TEST(CliTest, JsonReportHasDocumentedSchema) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --format json --query \"SELECT * FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT ASC LIMIT 3\"");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"schema_version\": 5"), std::string::npos);
  EXPECT_NE(run.output.find("\"tool\": \"anyk\""), std::string::npos);
  EXPECT_NE(run.output.find("\"threads\": 1"), std::string::npos);
  EXPECT_NE(run.output.find("\"sessions\": 1"), std::string::npos);
  EXPECT_NE(run.output.find("\"shards\": 1"), std::string::npos);
  EXPECT_NE(run.output.find("\"plan\": \"acyclic-tree\""), std::string::npos);
  EXPECT_NE(run.output.find("\"algorithm\": \"Lazy\""), std::string::npos);
  // v4: the planner section is always present; a pinned --algorithm
  // resolves to itself.
  EXPECT_NE(run.output.find("\"resolved_algorithm\": \"Lazy\""),
            std::string::npos);
  EXPECT_NE(run.output.find("\"planner\""), std::string::npos);
  EXPECT_NE(run.output.find("\"summary\""), std::string::npos);
  EXPECT_NE(run.output.find("\"dioid\": \"min-sum\""), std::string::npos);
  EXPECT_NE(run.output.find("\"results\""), std::string::npos);
  EXPECT_NE(run.output.find("\"weight\": 2"), std::string::npos);
  EXPECT_NE(run.output.find("\"ttf_seconds\""), std::string::npos);
  EXPECT_NE(run.output.find("\"ttl_seconds\""), std::string::npos);
  EXPECT_NE(run.output.find("\"checkpoints\""), std::string::npos);
  EXPECT_NE(run.output.find("\"produced\": 3"), std::string::npos);
}

// ---- Planner (--algorithm auto / --explain) ----

TEST(CliTest, AutoAlgorithmMatchesExplicitResults) {
  const std::string query =
      " --query \"SELECT * FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT ASC LIMIT 3\"";
  CliRun pinned = RunCli(TwoRelationArgs() + query);
  CliRun autorun = RunCli(TwoRelationArgs() + " --algorithm auto" + query);
  ASSERT_EQ(autorun.exit_code, 0) << autorun.output;
  // The planner picks a strategy, but the ranked answers are identical.
  EXPECT_EQ(ResultLines(autorun.output), ResultLines(pinned.output));
  EXPECT_NE(autorun.output.find("# planner: v"), std::string::npos)
      << autorun.output;
  EXPECT_NE(autorun.output.find("# resolved_algorithm="), std::string::npos)
      << autorun.output;
  // auto never reaches the sink as a literal algorithm name.
  EXPECT_EQ(autorun.output.find("# resolved_algorithm=Auto"),
            std::string::npos)
      << autorun.output;
}

TEST(CliTest, ExplainPrintsPlanAndDecision) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --algorithm auto --explain --query \"SELECT * FROM R, S"
      " WHERE R.A2 = S.A1 ORDER BY WEIGHT ASC LIMIT 3\"");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("# plan: acyclic join tree"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("topology: planner-chosen (auto)"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("stats: output="), std::string::npos)
      << run.output;
  // EXPLAIN is diagnostic only: results still stream.
  EXPECT_EQ(ResultLines(run.output).size(), 3u) << run.output;
}

TEST(CliTest, AutoJsonCarriesPlannerExplain) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --algorithm auto --explain --format json --query \"SELECT * FROM"
      " R, S WHERE R.A2 = S.A1 ORDER BY WEIGHT ASC LIMIT 3\"");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"algorithm\": \"Auto\""), std::string::npos);
  EXPECT_NE(run.output.find("\"resolved_algorithm\""), std::string::npos);
  EXPECT_EQ(run.output.find("\"resolved_algorithm\": \"Auto\""),
            std::string::npos);
  EXPECT_NE(run.output.find("\"planner\""), std::string::npos);
  EXPECT_NE(run.output.find("\"explain\""), std::string::npos);
}

TEST(CliTest, NoResultsSuppressesRows) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --no-results --query \"SELECT * FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT ASC LIMIT 3\"");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(ResultLines(run.output).empty());
  EXPECT_NE(run.output.find("TIMING,ttl"), std::string::npos);
}

// ---- Concurrency flags (--threads / --sessions) ----

TEST(CliTest, ThreadsFlagLoadsInParallelWithSameResults) {
  const std::string query =
      " --query \"SELECT * FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT ASC LIMIT 3\"";
  CliRun serial = RunCli(TwoRelationArgs() + query);
  CliRun parallel = RunCli(TwoRelationArgs() + " --threads 4" + query);
  ASSERT_EQ(parallel.exit_code, 0) << parallel.output;
  // Same ranked answers regardless of how the CSVs were loaded.
  EXPECT_EQ(ResultLines(parallel.output), ResultLines(serial.output));
  EXPECT_NE(parallel.output.find("threads=4"), std::string::npos);
}

// ---- Sharding (--shards) ----

TEST(CliTest, ShardsFlagKeepsRankedWeightsAndReportsShards) {
  const std::string query =
      " --query \"SELECT * FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT ASC\"";
  CliRun unsharded = RunCli(TwoRelationArgs() + query);
  // --threads 2 --shards 3 exercises the parallel merged drain; equal-weight
  // answers may reorder across shard boundaries, so compare the weight
  // column, not the whole RESULT lines.
  CliRun sharded =
      RunCli(TwoRelationArgs() + " --threads 2 --shards 3" + query);
  ASSERT_EQ(sharded.exit_code, 0) << sharded.output;
  auto weights = [](const CliRun& run) {
    std::vector<std::string> out;
    for (const std::string& r : ResultLines(run.output)) {
      // RESULT,<k>,<weight>,...
      const size_t w_begin = r.find(',', 7) + 1;
      out.push_back(r.substr(w_begin, r.find(',', w_begin) - w_begin));
    }
    return out;
  };
  EXPECT_EQ(weights(sharded), weights(unsharded)) << sharded.output;
  EXPECT_NE(sharded.output.find(" shards=3"), std::string::npos)
      << sharded.output;
  EXPECT_NE(sharded.output.find("exhausted=yes"), std::string::npos);
}

TEST(CliTest, ShardsZeroIsAUsageError) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --shards 0 --query \"SELECT * FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT ASC\"");
  ASSERT_EQ(run.exit_code, 2) << run.output;
  EXPECT_NE(run.output.find("--shards expects a positive integer"),
            std::string::npos)
      << run.output;
}

TEST(CliTest, SessionsFlagReportsPerSessionAndAggregate) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --sessions 3 --query \"SELECT * FROM R, S WHERE R.A2 = S.A1"
      " ORDER BY WEIGHT ASC\"");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  // Concurrent drains never stream per-answer rows...
  EXPECT_TRUE(ResultLines(run.output).empty()) << run.output;
  // ...but report one SESSION line each (5 answers per session: every
  // session drains the full stream independently) plus the aggregate.
  for (int s = 0; s < 3; ++s) {
    const std::string prefix = "SESSION," + std::to_string(s) + ",5,";
    EXPECT_NE(run.output.find(prefix), std::string::npos) << run.output;
  }
  EXPECT_NE(run.output.find("CONCURRENCY,sessions,3,"), std::string::npos);
  EXPECT_NE(run.output.find("# produced=15"), std::string::npos);
}

TEST(CliTest, SessionsJsonHasSessionArrayAndAggregateRate) {
  CliRun run = RunCli(
      TwoRelationArgs() +
      " --sessions 2 --format json --query \"SELECT * FROM R, S WHERE"
      " R.A2 = S.A1 ORDER BY WEIGHT ASC\"");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"sessions\": 2"), std::string::npos);
  EXPECT_NE(run.output.find("\"aggregate_answers_per_sec\""),
            std::string::npos);
  EXPECT_NE(run.output.find("\"produced\": 10"), std::string::npos);
  // No results array in concurrent-drain mode.
  EXPECT_EQ(run.output.find("\"results\""), std::string::npos);
}

TEST(CliTest, BadThreadsValueExitsTwo) {
  CliRun run = RunCli(TwoRelationArgs() +
                      " --threads 0 --query \"SELECT * FROM R\"");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("--threads expects a positive integer"),
            std::string::npos);
}

// ---- Malformed input: exit codes and diagnostics ----

TEST(CliTest, MalformedSqlExitsOneWithMessage) {
  CliRun run = RunCli(TwoRelationArgs() + " --query \"SELECT FROM R\"");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find("anyk: error:"), std::string::npos);
  EXPECT_NE(run.output.find("SQL"), std::string::npos);
}

TEST(CliTest, MissingCsvExitsOneWithPath) {
  CliRun run = RunCli(
      "--relation R=/nonexistent/r.csv --query \"SELECT * FROM R\"");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find("cannot open /nonexistent/r.csv"),
            std::string::npos);
}

TEST(CliTest, MalformedCsvExitsOneWithFileAndLine) {
  CliRun run = RunCli("--relation R=" + Data("malformed.csv") +
                      " --query \"SELECT * FROM R\"");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find("malformed.csv:2: bad integer 'x'"),
            std::string::npos)
      << run.output;
}

TEST(CliTest, UnknownRelationInQueryExitsOne) {
  CliRun run = RunCli(TwoRelationArgs() +
                      " --query \"SELECT * FROM Missing\"");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find("unknown relation"), std::string::npos);
}

TEST(CliTest, UnknownFlagExitsTwo) {
  CliRun run = RunCli("--definitely-not-a-flag");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("unknown flag"), std::string::npos);
  EXPECT_NE(run.output.find("--help"), std::string::npos);
}

TEST(CliTest, MissingQueryExitsTwo) {
  CliRun run = RunCli("--relation R=" + Data("r.csv"));
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("no query"), std::string::npos);
}

TEST(CliTest, BadAlgorithmExitsTwo) {
  CliRun run = RunCli(TwoRelationArgs() +
                      " --algorithm quantum --query \"SELECT * FROM R\"");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("unknown algorithm"), std::string::npos);
}

}  // namespace
