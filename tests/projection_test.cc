// Min-weight-projection semantics for free-connex acyclic queries (paper
// Section 8.1, Theorem 20): enumeration must produce each distinct free-
// variable assignment exactly once, ranked by the minimum weight over all
// full answers projecting to it.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dioid/tropical.h"
#include "dp/projection.h"
#include "dp/projection_tree.h"
#include "query/cq.h"
#include "test_util.h"
#include "workload/generators.h"

namespace anyk {
namespace {

// Oracle: brute-force full join, group by the free assignment, keep the
// minimum weight per group, sort by weight.
std::vector<std::pair<double, std::vector<Value>>> ProjectionOracle(
    const Database& db, const ConjunctiveQuery& q) {
  auto full = testing::Oracle<TropicalDioid>(db, q);
  std::map<std::vector<Value>, double> best;
  for (const auto& row : full) {
    std::vector<Value> key;
    for (uint32_t v : q.FreeVarIds()) key.push_back(row.assignment[v]);
    auto [it, inserted] = best.try_emplace(key, row.weight);
    if (!inserted && row.weight < it->second) it->second = row.weight;
  }
  std::vector<std::pair<double, std::vector<Value>>> out;
  for (auto& [key, w] : best) out.emplace_back(w, key);
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void CheckProjection(const Database& db, const ConjunctiveQuery& q,
                     Algorithm algo = Algorithm::kTake2) {
  auto oracle = ProjectionOracle(db, q);
  MinWeightProjection<TropicalDioid> proj(db, q, algo);
  std::vector<std::pair<double, std::vector<Value>>> got;
  while (auto r = proj.Next()) {
    std::vector<Value> key;
    for (uint32_t v : q.FreeVarIds()) key.push_back(r->assignment[v]);
    got.emplace_back(r->weight, std::move(key));
    ASSERT_LE(got.size(), oracle.size() + 5) << "runaway enumeration";
  }
  ASSERT_EQ(got.size(), oracle.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].first, oracle[i].first) << "weight at rank " << i;
    if (i > 0) {
      EXPECT_GE(got[i].first, got[i - 1].first);
    }
  }
  // Assignment multiset must match exactly (each distinct projection once).
  auto sorted_got = got;
  auto sorted_oracle = oracle;
  auto by_key = [](const auto& a, const auto& b) { return a.second < b.second; };
  std::sort(sorted_got.begin(), sorted_got.end(), by_key);
  std::sort(sorted_oracle.begin(), sorted_oracle.end(), by_key);
  for (size_t i = 0; i < sorted_got.size(); ++i) {
    EXPECT_EQ(sorted_got[i].second, sorted_oracle[i].second);
    EXPECT_DOUBLE_EQ(sorted_got[i].first, sorted_oracle[i].first);
  }
}

TEST(ProjectionTest, PathHeadPrefix1) {
  Database db = MakePathDatabase(40, 3, 201, {.fanout = 6.0});
  auto q = ConjunctiveQuery::Parse("Q(x1) :- R1(x1,x2), R2(x2,x3), R3(x3,x4)");
  CheckProjection(db, q);
}

TEST(ProjectionTest, PathHeadPrefix2) {
  Database db = MakePathDatabase(40, 3, 202, {.fanout = 6.0});
  auto q = ConjunctiveQuery::Parse(
      "Q(x1,x2) :- R1(x1,x2), R2(x2,x3), R3(x3,x4)");
  CheckProjection(db, q, Algorithm::kLazy);
}

TEST(ProjectionTest, PathMiddleVariable) {
  Database db = MakePathDatabase(35, 2, 203, {.fanout = 5.0});
  auto q = ConjunctiveQuery::Parse("Q(x2) :- R1(x1,x2), R2(x2,x3)");
  CheckProjection(db, q, Algorithm::kRecursive);
}

TEST(ProjectionTest, StarCenter) {
  Database db = MakeStarDatabase(40, 3, 204, {.fanout = 6.0});
  auto q = ConjunctiveQuery::Parse("Q(x1) :- R1(x1,x2), R2(x1,x3), R3(x1,x4)");
  CheckProjection(db, q);
}

TEST(ProjectionTest, StarCenterPlusOneLeaf) {
  Database db = MakeStarDatabase(30, 3, 205, {.fanout = 5.0});
  auto q = ConjunctiveQuery::Parse(
      "Q(x1,x3) :- R1(x1,x2), R2(x1,x3), R3(x1,x4)");
  CheckProjection(db, q, Algorithm::kEager);
}

TEST(ProjectionTest, PaperExample19) {
  // Q(y1,y2,y3,y4) :- R1(y1,y2), R2(y2,y3), R3(x1,y1,y4), R4(x2,y3).
  Rng rng(206);
  Database db;
  auto& r1 = db.AddRelation("R1", 2);
  auto& r2 = db.AddRelation("R2", 2);
  auto& r3 = db.AddRelation("R3", 3);
  auto& r4 = db.AddRelation("R4", 2);
  for (int i = 0; i < 40; ++i) {
    r1.Add({rng.Uniform(0, 5), rng.Uniform(0, 5)},
           static_cast<double>(rng.Uniform(0, 100)));
    r2.Add({rng.Uniform(0, 5), rng.Uniform(0, 5)},
           static_cast<double>(rng.Uniform(0, 100)));
    r3.Add({rng.Uniform(0, 3), rng.Uniform(0, 5), rng.Uniform(0, 5)},
           static_cast<double>(rng.Uniform(0, 100)));
    r4.Add({rng.Uniform(0, 3), rng.Uniform(0, 5)},
           static_cast<double>(rng.Uniform(0, 100)));
  }
  auto q = ConjunctiveQuery::Parse(
      "Q(y1,y2,y3,y4) :- R1(y1,y2), R2(y2,y3), R3(z1,y1,y4), R4(z2,y3)");
  CheckProjection(db, q);
}

TEST(ProjectionTest, SharedExistentialBetweenParentAndChild) {
  // Q(y1,y2) :- R1(y1,x,y2), R2(x,y1): the lower nodes must chain below each
  // other because of the shared existential x.
  Rng rng(207);
  Database db;
  auto& r1 = db.AddRelation("R1", 3);
  auto& r2 = db.AddRelation("R2", 2);
  for (int i = 0; i < 50; ++i) {
    r1.Add({rng.Uniform(0, 4), rng.Uniform(0, 4), rng.Uniform(0, 4)},
           static_cast<double>(rng.Uniform(0, 100)));
    r2.Add({rng.Uniform(0, 4), rng.Uniform(0, 4)},
           static_cast<double>(rng.Uniform(0, 100)));
  }
  auto q = ConjunctiveQuery::Parse("Q(y1,y2) :- R1(y1,x,y2), R2(x,y1)");
  CheckProjection(db, q);
}

TEST(ProjectionTest, TiesEnumerateOnce) {
  GeneratorOptions gen;
  gen.weight_min = 1;
  gen.weight_max = 1;
  gen.fanout = 4.0;
  Database db = MakePathDatabase(24, 3, 208, gen);
  auto q = ConjunctiveQuery::Parse("Q(x1,x2) :- R1(x1,x2), R2(x2,x3), R3(x3,x4)");
  CheckProjection(db, q, Algorithm::kAll);
}

TEST(ProjectionTest, RejectsNonFreeConnex) {
  Database db = MakePathDatabase(10, 2, 209, {.fanout = 3.0});
  auto q = ConjunctiveQuery::Parse("Q(x1,x3) :- R1(x1,x2), R2(x2,x3)");
  EXPECT_FALSE(IsFreeConnexAcyclic(q));
  EXPECT_DEATH(
      { MinWeightProjection<TropicalDioid> proj(db, q); },
      "free-connex");
}

TEST(ProjectionTreeTest, LayeredTreeHasRunningIntersection) {
  Database db = MakePathDatabase(20, 3, 210, {.fanout = 4.0});
  auto q = ConjunctiveQuery::Parse("Q(x1,x2) :- R1(x1,x2), R2(x2,x3), R3(x3,x4)");
  LayeredInstance layered = BuildLayeredInstance(db, q);
  EXPECT_TRUE(HasRunningIntersection(layered.full));
  EXPECT_FALSE(layered.u_nodes.empty());
  // The U layer's variables are exactly the free variables.
  std::set<uint32_t> uvars;
  for (uint32_t u : layered.u_nodes) {
    for (uint32_t v : layered.full.nodes[u].vars) uvars.insert(v);
  }
  std::set<uint32_t> yvars(q.FreeVarIds().begin(), q.FreeVarIds().end());
  EXPECT_EQ(uvars, yvars);
}

}  // namespace
}  // namespace anyk
