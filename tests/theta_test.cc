// Theta-join path queries (paper Section 2.1): private per-state connectors,
// checked against a nested-loop oracle for <, !=, and band predicates under
// every algorithm.

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "dioid/tropical.h"
#include "dp/theta.h"
#include "util/random.h"
#include "workload/generators.h"

namespace anyk {
namespace {

std::string AlgoName(const ::testing::TestParamInfo<Algorithm>& info) {
  return AlgorithmName(info.param);
}

// Nested-loop oracle over the chain with the same predicates.
std::vector<double> ThetaOracle(const std::vector<const Relation*>& rels,
                                const std::vector<ThetaPredicate>& thetas) {
  std::vector<double> weights;
  std::vector<size_t> pick(rels.size(), 0);
  auto recurse = [&](auto&& self, size_t i, double w) -> void {
    if (i == rels.size()) {
      weights.push_back(w);
      return;
    }
    for (size_t r = 0; r < rels[i]->NumRows(); ++r) {
      if (i > 0) {
        std::vector<Value> left(rels[i - 1]->arity());
        std::vector<Value> right(rels[i]->arity());
        rels[i - 1]->Row(pick[i - 1]).CopyInto(left.data());
        rels[i]->Row(r).CopyInto(right.data());
        if (!thetas[i - 1](left, right)) continue;
      }
      pick[i] = r;
      self(self, i + 1, w + rels[i]->Weight(r));
    }
  };
  recurse(recurse, 0, 0.0);
  std::sort(weights.begin(), weights.end());
  return weights;
}

void CheckTheta(const std::vector<const Relation*>& rels,
                const std::vector<ThetaPredicate>& thetas, Algorithm algo) {
  auto oracle = ThetaOracle(rels, thetas);
  auto problem = BuildThetaPathGraph<TropicalDioid>(rels, thetas);
  auto e = MakeEnumerator<TropicalDioid>(problem.graph.get(), algo);
  std::vector<double> got;
  while (auto r = e->Next()) {
    got.push_back(r->weight);
    ASSERT_LE(got.size(), oracle.size()) << "too many results";
  }
  ASSERT_EQ(got.size(), oracle.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], oracle[i]) << "rank " << i;
  }
}

class ThetaTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ThetaTest, LessThanJoin) {
  Database db = MakePathDatabase(25, 2, 701, {.fanout = 5.0});
  std::vector<const Relation*> rels = {&db.Get("R1"), &db.Get("R2")};
  std::vector<ThetaPredicate> thetas = {
      [](std::span<const Value> l, std::span<const Value> r) {
        return l[1] < r[0];
      }};
  CheckTheta(rels, thetas, GetParam());
}

TEST_P(ThetaTest, ThreeWayMixedPredicates) {
  Database db = MakePathDatabase(15, 3, 702, {.fanout = 4.0});
  std::vector<const Relation*> rels = {&db.Get("R1"), &db.Get("R2"),
                                       &db.Get("R3")};
  std::vector<ThetaPredicate> thetas = {
      // band join: |R1.A2 - R2.A1| <= 1
      [](std::span<const Value> l, std::span<const Value> r) {
        return std::llabs(l[1] - r[0]) <= 1;
      },
      // inequality join
      [](std::span<const Value> l, std::span<const Value> r) {
        return l[1] != r[0];
      }};
  CheckTheta(rels, thetas, GetParam());
}

TEST_P(ThetaTest, EmptyWhenPredicateNeverHolds) {
  Database db = MakePathDatabase(10, 2, 703, {.fanout = 3.0});
  std::vector<const Relation*> rels = {&db.Get("R1"), &db.Get("R2")};
  std::vector<ThetaPredicate> thetas = {
      [](std::span<const Value>, std::span<const Value>) { return false; }};
  auto problem = BuildThetaPathGraph<TropicalDioid>(rels, thetas);
  auto e = MakeEnumerator<TropicalDioid>(problem.graph.get(), GetParam());
  EXPECT_FALSE(e->Next().has_value());
}

TEST_P(ThetaTest, SingleRelationDegenerate) {
  Database db = MakePathDatabase(12, 1, 704, {.fanout = 3.0});
  std::vector<const Relation*> rels = {&db.Get("R1")};
  auto problem = BuildThetaPathGraph<TropicalDioid>(rels, {});
  auto e = MakeEnumerator<TropicalDioid>(problem.graph.get(), GetParam());
  size_t count = 0;
  double prev = -1e18;
  while (auto r = e->Next()) {
    EXPECT_GE(r->weight, prev);
    prev = r->weight;
    ++count;
  }
  EXPECT_EQ(count, 12u);
}

INSTANTIATE_TEST_SUITE_P(Algos, ThetaTest,
                         ::testing::ValuesIn(AllRankedAlgorithms()), AlgoName);

}  // namespace
}  // namespace anyk
