// Tests that replay the paper's worked examples verbatim:
//  * Examples 6-10 / Figs 1-2: the Cartesian product R1={1,2,3} x
//    R2={10,20,30} x R3={100,200,300} with weight = label, whose ranked
//    sequence 111, 112, 113, 121, ... is spelled out in the text;
//  * Example 1 / Section 6.4: Boolean-semiring evaluation of QC4;
//  * Section 6.1 attribute weights.

#include <cstddef>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "anyk/factory.h"
#include "anyk/ranked_query.h"
#include "dioid/boolean.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "query/attribute_weights.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "test_util.h"
#include "workload/generators.h"

namespace anyk {
namespace {

std::string AlgoName(const ::testing::TestParamInfo<Algorithm>& info) {
  return AlgorithmName(info.param);
}

Database Example6Database() {
  Database db;
  Relation& r1 = db.AddRelation("R1", 2);
  Relation& r2 = db.AddRelation("R2", 2);
  Relation& r3 = db.AddRelation("R3", 2);
  for (Value v : {1, 2, 3}) r1.Add({0, v}, static_cast<double>(v));
  for (Value v : {10, 20, 30}) r2.Add({0, v}, static_cast<double>(v));
  for (Value v : {100, 200, 300}) r3.Add({0, v}, static_cast<double>(v));
  return db;
}

class PaperExampleTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(PaperExampleTest, Example6RankedSequence) {
  Database db = Example6Database();
  ConjunctiveQuery q = ConjunctiveQuery::Product(3);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());

  // The paper walks through Π1 = <1,10,100> (111), then 112, 113, 121, ...
  const std::vector<double> expected = {111, 112, 113, 121, 122, 123,
                                        131, 132, 133, 211, 212, 213,
                                        221, 222, 223, 231, 232, 233,
                                        311, 312, 313, 321, 322, 323,
                                        331, 332, 333};
  std::vector<double> got;
  while (auto row = e->Next()) got.push_back(row->weight);
  ASSERT_EQ(got, expected);
}

TEST_P(PaperExampleTest, Example8SecondBestSolutions) {
  // Lawler's three subspaces for the 2nd-best: <2,10,100>=112,
  // <1,20,100>=121, <1,10,200>=211 — 112 wins.
  Database db = Example6Database();
  ConjunctiveQuery q = ConjunctiveQuery::Product(3);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  auto top1 = e->Next();
  ASSERT_TRUE(top1.has_value());
  EXPECT_EQ(top1->assignment, (std::vector<Value>{0, 1, 0, 10, 0, 100}));
  auto top2 = e->Next();
  ASSERT_TRUE(top2.has_value());
  EXPECT_EQ(top2->assignment, (std::vector<Value>{0, 2, 0, 10, 0, 100}));
}

TEST_P(PaperExampleTest, BooleanSemiringEvaluatesQC4) {
  // Section 6.4: under ({0,1}, ∨, ∧) with the inverted order, the any-k
  // machinery performs plain (unranked) evaluation of the 4-cycle query.
  Database db = MakeWorstCaseCycleDatabase(12, 4, 99);
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);
  RankedQuery<BooleanDioid>::Options opts;
  opts.algorithm = GetParam();
  RankedQuery<BooleanDioid> rq(db, q, opts);
  auto oracle = testing::Oracle<BooleanDioid>(db, q);
  size_t count = 0;
  while (auto row = rq.Next()) {
    EXPECT_EQ(row->weight, 1);  // all answers are "true"
    ++count;
    ASSERT_LE(count, oracle.size());
  }
  EXPECT_EQ(count, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Algos, PaperExampleTest,
                         ::testing::ValuesIn(AllRankedAlgorithms()), AlgoName);

TEST(AttributeWeightTest, Example16UnaryRewrite) {
  // Q(x,y) :- R(x,y) with weights on both attributes: rewritten to
  // Q :- R(x,y), W_x(x), W_y(y).
  Database db;
  Relation& r = db.AddRelation("R", 2);
  r.Add({1, 10}, 1.0);
  r.Add({1, 20}, 2.0);
  r.Add({2, 10}, 4.0);
  ConjunctiveQuery q = ConjunctiveQuery::Parse("Q(*) :- R(x,y)");
  AddAttributeWeight(&db, &q, "x", [](Value v) { return 100.0 * v; });
  AddAttributeWeight(&db, &q, "y", [](Value v) { return 0.5 * v; });
  EXPECT_EQ(q.NumAtoms(), 3u);
  EXPECT_EQ(db.Get("W_x").NumRows(), 2u);
  EXPECT_EQ(db.Get("W_y").NumRows(), 2u);

  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, Algorithm::kTake2);
  // Totals: (1,10): 1+100+5=106; (1,20): 2+100+10=112; (2,10): 4+200+5=209.
  std::vector<double> got;
  while (auto row = e->Next()) got.push_back(row->weight);
  EXPECT_EQ(got, (std::vector<double>{106, 112, 209}));
}

TEST(AttributeWeightTest, MatchesOracleOnPath) {
  Database db = MakePathDatabase(25, 2, 77, {.fanout = 4.0});
  ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  AddAttributeWeight(&db, &q, "x2", [](Value v) { return 3.0 * v; });
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, Algorithm::kLazy);
  testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

}  // namespace
}  // namespace anyk
