// Concurrent-serving tests for the PreparedQuery / EnumerationSession split:
//  * N threads draining one shared (const) PreparedQuery produce streams
//    identical to a serial drain — rank for rank under a tie-breaking
//    cancellative dioid, modulo canonicalized tie groups for the
//    non-cancellative ones (same two strengths as differential_test),
//  * different algorithms may drain the same prepared query concurrently,
//  * preprocessing parallelized over a ThreadPool builds bit-identical
//    ranked streams,
//  * the zero-global-alloc enumeration property (invariants_test) still
//    holds with 4 sessions enumerating concurrently.
// Runs under TSan in CI: any shared mutable state that slipped into the
// enumeration phase shows up as a data race here.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "anyk/prepared_query.h"
#include "anyk/sharded_query.h"
#include "anyk/topk.h"
#include "dioid/dioid.h"
#include "dioid/min_max.h"
#include "dioid/tiebreak.h"
#include "dioid/tropical.h"
#include "plan/planner.h"
#include "query/cq.h"
#include "storage/database.h"
#include "util/alloc_stats.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace anyk {
namespace {

constexpr size_t kMaxAtoms = 8;
constexpr size_t kSessions = 4;

// One ranked answer, flattened for comparison (same shape as the
// differential-test oracle rows; tie_ids carries the TieBreakDioid witness
// in exact-order mode and stays empty in canonical mode).
struct Answer {
  double base_weight = 0;
  std::vector<int64_t> tie_ids;
  std::vector<Value> assignment;
  std::vector<uint32_t> witness;

  bool operator==(const Answer& o) const = default;
  bool operator<(const Answer& o) const {
    if (base_weight != o.base_weight) return base_weight < o.base_weight;
    if (tie_ids != o.tie_ids) return tie_ids < o.tie_ids;
    if (witness != o.witness) return witness < o.witness;
    return assignment < o.assignment;
  }
};

template <typename D>
double BaseWeightOf(const typename D::Value& w) {
  if constexpr (requires { w.base; }) {
    return static_cast<double>(w.base);
  } else {
    return static_cast<double>(w);
  }
}

template <typename D>
std::vector<Answer> Drain(EnumerationSession<D> sess, size_t cap) {
  std::vector<Answer> out;
  ResultRow<D> row;
  while (out.size() < cap && sess.NextInto(&row)) {
    Answer a;
    a.base_weight = BaseWeightOf<D>(row.weight);
    if constexpr (requires { row.weight.id; }) {
      a.tie_ids.assign(row.weight.id.begin(), row.weight.id.end());
    }
    a.assignment = row.assignment;
    a.witness = row.witness;
    out.push_back(std::move(a));
  }
  return out;
}

/// Sort each maximal equal-weight run in place (non-cancellative dioids:
/// correct algorithms may resolve weight ties differently). Tie groups are
/// cut on exact double equality, which is precise for the min-max dioid
/// used here (⊗ = max only ever selects an input value, never rounds).
void CanonicalizeTieGroups(std::vector<Answer>* answers) {
  size_t i = 0;
  while (i < answers->size()) {
    size_t j = i + 1;
    while (j < answers->size() &&
           (*answers)[j].base_weight == (*answers)[i].base_weight) {
      ++j;
    }
    std::sort(answers->begin() + i, answers->begin() + j);
    i = j;
  }
}

struct Case {
  Database db;
  ConjunctiveQuery q;
};

Case MakeStarCase(uint64_t seed, size_t leaves, size_t rows) {
  Rng rng(seed);
  Case c;
  for (size_t i = 1; i <= leaves; ++i) {
    auto& rel = c.db.AddRelation("S" + std::to_string(i), 2);
    for (size_t r = 0; r < rows; ++r) {
      rel.Add({rng.Uniform(0, 5), rng.Uniform(0, 20)},
              static_cast<double>(rng.Uniform(0, 30)));
    }
    c.q.AddAtom("S" + std::to_string(i), {"x0", "y" + std::to_string(i)});
  }
  return c;
}

Case MakeCycleCase(uint64_t seed, size_t l, size_t rows) {
  Rng rng(seed);
  Case c;
  for (size_t i = 1; i <= l; ++i) {
    auto& rel = c.db.AddRelation("C" + std::to_string(i), 2);
    for (size_t r = 0; r < rows; ++r) {
      rel.Add({rng.Uniform(0, 4), rng.Uniform(0, 4)},
              static_cast<double>(rng.Uniform(0, 25)));
    }
  }
  c.q = ConjunctiveQuery::Cycle(l, "C");
  return c;
}

/// N concurrent drains of one prepared query (PreparedQuery or
/// ShardedPreparedQuery), one algorithm per thread (cycled through `algos`),
/// compared against `want`. `canonical` relaxes the comparison to
/// canonicalized tie groups.
template <typename D, typename PQ>
void ExpectConcurrentDrainsMatch(const PQ& pq,
                                 const std::vector<Algorithm>& algos,
                                 std::vector<Answer> want, bool canonical,
                                 size_t cap) {
  if (canonical) CanonicalizeTieGroups(&want);
  std::vector<std::vector<Answer>> got(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (size_t t = 0; t < kSessions; ++t) {
    threads.emplace_back([&pq, &algos, &got, t, cap] {
      got[t] = Drain<D>(pq.NewSession(algos[t % algos.size()]), cap);
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kSessions; ++t) {
    if (canonical) CanonicalizeTieGroups(&got[t]);
    ASSERT_EQ(got[t].size(), want.size())
        << "session " << t << " ("
        << AlgorithmName(algos[t % algos.size()])
        << ") diverges from the serial drain in length";
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[t][i], want[i])
          << "session " << t << " ("
          << AlgorithmName(algos[t % algos.size()]) << ") diverges at rank "
          << i;
    }
  }
}

TEST(ConcurrencyTest, FourSessionsMatchSerialDrainExactOrder) {
  using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;
  Case c = MakeStarCase(101, 3, 40);
  PreparedQuery<TB> pq(c.db, c.q);
  ASSERT_EQ(pq.plan(), QueryPlan::kAcyclicTree);
  std::vector<Answer> want = Drain<TB>(pq.NewSession(Algorithm::kLazy), 50000);
  ASSERT_GT(want.size(), 100u) << "instance too small to be meaningful";
  ExpectConcurrentDrainsMatch<TB>(pq, {Algorithm::kLazy}, want,
                                  /*canonical=*/false, 50000);
}

TEST(ConcurrencyTest, MixedAlgorithmsShareOnePreparedQuery) {
  using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;
  Case c = MakeStarCase(102, 3, 35);
  PreparedQuery<TB> pq(c.db, c.q);
  std::vector<Answer> want =
      Drain<TB>(pq.NewSession(Algorithm::kBatch), 50000);
  ASSERT_GT(want.size(), 100u);
  // Four different algorithms — four different lazily-built per-session
  // structures — over the same const graph, concurrently.
  ExpectConcurrentDrainsMatch<TB>(
      pq,
      {Algorithm::kLazy, Algorithm::kTake2, Algorithm::kEager,
       Algorithm::kRecursive},
      want, /*canonical=*/false, 50000);
}

TEST(ConcurrencyTest, AutoPlannedSessionsMatchSerialDrainExactOrder) {
  // `auto`: the strategy is decided ONCE at prepare time; every concurrent
  // session resolves kAuto to that same cached decision (no per-session
  // re-planning), and the streams byte-match a serial auto drain.
  using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;
  Case c = MakeStarCase(105, 3, 40);
  typename PreparedQuery<TB>::Options popts;
  popts.auto_plan = true;
  const PreparedQuery<TB> pq(c.db, c.q, popts);
  const plan::PlanDecision before = pq.decision();
  EXPECT_TRUE(before.auto_topology);
  std::vector<Answer> want = Drain<TB>(pq.NewSession(Algorithm::kAuto), 50000);
  ASSERT_GT(want.size(), 100u) << "instance too small to be meaningful";
  ExpectConcurrentDrainsMatch<TB>(pq, {Algorithm::kAuto}, want,
                                  /*canonical=*/false, 50000);
  // Sessions never re-plan: the prepare-time decision is untouched.
  EXPECT_EQ(before.algorithm, pq.decision().algorithm);
  EXPECT_EQ(before.heap_arity, pq.decision().heap_arity);
  EXPECT_EQ(before.Summary(), pq.decision().Summary());
}

TEST(ConcurrencyTest, NonCancellativeDioidMatchesModuloTieGroups) {
  Case c = MakeStarCase(103, 3, 35);
  PreparedQuery<MinMaxDioid> pq(c.db, c.q);
  std::vector<Answer> want =
      Drain<MinMaxDioid>(pq.NewSession(Algorithm::kBatch), 50000);
  ASSERT_GT(want.size(), 50u);
  ExpectConcurrentDrainsMatch<MinMaxDioid>(
      pq,
      {Algorithm::kLazy, Algorithm::kTake2, Algorithm::kAll,
       Algorithm::kRecursive},
      want, /*canonical=*/true, 50000);
}

TEST(ConcurrencyTest, CycleUnionPlanDrainsConcurrently) {
  using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;
  Case c = MakeCycleCase(104, 4, 24);
  ThreadPool pool(kSessions);
  typename PreparedQuery<TB>::Options popts;
  popts.pool = &pool;  // per-partition DP over the union instances
  PreparedQuery<TB> pq(c.db, c.q, popts);
  ASSERT_EQ(pq.plan(), QueryPlan::kCycleUnion);
  ASSERT_GT(pq.NumTrees(), 1u);
  std::vector<Answer> want = Drain<TB>(pq.NewSession(Algorithm::kLazy), 50000);
  ExpectConcurrentDrainsMatch<TB>(pq,
                                  {Algorithm::kLazy, Algorithm::kRecursive},
                                  want, /*canonical=*/false, 50000);
}

TEST(ConcurrencyTest, ParallelPreprocessingMatchesSerial) {
  using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;
  Case c = MakeStarCase(105, 4, 30);
  PreparedQuery<TB> serial(c.db, c.q);
  ThreadPool pool(4);
  typename PreparedQuery<TB>::Options popts;
  popts.pool = &pool;  // wave-parallel per-stage index/CSR builds
  PreparedQuery<TB> parallel(c.db, c.q, popts);
  const std::vector<Answer> want =
      Drain<TB>(serial.NewSession(Algorithm::kLazy), 50000);
  const std::vector<Answer> got =
      Drain<TB>(parallel.NewSession(Algorithm::kLazy), 50000);
  ASSERT_GT(want.size(), 100u);
  ASSERT_EQ(got, want);
}

// Budgeted concurrent sessions (the --sessions N --k K serving shape): each
// session gets its own k_budget and must produce exactly the serial prefix,
// then report exhaustion — across mixed algorithms, including the bounded
// candidate heaps pruning independently per session.
TEST(ConcurrencyTest, BudgetedSessionsMatchSerialPrefixes) {
  using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;
  Case c = MakeStarCase(108, 3, 40);
  PreparedQuery<TB> pq(c.db, c.q);
  const std::vector<Answer> want =
      Drain<TB>(pq.NewSession(Algorithm::kLazy), 50000);
  ASSERT_GT(want.size(), 200u);
  const std::vector<Algorithm> algos = {Algorithm::kLazy, Algorithm::kTake2,
                                        Algorithm::kEager,
                                        Algorithm::kRecursive};
  const std::vector<size_t> budgets = {1, 7, 64, want.size() + 5};
  std::vector<std::vector<Answer>> got(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (size_t t = 0; t < kSessions; ++t) {
    threads.emplace_back([&pq, &algos, &budgets, &got, t] {
      EnumOptions eo;
      eo.k_budget = budgets[t % budgets.size()];
      // Drain with a cap above the budget: the budget alone must stop the
      // session.
      got[t] = Drain<TB>(pq.NewSession(algos[t % algos.size()], eo),
                         eo.k_budget + 100);
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kSessions; ++t) {
    const size_t budget = budgets[t % budgets.size()];
    const size_t expect = std::min(budget, want.size());
    ASSERT_EQ(got[t].size(), expect)
        << "session " << t << " (" << AlgorithmName(algos[t % algos.size()])
        << ", k=" << budget << ") emitted the wrong count";
    for (size_t i = 0; i < expect; ++i) {
      ASSERT_EQ(got[t][i], want[i])
          << "session " << t << " ("
          << AlgorithmName(algos[t % algos.size()]) << ", k=" << budget
          << ") diverges at rank " << i;
    }
  }
}

// Same shape over the cycle-union plan: the budget reaches the union
// enumerator and each of its partition sub-enumerators.
TEST(ConcurrencyTest, BudgetedCycleUnionSessionsMatchSerialPrefix) {
  using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;
  Case c = MakeCycleCase(109, 4, 24);
  PreparedQuery<TB> pq(c.db, c.q);
  ASSERT_EQ(pq.plan(), QueryPlan::kCycleUnion);
  const std::vector<Answer> want =
      Drain<TB>(pq.NewSession(Algorithm::kLazy), 50000);
  ASSERT_GT(want.size(), 20u);
  const size_t budget = want.size() / 2;
  std::vector<std::vector<Answer>> got(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (size_t t = 0; t < kSessions; ++t) {
    threads.emplace_back([&pq, &got, budget, t] {
      EnumOptions eo;
      eo.k_budget = budget;
      got[t] = Drain<TB>(
          pq.NewSession(t % 2 == 0 ? Algorithm::kLazy : Algorithm::kRecursive,
                        eo),
          budget + 100);
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kSessions; ++t) {
    ASSERT_EQ(got[t].size(), budget) << "session " << t;
    for (size_t i = 0; i < budget; ++i) {
      ASSERT_EQ(got[t][i], want[i]) << "session " << t << " rank " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded sessions (the --shards S serving shape): every session of one
// ShardedPreparedQuery merges S per-shard streams, and the merge is
// deterministic — so N concurrent sharded sessions must byte-match a serial
// drain of the SAME sharded query, exactly like unsharded sessions match a
// serial session. (Comparing against an UNsharded drain is the differential
// suite's job, canonically; here the bar is byte-for-byte.) Runs under TSan
// in CI: racy shard state — the shared per-shard PreparedQueries, the union
// heap, the parallel-drain rings — shows up here.
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, ShardedSessionsMatchSerialShardedDrain) {
  using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;
  Case c = MakeStarCase(110, 3, 40);
  typename ShardedPreparedQuery<TB>::Options sopts;
  sopts.shards = 4;
  const ShardedPreparedQuery<TB> pq(c.db, c.q, sopts);
  ASSERT_EQ(pq.NumShards(), 4u);
  std::vector<Answer> want =
      Drain<TB>(pq.NewSession(Algorithm::kLazy), 50000);
  ASSERT_GT(want.size(), 100u) << "instance too small to be meaningful";
  // Mixed algorithms: under the tie-break dioid the answer order is total,
  // so every strategy's merged stream is identical rank for rank.
  ExpectConcurrentDrainsMatch<TB>(
      pq,
      {Algorithm::kLazy, Algorithm::kTake2, Algorithm::kEager,
       Algorithm::kRecursive},
      want, /*canonical=*/false, 50000);
}

TEST(ConcurrencyTest, ParallelDrainShardedSessionsMatchSerialMerge) {
  // parallel_drain: each of the S shard streams is produced on its own
  // worker thread while the session's caller merges — with 4 concurrent
  // sessions that is 4 * (S + 1) threads hammering the shared shard
  // PreparedQueries. Output must stay byte-identical to the serial merge.
  using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;
  Case c = MakeStarCase(111, 3, 35);
  typename ShardedPreparedQuery<TB>::Options serial_opts;
  serial_opts.shards = 3;
  const ShardedPreparedQuery<TB> serial(c.db, c.q, serial_opts);
  typename ShardedPreparedQuery<TB>::Options par_opts = serial_opts;
  par_opts.parallel_drain = true;
  const ShardedPreparedQuery<TB> parallel(c.db, c.q, par_opts);
  std::vector<Answer> want =
      Drain<TB>(serial.NewSession(Algorithm::kLazy), 50000);
  ASSERT_GT(want.size(), 100u);
  ExpectConcurrentDrainsMatch<TB>(parallel,
                                  {Algorithm::kLazy, Algorithm::kTake2},
                                  want, /*canonical=*/false, 50000);
}

TEST(ConcurrencyTest, ShardedCycleUnionWithEmptyShardsDrainsConcurrently) {
  // Cycle-union plan nested inside the shard union, with S = 7 far above
  // the join-key domain (4): several shards are guaranteed empty and must
  // behave as immediately-exhausted sources, concurrently.
  using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;
  Case c = MakeCycleCase(112, 4, 24);
  ThreadPool pool(kSessions);
  typename ShardedPreparedQuery<TB>::Options sopts;
  sopts.shards = 7;
  sopts.prepare.pool = &pool;  // partition + per-shard builds in parallel
  const ShardedPreparedQuery<TB> pq(c.db, c.q, sopts);
  ASSERT_EQ(pq.plan(), QueryPlan::kCycleUnion);
  std::vector<Answer> want =
      Drain<TB>(pq.NewSession(Algorithm::kLazy), 50000);
  ASSERT_GT(want.size(), 20u);
  ExpectConcurrentDrainsMatch<TB>(pq,
                                  {Algorithm::kLazy, Algorithm::kRecursive},
                                  want, /*canonical=*/false, 50000);
}

TEST(ConcurrencyTest, SkewedAllTiesShardedSessionsMatch) {
  // Adversarial partitioning: every weight equal (ranking decided purely by
  // tie-breaking) and ~85% of the center join keys a single hot value, so
  // one shard carries almost all rows while its siblings run near-empty.
  using TB = TieBreakDioid<TropicalDioid, kMaxAtoms>;
  Rng rng(113);
  Case c;
  for (size_t i = 1; i <= 3; ++i) {
    auto& rel = c.db.AddRelation("S" + std::to_string(i), 2);
    for (size_t r = 0; r < 40; ++r) {
      const Value center = rng.Bernoulli(0.85) ? 7 : rng.Uniform(0, 4);
      rel.Add({center, rng.Uniform(0, 20)}, 1.0);
    }
    c.q.AddAtom("S" + std::to_string(i), {"x0", "y" + std::to_string(i)});
  }
  typename ShardedPreparedQuery<TB>::Options sopts;
  sopts.shards = 4;
  const ShardedPreparedQuery<TB> pq(c.db, c.q, sopts);
  std::vector<Answer> want =
      Drain<TB>(pq.NewSession(Algorithm::kLazy), 50000);
  ASSERT_GT(want.size(), 100u) << "instance too small to be meaningful";
  ExpectConcurrentDrainsMatch<TB>(
      pq,
      {Algorithm::kLazy, Algorithm::kTake2, Algorithm::kEager,
       Algorithm::kRecursive},
      want, /*canonical=*/false, 50000);
}

TEST(ConcurrencyTest, TopKOverPreparedQueryMatchesSessionPrefix) {
  Case c = MakeStarCase(107, 3, 30);
  PreparedQuery<TropicalDioid> pq(c.db, c.q);
  const std::vector<ResultRow<TropicalDioid>> top =
      TopK(pq, Algorithm::kLazy, 10);
  ASSERT_EQ(top.size(), 10u);
  EnumerationSession<TropicalDioid> sess = pq.NewSession(Algorithm::kLazy);
  ResultRow<TropicalDioid> row;
  for (size_t i = 0; i < top.size(); ++i) {
    ASSERT_TRUE(sess.NextInto(&row));
    EXPECT_EQ(row.weight, top[i].weight) << "rank " << i;
    EXPECT_EQ(row.assignment, top[i].assignment) << "rank " << i;
  }
}

// The per-session zero-global-alloc enumeration property (invariants_test)
// must survive 4 sessions enumerating the same PreparedQuery concurrently:
// every session draws from its own arena, so the process-wide operator-new
// counter stays flat across the whole concurrent drain window. Threads are
// spawned (and their sessions warmed) before the first snapshot and kept
// alive past the second, so only enumeration work sits between them; the
// handshakes spin on atomics because a condition variable could allocate.
TEST(ConcurrencyTest, ZeroHeapAllocationsWithFourConcurrentSessions) {
  Database db = MakePathDatabase(300, 4, 106, {.fanout = 8.0});
  ConjunctiveQuery q = ConjunctiveQuery::Path(4);
  PreparedQuery<TropicalDioid> pq(db, q);

  const std::vector<Algorithm> algos = {Algorithm::kLazy, Algorithm::kTake2,
                                        Algorithm::kEager,
                                        Algorithm::kRecursive};
  std::atomic<size_t> warmed{0};
  std::atomic<size_t> warm_ok{0};
  std::atomic<bool> start{false};
  std::atomic<size_t> drained{0};
  std::atomic<bool> finish{false};
  std::atomic<size_t> total_produced{0};

  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (size_t t = 0; t < kSessions; ++t) {
    threads.emplace_back([&, t] {
      EnumOptions eo;
      eo.arena_reserve_bytes = size_t{16} << 20;  // preprocessing reserves
      EnumerationSession<TropicalDioid> sess =
          pq.NewSession(algos[t % algos.size()], eo);
      ResultRow<TropicalDioid> row;
      // Warm-up sizes the row buffers. A failure is recorded, not asserted:
      // a gtest fatal assertion would only return from this lambda, and a
      // thread that never reaches the handshake counters would deadlock
      // the spin-waits below (the main thread checks warm_ok after join).
      const bool ok = sess.NextInto(&row);
      if (ok) warm_ok.fetch_add(1, std::memory_order_relaxed);
      warmed.fetch_add(1, std::memory_order_release);
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      size_t got = 0;
      while (ok && got < 2000 && sess.NextInto(&row)) ++got;
      total_produced.fetch_add(got, std::memory_order_relaxed);
      drained.fetch_add(1, std::memory_order_release);
      // Hold the session (and this thread) alive until the final snapshot
      // has been taken, so no teardown lands inside the measured window.
      while (!finish.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }

  while (warmed.load(std::memory_order_acquire) < kSessions) {
    std::this_thread::yield();
  }
  const AllocCounts before = CurrentAllocCounts();
  start.store(true, std::memory_order_release);
  while (drained.load(std::memory_order_acquire) < kSessions) {
    std::this_thread::yield();
  }
  const AllocCounts delta = AllocDelta(before, CurrentAllocCounts());
  finish.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(warm_ok.load(), kSessions)
      << "a session produced no first answer during warm-up";
  EXPECT_EQ(delta.news, 0u)
      << "concurrent enumeration of " << total_produced.load()
      << " results hit the global heap " << delta.news << " times ("
      << delta.bytes << " bytes)";
  EXPECT_GT(total_produced.load(), 4 * 1000u)
      << "instance too small to be meaningful";
}

}  // namespace
}  // namespace anyk
