// Planner statistics on hand-counted fixtures: the per-stage counters that
// BuildStageGraph piggybacks on the CSR build (exact output counts, fanout,
// distinct join keys) must match counts done by hand — on skewed keys,
// all-ties weights, zero-arity relations and empty relations — and the
// cost model built on top must respect its documented thresholds.

#include <cmath>
#include <cstddef>
#include <limits>

#include <gtest/gtest.h>

#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "join/brute_force.h"
#include "plan/cost_model.h"
#include "plan/planner.h"
#include "plan/stats.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "storage/database.h"

namespace anyk {
namespace {

using plan::GraphStats;

StageGraph<TropicalDioid> BuildGraph(const Database& db,
                                     const ConjunctiveQuery& q,
                                     TDPInstance* inst) {
  *inst = BuildAcyclicInstance(db, q);
  return BuildStageGraph<TropicalDioid>(*inst);
}

// ---------------------------------------------------------------------------
// Hand-counted fixtures
// ---------------------------------------------------------------------------

TEST(StatsTest, SkewedJoinKeyHandCounted) {
  // R(x,y) |><| S(y,z), with the join key skewed: y=10 has 3 partners on
  // both sides, y=20 exactly one, and S's y=30 row dangles (pruned by the
  // bottom-up pass).
  Database db;
  auto& r = db.AddRelation("R1", 2);
  r.Add({1, 10}, 1.0);
  r.Add({2, 10}, 2.0);
  r.Add({3, 10}, 3.0);
  r.Add({4, 20}, 4.0);
  auto& s = db.AddRelation("R2", 2);
  s.Add({10, 100}, 1.0);
  s.Add({10, 200}, 2.0);
  s.Add({10, 300}, 3.0);
  s.Add({20, 400}, 4.0);
  s.Add({30, 500}, 5.0);  // dangling: no R partner
  ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  TDPInstance inst;
  StageGraph<TropicalDioid> g = BuildGraph(db, q, &inst);
  const GraphStats st = plan::CollectGraphStats(g);

  EXPECT_EQ(st.stages, 2u);
  EXPECT_EQ(st.input_rows, 9u);          // 4 + 5 bag rows before pruning
  EXPECT_EQ(st.states, 8u);              // 4 R states + 4 surviving S states
  // Connectors: the root connector plus one per distinct referenced key
  // ({10, 20}) in the child stage.
  EXPECT_EQ(st.connectors, 3u);
  // Exact output: 3*3 (y=10) + 1*1 (y=20) = 10 answers.
  EXPECT_DOUBLE_EQ(st.output_count, 10.0);
  // Widest choice set: the root connector holds all 4 root states; the
  // skewed key y=10 holds 3 — so 4.
  EXPECT_EQ(st.max_fanout, 4u);
  EXPECT_DOUBLE_EQ(st.avg_fanout, 8.0 / 3.0);
  EXPECT_TRUE(st.serial());              // path query: one child slot
  // Cross-check the exact-count DP against the brute-force join.
  EXPECT_DOUBLE_EQ(st.output_count,
                   static_cast<double>(BruteForceJoin(db, q).size()));
}

TEST(StatsTest, AllTiesWeightsDoNotAffectCounts) {
  // Statistics are weight-blind: a path with every weight identical must
  // produce the same counts as the brute-force join's cardinality.
  Database db;
  for (int i = 1; i <= 3; ++i) {
    auto& rel = db.AddRelation("R" + std::to_string(i), 2);
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) rel.Add({a, b}, 1.0);
    }
  }
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  TDPInstance inst;
  StageGraph<TropicalDioid> g = BuildGraph(db, q, &inst);
  const GraphStats st = plan::CollectGraphStats(g);
  // Full 3x3 bipartite joins: 9 * 3 * 3 = 81 answers, all weight 3.
  EXPECT_DOUBLE_EQ(st.output_count, 81.0);
  EXPECT_DOUBLE_EQ(st.output_count,
                   static_cast<double>(BruteForceJoin(db, q).size()));
  EXPECT_EQ(st.states, 27u);  // every row survives in every stage
  EXPECT_EQ(st.input_rows, 27u);
}

TEST(StatsTest, EmptyRelationYieldsZeroOutput) {
  Database db;
  auto& r1 = db.AddRelation("R1", 2);
  r1.Add({1, 2}, 1.0);
  db.AddRelation("R2", 2);  // no rows: the conjunction is empty
  ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  TDPInstance inst;
  StageGraph<TropicalDioid> g = BuildGraph(db, q, &inst);
  const GraphStats st = plan::CollectGraphStats(g);
  EXPECT_TRUE(g.Empty());
  EXPECT_DOUBLE_EQ(st.output_count, 0.0);
  // The bottom-up pass prunes dangling child rows; root rows stay in the
  // CSR with a zero count (they never enumerate), so the state/fanout
  // counters still see them. The cost model keys off output_count == 0.
  EXPECT_EQ(st.states, 1u);
  EXPECT_EQ(st.max_fanout, 1u);
}

TEST(StatsTest, DisjointKeysPruneEverything) {
  // Both relations populated but no key matches: counts must agree that the
  // output is exactly zero (not merely small).
  Database db;
  auto& r1 = db.AddRelation("R1", 2);
  auto& r2 = db.AddRelation("R2", 2);
  for (int i = 0; i < 10; ++i) {
    r1.Add({i, 100 + i}, 1.0);
    r2.Add({500 + i, i}, 1.0);
  }
  ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  TDPInstance inst;
  StageGraph<TropicalDioid> g = BuildGraph(db, q, &inst);
  const GraphStats st = plan::CollectGraphStats(g);
  EXPECT_DOUBLE_EQ(st.output_count, 0.0);
  EXPECT_EQ(st.input_rows, 20u);  // the bags saw the rows...
  // ...every child row is pruned (no key matches a root row), while the 10
  // zero-count root rows stay resident — see the note in the test above.
  EXPECT_EQ(st.states, 10u);
}

TEST(StatsTest, ZeroArityRelationCardinality) {
  // Zero-arity relations are nullary facts with multiplicity; the planner's
  // "index probe" must count the facts, not the (absent) columns.
  Database db;
  auto& r = db.AddRelation("R", 2);
  r.Add({1, 10}, 1.0);
  r.Add({2, 20}, 2.0);
  auto& z = db.AddRelation("Z", 0);
  z.AddRow({}, 5.0);
  z.AddRow({}, 7.0);
  z.AddRow({}, 9.0);
  ConjunctiveQuery q;
  q.AddAtom("R", {"x", "y"});
  q.AddAtom("Z", {});
  EXPECT_EQ(plan::AtomCardinality(db, q, 0), 2u);
  EXPECT_EQ(plan::AtomCardinality(db, q, 1), 3u);
}

// ---------------------------------------------------------------------------
// Merging across union parts
// ---------------------------------------------------------------------------

TEST(StatsTest, MergeAddsSizesAndMaxesShapes) {
  GraphStats a;
  a.stages = 3;
  a.states = 100;
  a.connectors = 10;
  a.input_rows = 50;
  a.max_fanout = 4;
  a.max_slots = 1;
  a.output_count = 1000;
  GraphStats b;
  b.stages = 2;
  b.states = 20;
  b.connectors = 10;
  b.input_rows = 30;
  b.max_fanout = 9;
  b.max_slots = 2;
  b.output_count = 500;
  plan::MergeGraphStats(&a, b);
  EXPECT_EQ(a.stages, 3u);
  EXPECT_EQ(a.states, 120u);
  EXPECT_EQ(a.connectors, 20u);
  EXPECT_EQ(a.input_rows, 80u);
  EXPECT_EQ(a.max_fanout, 9u);
  EXPECT_EQ(a.max_slots, 2u);
  EXPECT_DOUBLE_EQ(a.output_count, 1500.0);
  EXPECT_DOUBLE_EQ(a.avg_fanout, 6.0);
  EXPECT_FALSE(a.serial());
}

TEST(StatsTest, MergePreservesSaturatedCounts) {
  // The count DP saturates to +inf on astronomically large outputs; merging
  // must keep the saturation instead of producing NaN.
  GraphStats a;
  a.output_count = std::numeric_limits<double>::infinity();
  GraphStats b;
  b.output_count = 42;
  plan::MergeGraphStats(&a, b);
  EXPECT_TRUE(std::isinf(a.output_count));
}

// ---------------------------------------------------------------------------
// Cost-model thresholds
// ---------------------------------------------------------------------------

plan::PlanInput BigInput(size_t k_budget) {
  plan::PlanInput in;
  in.stats.stages = 4;
  in.stats.states = 100000;
  in.stats.connectors = 20000;
  in.stats.input_rows = 120000;
  in.stats.max_fanout = 50;
  in.stats.max_slots = 1;
  in.stats.avg_fanout = 5.0;
  in.stats.output_count = 1e9;
  in.k_budget = k_budget;
  return in;
}

TEST(StatsTest, SmallBudgetNeverPicksBatch) {
  // k=10 of a billion answers: materializing everything cannot win.
  const plan::StrategyChoice c = plan::ChooseStrategy(BigInput(10));
  EXPECT_NE(c.algorithm, Algorithm::kBatch);
  EXPECT_GT(c.est_batch, c.est_cost);
}

TEST(StatsTest, EmptyOutputShortCircuits) {
  plan::PlanInput in = BigInput(0);
  in.stats.output_count = 0;
  const plan::StrategyChoice c = plan::ChooseStrategy(in);
  EXPECT_EQ(c.algorithm, Algorithm::kLazy);
  EXPECT_NE(std::string(c.reason).find("empty"), std::string::npos);
}

TEST(StatsTest, HeapArityFollowsBudget) {
  EXPECT_EQ(plan::ChooseStrategy(BigInput(1)).heap_arity, 2u);
  EXPECT_EQ(plan::ChooseStrategy(BigInput(64)).heap_arity, 2u);
  EXPECT_EQ(plan::ChooseStrategy(BigInput(1000)).heap_arity, 4u);
  EXPECT_EQ(plan::ChooseStrategy(BigInput(1u << 20)).heap_arity, 8u);
  // Unbounded = effective k is the whole (huge) output.
  EXPECT_EQ(plan::ChooseStrategy(BigInput(0)).heap_arity, 8u);
}

TEST(StatsTest, ChoiceIsDeterministic) {
  const plan::PlanInput in = BigInput(100);
  const plan::StrategyChoice a = plan::ChooseStrategy(in);
  const plan::StrategyChoice b = plan::ChooseStrategy(in);
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.heap_arity, b.heap_arity);
  EXPECT_DOUBLE_EQ(a.est_cost, b.est_cost);
  EXPECT_STREQ(a.reason, b.reason);
}

TEST(StatsTest, NonInvertibleDioidTaxesPartStrategies) {
  plan::PlanInput inv = BigInput(1000);
  plan::PlanInput noinv = inv;
  noinv.has_inverse = false;
  const plan::StrategyCosts a = plan::EstimateCosts(inv);
  const plan::StrategyCosts b = plan::EstimateCosts(noinv);
  EXPECT_GT(b.lazy, a.lazy);
  EXPECT_GT(b.take2, a.take2);
  EXPECT_GT(b.eager, a.eager);
  EXPECT_GT(b.all, a.all);
  EXPECT_DOUBLE_EQ(b.batch, a.batch);       // batch never deviates
  EXPECT_DOUBLE_EQ(b.recursive, a.recursive);
}

TEST(StatsTest, ColumnDistinctBoundOffColumnStats) {
  // The bound reads the append-maintained per-column min/max (ColumnStats):
  // min(|value range|, rows), hand-counted here.
  Database db;
  auto& r = db.AddRelation("R", 2);
  r.Add({10, 7}, 1.0);
  r.Add({14, 7}, 1.0);
  r.Add({12, 7}, 1.0);
  // Column 0 spans [10,14] -> 5 possible values, but only 3 rows: bound 3.
  EXPECT_DOUBLE_EQ(plan::ColumnDistinctBound(r, 0), 3.0);
  // Column 1 is constant: span size 1.
  EXPECT_DOUBLE_EQ(plan::ColumnDistinctBound(r, 1), 1.0);
  EXPECT_DOUBLE_EQ(plan::ColumnAvgGroupSize(r, 0), 1.0);
  EXPECT_DOUBLE_EQ(plan::ColumnAvgGroupSize(r, 1), 3.0);

  // Wide value range, few rows: rows win the min.
  auto& w = db.AddRelation("W", 1);
  w.Add({-1000000}, 1.0);
  w.Add({1000000}, 1.0);
  EXPECT_DOUBLE_EQ(plan::ColumnDistinctBound(w, 0), 2.0);

  // Empty column: bound 0, group size degenerates to the safe 1.0.
  auto& e = db.AddRelation("E", 1);
  EXPECT_DOUBLE_EQ(plan::ColumnDistinctBound(e, 0), 0.0);
  EXPECT_DOUBLE_EQ(plan::ColumnAvgGroupSize(e, 0), 1.0);
}

TEST(StatsTest, PlanDecisionSummaryNamesTheChoice) {
  plan::PlanDecision d;
  d.algorithm = Algorithm::kEager;
  d.heap_arity = 8;
  d.stats.output_count = 123;
  d.reason = "test reason";
  const std::string s = d.Summary();
  EXPECT_NE(s.find("algorithm=Eager"), std::string::npos);
  EXPECT_NE(s.find("heap_arity=8"), std::string::npos);
  EXPECT_NE(s.find("test reason"), std::string::npos);
}

}  // namespace
}  // namespace anyk
