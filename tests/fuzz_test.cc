// Randomized property tests: random acyclic join trees (random shapes,
// arities, domains, weight distributions) evaluated by every algorithm and
// compared against the brute-force oracle. Seeds are fixed, so failures are
// reproducible.

#include <cstddef>
#include <cstdint>
#include <queue>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "anyk/ranked_query.h"
#include "dioid/min_max.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "storage/flat_index.h"
#include "storage/group_index.h"
#include "storage/kernels.h"
#include "test_util.h"
#include "util/arena.h"
#include "util/dary_heap.h"
#include "util/random.h"

namespace anyk {
namespace {

struct FuzzCase {
  uint64_t seed;
  size_t num_atoms;
  size_t rows;
  int64_t domain;
  int64_t weight_max;
};

// Random tree-shaped CQ: atom i joins its parent on one shared variable and
// introduces 1-2 fresh variables.
ConjunctiveQuery RandomTreeQuery(Rng* rng, size_t num_atoms,
                                 std::vector<size_t>* arity_out) {
  ConjunctiveQuery q;
  std::vector<std::vector<std::string>> atom_vars(num_atoms);
  size_t fresh = 0;
  auto new_var = [&] { return "v" + std::to_string(fresh++); };
  for (size_t i = 0; i < num_atoms; ++i) {
    std::vector<std::string> vars;
    if (i > 0) {
      const size_t parent = rng->Below(i);
      const auto& pv = atom_vars[parent];
      vars.push_back(pv[rng->Below(pv.size())]);  // join var
    } else {
      vars.push_back(new_var());
    }
    const size_t extra = 1 + rng->Below(2);
    for (size_t e = 0; e < extra; ++e) vars.push_back(new_var());
    rng->Shuffle(&vars);
    atom_vars[i] = vars;
    arity_out->push_back(vars.size());
    q.AddAtom("F" + std::to_string(i), vars);
  }
  return q;
}

Database RandomDatabase(Rng* rng, const std::vector<size_t>& arities,
                        size_t rows, int64_t domain, int64_t weight_max) {
  Database db;
  for (size_t i = 0; i < arities.size(); ++i) {
    auto& rel = db.AddRelation("F" + std::to_string(i), arities[i]);
    std::vector<Value> buf(arities[i]);
    for (size_t r = 0; r < rows; ++r) {
      for (auto& v : buf) v = rng->Uniform(0, domain);
      rel.AddRow(buf, static_cast<double>(rng->Uniform(0, weight_max)));
    }
  }
  return db;
}

class FuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzTest, AllAlgorithmsMatchOracle) {
  const FuzzCase& fc = GetParam();
  Rng rng(fc.seed);
  std::vector<size_t> arities;
  ConjunctiveQuery q = RandomTreeQuery(&rng, fc.num_atoms, &arities);
  Database db =
      RandomDatabase(&rng, arities, fc.rows, fc.domain, fc.weight_max);
  ASSERT_TRUE(IsAcyclic(q)) << q.ToString();
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  for (Algorithm algo : AllRankedAlgorithms()) {
    SCOPED_TRACE(std::string(AlgorithmName(algo)) + " on " + q.ToString());
    auto e = MakeEnumerator<TropicalDioid>(&g, algo);
    testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
  }
}

TEST_P(FuzzTest, RankedQueryFrontDoor) {
  const FuzzCase& fc = GetParam();
  Rng rng(fc.seed ^ 0xF00D);
  std::vector<size_t> arities;
  ConjunctiveQuery q = RandomTreeQuery(&rng, fc.num_atoms, &arities);
  Database db =
      RandomDatabase(&rng, arities, fc.rows, fc.domain, fc.weight_max);
  RankedQuery<TropicalDioid>::Options opts;
  opts.algorithm = Algorithm::kTake2;
  RankedQuery<TropicalDioid> rq(db, q, opts);
  EXPECT_EQ(rq.plan(), QueryPlan::kAcyclicTree);
  testing::ExpectMatchesOracle<TropicalDioid>(rq.enumerator(), db, q);
}

TEST_P(FuzzTest, RandomCycleThroughDecomposition) {
  const FuzzCase& fc = GetParam();
  Rng rng(fc.seed ^ 0xC1C1E);
  const size_t l = 4 + rng.Below(3);  // 4..6
  Database db;
  for (size_t i = 0; i < l; ++i) {
    auto& rel = db.AddRelation("R" + std::to_string(i + 1), 2);
    for (size_t r = 0; r < fc.rows; ++r) {
      rel.Add({rng.Uniform(0, fc.domain), rng.Uniform(0, fc.domain)},
              static_cast<double>(rng.Uniform(0, fc.weight_max)));
    }
  }
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(l);
  RankedQuery<TropicalDioid>::Options opts;
  opts.algorithm =
      AllAnyKAlgorithms()[rng.Below(AllAnyKAlgorithms().size())];
  RankedQuery<TropicalDioid> rq(db, q, opts);
  EXPECT_EQ(rq.plan(), QueryPlan::kCycleUnion);
  testing::ExpectMatchesOracle<TropicalDioid>(rq.enumerator(), db, q);
}

// ---------------------------------------------------------------------------
// Flat GroupIndex fuzz: adversarial key distributions checked against a
// naive unordered_map oracle. Covers the open-addressing probe chains
// (all-equal keys, all-distinct keys, values crafted to collide after the
// splitmix64 mix) that the linear-pass build must survive.
// ---------------------------------------------------------------------------

enum class KeyDist {
  kAllEqual,     // one giant group
  kAllDistinct,  // every row its own group
  kFewHot,       // zipf-ish: a few hot keys + singletons
  kCollision,    // values differing only in high bits (hash stress)
  kUniform,
};

Value AdversarialValue(Rng* rng, KeyDist dist, size_t r) {
  switch (dist) {
    case KeyDist::kAllEqual: return 42;
    case KeyDist::kAllDistinct: return static_cast<Value>(r);
    case KeyDist::kFewHot:
      return rng->Bernoulli(0.7) ? static_cast<Value>(rng->Below(3))
                                 : static_cast<Value>(1000 + r);
    case KeyDist::kCollision:
      // Same low 32 bits, differing high bits: stresses the mixer and the
      // power-of-two mask (identical slots before mixing).
      return static_cast<Value>((static_cast<int64_t>(r) << 32) | 0x1234);
    case KeyDist::kUniform: return static_cast<Value>(rng->Uniform(-50, 50));
  }
  return 0;
}

class GroupIndexFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupIndexFuzzTest, MatchesMapOracle) {
  const int variant = GetParam();
  Rng rng(9000 + variant);
  const KeyDist dist = static_cast<KeyDist>(variant % 5);
  const size_t rows = 1 + rng.Below(400);
  const size_t arity = 1 + rng.Below(3);
  const size_t key_width = rng.Below(arity + 1);  // 0..arity key columns

  Relation rel("F", arity);
  std::vector<Value> buf(arity);
  for (size_t r = 0; r < rows; ++r) {
    for (auto& v : buf) v = AdversarialValue(&rng, dist, r);
    rel.AddRow(buf, 0.0);
  }
  std::vector<uint32_t> key_cols;
  for (size_t c = 0; c < key_width; ++c) {
    key_cols.push_back(static_cast<uint32_t>(c));
  }

  GroupIndex idx(rel, key_cols);

  // Naive oracle.
  std::unordered_map<Key, std::vector<uint32_t>, KeyHash> oracle;
  for (size_t r = 0; r < rows; ++r) {
    oracle[rel.ProjectRow(r, key_cols)].push_back(static_cast<uint32_t>(r));
  }

  ASSERT_EQ(idx.NumGroups(), oracle.size());
  for (const auto& [key, want_rows] : oracle) {
    const auto got = idx.Lookup(key);
    ASSERT_EQ(std::vector<uint32_t>(got.begin(), got.end()), want_rows)
        << "rows of a group diverge (dist=" << variant << ")";
  }
  // Group ids are dense, in first-appearance order, and KeyOf round-trips.
  for (size_t g = 0; g < idx.NumGroups(); ++g) {
    const auto key_span = idx.KeyOf(g);
    const Key key(key_span.begin(), key_span.end());
    EXPECT_EQ(idx.Find(key), static_cast<int64_t>(g));
    ASSERT_TRUE(oracle.count(key) > 0);
  }
  // Absent keys must miss (probe chains must terminate).
  for (int probe = 0; probe < 50; ++probe) {
    Key absent(key_width);
    for (auto& v : absent) v = rng.Uniform(-5000, -4000);
    if (key_width == 0) break;  // the empty key always exists if rows > 0
    if (oracle.count(absent) == 0) {
      EXPECT_EQ(idx.Find(absent), -1);
      EXPECT_TRUE(idx.Lookup(absent).empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KeyDistributions, GroupIndexFuzzTest,
                         ::testing::Range(0, 25));

// Tiny-capacity boundaries: Init(width, 0) must yield a valid power-of-two
// table (empty relations and connector stages are legal), and interning
// straight through the 75% load-factor boundary must neither probe a full
// table nor lose ids. Runs the same oracle loop across widths and a sweep
// of expected_keys values including 0.
TEST(FlatIndexFuzzTest, TinyCapacityAndLoadFactorBoundaryMatchOracle) {
  Rng rng(4242);
  for (const size_t width : {size_t{0}, size_t{1}, size_t{2}, size_t{3}}) {
    for (const size_t expected : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                                  size_t{4}, size_t{7}, size_t{8}}) {
      FlatKeyIndex idx;
      idx.Init(width, expected);
      EXPECT_EQ(idx.NumKeys(), 0u);
      if (width == 0) {
        // Zero-width keys: exactly one distinct key, idempotent intern.
        EXPECT_EQ(idx.Find({}), -1);
        EXPECT_EQ(idx.Intern({}), 0u);
        EXPECT_EQ(idx.Intern({}), 0u);
        EXPECT_EQ(idx.Find({}), 0);
        EXPECT_EQ(idx.NumKeys(), 1u);
        continue;
      }
      std::unordered_map<Key, uint32_t, KeyHash> oracle;
      // Interleave fresh keys with re-interns of everything seen so far, so
      // some re-intern lands exactly at the pre-growth boundary of every
      // table size the index passes through (4, 8, 16, ...).
      for (size_t i = 0; i < 64; ++i) {
        Key key(width);
        for (auto& v : key) v = rng.Uniform(0, 40);
        const auto [it, inserted] =
            oracle.try_emplace(key, static_cast<uint32_t>(oracle.size()));
        EXPECT_EQ(idx.Intern(key), it->second);
        for (const auto& [seen, id] : oracle) {
          ASSERT_EQ(idx.Intern(seen), id)
              << "re-intern changed an id at step " << i;
          ASSERT_EQ(idx.Find(seen), static_cast<int64_t>(id));
        }
        // Absent-key probes must terminate at every load factor.
        Key absent(width, -99 - static_cast<Value>(i));
        ASSERT_EQ(idx.Find(absent), -1);
      }
      ASSERT_EQ(idx.NumKeys(), oracle.size());
    }
  }
}

// Re-interning an existing key must never grow the table, even when the
// load factor sits exactly at the growth threshold (a pre-fix version
// doubled the table on any intern at the boundary, duplicate or not).
TEST(FlatIndexFuzzTest, DuplicateInternAtBoundaryDoesNotGrow) {
  for (const size_t distinct : {size_t{3}, size_t{6}, size_t{12}}) {
    FlatKeyIndex idx;
    idx.Init(1, 0);  // smallest table; grows on the way to `distinct`
    for (size_t i = 0; i < distinct; ++i) {
      idx.Intern(Key{static_cast<Value>(i)});
    }
    const size_t bytes_at_boundary = idx.MemoryBytes();
    for (size_t round = 0; round < 3; ++round) {
      for (size_t i = 0; i < distinct; ++i) {
        ASSERT_EQ(idx.Intern(Key{static_cast<Value>(i)}), i);
      }
    }
    EXPECT_EQ(idx.MemoryBytes(), bytes_at_boundary)
        << "duplicate interns grew a " << distinct << "-key table";
    EXPECT_EQ(idx.NumKeys(), distinct);
  }
}

// FlatKeyIndex under forced growth: start with a deliberately wrong
// expectation so the table rehashes repeatedly, and check ids survive.
TEST(FlatIndexFuzzTest, GrowthPreservesIds) {
  Rng rng(777);
  FlatKeyIndex idx;
  idx.Init(2, 1);  // undersized on purpose: forces doubling + rehash
  std::unordered_map<Key, uint32_t, KeyHash> oracle;
  for (size_t i = 0; i < 5000; ++i) {
    Key key{rng.Uniform(0, 500), rng.Uniform(0, 500)};
    const auto [it, inserted] =
        oracle.try_emplace(key, static_cast<uint32_t>(oracle.size()));
    const uint32_t id = idx.Intern(key);
    EXPECT_EQ(id, it->second) << "dense id diverged at insert " << i;
  }
  ASSERT_EQ(idx.NumKeys(), oracle.size());
  for (const auto& [key, id] : oracle) {
    ASSERT_EQ(idx.Find(key), static_cast<int64_t>(id));
  }
}

// ---------------------------------------------------------------------------
// Arena-path fuzz: force tiny arena blocks so every enumeration structure
// refills mid-run (block chaining, vector regrowth inside the arena) and
// verify the ranked output still matches the brute-force oracle.
// ---------------------------------------------------------------------------

TEST_P(FuzzTest, ArenaBlockChainingMatchesOracle) {
  const FuzzCase& fc = GetParam();
  Rng rng(fc.seed ^ 0xA12EA);
  std::vector<size_t> arities;
  ConjunctiveQuery q = RandomTreeQuery(&rng, fc.num_atoms, &arities);
  Database db =
      RandomDatabase(&rng, arities, fc.rows, fc.domain, fc.weight_max);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  // Minimal first block: the arena must chain (and vectors must regrow
  // across block boundaries) many times during enumeration.
  EnumOptions opts;
  opts.arena_block_bytes = 1;  // clamped to the arena's minimum block size
  for (Algorithm algo : AllAnyKAlgorithms()) {
    SCOPED_TRACE(std::string(AlgorithmName(algo)) + " on " + q.ToString());
    auto e = MakeEnumerator<TropicalDioid>(&g, algo, opts);
    testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
  }
}

// ---------------------------------------------------------------------------
// DAryHeap / BoundedHeap fuzz: long random op tapes against a
// std::priority_queue oracle — bulk builds, duplicate-heavy keys, tiny
// capacities, all supported arities, and budgeted runs with adversarial
// successor pushes (the shape the ANYK-PART candidate queue produces).
// ---------------------------------------------------------------------------

template <size_t Arity>
void FuzzDAryHeapTape(uint64_t seed) {
  Rng rng(seed);
  using Heap = DAryHeap<int, std::less<int>, std::allocator<int>, Arity>;
  Heap heap;
  std::priority_queue<int, std::vector<int>, std::greater<int>> oracle;
  // Random initial bulk build of size 0..24 (tiny capacities included).
  {
    std::vector<int> initial(rng.Below(25));
    for (auto& x : initial) x = static_cast<int>(rng.Uniform(0, 8));
    for (int x : initial) oracle.push(x);
    heap.BuildFrom(std::move(initial));
  }
  for (int round = 0; round < 3000; ++round) {
    const double p = 0.05 + 0.9 * rng.Bernoulli(0.5);  // phase-y workloads
    if (oracle.empty() || rng.Bernoulli(p)) {
      const int v = static_cast<int>(rng.Uniform(0, 12));  // heavy duplicates
      heap.Push(v);
      oracle.push(v);
    } else if (rng.Bernoulli(0.1)) {
      const int v = static_cast<int>(rng.Uniform(0, 12));
      ASSERT_EQ(heap.ReplaceMin(v), oracle.top());
      oracle.pop();
      oracle.push(v);
    } else {
      ASSERT_EQ(heap.Min(), oracle.top());
      ASSERT_EQ(heap.PopMin(), oracle.top());
      oracle.pop();
    }
    ASSERT_EQ(heap.Size(), oracle.size());
  }
}

TEST(DAryHeapFuzzTest, RandomTapesMatchPriorityQueueOracle) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FuzzDAryHeapTape<2>(seed);
    FuzzDAryHeapTape<4>(seed ^ 0x44);
    FuzzDAryHeapTape<8>(seed ^ 0x88);
  }
}

TEST(BoundedHeapFuzzTest, BudgetedDrainsMatchUnboundedOracle) {
  // Lawler-shaped tape: every pop emits, successors are >= the popped key.
  // The bounded heap must pop the exact same key sequence as an unbounded
  // oracle for the whole budget, for any budget and duplicate density.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 977);
    const size_t budget = 1 + rng.Below(60);
    const int dup_range = rng.Bernoulli(0.3) ? 3 : 1000;  // 30%: heavy ties
    SCOPED_TRACE("seed=" + std::to_string(seed) + " budget=" +
                 std::to_string(budget) + " dup_range=" +
                 std::to_string(dup_range));
    BoundedHeap<int> bounded;
    bounded.SetBudget(budget);
    std::priority_queue<int, std::vector<int>, std::greater<int>> oracle;
    bounded.Push(0);
    oracle.push(0);
    size_t emitted = 0;
    while (emitted < budget && !bounded.Empty()) {
      ASSERT_EQ(bounded.Min(), oracle.top());
      const int top = bounded.PopMin();
      ASSERT_EQ(top, oracle.top());
      oracle.pop();
      ++emitted;
      const size_t succ = rng.Below(5);
      for (size_t s = 0; s < succ; ++s) {
        const int child = top + static_cast<int>(rng.Uniform(0, dup_range));
        bounded.Push(child);
        oracle.push(child);
      }
    }
    // Exhausting before the budget means the oracle is empty too modulo
    // pruned-but-never-needed candidates; sizes only diverge via pruning.
    EXPECT_LE(bounded.Size(), oracle.size());
  }
}

// ---------------------------------------------------------------------------
// Bind-kernel fuzz: both registered flavors (scalar, 4x-unrolled) of every
// gather primitive in storage/kernels.h against naive reference loops, over
// adversarial column data — skewed/hot ids, all-equal values, values crafted
// to collide after the hash mix (kCollision), lengths straddling every
// unroll remainder (n % 4 ∈ {0,1,2,3}), and empty inputs.
// ---------------------------------------------------------------------------

class KernelFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelFuzzTest, BothFlavorsMatchNaiveLoops) {
  const int variant = GetParam();
  Rng rng(31000 + variant);
  const KeyDist dist = static_cast<KeyDist>(variant % 5);
  // Lengths cover every unroll remainder and degenerate sizes.
  const size_t col_rows = 1 + rng.Below(300);
  const size_t lens[] = {0, 1, 2, 3, 4, 5, 7, 8, 63 + rng.Below(70)};

  // Adversarial column + id vector (ids skew hot under kFewHot/kAllEqual).
  std::vector<Value> col(col_rows);
  for (size_t r = 0; r < col_rows; ++r) {
    col[r] = AdversarialValue(&rng, dist, r);
  }
  std::vector<uint32_t> u32col(col_rows);
  for (size_t r = 0; r < col_rows; ++r) {
    u32col[r] = static_cast<uint32_t>(rng.Below(1u << 20));
  }

  for (const size_t n : lens) {
    std::vector<uint32_t> ids(n);
    for (auto& id : ids) {
      id = static_cast<uint32_t>(
          dist == KeyDist::kAllEqual ? 0 : rng.Below(col_rows));
    }
    const size_t stride = 1 + rng.Below(5);
    const size_t offset = rng.Below(stride);
    std::vector<uint32_t> strided(std::max<size_t>(n * stride, 1));
    for (auto& v : strided) v = static_cast<uint32_t>(rng.Below(col_rows));

    for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kUnrolled}) {
      SCOPED_TRACE(std::string("kind=") + KernelKindName(kind) + " n=" +
                   std::to_string(n) + " dist=" + std::to_string(variant));
      const GatherKernels& kx = GetGatherKernels(kind);

      std::vector<Value> got(n + 1, -777), want(n + 1, -777);
      kx.gather(col.data(), ids.data(), n, got.data());
      for (size_t i = 0; i < n; ++i) want[i] = col[ids[i]];
      ASSERT_EQ(got, want) << "gather";

      std::vector<Value> got_s(std::max<size_t>(n * stride, 1), -777);
      std::vector<Value> want_s(got_s);
      kx.gather_to_stride(col.data(), ids.data(), n, got_s.data(), stride);
      for (size_t i = 0; i < n; ++i) want_s[i * stride] = col[ids[i]];
      ASSERT_EQ(got_s, want_s) << "gather_to_stride stride=" << stride;

      std::vector<uint32_t> got_u(n + 1, 0xdead), want_u(n + 1, 0xdead);
      kx.gather_u32(u32col.data(), ids.data(), n, got_u.data());
      for (size_t i = 0; i < n; ++i) want_u[i] = u32col[ids[i]];
      ASSERT_EQ(got_u, want_u) << "gather_u32";

      // gather_u32_strided reads base[id*stride + offset]; ids must stay in
      // range of the strided buffer.
      std::vector<uint32_t> sids(n);
      const size_t srows = strided.size() / stride;
      for (auto& id : sids) {
        id = static_cast<uint32_t>(srows != 0 ? rng.Below(srows) : 0);
      }
      if (srows != 0) {
        kx.gather_u32_strided(strided.data(), stride, offset, sids.data(), n,
                              got_u.data());
        for (size_t i = 0; i < n; ++i) {
          want_u[i] = strided[sids[i] * stride + offset];
        }
        ASSERT_EQ(got_u, want_u) << "gather_u32_strided";

        const size_t cn = std::min(n, srows);
        kx.copy_strided_u32(strided.data(), stride, offset, cn, got_u.data());
        for (size_t i = 0; i < cn; ++i) {
          want_u[i] = strided[i * stride + offset];
        }
        ASSERT_EQ(std::vector<uint32_t>(got_u.begin(), got_u.begin() + cn),
                  std::vector<uint32_t>(want_u.begin(), want_u.begin() + cn))
            << "copy_strided_u32";
      }

      const size_t sn = std::min(n, col_rows);
      std::fill(got_s.begin(), got_s.end(), -777);
      std::fill(want_s.begin(), want_s.end(), -777);
      kx.spread_to_stride(col.data(), sn, got_s.data(), stride);
      for (size_t i = 0; i < sn; ++i) want_s[i * stride] = col[i];
      ASSERT_EQ(got_s, want_s) << "spread_to_stride";
    }
  }
}

TEST_P(KernelFuzzTest, DioidCombineFlavorsMatchDirectEvaluation) {
  const int variant = GetParam();
  Rng rng(32000 + variant);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4},
                         size_t{17}, size_t{100 + rng.Below(60)}}) {
    std::vector<double> a(n), b(n), vals(std::max<size_t>(n, 1) + 40);
    for (auto& x : a) x = static_cast<double>(rng.Uniform(-50, 50));
    // Heavy ties under odd variants: all-equal b column.
    for (auto& x : b) {
      x = variant % 2 ? 7.0 : static_cast<double>(rng.Uniform(-50, 50));
    }
    for (auto& x : vals) x = static_cast<double>(rng.Uniform(-50, 50));
    std::vector<uint32_t> ids(n);
    for (auto& id : ids) id = static_cast<uint32_t>(rng.Below(vals.size()));

    for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kUnrolled}) {
      SCOPED_TRACE(std::string("kind=") + KernelKindName(kind) + " n=" +
                   std::to_string(n));
      const auto& dk = GetDioidKernels<TropicalDioid>(kind);
      std::vector<double> got(n + 1, -1e9), want(n + 1, -1e9);
      dk.combine(a.data(), b.data(), n, got.data());
      for (size_t i = 0; i < n; ++i) {
        want[i] = TropicalDioid::Combine(a[i], b[i]);
      }
      ASSERT_EQ(got, want) << "combine";

      std::vector<double> acc = a, want_acc = a;
      dk.combine_gather(vals.data(), ids.data(), n, acc.data());
      for (size_t i = 0; i < n; ++i) {
        want_acc[i] = TropicalDioid::Combine(want_acc[i], vals[ids[i]]);
      }
      ASSERT_EQ(acc, want_acc) << "combine_gather";

      const auto& mk = GetDioidKernels<MinMaxDioid>(kind);
      mk.combine(a.data(), b.data(), n, got.data());
      for (size_t i = 0; i < n; ++i) {
        want[i] = MinMaxDioid::Combine(a[i], b[i]);
      }
      ASSERT_EQ(got, want) << "min-max combine";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AdversarialColumns, KernelFuzzTest,
                         ::testing::Range(0, 15));

TEST(KernelRegistryTest, ParseAndResolve) {
  KernelKind k = KernelKind::kAuto;
  EXPECT_TRUE(ParseKernelKind("scalar", &k));
  EXPECT_EQ(k, KernelKind::kScalar);
  EXPECT_TRUE(ParseKernelKind("unrolled", &k));
  EXPECT_EQ(k, KernelKind::kUnrolled);
  EXPECT_TRUE(ParseKernelKind("auto", &k));
  EXPECT_EQ(k, KernelKind::kAuto);
  EXPECT_FALSE(ParseKernelKind("simd9000", &k));
  // kAuto resolves to a concrete flavor; concrete kinds resolve to
  // themselves.
  EXPECT_NE(ResolveKernelKind(KernelKind::kAuto), KernelKind::kAuto);
  EXPECT_EQ(ResolveKernelKind(KernelKind::kScalar), KernelKind::kScalar);
  EXPECT_EQ(ResolveKernelKind(KernelKind::kUnrolled), KernelKind::kUnrolled);
  EXPECT_STREQ(GetGatherKernels(KernelKind::kScalar).name, "scalar");
  EXPECT_STREQ(GetGatherKernels(KernelKind::kUnrolled).name, "unrolled");
}

std::string FuzzName(const ::testing::TestParamInfo<FuzzCase>& info) {
  return "s" + std::to_string(info.param.seed) + "_a" +
         std::to_string(info.param.num_atoms) + "_r" +
         std::to_string(info.param.rows) + "_d" +
         std::to_string(info.param.domain);
}

INSTANTIATE_TEST_SUITE_P(
    Random, FuzzTest,
    ::testing::Values(FuzzCase{11, 2, 30, 4, 100}, FuzzCase{12, 3, 25, 3, 50},
                      FuzzCase{13, 3, 40, 5, 10}, FuzzCase{14, 4, 20, 3, 100},
                      FuzzCase{15, 4, 30, 4, 2},  // heavy ties
                      FuzzCase{16, 5, 15, 3, 100}, FuzzCase{17, 5, 20, 4, 50},
                      FuzzCase{18, 6, 12, 3, 100}, FuzzCase{19, 6, 15, 2, 20},
                      FuzzCase{20, 7, 10, 3, 100}, FuzzCase{21, 8, 8, 2, 50},
                      FuzzCase{22, 3, 60, 8, 1},  // all equal weights
                      FuzzCase{23, 4, 50, 10, 10000},
                      FuzzCase{24, 2, 5, 2, 100},  // tiny
                      FuzzCase{25, 5, 25, 5, 100}),
    FuzzName);

}  // namespace
}  // namespace anyk
