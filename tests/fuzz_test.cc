// Randomized property tests: random acyclic join trees (random shapes,
// arities, domains, weight distributions) evaluated by every algorithm and
// compared against the brute-force oracle. Seeds are fixed, so failures are
// reproducible.

#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "anyk/ranked_query.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "test_util.h"
#include "util/random.h"

namespace anyk {
namespace {

struct FuzzCase {
  uint64_t seed;
  size_t num_atoms;
  size_t rows;
  int64_t domain;
  int64_t weight_max;
};

// Random tree-shaped CQ: atom i joins its parent on one shared variable and
// introduces 1-2 fresh variables.
ConjunctiveQuery RandomTreeQuery(Rng* rng, size_t num_atoms,
                                 std::vector<size_t>* arity_out) {
  ConjunctiveQuery q;
  std::vector<std::vector<std::string>> atom_vars(num_atoms);
  size_t fresh = 0;
  auto new_var = [&] { return "v" + std::to_string(fresh++); };
  for (size_t i = 0; i < num_atoms; ++i) {
    std::vector<std::string> vars;
    if (i > 0) {
      const size_t parent = rng->Below(i);
      const auto& pv = atom_vars[parent];
      vars.push_back(pv[rng->Below(pv.size())]);  // join var
    } else {
      vars.push_back(new_var());
    }
    const size_t extra = 1 + rng->Below(2);
    for (size_t e = 0; e < extra; ++e) vars.push_back(new_var());
    rng->Shuffle(&vars);
    atom_vars[i] = vars;
    arity_out->push_back(vars.size());
    q.AddAtom("F" + std::to_string(i), vars);
  }
  return q;
}

Database RandomDatabase(Rng* rng, const std::vector<size_t>& arities,
                        size_t rows, int64_t domain, int64_t weight_max) {
  Database db;
  for (size_t i = 0; i < arities.size(); ++i) {
    auto& rel = db.AddRelation("F" + std::to_string(i), arities[i]);
    std::vector<Value> buf(arities[i]);
    for (size_t r = 0; r < rows; ++r) {
      for (auto& v : buf) v = rng->Uniform(0, domain);
      rel.AddRow(buf, static_cast<double>(rng->Uniform(0, weight_max)));
    }
  }
  return db;
}

class FuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzTest, AllAlgorithmsMatchOracle) {
  const FuzzCase& fc = GetParam();
  Rng rng(fc.seed);
  std::vector<size_t> arities;
  ConjunctiveQuery q = RandomTreeQuery(&rng, fc.num_atoms, &arities);
  Database db =
      RandomDatabase(&rng, arities, fc.rows, fc.domain, fc.weight_max);
  ASSERT_TRUE(IsAcyclic(q)) << q.ToString();
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  for (Algorithm algo : AllRankedAlgorithms()) {
    SCOPED_TRACE(std::string(AlgorithmName(algo)) + " on " + q.ToString());
    auto e = MakeEnumerator<TropicalDioid>(&g, algo);
    testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
  }
}

TEST_P(FuzzTest, RankedQueryFrontDoor) {
  const FuzzCase& fc = GetParam();
  Rng rng(fc.seed ^ 0xF00D);
  std::vector<size_t> arities;
  ConjunctiveQuery q = RandomTreeQuery(&rng, fc.num_atoms, &arities);
  Database db =
      RandomDatabase(&rng, arities, fc.rows, fc.domain, fc.weight_max);
  RankedQuery<TropicalDioid>::Options opts;
  opts.algorithm = Algorithm::kTake2;
  RankedQuery<TropicalDioid> rq(db, q, opts);
  EXPECT_EQ(rq.plan(), QueryPlan::kAcyclicTree);
  testing::ExpectMatchesOracle<TropicalDioid>(rq.enumerator(), db, q);
}

TEST_P(FuzzTest, RandomCycleThroughDecomposition) {
  const FuzzCase& fc = GetParam();
  Rng rng(fc.seed ^ 0xC1C1E);
  const size_t l = 4 + rng.Below(3);  // 4..6
  Database db;
  for (size_t i = 0; i < l; ++i) {
    auto& rel = db.AddRelation("R" + std::to_string(i + 1), 2);
    for (size_t r = 0; r < fc.rows; ++r) {
      rel.Add({rng.Uniform(0, fc.domain), rng.Uniform(0, fc.domain)},
              static_cast<double>(rng.Uniform(0, fc.weight_max)));
    }
  }
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(l);
  RankedQuery<TropicalDioid>::Options opts;
  opts.algorithm =
      AllAnyKAlgorithms()[rng.Below(AllAnyKAlgorithms().size())];
  RankedQuery<TropicalDioid> rq(db, q, opts);
  EXPECT_EQ(rq.plan(), QueryPlan::kCycleUnion);
  testing::ExpectMatchesOracle<TropicalDioid>(rq.enumerator(), db, q);
}

std::string FuzzName(const ::testing::TestParamInfo<FuzzCase>& info) {
  return "s" + std::to_string(info.param.seed) + "_a" +
         std::to_string(info.param.num_atoms) + "_r" +
         std::to_string(info.param.rows) + "_d" +
         std::to_string(info.param.domain);
}

INSTANTIATE_TEST_SUITE_P(
    Random, FuzzTest,
    ::testing::Values(FuzzCase{11, 2, 30, 4, 100}, FuzzCase{12, 3, 25, 3, 50},
                      FuzzCase{13, 3, 40, 5, 10}, FuzzCase{14, 4, 20, 3, 100},
                      FuzzCase{15, 4, 30, 4, 2},  // heavy ties
                      FuzzCase{16, 5, 15, 3, 100}, FuzzCase{17, 5, 20, 4, 50},
                      FuzzCase{18, 6, 12, 3, 100}, FuzzCase{19, 6, 15, 2, 20},
                      FuzzCase{20, 7, 10, 3, 100}, FuzzCase{21, 8, 8, 2, 50},
                      FuzzCase{22, 3, 60, 8, 1},  // all equal weights
                      FuzzCase{23, 4, 50, 10, 10000},
                      FuzzCase{24, 2, 5, 2, 100},  // tiny
                      FuzzCase{25, 5, 25, 5, 100}),
    FuzzName);

}  // namespace
}  // namespace anyk
