// Serving-layer integration tests: an in-process anykd on an ephemeral port,
// driven over real sockets by the header-only HttpClient.
//
// The core property is the tentpole's acceptance bar: N concurrent clients,
// each paging a ranked stream through resumable cursors, must see exactly —
// byte for byte — the RESULT rows a serial RankedQuery drain of the same
// (query, algorithm, dioid) produces. Enumeration is deterministic per
// algorithm, so the pages concatenate to the serial transcript regardless of
// page size or interleaving. This test is tier1 and therefore also runs
// under the TSan CI job, which is what checks the server's locking for real.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "anyk/factory.h"
#include "anyk/ranked_query.h"
#include "anyk/sharded_query.h"
#include "dioid/max_plus.h"
#include "dioid/tropical.h"
#include "plan/cost_model.h"
#include "query/sql.h"
#include "server/http_client.h"
#include "server/server.h"
#include "storage/database.h"
#include "workload/generators.h"

namespace anyk {
namespace {

using server::AnykServer;
using server::ClientResponse;
using server::HttpClient;
using server::ServerOptions;

// Relations R1..R4 with ~6-way joins; used as a path (R1-R2-R3), as a
// 4-cycle (cycle-union plan) and with DESC/projection variants.
Database TestDatabase() { return MakePathDatabase(60, 4, 707, {.fanout = 6.0}); }

constexpr const char* kPathSql =
    "SELECT * FROM R1, R2, R3 "
    "WHERE R1.A2 = R2.A1 AND R2.A2 = R3.A1 ORDER BY WEIGHT ASC";
constexpr const char* kCycleSql =
    "SELECT * FROM R1, R2, R3, R4 "
    "WHERE R1.A2 = R2.A1 AND R2.A2 = R3.A1 AND R3.A2 = R4.A1 "
    "AND R4.A2 = R1.A1 ORDER BY WEIGHT ASC";
constexpr const char* kProjectedDescSql =
    "SELECT R1.A1, R2.A2 FROM R1, R2 WHERE R1.A2 = R2.A1 "
    "ORDER BY WEIGHT DESC LIMIT 40";

/// The serial ground truth: drain a session of the same algorithm over a
/// PreparedQuery configured exactly like the server's QueryHandle
/// (auto_plan topology, LIMIT as the budget) and format every answer
/// exactly like the server's text pages.
template <typename D>
std::string SerialDrainText(const Database& db, const std::string& sql,
                            Algorithm algo) {
  const SqlStatement stmt = ParseSql(sql, &db);
  typename PreparedQuery<D>::Options qopts;
  qopts.enum_opts.with_witness = false;
  qopts.enum_opts.k_budget = stmt.limit;
  qopts.auto_plan = true;
  const PreparedQuery<D> pq(db, stmt.query, qopts);
  EnumerationSession<D> sess = pq.NewSession(algo);
  std::ostringstream out;
  char weight_buf[32];
  size_t rank = 0;
  size_t produced = 0;
  ResultRow<D> row;
  while ((stmt.limit == 0 || produced < stmt.limit) &&
         sess.NextInto(&row)) {
    ++produced;
    std::snprintf(weight_buf, sizeof(weight_buf), "%.6g",
                  static_cast<double>(row.weight));
    out << "RESULT," << ++rank << "," << weight_buf;
    if (stmt.select_vars.empty()) {
      for (Value v : row.assignment) out << "," << v;
    } else {
      for (uint32_t var : stmt.select_vars) out << "," << row.assignment[var];
    }
    out << "\n";
  }
  return out.str();
}

/// Everything RESULT from a response body (pages also carry CACHE / PLAN /
/// CURSOR / DONE lines).
std::string ResultLines(const std::string& body) {
  std::istringstream in(body);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, 7, "RESULT,") == 0) out << line << "\n";
  }
  return out.str();
}

std::string LineWithPrefix(const std::string& body, const std::string& prefix) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, prefix.size(), prefix) == 0) return line;
  }
  return "";
}

std::string CursorOf(const std::string& body) {
  const std::string line = LineWithPrefix(body, "CURSOR,");
  return line.empty() ? "" : line.substr(7);
}

/// Page a query to exhaustion: /v1/query + /v1/next until DONE. Returns the
/// concatenated RESULT lines.
std::string PagedDrain(int port, const std::string& sql,
                       const std::string& algorithm, size_t page_k) {
  HttpClient client(port);
  ClientResponse resp = client.Get(
      "/v1/query?sql=" + HttpClient::Encode(sql) +
      "&algorithm=" + algorithm + "&k=" + std::to_string(page_k));
  EXPECT_EQ(resp.status, 200) << resp.body;
  std::string results = ResultLines(resp.body);
  std::string cursor = CursorOf(resp.body);
  while (!cursor.empty()) {
    resp = client.Get("/v1/next?cursor=" + cursor +
                      "&k=" + std::to_string(page_k));
    EXPECT_EQ(resp.status, 200) << resp.body;
    results += ResultLines(resp.body);
    cursor = CursorOf(resp.body);
  }
  return results;
}

TEST(ServerTest, ConcurrentPagedDrainsMatchSerialByteForByte) {
  const Database db = TestDatabase();
  AnykServer srv(db, ServerOptions{});
  srv.Start();
  const int port = srv.bound_port();

  // Four clients, mixed algorithms and plans (one exercises the
  // cycle-union plan), deliberately tiny and unequal page sizes so pages
  // interleave heavily across the worker threads.
  struct Case {
    const char* sql;
    const char* algorithm;
    Algorithm algo;
    size_t page_k;
    bool desc;
  };
  const std::vector<Case> cases = {
      {kPathSql, "lazy", Algorithm::kLazy, 7, false},
      {kPathSql, "eager", Algorithm::kEager, 13, false},
      {kCycleSql, "take2", Algorithm::kTake2, 5, false},
      {kProjectedDescSql, "recursive", Algorithm::kRecursive, 9, true},
  };

  std::vector<std::string> expected(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    expected[i] = cases[i].desc
                      ? SerialDrainText<MaxPlusDioid>(db, cases[i].sql,
                                                      cases[i].algo)
                      : SerialDrainText<TropicalDioid>(db, cases[i].sql,
                                                       cases[i].algo);
    ASSERT_FALSE(expected[i].empty()) << "degenerate test instance " << i;
  }

  std::vector<std::string> actual(cases.size());
  std::vector<std::thread> clients;
  clients.reserve(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    clients.emplace_back([&, i] {
      actual[i] =
          PagedDrain(port, cases[i].sql, cases[i].algorithm, cases[i].page_k);
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "case " << i;
  }
  srv.Stop();
}

TEST(ServerTest, CacheHitSkipsRePreparationAndNormalizesKeys) {
  ServerOptions opts;
  AnykServer srv(TestDatabase(), opts);
  srv.Start();
  HttpClient client(srv.bound_port());

  ClientResponse first = client.Get("/v1/query?sql=" +
                                    HttpClient::Encode(kPathSql) + "&k=3");
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(LineWithPrefix(first.body, "CACHE,"), "CACHE,miss");

  // Same query, scrambled spelling: lowercase keywords, extra whitespace,
  // reordered conjuncts. NormalizeSql must fold it onto the cached entry.
  const std::string scrambled =
      "select  *  from R1, R2, R3 where R2.a2 = R3.a1  and  R1.a2 = R2.a1 "
      "order by weight asc";
  ClientResponse second = client.Get("/v1/query?sql=" +
                                     HttpClient::Encode(scrambled) + "&k=3");
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(LineWithPrefix(second.body, "CACHE,"), "CACHE,hit");
  EXPECT_EQ(ResultLines(first.body), ResultLines(second.body));
  srv.Stop();
}

TEST(ServerTest, CursorSurvivesIdleAndEviction) {
  ServerOptions opts;
  opts.cache_capacity = 1;  // every distinct query evicts the previous one
  AnykServer srv(TestDatabase(), opts);
  srv.Start();
  HttpClient client(srv.bound_port());

  ClientResponse resp = client.Get(
      "/v1/query?sql=" + HttpClient::Encode(kPathSql) + "&algorithm=lazy&k=4");
  ASSERT_EQ(resp.status, 200) << resp.body;
  std::string results = ResultLines(resp.body);
  std::string cursor = CursorOf(resp.body);
  ASSERT_FALSE(cursor.empty());

  // Evict the path query's cache entry from under the open cursor.
  ClientResponse evictor = client.Get(
      "/v1/query?sql=" + HttpClient::Encode(kCycleSql) + "&k=2000");
  ASSERT_EQ(evictor.status, 200) << evictor.body;

  // An idle pause, then resume: the cursor pins the evicted entry, so pages
  // keep flowing and still byte-match the serial drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  while (!cursor.empty()) {
    resp = client.Get("/v1/next?cursor=" + cursor + "&k=64");
    ASSERT_EQ(resp.status, 200) << resp.body;
    results += ResultLines(resp.body);
    cursor = CursorOf(resp.body);
  }
  EXPECT_EQ(results, SerialDrainText<TropicalDioid>(TestDatabase(), kPathSql,
                                                    Algorithm::kLazy));

  // Re-asking for the evicted query re-prepares (miss, not hit).
  resp = client.Get("/v1/query?sql=" + HttpClient::Encode(kPathSql) + "&k=1");
  EXPECT_EQ(LineWithPrefix(resp.body, "CACHE,"), "CACHE,miss");
  srv.Stop();
}

TEST(ServerTest, ExpiredCursorAnswers410) {
  ServerOptions opts;
  opts.cursor_ttl_seconds = 0.05;
  AnykServer srv(TestDatabase(), opts);
  srv.Start();
  HttpClient client(srv.bound_port());

  ClientResponse resp = client.Get(
      "/v1/query?sql=" + HttpClient::Encode(kPathSql) + "&k=2");
  ASSERT_EQ(resp.status, 200);
  const std::string cursor = CursorOf(resp.body);
  ASSERT_FALSE(cursor.empty());

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Any request triggers the sweep; the dead cursor then answers 410.
  client.Get("/healthz");
  resp = client.Get("/v1/next?cursor=" + cursor);
  EXPECT_EQ(resp.status, 410) << resp.body;

  // Unknown ids and double-closes are 410 too.
  EXPECT_EQ(client.Get("/v1/next?cursor=c999").status, 410);
  EXPECT_EQ(client.Get("/v1/close?cursor=c999").status, 410);
  srv.Stop();
}

TEST(ServerTest, AdmissionControlRejectsCleanly) {
  ServerOptions opts;
  opts.max_sessions = 2;
  AnykServer srv(TestDatabase(), opts);
  srv.Start();
  HttpClient client(srv.bound_port());

  // Malformed SQL is a 400 (the throwing check handler), not a dead server.
  EXPECT_EQ(client.Get("/v1/query?sql=" +
                       HttpClient::Encode(
                           "SELECT * FROM R1 ORDER BY WEIGHT ASC garbage"))
                .status,
            400);
  EXPECT_EQ(client.Get("/healthz").status, 200);

  // k=0 is the EnumOptions sentinel for "unbounded" and must not be
  // accepted as a page size anywhere.
  EXPECT_EQ(client.Get("/v1/query?sql=" + HttpClient::Encode(kPathSql) +
                       "&k=0").status, 400);
  const std::string open1 = client.Get(
      "/v1/query?sql=" + HttpClient::Encode(kPathSql) + "&k=1").body;
  const std::string c1 = CursorOf(open1);
  ASSERT_FALSE(c1.empty());
  EXPECT_EQ(client.Get("/v1/next?cursor=" + c1 + "&k=0").status, 400);

  // Oversized pages are bounded by max_page_k.
  EXPECT_EQ(client.Get("/v1/query?sql=" + HttpClient::Encode(kPathSql) +
                       "&k=1000000").status, 400);

  // Session gauge: two open cursors fill max_sessions; the third query gets
  // 429 until one closes.
  const std::string open2 = client.Get(
      "/v1/query?sql=" + HttpClient::Encode(kCycleSql) + "&k=1").body;
  const std::string c2 = CursorOf(open2);
  ASSERT_FALSE(c2.empty());
  EXPECT_EQ(client.Get("/v1/query?sql=" +
                       HttpClient::Encode(kProjectedDescSql) + "&k=1").status,
            429);
  EXPECT_EQ(client.Get("/v1/close?cursor=" + c1).status, 200);
  EXPECT_EQ(client.Get("/v1/query?sql=" +
                       HttpClient::Encode(kProjectedDescSql) + "&k=1").status,
            200);
  srv.Stop();
}

TEST(ServerTest, StatzAndFlush) {
  ServerOptions opts;
  AnykServer srv(TestDatabase(), opts);
  srv.Start();
  HttpClient client(srv.bound_port());

  client.Get("/v1/query?sql=" + HttpClient::Encode(kPathSql) + "&k=1");
  client.Get("/v1/query?sql=" + HttpClient::Encode(kPathSql) + "&k=1");
  ClientResponse stats = client.Get("/statz");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"hits\": 1"), std::string::npos) << stats.body;
  EXPECT_NE(stats.body.find("\"misses\": 1"), std::string::npos) << stats.body;

  // Flush bumps the epoch: the same SQL now misses (new cache key).
  EXPECT_EQ(client.Get("/v1/flush").status, 405);  // GET is rejected
  EXPECT_EQ(client.Post("/v1/flush", "").status, 200);
  ClientResponse after = client.Get(
      "/v1/query?sql=" + HttpClient::Encode(kPathSql) + "&k=1");
  EXPECT_EQ(LineWithPrefix(after.body, "CACHE,"), "CACHE,miss");
  srv.Stop();
}

TEST(ServerTest, AutoDefaultMatchesSerialAutoDrain) {
  // `auto` is the server default: a request without an algorithm parameter
  // runs the prepare-time planner decision, and its paged stream must
  // byte-match a serial auto drain (the decision is cached in the entry, so
  // every page and every client sees the same strategy).
  const Database db = TestDatabase();
  AnykServer srv(db, ServerOptions{});
  srv.Start();
  const int port = srv.bound_port();

  HttpClient client(port);
  ClientResponse untyped = client.Get(
      "/v1/query?sql=" + HttpClient::Encode(kPathSql) + "&k=5");
  ASSERT_EQ(untyped.status, 200) << untyped.body;
  EXPECT_FALSE(ResultLines(untyped.body).empty());

  const std::string paged = PagedDrain(port, kPathSql, "auto", 11);
  EXPECT_EQ(paged, SerialDrainText<TropicalDioid>(db, kPathSql,
                                                  Algorithm::kAuto));

  // /statz lists the cached plan decisions (plan + resolved algorithm).
  ClientResponse stats = client.Get("/statz");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"planner\""), std::string::npos) << stats.body;
  EXPECT_NE(stats.body.find("\"prepared\""), std::string::npos) << stats.body;
  EXPECT_NE(stats.body.find("\"plan\": \"acyclic-tree\""), std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("\"version\": " +
                            std::to_string(plan::kPlannerVersion)),
            std::string::npos)
      << stats.body;
  srv.Stop();
}

// A --shards S server: every page request merges S per-shard streams. The
// ground truth is a serial in-process drain of a ShardedPreparedQuery built
// exactly like the server's TypedHandle (same shard count, same serial
// union merge), which is byte-identical by construction — comparing against
// an UNsharded drain would be flaky, since the integer-weight fixture ties
// constantly and shard-local row ids reorder equal-weight answers.
template <typename D>
std::string SerialShardedDrainText(const Database& db, const std::string& sql,
                                   Algorithm algo, size_t shards) {
  const SqlStatement stmt = ParseSql(sql, &db);
  typename ShardedPreparedQuery<D>::Options sopts;
  sopts.prepare.enum_opts.with_witness = false;
  sopts.prepare.enum_opts.k_budget = stmt.limit;
  sopts.prepare.auto_plan = true;
  sopts.shards = shards;
  const ShardedPreparedQuery<D> pq(db, stmt.query, sopts);
  EnumerationSession<D> sess = pq.NewSession(algo);
  std::ostringstream out;
  char weight_buf[32];
  size_t rank = 0;
  size_t produced = 0;
  ResultRow<D> row;
  while ((stmt.limit == 0 || produced < stmt.limit) && sess.NextInto(&row)) {
    ++produced;
    std::snprintf(weight_buf, sizeof(weight_buf), "%.6g",
                  static_cast<double>(row.weight));
    out << "RESULT," << ++rank << "," << weight_buf;
    if (stmt.select_vars.empty()) {
      for (Value v : row.assignment) out << "," << v;
    } else {
      for (uint32_t var : stmt.select_vars) out << "," << row.assignment[var];
    }
    out << "\n";
  }
  return out.str();
}

TEST(ServerTest, ShardedServerPagedDrainsMatchSerialShardedDrains) {
  const Database db = TestDatabase();
  ServerOptions opts;
  opts.shards = 3;
  AnykServer srv(db, opts);
  srv.Start();
  const int port = srv.bound_port();

  // Concurrent sharded clients, mixed algorithms and plans (path + cycle),
  // small unequal pages so the merged cursors interleave across workers.
  struct Case {
    const char* sql;
    const char* algorithm;
    Algorithm algo;
    size_t page_k;
    bool desc;
  };
  const std::vector<Case> cases = {
      {kPathSql, "lazy", Algorithm::kLazy, 7, false},
      {kPathSql, "auto", Algorithm::kAuto, 13, false},
      {kCycleSql, "take2", Algorithm::kTake2, 5, false},
      {kProjectedDescSql, "eager", Algorithm::kEager, 9, true},
  };
  std::vector<std::string> expected(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    expected[i] =
        cases[i].desc
            ? SerialShardedDrainText<MaxPlusDioid>(db, cases[i].sql,
                                                   cases[i].algo, opts.shards)
            : SerialShardedDrainText<TropicalDioid>(db, cases[i].sql,
                                                    cases[i].algo,
                                                    opts.shards);
    ASSERT_FALSE(expected[i].empty()) << "degenerate test instance " << i;
  }

  std::vector<std::string> actual(cases.size());
  std::vector<std::thread> clients;
  clients.reserve(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    clients.emplace_back([&, i] {
      actual[i] =
          PagedDrain(port, cases[i].sql, cases[i].algorithm, cases[i].page_k);
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "case " << i;
  }

  // /statz reports the server-wide shard count.
  HttpClient client(port);
  ClientResponse stats = client.Get("/statz");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"shards\": 3"), std::string::npos)
      << stats.body;
  srv.Stop();
}

TEST(ServerTest, CacheKeyBindsPlannerVersion) {
  // The prepared-query cache key must separate planner versions: after a
  // cost-model bump (plan::kPlannerVersion), a warm cache can never serve a
  // plan decided by the old model — the new key misses by construction.
  using server::QueryCacheKey;
  const std::string sql = "SELECT * FROM R1 ORDER BY WEIGHT ASC";
  EXPECT_EQ(QueryCacheKey("min-sum", 1, 0, 1, sql),
            QueryCacheKey("min-sum", 1, 0, 1, sql));
  EXPECT_NE(QueryCacheKey("min-sum", 1, 0, 1, sql),
            QueryCacheKey("min-sum", 2, 0, 1, sql));
  EXPECT_NE(QueryCacheKey("min-sum", 1, 0, 1, sql),
            QueryCacheKey("min-sum", 1, 1, 1, sql));
  EXPECT_NE(QueryCacheKey("min-sum", 1, 0, 1, sql),
            QueryCacheKey("max-sum", 1, 0, 1, sql));
  // The shard count is a key component: a server restarted with a different
  // --shards must never revive the other layout's prepared state.
  EXPECT_NE(QueryCacheKey("min-sum", 1, 0, 1, sql),
            QueryCacheKey("min-sum", 1, 0, 4, sql));
  // Components must not bleed into each other across the separator.
  EXPECT_NE(QueryCacheKey("min-sum", 12, 3, 1, sql),
            QueryCacheKey("min-sum", 1, 23, 1, sql));
  EXPECT_NE(QueryCacheKey("min-sum", 1, 12, 3, sql),
            QueryCacheKey("min-sum", 1, 1, 23, sql));
  // The default options track the compiled-in model version, unsharded.
  EXPECT_EQ(ServerOptions{}.planner_version, plan::kPlannerVersion);
  EXPECT_EQ(ServerOptions{}.shards, 1u);
}

TEST(ServerTest, JsonFormatPagesParse) {
  AnykServer srv(TestDatabase(), ServerOptions{});
  srv.Start();
  HttpClient client(srv.bound_port());
  ClientResponse resp = client.Get(
      "/v1/query?sql=" + HttpClient::Encode(kPathSql) + "&k=3&format=json");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"results\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"cursor\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"cache\": \"miss\""), std::string::npos)
      << resp.body;
  srv.Stop();
}

}  // namespace
}  // namespace anyk
