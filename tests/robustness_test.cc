// Robustness and determinism: repeated runs are bit-identical, independent
// enumerators over one stage graph do not interfere, negative weights and
// duplicate-heavy inputs are handled, and medium-scale top-k prefixes agree
// with a partial-sort oracle.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "test_util.h"
#include "workload/generators.h"

namespace anyk {
namespace {

std::string AlgoName(const ::testing::TestParamInfo<Algorithm>& info) {
  return AlgorithmName(info.param);
}

class RobustnessTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(RobustnessTest, DeterministicAcrossRuns) {
  Database db = MakePathDatabase(60, 3, 601, {.fanout = 6.0});
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto run = [&] {
    auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
    std::vector<std::pair<double, std::vector<uint32_t>>> out;
    while (auto r = e->Next()) out.emplace_back(r->weight, r->witness);
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(RobustnessTest, InterleavedEnumeratorsAreIndependent) {
  Database db = MakePathDatabase(50, 3, 602, {.fanout = 5.0});
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto a = MakeEnumerator<TropicalDioid>(&g, GetParam());
  auto b = MakeEnumerator<TropicalDioid>(&g, GetParam());
  // Advance a by 10, then run both in lockstep; b must see rank 1..k while a
  // sees 11..k+10, i.e. identical streams with an offset.
  std::vector<double> head;
  for (int i = 0; i < 10; ++i) {
    auto r = a->Next();
    if (!r) break;
    head.push_back(r->weight);
  }
  std::vector<double> sa, sb;
  while (true) {
    auto ra = a->Next();
    auto rb = b->Next();
    if (!rb) {
      EXPECT_FALSE(ra.has_value());
      break;
    }
    if (ra) sa.push_back(ra->weight);
    sb.push_back(rb->weight);
  }
  // b's first results equal the head a consumed.
  ASSERT_GE(sb.size(), head.size());
  for (size_t i = 0; i < head.size(); ++i) {
    EXPECT_DOUBLE_EQ(sb[i], head[i]);
  }
}

TEST_P(RobustnessTest, NegativeWeights) {
  GeneratorOptions gen;
  gen.weight_min = -5000;
  gen.weight_max = 5000;
  gen.fanout = 5.0;
  Database db = MakePathDatabase(35, 3, 603, gen);
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

TEST_P(RobustnessTest, DuplicateHeavyRelations) {
  // Tiny domain + duplicate rows: many identical assignments with distinct
  // witnesses must all be enumerated.
  Rng rng(604);
  Database db;
  for (int i = 1; i <= 3; ++i) {
    auto& rel = db.AddRelation("R" + std::to_string(i), 2);
    for (int t = 0; t < 30; ++t) {
      rel.Add({rng.Uniform(0, 1), rng.Uniform(0, 1)},
              static_cast<double>(rng.Uniform(0, 3)));
    }
  }
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

TEST_P(RobustnessTest, MediumScaleTopKPrefix) {
  // Larger instance: check only the top-500 prefix against a partial-sorted
  // brute-force oracle (the full output would be slow to verify per rank).
  Database db = MakePathDatabase(1500, 4, 605);
  ConjunctiveQuery q = ConjunctiveQuery::Path(4);
  auto oracle = testing::Oracle<TropicalDioid>(db, q);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  for (size_t i = 0; i < 500 && i < oracle.size(); ++i) {
    auto r = e->Next();
    ASSERT_TRUE(r.has_value());
    ASSERT_DOUBLE_EQ(r->weight, oracle[i].weight) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, RobustnessTest,
                         ::testing::ValuesIn(AllRankedAlgorithms()), AlgoName);

}  // namespace
}  // namespace anyk
