// Robustness and determinism: repeated runs are bit-identical, independent
// enumerators over one stage graph do not interfere, negative weights and
// duplicate-heavy inputs are handled, and medium-scale top-k prefixes agree
// with a partial-sort oracle.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "join/brute_force.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "storage/group_index.h"
#include "storage/kernels.h"
#include "test_util.h"
#include "workload/generators.h"

namespace anyk {
namespace {

std::string AlgoName(const ::testing::TestParamInfo<Algorithm>& info) {
  return AlgorithmName(info.param);
}

class RobustnessTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(RobustnessTest, DeterministicAcrossRuns) {
  Database db = MakePathDatabase(60, 3, 601, {.fanout = 6.0});
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto run = [&] {
    auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
    std::vector<std::pair<double, std::vector<uint32_t>>> out;
    while (auto r = e->Next()) out.emplace_back(r->weight, r->witness);
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(RobustnessTest, InterleavedEnumeratorsAreIndependent) {
  Database db = MakePathDatabase(50, 3, 602, {.fanout = 5.0});
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto a = MakeEnumerator<TropicalDioid>(&g, GetParam());
  auto b = MakeEnumerator<TropicalDioid>(&g, GetParam());
  // Advance a by 10, then run both in lockstep; b must see rank 1..k while a
  // sees 11..k+10, i.e. identical streams with an offset.
  std::vector<double> head;
  for (int i = 0; i < 10; ++i) {
    auto r = a->Next();
    if (!r) break;
    head.push_back(r->weight);
  }
  std::vector<double> sa, sb;
  while (true) {
    auto ra = a->Next();
    auto rb = b->Next();
    if (!rb) {
      EXPECT_FALSE(ra.has_value());
      break;
    }
    if (ra) sa.push_back(ra->weight);
    sb.push_back(rb->weight);
  }
  // b's first results equal the head a consumed.
  ASSERT_GE(sb.size(), head.size());
  for (size_t i = 0; i < head.size(); ++i) {
    EXPECT_DOUBLE_EQ(sb[i], head[i]);
  }
}

TEST_P(RobustnessTest, NegativeWeights) {
  GeneratorOptions gen;
  gen.weight_min = -5000;
  gen.weight_max = 5000;
  gen.fanout = 5.0;
  Database db = MakePathDatabase(35, 3, 603, gen);
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

TEST_P(RobustnessTest, DuplicateHeavyRelations) {
  // Tiny domain + duplicate rows: many identical assignments with distinct
  // witnesses must all be enumerated.
  Rng rng(604);
  Database db;
  for (int i = 1; i <= 3; ++i) {
    auto& rel = db.AddRelation("R" + std::to_string(i), 2);
    for (int t = 0; t < 30; ++t) {
      rel.Add({rng.Uniform(0, 1), rng.Uniform(0, 1)},
              static_cast<double>(rng.Uniform(0, 3)));
    }
  }
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

TEST_P(RobustnessTest, MediumScaleTopKPrefix) {
  // Larger instance: check only the top-500 prefix against a partial-sorted
  // brute-force oracle (the full output would be slow to verify per rank).
  Database db = MakePathDatabase(1500, 4, 605);
  ConjunctiveQuery q = ConjunctiveQuery::Path(4);
  auto oracle = testing::Oracle<TropicalDioid>(db, q);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  for (size_t i = 0; i < 500 && i < oracle.size(); ++i) {
    auto r = e->Next();
    ASSERT_TRUE(r.has_value());
    ASSERT_DOUBLE_EQ(r->weight, oracle[i].weight) << "rank " << i;
  }
}

TEST_P(RobustnessTest, EmptyResultJoin) {
  // Disjoint join-key domains: every branch dead-ends during the semi-join
  // reduction, so the stage graph is empty and enumeration ends immediately.
  Database db;
  auto& r1 = db.AddRelation("R1", 2);
  auto& r2 = db.AddRelation("R2", 2);
  for (int i = 0; i < 20; ++i) {
    r1.Add({i, 100 + i}, 1.0);    // x2 values 100..119
    r2.Add({500 + i, i}, 1.0);    // x2 values 500..519: never match
  }
  ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  EXPECT_FALSE(e->Next().has_value());
  ResultRow<TropicalDioid> row;
  EXPECT_FALSE(e->NextInto(&row));
  testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

TEST_P(RobustnessTest, EmptyRelationInput) {
  // One relation has no rows at all.
  Database db;
  auto& r1 = db.AddRelation("R1", 2);
  db.AddRelation("R2", 2);  // empty
  r1.Add({1, 2}, 1.0);
  ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  EXPECT_FALSE(e->Next().has_value());
}

TEST(ZeroArityTest, RelationTracksRowCount) {
  // Zero-arity relations are nullary facts with multiplicity: NumRows must
  // count the added rows even though there are no value columns.
  Relation nullary("Z", 0);
  EXPECT_EQ(nullary.NumRows(), 0u);
  nullary.AddRow({}, 2.5);
  nullary.AddRow({}, 1.5);
  EXPECT_EQ(nullary.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(nullary.Weight(0), 2.5);
  EXPECT_DOUBLE_EQ(nullary.Weight(1), 1.5);
  EXPECT_TRUE(nullary.Row(0).empty());
  nullary.Clear();
  EXPECT_EQ(nullary.NumRows(), 0u);
}

TEST(ZeroArityTest, GroupIndexOverZeroArityRelation) {
  Relation nullary("Z", 0);
  nullary.AddRow({}, 1.0);
  nullary.AddRow({}, 2.0);
  GroupIndex idx(nullary, std::span<const uint32_t>{});
  ASSERT_EQ(idx.NumGroups(), 1u);  // all rows under the empty key
  EXPECT_EQ(idx.Lookup(Key{}).size(), 2u);
}

TEST(ZeroArityTest, ZeroArityJoinActsAsMultiplicity) {
  // Q() :- R(x, y), Z(): the nullary atom joins on the empty key, so the
  // output is the cross product — every R row paired with every Z fact.
  Database db;
  auto& r = db.AddRelation("R", 2);
  r.Add({1, 10}, 1.0);
  r.Add({2, 20}, 2.0);
  auto& z = db.AddRelation("Z", 0);
  z.AddRow({}, 5.0);
  z.AddRow({}, 7.0);
  ConjunctiveQuery q;
  q.AddAtom("R", {"x", "y"});
  q.AddAtom("Z", {});
  const JoinResultSet join = BruteForceJoin(db, q);
  EXPECT_EQ(join.size(), 4u);  // 2 rows x 2 nullary facts
}

TEST(ZeroArityTest, ZeroArityJoinWithNoFactsIsEmpty) {
  // A zero-arity relation with no rows makes the conjunction false.
  Database db;
  auto& r = db.AddRelation("R", 2);
  r.Add({1, 10}, 1.0);
  db.AddRelation("Z", 0);  // no facts
  ConjunctiveQuery q;
  q.AddAtom("R", {"x", "y"});
  q.AddAtom("Z", {});
  const JoinResultSet join = BruteForceJoin(db, q);
  EXPECT_EQ(join.size(), 0u);
}

TEST(ZeroArityTest, ColumnViewsAreWellDefinedForDegenerateShapes) {
  // Columnar storage must keep every accessor total on the degenerate
  // shapes: arity-0 relations (no columns at all) and 0-row relations
  // (columns exist but every ColumnView is empty).
  Relation nullary("Z", 0);
  nullary.AddRow({}, 1.0);
  EXPECT_TRUE(nullary.Row(0).empty());
  EXPECT_EQ(nullary.Weights().size(), 1u);

  Relation empty("E", 2);
  EXPECT_EQ(empty.NumRows(), 0u);
  for (size_t c = 0; c < empty.arity(); ++c) {
    ColumnView col = empty.Column(c);
    EXPECT_TRUE(col.empty());
    EXPECT_TRUE(empty.ColumnStatsOf(c).empty());
  }
  EXPECT_TRUE(empty.Weights().empty());

  // The bind kernels must accept n=0 over these (possibly null) column
  // pointers without touching memory — this is exactly what a dead-ended
  // stage hands them.
  for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kUnrolled}) {
    const GatherKernels& kx = GetGatherKernels(kind);
    Value out = -1;
    uint32_t uout = 7;
    kx.gather(empty.ColumnData(0), nullptr, 0, &out);
    kx.gather_to_stride(empty.ColumnData(0), nullptr, 0, &out, 3);
    kx.gather_u32(nullptr, nullptr, 0, &uout);
    kx.gather_u32_strided(nullptr, 2, 1, nullptr, 0, &uout);
    kx.copy_strided_u32(nullptr, 2, 0, 0, &uout);
    kx.spread_to_stride(empty.ColumnData(1), 0, &out, 2);
    EXPECT_EQ(out, -1);
    EXPECT_EQ(uout, 7u);
  }
}

TEST(ZeroArityTest, ColumnChunkAppendOnDegenerateShapes) {
  // AppendColumnChunk (the CSV loader's shard flush) with zero rows is a
  // no-op; on a zero-arity relation it appends facts (weights) only.
  Relation rel("R", 2);
  rel.AppendColumnChunk({}, {});
  EXPECT_EQ(rel.NumRows(), 0u);

  Relation nullary("Z", 0);
  const double w[] = {2.5, 0.5};
  nullary.AppendColumnChunk({}, w);
  ASSERT_EQ(nullary.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(nullary.Weight(1), 0.5);
  EXPECT_TRUE(nullary.Row(1).empty());
}

TEST(ZeroArityTest, GroupIndexOverEmptyRelationBothKernelFlavors) {
  // The column-strided GroupIndex build must be total on 0-row input for
  // both kernel flavors (spread_to_stride over an empty column).
  Relation empty("E", 2);
  const std::vector<uint32_t> key_cols = {0};
  for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kUnrolled}) {
    GroupIndex idx(empty, key_cols, kind);
    EXPECT_EQ(idx.NumGroups(), 0u);
    EXPECT_EQ(idx.Find(Key{42}), -1);
    EXPECT_TRUE(idx.Lookup(Key{42}).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, RobustnessTest,
                         ::testing::ValuesIn(AllRankedAlgorithms()), AlgoName);

}  // namespace
}  // namespace anyk
