// Direct unit tests for the admission-control primitives in
// src/server/rate_limiter.h: the token-bucket RateLimiter (via the AdmitAt
// deterministic-time seam), the SessionGauge, and the SessionTicket RAII
// wrapper — including release on exception paths, which previously was only
// covered indirectly through server_test's 429 scenarios.

#include "server/rate_limiter.h"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace anyk {
namespace server {
namespace {

using Clock = RateLimiter::Clock;
using std::chrono::milliseconds;

Clock::time_point T0() {
  // Any fixed point works; AdmitAt only looks at differences.
  return Clock::time_point(std::chrono::seconds(1000));
}

// ---------------------------------------------------------------------------
// RateLimiter: token-bucket refill and burst behavior
// ---------------------------------------------------------------------------

TEST(RateLimiterTest, BurstAdmitsThenRejectsWithoutRefill) {
  const auto t = T0();
  RateLimiter limiter(/*qps=*/10, /*burst=*/3, t);
  // The bucket starts full at `burst`; with no time passing exactly `burst`
  // requests are admitted.
  EXPECT_TRUE(limiter.AdmitAt(t));
  EXPECT_TRUE(limiter.AdmitAt(t));
  EXPECT_TRUE(limiter.AdmitAt(t));
  EXPECT_FALSE(limiter.AdmitAt(t));
  EXPECT_FALSE(limiter.AdmitAt(t));
}

TEST(RateLimiterTest, RefillsAtQpsRate) {
  auto t = T0();
  RateLimiter limiter(/*qps=*/10, /*burst=*/1, t);
  EXPECT_TRUE(limiter.AdmitAt(t));   // drain the single token
  EXPECT_FALSE(limiter.AdmitAt(t));  // empty
  // 10 qps = one token per 100ms. After 50ms only half a token exists.
  t += milliseconds(50);
  EXPECT_FALSE(limiter.AdmitAt(t));
  // 50ms later the bucket holds a full token again.
  t += milliseconds(50);
  EXPECT_TRUE(limiter.AdmitAt(t));
  EXPECT_FALSE(limiter.AdmitAt(t));
}

TEST(RateLimiterTest, RefillCapsAtBurst) {
  auto t = T0();
  RateLimiter limiter(/*qps=*/100, /*burst=*/2, t);
  // A long idle period must not accumulate more than `burst` tokens.
  t += std::chrono::seconds(60);
  EXPECT_TRUE(limiter.AdmitAt(t));
  EXPECT_TRUE(limiter.AdmitAt(t));
  EXPECT_FALSE(limiter.AdmitAt(t));
}

TEST(RateLimiterTest, SteadyStateThroughputMatchesQps) {
  auto t = T0();
  RateLimiter limiter(/*qps=*/5, /*burst=*/1, t);
  EXPECT_TRUE(limiter.AdmitAt(t));  // initial burst token
  // Over 2 simulated seconds at 10 probes/second, exactly qps * 2 = 10 more
  // requests get through (one per 200ms refill).
  size_t admitted = 0;
  for (int i = 0; i < 20; ++i) {
    t += milliseconds(100);
    if (limiter.AdmitAt(t)) ++admitted;
  }
  EXPECT_EQ(admitted, 10u);
}

TEST(RateLimiterTest, ZeroQpsMeansUnlimited) {
  RateLimiter limiter(/*qps=*/0, /*burst=*/0);
  const auto t = T0();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(limiter.AdmitAt(t));
  }
  // The real-clock entry point takes the same path.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(limiter.Admit());
  }
}

TEST(RateLimiterTest, NegativeQpsAlsoDisablesLimiting) {
  RateLimiter limiter(/*qps=*/-1, /*burst=*/0);
  EXPECT_TRUE(limiter.AdmitAt(T0()));
}

TEST(RateLimiterTest, ConcurrentAdmitsNeverExceedBudget) {
  // 4 threads hammer a bucket holding exactly 16 tokens (no refill: all
  // probes use the same timestamp). The mutex must make admissions exact.
  const auto t = T0();
  RateLimiter limiter(/*qps=*/0.001, /*burst=*/16, t);
  std::vector<std::thread> threads;
  std::vector<size_t> admitted(4, 0);
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&limiter, &admitted, t, w] {
      for (int i = 0; i < 1000; ++i) {
        if (limiter.AdmitAt(t)) ++admitted[w];
      }
    });
  }
  for (std::thread& th : threads) th.join();
  size_t total = 0;
  for (size_t a : admitted) total += a;
  EXPECT_EQ(total, 16u);
}

// ---------------------------------------------------------------------------
// SessionGauge
// ---------------------------------------------------------------------------

TEST(SessionGaugeTest, AcquireUpToMaxThenReject) {
  SessionGauge gauge(2);
  EXPECT_EQ(gauge.max(), 2u);
  EXPECT_TRUE(gauge.TryAcquire());
  EXPECT_TRUE(gauge.TryAcquire());
  EXPECT_FALSE(gauge.TryAcquire());
  EXPECT_EQ(gauge.live(), 2u);
  gauge.Release();
  EXPECT_EQ(gauge.live(), 1u);
  EXPECT_TRUE(gauge.TryAcquire());
  EXPECT_FALSE(gauge.TryAcquire());
}

TEST(SessionGaugeTest, PeakTracksHighWaterMark) {
  SessionGauge gauge(8);
  EXPECT_TRUE(gauge.TryAcquire());
  EXPECT_TRUE(gauge.TryAcquire());
  EXPECT_TRUE(gauge.TryAcquire());
  gauge.Release();
  gauge.Release();
  EXPECT_EQ(gauge.live(), 1u);
  EXPECT_EQ(gauge.peak(), 3u);
}

TEST(SessionGaugeTest, ZeroMaxRejectsEverything) {
  SessionGauge gauge(0);
  EXPECT_FALSE(gauge.TryAcquire());
  EXPECT_EQ(gauge.live(), 0u);
}

TEST(SessionGaugeTest, ReleaseWithoutAcquireIsHarmless) {
  SessionGauge gauge(1);
  gauge.Release();  // must not underflow
  EXPECT_EQ(gauge.live(), 0u);
  EXPECT_TRUE(gauge.TryAcquire());
}

// ---------------------------------------------------------------------------
// SessionTicket RAII
// ---------------------------------------------------------------------------

TEST(SessionTicketTest, ReleasesOnScopeExit) {
  SessionGauge gauge(1);
  ASSERT_TRUE(gauge.TryAcquire());
  {
    SessionTicket ticket(&gauge);
    EXPECT_EQ(gauge.live(), 1u);
  }
  EXPECT_EQ(gauge.live(), 0u);
}

TEST(SessionTicketTest, ReleasesWhenAnExceptionUnwindsTheScope) {
  SessionGauge gauge(1);
  ASSERT_TRUE(gauge.TryAcquire());
  EXPECT_EQ(gauge.live(), 1u);
  try {
    SessionTicket ticket(&gauge);
    throw std::runtime_error("request handler blew up");
  } catch (const std::runtime_error&) {
    // The ticket's destructor ran during unwinding.
  }
  EXPECT_EQ(gauge.live(), 0u);
  // The slot is genuinely reusable afterwards.
  EXPECT_TRUE(gauge.TryAcquire());
  EXPECT_FALSE(gauge.TryAcquire());
}

TEST(SessionTicketTest, DefaultConstructedHoldsNothing) {
  { SessionTicket ticket; }  // must not crash or touch any gauge
  SUCCEED();
}

TEST(SessionTicketTest, MoveTransfersOwnershipExactlyOnce) {
  SessionGauge gauge(2);
  ASSERT_TRUE(gauge.TryAcquire());
  {
    SessionTicket a(&gauge);
    SessionTicket b(std::move(a));  // a is now empty
    EXPECT_EQ(gauge.live(), 1u);
  }  // only b releases
  EXPECT_EQ(gauge.live(), 0u);
}

TEST(SessionTicketTest, MoveAssignmentReleasesThePreviousSlot) {
  SessionGauge gauge(2);
  ASSERT_TRUE(gauge.TryAcquire());
  ASSERT_TRUE(gauge.TryAcquire());
  EXPECT_EQ(gauge.live(), 2u);
  {
    SessionTicket a(&gauge);
    SessionTicket b(&gauge);
    b = std::move(a);  // b's original slot is released immediately
    EXPECT_EQ(gauge.live(), 1u);
  }
  EXPECT_EQ(gauge.live(), 0u);
}

TEST(SessionTicketTest, SelfMoveAssignmentIsSafe) {
  SessionGauge gauge(1);
  ASSERT_TRUE(gauge.TryAcquire());
  {
    SessionTicket a(&gauge);
    SessionTicket& alias = a;
    a = std::move(alias);
    EXPECT_EQ(gauge.live(), 1u);
  }
  EXPECT_EQ(gauge.live(), 0u);
}

}  // namespace
}  // namespace server
}  // namespace anyk
