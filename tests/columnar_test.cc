// Columnar-vs-row-major differential oracle (PR-8).
//
// The storage layer is structure-of-arrays now; every production code path
// reads column segments. This suite pins that the conversion changed the
// *layout only*: a thin row-oriented reference join — backtracking over
// RowMajorTable snapshots (storage/row_reference.h, the pre-columnar
// interleaved layout) with per-atom key→rows maps, never touching Relation,
// GroupIndex, the stage graph or the kernels — must produce exactly the
// answers the columnar pipeline enumerates, for the 200-query corpus
// (tests/corpus.h) × all four dioids × all six algorithms plus `auto`.
//
// Comparison is rank-exact on weights and exact on tie-group contents:
// answers are sorted by dioid weight and each maximal equal-weight run is
// canonicalized (sorted by witness, then assignment) on both sides — the
// same discipline differential_test applies for the non-cancellative
// dioids, here used uniformly because the reference join has no tie-break
// machinery. Within distinct weights the match is byte-for-byte.
//
// A second suite pins kernel-flavor equivalence end to end: the same drains
// under KernelKind::kScalar and kUnrolled must be byte-identical.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "anyk/ranked_query.h"
#include "dioid/dioid.h"
#include "dioid/lift.h"
#include "dioid/max_plus.h"
#include "dioid/max_times.h"
#include "dioid/min_max.h"
#include "dioid/tropical.h"
#include "query/cq.h"
#include "storage/database.h"
#include "storage/row_reference.h"
#include "storage/value.h"

#include "corpus.h"

namespace anyk {
namespace {

using corpus::GeneratedCase;
using corpus::MakeCase;

// Runaway-output guard only: the largest corpus case yields ~63k answers,
// so the cap never truncates a legitimate drain.
constexpr size_t kCap = 150000;

struct Answer {
  double weight = 0;
  std::vector<Value> assignment;
  std::vector<uint32_t> witness;

  bool operator==(const Answer& o) const = default;
  bool operator<(const Answer& o) const {
    if (weight != o.weight) return weight < o.weight;
    if (witness != o.witness) return witness < o.witness;
    return assignment < o.assignment;
  }
};

// ---------------------------------------------------------------------------
// Row-major reference join: backtracking over the atoms in query order. For
// each atom, candidate rows come from a hash map keyed on the projection
// onto the columns whose variables are bound by earlier atoms (linear build
// per atom over the row-major snapshot); full row consistency — including
// repeated variables within one atom — is re-checked per candidate.
// ---------------------------------------------------------------------------

template <typename B>
std::vector<Answer> RowMajorReference(const Database& db,
                                      const ConjunctiveQuery& q) {
  const size_t na = q.NumAtoms();
  const size_t nv = q.NumVars();

  std::vector<RowMajorTable> tables;
  tables.reserve(na);
  for (size_t a = 0; a < na; ++a) {
    tables.emplace_back(db.Get(q.atom(a).relation));
  }

  // Per atom: columns whose variable is bound before the atom (in fixed
  // query order), and the key→rows map over those columns.
  std::vector<std::vector<uint32_t>> bound_cols(na);
  std::vector<std::unordered_map<Key, std::vector<uint32_t>, KeyHash>>
      maps(na);
  {
    std::vector<bool> bound(nv, false);
    for (size_t a = 0; a < na; ++a) {
      const auto& vars = q.AtomVarIds(a);
      for (size_t c = 0; c < vars.size(); ++c) {
        if (bound[vars[c]]) bound_cols[a].push_back(static_cast<uint32_t>(c));
      }
      const RowMajorTable& t = tables[a];
      for (uint32_t r = 0; r < t.NumRows(); ++r) {
        Key key;
        key.reserve(bound_cols[a].size());
        for (uint32_t c : bound_cols[a]) key.push_back(t.At(r, c));
        maps[a][key].push_back(r);
      }
      for (uint32_t v : vars) bound[v] = true;
    }
  }

  std::vector<Answer> out;
  std::vector<Value> assignment(nv, 0);
  std::vector<bool> bound(nv, false);
  std::vector<uint32_t> witness(na, 0);

  auto recurse = [&](auto&& self, size_t a, typename B::Value w) -> void {
    if (a == na) {
      Answer ans;
      ans.weight = static_cast<double>(w);
      ans.assignment = assignment;
      ans.witness = witness;
      out.push_back(std::move(ans));
      return;
    }
    const RowMajorTable& t = tables[a];
    const auto& vars = q.AtomVarIds(a);
    Key key;
    key.reserve(bound_cols[a].size());
    for (uint32_t c : bound_cols[a]) key.push_back(assignment[vars[c]]);
    const auto it = maps[a].find(key);
    if (it == maps[a].end()) return;
    for (uint32_t r : it->second) {
      // Full consistency over the interleaved row (repeated variables in
      // this atom included), binding fresh variables as we go.
      std::span<const Value> row = t.Row(r);
      std::vector<uint32_t> newly;
      bool ok = true;
      for (size_t c = 0; c < vars.size() && ok; ++c) {
        const uint32_t v = vars[c];
        if (bound[v]) {
          ok = assignment[v] == row[c];
        } else {
          assignment[v] = row[c];
          bound[v] = true;
          newly.push_back(v);
        }
      }
      if (ok) {
        witness[a] = r;
        self(self, a + 1,
             B::Combine(w, LiftWeight<B>(t.Weight(r), a, na, r)));
      }
      for (uint32_t v : newly) bound[v] = false;
    }
  };
  recurse(recurse, 0, B::One());

  std::sort(out.begin(), out.end(), [](const Answer& x, const Answer& y) {
    if (B::Less(x.weight, y.weight)) return true;
    if (B::Less(y.weight, x.weight)) return false;
    return x < y;  // canonical within tie groups
  });
  return out;
}

// ---------------------------------------------------------------------------
// Columnar drains + canonicalization (differential_test's discipline).
// ---------------------------------------------------------------------------

template <typename B>
std::vector<Answer> DrainColumnar(const Database& db,
                                  const ConjunctiveQuery& q, Algorithm algo,
                                  size_t cap,
                                  KernelKind kernels = KernelKind::kAuto) {
  typename RankedQuery<B>::Options opts;
  opts.algorithm = algo;
  opts.enum_opts.kernels = kernels;
  RankedQuery<B> rq(db, q, opts);
  std::vector<Answer> out;
  // Drain through NextBatch with an awkward batch size so the kernelized
  // batched-bind path (not just NextInto) is what the oracle checks.
  std::vector<ResultRow<B>> batch(7);
  while (out.size() < cap) {
    const size_t got = rq.enumerator()->NextBatch(batch.data(), batch.size());
    for (size_t b = 0; b < got && out.size() < cap; ++b) {
      Answer a;
      a.weight = static_cast<double>(batch[b].weight);
      a.assignment = batch[b].assignment;
      a.witness = batch[b].witness;
      out.push_back(std::move(a));
    }
    if (got < batch.size()) break;
  }
  return out;
}

template <typename B>
void CanonicalizeTieGroups(std::vector<Answer>* answers) {
  size_t i = 0;
  while (i < answers->size()) {
    size_t j = i + 1;
    while (j < answers->size() &&
           DioidEq<B>((*answers)[j].weight, (*answers)[i].weight)) {
      ++j;
    }
    std::sort(answers->begin() + i, answers->begin() + j);
    i = j;
  }
}

std::vector<Algorithm> AllColumns() {
  auto v = AllAnyKAlgorithms();
  v.push_back(Algorithm::kAuto);
  return v;
}

template <typename B>
void ExpectColumnarMatchesRowMajor(const GeneratedCase& c,
                                   const char* dioid_name) {
  std::vector<Answer> want = RowMajorReference<B>(c.db, c.q);
  ASSERT_LT(want.size(), kCap) << c.label << ": corpus case too large";
  for (Algorithm algo : AllColumns()) {
    std::vector<Answer> got = DrainColumnar<B>(c.db, c.q, algo, kCap);
    CanonicalizeTieGroups<B>(&got);
    ASSERT_EQ(got.size(), want.size())
        << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
        << ": columnar result count diverges from the row-major reference";
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
          << ": rank " << i << " diverges (weight " << got[i].weight
          << " vs " << want[i].weight << ")";
    }
  }
}

class ColumnarDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColumnarDifferentialTest, ColumnarPathMatchesRowMajorReference) {
  const uint64_t block = GetParam();
  constexpr uint64_t kBlockSize = 25;
  for (uint64_t s = 0; s < kBlockSize; ++s) {
    const uint64_t seed = block * kBlockSize + s + 1;
    const GeneratedCase c = MakeCase(seed);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " " + c.label + " " +
                 c.q.ToString());
    ExpectColumnarMatchesRowMajor<TropicalDioid>(c, "min-sum");
    ExpectColumnarMatchesRowMajor<MaxPlusDioid>(c, "max-sum");
    ExpectColumnarMatchesRowMajor<MinMaxDioid>(c, "min-max");
    ExpectColumnarMatchesRowMajor<MaxTimesDioid>(c, "max-times");
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, ColumnarDifferentialTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "block" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Kernel-flavor equivalence end to end: scalar and unrolled drains must be
// byte-identical (no canonicalization — identical machines, identical
// tie resolution).
// ---------------------------------------------------------------------------

TEST(KernelFlavorTest, ScalarAndUnrolledDrainsAreByteIdentical) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const GeneratedCase c = MakeCase(seed);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " " + c.label);
    for (Algorithm algo : {Algorithm::kLazy, Algorithm::kBatch}) {
      const auto scalar = DrainColumnar<TropicalDioid>(
          c.db, c.q, algo, kCap, KernelKind::kScalar);
      const auto unrolled = DrainColumnar<TropicalDioid>(
          c.db, c.q, algo, kCap, KernelKind::kUnrolled);
      ASSERT_EQ(scalar.size(), unrolled.size()) << AlgorithmName(algo);
      for (size_t i = 0; i < scalar.size(); ++i) {
        ASSERT_EQ(scalar[i], unrolled[i])
            << AlgorithmName(algo) << ": rank " << i;
      }
    }
  }
}

// The RowMajorTable snapshot itself round-trips the columnar data exactly.
TEST(RowReferenceTest, SnapshotMatchesRelation) {
  Relation rel("R", 3);
  rel.Add({1, 2, 3}, 0.5);
  rel.Add({4, 5, 6}, 1.5);
  rel.Add({7, 8, 9}, -2.0);
  RowMajorTable t(rel);
  ASSERT_EQ(t.NumRows(), rel.NumRows());
  ASSERT_EQ(t.arity(), rel.arity());
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(t.Weight(r), rel.Weight(r));
    for (size_t c = 0; c < rel.arity(); ++c) {
      EXPECT_EQ(t.At(r, c), rel.At(r, c));
    }
    // The reference reader keeps the old contiguous-span Row contract.
    std::span<const Value> row = t.Row(r);
    ASSERT_EQ(row.size(), rel.arity());
    for (size_t c = 0; c < rel.arity(); ++c) EXPECT_EQ(row[c], rel.At(r, c));
  }
}

}  // namespace
}  // namespace anyk
