// Workload generator tests: shapes and sizes of the synthetic instances and
// the analytic adversarial databases (I1, I2, factorized-bad).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "join/brute_force.h"
#include "query/cq.h"
#include "workload/generators.h"
#include "workload/graph_gen.h"
#include "workload/pagerank.h"
#include "workload/paper_instances.h"

namespace anyk {
namespace {

TEST(GeneratorTest, PathDatabaseShape) {
  Database db = MakePathDatabase(100, 3, 1);
  EXPECT_EQ(db.NumRelations(), 3u);
  EXPECT_EQ(db.Get("R1").NumRows(), 100u);
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_LT(db.Get("R2").At(r, 0), 10);  // domain n/fanout = 10
    EXPECT_GE(db.Get("R2").Weight(r), 0.0);
    EXPECT_LE(db.Get("R2").Weight(r), 10000.0);
  }
}

TEST(GeneratorTest, Deterministic) {
  Database a = MakePathDatabase(50, 2, 7);
  Database b = MakePathDatabase(50, 2, 7);
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(a.Get("R1").At(r, 0), b.Get("R1").At(r, 0));
    EXPECT_EQ(a.Get("R1").Weight(r), b.Get("R1").Weight(r));
  }
}

TEST(GeneratorTest, WorstCaseCycleOutputSize) {
  // Every (i, 0, j, 0) combination is a 4-cycle: output = 2*(n/2)^2 for the
  // construction with both "spoke" directions.
  const size_t n = 20;
  Database db = MakeWorstCaseCycleDatabase(n, 4, 3);
  auto rs = BruteForceJoin(db, ConjunctiveQuery::Cycle(4));
  // Paths 0 -> i -> 0 -> j -> 0 plus i -> 0 -> j -> 0 -> i patterns; the
  // construction guarantees Θ((n/2)^2) output.
  EXPECT_GE(rs.size(), (n / 2) * (n / 2));
}

TEST(GeneratorTest, RecursiveWorstCaseWeightsSeparateStages) {
  const size_t n = 5, l = 3;
  Database db = MakeRecursiveWorstCaseDatabase(n, l);
  // Tuple j of relation i weighs j * (n+1)^{l-1-i}: stage 1 in steps of 36,
  // stage 2 in steps of 6, stage 3 in steps of 1.
  EXPECT_DOUBLE_EQ(db.Get("R1").Weight(0), 36.0);
  EXPECT_DOUBLE_EQ(db.Get("R2").Weight(4), 30.0);
  EXPECT_DOUBLE_EQ(db.Get("R3").Weight(2), 3.0);
  // Adversarial property: the first n results differ only in the last
  // relation, i.e. any stage-1/stage-2 deviation outweighs the whole span of
  // stage 3.
  EXPECT_GT(db.Get("R2").Weight(1) - db.Get("R2").Weight(0),
            db.Get("R3").Weight(n - 1) - db.Get("R3").Weight(0));
}

TEST(PaperInstanceTest, I1HasQuadraticOutput) {
  const size_t n = 10;
  Database db = MakeI1Database(n, 5);
  EXPECT_EQ(db.Get("R1").NumRows(), 2 * n);
  auto rs = BruteForceJoin(db, ConjunctiveQuery::Cycle(4));
  // (a0, b_j, c0, d_i) combinations alone give n^2 results.
  EXPECT_GE(rs.size(), n * n);
}

TEST(PaperInstanceTest, I2TopResultUsesLightLightHeavy) {
  const size_t n = 12;
  Database db = MakeI2Database(n);
  // Max-plus top-1: r0 + s0 + t0 = 1 + 10 + 100n.
  double best = -1;
  auto rs = BruteForceJoin(db, ConjunctiveQuery::Path(3));
  for (size_t i = 0; i < rs.size(); ++i) {
    double w = 0;
    for (size_t a = 0; a < 3; ++a) {
      w += db.Get("R" + std::to_string(a + 1)).Weight(rs.witness(i)[a]);
    }
    best = std::max(best, w);
  }
  EXPECT_DOUBLE_EQ(best, 1.0 + 10.0 + 100.0 * n);
}

TEST(PaperInstanceTest, FactorizedBadIsFullProduct) {
  Database db = MakeFactorizedBadDatabase(15, 1);
  auto rs = BruteForceJoin(db, ConjunctiveQuery::Path(2));
  EXPECT_EQ(rs.size(), 225u);
}

TEST(GraphGenTest, PowerLawIsSkewed) {
  auto edges = MakePowerLawEdges(2000, 20000, 1.0, 11);
  EXPECT_GE(edges.size(), 19000u);
  GraphStats stats = ComputeGraphStats(2000, edges);
  // Max degree should far exceed the average under a power law.
  EXPECT_GT(stats.max_degree, static_cast<size_t>(stats.avg_degree * 5));
  // No self loops, no duplicates.
  for (const auto& [u, v] : edges) EXPECT_NE(u, v);
}

TEST(GraphGenTest, StandInsProduceRelations) {
  GraphStats stats;
  Database bitcoin = MakeBitcoinStandIn(500, 3000, 4, 13, &stats);
  EXPECT_EQ(bitcoin.NumRelations(), 4u);
  EXPECT_EQ(bitcoin.Get("R1").NumRows(), stats.edges);
  for (size_t r = 0; r < bitcoin.Get("R1").NumRows(); ++r) {
    EXPECT_GE(bitcoin.Get("R1").Weight(r), 0.0);
    EXPECT_LE(bitcoin.Get("R1").Weight(r), 20.0);
  }
  Database twitter = MakeTwitterStandIn(500, 3000, 3, 17);
  EXPECT_EQ(twitter.NumRelations(), 3u);
}

TEST(PageRankTest, UniformOnSymmetricGraph) {
  // 4-cycle graph: all nodes have equal rank.
  std::vector<std::pair<uint32_t, uint32_t>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}};
  auto pr = PageRank(4, edges);
  double sum = 0;
  for (double p : pr) {
    EXPECT_NEAR(p, 0.25, 1e-9);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankTest, SinkAttractsRank) {
  // Star pointing at node 0: node 0 must outrank the leaves.
  std::vector<std::pair<uint32_t, uint32_t>> edges = {{1, 0}, {2, 0}, {3, 0}};
  auto pr = PageRank(4, edges);
  EXPECT_GT(pr[0], pr[1]);
  EXPECT_NEAR(pr[1], pr[2], 1e-12);
  double sum = pr[0] + pr[1] + pr[2] + pr[3];
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace anyk
