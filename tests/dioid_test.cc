// Algebraic-law property tests for every selective dioid (paper Section 2.2,
// Definition 3): associativity, commutativity and selectivity of ⊕,
// associativity of ⊗, identities, absorption, distributivity, and the order
// induced by ⊕. Laws are checked over randomly sampled elements.

#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dioid/boolean.h"
#include "dioid/dioid.h"
#include "dioid/lex.h"
#include "dioid/max_plus.h"
#include "dioid/max_times.h"
#include "dioid/min_max.h"
#include "dioid/tiebreak.h"
#include "dioid/tropical.h"
#include "util/random.h"

namespace anyk {
namespace {

// Sample generators per dioid.
template <typename D>
struct Sampler;

template <>
struct Sampler<TropicalDioid> {
  static double Sample(Rng* rng) {
    return static_cast<double>(rng->Uniform(-50, 50));
  }
};
template <>
struct Sampler<MaxPlusDioid> {
  static double Sample(Rng* rng) {
    return static_cast<double>(rng->Uniform(-50, 50));
  }
};
template <>
struct Sampler<BooleanDioid> {
  static uint8_t Sample(Rng* rng) { return rng->Bernoulli(0.5) ? 1 : 0; }
};
template <>
struct Sampler<MaxTimesDioid> {
  static double Sample(Rng* rng) {
    return static_cast<double>(rng->Uniform(0, 20));
  }
};
template <>
struct Sampler<MinMaxDioid> {
  static double Sample(Rng* rng) {
    return static_cast<double>(rng->Uniform(-20, 20));
  }
};
template <>
struct Sampler<LexDioid<4>> {
  static LexDioid<4>::Value Sample(Rng* rng) {
    LexDioid<4>::Value v{};
    for (auto& x : v) x = static_cast<double>(rng->Uniform(0, 5));
    return v;
  }
};

template <typename D>
class DioidLawTest : public ::testing::Test {
 protected:
  std::vector<typename D::Value> Samples(size_t count) {
    Rng rng(0xD101D + count);
    std::vector<typename D::Value> out;
    out.reserve(count + 2);
    out.push_back(D::One());
    out.push_back(D::Zero());
    for (size_t i = 0; i < count; ++i) out.push_back(Sampler<D>::Sample(&rng));
    return out;
  }
};

using Dioids = ::testing::Types<TropicalDioid, MaxPlusDioid, BooleanDioid,
                                MaxTimesDioid, MinMaxDioid, LexDioid<4>>;
TYPED_TEST_SUITE(DioidLawTest, Dioids);

TYPED_TEST(DioidLawTest, PlusIsSelectiveCommutativeAssociative) {
  using D = TypeParam;
  auto xs = this->Samples(12);
  for (const auto& a : xs) {
    for (const auto& b : xs) {
      auto ab = DioidPlus<D>(a, b);
      // Selectivity: a ⊕ b is one of the operands.
      EXPECT_TRUE(DioidEq<D>(ab, a) || DioidEq<D>(ab, b));
      // Commutativity (as elements of the induced order).
      EXPECT_TRUE(DioidEq<D>(ab, DioidPlus<D>(b, a)));
      for (const auto& c : xs) {
        EXPECT_TRUE(DioidEq<D>(DioidPlus<D>(DioidPlus<D>(a, b), c),
                               DioidPlus<D>(a, DioidPlus<D>(b, c))));
      }
    }
  }
}

TYPED_TEST(DioidLawTest, CombineAssociativeWithIdentity) {
  using D = TypeParam;
  auto xs = this->Samples(10);
  for (const auto& a : xs) {
    EXPECT_TRUE(DioidEq<D>(D::Combine(a, D::One()), a));
    EXPECT_TRUE(DioidEq<D>(D::Combine(D::One(), a), a));
    // 0̄ absorbs.
    EXPECT_TRUE(DioidEq<D>(D::Combine(a, D::Zero()), D::Zero()));
    for (const auto& b : xs) {
      for (const auto& c : xs) {
        EXPECT_TRUE(DioidEq<D>(D::Combine(D::Combine(a, b), c),
                               D::Combine(a, D::Combine(b, c))));
      }
    }
  }
}

TYPED_TEST(DioidLawTest, Distributivity) {
  using D = TypeParam;
  auto xs = this->Samples(10);
  for (const auto& a : xs) {
    for (const auto& b : xs) {
      for (const auto& c : xs) {
        EXPECT_TRUE(DioidEq<D>(D::Combine(DioidPlus<D>(a, b), c),
                               DioidPlus<D>(D::Combine(a, c), D::Combine(b, c))));
      }
    }
  }
}

TYPED_TEST(DioidLawTest, OrderIsTotal) {
  using D = TypeParam;
  auto xs = this->Samples(12);
  for (const auto& a : xs) {
    EXPECT_FALSE(D::Less(a, a));  // irreflexive
    for (const auto& b : xs) {
      // Totality: exactly one of <, >, ==.
      const int rel = (D::Less(a, b) ? 1 : 0) + (D::Less(b, a) ? 1 : 0);
      EXPECT_LE(rel, 1);
      // Zero is the maximum (worst) element.
      EXPECT_FALSE(D::Less(D::Zero(), a));
    }
  }
}

TYPED_TEST(DioidLawTest, CombineIsMonotone) {
  using D = TypeParam;
  auto xs = this->Samples(10);
  for (const auto& a : xs) {
    for (const auto& b : xs) {
      for (const auto& c : xs) {
        if (!D::Less(b, a)) {  // a <= b
          EXPECT_FALSE(D::Less(D::Combine(b, c), D::Combine(a, c)))
              << "combine must be non-decreasing";
        }
      }
    }
  }
}

TYPED_TEST(DioidLawTest, SubtractInvertsCombine) {
  using D = TypeParam;
  if constexpr (D::kHasInverse) {
    auto xs = this->Samples(10);
    for (const auto& a : xs) {
      for (const auto& b : xs) {
        if (DioidEq<D>(a, D::Zero()) || DioidEq<D>(b, D::Zero())) continue;
        EXPECT_TRUE(DioidEq<D>(D::Subtract(D::Combine(a, b), b), a));
      }
    }
  }
}

// Tie-breaking adapter (Section 6.3): never equates distinct witnesses, and
// subtract undoes combine at the id level too.
TEST(TieBreakTest, DistinctRowsNeverEqual) {
  using TB = TieBreakDioid<TropicalDioid, 4>;
  auto a = TB::FromWeightRow(5.0, 0, 3, 7);
  auto b = TB::FromWeightRow(5.0, 0, 3, 9);
  EXPECT_TRUE(TB::Less(a, b));
  EXPECT_FALSE(TB::Less(b, a));
  auto c = TB::FromWeightRow(5.0, 1, 3, 7);
  auto ac = TB::Combine(a, c);
  EXPECT_EQ(ac.id[0], 7);
  EXPECT_EQ(ac.id[1], 7);
  EXPECT_EQ(ac.id[2], TB::kUnset);
  auto back = TB::Subtract(ac, c);
  EXPECT_EQ(back.id[0], 7);
  EXPECT_EQ(back.id[1], TB::kUnset);
  EXPECT_DOUBLE_EQ(back.base, 5.0);
}

TEST(TieBreakTest, BaseOrderDominates) {
  using TB = TieBreakDioid<TropicalDioid, 4>;
  auto light = TB::FromWeightRow(1.0, 0, 2, 999);
  auto heavy = TB::FromWeightRow(2.0, 0, 2, 0);
  EXPECT_TRUE(TB::Less(light, heavy));
}

}  // namespace
}  // namespace anyk
