// Unit tests for the utility layer: heaps (binary + pairing), heapify, RNG,
// timer. The heap tests are deliberately exhaustive over decrease-key and
// meld edge cases: every any-k variant's asymptotics rest on these structures
// behaving exactly as advertised.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/binary_heap.h"
#include "util/checkpoints.h"
#include "util/dary_heap.h"
#include "util/pairing_heap.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace anyk {
namespace {

// ---------------------------------------------------------------------------
// BinaryHeap
// ---------------------------------------------------------------------------

TEST(BinaryHeapTest, SortsRandomSequence) {
  Rng rng(1);
  BinaryHeap<int> heap;
  std::vector<int> values;
  for (int i = 0; i < 1000; ++i) {
    int v = static_cast<int>(rng.Uniform(-500, 500));
    values.push_back(v);
    heap.Push(v);
  }
  std::sort(values.begin(), values.end());
  for (int v : values) EXPECT_EQ(heap.PopMin(), v);
  EXPECT_TRUE(heap.Empty());
}

TEST(BinaryHeapTest, AssignHeapifies) {
  Rng rng(2);
  std::vector<int> values;
  for (int i = 0; i < 777; ++i) {
    values.push_back(static_cast<int>(rng.Uniform(0, 100)));
  }
  BinaryHeap<int> heap;
  heap.Assign(values);
  std::sort(values.begin(), values.end());
  for (int v : values) EXPECT_EQ(heap.PopMin(), v);
}

TEST(BinaryHeapTest, EmptySingleAndClear) {
  BinaryHeap<int> heap;
  EXPECT_TRUE(heap.Empty());
  EXPECT_EQ(heap.Size(), 0u);
  heap.Assign({});
  EXPECT_TRUE(heap.Empty());
  heap.Push(42);
  EXPECT_FALSE(heap.Empty());
  EXPECT_EQ(heap.Size(), 1u);
  EXPECT_EQ(heap.Min(), 42);
  EXPECT_EQ(heap.PopMin(), 42);
  EXPECT_TRUE(heap.Empty());
  heap.Push(1);
  heap.Push(2);
  heap.Clear();
  EXPECT_TRUE(heap.Empty());
  EXPECT_EQ(heap.Size(), 0u);
}

TEST(BinaryHeapTest, AllEqualElements) {
  BinaryHeap<int> heap;
  for (int i = 0; i < 64; ++i) heap.Push(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(heap.PopMin(), 7);
  EXPECT_TRUE(heap.Empty());
}

TEST(BinaryHeapTest, CustomComparatorMakesMaxHeap) {
  BinaryHeap<int, std::greater<int>> heap;
  heap.Assign({3, 1, 4, 1, 5, 9, 2, 6});
  std::vector<int> got;
  while (!heap.Empty()) got.push_back(heap.PopMin());
  EXPECT_EQ(got, (std::vector<int>{9, 6, 5, 4, 3, 2, 1, 1}));
}

TEST(BinaryHeapTest, MoveOnlyElements) {
  BinaryHeap<std::unique_ptr<int>,
             decltype([](const std::unique_ptr<int>& a,
                         const std::unique_ptr<int>& b) { return *a < *b; })>
      heap;
  for (int v : {5, 1, 3, 2, 4}) heap.Push(std::make_unique<int>(v));
  for (int want : {1, 2, 3, 4, 5}) EXPECT_EQ(*heap.PopMin(), want);
}

TEST(BinaryHeapTest, HeapifyEstablishesHeapProperty) {
  Rng rng(3);
  std::vector<int> v;
  for (int i = 0; i < 500; ++i) v.push_back(static_cast<int>(rng.Uniform(0, 50)));
  Heapify(&v, std::less<int>());
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_LE(v[(i - 1) / 2], v[i]) << "heap property violated at " << i;
  }
}

TEST(BinaryHeapTest, HeapifyEdgeShapes) {
  for (std::vector<int> v : std::vector<std::vector<int>>{
           {},
           {1},
           {1, 2},
           {2, 1},
           {1, 2, 3, 4, 5},
           {5, 4, 3, 2, 1},
           {3, 3, 3, 3},
       }) {
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    Heapify(&v, std::less<int>());
    for (size_t i = 1; i < v.size(); ++i) {
      EXPECT_LE(v[(i - 1) / 2], v[i]);
    }
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted) << "heapify must be a permutation";
  }
}

TEST(BinaryHeapTest, PushBulkMatchesIndividualPushes) {
  Rng rng(9);
  BinaryHeap<int> bulk, single;
  std::vector<int> batch;
  bulk.PushBulk(batch);  // empty batch is a no-op
  EXPECT_TRUE(bulk.Empty());
  for (int round = 0; round < 50; ++round) {
    batch.clear();
    for (int i = 0; i < 20; ++i) {
      batch.push_back(static_cast<int>(rng.Uniform(0, 1000)));
    }
    bulk.PushBulk(batch);
    for (int v : batch) single.Push(v);
    EXPECT_EQ(bulk.PopMin(), single.PopMin());
  }
  while (!single.Empty()) EXPECT_EQ(bulk.PopMin(), single.PopMin());
  EXPECT_TRUE(bulk.Empty());
}

TEST(BinaryHeapTest, ReplaceMin) {
  BinaryHeap<int> heap;
  heap.Assign({5, 3, 8});
  EXPECT_EQ(heap.ReplaceMin(1), 3);
  EXPECT_EQ(heap.Min(), 1);
  EXPECT_EQ(heap.ReplaceMin(9), 1);
  EXPECT_EQ(heap.PopMin(), 5);
  EXPECT_EQ(heap.PopMin(), 8);
  EXPECT_EQ(heap.PopMin(), 9);
}

TEST(BinaryHeapTest, ReplaceMinOnSingletonHeap) {
  BinaryHeap<int> heap;
  heap.Push(10);
  EXPECT_EQ(heap.ReplaceMin(20), 10);
  EXPECT_EQ(heap.Size(), 1u);
  EXPECT_EQ(heap.PopMin(), 20);
}

// Take2 never pops a static heap: it navigates the array through Slot(),
// reading children 2i+1 / 2i+2. The invariant it relies on is exactly the
// heap property over slots.
TEST(BinaryHeapTest, SlotNavigationSeesHeapOrder) {
  Rng rng(11);
  std::vector<int> values;
  for (int i = 0; i < 300; ++i) {
    values.push_back(static_cast<int>(rng.Uniform(0, 1 << 15)));
  }
  BinaryHeap<int> heap;
  heap.Assign(values);
  for (size_t i = 0; i < heap.Size(); ++i) {
    const size_t left = 2 * i + 1, right = 2 * i + 2;
    if (left < heap.Size()) {
      EXPECT_LE(heap.Slot(i), heap.Slot(left));
    }
    if (right < heap.Size()) {
      EXPECT_LE(heap.Slot(i), heap.Slot(right));
    }
  }
  EXPECT_EQ(heap.Slot(0), heap.Min());
}

TEST(BinaryHeapTest, StressInterleaved) {
  Rng rng(4);
  BinaryHeap<int> heap;
  std::vector<int> mirror;
  for (int round = 0; round < 5000; ++round) {
    if (mirror.empty() || rng.Bernoulli(0.6)) {
      int v = static_cast<int>(rng.Uniform(0, 1 << 20));
      heap.Push(v);
      mirror.push_back(v);
      std::push_heap(mirror.begin(), mirror.end(), std::greater<int>());
    } else {
      std::pop_heap(mirror.begin(), mirror.end(), std::greater<int>());
      int want = mirror.back();
      mirror.pop_back();
      EXPECT_EQ(heap.PopMin(), want);
    }
  }
}

// ---------------------------------------------------------------------------
// DAryHeap: differential oracle against std::priority_queue across arities,
// duplicate-heavy keys, bulk builds and tiny sizes (the hot-path candidate
// queues of the budget-aware top-k work ride on this structure).
// ---------------------------------------------------------------------------

template <size_t Arity>
void DAryHeapMatchesPriorityQueue(uint64_t seed) {
  Rng rng(seed);
  DAryHeap<int, std::less<int>, std::allocator<int>, Arity> heap;
  std::priority_queue<int, std::vector<int>, std::greater<int>> oracle;
  for (int round = 0; round < 4000; ++round) {
    if (oracle.empty() || rng.Bernoulli(0.55)) {
      // Narrow key domain: plenty of duplicates.
      const int v = static_cast<int>(rng.Uniform(0, 40));
      heap.Push(v);
      oracle.push(v);
    } else {
      ASSERT_EQ(heap.Min(), oracle.top());
      EXPECT_EQ(heap.PopMin(), oracle.top());
      oracle.pop();
    }
  }
  while (!oracle.empty()) {
    EXPECT_EQ(heap.PopMin(), oracle.top());
    oracle.pop();
  }
  EXPECT_TRUE(heap.Empty());
}

TEST(DAryHeapTest, MatchesPriorityQueueAcrossArities) {
  DAryHeapMatchesPriorityQueue<2>(11);
  DAryHeapMatchesPriorityQueue<4>(12);
  DAryHeapMatchesPriorityQueue<8>(13);
}

TEST(DAryHeapTest, BuildFromBulkHeapifiesEverySmallSize) {
  // Tiny capacities are where child-index arithmetic goes wrong.
  Rng rng(21);
  for (size_t n = 0; n <= 33; ++n) {
    std::vector<int> v(n);
    for (auto& x : v) x = static_cast<int>(rng.Uniform(0, 10));
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    DAryHeap<int> heap;
    heap.BuildFrom(std::move(v));
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(heap.PopMin(), sorted[i]) << "n=" << n << " i=" << i;
    }
    EXPECT_TRUE(heap.Empty());
  }
}

TEST(DAryHeapTest, PushBulkMatchesIndividualPushes) {
  Rng rng(22);
  DAryHeap<int> bulk, single;
  std::vector<int> seeded(40);
  for (auto& x : seeded) x = static_cast<int>(rng.Uniform(0, 1000));
  std::vector<int> extra(200);  // > size/2: triggers the re-heapify path
  for (auto& x : extra) x = static_cast<int>(rng.Uniform(0, 1000));
  bulk.BuildFrom(std::vector<int>(seeded));
  for (int x : seeded) single.Push(x);
  bulk.PushBulk(extra);
  for (int x : extra) single.Push(x);
  ASSERT_EQ(bulk.Size(), single.Size());
  while (!single.Empty()) EXPECT_EQ(bulk.PopMin(), single.PopMin());
}

TEST(DAryHeapTest, ReplaceMinAndMoveOnly) {
  DAryHeap<int> heap;
  heap.BuildFrom({5, 9, 7});
  EXPECT_EQ(heap.ReplaceMin(1), 5);
  EXPECT_EQ(heap.Min(), 1);
  EXPECT_EQ(heap.ReplaceMin(20), 1);
  EXPECT_EQ(heap.PopMin(), 7);

  DAryHeap<std::unique_ptr<int>,
           decltype([](const auto& a, const auto& b) { return *a < *b; })>
      mo;
  mo.Push(std::make_unique<int>(3));
  mo.Push(std::make_unique<int>(1));
  mo.Push(std::make_unique<int>(2));
  EXPECT_EQ(*mo.PopMin(), 1);
  EXPECT_EQ(*mo.PopMin(), 2);
  EXPECT_EQ(*mo.PopMin(), 3);
}

// ---------------------------------------------------------------------------
// BoundedHeap: with a budget of r pops, the first r pops must byte-match an
// unbounded run, the array must stay O(r), and ties at the bound must
// survive pruning.
// ---------------------------------------------------------------------------

TEST(BoundedHeapTest, BudgetedPopsMatchUnboundedPrefix) {
  for (const size_t budget : {1u, 2u, 7u, 50u, 400u}) {
    Rng rng(100 + budget);
    BoundedHeap<int> bounded;
    DAryHeap<int> plain;
    bounded.SetBudget(budget);
    // Interleave pushes and pops the way a Lawler candidate queue does:
    // pop one, push a few successors no lighter than the popped element.
    std::vector<int> popped_b, popped_p;
    bounded.Push(0);
    plain.Push(0);
    while (popped_b.size() < budget && !bounded.Empty()) {
      const int top_b = bounded.PopMin();
      const int top_p = plain.PopMin();
      popped_b.push_back(top_b);
      popped_p.push_back(top_p);
      const size_t succ = rng.Below(4);
      for (size_t s = 0; s < succ; ++s) {
        const int child = top_b + static_cast<int>(rng.Uniform(0, 20));
        bounded.Push(child);
        plain.Push(child);
      }
    }
    EXPECT_EQ(popped_b, popped_p) << "budget=" << budget;
    // O(k) bound: the compaction cap (doubled once for the tie-group
    // watermark) plus in-flight pushes — never the O(pushes) of a plain heap.
    EXPECT_LE(bounded.stats().max_size,
              4 * std::max<size_t>(2 * budget,
                                   BoundedHeap<int>::kMinCompactSize))
        << "budget=" << budget;
  }
}

TEST(BoundedHeapTest, TiesAtTheBoundSurvive) {
  BoundedHeap<int> heap;
  heap.SetBudget(2);
  // Push far past the compaction cap with *one* distinct key: nothing is
  // strictly worse than the bound, so nothing may be discarded.
  for (int i = 0; i < 500; ++i) heap.Push(7);
  EXPECT_EQ(heap.Size(), 500u);
  EXPECT_EQ(heap.stats().pruned_pushes, 0u);
  // Now a strictly worse key: once a bound exists it must be pruned.
  heap.Push(3);  // strictly better, must be kept
  EXPECT_EQ(heap.PopMin(), 3);
}

TEST(BoundedHeapTest, StrictlyWorseCandidatesArePruned) {
  BoundedHeap<int> heap;
  heap.SetBudget(4);
  for (int i = 0; i < 1000; ++i) heap.Push(i);
  EXPECT_GT(heap.stats().pruned_pushes, 0u);
  EXPECT_GT(heap.stats().compactions, 0u);
  for (int want = 0; want < 4; ++want) EXPECT_EQ(heap.PopMin(), want);
}

TEST(BoundedHeapTest, UnboundedBehavesLikePlainHeap) {
  Rng rng(31);
  BoundedHeap<int> heap;  // SetBudget never called
  std::priority_queue<int, std::vector<int>, std::greater<int>> oracle;
  for (int round = 0; round < 2000; ++round) {
    if (oracle.empty() || rng.Bernoulli(0.5)) {
      const int v = static_cast<int>(rng.Uniform(0, 50));
      heap.Push(v);
      oracle.push(v);
    } else {
      EXPECT_EQ(heap.PopMin(), oracle.top());
      oracle.pop();
    }
  }
  EXPECT_EQ(heap.stats().pruned_pushes, 0u);
  EXPECT_EQ(heap.stats().compactions, 0u);
}

// ---------------------------------------------------------------------------
// PairingHeap
// ---------------------------------------------------------------------------

TEST(PairingHeapTest, SortsRandomSequence) {
  Rng rng(5);
  PairingHeap<int> heap;
  std::vector<int> values;
  for (int i = 0; i < 2000; ++i) {
    int v = static_cast<int>(rng.Uniform(-1000, 1000));
    values.push_back(v);
    heap.Push(v);
  }
  std::sort(values.begin(), values.end());
  for (int v : values) EXPECT_EQ(heap.PopMin(), v);
  EXPECT_TRUE(heap.Empty());
}

TEST(PairingHeapTest, EmptySingleAndClear) {
  PairingHeap<int> heap;
  EXPECT_TRUE(heap.Empty());
  EXPECT_EQ(heap.Size(), 0u);
  auto h = heap.Push(3);
  EXPECT_EQ(heap.At(h), 3);
  EXPECT_EQ(heap.Min(), 3);
  EXPECT_EQ(heap.PopMin(), 3);
  EXPECT_TRUE(heap.Empty());
  heap.Push(1);
  heap.Push(2);
  heap.Clear();
  EXPECT_TRUE(heap.Empty());
  EXPECT_EQ(heap.Size(), 0u);
}

TEST(PairingHeapTest, HandleSlotIsRecycledAfterPop) {
  PairingHeap<int> heap;
  auto h1 = heap.Push(1);
  heap.Push(2);
  EXPECT_EQ(heap.PopMin(), 1);
  auto h3 = heap.Push(3);
  EXPECT_EQ(h3, h1) << "arena should recycle the freed slot";
  EXPECT_EQ(heap.At(h3), 3);
  EXPECT_EQ(heap.PopMin(), 2);
  EXPECT_EQ(heap.PopMin(), 3);
}

TEST(PairingHeapTest, DecreaseKeyOnRoot) {
  PairingHeap<int> heap;
  auto h = heap.Push(5);
  heap.Push(10);
  heap.DecreaseKey(h, 1);
  EXPECT_EQ(heap.Min(), 1);
  EXPECT_EQ(heap.PopMin(), 1);
  EXPECT_EQ(heap.PopMin(), 10);
}

TEST(PairingHeapTest, DecreaseKeyToEqualValueIsAllowed) {
  PairingHeap<int> heap;
  auto h = heap.Push(5);
  heap.Push(3);
  heap.DecreaseKey(h, 5);  // no-op decrease must not corrupt structure
  EXPECT_EQ(heap.PopMin(), 3);
  EXPECT_EQ(heap.PopMin(), 5);
}

TEST(PairingHeapTest, DecreaseKeyPromotesNewMin) {
  PairingHeap<int> heap;
  std::vector<PairingHeap<int>::Handle> handles;
  for (int v = 10; v < 20; ++v) handles.push_back(heap.Push(v));
  heap.DecreaseKey(handles[7], 0);  // 17 -> 0
  EXPECT_EQ(heap.Min(), 0);
  EXPECT_EQ(heap.PopMin(), 0);
  std::vector<int> rest;
  while (!heap.Empty()) rest.push_back(heap.PopMin());
  EXPECT_EQ(rest, (std::vector<int>{10, 11, 12, 13, 14, 15, 16, 18, 19}));
}

// Exercise every Cut() position. Pushing 0 first and then 10, 11, 12 makes
// each later push lose its meld against the root, so the root's child chain
// is 12 -> 11 -> 10: 12 is a first child, 11 a middle sibling, 10 the last
// sibling. Decreasing each one hits a distinct relink path in Cut().
TEST(PairingHeapTest, DecreaseKeyCutsAtEveryChildPosition) {
  for (int target : {10, 11, 12}) {
    PairingHeap<int> heap;
    std::map<int, PairingHeap<int>::Handle> handle_of;
    for (int v : {0, 10, 11, 12}) handle_of[v] = heap.Push(v);
    heap.DecreaseKey(handle_of[target], target - 100);
    std::vector<int> want = {0, 10, 11, 12};
    want[target - 9] = target - 100;
    std::sort(want.begin(), want.end());
    std::vector<int> got;
    while (!heap.Empty()) got.push_back(heap.PopMin());
    EXPECT_EQ(got, want) << "decreasing key " << target;
  }
}

TEST(PairingHeapTest, DecreaseKeyDeepChain) {
  // Build a deep structure by popping between pushes, then decrease a deep
  // node below the root.
  PairingHeap<int> heap;
  std::vector<PairingHeap<int>::Handle> handles(64);
  for (int v = 0; v < 64; ++v) handles[v] = heap.Push(100 + v);
  for (int i = 0; i < 16; ++i) heap.PopMin();  // forces multi-level links
  heap.DecreaseKey(handles[63], -1);
  EXPECT_EQ(heap.Min(), -1);
  int prev = heap.PopMin();
  while (!heap.Empty()) {
    int cur = heap.PopMin();
    EXPECT_LE(prev, cur);
    prev = cur;
  }
}

TEST(PairingHeapTest, MeldTwoNonEmptyHeaps) {
  PairingHeap<int> a, b;
  std::vector<int> all;
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    int v = static_cast<int>(rng.Uniform(0, 1000));
    a.Push(v);
    all.push_back(v);
  }
  for (int i = 0; i < 57; ++i) {
    int v = static_cast<int>(rng.Uniform(-1000, 0));
    b.Push(v);
    all.push_back(v);
  }
  a.Meld(std::move(b));
  EXPECT_TRUE(b.Empty());  // NOLINT(bugprone-use-after-move): documented reset
  EXPECT_EQ(a.Size(), all.size());
  std::sort(all.begin(), all.end());
  for (int v : all) EXPECT_EQ(a.PopMin(), v);
}

TEST(PairingHeapTest, MeldWithEmptyEitherSide) {
  PairingHeap<int> a, b;
  a.Push(1);
  a.Push(2);
  a.Meld(std::move(b));  // melding an empty heap is a no-op
  EXPECT_EQ(a.Size(), 2u);
  PairingHeap<int> c;
  c.Meld(std::move(a));  // melding into an empty heap adopts everything
  EXPECT_EQ(c.Size(), 2u);
  EXPECT_EQ(c.PopMin(), 1);
  EXPECT_EQ(c.PopMin(), 2);
}

TEST(PairingHeapTest, DestinationHandlesSurviveMeld) {
  PairingHeap<int> a, b;
  auto ha = a.Push(50);
  a.Push(60);
  b.Push(55);
  a.Meld(std::move(b));
  a.DecreaseKey(ha, 10);
  EXPECT_EQ(a.PopMin(), 10);
  EXPECT_EQ(a.PopMin(), 55);
  EXPECT_EQ(a.PopMin(), 60);
}

TEST(PairingHeapTest, MeldAfterPopsSplicesFreeList) {
  PairingHeap<int> a, b;
  for (int v : {5, 6, 7}) a.Push(v);
  for (int v : {1, 2, 3}) b.Push(v);
  EXPECT_EQ(a.PopMin(), 5);  // both arenas have freed slots
  EXPECT_EQ(b.PopMin(), 1);
  a.Meld(std::move(b));
  // Pushes after the meld must reuse spliced free slots without corruption.
  for (int v : {-3, -2, -1}) a.Push(v);
  std::vector<int> got;
  while (!a.Empty()) got.push_back(a.PopMin());
  EXPECT_EQ(got, (std::vector<int>{-3, -2, -1, 2, 3, 6, 7}));
}

TEST(PairingHeapTest, StressInterleavedAgainstBinary) {
  Rng rng(6);
  PairingHeap<int> ph;
  BinaryHeap<int> bh;
  for (int round = 0; round < 8000; ++round) {
    if (bh.Empty() || rng.Bernoulli(0.55)) {
      int v = static_cast<int>(rng.Uniform(0, 1 << 16));
      ph.Push(v);
      bh.Push(v);
    } else {
      EXPECT_EQ(ph.PopMin(), bh.PopMin());
    }
  }
  EXPECT_EQ(ph.Size(), bh.Size());
}

// Differential stress of push / pop-min / decrease-key against an ordered
// reference. Elements are (key, uid) pairs so ties never make the popped
// identity ambiguous and handles can be retired exactly.
TEST(PairingHeapTest, StressDecreaseKeyAgainstReference) {
  using Entry = std::pair<int64_t, int>;  // (key, uid), lexicographic order
  Rng rng(7);
  PairingHeap<Entry> heap;
  std::map<int, PairingHeap<Entry>::Handle> live;   // uid -> handle
  std::map<int, int64_t> key_of;                    // uid -> current key
  int next_uid = 0;
  for (int round = 0; round < 20000; ++round) {
    const double dice = rng.UniformDouble();
    if (live.empty() || dice < 0.45) {
      const int uid = next_uid++;
      const int64_t key = rng.Uniform(-1000000, 1000000);
      live[uid] = heap.Push({key, uid});
      key_of[uid] = key;
    } else if (dice < 0.75) {
      // Decrease a uniformly random live element.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      const int uid = it->first;
      const int64_t new_key = key_of[uid] - static_cast<int64_t>(rng.Below(5000));
      heap.DecreaseKey(it->second, {new_key, uid});
      key_of[uid] = new_key;
    } else {
      // Pop and check against the reference minimum.
      Entry want{INT64_MAX, INT32_MAX};
      for (const auto& [uid, key] : key_of) {
        want = std::min(want, Entry{key, uid});
      }
      const Entry got = heap.PopMin();
      EXPECT_EQ(got, want);
      live.erase(got.second);
      key_of.erase(got.second);
    }
    ASSERT_EQ(heap.Size(), live.size());
  }
  // Drain: remaining elements must come out in exact sorted order.
  std::vector<Entry> rest;
  for (const auto& [uid, key] : key_of) rest.push_back({key, uid});
  std::sort(rest.begin(), rest.end());
  for (const Entry& want : rest) EXPECT_EQ(heap.PopMin(), want);
  EXPECT_TRUE(heap.Empty());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicAndRangeRespecting) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = c.Uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(8);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.Below(10)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 10 - draws / 50);
    EXPECT_LT(c, draws / 10 + draws / 50);
  }
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShuffleIsDeterministicPermutation) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> w = v;
  Rng a(21), b(21);
  a.Shuffle(&v);
  b.Shuffle(&w);
  EXPECT_EQ(v, w) << "same seed must give the same permutation";
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  // Empty and singleton inputs must be handled.
  std::vector<int> tiny;
  a.Shuffle(&tiny);
  EXPECT_TRUE(tiny.empty());
  tiny.push_back(9);
  a.Shuffle(&tiny);
  EXPECT_EQ(tiny, (std::vector<int>{9}));
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

TEST(TimerTest, MonotonicAndResettable) {
  Timer t;
  const double a = t.Seconds();
  EXPECT_GE(a, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double b = t.Seconds();
  EXPECT_GE(b, a);
  // Bracket Millis() between two Seconds() reads so the check cannot flake
  // under scheduler preemption.
  const double s1 = t.Seconds();
  const double ms = t.Millis();
  const double s2 = t.Seconds();
  EXPECT_GE(ms, s1 * 1e3);
  EXPECT_LE(ms, s2 * 1e3);
  t.Reset();
  EXPECT_LE(t.Seconds(), b + 1.0);  // reset cannot move the clock backwards far
}

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (const size_t workers : {size_t{0}, size_t{1}, size_t{3}}) {
    ThreadPool pool(workers);
    EXPECT_EQ(pool.NumThreads(), workers <= 1 ? 0u : workers);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(&pool, kN, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", " << workers
                                   << " workers";
    }
  }
}

TEST(ThreadPoolTest, ParallelForWithNullPoolRunsInline) {
  size_t sum = 0;  // inline execution: plain writes are safe
  ParallelFor(nullptr, 100, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
  ParallelFor(nullptr, 0, [&](size_t) { FAIL() << "n=0 must not call body"; });
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  try {
    ParallelFor(&pool, 64, [&](size_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 7) throw std::runtime_error("boom");
    });
    FAIL() << "expected the iteration's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_GT(ran.load(), 0u);
  // The pool stays usable after an exceptional ParallelFor.
  std::atomic<size_t> again{0};
  ParallelFor(&pool, 32, [&](size_t) {
    again.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(again.load(), 32u);
}

TEST(ThreadPoolTest, ReusableAcrossManyParallelFors) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> count{0};
    ParallelFor(&pool, 10, [&](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 10u) << "round " << round;
  }
}

TEST(CheckpointsTest, ZeroMeansNoCheckpoints) {
  // max_k == 0 is "nothing will be pulled", not the unbounded sentinel
  // (that's SIZE_MAX here), so there is nothing to stamp.
  EXPECT_TRUE(GeometricCheckpoints(0).empty());
}

TEST(CheckpointsTest, SmallEdgeCases) {
  EXPECT_EQ(GeometricCheckpoints(1), (std::vector<size_t>{1}));
  EXPECT_EQ(GeometricCheckpoints(2), (std::vector<size_t>{1, 2}));
  EXPECT_EQ(GeometricCheckpoints(4), (std::vector<size_t>{1, 2}));
  EXPECT_EQ(GeometricCheckpoints(10), (std::vector<size_t>{1, 2, 5, 10}));
}

TEST(CheckpointsTest, StrictlyIncreasingAndBounded) {
  const auto cps = GeometricCheckpoints(123456);
  ASSERT_FALSE(cps.empty());
  EXPECT_EQ(cps.front(), 1u);
  for (size_t i = 1; i < cps.size(); ++i) {
    EXPECT_LT(cps[i - 1], cps[i]);
  }
  EXPECT_LE(cps.back(), 123456u);
  EXPECT_EQ(cps.back(), 100000u);  // 1-2-5 decades: last decade head fits
}

TEST(CheckpointsTest, SizeMaxDoesNotOverflowOrHang) {
  // The unbounded spelling. The decade walk must terminate without wrapping;
  // every candidate is divided against max_k, never multiplied first.
  const auto cps = GeometricCheckpoints(SIZE_MAX);
  ASSERT_FALSE(cps.empty());
  for (size_t i = 1; i < cps.size(); ++i) {
    ASSERT_LT(cps[i - 1], cps[i]);  // wrap-around would break monotonicity
  }
  // The list reaches the top decade that still fits: more than 10^18 on
  // 64-bit size_t, i.e. the walk did not bail out early.
  EXPECT_GT(cps.back(), SIZE_MAX / 20);
}

}  // namespace
}  // namespace anyk
