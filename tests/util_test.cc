// Unit tests for the utility layer: heaps (binary + pairing), heapify, RNG.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/binary_heap.h"
#include "util/pairing_heap.h"
#include "util/random.h"

namespace anyk {
namespace {

TEST(BinaryHeapTest, SortsRandomSequence) {
  Rng rng(1);
  BinaryHeap<int> heap;
  std::vector<int> values;
  for (int i = 0; i < 1000; ++i) {
    int v = static_cast<int>(rng.Uniform(-500, 500));
    values.push_back(v);
    heap.Push(v);
  }
  std::sort(values.begin(), values.end());
  for (int v : values) EXPECT_EQ(heap.PopMin(), v);
  EXPECT_TRUE(heap.Empty());
}

TEST(BinaryHeapTest, AssignHeapifies) {
  Rng rng(2);
  std::vector<int> values;
  for (int i = 0; i < 777; ++i) {
    values.push_back(static_cast<int>(rng.Uniform(0, 100)));
  }
  BinaryHeap<int> heap;
  heap.Assign(values);
  std::sort(values.begin(), values.end());
  for (int v : values) EXPECT_EQ(heap.PopMin(), v);
}

TEST(BinaryHeapTest, HeapifyEstablishesHeapProperty) {
  Rng rng(3);
  std::vector<int> v;
  for (int i = 0; i < 500; ++i) v.push_back(static_cast<int>(rng.Uniform(0, 50)));
  Heapify(&v, std::less<int>());
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_LE(v[(i - 1) / 2], v[i]) << "heap property violated at " << i;
  }
}

TEST(BinaryHeapTest, PushBulkMatchesIndividualPushes) {
  Rng rng(9);
  BinaryHeap<int> bulk, single;
  std::vector<int> batch;
  for (int round = 0; round < 50; ++round) {
    batch.clear();
    for (int i = 0; i < 20; ++i) {
      batch.push_back(static_cast<int>(rng.Uniform(0, 1000)));
    }
    bulk.PushBulk(batch);
    for (int v : batch) single.Push(v);
    EXPECT_EQ(bulk.PopMin(), single.PopMin());
  }
  while (!single.Empty()) EXPECT_EQ(bulk.PopMin(), single.PopMin());
  EXPECT_TRUE(bulk.Empty());
}

TEST(BinaryHeapTest, ReplaceMin) {
  BinaryHeap<int> heap;
  heap.Assign({5, 3, 8});
  EXPECT_EQ(heap.ReplaceMin(1), 3);
  EXPECT_EQ(heap.Min(), 1);
  EXPECT_EQ(heap.ReplaceMin(9), 1);
  EXPECT_EQ(heap.PopMin(), 5);
  EXPECT_EQ(heap.PopMin(), 8);
  EXPECT_EQ(heap.PopMin(), 9);
}

TEST(BinaryHeapTest, StressInterleaved) {
  Rng rng(4);
  BinaryHeap<int> heap;
  std::vector<int> mirror;
  for (int round = 0; round < 5000; ++round) {
    if (mirror.empty() || rng.Bernoulli(0.6)) {
      int v = static_cast<int>(rng.Uniform(0, 1 << 20));
      heap.Push(v);
      mirror.push_back(v);
      std::push_heap(mirror.begin(), mirror.end(), std::greater<int>());
    } else {
      std::pop_heap(mirror.begin(), mirror.end(), std::greater<int>());
      int want = mirror.back();
      mirror.pop_back();
      EXPECT_EQ(heap.PopMin(), want);
    }
  }
}

TEST(PairingHeapTest, SortsRandomSequence) {
  Rng rng(5);
  PairingHeap<int> heap;
  std::vector<int> values;
  for (int i = 0; i < 2000; ++i) {
    int v = static_cast<int>(rng.Uniform(-1000, 1000));
    values.push_back(v);
    heap.Push(v);
  }
  std::sort(values.begin(), values.end());
  for (int v : values) EXPECT_EQ(heap.PopMin(), v);
  EXPECT_TRUE(heap.Empty());
}

TEST(PairingHeapTest, StressInterleavedAgainstBinary) {
  Rng rng(6);
  PairingHeap<int> ph;
  BinaryHeap<int> bh;
  for (int round = 0; round < 8000; ++round) {
    if (bh.Empty() || rng.Bernoulli(0.55)) {
      int v = static_cast<int>(rng.Uniform(0, 1 << 16));
      ph.Push(v);
      bh.Push(v);
    } else {
      EXPECT_EQ(ph.PopMin(), bh.PopMin());
    }
  }
  EXPECT_EQ(ph.Size(), bh.Size());
}

TEST(RngTest, DeterministicAndRangeRespecting) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = c.Uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(8);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.Below(10)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 10 - draws / 50);
    EXPECT_LT(c, draws / 10 + draws / 50);
  }
}

}  // namespace
}  // namespace anyk
