// Structural invariant tests backing the complexity table (paper Fig. 5):
// operation counters of the any-k algorithms must respect the per-result
// bounds that the asymptotic analysis relies on.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/anyk_part.h"
#include "anyk/anyk_rec.h"
#include "anyk/batch.h"
#include "anyk/factory.h"
#include "anyk/strategies.h"
#include "util/dary_heap.h"
#include "dioid/min_max.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "plan/stats.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "util/alloc_stats.h"
#include "util/random.h"
#include "workload/generators.h"

namespace anyk {
namespace {

struct Fixture {
  Database db;
  ConjunctiveQuery q;
  TDPInstance inst;
  StageGraph<TropicalDioid> g;

  Fixture(size_t n, size_t l, uint64_t seed, double fanout)
      : db(MakePathDatabase(n, l, seed, {.fanout = fanout})),
        q(ConjunctiveQuery::Path(l)),
        inst(BuildAcyclicInstance(db, q)),
        g(BuildStageGraph<TropicalDioid>(inst)) {}
};

TEST(InvariantTest, Take2AtMostTwoSuccessorsPerCall) {
  Fixture f(200, 4, 71, 10.0);
  AnyKPartEnumerator<TropicalDioid, Take2Strategy> e(&f.g);
  size_t k = 0;
  while (e.Next() && k < 500) ++k;
  const auto& ss = e.strategy_stats();
  EXPECT_LE(ss.succ_returned, 2 * ss.succ_calls);
  // Per result: <= L successor calls, each adding <= 2 candidates, plus the
  // initial candidate.
  const size_t L = f.g.stages.size();
  EXPECT_LE(e.stats().pushes, 1 + k * 2 * L);
  // MEM(k): candidate set stays O(k * l).
  EXPECT_LE(e.stats().max_cand_size, 1 + 2 * L * (k + 1));
}

TEST(InvariantTest, EagerAndLazySingleSuccessor) {
  Fixture f(200, 4, 72, 10.0);
  AnyKPartEnumerator<TropicalDioid, EagerStrategy> eager(&f.g);
  AnyKPartEnumerator<TropicalDioid, LazyStrategy> lazy(&f.g);
  size_t k = 0;
  while (eager.Next() && lazy.Next() && k < 500) ++k;
  EXPECT_LE(eager.strategy_stats().succ_returned,
            eager.strategy_stats().succ_calls);
  EXPECT_LE(lazy.strategy_stats().succ_returned,
            lazy.strategy_stats().succ_calls);
  const size_t L = f.g.stages.size();
  EXPECT_LE(eager.stats().pushes, 1 + k * L);
  EXPECT_LE(lazy.stats().pushes, 1 + k * L);
}

TEST(InvariantTest, AllInsertsEverySiblingOnce) {
  Fixture f(80, 3, 73, 8.0);
  AnyKPartEnumerator<TropicalDioid, AllStrategy> e(&f.g);
  // Drain fully: total pushes equal total deviations considered; every
  // candidate is pushed exactly once, so pushes == pops when exhausted.
  size_t k = 0;
  while (e.Next()) ++k;
  EXPECT_EQ(e.stats().pops, e.stats().pushes);
  EXPECT_GT(k, 0u);
}

TEST(InvariantTest, PopsNeverExceedPushes) {
  Fixture f(100, 4, 74, 6.0);
  AnyKPartEnumerator<TropicalDioid, Take2Strategy> e(&f.g);
  while (e.Next()) {
    EXPECT_LE(e.stats().pops, e.stats().pushes);
  }
}

TEST(InvariantTest, RecursivePqOpsLinearInDepthPerResult) {
  Fixture f(150, 5, 75, 8.0);
  RecursiveEnumerator<TropicalDioid> e(&f.g);
  const size_t L = f.g.stages.size();
  size_t prev_pops = 0;
  size_t k = 0;
  while (k < 300) {
    if (!e.Next()) break;
    ++k;
    const size_t pops = e.stats().heap_pops;
    // Each next() materializes at most one new rank per stage, i.e. <= 2*L
    // pops even while rankings warm up.
    EXPECT_LE(pops - prev_pops, 2 * L) << "at k=" << k;
    prev_pops = pops;
  }
}

TEST(InvariantTest, RecursiveTotalPopsBoundedBySuffixCount) {
  // Theorem 11's accounting: over a full enumeration, each suffix enters and
  // leaves a connector priority queue at most once.
  Fixture f(60, 4, 76, 6.0);
  RecursiveEnumerator<TropicalDioid> e(&f.g);
  size_t out = 0;
  while (e.Next()) ++out;
  size_t suffix_bound = 0;  // total suffixes = sum over connectors of paths
  // Upper bound: (#results) * stages + total states (loose but shape-true).
  suffix_bound = out * f.g.stages.size();
  for (const auto& st : f.g.stages) suffix_bound += st.NumStates();
  EXPECT_LE(e.stats().heap_pops, suffix_bound);
}

TEST(InvariantTest, LazyInitializesConnectorsLazily) {
  Fixture f(300, 4, 77, 10.0);
  AnyKPartEnumerator<TropicalDioid, LazyStrategy> e(&f.g);
  ASSERT_TRUE(e.Next().has_value());
  // After one result only the connectors on one root-to-leaf path (plus the
  // root) can have been initialized: at most L.
  EXPECT_LE(e.strategy_stats().conns_initialized, f.g.stages.size());
}

// ---------------------------------------------------------------------------
// Flat-memory invariants: the enumeration phase performs ZERO global heap
// allocations. Everything it needs — candidates, prefixes, lazily built
// strategy structures, suffix rankings — lives in the per-query arena, which
// preprocessing reserves. Verified through the counting allocator hook of
// util/alloc_stats.h (the library replaces global operator new/delete).
//
// Protocol: construct the enumerator with a generous arena reservation
// (preprocessing), pull one result through the caller-owned row to warm its
// output buffers, snapshot the counters, drain k more results, and require
// the operator-new delta to be exactly zero.
// ---------------------------------------------------------------------------

template <typename D, typename E>
void ExpectZeroAllocEnumeration(const StageGraph<D>& g, size_t k) {
  EnumOptions opts;
  opts.arena_reserve_bytes = size_t{16} << 20;  // 16 MiB, ample for the test
  E e(&g, opts);
  ResultRow<D> row;
  ASSERT_TRUE(e.NextInto(&row));  // warm-up: sizes the row's buffers
  const AllocCounts before = CurrentAllocCounts();
  size_t produced = 0;
  while (produced < k && e.NextInto(&row)) ++produced;
  const AllocCounts delta = AllocDelta(before, CurrentAllocCounts());
  EXPECT_EQ(delta.news, 0u)
      << "enumeration of " << produced << " results hit the global heap "
      << delta.news << " times (" << delta.bytes << " bytes)";
  EXPECT_GT(e.arena().BytesUsed(), 0u) << "arena was never used";
  EXPECT_GT(produced, 100u) << "instance too small to be meaningful";
}

TEST(InvariantTest, ZeroHeapAllocationsDuringEnumeration) {
  Fixture f(300, 4, 79, 8.0);
  ExpectZeroAllocEnumeration<
      TropicalDioid, AnyKPartEnumerator<TropicalDioid, Take2Strategy>>(f.g,
                                                                       2000);
  ExpectZeroAllocEnumeration<
      TropicalDioid, AnyKPartEnumerator<TropicalDioid, LazyStrategy>>(f.g,
                                                                      2000);
  ExpectZeroAllocEnumeration<
      TropicalDioid, AnyKPartEnumerator<TropicalDioid, EagerStrategy>>(f.g,
                                                                       2000);
  ExpectZeroAllocEnumeration<
      TropicalDioid, AnyKPartEnumerator<TropicalDioid, AllStrategy>>(f.g,
                                                                     2000);
  ExpectZeroAllocEnumeration<TropicalDioid,
                             RecursiveEnumerator<TropicalDioid>>(f.g, 2000);
}

TEST(InvariantTest, ZeroHeapAllocationsWithoutDioidInverse) {
  // MinMax has no ⊗-inverse: ANYK-PART takes the explicit-frontier fallback
  // (Section 6.2), which must also stay allocation-free.
  Database db = MakePathDatabase(300, 4, 80, {.fanout = 8.0});
  ConjunctiveQuery q = ConjunctiveQuery::Path(4);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<MinMaxDioid> g = BuildStageGraph<MinMaxDioid>(inst);
  ExpectZeroAllocEnumeration<
      MinMaxDioid, AnyKPartEnumerator<MinMaxDioid, Take2Strategy>>(g, 2000);
  ExpectZeroAllocEnumeration<MinMaxDioid, RecursiveEnumerator<MinMaxDioid>>(
      g, 2000);
}

TEST(InvariantTest, ZeroHeapAllocationsOnStarQuery) {
  // Star shape: the root state has λ = 3 child slots, exercising Recursive's
  // Cartesian-product rankings (per-combo rank vectors live in the arena).
  Rng rng(81);
  Database db;
  for (int i = 1; i <= 3; ++i) {
    auto& rel = db.AddRelation("S" + std::to_string(i), 2);
    for (int r = 0; r < 200; ++r) {
      rel.Add({rng.Uniform(0, 8), rng.Uniform(0, 30)},
              static_cast<double>(rng.Uniform(0, 50)));
    }
  }
  ConjunctiveQuery q;
  q.AddAtom("S1", {"x", "a"});
  q.AddAtom("S2", {"x", "b"});
  q.AddAtom("S3", {"x", "c"});
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  ExpectZeroAllocEnumeration<TropicalDioid,
                             RecursiveEnumerator<TropicalDioid>>(g, 2000);
  ExpectZeroAllocEnumeration<
      TropicalDioid, AnyKPartEnumerator<TropicalDioid, LazyStrategy>>(g,
                                                                      2000);
}

TEST(InvariantTest, ArenaGrowsGeometricallyWithoutReservation) {
  // Without a reservation the arena refills from the global heap, but only
  // O(log(bytes)) times — enumeration must not allocate per result.
  Fixture f(300, 4, 82, 8.0);
  AnyKPartEnumerator<TropicalDioid, Take2Strategy> e(&f.g);
  ResultRow<TropicalDioid> row;
  ASSERT_TRUE(e.NextInto(&row));
  const AllocCounts before = CurrentAllocCounts();
  size_t produced = 0;
  while (produced < 5000 && e.NextInto(&row)) ++produced;
  const AllocCounts delta = AllocDelta(before, CurrentAllocCounts());
  EXPECT_GT(produced, 1000u);
  // Geometric block growth: far fewer heap trips than results.
  EXPECT_LE(delta.news, 20u);
}

// ---------------------------------------------------------------------------
// Budget-aware top-k fast path: with EnumOptions::k_budget = k the candidate
// heap must stay O(k) (BoundedHeap pruning + compaction) instead of growing
// with the number of generated candidates, the budgeted prefix must match
// the unbounded run, and the enumerator must report exhaustion at k.
// ---------------------------------------------------------------------------

TEST(InvariantTest, CandidateHeapStaysOrderKUnderBudget) {
  // Large instance with continuous random weights (tie groups are tiny, so
  // the O(k) bound is meaningful).
  Fixture f(400, 4, 83, 10.0);
  const size_t L = f.g.stages.size();
  for (const size_t k : {1u, 10u, 100u}) {
    EnumOptions opts;
    opts.k_budget = k;
    AnyKPartEnumerator<TropicalDioid, LazyStrategy> bounded(&f.g, opts);
    AnyKPartEnumerator<TropicalDioid, LazyStrategy> unbounded(&f.g);
    ResultRow<TropicalDioid> row, urow;
    size_t produced = 0;
    while (bounded.NextInto(&row)) {
      ASSERT_TRUE(unbounded.NextInto(&urow));
      // Weight-for-weight prefix equality; witness order inside tie groups
      // is only pinned down under a tie-break dioid (differential_test's
      // BoundedKSweep covers that side).
      ASSERT_EQ(row.weight, urow.weight) << "k=" << k << " rank=" << produced;
      ++produced;
    }
    EXPECT_EQ(produced, k) << "budget must stop the enumerator at k";
    // O(k): compaction cap (doubled once for the tie-group watermark) plus
    // the per-result burst of <= L+1 successor pushes.
    const size_t cap = std::max<size_t>(2 * k, 64);
    EXPECT_LE(bounded.stats().max_cand_size, 2 * cap + L + 1) << "k=" << k;
    EXPECT_LE(bounded.stats().pushes, unbounded.stats().pushes);
    // Whenever the unbounded heap outgrows the bounded cap, the budgeted
    // run must actually have pruned or compacted to stay inside it.
    if (unbounded.stats().max_cand_size > 2 * cap + L + 1) {
      const BoundedHeapStats bh = bounded.bounded_heap_stats();
      EXPECT_GT(bh.pruned_pushes + bh.compactions, 0u)
          << "budget k=" << k << " never pruned on a large instance";
    }
  }
}

TEST(InvariantTest, BudgetSkipsSuccessorGenerationForFinalAnswer) {
  Fixture f(200, 4, 84, 8.0);
  EnumOptions opts;
  opts.k_budget = 1;
  AnyKPartEnumerator<TropicalDioid, LazyStrategy> e(&f.g, opts);
  ResultRow<TropicalDioid> row;
  ASSERT_TRUE(e.NextInto(&row));
  // k=1: the only answer is the DP optimum; no deviation may be generated.
  EXPECT_EQ(e.stats().pushes, 1u);  // just the initial candidate
  EXPECT_FALSE(e.NextInto(&row));
}

TEST(InvariantTest, BatchEnumerationIsAllocationFreeAfterMaterialize) {
  // The batch algorithm materializes on first pull; after that, NextInto /
  // NextBatch must reuse the row buffers (resize + fill, never a fresh
  // allocation) just like the any-k hot path.
  Fixture f(300, 4, 85, 8.0);
  BatchEnumerator<TropicalDioid> e(&f.g);
  ResultRow<TropicalDioid> row;
  ASSERT_TRUE(e.NextInto(&row));  // materializes + warms the row buffers
  std::vector<ResultRow<TropicalDioid>> batch(64);
  ASSERT_EQ(e.NextBatch(batch.data(), batch.size()), batch.size());  // warm
  const AllocCounts before = CurrentAllocCounts();
  size_t produced = 0;
  while (produced < 1000 && e.NextInto(&row)) ++produced;
  while (produced < 3000) {
    const size_t got = e.NextBatch(batch.data(), batch.size());
    if (got == 0) break;
    produced += got;
  }
  const AllocCounts delta = AllocDelta(before, CurrentAllocCounts());
  EXPECT_EQ(delta.news, 0u)
      << "batch enumeration of " << produced << " results hit the global "
      << "heap " << delta.news << " times (" << delta.bytes << " bytes)";
  EXPECT_GT(produced, 1000u) << "instance too small to be meaningful";
}

TEST(InvariantTest, StatsCollectionNeverTouchesTheGlobalHeap) {
  // The planner reads CollectGraphStats on the serving path (anykd prepares
  // under load); it must stay a pure scalar reduction over counters the
  // build already produced — zero operator-new calls, however often it runs.
  Fixture f(300, 4, 86, 8.0);
  plan::GraphStats warm = plan::CollectGraphStats(f.g);
  const AllocCounts before = CurrentAllocCounts();
  plan::GraphStats merged;
  for (int i = 0; i < 100; ++i) {
    const plan::GraphStats s = plan::CollectGraphStats(f.g);
    plan::MergeGraphStats(&merged, s);
  }
  const AllocCounts delta = AllocDelta(before, CurrentAllocCounts());
  EXPECT_EQ(delta.news, 0u)
      << "stats collection hit the global heap " << delta.news << " times";
  EXPECT_EQ(merged.stages, warm.stages);
  EXPECT_EQ(merged.states, 100 * warm.states);
  EXPECT_GT(warm.output_count, 0.0);
}

// ---------------------------------------------------------------------------
// NextBatch partial-fill contract (anyk/enumerator.h): a short return —
// fewer rows than requested, including zero — is exclusively the exhaustion
// signal; exhaustion is sticky; every returned row is fully bound; and
// NextBatch interleaves freely with NextInto. Swept across every ranked
// algorithm (base-class fallback and the kernelized overrides alike) and
// across batch sizes that don't divide the output count.
// ---------------------------------------------------------------------------

TEST(InvariantTest, NextBatchContract) {
  Fixture f(80, 4, 87, 6.0);
  size_t total = 0;
  {
    auto ref = MakeEnumerator<TropicalDioid>(&f.g, Algorithm::kLazy);
    ResultRow<TropicalDioid> row;
    while (ref->NextInto(&row)) ++total;
  }
  ASSERT_GT(total, 100u) << "instance too small to exercise batching";
  for (Algorithm algo : AllRankedAlgorithms()) {
    for (const size_t n : {1u, 3u, 64u, 1000u}) {
      auto e = MakeEnumerator<TropicalDioid>(&f.g, algo);
      std::vector<ResultRow<TropicalDioid>> rows(n);
      size_t got_total = 0;
      double prev_weight = -std::numeric_limits<double>::infinity();
      while (true) {
        const size_t got = e->NextBatch(rows.data(), rows.size());
        ASSERT_LE(got, n);
        for (size_t b = 0; b < got; ++b) {
          // Fully bound: assignment, witness, and a weight that recomputes
          // exactly from the witness rows.
          ASSERT_EQ(rows[b].assignment.size(), f.q.NumVars())
              << AlgorithmName(algo) << " n=" << n;
          ASSERT_EQ(rows[b].witness.size(), f.q.NumAtoms());
          double sum = 0;
          for (size_t a = 0; a < f.q.NumAtoms(); ++a) {
            sum += f.db.Get(f.q.atom(a).relation).Weight(rows[b].witness[a]);
          }
          ASSERT_EQ(rows[b].weight, sum)
              << AlgorithmName(algo) << " n=" << n << " rank=" << got_total + b;
          ASSERT_GE(rows[b].weight, prev_weight) << "ranked order violated";
          prev_weight = rows[b].weight;
        }
        got_total += got;
        if (got < n) {
          // Short return means exhausted — and stays exhausted.
          EXPECT_EQ(e->NextBatch(rows.data(), rows.size()), 0u)
              << AlgorithmName(algo) << ": exhaustion must be sticky";
          ResultRow<TropicalDioid> one;
          EXPECT_FALSE(e->NextInto(&one))
              << AlgorithmName(algo) << ": NextInto after a short NextBatch";
          EXPECT_EQ(e->NextBatch(rows.data(), rows.size()), 0u);
          break;
        }
      }
      EXPECT_EQ(got_total, total)
          << AlgorithmName(algo) << " n=" << n
          << ": a short return hid results instead of signaling exhaustion";
    }
  }
}

TEST(InvariantTest, NextBatchInterleavesWithNextInto) {
  Fixture f(80, 4, 88, 6.0);
  size_t total = 0;
  {
    auto ref = MakeEnumerator<TropicalDioid>(&f.g, Algorithm::kLazy);
    ResultRow<TropicalDioid> row;
    while (ref->NextInto(&row)) ++total;
  }
  for (Algorithm algo : AllRankedAlgorithms()) {
    auto e = MakeEnumerator<TropicalDioid>(&f.g, algo);
    std::vector<ResultRow<TropicalDioid>> rows(5);
    ResultRow<TropicalDioid> one;
    size_t got_total = 0;
    while (true) {
      const size_t got = e->NextBatch(rows.data(), rows.size());
      got_total += got;
      if (got < rows.size()) break;
      if (!e->NextInto(&one)) break;
      ++got_total;
    }
    EXPECT_EQ(got_total, total) << AlgorithmName(algo);
  }
}

TEST(InvariantTest, ZeroHeapAllocationsDuringBatchedEnumeration) {
  // The kernelized NextBatch override gathers through caller-owned +
  // arena-backed scratch; like the scalar path it must never touch the
  // global heap once the row buffers are warm.
  Fixture f(300, 4, 89, 8.0);
  EnumOptions opts;
  opts.arena_reserve_bytes = size_t{16} << 20;
  AnyKPartEnumerator<TropicalDioid, LazyStrategy> e(&f.g, opts);
  std::vector<ResultRow<TropicalDioid>> rows(64);
  ASSERT_EQ(e.NextBatch(rows.data(), rows.size()), rows.size());  // warm
  const AllocCounts before = CurrentAllocCounts();
  size_t produced = 0;
  while (produced < 3000) {
    const size_t got = e.NextBatch(rows.data(), rows.size());
    produced += got;
    if (got < rows.size()) break;
  }
  const AllocCounts delta = AllocDelta(before, CurrentAllocCounts());
  EXPECT_EQ(delta.news, 0u)
      << "batched enumeration of " << produced << " results hit the global "
      << "heap " << delta.news << " times (" << delta.bytes << " bytes)";
  EXPECT_GT(produced, 1000u) << "instance too small to be meaningful";
}

TEST(InvariantTest, WeightsMatchRecomputationFromWitness) {
  Fixture f(60, 4, 78, 6.0);
  AnyKPartEnumerator<TropicalDioid, Take2Strategy> e(&f.g);
  while (auto r = e.Next()) {
    double sum = 0;
    ASSERT_EQ(r->witness.size(), f.q.NumAtoms());
    for (size_t a = 0; a < f.q.NumAtoms(); ++a) {
      sum += f.db.Get(f.q.atom(a).relation).Weight(r->witness[a]);
    }
    // Integer weights: the O(1) subtract/add candidate arithmetic must be
    // exact, not approximately equal.
    EXPECT_EQ(r->weight, sum);
  }
}

}  // namespace
}  // namespace anyk
