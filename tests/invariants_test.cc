// Structural invariant tests backing the complexity table (paper Fig. 5):
// operation counters of the any-k algorithms must respect the per-result
// bounds that the asymptotic analysis relies on.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include "anyk/anyk_part.h"
#include "anyk/anyk_rec.h"
#include "anyk/strategies.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "workload/generators.h"

namespace anyk {
namespace {

struct Fixture {
  Database db;
  ConjunctiveQuery q;
  TDPInstance inst;
  StageGraph<TropicalDioid> g;

  Fixture(size_t n, size_t l, uint64_t seed, double fanout)
      : db(MakePathDatabase(n, l, seed, {.fanout = fanout})),
        q(ConjunctiveQuery::Path(l)),
        inst(BuildAcyclicInstance(db, q)),
        g(BuildStageGraph<TropicalDioid>(inst)) {}
};

TEST(InvariantTest, Take2AtMostTwoSuccessorsPerCall) {
  Fixture f(200, 4, 71, 10.0);
  AnyKPartEnumerator<TropicalDioid, Take2Strategy> e(&f.g);
  size_t k = 0;
  while (e.Next() && k < 500) ++k;
  const auto& ss = e.strategy_stats();
  EXPECT_LE(ss.succ_returned, 2 * ss.succ_calls);
  // Per result: <= L successor calls, each adding <= 2 candidates, plus the
  // initial candidate.
  const size_t L = f.g.stages.size();
  EXPECT_LE(e.stats().pushes, 1 + k * 2 * L);
  // MEM(k): candidate set stays O(k * l).
  EXPECT_LE(e.stats().max_cand_size, 1 + 2 * L * (k + 1));
}

TEST(InvariantTest, EagerAndLazySingleSuccessor) {
  Fixture f(200, 4, 72, 10.0);
  AnyKPartEnumerator<TropicalDioid, EagerStrategy> eager(&f.g);
  AnyKPartEnumerator<TropicalDioid, LazyStrategy> lazy(&f.g);
  size_t k = 0;
  while (eager.Next() && lazy.Next() && k < 500) ++k;
  EXPECT_LE(eager.strategy_stats().succ_returned,
            eager.strategy_stats().succ_calls);
  EXPECT_LE(lazy.strategy_stats().succ_returned,
            lazy.strategy_stats().succ_calls);
  const size_t L = f.g.stages.size();
  EXPECT_LE(eager.stats().pushes, 1 + k * L);
  EXPECT_LE(lazy.stats().pushes, 1 + k * L);
}

TEST(InvariantTest, AllInsertsEverySiblingOnce) {
  Fixture f(80, 3, 73, 8.0);
  AnyKPartEnumerator<TropicalDioid, AllStrategy> e(&f.g);
  // Drain fully: total pushes equal total deviations considered; every
  // candidate is pushed exactly once, so pushes == pops when exhausted.
  size_t k = 0;
  while (e.Next()) ++k;
  EXPECT_EQ(e.stats().pops, e.stats().pushes);
  EXPECT_GT(k, 0u);
}

TEST(InvariantTest, PopsNeverExceedPushes) {
  Fixture f(100, 4, 74, 6.0);
  AnyKPartEnumerator<TropicalDioid, Take2Strategy> e(&f.g);
  while (e.Next()) {
    EXPECT_LE(e.stats().pops, e.stats().pushes);
  }
}

TEST(InvariantTest, RecursivePqOpsLinearInDepthPerResult) {
  Fixture f(150, 5, 75, 8.0);
  RecursiveEnumerator<TropicalDioid> e(&f.g);
  const size_t L = f.g.stages.size();
  size_t prev_pops = 0;
  size_t k = 0;
  while (k < 300) {
    if (!e.Next()) break;
    ++k;
    const size_t pops = e.stats().heap_pops;
    // Each next() materializes at most one new rank per stage, i.e. <= 2*L
    // pops even while rankings warm up.
    EXPECT_LE(pops - prev_pops, 2 * L) << "at k=" << k;
    prev_pops = pops;
  }
}

TEST(InvariantTest, RecursiveTotalPopsBoundedBySuffixCount) {
  // Theorem 11's accounting: over a full enumeration, each suffix enters and
  // leaves a connector priority queue at most once.
  Fixture f(60, 4, 76, 6.0);
  RecursiveEnumerator<TropicalDioid> e(&f.g);
  size_t out = 0;
  while (e.Next()) ++out;
  size_t suffix_bound = 0;  // total suffixes = sum over connectors of paths
  // Upper bound: (#results) * stages + total states (loose but shape-true).
  suffix_bound = out * f.g.stages.size();
  for (const auto& st : f.g.stages) suffix_bound += st.NumStates();
  EXPECT_LE(e.stats().heap_pops, suffix_bound);
}

TEST(InvariantTest, LazyInitializesConnectorsLazily) {
  Fixture f(300, 4, 77, 10.0);
  AnyKPartEnumerator<TropicalDioid, LazyStrategy> e(&f.g);
  ASSERT_TRUE(e.Next().has_value());
  // After one result only the connectors on one root-to-leaf path (plus the
  // root) can have been initialized: at most L.
  EXPECT_LE(e.strategy_stats().conns_initialized, f.g.stages.size());
}

TEST(InvariantTest, WeightsMatchRecomputationFromWitness) {
  Fixture f(60, 4, 78, 6.0);
  AnyKPartEnumerator<TropicalDioid, Take2Strategy> e(&f.g);
  while (auto r = e.Next()) {
    double sum = 0;
    ASSERT_EQ(r->witness.size(), f.q.NumAtoms());
    for (size_t a = 0; a < f.q.NumAtoms(); ++a) {
      sum += f.db.Get(f.q.atom(a).relation).Weight(r->witness[a]);
    }
    // Integer weights: the O(1) subtract/add candidate arithmetic must be
    // exact, not approximately equal.
    EXPECT_EQ(r->weight, sum);
  }
}

}  // namespace
}  // namespace anyk
