// Sharded execution layer tests: the pinned ShardHash vector (shard
// assignment must be stable across platforms and releases — cache keys and
// witnesses depend on it), the partition/broadcast rules of ShardedDatabase,
// row conservation, empty shards, the S == 1 passthrough, and sharded-vs-
// unsharded drain equivalence including the parallel drain and kAuto's
// cross-shard decision.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "anyk/sharded_query.h"
#include "dioid/tropical.h"
#include "query/cq.h"
#include "storage/database.h"
#include "storage/shard_hash.h"
#include "storage/sharded_database.h"
#include "util/thread_pool.h"

namespace anyk {
namespace {

using D = TropicalDioid;

// ---------------------------------------------------------------------------
// ShardHash: the pinned algorithm. These values were computed once from the
// specification in storage/shard_hash.h and MUST NEVER CHANGE — a mismatch
// means shard assignment (and every cache key embedding a shard count)
// silently moved. If you intentionally change the algorithm, bump the server
// cache epoch and regenerate this vector.
// ---------------------------------------------------------------------------

TEST(ShardHashTest, PinnedKnownHashVector) {
  struct Case {
    std::vector<Value> key;
    uint64_t hash;
  };
  const std::vector<Case> vector = {
      {{}, 0x8C2E4A15D3F7B961ULL},
      {{0}, 0xBCA976AA7B3317F2ULL},
      {{1}, 0x418CF5B9002245BAULL},
      {{2}, 0x5510C142708B9B9BULL},
      {{-1}, 0xFA3FA6CDEF97BB5AULL},
      {{42}, 0x8C92F96F1BE98219ULL},
      {{1, 2}, 0xE28C11BAF4F52DF7ULL},
      {{2, 1}, 0x5686F4E5D9127298ULL},
      {{0, 0, 0}, 0x7DC358E358129D3DULL},
      {{123456789, -987654321}, 0xB07CFBE074A9E444ULL},
      {{int64_t{1} << 62}, 0xEA906A7104AC5BDCULL},
  };
  for (const Case& c : vector) {
    EXPECT_EQ(ShardHash(std::span<const Value>(c.key)), c.hash)
        << "key size " << c.key.size();
  }
  // The single-value overload is the span of one.
  EXPECT_EQ(ShardHash(Value{42}), 0x8C92F96F1BE98219ULL);
  // Order sensitivity: [1,2] and [2,1] must differ.
  EXPECT_NE(ShardHash(std::span<const Value>(vector[6].key)),
            ShardHash(std::span<const Value>(vector[7].key)));
  // And ShardHash is deliberately NOT KeyHash (independent tuning).
  EXPECT_NE(ShardHash(Value{42}), static_cast<uint64_t>(KeyHash{}(Key{42})));
}

TEST(ShardHashTest, ShardOfRangeReduction) {
  // Pinned spot checks of the multiply-shift reduction.
  EXPECT_EQ(ShardOf(ShardHash(Value{42}), 4), 2u);
  EXPECT_EQ(ShardOf(ShardHash(Value{42}), 7), 3u);
  for (Value v = -100; v < 100; ++v) {
    EXPECT_EQ(ShardOf(ShardHash(v), 1), 0u);
    for (size_t s : {2u, 4u, 7u, 8u}) {
      EXPECT_LT(ShardOf(ShardHash(v), s), s);
    }
  }
}

// ---------------------------------------------------------------------------
// ShardedDatabase partition rules
// ---------------------------------------------------------------------------

// R1(x1,x2), R2(x2,x3) with deterministic pseudo-random values.
Database MakePathDb(size_t rows, Value domain, uint64_t seed) {
  Database db;
  Relation& r1 = db.AddRelation("R1", 2);
  Relation& r2 = db.AddRelation("R2", 2);
  uint64_t state = seed;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (size_t i = 0; i < rows; ++i) {
    r1.Add({static_cast<Value>(next() % domain),
            static_cast<Value>(next() % domain)},
           // Dyadic weights: sums are exact in binary, so re-rooted plans
           // (different add order) produce bit-identical totals.
           static_cast<double>(next() % 1000) / 8.0);
    r2.Add({static_cast<Value>(next() % domain),
            static_cast<Value>(next() % domain)},
           // Dyadic weights: sums are exact in binary, so re-rooted plans
           // (different add order) produce bit-identical totals.
           static_cast<double>(next() % 1000) / 8.0);
  }
  return db;
}

TEST(ShardedDatabaseTest, PathQueryPartitionsOnSharedVariable) {
  Database db = MakePathDb(200, 16, 1);
  auto q = ConjunctiveQuery::Path(2);  // R1(x1,x2), R2(x2,x3)
  ShardedDatabase sharded(db, q, 4);
  // x2 (id 1) touches both atoms: both relations partition, R1 on column 1,
  // R2 on column 0.
  EXPECT_EQ(sharded.partition_var(), 1);
  EXPECT_FALSE(sharded.degenerate());
  ASSERT_EQ(sharded.rules().size(), 2u);
  EXPECT_EQ(sharded.rules()[0].relation, "R1");
  EXPECT_EQ(sharded.rules()[0].partition_col, 1);
  EXPECT_EQ(sharded.rules()[1].relation, "R2");
  EXPECT_EQ(sharded.rules()[1].partition_col, 0);
  EXPECT_TRUE(sharded.IsPartitioned("R1"));
  EXPECT_TRUE(sharded.IsPartitioned("R2"));
}

TEST(ShardedDatabaseTest, RowsConservedAndRoutedByPinnedHash) {
  const size_t kShards = 4;
  Database db = MakePathDb(500, 32, 7);
  auto q = ConjunctiveQuery::Path(2);
  ShardedDatabase sharded(db, q, kShards);
  size_t total = 0;
  double weight_sum = 0;
  for (size_t s = 0; s < kShards; ++s) {
    const Relation& rel = sharded.shard(s).Get("R1");
    total += rel.NumRows();
    for (size_t r = 0; r < rel.NumRows(); ++r) {
      // Every row sits in the shard its partition column hashes to.
      EXPECT_EQ(ShardOf(ShardHash(rel.At(r, 1)), kShards), s);
      weight_sum += rel.Weight(r);
    }
  }
  EXPECT_EQ(total, db.Get("R1").NumRows());
  double orig_sum = 0;
  for (double w : db.Get("R1").Weights()) orig_sum += w;
  EXPECT_NEAR(weight_sum, orig_sum, 1e-9);
}

TEST(ShardedDatabaseTest, StarQueryBroadcastsLeafOnlyRelations) {
  // R1(x1,x2), R2(x2,x3), R3(x3,x4): no variable reaches all three atoms.
  // x2 covers R1+R2; R3 must be broadcast into every shard.
  Database db;
  db.AddRelation("R1", 2);
  db.AddRelation("R2", 2);
  db.AddRelation("R3", 2);
  for (Value i = 0; i < 30; ++i) {
    db.GetMutable("R1").Add({i, i % 5}, 1.0 + static_cast<double>(i));
    db.GetMutable("R2").Add({i % 5, i}, 2.0);
    db.GetMutable("R3").Add({i, i + 1}, 3.0);
  }
  auto q = ConjunctiveQuery::Path(3);
  ShardedDatabase sharded(db, q, 3);
  EXPECT_FALSE(sharded.degenerate());
  EXPECT_FALSE(sharded.IsPartitioned("R1") && sharded.IsPartitioned("R2") &&
               sharded.IsPartitioned("R3"));
  // The broadcast relation is fully replicated.
  for (const ShardRule& rule : sharded.rules()) {
    if (rule.partitioned()) continue;
    for (size_t s = 0; s < sharded.NumShards(); ++s) {
      EXPECT_EQ(sharded.shard(s).Get(rule.relation).NumRows(),
                db.Get(rule.relation).NumRows())
          << rule.relation << " shard " << s;
    }
  }
}

TEST(ShardedDatabaseTest, SelfJoinColumnConflictDegenerates) {
  // R(x1,x2), R(x2,x3) over ONE physical relation: x2 binds column 1 in the
  // first atom and column 0 in the second — no consistent partition column
  // exists for any variable, so the plan degenerates to shard 0.
  Database db;
  Relation& r = db.AddRelation("R", 2);
  for (Value i = 0; i < 20; ++i) r.Add({i, (i + 1) % 20}, 1.0);
  auto q = ConjunctiveQuery::Path(2, "R", /*single_relation=*/true);
  ShardedDatabase sharded(db, q, 4);
  EXPECT_TRUE(sharded.degenerate());
  EXPECT_EQ(sharded.partition_var(), -1);
  EXPECT_EQ(sharded.shard(0).Get("R").NumRows(), 20u);
  for (size_t s = 1; s < 4; ++s) {
    EXPECT_EQ(sharded.shard(s).Get("R").NumRows(), 0u);
  }
}

TEST(ShardedDatabaseTest, MoreShardsThanKeysLeavesShardsEmpty) {
  // Only 2 distinct join values but 7 shards: at least 5 shards hold no
  // partitioned rows, and the sharded layer must still be correct (the
  // drain-equivalence test below covers that; here we pin the emptiness).
  Database db = MakePathDb(100, 2, 11);
  auto q = ConjunctiveQuery::Path(2);
  ShardedDatabase sharded(db, q, 7);
  size_t empty = 0;
  for (size_t s = 0; s < 7; ++s) {
    if (sharded.shard(s).Get("R1").NumRows() == 0) ++empty;
  }
  EXPECT_GE(empty, 5u);
}

// ---------------------------------------------------------------------------
// ShardedPreparedQuery: drain equivalence
// ---------------------------------------------------------------------------

struct Row {
  double weight;
  std::vector<Value> assignment;
  bool operator==(const Row& o) const {
    return weight == o.weight && assignment == o.assignment;
  }
  bool operator<(const Row& o) const {
    if (weight != o.weight) return weight < o.weight;
    return assignment < o.assignment;
  }
};

std::vector<Row> DrainSession(EnumerationSession<D> session) {
  std::vector<Row> out;
  ResultRow<D> row;
  while (session.NextInto(&row)) {
    out.push_back(Row{row.weight, row.assignment});
  }
  return out;
}

/// Equal-weight runs may be permuted by sharding (shard-local row ids break
/// ties); canonicalize by sorting each run before comparing.
void Canonicalize(std::vector<Row>* rows) {
  size_t i = 0;
  while (i < rows->size()) {
    size_t j = i + 1;
    while (j < rows->size() && (*rows)[j].weight == (*rows)[i].weight) ++j;
    std::sort(rows->begin() + static_cast<ptrdiff_t>(i),
              rows->begin() + static_cast<ptrdiff_t>(j));
    i = j;
  }
}

TEST(ShardedQueryTest, ShardSweepMatchesUnshardedDrain) {
  Database db = MakePathDb(120, 8, 3);
  auto q = ConjunctiveQuery::Path(2);
  PreparedQuery<D> plain(db, q);
  std::vector<Row> expected =
      DrainSession(plain.NewSession(Algorithm::kLazy));
  Canonicalize(&expected);
  ASSERT_FALSE(expected.empty());
  for (size_t shards : {1u, 2u, 4u, 7u}) {
    typename ShardedPreparedQuery<D>::Options opts;
    opts.shards = shards;
    ShardedPreparedQuery<D> sharded(db, q, opts);
    EXPECT_EQ(sharded.NumShards(), shards);
    std::vector<Row> got = DrainSession(sharded.NewSession(Algorithm::kLazy));
    Canonicalize(&got);
    EXPECT_EQ(got, expected) << "shards=" << shards;
  }
}

TEST(ShardedQueryTest, DegeneratePlanStillMatches) {
  Database db;
  Relation& r = db.AddRelation("R", 2);
  for (Value i = 0; i < 15; ++i) {
    r.Add({i, (i * 3 + 1) % 15}, static_cast<double>((i * 7) % 10));
  }
  auto q = ConjunctiveQuery::Path(2, "R", /*single_relation=*/true);
  PreparedQuery<D> plain(db, q);
  std::vector<Row> expected =
      DrainSession(plain.NewSession(Algorithm::kTake2));
  Canonicalize(&expected);
  typename ShardedPreparedQuery<D>::Options opts;
  opts.shards = 4;
  ShardedPreparedQuery<D> sharded(db, q, opts);
  ASSERT_NE(sharded.sharded_db(), nullptr);
  EXPECT_TRUE(sharded.sharded_db()->degenerate());
  std::vector<Row> got = DrainSession(sharded.NewSession(Algorithm::kTake2));
  Canonicalize(&got);
  EXPECT_EQ(got, expected);
}

TEST(ShardedQueryTest, SingleShardIsPassthrough) {
  Database db = MakePathDb(60, 6, 5);
  auto q = ConjunctiveQuery::Path(2);
  PreparedQuery<D> plain(db, q);
  typename ShardedPreparedQuery<D>::Options opts;
  opts.shards = 1;
  ShardedPreparedQuery<D> sharded(db, q, opts);
  EXPECT_EQ(sharded.sharded_db(), nullptr);
  // Byte-identical including tie order and witnesses: same data, same row
  // ids, same enumerator construction.
  auto a = plain.NewSession(Algorithm::kLazy);
  auto b = sharded.NewSession(Algorithm::kLazy);
  ResultRow<D> ra, rb;
  while (true) {
    const bool ga = a.NextInto(&ra);
    const bool gb = b.NextInto(&rb);
    ASSERT_EQ(ga, gb);
    if (!ga) break;
    EXPECT_EQ(ra.weight, rb.weight);
    EXPECT_EQ(ra.assignment, rb.assignment);
    EXPECT_EQ(ra.witness, rb.witness);
  }
}

TEST(ShardedQueryTest, KBudgetedUnionReturnsTopK) {
  Database db = MakePathDb(150, 10, 9);
  auto q = ConjunctiveQuery::Path(2);
  PreparedQuery<D> plain(db, q);
  std::vector<Row> all = DrainSession(plain.NewSession(Algorithm::kLazy));
  ASSERT_GT(all.size(), 20u);
  const size_t k = 20;
  typename ShardedPreparedQuery<D>::Options opts;
  opts.shards = 4;
  opts.prepare.enum_opts.k_budget = k;
  ShardedPreparedQuery<D> sharded(db, q, opts);
  std::vector<Row> top = DrainSession(sharded.NewSession(Algorithm::kLazy));
  ASSERT_EQ(top.size(), k);
  // The k-th weight boundary is exact; within it the set matches modulo
  // equal-weight permutation, so compare weight sequences.
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(top[i].weight, all[i].weight) << "i=" << i;
  }
}

TEST(ShardedQueryTest, ParallelDrainMatchesSerialMerge) {
  Database db = MakePathDb(150, 8, 13);
  auto q = ConjunctiveQuery::Path(2);
  typename ShardedPreparedQuery<D>::Options serial_opts;
  serial_opts.shards = 4;
  ShardedPreparedQuery<D> serial(db, q, serial_opts);
  typename ShardedPreparedQuery<D>::Options par_opts = serial_opts;
  par_opts.parallel_drain = true;
  ShardedPreparedQuery<D> parallel(db, q, par_opts);
  // Byte-identical: the parallel merge runs the same heap discipline over
  // the same per-shard streams, only production overlaps.
  auto a = serial.NewSession(Algorithm::kLazy);
  auto b = parallel.NewSession(Algorithm::kLazy);
  ResultRow<D> ra, rb;
  size_t n = 0;
  while (true) {
    const bool ga = a.NextInto(&ra);
    const bool gb = b.NextInto(&rb);
    ASSERT_EQ(ga, gb) << "at row " << n;
    if (!ga) break;
    EXPECT_EQ(ra.weight, rb.weight) << "at row " << n;
    EXPECT_EQ(ra.assignment, rb.assignment) << "at row " << n;
    ++n;
  }
  EXPECT_GT(n, 0u);
}

TEST(ShardedQueryTest, AutoResolvesAgainstCrossShardDecision) {
  Database db = MakePathDb(200, 12, 17);
  auto q = ConjunctiveQuery::Path(2);
  typename ShardedPreparedQuery<D>::Options opts;
  opts.shards = 4;
  opts.prepare.auto_plan = true;
  ThreadPool pool(2);
  opts.prepare.pool = &pool;
  ShardedPreparedQuery<D> sharded(db, q, opts);
  // The cross-shard decision merges per-shard stats: its input_rows must
  // reflect the whole data set, not one shard's slice.
  EXPECT_GE(sharded.decision().stats.input_rows, db.Get("R1").NumRows());
  PreparedQuery<D> plain(db, q);
  std::vector<Row> expected =
      DrainSession(plain.NewSession(Algorithm::kLazy));
  Canonicalize(&expected);
  std::vector<Row> got = DrainSession(sharded.NewSession(Algorithm::kAuto));
  Canonicalize(&got);
  EXPECT_EQ(got, expected);
}

TEST(ShardedQueryTest, CycleUnionQueryShards) {
  // 4-cycle: per-shard plans are themselves unions (cycle decomposition);
  // the shard union nests over them.
  Database db;
  for (int i = 1; i <= 4; ++i) {
    db.AddRelation("R" + std::to_string(i), 2);
  }
  uint64_t state = 23;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int i = 1; i <= 4; ++i) {
    Relation& r = db.GetMutable("R" + std::to_string(i));
    for (size_t j = 0; j < 40; ++j) {
      r.Add({static_cast<Value>(next() % 5), static_cast<Value>(next() % 5)},
            static_cast<double>(next() % 100));
    }
  }
  auto q = ConjunctiveQuery::Cycle(4);
  PreparedQuery<D> plain(db, q);
  EXPECT_EQ(plain.plan(), QueryPlan::kCycleUnion);
  std::vector<Row> expected =
      DrainSession(plain.NewSession(Algorithm::kLazy));
  Canonicalize(&expected);
  for (size_t shards : {2u, 7u}) {
    typename ShardedPreparedQuery<D>::Options opts;
    opts.shards = shards;
    ShardedPreparedQuery<D> sharded(db, q, opts);
    std::vector<Row> got = DrainSession(sharded.NewSession(Algorithm::kLazy));
    Canonicalize(&got);
    EXPECT_EQ(got, expected) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace anyk
