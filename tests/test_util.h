// Shared test helpers: an independent ranked-join oracle (brute-force join +
// stable sort) and enumeration-vs-oracle comparison at witness granularity.

#ifndef ANYK_TESTS_TEST_UTIL_H_
#define ANYK_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/enumerator.h"
#include "dioid/dioid.h"
#include "dioid/lift.h"
#include "join/brute_force.h"
#include "query/cq.h"
#include "storage/database.h"

namespace anyk {
namespace testing {

template <SelectiveDioid D>
struct OracleRow {
  typename D::Value weight;
  std::vector<uint32_t> witness;  // row per atom
  std::vector<Value> assignment;  // per variable
};

/// All answers of the full CQ, ranked by the dioid order (ties arbitrary).
template <SelectiveDioid D>
std::vector<OracleRow<D>> Oracle(const Database& db,
                                 const ConjunctiveQuery& q) {
  const JoinResultSet join = BruteForceJoin(db, q);
  const size_t na = q.NumAtoms();
  std::vector<OracleRow<D>> rows;
  rows.reserve(join.size());
  for (size_t i = 0; i < join.size(); ++i) {
    OracleRow<D> row;
    row.weight = D::One();
    row.witness.assign(join.witness(i), join.witness(i) + na);
    row.assignment.assign(q.NumVars(), 0);
    for (size_t a = 0; a < na; ++a) {
      const Relation& rel = db.Get(q.atom(a).relation);
      const uint32_t r = row.witness[a];
      row.weight =
          D::Combine(row.weight, LiftWeight<D>(rel.Weight(r), a, na, r));
      const auto& vars = q.AtomVarIds(a);
      for (size_t c = 0; c < vars.size(); ++c) {
        row.assignment[vars[c]] = rel.At(r, c);
      }
    }
    rows.push_back(std::move(row));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const OracleRow<D>& a, const OracleRow<D>& b) {
                     return D::Less(a.weight, b.weight);
                   });
  return rows;
}

/// Drain `e` and compare against the oracle:
///  * result count matches,
///  * the weight sequence matches exactly (both are sorted by a total order
///    on weights, so even tie groups must agree as multisets of weights),
///  * the multiset of witnesses matches (catches duplicates / omissions),
///  * weights are non-decreasing.
template <SelectiveDioid D>
void ExpectMatchesOracle(Enumerator<D>* e, const Database& db,
                         const ConjunctiveQuery& q,
                         size_t max_results = SIZE_MAX) {
  auto oracle = Oracle<D>(db, q);
  std::vector<ResultRow<D>> got;
  while (auto r = e->Next()) {
    got.push_back(std::move(*r));
    if (got.size() > oracle.size() + 5) break;  // runaway guard
    if (got.size() >= max_results) break;
  }
  const size_t limit = std::min(max_results, oracle.size());
  ASSERT_EQ(got.size(), limit) << "wrong number of results";
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(DioidEq<D>(got[i].weight, oracle[i].weight))
        << "weight mismatch at rank " << i;
    if (i > 0) {
      ASSERT_TRUE(DioidLeq<D>(got[i - 1].weight, got[i].weight))
          << "order violated at rank " << i;
    }
  }
  if (limit == oracle.size()) {
    std::vector<std::vector<uint32_t>> got_w, want_w;
    for (const auto& r : got) got_w.push_back(r.witness);
    for (const auto& r : oracle) want_w.push_back(r.witness);
    std::sort(got_w.begin(), got_w.end());
    std::sort(want_w.begin(), want_w.end());
    ASSERT_EQ(got_w, want_w) << "witness multiset mismatch";
  }
}

}  // namespace testing
}  // namespace anyk

#endif  // ANYK_TESTS_TEST_UTIL_H_
