// Property tests: every any-k algorithm enumerates path-query answers in
// exactly the oracle's ranked order, across sizes, seeds and weight
// distributions (paper Sections 3-4).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "anyk/ranked_query.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "query/cq.h"
#include "query/join_tree.h"
#include "test_util.h"
#include "workload/generators.h"

namespace anyk {
namespace {

using testing::ExpectMatchesOracle;

struct PathCase {
  size_t n;
  size_t l;
  uint64_t seed;
  double fanout;
};

class AnyKPathTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, PathCase>> {};

std::string PathCaseName(
    const ::testing::TestParamInfo<std::tuple<Algorithm, PathCase>>& info) {
  const Algorithm algo = std::get<0>(info.param);
  const PathCase& pc = std::get<1>(info.param);
  return std::string(AlgorithmName(algo)) + "_n" + std::to_string(pc.n) +
         "_l" + std::to_string(pc.l) + "_s" + std::to_string(pc.seed);
}

std::string AlgoName(const ::testing::TestParamInfo<Algorithm>& info) {
  return AlgorithmName(info.param);
}

TEST_P(AnyKPathTest, MatchesOracle) {
  const auto& [algo, pc] = GetParam();
  GeneratorOptions gen;
  gen.fanout = pc.fanout;
  Database db = MakePathDatabase(pc.n, pc.l, pc.seed, gen);
  ConjunctiveQuery q = ConjunctiveQuery::Path(pc.l);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, algo);
  ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnyKPathTest,
    ::testing::Combine(
        ::testing::ValuesIn(AllRankedAlgorithms()),
        ::testing::Values(PathCase{1, 2, 1, 1.0}, PathCase{5, 2, 2, 2.0},
                          PathCase{30, 2, 3, 5.0}, PathCase{30, 3, 4, 5.0},
                          PathCase{50, 3, 5, 10.0}, PathCase{20, 4, 6, 4.0},
                          PathCase{40, 4, 7, 8.0}, PathCase{15, 5, 8, 3.0},
                          PathCase{12, 6, 9, 3.0}, PathCase{60, 2, 10, 30.0},
                          PathCase{25, 3, 11, 25.0})),
    PathCaseName);

// Ties: many equal weights must still enumerate a valid non-decreasing
// permutation of the oracle.
class AnyKPathTiesTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AnyKPathTiesTest, AllWeightsEqual) {
  GeneratorOptions gen;
  gen.weight_min = 7;
  gen.weight_max = 7;
  gen.fanout = 3.0;
  Database db = MakePathDatabase(20, 3, 42, gen);
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

TEST_P(AnyKPathTiesTest, TwoDistinctWeights) {
  GeneratorOptions gen;
  gen.weight_min = 0;
  gen.weight_max = 1;
  gen.fanout = 4.0;
  Database db = MakePathDatabase(24, 4, 43, gen);
  ConjunctiveQuery q = ConjunctiveQuery::Path(4);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

INSTANTIATE_TEST_SUITE_P(Algos, AnyKPathTiesTest,
                         ::testing::ValuesIn(AllRankedAlgorithms()), AlgoName);

// Edge cases shared by all algorithms.
class AnyKPathEdgeTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AnyKPathEdgeTest, EmptyRelation) {
  Database db;
  db.AddRelation("R1", 2).Add({1, 2}, 1.0);
  db.AddRelation("R2", 2);  // empty
  ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  EXPECT_FALSE(e->Next().has_value());
}

TEST_P(AnyKPathEdgeTest, NoJoinPartner) {
  Database db;
  auto& r1 = db.AddRelation("R1", 2);
  r1.Add({1, 2}, 1.0);
  r1.Add({1, 3}, 2.0);
  auto& r2 = db.AddRelation("R2", 2);
  r2.Add({9, 5}, 1.0);  // never joins
  ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  EXPECT_FALSE(e->Next().has_value());
}

TEST_P(AnyKPathEdgeTest, SingleResult) {
  Database db;
  db.AddRelation("R1", 2).Add({1, 2}, 3.0);
  db.AddRelation("R2", 2).Add({2, 4}, 4.0);
  ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  auto r = e->Next();
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->weight, 7.0);
  EXPECT_EQ(r->assignment, (std::vector<Value>{1, 2, 4}));
  EXPECT_FALSE(e->Next().has_value());
}

TEST_P(AnyKPathEdgeTest, SelfJoinSameRelation) {
  Database db;
  auto& rel = db.AddRelation("E", 2);
  rel.Add({1, 2}, 1.0);
  rel.Add({2, 3}, 2.0);
  rel.Add({2, 1}, 4.0);
  rel.Add({3, 2}, 8.0);
  ConjunctiveQuery q = ConjunctiveQuery::Path(3, "E", /*single_relation=*/true);
  TDPInstance inst = BuildAcyclicInstance(db, q);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

INSTANTIATE_TEST_SUITE_P(Algos, AnyKPathEdgeTest,
                         ::testing::ValuesIn(AllRankedAlgorithms()), AlgoName);

}  // namespace
}  // namespace anyk
