// Cross-checks of the standalone join engines: Yannakakis, GenericJoin
// (NPRR-style WCOJ), the reference hash-join executor, and Rank-Join —
// all against the brute-force oracle.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "join/brute_force.h"
#include "join/generic_join.h"
#include "join/rank_join.h"
#include "join/reference_executor.h"
#include "join/yannakakis.h"
#include "dioid/tropical.h"
#include "query/cq.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/paper_instances.h"

namespace anyk {
namespace {

std::multiset<std::vector<uint32_t>> WitnessSet(const JoinResultSet& rs) {
  std::multiset<std::vector<uint32_t>> out;
  for (size_t i = 0; i < rs.size(); ++i) {
    out.insert(std::vector<uint32_t>(rs.witness(i),
                                     rs.witness(i) + rs.num_atoms));
  }
  return out;
}

TEST(YannakakisTest, MatchesBruteForceOnPaths) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Database db = MakePathDatabase(40, 3, seed, {.fanout = 6.0});
    auto q = ConjunctiveQuery::Path(3);
    EXPECT_EQ(WitnessSet(YannakakisJoin(db, q)),
              WitnessSet(BruteForceJoin(db, q)));
  }
}

TEST(YannakakisTest, MatchesBruteForceOnTrees) {
  Database db = MakePathDatabase(25, 5, 7, {.fanout = 5.0});
  ConjunctiveQuery q;
  q.AddAtom("R1", {"a", "b"});
  q.AddAtom("R2", {"b", "c"});
  q.AddAtom("R3", {"b", "d"});
  q.AddAtom("R4", {"d", "e"});
  q.AddAtom("R5", {"d", "f"});
  EXPECT_EQ(WitnessSet(YannakakisJoin(db, q)),
            WitnessSet(BruteForceJoin(db, q)));
}

TEST(YannakakisTest, DanglingTuplesPruned) {
  Database db;
  auto& r1 = db.AddRelation("R1", 2);
  r1.Add({1, 2}, 0);
  r1.Add({1, 9}, 0);  // dangling
  auto& r2 = db.AddRelation("R2", 2);
  r2.Add({2, 3}, 0);
  r2.Add({7, 3}, 0);  // dangling
  auto q = ConjunctiveQuery::Path(2);
  auto rs = YannakakisJoin(db, q);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.witness(0)[0], 0u);
  EXPECT_EQ(rs.witness(0)[1], 0u);
}

TEST(GenericJoinTest, MatchesBruteForceOnCycles) {
  for (size_t l : {3u, 4u, 5u}) {
    Database db = MakePathDatabase(30, l, 11 + l, {.fanout = 5.0});
    auto q = ConjunctiveQuery::Cycle(l);
    EXPECT_EQ(WitnessSet(GenericJoin(db, q)),
              WitnessSet(BruteForceJoin(db, q)))
        << "cycle length " << l;
  }
}

TEST(GenericJoinTest, MatchesBruteForceOnPathsAndStars) {
  Database db = MakePathDatabase(30, 4, 17, {.fanout = 5.0});
  for (auto q : {ConjunctiveQuery::Path(4), ConjunctiveQuery::Star(4)}) {
    EXPECT_EQ(WitnessSet(GenericJoin(db, q)),
              WitnessSet(BruteForceJoin(db, q)));
  }
}

TEST(GenericJoinTest, DuplicateRowsYieldAllWitnesses) {
  Database db;
  auto& r1 = db.AddRelation("R1", 2);
  r1.Add({1, 2}, 1.0);
  r1.Add({1, 2}, 5.0);  // duplicate values, distinct witness
  auto& r2 = db.AddRelation("R2", 2);
  r2.Add({2, 3}, 1.0);
  auto q = ConjunctiveQuery::Path(2);
  EXPECT_EQ(GenericJoin(db, q).size(), 2u);
}

TEST(GenericJoinTest, TriangleOnI1StyleData) {
  Database db = MakeWorstCaseCycleDatabase(12, 3, 19);
  auto q = ConjunctiveQuery::Cycle(3);
  EXPECT_EQ(WitnessSet(GenericJoin(db, q)),
            WitnessSet(BruteForceJoin(db, q)));
}

TEST(ReferenceExecutorTest, MatchesOracleSortedWeights) {
  Database db = MakePathDatabase(35, 3, 23, {.fanout = 6.0});
  auto q = ConjunctiveQuery::Path(3);
  BatchOutput out = ReferenceHashJoin(db, q);
  auto oracle = testing::Oracle<TropicalDioid>(db, q);
  ASSERT_EQ(out.size(), oracle.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.weight(i), oracle[i].weight) << "rank " << i;
  }
}

TEST(ReferenceExecutorTest, HandlesCyclesViaResidualJoin) {
  Database db = MakePathDatabase(25, 4, 29, {.fanout = 5.0});
  auto q = ConjunctiveQuery::Cycle(4);
  BatchOutput out = ReferenceHashJoin(db, q);
  EXPECT_EQ(out.size(), BruteForceJoin(db, q).size());
}

TEST(RankJoinTest, AscendingOrderMatchesOracle) {
  Database db = MakePathDatabase(30, 3, 31, {.fanout = 5.0});
  auto q = ConjunctiveQuery::Path(3);
  auto oracle = testing::Oracle<TropicalDioid>(db, q);
  RankJoin rj(db, q);
  size_t i = 0;
  while (auto t = rj.Next()) {
    ASSERT_LT(i, oracle.size());
    EXPECT_DOUBLE_EQ(t->weight, oracle[i].weight) << "rank " << i;
    ++i;
  }
  EXPECT_EQ(i, oracle.size());
}

TEST(RankJoinTest, TwoWayJoinValues) {
  Database db;
  auto& r1 = db.AddRelation("R1", 2);
  r1.Add({1, 2}, 5.0);
  r1.Add({4, 2}, 1.0);
  auto& r2 = db.AddRelation("R2", 2);
  r2.Add({2, 7}, 2.0);
  r2.Add({2, 8}, 10.0);
  RankJoin rj(db, ConjunctiveQuery::Path(2));
  auto t1 = rj.Next();
  ASSERT_TRUE(t1.has_value());
  EXPECT_DOUBLE_EQ(t1->weight, 3.0);
  EXPECT_EQ(t1->values, (std::vector<Value>{4, 2, 7}));
  auto t2 = rj.Next();
  EXPECT_DOUBLE_EQ(t2->weight, 7.0);
  auto t3 = rj.Next();
  EXPECT_DOUBLE_EQ(t3->weight, 11.0);
  auto t4 = rj.Next();
  EXPECT_DOUBLE_EQ(t4->weight, 15.0);
  EXPECT_FALSE(rj.Next().has_value());
}

TEST(RankJoinTest, PullsQuadraticallyOnI2) {
  // Section 9.1.3: on I2 (under max-first ranking, realized by negating
  // weights), Rank-Join explores all (n-1)^2 R1 x R2 combinations before the
  // top result. We verify the join_combinations counter scales ~n^2.
  auto negate = [](Database db) {
    for (int i = 1; i <= 3; ++i) {
      auto& rel = db.GetMutable("R" + std::to_string(i));
      for (size_t r = 0; r < rel.NumRows(); ++r) rel.SetWeight(r, -rel.Weight(r));
    }
    return db;
  };
  const size_t n1 = 40, n2 = 80;
  Database db1 = negate(MakeI2Database(n1));
  Database db2 = negate(MakeI2Database(n2));
  auto q = ConjunctiveQuery::Path(3);
  RankJoin rj1(db1, q), rj2(db2, q);
  ASSERT_TRUE(rj1.Next().has_value());
  ASSERT_TRUE(rj2.Next().has_value());
  const double ratio = static_cast<double>(rj2.stats().join_combinations) /
                       static_cast<double>(rj1.stats().join_combinations);
  // Doubling n should ~quadruple the combinations examined.
  EXPECT_GT(ratio, 2.5);
}

TEST(BruteForceTest, SelfJoinAndRepeatedVars) {
  Database db;
  auto& e = db.AddRelation("E", 2);
  e.Add({1, 1}, 1.0);
  e.Add({1, 2}, 2.0);
  e.Add({2, 1}, 3.0);
  // Loops: E(x,x) joined with E(x,y).
  ConjunctiveQuery q;
  q.AddAtom("E", {"x", "x"});
  q.AddAtom("E", {"x", "y"});
  auto rs = BruteForceJoin(db, q);
  EXPECT_EQ(rs.size(), 2u);  // (1,1)x(1,1), (1,1)x(1,2)
}

}  // namespace
}  // namespace anyk
