// User-supplied hypertree decompositions (paper Section 5.3): ranked
// enumeration over materialized bag trees for cyclic queries beyond simple
// cycles — chorded squares, triangles, K4 — checked against the oracle.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "dioid/tropical.h"
#include "dp/stage_graph.h"
#include "query/bag_decomposition.h"
#include "query/cq.h"
#include "test_util.h"
#include "workload/generators.h"

namespace anyk {
namespace {

std::string AlgoName(const ::testing::TestParamInfo<Algorithm>& info) {
  return AlgorithmName(info.param);
}

class BagDecompositionTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(BagDecompositionTest, ChordedSquare) {
  // QC4 plus the chord R5(x1,x3): width-2 decomposition into two bags.
  Rng rng(301);
  Database db;
  for (int i = 1; i <= 5; ++i) {
    auto& rel = db.AddRelation("R" + std::to_string(i), 2);
    for (int t = 0; t < 60; ++t) {
      rel.Add({rng.Uniform(0, 8), rng.Uniform(0, 8)},
              static_cast<double>(rng.Uniform(0, 100)));
    }
  }
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);
  q.AddAtom("R5", {"x1", "x3"});

  std::vector<BagSpec> bags = {
      {.cover_atoms = {0, 1, 4}, .pinned_atoms = {0, 1, 4}, .parent = -1},
      {.cover_atoms = {2, 3}, .pinned_atoms = {2, 3}, .parent = 0},
  };
  TDPInstance inst = BuildBagInstance(db, q, bags);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

TEST_P(BagDecompositionTest, TriangleSingleBag) {
  Database db = MakePathDatabase(40, 3, 302, {.fanout = 6.0});
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(3);
  std::vector<BagSpec> bags = {
      {.cover_atoms = {0, 1, 2}, .pinned_atoms = {0, 1, 2}, .parent = -1}};
  TDPInstance inst = BuildBagInstance(db, q, bags);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

TEST_P(BagDecompositionTest, K4SingleBag) {
  Rng rng(303);
  Database db;
  for (int i = 1; i <= 6; ++i) {
    auto& rel = db.AddRelation("R" + std::to_string(i), 2);
    for (int t = 0; t < 50; ++t) {
      rel.Add({rng.Uniform(0, 6), rng.Uniform(0, 6)},
              static_cast<double>(rng.Uniform(0, 100)));
    }
  }
  // K4 over x1..x4.
  ConjunctiveQuery q;
  q.AddAtom("R1", {"x1", "x2"});
  q.AddAtom("R2", {"x2", "x3"});
  q.AddAtom("R3", {"x3", "x4"});
  q.AddAtom("R4", {"x4", "x1"});
  q.AddAtom("R5", {"x1", "x3"});
  q.AddAtom("R6", {"x2", "x4"});
  std::vector<BagSpec> bags = {{.cover_atoms = {0, 1, 2, 3, 4, 5},
                                .pinned_atoms = {0, 1, 2, 3, 4, 5},
                                .parent = -1}};
  TDPInstance inst = BuildBagInstance(db, q, bags);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

TEST_P(BagDecompositionTest, CoveredButUnpinnedAtomFiltersOnly) {
  // Cover the chord in BOTH bags but pin it once: results must not change
  // and weights must count the chord exactly once.
  Rng rng(304);
  Database db;
  for (int i = 1; i <= 5; ++i) {
    auto& rel = db.AddRelation("R" + std::to_string(i), 2);
    for (int t = 0; t < 50; ++t) {
      rel.Add({rng.Uniform(0, 7), rng.Uniform(0, 7)},
              static_cast<double>(rng.Uniform(0, 100)));
    }
  }
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);
  q.AddAtom("R5", {"x1", "x3"});
  std::vector<BagSpec> bags = {
      {.cover_atoms = {0, 1, 4}, .pinned_atoms = {0, 1, 4}, .parent = -1},
      {.cover_atoms = {2, 3, 4}, .pinned_atoms = {2, 3}, .parent = 0},
  };
  TDPInstance inst = BuildBagInstance(db, q, bags);
  StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
  auto e = MakeEnumerator<TropicalDioid>(&g, GetParam());
  testing::ExpectMatchesOracle<TropicalDioid>(e.get(), db, q);
}

INSTANTIATE_TEST_SUITE_P(Algos, BagDecompositionTest,
                         ::testing::ValuesIn(AllRankedAlgorithms()), AlgoName);

TEST(BagDecompositionDeathTest, RejectsDoublePinning) {
  Database db = MakePathDatabase(5, 3, 305, {.fanout = 2.0});
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(3);
  std::vector<BagSpec> bags = {
      {.cover_atoms = {0, 1, 2}, .pinned_atoms = {0, 1, 2}, .parent = -1},
      {.cover_atoms = {0}, .pinned_atoms = {0}, .parent = 0}};
  EXPECT_DEATH({ BuildBagInstance(db, q, bags); }, "pinned by two bags");
}

TEST(BagDecompositionDeathTest, RejectsUncoveredAtom) {
  Database db = MakePathDatabase(5, 3, 306, {.fanout = 2.0});
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(3);
  std::vector<BagSpec> bags = {
      {.cover_atoms = {0, 1}, .pinned_atoms = {0, 1}, .parent = -1}};
  EXPECT_DEATH({ BuildBagInstance(db, q, bags); }, "not covered");
}

}  // namespace
}  // namespace anyk
