// Cyclic queries via the simple-cycle decomposition + UT-DP union (paper
// Sections 5.2-5.3): correctness against the oracle, partition disjointness
// and coverage, threshold extremes, and the triangle fallback.

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "anyk/ranked_query.h"
#include "dioid/tropical.h"
#include "query/cycle_decomposition.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/paper_instances.h"

namespace anyk {
namespace {

using testing::ExpectMatchesOracle;

std::string AlgoName(const ::testing::TestParamInfo<Algorithm>& info) {
  return AlgorithmName(info.param);
}

Database RandomCycleDatabase(size_t n, size_t l, uint64_t seed,
                             double fanout) {
  return MakePathDatabase(n, l, seed, {.fanout = fanout});
}

void CheckCycle(const Database& db, const ConjunctiveQuery& q, Algorithm algo,
                size_t max_results = SIZE_MAX,
                double threshold_override = 0.0) {
  typename RankedQuery<TropicalDioid>::Options opts;
  opts.algorithm = algo;
  opts.cycle_opts.threshold_override = threshold_override;
  RankedQuery<TropicalDioid> rq(db, q, opts);
  EXPECT_EQ(rq.plan(), QueryPlan::kCycleUnion);
  EXPECT_EQ(rq.NumTrees(), q.NumAtoms() + 1);
  ExpectMatchesOracle<TropicalDioid>(rq.enumerator(), db, q, max_results);
}

class CycleTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(CycleTest, FourCycleRandom) {
  Database db = RandomCycleDatabase(40, 4, 51, 6.0);
  CheckCycle(db, ConjunctiveQuery::Cycle(4), GetParam());
}

TEST_P(CycleTest, FourCycleWorstCase) {
  Database db = MakeWorstCaseCycleDatabase(16, 4, 52);
  CheckCycle(db, ConjunctiveQuery::Cycle(4), GetParam());
}

TEST_P(CycleTest, FiveCycleRandom) {
  Database db = RandomCycleDatabase(30, 5, 53, 5.0);
  CheckCycle(db, ConjunctiveQuery::Cycle(5), GetParam());
}

TEST_P(CycleTest, SixCycleRandom) {
  Database db = RandomCycleDatabase(24, 6, 54, 4.0);
  CheckCycle(db, ConjunctiveQuery::Cycle(6), GetParam());
}

TEST_P(CycleTest, SixCycleWorstCase) {
  Database db = MakeWorstCaseCycleDatabase(10, 6, 55);
  CheckCycle(db, ConjunctiveQuery::Cycle(6), GetParam(), 500);
}

TEST_P(CycleTest, FourCycleI1) {
  Database db = MakeI1Database(12, 56);
  CheckCycle(db, ConjunctiveQuery::Cycle(4), GetParam());
}

TEST_P(CycleTest, ThresholdAllHeavy) {
  Database db = RandomCycleDatabase(30, 4, 57, 5.0);
  CheckCycle(db, ConjunctiveQuery::Cycle(4), GetParam(), SIZE_MAX, 1.0);
}

TEST_P(CycleTest, ThresholdAllLight) {
  Database db = RandomCycleDatabase(30, 4, 58, 5.0);
  CheckCycle(db, ConjunctiveQuery::Cycle(4), GetParam(), SIZE_MAX, 1e18);
}

TEST_P(CycleTest, CycleWithTies) {
  GeneratorOptions gen;
  gen.weight_min = 0;
  gen.weight_max = 1;
  gen.fanout = 5.0;
  Database db = MakePathDatabase(30, 4, 59, gen);
  CheckCycle(db, ConjunctiveQuery::Cycle(4), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Algos, CycleTest,
                         ::testing::ValuesIn(AllRankedAlgorithms()), AlgoName);

TEST(CycleShapeTest, DetectsCycles) {
  EXPECT_TRUE(DetectSimpleCycle(ConjunctiveQuery::Cycle(3)).is_cycle);
  EXPECT_TRUE(DetectSimpleCycle(ConjunctiveQuery::Cycle(4)).is_cycle);
  EXPECT_TRUE(DetectSimpleCycle(ConjunctiveQuery::Cycle(7)).is_cycle);
  EXPECT_FALSE(DetectSimpleCycle(ConjunctiveQuery::Path(4)).is_cycle);
  EXPECT_FALSE(DetectSimpleCycle(ConjunctiveQuery::Star(4)).is_cycle);
  // Two disjoint 2-cycles are not a single simple cycle.
  ConjunctiveQuery q;
  q.AddAtom("R1", {"a", "b"});
  q.AddAtom("R2", {"b", "a"});
  q.AddAtom("R3", {"c", "d"});
  q.AddAtom("R4", {"d", "c"});
  EXPECT_FALSE(DetectSimpleCycle(q).is_cycle);
}

TEST(CycleShapeTest, DetectsRotatedCycle) {
  // Atoms listed out of cycle order still form a 4-cycle.
  ConjunctiveQuery q;
  q.AddAtom("R1", {"c", "d"});
  q.AddAtom("R2", {"a", "b"});
  q.AddAtom("R3", {"b", "c"});
  q.AddAtom("R4", {"d", "a"});
  EXPECT_TRUE(DetectSimpleCycle(q).is_cycle);
  Database db = RandomCycleDatabase(25, 4, 60, 5.0);
  CheckCycle(db, q, Algorithm::kLazy);
}

// Every output witness must be produced by exactly one partition tree.
TEST(CycleDecompositionTest, PartitionsDisjointAndCover) {
  Database db = RandomCycleDatabase(35, 4, 61, 5.0);
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);
  auto instances = DecomposeCycle(db, q);
  ASSERT_EQ(instances.size(), 5u);

  std::multiset<std::vector<uint32_t>> produced;
  for (auto& inst : instances) {
    StageGraph<TropicalDioid> g = BuildStageGraph<TropicalDioid>(inst);
    auto e = MakeEnumerator<TropicalDioid>(&g, Algorithm::kBatchNoSort);
    while (auto r = e->Next()) produced.insert(r->witness);
  }
  auto oracle = testing::Oracle<TropicalDioid>(db, q);
  std::multiset<std::vector<uint32_t>> expected;
  for (const auto& row : oracle) expected.insert(row.witness);
  EXPECT_EQ(produced, expected);  // multiset equality = disjoint + covering
}

// Triangles fall back to the generic-join batch plan.
TEST(CycleFallbackTest, TriangleUsesGenericJoin) {
  Database db = RandomCycleDatabase(30, 3, 62, 4.0);
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(3);
  RankedQuery<TropicalDioid> rq(db, q);
  EXPECT_EQ(rq.plan(), QueryPlan::kGenericJoinBatch);
  ExpectMatchesOracle<TropicalDioid>(rq.enumerator(), db, q);
}

// Non-simple cyclic query (chordal square) also falls back.
TEST(CycleFallbackTest, ChordedSquare) {
  Rng rng(63);
  Database db;
  for (int i = 1; i <= 5; ++i) {
    auto& rel = db.AddRelation("R" + std::to_string(i), 2);
    for (int t = 0; t < 40; ++t) {
      rel.Add({rng.Uniform(0, 7), rng.Uniform(0, 7)},
              static_cast<double>(rng.Uniform(0, 100)));
    }
  }
  ConjunctiveQuery q = ConjunctiveQuery::Cycle(4);
  q.AddAtom("R5", {"x1", "x3"});  // chord
  RankedQuery<TropicalDioid> rq(db, q);
  EXPECT_EQ(rq.plan(), QueryPlan::kGenericJoinBatch);
  ExpectMatchesOracle<TropicalDioid>(rq.enumerator(), db, q);
}

}  // namespace
}  // namespace anyk
