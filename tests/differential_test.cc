// Differential test oracle for the flat-memory enumeration hot path.
//
// Generates 200 seeded random full CQs (tests/corpus.h — paths, stars,
// simple cycles, mixed-arity random trees, duplicate-weight-heavy
// instances) and asserts that all six ranked algorithms (Recursive / Take2
// / Lazy / Eager / All / Batch) plus the planner-resolved seventh column
// (`auto`) emit the same ranked sequence under all four dioids of the
// experimental study (min-sum, max-sum, min-max, max-times). BatchSorting
// doubles as the reference executor: it materializes the full output by DFS
// and sorts, never touching the any-k candidate machinery, so any bug in
// the flat GroupIndex, the arena paths or the strategy successor logic
// shows up as a divergence.
//
// Tie-breaking determinism comes in two strengths:
//  * min-sum / max-sum: ⊗ is cancellative and strictly monotone, so wrapping
//    the base dioid in TieBreakDioid (Section 6.3) yields a genuine
//    selective dioid whose order is total on answers — every algorithm must
//    agree *rank for rank*, including inside former tie groups.
//  * min-max / max-times: ⊗ (max / multiplication-with-zero) is not
//    cancellative, so the lexicographic refinement is not distributive and
//    different (correct!) algorithms may resolve weight ties differently.
//    There the oracle canonicalizes: equal-weight runs must appear at the
//    same ranks with the same length, and their contents must match as
//    sets — i.e. the ranked order is exact modulo a deterministic
//    canonical sort within each tie group.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/factory.h"
#include "anyk/ranked_query.h"
#include "anyk/sharded_query.h"
#include "dioid/dioid.h"
#include "dioid/max_plus.h"
#include "dioid/max_times.h"
#include "dioid/min_max.h"
#include "dioid/tiebreak.h"
#include "dioid/tropical.h"
#include "query/cq.h"
#include "storage/database.h"
#include "util/random.h"

#include "corpus.h"

namespace anyk {
namespace {

using corpus::GeneratedCase;
using corpus::MakeCase;

/// The seven algorithm columns of the differential matrix: the six concrete
/// strategies plus `auto`, whose planner-resolved pick must agree with the
/// oracle rank for rank (and prefix for prefix in the bounded-k sweep).
std::vector<Algorithm> DifferentialColumns() {
  auto v = AllAnyKAlgorithms();
  v.push_back(Algorithm::kAuto);
  return v;
}

constexpr size_t kMaxAtoms = 8;

// One ranked answer, flattened for exact comparison. `tie_ids` carries the
// TieBreakDioid witness vector in exact-order mode and is empty in
// canonical mode.
struct Answer {
  double base_weight = 0;
  std::vector<int64_t> tie_ids;
  std::vector<Value> assignment;
  std::vector<uint32_t> witness;

  bool operator==(const Answer& o) const = default;
  bool operator<(const Answer& o) const {
    if (base_weight != o.base_weight) return base_weight < o.base_weight;
    if (tie_ids != o.tie_ids) return tie_ids < o.tie_ids;
    if (witness != o.witness) return witness < o.witness;
    return assignment < o.assignment;
  }
};

// ---------------------------------------------------------------------------
// Differential drivers
// ---------------------------------------------------------------------------

template <typename B>
std::vector<Answer> DrainExact(const Database& db, const ConjunctiveQuery& q,
                               Algorithm algo, size_t cap,
                               size_t k_budget = 0) {
  using TB = TieBreakDioid<B, kMaxAtoms>;
  typename RankedQuery<TB>::Options opts;
  opts.algorithm = algo;
  opts.enum_opts.k_budget = k_budget;
  RankedQuery<TB> rq(db, q, opts);
  std::vector<Answer> out;
  ResultRow<TB> row;
  while (out.size() < cap && rq.enumerator()->NextInto(&row)) {
    Answer a;
    a.base_weight = row.weight.base;
    a.tie_ids.assign(row.weight.id.begin(), row.weight.id.end());
    a.assignment = row.assignment;
    a.witness = row.witness;
    out.push_back(std::move(a));
  }
  return out;
}

template <typename B>
std::vector<Answer> DrainRaw(const Database& db, const ConjunctiveQuery& q,
                             Algorithm algo, size_t cap,
                             size_t k_budget = 0) {
  typename RankedQuery<B>::Options opts;
  opts.algorithm = algo;
  opts.enum_opts.k_budget = k_budget;
  RankedQuery<B> rq(db, q, opts);
  std::vector<Answer> out;
  ResultRow<B> row;
  while (out.size() < cap && rq.enumerator()->NextInto(&row)) {
    Answer a;
    a.base_weight = static_cast<double>(row.weight);
    a.assignment = row.assignment;
    a.witness = row.witness;
    out.push_back(std::move(a));
  }
  return out;
}

/// Cancellative dioids: rank-for-rank equality under the tie-break wrapper.
template <typename B>
void ExpectExactOrder(const GeneratedCase& c, const char* dioid_name,
                      size_t cap) {
  const std::vector<Answer> want =
      DrainExact<B>(c.db, c.q, Algorithm::kBatch, cap);
  for (Algorithm algo : DifferentialColumns()) {
    const std::vector<Answer> got = DrainExact<B>(c.db, c.q, algo, cap);
    ASSERT_EQ(got.size(), want.size())
        << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
        << ": result count diverges from BatchSorting";
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
          << ": rank " << i << " diverges (weight " << got[i].base_weight
          << " vs " << want[i].base_weight << ")";
    }
  }
}

/// Sort each maximal equal-weight run in place (deterministic tie-break
/// applied canonically at comparison time).
template <typename B>
void CanonicalizeTieGroups(std::vector<Answer>* answers) {
  size_t i = 0;
  while (i < answers->size()) {
    size_t j = i + 1;
    while (j < answers->size() &&
           DioidEq<B>((*answers)[j].base_weight, (*answers)[i].base_weight)) {
      ++j;
    }
    std::sort(answers->begin() + i, answers->begin() + j);
    i = j;
  }
}

/// When a drain stopped at the cap, the last tie group is cut at an
/// arbitrary member; drop it so only complete groups are compared.
template <typename B>
void TrimIncompleteTailGroup(std::vector<Answer>* answers, size_t cap) {
  if (answers->size() < cap) return;
  const double last = answers->back().base_weight;
  while (!answers->empty() &&
         DioidEq<B>(answers->back().base_weight, last)) {
    answers->pop_back();
  }
}

/// Non-cancellative dioids: exact order modulo canonicalized tie groups.
/// (TieBreakDioid over these is not distributive — max / mult-by-zero do
/// not cancel — so correct algorithms may resolve ties differently.)
template <typename B>
void ExpectCanonicalOrder(const GeneratedCase& c, const char* dioid_name,
                          size_t cap) {
  std::vector<Answer> want = DrainRaw<B>(c.db, c.q, Algorithm::kBatch, cap);
  TrimIncompleteTailGroup<B>(&want, cap);
  CanonicalizeTieGroups<B>(&want);
  for (Algorithm algo : DifferentialColumns()) {
    std::vector<Answer> got = DrainRaw<B>(c.db, c.q, algo, cap);
    TrimIncompleteTailGroup<B>(&got, cap);
    CanonicalizeTieGroups<B>(&got);
    ASSERT_EQ(got.size(), want.size())
        << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
        << ": result count diverges from BatchSorting";
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
          << ": rank " << i << " diverges (weight " << got[i].base_weight
          << " vs " << want[i].base_weight << ")";
    }
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, SixStrategiesFourDioidsSameOrder) {
  // Each parameter covers a block of seeds so the suite stays one ctest
  // entry per block while still exercising 200 distinct queries.
  const uint64_t block = GetParam();
  constexpr uint64_t kBlockSize = 25;
  // Generous cap: the generators keep instances small enough that full
  // outputs stay below this, so canonical mode never splits a tie group.
  constexpr size_t kCap = 20000;
  for (uint64_t s = 0; s < kBlockSize; ++s) {
    const uint64_t seed = block * kBlockSize + s + 1;
    const GeneratedCase c = MakeCase(seed);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " " + c.label + " " +
                 c.q.ToString());
    ExpectExactOrder<TropicalDioid>(c, "min-sum", kCap);
    ExpectExactOrder<MaxPlusDioid>(c, "max-sum", kCap);
    ExpectCanonicalOrder<MinMaxDioid>(c, "min-max", kCap);
    ExpectCanonicalOrder<MaxTimesDioid>(c, "max-times", kCap);
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, DifferentialTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "block" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Bounded-k sweep: a budget-aware run (EnumOptions::k_budget = k) must be
// the exact k-prefix of the unbounded run — byte-for-byte under the
// tie-break (cancellative) dioids, modulo canonicalized tie groups under the
// non-cancellative ones — and the enumerator itself must report exhaustion
// at the budget (the drain below has no external cap).
// ---------------------------------------------------------------------------

/// Batch rejoins the matrix here (against its own unbounded run), and auto
/// rides along so the planner's pick is budget-correct at every swept k.
std::vector<Algorithm> SweepColumns() {
  auto v = AllRankedAlgorithms();
  v.push_back(Algorithm::kAuto);
  return v;
}

std::vector<size_t> SweepBudgets(size_t out_size) {
  // k ∈ {1, 2, |out|-1, |out|, |out|+7}, deduplicated for tiny outputs.
  std::vector<size_t> ks = {1, 2};
  if (out_size > 1) ks.push_back(out_size - 1);
  ks.push_back(out_size);
  ks.push_back(out_size + 7);
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  return ks;
}

template <typename B>
void ExpectBudgetedPrefixExact(const GeneratedCase& c,
                               const char* dioid_name) {
  const std::vector<Answer> full =
      DrainExact<B>(c.db, c.q, Algorithm::kBatch, SIZE_MAX);
  for (const size_t k : SweepBudgets(full.size())) {
    for (Algorithm algo : SweepColumns()) {
      // No external cap: the k_budget alone must stop the enumerator.
      const std::vector<Answer> got =
          DrainExact<B>(c.db, c.q, algo, /*cap=*/k + 16, /*k_budget=*/k);
      const size_t want = std::min(k, full.size());
      ASSERT_EQ(got.size(), want)
          << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
          << ": budget k=" << k << " emitted wrong count";
      for (size_t i = 0; i < want; ++i) {
        ASSERT_EQ(got[i], full[i])
            << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
            << ": budget k=" << k << " diverges at rank " << i;
      }
    }
  }
}

template <typename B>
void ExpectBudgetedPrefixCanonical(const GeneratedCase& c,
                                   const char* dioid_name) {
  const std::vector<Answer> full =
      DrainRaw<B>(c.db, c.q, Algorithm::kBatch, SIZE_MAX);
  for (const size_t k : SweepBudgets(full.size())) {
    for (Algorithm algo : SweepColumns()) {
      std::vector<Answer> got =
          DrainRaw<B>(c.db, c.q, algo, /*cap=*/k + 16, /*k_budget=*/k);
      const size_t want_count = std::min(k, full.size());
      ASSERT_EQ(got.size(), want_count)
          << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
          << ": budget k=" << k << " emitted wrong count";
      std::vector<Answer> want(full.begin(),
                               full.begin() + static_cast<ptrdiff_t>(
                                                  want_count));
      // Both prefixes may cut a tie group at an arbitrary member; compare
      // complete groups only, canonically ordered within each group.
      TrimIncompleteTailGroup<B>(&want, want_count);
      TrimIncompleteTailGroup<B>(&got, want_count);
      CanonicalizeTieGroups<B>(&want);
      CanonicalizeTieGroups<B>(&got);
      ASSERT_EQ(got, want)
          << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
          << ": budget k=" << k << " diverges modulo tie groups";
    }
  }
}

class BoundedKSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundedKSweepTest, BudgetedRunsMatchUnboundedPrefixes) {
  // One seed per shape family (MakeCase switches on seed % 5), plus a
  // second pass to vary sizes; the full 200-case sweep lives in the
  // unbounded suite above.
  const uint64_t seed = GetParam();
  const GeneratedCase c = MakeCase(seed);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " " + c.label + " " +
               c.q.ToString());
  ExpectBudgetedPrefixExact<TropicalDioid>(c, "min-sum");
  ExpectBudgetedPrefixExact<MaxPlusDioid>(c, "max-sum");
  ExpectBudgetedPrefixCanonical<MinMaxDioid>(c, "min-max");
  ExpectBudgetedPrefixCanonical<MaxTimesDioid>(c, "max-times");
}

INSTANTIATE_TEST_SUITE_P(Shapes, BoundedKSweepTest,
                         ::testing::Values(5, 6, 7, 8, 9, 10, 11, 12, 13, 14),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Sharded sweep: a ShardedPreparedQuery at S ∈ {1, 2, 4, 7} must emit the
// same answer stream as the unsharded BatchSorting oracle under every dioid,
// for `auto` plus explicit strategies. Comparison is canonical (equal-weight
// runs sorted, witnesses dropped): partitioning renumbers rows per shard, so
// tie-break order within an equal-weight group and witness row ids may
// legitimately differ from the unsharded drain — the answer set and its
// weight order may not. The corpus domains are 2..6, so S = 7 always leaves
// at least one shard empty, and every fifth seed is the all-ties stress
// (uniform weights) — both acceptance cases of the sweep.
// ---------------------------------------------------------------------------

template <typename B>
std::vector<Answer> DrainSharded(const Database& db, const ConjunctiveQuery& q,
                                 Algorithm algo, size_t shards, size_t cap) {
  typename ShardedPreparedQuery<B>::Options sopts;
  sopts.shards = shards;
  const ShardedPreparedQuery<B> pq(db, q, sopts);
  EnumerationSession<B> sess = pq.NewSession(algo);
  std::vector<Answer> out;
  ResultRow<B> row;
  while (out.size() < cap && sess.NextInto(&row)) {
    Answer a;
    a.base_weight = static_cast<double>(row.weight);
    a.assignment = row.assignment;
    // Witnesses stay empty: shard-local row ids are not comparable.
    out.push_back(std::move(a));
  }
  return out;
}

template <typename B>
void ExpectShardedCanonical(const GeneratedCase& c, const char* dioid_name,
                            size_t cap) {
  std::vector<Answer> want = DrainRaw<B>(c.db, c.q, Algorithm::kBatch, cap);
  for (Answer& a : want) a.witness.clear();
  // A cap-truncated drain cuts its last tie group at an arbitrary member;
  // compare complete groups only (no-op when the output fits the cap).
  TrimIncompleteTailGroup<B>(&want, cap);
  CanonicalizeTieGroups<B>(&want);
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    for (Algorithm algo :
         {Algorithm::kAuto, Algorithm::kLazy, Algorithm::kTake2}) {
      std::vector<Answer> got =
          DrainSharded<B>(c.db, c.q, algo, shards, cap);
      TrimIncompleteTailGroup<B>(&got, cap);
      CanonicalizeTieGroups<B>(&got);
      ASSERT_EQ(got.size(), want.size())
          << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
          << "/S=" << shards << ": result count diverges from BatchSorting";
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << c.label << "/" << dioid_name << "/" << AlgorithmName(algo)
            << "/S=" << shards << ": rank " << i << " diverges (weight "
            << got[i].base_weight << " vs " << want[i].base_weight << ")";
      }
    }
  }
}

class ShardSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardSweepTest, ShardedDrainsMatchUnshardedOracle) {
  // Each parameter is a block of 5 consecutive seeds — one full pass over
  // the shape families (path, star, tree, cycle, all-ties) per block.
  const uint64_t block = GetParam();
  constexpr uint64_t kBlockSize = 5;
  constexpr size_t kCap = 20000;
  for (uint64_t s = 0; s < kBlockSize; ++s) {
    const uint64_t seed = block * kBlockSize + s + 1;
    const GeneratedCase c = MakeCase(seed);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " " + c.label + " " +
                 c.q.ToString());
    ExpectShardedCanonical<TropicalDioid>(c, "min-sum", kCap);
    ExpectShardedCanonical<MaxPlusDioid>(c, "max-sum", kCap);
    ExpectShardedCanonical<MinMaxDioid>(c, "min-max", kCap);
    ExpectShardedCanonical<MaxTimesDioid>(c, "max-times", kCap);
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, ShardSweepTest, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "block" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace anyk
