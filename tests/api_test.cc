// Public-API conveniences: CSV import/export, TopK, CountOutput, Explain,
// and the decomposition size bound of Section 5.3.1 (bags materialize in
// O(n^{2-2/l})).

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "anyk/explain.h"
#include "anyk/range.h"
#include "anyk/topk.h"
#include "anyk_api.h"
#include "dioid/tropical.h"
#include "query/cq.h"
#include "query/cycle_decomposition.h"
#include "storage/csv.h"
#include "test_util.h"
#include "workload/generators.h"

namespace anyk {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CsvTest, RoundTrip) {
  const std::string path = TempPath("anyk_csv_roundtrip.csv");
  {
    std::ofstream out(path);
    out << "1,2,3.5\n4,5,-1\n7,8,0\n";
  }
  Database db;
  CsvOptions opts;
  opts.weight_column = 2;
  Relation& rel = LoadRelationCsv(&db, "E", path, opts);
  ASSERT_EQ(rel.NumRows(), 3u);
  EXPECT_EQ(rel.arity(), 2u);
  EXPECT_EQ(rel.At(0, 0), 1);
  EXPECT_DOUBLE_EQ(rel.Weight(0), 3.5);
  EXPECT_DOUBLE_EQ(rel.Weight(1), -1.0);

  const std::string path2 = TempPath("anyk_csv_roundtrip2.csv");
  SaveRelationCsv(rel, path2);
  Database db2;
  Relation& rel2 = LoadRelationCsv(&db2, "E", path2, opts);
  ASSERT_EQ(rel2.NumRows(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(rel2.At(r, 0), rel.At(r, 0));
    EXPECT_EQ(rel2.At(r, 1), rel.At(r, 1));
    EXPECT_DOUBLE_EQ(rel2.Weight(r), rel.Weight(r));
  }
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(CsvTest, HeaderTabsAndLimit) {
  const std::string path = TempPath("anyk_csv_header.tsv");
  {
    std::ofstream out(path);
    out << "src\tdst\n10\t20\n30\t40\n50\t60\n";
  }
  Database db;
  CsvOptions opts;
  opts.delimiter = '\t';
  opts.has_header = true;
  opts.limit = 2;
  Relation& rel = LoadRelationCsv(&db, "E", path, opts);
  ASSERT_EQ(rel.NumRows(), 2u);
  EXPECT_EQ(rel.At(1, 1), 40);
  EXPECT_DOUBLE_EQ(rel.Weight(0), 0.0);  // weightless
  std::remove(path.c_str());
}

TEST(TopKTest, ReturnsPrefixOfRanking) {
  Database db = MakePathDatabase(40, 3, 401, {.fanout = 6.0});
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  auto oracle = testing::Oracle<TropicalDioid>(db, q);
  auto top = TopK<TropicalDioid>(db, q, 25);
  ASSERT_EQ(top.size(), std::min<size_t>(25, oracle.size()));
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_DOUBLE_EQ(top[i].weight, oracle[i].weight);
  }
  EXPECT_EQ(CountOutput<TropicalDioid>(db, q), oracle.size());
}

TEST(TopKTest, KLargerThanOutput) {
  Database db;
  db.AddRelation("R1", 2).Add({1, 2}, 1.0);
  db.AddRelation("R2", 2).Add({2, 3}, 2.0);
  auto top = TopK<TropicalDioid>(db, ConjunctiveQuery::Path(2), 100);
  ASSERT_EQ(top.size(), 1u);
}

TEST(TopKTest, KZeroReturnsNothing) {
  // k == 0 forwards into EnumOptions::k_budget, where 0 is the "unbounded"
  // sentinel — but TopK's drain pulls exactly k answers, so a zero request
  // yields an empty vector rather than a full enumeration. User-facing
  // boundaries (CLI --k, SQL LIMIT, server k=) reject 0 outright; this is
  // the one place a literal 0 is accepted, and it must mean "nothing".
  Database db = MakePathDatabase(20, 2, 404, {.fanout = 4.0});
  auto top = TopK<TropicalDioid>(db, ConjunctiveQuery::Path(2), 0);
  EXPECT_TRUE(top.empty());
}

TEST(TopKTest, KBudgetZeroSentinelIsUnbounded) {
  // Direct engine use of the sentinel: k_budget = 0 (the RankedQuery
  // default) enumerates the entire output, identically to an explicit
  // over-budget session.
  Database db = MakePathDatabase(25, 2, 405, {.fanout = 4.0});
  ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  const size_t total = CountOutput<TropicalDioid>(db, q);
  ASSERT_GT(total, 0u);

  typename RankedQuery<TropicalDioid>::Options opts;
  opts.enum_opts.k_budget = 0;  // sentinel: no budget, never "zero answers"
  RankedQuery<TropicalDioid> rq(db, q, opts);
  size_t n = 0;
  while (rq.Next()) ++n;
  EXPECT_EQ(n, total);
}

TEST(ExplainTest, DescribesPlans) {
  Database db = MakePathDatabase(30, 4, 402, {.fanout = 5.0});
  {
    RankedQuery<TropicalDioid> rq(db, ConjunctiveQuery::Path(4));
    std::string text = Explain(rq);
    EXPECT_NE(text.find("acyclic join tree"), std::string::npos);
    EXPECT_NE(text.find("4 stages"), std::string::npos);
  }
  {
    RankedQuery<TropicalDioid> rq(db, ConjunctiveQuery::Cycle(4));
    std::string text = Explain(rq);
    EXPECT_NE(text.find("UT-DP union of 5 trees"), std::string::npos);
  }
}

TEST(RangeTest, RangeForVisitsEveryResultInOrder) {
  Database db = MakePathDatabase(30, 3, 404, {.fanout = 5.0});
  ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  auto oracle = testing::Oracle<TropicalDioid>(db, q);
  RankedQuery<TropicalDioid> rq(db, q);
  size_t i = 0;
  for (const ResultRow<TropicalDioid>& row : Results(&rq)) {
    ASSERT_LT(i, oracle.size());
    EXPECT_DOUBLE_EQ(row.weight, oracle[i].weight);
    ++i;
  }
  EXPECT_EQ(i, oracle.size());
}

TEST(RangeTest, EmptyEnumeration) {
  Database db;
  db.AddRelation("R1", 2);
  db.AddRelation("R2", 2);
  RankedQuery<TropicalDioid> rq(db, ConjunctiveQuery::Path(2));
  size_t count = 0;
  for ([[maybe_unused]] const auto& row : Results(&rq)) ++count;
  EXPECT_EQ(count, 0u);
}

TEST(DecompositionBoundTest, BagSizesWithinTheoreticalBound) {
  // Section 5.3.1: all bags of all l+1 trees materialize in O(n^{2-2/l}).
  for (size_t l : {4u, 6u}) {
    for (size_t n : {200u, 400u, 800u}) {
      Database db = MakeWorstCaseCycleDatabase(n, l, 403 + n);
      auto instances = DecomposeCycle(db, ConjunctiveQuery::Cycle(l));
      size_t total_rows = 0;
      for (const auto& inst : instances) {
        for (const auto& node : inst.nodes) total_rows += node.NumRows();
      }
      const double bound = std::pow(static_cast<double>(n), 2.0 - 2.0 / l);
      // Generous constant: (l+1) trees x (l-2) bags each, plus slack.
      EXPECT_LE(static_cast<double>(total_rows),
                8.0 * static_cast<double>(l * l) * bound)
          << "l=" << l << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace anyk
